// The serve wire format (DESIGN.md §15): encode/decode round-trip property
// over fuzzed streams and chunk sizes, table-driven rejection of malformed
// byte streams (bad magic, wrong version, short frames, CRC damage), resume
// skipping, and the IngestQueue's backpressure/shed admission policies.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "event/event_type.h"
#include "event/stream.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "test_util.h"

namespace motto {
namespace {

using serve::AppendControl;
using serve::AppendEvent;
using serve::AppendFrame;
using serve::AppendHello;
using serve::AppendRegisterType;
using serve::AppendWatermark;
using serve::EncodeStreamOptions;
using serve::Frame;
using serve::FrameDecoder;
using serve::FrameType;
using serve::IngestQueue;
using testing::MakeStream;

/// Decodes `bytes` fed to the decoder in chunks of `chunk` bytes.
std::vector<Frame> DecodeAll(const std::string& bytes, size_t chunk,
                             std::string* error) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t n = std::min(chunk, bytes.size() - pos);
    decoder.Append(bytes.data() + pos, n);
    pos += n;
    Frame frame;
    for (;;) {
      FrameDecoder::Outcome outcome = decoder.Next(&frame);
      if (outcome == FrameDecoder::Outcome::kNeedMore) break;
      if (outcome == FrameDecoder::Outcome::kError) {
        if (error != nullptr) *error = decoder.error();
        return frames;
      }
      frames.push_back(frame);
    }
  }
  if (error != nullptr) error->clear();
  return frames;
}

TEST(WireFormatTest, EncodedStreamRoundTripsAtEveryChunkSize) {
  EventTypeRegistry registry;
  EventStream stream = MakeStream(&registry, {{"A", 1},
                                              {"B", 3},
                                              {"A", 3},
                                              {"C", 7},
                                              {"B", 12}});
  EncodeStreamOptions options;
  options.checkpoint_every = 2;
  std::string bytes = serve::EncodeStream(stream, registry, options);

  // The decoder must be agnostic to how the transport slices the bytes:
  // byte-at-a-time, tiny, prime-sized, and single-shot reads all agree.
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, bytes.size()}) {
    std::string error;
    std::vector<Frame> frames = DecodeAll(bytes, chunk, &error);
    ASSERT_TRUE(error.empty()) << "chunk " << chunk << ": " << error;
    // hello + 3 registrations + 5 events + 2 checkpoints + end.
    ASSERT_EQ(frames.size(), 12u) << "chunk " << chunk;
    EXPECT_EQ(frames[0].type, FrameType::kHello);
    EXPECT_EQ(frames[0].magic, serve::kWireMagic);
    EXPECT_EQ(frames[0].version, serve::kWireVersion);
    size_t events = 0, checkpoints = 0, registers = 0;
    std::vector<Timestamp> ts;
    for (const Frame& f : frames) {
      if (f.type == FrameType::kEvent) {
        ++events;
        ts.push_back(f.ts);
      }
      if (f.type == FrameType::kCheckpoint) ++checkpoints;
      if (f.type == FrameType::kRegisterType) ++registers;
    }
    EXPECT_EQ(events, 5u);
    EXPECT_EQ(checkpoints, 2u);
    EXPECT_EQ(registers, 3u);
    EXPECT_EQ(ts, (std::vector<Timestamp>{1, 3, 3, 7, 12}));
    EXPECT_EQ(frames.back().type, FrameType::kEnd);
  }
}

TEST(WireFormatTest, FuzzedFramesRoundTripExactly) {
  Rng rng(0xC0FFEE);
  for (int iter = 0; iter < 200; ++iter) {
    std::string bytes;
    AppendHello(&bytes);
    std::vector<Frame> sent;
    int n = static_cast<int>(rng.Uniform(1, 12));
    Timestamp ts = 0;
    for (int i = 0; i < n; ++i) {
      switch (rng.Uniform(0, 3)) {
        case 0: {
          std::string name = "T" + std::to_string(rng.Uniform(0, 9));
          uint32_t id = static_cast<uint32_t>(rng.Uniform(0, 500));
          AppendRegisterType(&bytes, id, name, rng.Bernoulli(0.8));
          Frame f;
          f.type = FrameType::kRegisterType;
          f.wire_type = id;
          f.name = name;
          sent.push_back(f);
          break;
        }
        case 1: {
          ts += rng.Uniform(0, 9);
          Payload payload;
          payload.value = rng.NextDouble() * 100.0 - 50.0;
          payload.aux = rng.Uniform(-1000, 1000);
          uint32_t id = static_cast<uint32_t>(rng.Uniform(0, 500));
          AppendEvent(&bytes, id, ts, payload);
          Frame f;
          f.type = FrameType::kEvent;
          f.wire_type = id;
          f.ts = ts;
          f.payload = payload;
          sent.push_back(f);
          break;
        }
        case 2: {
          ts += rng.Uniform(0, 9);
          AppendWatermark(&bytes, ts);
          Frame f;
          f.type = FrameType::kWatermark;
          f.ts = ts;
          sent.push_back(f);
          break;
        }
        default: {
          FrameType t = rng.Bernoulli(0.5) ? FrameType::kFlush
                                           : FrameType::kCheckpoint;
          AppendControl(&bytes, t);
          Frame f;
          f.type = t;
          sent.push_back(f);
          break;
        }
      }
    }
    std::string error;
    size_t chunk = static_cast<size_t>(rng.Uniform(1, 64));
    std::vector<Frame> got = DecodeAll(bytes, chunk, &error);
    ASSERT_TRUE(error.empty()) << "iter " << iter << ": " << error;
    ASSERT_EQ(got.size(), sent.size() + 1) << "iter " << iter;
    for (size_t i = 0; i < sent.size(); ++i) {
      const Frame& a = sent[i];
      const Frame& b = got[i + 1];
      ASSERT_EQ(a.type, b.type) << "iter " << iter << " frame " << i;
      EXPECT_EQ(a.wire_type, b.wire_type);
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.ts, b.ts);
      EXPECT_EQ(a.payload.value, b.payload.value);
      EXPECT_EQ(a.payload.aux, b.payload.aux);
    }
  }
}

TEST(WireFormatTest, SkipEventsEncodesResumeSuffix) {
  EventTypeRegistry registry;
  EventStream stream = MakeStream(&registry, {{"A", 1},
                                              {"B", 3},
                                              {"A", 5},
                                              {"C", 7}});
  EncodeStreamOptions options;
  options.skip_events = 3;
  std::string bytes = serve::EncodeStream(stream, registry, options);
  std::string error;
  std::vector<Frame> frames = DecodeAll(bytes, 16, &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<Timestamp> ts;
  for (const Frame& f : frames) {
    if (f.type == FrameType::kEvent) ts.push_back(f.ts);
  }
  // Registrations still all present (idempotent), only events skipped.
  EXPECT_EQ(ts, (std::vector<Timestamp>{7}));
}

struct RejectCase {
  const char* label;
  /// Mutates a valid hello+watermark byte stream into a rejected one.
  void (*corrupt)(std::string* bytes);
  const char* expect;  // Substring of the decoder error.
};

TEST(WireFormatTest, RejectsMalformedStreams) {
  const RejectCase cases[] = {
      // The forged hello frames below carry a VALID CRC (AppendFrame
      // recomputes it), so the magic/version checks — not the CRC check —
      // must fire.
      {"bad magic",
       [](std::string* bytes) {
         std::string forged, payload;
         serve::PutU32(&payload, serve::kWireMagic ^ 0xFF);
         serve::PutU16(&payload, serve::kWireVersion);
         AppendFrame(&forged, FrameType::kHello, payload);
         *bytes = forged;
       },
       "bad magic"},
      {"wrong version",
       [](std::string* bytes) {
         std::string forged, payload;
         serve::PutU32(&payload, serve::kWireMagic);
         serve::PutU16(&payload, 0x7F);
         AppendFrame(&forged, FrameType::kHello, payload);
         *bytes = forged;
       },
       "version"},
      {"oversized frame length",
       [](std::string* bytes) {
         std::string huge;
         serve::PutU32(&huge, serve::kMaxFramePayload + 64);
         bytes->append(huge);
         bytes->append(8, '\0');
       },
       "oversized frame"},
      {"zero frame length",
       [](std::string* bytes) { bytes->append(4, '\0'); },
       "zero-length frame"},
      {"short frame payload",
       [](std::string* bytes) {
         AppendFrame(bytes, FrameType::kWatermark, "xy");
       },
       "short"},
      {"payload CRC damage",
       [](std::string* bytes) {
         // Flip a bit inside the last frame's payload (watermark ts).
         (*bytes)[bytes->size() - 6] ^= 0x01;
       },
       "CRC"},
      {"event before hello",
       [](std::string* bytes) {
         std::string fresh;
         AppendWatermark(&fresh, 5);
         *bytes = fresh;
       },
       "hello"},
      {"unknown frame type",
       [](std::string* bytes) {
         AppendFrame(bytes, static_cast<FrameType>(0x6E), "xx");
       },
       "unknown frame type"},
  };
  for (const RejectCase& c : cases) {
    std::string bytes;
    AppendHello(&bytes);
    AppendWatermark(&bytes, 42);
    c.corrupt(&bytes);
    std::string error;
    DecodeAll(bytes, bytes.size(), &error);
    EXPECT_FALSE(error.empty()) << c.label << " was accepted";
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << c.label << ": got error '" << error << "'";
  }
}

TEST(WireFormatTest, TruncatedTailIsNeedMoreNotError) {
  std::string bytes;
  AppendHello(&bytes);
  AppendWatermark(&bytes, 42);
  // Every proper prefix decodes cleanly to fewer frames, never an error — a
  // half-received frame just waits for more bytes.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string error;
    std::vector<Frame> frames =
        DecodeAll(bytes.substr(0, cut), 1 + cut % 5, &error);
    EXPECT_TRUE(error.empty()) << "cut " << cut << ": " << error;
    EXPECT_LT(frames.size(), 2u) << "cut " << cut;
  }
}

// ---------------------------------------------------------------------------
// IngestQueue admission control.

IngestQueue::Item EventItem() {
  IngestQueue::Item item;
  item.frame.type = FrameType::kEvent;
  item.arrival = std::chrono::steady_clock::now();
  return item;
}

TEST(IngestQueueTest, ShedPolicyDropsOnlyEventFrames) {
  IngestQueue queue(/*capacity=*/2, /*shed_events=*/true);
  EXPECT_TRUE(queue.Push(EventItem()));
  EXPECT_TRUE(queue.Push(EventItem()));
  // Full: event frames shed...
  EXPECT_FALSE(queue.Push(EventItem()));
  EXPECT_EQ(queue.shed(), 1u);
  // ...but a control frame must get through once space frees up; drain on
  // another thread while the push blocks.
  IngestQueue::Item control;
  control.frame.type = FrameType::kCheckpoint;
  std::thread drainer([&queue] {
    std::vector<IngestQueue::Item> batch;
    ASSERT_TRUE(queue.PopAll(&batch));
    EXPECT_EQ(batch.size(), 2u);
  });
  EXPECT_TRUE(queue.Push(std::move(control)));
  drainer.join();
  std::vector<IngestQueue::Item> rest;
  ASSERT_TRUE(queue.PopAll(&rest));
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].frame.type, FrameType::kCheckpoint);
}

TEST(IngestQueueTest, BlockingPolicyLosesNothing) {
  IngestQueue queue(/*capacity=*/4, /*shed_events=*/false);
  constexpr int kItems = 1000;
  std::thread producer([&queue] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(queue.Push(EventItem()));
    }
    queue.Close();
  });
  size_t received = 0;
  std::vector<IngestQueue::Item> batch;
  while (queue.PopAll(&batch)) received += batch.size();
  producer.join();
  EXPECT_EQ(received, static_cast<size_t>(kItems));
  EXPECT_EQ(queue.shed(), 0u);
  EXPECT_LE(queue.max_depth(), 4u);
}

TEST(IngestQueueTest, CloseUnblocksProducerAndConsumer) {
  IngestQueue queue(/*capacity=*/1, /*shed_events=*/false);
  EXPECT_TRUE(queue.Push(EventItem()));
  std::thread blocked([&queue] {
    // Blocks on the full queue until Close; a closed queue refuses the item.
    EXPECT_FALSE(queue.Push(EventItem()));
  });
  queue.Close();
  blocked.join();
  std::vector<IngestQueue::Item> batch;
  EXPECT_TRUE(queue.PopAll(&batch));  // The one buffered item drains...
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_FALSE(queue.PopAll(&batch));  // ...then closed-and-empty.
}

}  // namespace
}  // namespace motto
