#include "motto/rewriter.h"

#include <gtest/gtest.h>

#include "obs/opt_trace.h"

namespace motto {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  RewriterTest() : cost_(MakeStats()) {}

  StreamStats MakeStats() {
    StreamStats stats;
    // Selective types: ~0.6 expected events per 2-second window, the regime
    // CEP patterns target (rare per-type events, paper §VII data sets).
    for (EventTypeId t = 0; t < 12; ++t) stats.rate_per_second[t] = 0.3;
    stats.total_rate = 3.6;
    stats.duration = Seconds(100);
    return stats;
  }

  FlatQuery Query(const std::string& name, PatternOp op,
                  std::vector<std::string> operands,
                  Duration window = Seconds(2),
                  std::vector<std::string> negated = {}) {
    FlatQuery q;
    q.name = name;
    q.window = window;
    q.pattern.op = op;
    for (const std::string& n : operands) {
      q.pattern.operands.push_back(registry_.RegisterPrimitive(n));
    }
    for (const std::string& n : negated) {
      q.pattern.negated.push_back(registry_.RegisterPrimitive(n));
    }
    return q;
  }

  SharingGraph Build(const std::vector<FlatQuery>& queries,
                     RewriterOptions options = RewriterOptions::Motto()) {
    return BuildSharingGraph(queries, options, &registry_, &catalog_, &cost_);
  }

  int32_t NodeOf(const SharingGraph& graph, const FlatPattern& pattern,
                 Duration window) {
    auto it = graph.index.find(SharingNodeKey(pattern.Canonical(), window));
    return it == graph.index.end() ? -1 : it->second;
  }

  bool HasEdge(const SharingGraph& graph, int32_t from, int32_t to,
               RewriteRecipe::Kind kind) {
    for (const SharingEdge& e : graph.edges) {
      if (e.source == from && e.target == to && e.recipe.kind == kind) {
        return true;
      }
    }
    return false;
  }

  EventTypeRegistry registry_;
  CompositeCatalog catalog_;
  CostModel cost_;
};

TEST_F(RewriterTest, IdenticalQueriesShareOneNode) {
  FlatQuery a = Query("a", PatternOp::kSeq, {"E1", "E2"});
  FlatQuery b = Query("b", PatternOp::kSeq, {"E1", "E2"});
  SharingGraph graph = Build({a, b});
  ASSERT_EQ(graph.nodes.size(), 1u);
  EXPECT_EQ(graph.nodes[0].query_names.size(), 2u);
  EXPECT_TRUE(graph.nodes[0].terminal);
}

TEST_F(RewriterTest, CommutativeEquivalenceSharesOneNode) {
  FlatQuery a = Query("a", PatternOp::kConj, {"E1", "E2"});
  FlatQuery b = Query("b", PatternOp::kConj, {"E2", "E1"});
  SharingGraph graph = Build({a, b});
  EXPECT_EQ(graph.nodes.size(), 1u);
}

TEST_F(RewriterTest, MstSubstringEdge) {
  // Paper MST substring case: SEQ(E1,E2) is a prefix of SEQ(E1,E2,E3).
  FlatQuery small = Query("small", PatternOp::kSeq, {"E1", "E2"});
  FlatQuery big = Query("big", PatternOp::kSeq, {"E1", "E2", "E3"});
  SharingGraph graph = Build({small, big}, RewriterOptions::MstOnly());
  int32_t s = NodeOf(graph, small.pattern, small.window);
  int32_t b = NodeOf(graph, big.pattern, big.window);
  ASSERT_GE(s, 0);
  ASSERT_GE(b, 0);
  EXPECT_TRUE(HasEdge(graph, s, b, RewriteRecipe::Kind::kCompositeOperand));
}

TEST_F(RewriterTest, MstSubsequenceEdgeUsesMergeOrdered) {
  // Paper Example 1: q2=SEQ(E1,E3) shared into q1=SEQ(E1,E2,E3).
  FlatQuery q2 = Query("q2", PatternOp::kSeq, {"E1", "E3"});
  FlatQuery q1 = Query("q1", PatternOp::kSeq, {"E1", "E2", "E3"});
  SharingGraph graph = Build({q1, q2}, RewriterOptions::MstOnly());
  int32_t s = NodeOf(graph, q2.pattern, q2.window);
  int32_t b = NodeOf(graph, q1.pattern, q1.window);
  EXPECT_TRUE(HasEdge(graph, s, b, RewriteRecipe::Kind::kMergeOrdered));
}

TEST_F(RewriterTest, DstCreatesCommonSubQuery) {
  // Paper Example 2: q3=SEQ(E1,E2,E4), q4=SEQ(E2,E4,E3) share SEQ(E2,E4).
  FlatQuery q3 = Query("q3", PatternOp::kSeq, {"E1", "E2", "E4"});
  FlatQuery q4 = Query("q4", PatternOp::kSeq, {"E2", "E4", "E3"});
  SharingGraph graph = Build({q3, q4});
  FlatPattern sub{PatternOp::kSeq,
                  {registry_.Find("E2"), registry_.Find("E4")},
                  {}};
  int32_t sub_node = NodeOf(graph, sub, Seconds(2));
  ASSERT_GE(sub_node, 0) << graph.ToString(registry_);
  EXPECT_FALSE(graph.nodes[static_cast<size_t>(sub_node)].terminal);
  EXPECT_TRUE(HasEdge(graph, sub_node, NodeOf(graph, q3.pattern, q3.window),
                      RewriteRecipe::Kind::kCompositeOperand));
  EXPECT_TRUE(HasEdge(graph, sub_node, NodeOf(graph, q4.pattern, q4.window),
                      RewriteRecipe::Kind::kCompositeOperand));
}

TEST_F(RewriterTest, PaperExample4RequiresDstPlusMst) {
  // q8=SEQ(E1,E2,E3,E5), q9=SEQ(E1,E3,E4): sub-query SEQ(E1,E3) is a
  // subsequence of both; sharing needs decomposition + merge.
  FlatQuery q8 = Query("q8", PatternOp::kSeq, {"E1", "E2", "E3", "E5"});
  FlatQuery q9 = Query("q9", PatternOp::kSeq, {"E1", "E3", "E4"});
  SharingGraph graph = Build({q8, q9});
  FlatPattern sub{PatternOp::kSeq,
                  {registry_.Find("E1"), registry_.Find("E3")},
                  {}};
  int32_t sub_node = NodeOf(graph, sub, Seconds(2));
  ASSERT_GE(sub_node, 0) << graph.ToString(registry_);
  // SEQ(E1,E3) is a non-contiguous subsequence of q8 (merge + order filter)
  // but a contiguous prefix of q9 (direct composite operand).
  EXPECT_TRUE(HasEdge(graph, sub_node, NodeOf(graph, q8.pattern, q8.window),
                      RewriteRecipe::Kind::kMergeOrdered));
  EXPECT_TRUE(HasEdge(graph, sub_node, NodeOf(graph, q9.pattern, q9.window),
                      RewriteRecipe::Kind::kCompositeOperand));
  // MST alone must find nothing here (no substring/subsequence relation
  // between the whole queries).
  EventTypeRegistry fresh_registry = registry_;
  SharingGraph mst = Build({q8, q9}, RewriterOptions::MstOnly());
  EXPECT_TRUE(mst.edges.empty());
}

TEST_F(RewriterTest, OttConjToSeqEdge) {
  // Paper Example 5: q2=SEQ(E1,E3) from q5=CONJ(E1&E3) via Filter_sc.
  FlatQuery seq = Query("seq", PatternOp::kSeq, {"E1", "E3"});
  FlatQuery conj = Query("conj", PatternOp::kConj, {"E1", "E3"});
  SharingGraph graph = Build({seq, conj});
  int32_t s = NodeOf(graph, conj.pattern, conj.window);
  int32_t b = NodeOf(graph, seq.pattern, seq.window);
  EXPECT_TRUE(HasEdge(graph, s, b, RewriteRecipe::Kind::kOrderFilter));
  // The reverse direction is impossible.
  EXPECT_FALSE(HasEdge(graph, b, s, RewriteRecipe::Kind::kOrderFilter));
}

TEST_F(RewriterTest, WindowDifferenceCreatesSpanFilterEdge) {
  FlatQuery wide = Query("wide", PatternOp::kSeq, {"E1", "E2"}, Seconds(8));
  FlatQuery narrow = Query("narrow", PatternOp::kSeq, {"E1", "E2"}, Seconds(2));
  SharingGraph graph = Build({wide, narrow});
  int32_t w = NodeOf(graph, wide.pattern, Seconds(8));
  int32_t n = NodeOf(graph, narrow.pattern, Seconds(2));
  ASSERT_GE(w, 0);
  ASSERT_GE(n, 0);
  EXPECT_TRUE(HasEdge(graph, w, n, RewriteRecipe::Kind::kSpanFilter));
  EXPECT_FALSE(HasEdge(graph, n, w, RewriteRecipe::Kind::kSpanFilter));
  // MST-only mode treats different windows as unshareable.
  EventTypeRegistry fresh = registry_;
  SharingGraph strict = Build({wide, narrow}, RewriterOptions::MstOnly());
  EXPECT_TRUE(strict.edges.empty());
}

TEST_F(RewriterTest, WindowExtensionSubQueryForSmallerSourceWindow) {
  // Source window < beneficiary window: the sub-query node is created at
  // the max window so both can consume it (paper §IV-D case 2).
  FlatQuery small = Query("small", PatternOp::kSeq, {"E1", "E2", "E3"},
                          Seconds(2));
  FlatQuery big = Query("big", PatternOp::kSeq, {"E2", "E3", "E4"},
                        Seconds(8));
  SharingGraph graph = Build({small, big});
  FlatPattern sub{PatternOp::kSeq,
                  {registry_.Find("E2"), registry_.Find("E3")},
                  {}};
  // Extended sub-query at the max of both windows.
  EXPECT_GE(NodeOf(graph, sub, Seconds(8)), 0) << graph.ToString(registry_);
}

TEST_F(RewriterTest, NegatedQueriesShareTheirPositivePart) {
  // Paper's data-center queries: q_a = SEQ(Es,Et,Ed,NEG(Ea)),
  // q_b = SEQ(Es,Et,Ea): common positive prefix SEQ(Es,Et).
  FlatQuery qa = Query("qa", PatternOp::kSeq, {"Es", "Et", "Ed"}, Seconds(2),
                       {"Ea"});
  FlatQuery qb = Query("qb", PatternOp::kSeq, {"Es", "Et", "Ea"});
  SharingGraph graph = Build({qa, qb});
  FlatPattern sub{PatternOp::kSeq,
                  {registry_.Find("Es"), registry_.Find("Et")},
                  {}};
  int32_t sub_node = NodeOf(graph, sub, Seconds(2));
  ASSERT_GE(sub_node, 0) << graph.ToString(registry_);
  int32_t a = NodeOf(graph, qa.pattern, qa.window);
  EXPECT_TRUE(HasEdge(graph, sub_node, a,
                      RewriteRecipe::Kind::kCompositeOperand));
  // A NEG query never serves as a source.
  for (const SharingEdge& e : graph.edges) {
    EXPECT_NE(e.source, a);
  }
}

TEST_F(RewriterTest, ConjSubMultisetSharing) {
  FlatQuery small = Query("small", PatternOp::kConj, {"E1", "E2"});
  FlatQuery big = Query("big", PatternOp::kConj, {"E3", "E1", "E2"});
  SharingGraph graph = Build({small, big});
  int32_t s = NodeOf(graph, small.pattern, small.window);
  int32_t b = NodeOf(graph, big.pattern, big.window);
  EXPECT_TRUE(HasEdge(graph, s, b, RewriteRecipe::Kind::kCompositeOperand));
}

TEST_F(RewriterTest, LcseOnlySharesLongestCommonSubstring) {
  FlatQuery q6 = Query("q6", PatternOp::kSeq,
                       {"E1", "E2", "E3", "E5", "E6", "E7", "E8"});
  FlatQuery q7 = Query("q7", PatternOp::kSeq,
                       {"E1", "E3", "E6", "E5", "E7", "E8"});
  SharingGraph graph = Build({q6, q7}, RewriterOptions::Lcse());
  // LCS is "E7,E8" (paper Example 3's S5).
  FlatPattern lcs{PatternOp::kSeq,
                  {registry_.Find("E7"), registry_.Find("E8")},
                  {}};
  EXPECT_GE(NodeOf(graph, lcs, Seconds(2)), 0) << graph.ToString(registry_);
  // The subsequence chains (MS1="E1,E3,E5") exist only under full MOTTO.
  FlatPattern ms1{PatternOp::kSeq,
                  {registry_.Find("E1"), registry_.Find("E3"),
                   registry_.Find("E5")},
                  {}};
  EXPECT_EQ(NodeOf(graph, ms1, Seconds(2)), -1);
  EventTypeRegistry fresh = registry_;
  SharingGraph full = Build({q6, q7});
  EXPECT_GE(NodeOf(full, ms1, Seconds(2)), 0) << full.ToString(registry_);
}

TEST_F(RewriterTest, NaModeProducesNoEdges) {
  FlatQuery a = Query("a", PatternOp::kSeq, {"E1", "E2"});
  FlatQuery b = Query("b", PatternOp::kSeq, {"E1", "E2", "E3"});
  SharingGraph graph = Build({a, b}, RewriterOptions::None());
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_EQ(graph.nodes.size(), 2u);
}

TEST_F(RewriterTest, EdgesAlwaysCheaperThanScratch) {
  FlatQuery a = Query("a", PatternOp::kSeq, {"E1", "E2", "E3", "E4"});
  FlatQuery b = Query("b", PatternOp::kSeq, {"E2", "E3", "E4", "E5"});
  FlatQuery c = Query("c", PatternOp::kConj, {"E1", "E2", "E3"});
  SharingGraph graph = Build({a, b, c});
  for (const SharingEdge& e : graph.edges) {
    EXPECT_LT(e.cost,
              graph.nodes[static_cast<size_t>(e.target)].scratch_cost);
  }
}

TEST_F(RewriterTest, GraphIsAcyclicDag) {
  std::vector<FlatQuery> queries = {
      Query("a", PatternOp::kSeq, {"E1", "E2", "E3"}),
      Query("b", PatternOp::kSeq, {"E1", "E3"}),
      Query("c", PatternOp::kConj, {"E1", "E3"}),
      Query("d", PatternOp::kSeq, {"E2", "E3", "E4"}, Seconds(6)),
  };
  SharingGraph graph = Build(queries);
  // Kahn over sharing edges must consume every node.
  size_t n = graph.nodes.size();
  std::vector<int> in_degree(n, 0);
  for (const SharingEdge& e : graph.edges) {
    ++in_degree[static_cast<size_t>(e.target)];
  }
  std::vector<int32_t> ready;
  for (size_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push_back(static_cast<int32_t>(v));
  }
  size_t seen = 0;
  while (!ready.empty()) {
    int32_t v = ready.back();
    ready.pop_back();
    ++seen;
    for (const SharingEdge& e : graph.edges) {
      if (e.source == v && --in_degree[static_cast<size_t>(e.target)] == 0) {
        ready.push_back(e.target);
      }
    }
  }
  EXPECT_EQ(seen, n);
}

// --- Optimizer-probe candidate traces (DESIGN.md §11) ---

TEST_F(RewriterTest, ProbeAcceptedCandidatesMatchGraphEdges) {
  std::vector<FlatQuery> queries = {
      Query("a", PatternOp::kSeq, {"E1", "E2", "E3"}),
      Query("b", PatternOp::kSeq, {"E1", "E3"}),
      Query("c", PatternOp::kConj, {"E1", "E3"}),
      Query("d", PatternOp::kSeq, {"E2", "E3", "E4"}, Seconds(6)),
  };
  obs::OptimizerProbe probe;
  RewriterOptions options = RewriterOptions::Motto();
  options.probe = &probe;
  SharingGraph graph = Build(queries, options);
  ASSERT_TRUE(probe.rewriter.recorded);
  // Every edge in the graph is an accepted candidate and vice versa:
  // AddEdge is the sole edge-push site and always records.
  EXPECT_EQ(probe.rewriter.CountDecision(obs::EdgeDecision::kAccepted),
            graph.edges.size());
  EXPECT_EQ(probe.rewriter.graph_nodes, graph.nodes.size());
  EXPECT_EQ(probe.rewriter.graph_edges, graph.edges.size());
  EXPECT_GT(probe.rewriter.pairs_considered, 0u);
  for (const obs::EdgeCandidate& c : probe.rewriter.candidates) {
    EXPECT_FALSE(c.family.empty());
    EXPECT_FALSE(c.recipe.empty());
    if (c.decision == obs::EdgeDecision::kAccepted) {
      EXPECT_LT(c.cost, c.scratch_cost);
    }
  }
}

TEST_F(RewriterTest, ProbeRecordsDuplicateTypeConjContainmentRejection) {
  // CONJ(E1,E2) is a sub-multiset of CONJ(E1,E2,E2), but the beneficiary's
  // duplicate E2 slots break the composite-operand soundness guard (one
  // physical event could fill two slots). The trace must carry that reason.
  FlatQuery small = Query("small", PatternOp::kConj, {"E1", "E2"});
  FlatQuery big = Query("big", PatternOp::kConj, {"E1", "E2", "E2"});
  obs::OptimizerProbe probe;
  RewriterOptions options = RewriterOptions::Motto();
  options.probe = &probe;
  SharingGraph graph = Build({small, big}, options);
  int32_t s = NodeOf(graph, small.pattern, small.window);
  int32_t b = NodeOf(graph, big.pattern, big.window);
  ASSERT_GE(s, 0);
  ASSERT_GE(b, 0);
  EXPECT_FALSE(HasEdge(graph, s, b, RewriteRecipe::Kind::kCompositeOperand));
  bool found = false;
  for (const obs::EdgeCandidate& c : probe.rewriter.candidates) {
    if (c.source == s && c.target == b &&
        c.decision == obs::EdgeDecision::kRejectedDuplicateTypes) {
      found = true;
      EXPECT_EQ(c.recipe, "composite-operand");
      EXPECT_EQ(c.family, "MST");  // Terminal-to-terminal containment.
      EXPECT_EQ(c.cost, 0.0);  // Rejected structurally, before costing.
    }
  }
  EXPECT_TRUE(found) << probe.rewriter.ToJson();
}

TEST_F(RewriterTest, ProbeRecordsNegatedTargetSubsequenceRejection) {
  // SEQ(E1,E3) is a subsequence of SEQ(E1,E2,E3) but the target carries
  // NEG(E4), which merge-ordered cannot re-apply.
  FlatQuery src = Query("src", PatternOp::kSeq, {"E1", "E3"});
  FlatQuery tgt = Query("tgt", PatternOp::kSeq, {"E1", "E2", "E3"},
                        Seconds(2), {"E4"});
  obs::OptimizerProbe probe;
  RewriterOptions options = RewriterOptions::MstOnly();
  options.probe = &probe;
  SharingGraph graph = Build({src, tgt}, options);
  int32_t s = NodeOf(graph, src.pattern, src.window);
  int32_t t = NodeOf(graph, tgt.pattern, tgt.window);
  EXPECT_FALSE(HasEdge(graph, s, t, RewriteRecipe::Kind::kMergeOrdered));
  bool found = false;
  for (const obs::EdgeCandidate& c : probe.rewriter.candidates) {
    if (c.source == s && c.target == t &&
        c.decision == obs::EdgeDecision::kRejectedNegatedTarget) {
      found = true;
      EXPECT_EQ(c.recipe, "merge-ordered");
    }
  }
  EXPECT_TRUE(found) << probe.rewriter.ToJson();
}

TEST_F(RewriterTest, ProbeCountsCoarsePairSkips) {
  // A NEG query as potential source is skipped before any candidate is
  // identified — it lands in the aggregate counter, not the candidate list.
  FlatQuery qa = Query("qa", PatternOp::kSeq, {"Es", "Et", "Ed"}, Seconds(2),
                       {"Ea"});
  FlatQuery qb = Query("qb", PatternOp::kSeq, {"Es", "Et", "Ea"});
  obs::OptimizerProbe probe;
  RewriterOptions options = RewriterOptions::Motto();
  options.probe = &probe;
  Build({qa, qb}, options);
  EXPECT_GT(probe.rewriter.negated_source_skips, 0u);

  // MST-only mode requires equal windows; a mismatched pair is counted.
  FlatQuery wide = Query("wide", PatternOp::kSeq, {"E1", "E2"}, Seconds(8));
  FlatQuery narrow = Query("narrow", PatternOp::kSeq, {"E1", "E2"},
                           Seconds(2));
  obs::OptimizerProbe strict_probe;
  RewriterOptions strict = RewriterOptions::MstOnly();
  strict.probe = &strict_probe;
  Build({wide, narrow}, strict);
  EXPECT_GT(strict_probe.rewriter.window_mismatch_skips, 0u);
  EXPECT_TRUE(strict_probe.rewriter.candidates.empty());
}

TEST_F(RewriterTest, ProbeRecordsUnprofitableCandidates) {
  // With pruning enabled the unprofitable candidates are rejected but still
  // traced; with pruning disabled the same candidates become edges. Either
  // way the candidate set covers them.
  std::vector<FlatQuery> queries = {
      Query("a", PatternOp::kSeq, {"E1", "E2", "E3", "E4"}),
      Query("b", PatternOp::kSeq, {"E2", "E3", "E4", "E5"}),
      Query("c", PatternOp::kConj, {"E1", "E2", "E3"}),
  };
  obs::OptimizerProbe pruned_probe;
  RewriterOptions pruned = RewriterOptions::Motto();
  pruned.probe = &pruned_probe;
  SharingGraph pruned_graph = Build(queries, pruned);

  obs::OptimizerProbe full_probe;
  RewriterOptions full = RewriterOptions::Motto();
  full.prune_unprofitable = false;
  full.probe = &full_probe;
  SharingGraph full_graph = Build(queries, full);

  size_t pruned_accepted =
      pruned_probe.rewriter.CountDecision(obs::EdgeDecision::kAccepted);
  size_t pruned_unprofitable = pruned_probe.rewriter.CountDecision(
      obs::EdgeDecision::kRejectedUnprofitable);
  EXPECT_EQ(pruned_accepted, pruned_graph.edges.size());
  // Without pruning, every costed candidate is accepted.
  EXPECT_EQ(full_probe.rewriter.CountDecision(obs::EdgeDecision::kAccepted),
            full_graph.edges.size());
  EXPECT_EQ(full_probe.rewriter.CountDecision(
                obs::EdgeDecision::kRejectedUnprofitable),
            0u);
  EXPECT_EQ(pruned_accepted + pruned_unprofitable, full_graph.edges.size());
  for (const obs::EdgeCandidate& c : pruned_probe.rewriter.candidates) {
    if (c.decision == obs::EdgeDecision::kRejectedUnprofitable) {
      EXPECT_GT(c.cost, 0.0);
      EXPECT_GE(c.cost, 0.9 * c.scratch_cost);  // kProfitMargin.
    }
  }
}

TEST_F(RewriterTest, NullProbeLeavesGraphIdentical) {
  std::vector<FlatQuery> queries = {
      Query("a", PatternOp::kSeq, {"E1", "E2", "E3"}),
      Query("b", PatternOp::kSeq, {"E1", "E3"}),
      Query("c", PatternOp::kConj, {"E1", "E3"}),
      Query("d", PatternOp::kSeq, {"E2", "E3", "E4"}, Seconds(6)),
  };
  SharingGraph plain = Build(queries);
  obs::OptimizerProbe probe;
  RewriterOptions options = RewriterOptions::Motto();
  options.probe = &probe;
  SharingGraph probed = Build(queries, options);
  EXPECT_EQ(plain.ToString(registry_), probed.ToString(registry_));
}

}  // namespace
}  // namespace motto
