// Integration tests mirroring the paper's worked examples (Examples 1-8,
// Tables II/III): each example's rewrite is discovered by the rewriter,
// materializes in the executable plan, and produces matches identical to
// independent execution.
#include <gtest/gtest.h>

#include "ccl/parser.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "motto/nested.h"
#include "motto/optimizer.h"
#include "motto/rewriter.h"
#include "planner/plan_builder.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::Fingerprints;
using testing::MatchSet;

/// Shared fixture: E1..E8 primitive types, a random selective stream, and
/// helpers to optimize + execute + compare against NA.
class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() {
    for (int i = 1; i <= 8; ++i) {
      types_.push_back(registry_.RegisterPrimitive("E" + std::to_string(i)));
    }
    Rng rng(20170419);  // ICDE'17 :-)
    Timestamp ts = 0;
    for (int i = 0; i < 4000; ++i) {
      ts += rng.Uniform(1, Millis(25));
      stream_.push_back(Event::Primitive(
          types_[static_cast<size_t>(rng.Uniform(0, 7))], ts));
    }
  }

  Query Parse(const std::string& name, const std::string& pattern,
              Duration window = Millis(60)) {
    auto expr = ccl::ParsePattern(pattern, &registry_);
    EXPECT_TRUE(expr.ok()) << expr.status();
    return Query{name, *expr, window};
  }

  /// Optimizes with MOTTO, checks match equality vs NA, returns the outcome.
  OptimizeOutcome RunAndVerify(const std::vector<Query>& queries) {
    StreamStats stats = ComputeStats(stream_);
    OptimizerOptions na_options;
    na_options.mode = OptimizerMode::kNa;
    Optimizer na_optimizer(&registry_, stats, na_options);
    auto na = na_optimizer.Optimize(queries);
    EXPECT_TRUE(na.ok()) << na.status();
    Optimizer optimizer(&registry_, stats, OptimizerOptions{});
    auto outcome = optimizer.Optimize(queries);
    EXPECT_TRUE(outcome.ok()) << outcome.status();

    auto na_exec = Executor::Create(na->jqp);
    auto exec = Executor::Create(outcome->jqp);
    EXPECT_TRUE(na_exec.ok());
    EXPECT_TRUE(exec.ok()) << exec.status();
    auto na_run = na_exec->Run(stream_);
    auto run = exec->Run(stream_);
    EXPECT_TRUE(na_run.ok());
    EXPECT_TRUE(run.ok());
    for (const Query& q : queries) {
      EXPECT_EQ(Fingerprints(na_run->sink_events.at(q.name)),
                Fingerprints(run->sink_events.at(q.name)))
          << q.name << "\n" << outcome->jqp.ToString(registry_);
    }
    return *std::move(outcome);
  }

  /// Sharing graph built with pruning disabled (mechanism inspection).
  SharingGraph GraphOf(const std::vector<Query>& queries) {
    CompositeCatalog catalog;
    auto flat = DivideWorkload(queries, &registry_, &catalog);
    EXPECT_TRUE(flat.ok());
    StreamStats stats = ComputeStats(stream_);
    CostModel cost(stats);
    RewriterOptions options = RewriterOptions::Motto();
    options.prune_unprofitable = false;
    return BuildSharingGraph(*flat, options, &registry_, &catalog, &cost);
  }

  bool HasEdgeKind(const SharingGraph& graph, RewriteRecipe::Kind kind) {
    for (const SharingEdge& e : graph.edges) {
      if (e.recipe.kind == kind) return true;
    }
    return false;
  }

  EventTypeRegistry registry_;
  std::vector<EventTypeId> types_;
  EventStream stream_;
};

TEST_F(PaperExampleTest, Example1MstNonSubstringMerge) {
  // q1 = SEQ(E1,E2,E3) computed from q2 = SEQ(E1,E3) via
  // CONJ({E1,E3} & E2) + time filter.
  std::vector<Query> queries = {Parse("q1", "SEQ(E1, E2, E3)"),
                                Parse("q2", "SEQ(E1, E3)")};
  SharingGraph graph = GraphOf(queries);
  EXPECT_TRUE(HasEdgeKind(graph, RewriteRecipe::Kind::kMergeOrdered))
      << graph.ToString(registry_);
  RunAndVerify(queries);
}

TEST_F(PaperExampleTest, Example2DstCommonSubQuery) {
  // q3 = SEQ(E1,E2,E4), q4 = SEQ(E2,E4,E3) share q_x = SEQ(E2,E4).
  std::vector<Query> queries = {Parse("q3", "SEQ(E1, E2, E4)"),
                                Parse("q4", "SEQ(E2, E4, E3)")};
  SharingGraph graph = GraphOf(queries);
  bool has_qx = false;
  for (const SharingNode& node : graph.nodes) {
    if (!node.terminal && node.pattern.op == PatternOp::kSeq &&
        node.pattern.operands ==
            std::vector<EventTypeId>{registry_.Find("E2"),
                                     registry_.Find("E4")}) {
      has_qx = true;
    }
  }
  EXPECT_TRUE(has_qx) << graph.ToString(registry_);
  OptimizeOutcome outcome = RunAndVerify(queries);
  EXPECT_LE(outcome.planned_cost, outcome.default_cost);
}

TEST_F(PaperExampleTest, Example3InterestingSubQueries) {
  // q6 = SEQ(E1..E3,E5,E6,E7,E8), q7 = SEQ(E1,E3,E6,E5,E7,E8): the paper
  // derives MS1 = (E1,E3,E5), MS2 = (E1,E3,E6) and S5 = (E7,E8).
  std::vector<Query> queries = {
      Parse("q6", "SEQ(E1, E2, E3, E5, E6, E7, E8)"),
      Parse("q7", "SEQ(E1, E3, E6, E5, E7, E8)")};
  SharingGraph graph = GraphOf(queries);
  auto has_sub = [&](std::vector<std::string> names) {
    std::vector<EventTypeId> operands;
    for (const std::string& n : names) operands.push_back(registry_.Find(n));
    for (const SharingNode& node : graph.nodes) {
      if (node.pattern.op == PatternOp::kSeq &&
          node.pattern.operands == operands) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_sub({"E7", "E8"})) << graph.ToString(registry_);        // S5
  EXPECT_TRUE(has_sub({"E1", "E3", "E5"})) << graph.ToString(registry_);  // MS1
  EXPECT_TRUE(has_sub({"E1", "E3", "E6"})) << graph.ToString(registry_);  // MS2
  RunAndVerify(queries);
}

TEST_F(PaperExampleTest, Example4DstEnablesMstOnSubQueries) {
  // q8 = SEQ(E1,E2,E3,E5), q9 = SEQ(E1,E3,E4): sharable only through the
  // decomposed sub-query SEQ(E1,E3).
  std::vector<Query> queries = {Parse("q8", "SEQ(E1, E2, E3, E5)"),
                                Parse("q9", "SEQ(E1, E3, E4)")};
  SharingGraph graph = GraphOf(queries);
  bool found = false;
  for (const SharingNode& node : graph.nodes) {
    if (!node.terminal &&
        node.pattern.operands == std::vector<EventTypeId>{
            registry_.Find("E1"), registry_.Find("E3")}) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << graph.ToString(registry_);
  RunAndVerify(queries);
}

TEST_F(PaperExampleTest, Example5OttSeqFromConj) {
  // q2 = SEQ(E1,E3) answered from q5 = CONJ(E1&E3) via Filter_sc.
  std::vector<Query> queries = {Parse("q2", "SEQ(E1, E3)"),
                                Parse("q5", "CONJ(E1 & E3)")};
  SharingGraph graph = GraphOf(queries);
  EXPECT_TRUE(HasEdgeKind(graph, RewriteRecipe::Kind::kOrderFilter))
      << graph.ToString(registry_);
  OptimizeOutcome outcome = RunAndVerify(queries);
  bool has_filter_node = false;
  for (const JqpNode& node : outcome.jqp.nodes) {
    if (std::holds_alternative<OrderFilterSpec>(node.spec)) {
      has_filter_node = true;
    }
  }
  EXPECT_TRUE(has_filter_node) << outcome.jqp.ToString(registry_);
}

TEST_F(PaperExampleTest, Example6OttWithDst) {
  // q10 = SEQ(E1,E2,E3), q2 = SEQ(E1,E3), q5 = CONJ(E1&E3): the chain
  // CONJ(E1&E3) -> SEQ(E1,E3) -> (merge into q10) combines OTT and DST.
  std::vector<Query> queries = {Parse("q10", "SEQ(E1, E2, E3)"),
                                Parse("q2", "SEQ(E1, E3)"),
                                Parse("q5", "CONJ(E1 & E3)")};
  SharingGraph graph = GraphOf(queries);
  EXPECT_TRUE(HasEdgeKind(graph, RewriteRecipe::Kind::kOrderFilter));
  EXPECT_TRUE(HasEdgeKind(graph, RewriteRecipe::Kind::kMergeOrdered));
  RunAndVerify(queries);
}

TEST_F(PaperExampleTest, Example7NestedDivisionAndSharing) {
  // Table II/III: q11 = SEQ(E1, DISJ(E4|E3), CONJ(E2&E3)),
  // q12 = SEQ(E1, CONJ(E2&E3)); CONJ(E2&E3) is the common sub-query.
  std::vector<Query> queries = {
      Parse("q11", "SEQ(E1, DISJ(E4|E3), CONJ(E2&E3))"),
      Parse("q12", "SEQ(E1, CONJ(E2&E3))")};
  OptimizeOutcome outcome = RunAndVerify(queries);
  // One shared CONJ node answers both inner sub-queries.
  int conj_nodes = 0;
  for (const JqpNode& node : outcome.jqp.nodes) {
    const auto* pattern = std::get_if<PatternSpec>(&node.spec);
    if (pattern != nullptr && pattern->op == PatternOp::kConj) ++conj_nodes;
  }
  EXPECT_EQ(conj_nodes, 1) << outcome.jqp.ToString(registry_);
  EXPECT_LT(outcome.planned_cost, outcome.default_cost);
}

TEST_F(PaperExampleTest, Example8Section5Workload) {
  // The §V running workload q1..q5; Fig 12 selects SEQ(E1,E2) sharing and
  // the CONJ->SEQ transformation. We check the solved plan is consistent,
  // cheaper than NA, and correct.
  std::vector<Query> queries = {
      Parse("q1", "SEQ(E1, E2, E3)"), Parse("q2", "SEQ(E1, E3)"),
      Parse("q3", "SEQ(E1, E2, E4)"), Parse("q4", "SEQ(E2, E4, E3)"),
      Parse("q5", "CONJ(E1 & E3)")};
  OptimizeOutcome outcome = RunAndVerify(queries);
  EXPECT_TRUE(outcome.exact);
  EXPECT_LT(outcome.planned_cost, outcome.default_cost);
  auto cost = ValidateDecision(outcome.sharing_graph, outcome.decision);
  ASSERT_TRUE(cost.ok()) << cost.status();
  EXPECT_NEAR(*cost, outcome.planned_cost, 1e-9);
}

TEST_F(PaperExampleTest, Table3IterationOutputsAreNodes) {
  // Table III's outputs: CONJ(E2&E3) (identical inner sub-queries) and
  // SEQ(E1, E_q2) (MST-applicable outer) both appear as sharing-graph
  // nodes of the divided q11/q12 workload.
  std::vector<Query> queries = {
      Parse("q11", "SEQ(E1, DISJ(E4|E3), CONJ(E2&E3))"),
      Parse("q12", "SEQ(E1, CONJ(E2&E3))")};
  SharingGraph graph = GraphOf(queries);
  int conj_nodes = 0;
  int outer_with_composite = 0;
  for (const SharingNode& node : graph.nodes) {
    if (node.pattern.op == PatternOp::kConj &&
        node.pattern.operands.size() == 2 &&
        registry_.IsPrimitive(node.pattern.operands[0])) {
      ++conj_nodes;
    }
    if (node.pattern.op == PatternOp::kSeq) {
      for (EventTypeId t : node.pattern.operands) {
        if (!registry_.IsPrimitive(t)) {
          ++outer_with_composite;
          break;
        }
      }
    }
  }
  EXPECT_EQ(conj_nodes, 1) << graph.ToString(registry_);  // Deduplicated.
  EXPECT_GE(outer_with_composite, 2);  // q11 and q12 outers.
}

}  // namespace
}  // namespace motto
