#include "util/sequence.h"

#include <gtest/gtest.h>

namespace motto {
namespace {

TEST(SubstringTest, FindsContiguousRuns) {
  SymbolSeq hay = {1, 2, 3, 4, 5};
  EXPECT_TRUE(IsSubstring({2, 3}, hay));
  EXPECT_TRUE(IsSubstring({1}, hay));
  EXPECT_TRUE(IsSubstring({1, 2, 3, 4, 5}, hay));
  EXPECT_FALSE(IsSubstring({2, 4}, hay));
  EXPECT_FALSE(IsSubstring({5, 1}, hay));
}

TEST(SubstringTest, EmptyNeedleMatchesEverywhere) {
  EXPECT_TRUE(IsSubstring({}, {1, 2}));
  EXPECT_TRUE(IsSubstring({}, {}));
  EXPECT_EQ(FindSubstring({}, {1, 2}), 0);
}

TEST(SubstringTest, FindReturnsFirstPosition) {
  SymbolSeq hay = {7, 1, 2, 1, 2};
  EXPECT_EQ(FindSubstring({1, 2}, hay), 1);
  EXPECT_EQ(FindSubstring({9}, hay), -1);
  EXPECT_EQ(FindSubstring({1, 2, 1, 2, 3}, hay), -1);
}

TEST(SubsequenceTest, RespectsOrder) {
  SymbolSeq hay = {1, 2, 3, 4};
  EXPECT_TRUE(IsSubsequence({1, 3}, hay));
  EXPECT_TRUE(IsSubsequence({2, 4}, hay));
  EXPECT_TRUE(IsSubsequence({}, hay));
  EXPECT_FALSE(IsSubsequence({3, 1}, hay));
  EXPECT_FALSE(IsSubsequence({1, 5}, hay));
  EXPECT_FALSE(IsSubsequence({1, 1}, hay));
}

TEST(SubsequenceTest, PositionsAreGreedyLeftmost) {
  SymbolSeq hay = {1, 2, 1, 3};
  std::vector<size_t> pos = SubsequencePositions({1, 3}, hay);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], 0u);
  EXPECT_EQ(pos[1], 3u);
  EXPECT_TRUE(SubsequencePositions({3, 2}, hay).empty());
}

TEST(MultisetTest, SubMultisetCountsElements) {
  EXPECT_TRUE(IsSubMultiset({1, 2}, {2, 1, 3}));
  EXPECT_TRUE(IsSubMultiset({}, {1}));
  EXPECT_TRUE(IsSubMultiset({1, 1}, {1, 2, 1}));
  EXPECT_FALSE(IsSubMultiset({1, 1}, {1, 2}));
  EXPECT_FALSE(IsSubMultiset({4}, {1, 2}));
}

TEST(MultisetTest, DifferencePreservesOrderOfSurvivors) {
  SymbolSeq diff = MultisetDifference({2, 1}, {3, 1, 2, 1});
  EXPECT_EQ(diff, (SymbolSeq{3, 1}));
  EXPECT_EQ(MultisetDifference({}, {5, 6}), (SymbolSeq{5, 6}));
  EXPECT_TRUE(MultisetDifference({5, 6}, {5, 6}).empty());
}

}  // namespace
}  // namespace motto
