// Table-driven edge semantics for the brute-force oracle, pinned two ways:
// against hand-computed match multisets, and against the engine (per-query
// NA plan through the executor) on the same cases. Covers the boundary
// behaviours DESIGN.md §10 spells out: minimal windows, inclusive window
// and NEG interval endpoints, NEG at stream head/tail, simultaneous
// timestamps, empty streams, and duplicate-type multiplicity.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ccl/parser.h"
#include "engine/executor.h"
#include "event/stream.h"
#include "motto/optimizer.h"
#include "test_util.h"
#include "verify/oracle.h"

namespace motto {
namespace {

using testing::MakeStream;
using verify::MatchSet;
using verify::OracleMatches;

/// One pinned case: a CCL pattern text, a window, a stream given as
/// (type name, ts) pairs, and the expected fingerprints spelled out as
/// "name@ts" parts (translated to type ids at run time).
struct OracleCase {
  const char* label;
  const char* pattern;
  Duration window;
  std::vector<std::pair<std::string, Timestamp>> events;
  /// Each match as its constituent list; multiset semantics.
  std::vector<std::vector<std::pair<std::string, Timestamp>>> expect;
};

MatchSet ExpectedSet(const OracleCase& c, const EventTypeRegistry& registry) {
  MatchSet out;
  for (const auto& match : c.expect) {
    std::vector<Constituent> parts;
    Timestamp end = 0;
    for (const auto& [name, ts] : match) {
      EventTypeId type = registry.Find(name);
      EXPECT_NE(type, kInvalidEventType) << name;
      parts.push_back(Constituent{type, ts, 0});
      end = std::max(end, ts);
    }
    out.insert(Event::Composite(0, parts, end).Fingerprint());
  }
  return out;
}

/// The same query through the real engine: NA plan, single query, executor.
MatchSet EngineSet(const Query& query, const EventStream& stream,
                   EventTypeRegistry* registry) {
  OptimizerOptions options;
  options.mode = OptimizerMode::kNa;
  Optimizer optimizer(registry, ComputeStats(stream), options);
  auto outcome = optimizer.Optimize({query});
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  auto executor = Executor::Create(outcome->jqp);
  EXPECT_TRUE(executor.ok()) << executor.status();
  auto run = executor->Run(stream);
  EXPECT_TRUE(run.ok()) << run.status();
  MatchSet out;
  auto it = run->sink_events.find(query.name);
  if (it != run->sink_events.end()) {
    for (const Event& e : it->second) out.insert(e.Fingerprint());
  }
  return out;
}

void RunCase(const OracleCase& c) {
  SCOPED_TRACE(c.label);
  EventTypeRegistry registry;
  EventStream stream = MakeStream(&registry, c.events);
  auto pattern = ccl::ParsePattern(c.pattern, &registry);
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  Query query{"q", *pattern, c.window};

  auto oracle = OracleMatches(query, stream);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_EQ(*oracle, ExpectedSet(c, registry)) << "oracle vs hand-computed";
  EXPECT_EQ(*oracle, EngineSet(query, stream, &registry))
      << "oracle vs engine";
}

TEST(OracleTest, WindowEdges) {
  // Window guard is max_end - min_begin <= window, inclusive.
  RunCase({"span-equals-window", "SEQ(a, b)", 5,
           {{"a", 10}, {"b", 15}},
           {{{"a", 10}, {"b", 15}}}});
  RunCase({"span-exceeds-window", "SEQ(a, b)", 4,
           {{"a", 10}, {"b", 15}},
           {}});
  RunCase({"minimal-window", "SEQ(a, b)", 1,
           {{"a", 10}, {"b", 11}, {"b", 12}},
           {{{"a", 10}, {"b", 11}}}});
  RunCase({"window-beyond-stream", "SEQ(a, b)", 1000000,
           {{"a", 1}, {"b", 999}},
           {{{"a", 1}, {"b", 999}}}});
}

TEST(OracleTest, SimultaneousTimestamps) {
  // SEQ's order guard is strict (end < begin): equal timestamps never
  // satisfy it; CONJ accepts any order including simultaneity.
  RunCase({"seq-equal-ts", "SEQ(a, b)", 10, {{"a", 5}, {"b", 5}}, {}});
  RunCase({"conj-equal-ts", "CONJ(a & b)", 10,
           {{"a", 5}, {"b", 5}},
           {{{"a", 5}, {"b", 5}}}});
  RunCase({"seq-same-type-equal-ts", "SEQ(a, a)", 10,
           {{"a", 5}, {"a", 5}},
           {}});
}

TEST(OracleTest, DuplicateTypeMultiplicity) {
  // CONJ over duplicate operand types: one match per ordered assignment of
  // distinct events, so two a's yield two (fingerprint-identical) matches.
  RunCase({"conj-a-a", "CONJ(a & a)", 10,
           {{"a", 1}, {"a", 3}},
           {{{"a", 1}, {"a", 3}}, {{"a", 1}, {"a", 3}}}});
  // A single event can never fill both operands.
  RunCase({"conj-a-a-single", "CONJ(a & a)", 10, {{"a", 1}}, {}});
  // SEQ over the same type needs strict timestamp order, once per pair.
  RunCase({"seq-a-a", "SEQ(a, a)", 10,
           {{"a", 1}, {"a", 3}},
           {{{"a", 1}, {"a", 3}}}});
}

TEST(OracleTest, NegationInterval) {
  // NEG kills when a negated event lies in [min_begin, min_begin + window],
  // both ends inclusive — including negated events *before* the last
  // operand (head) and *after* it (tail, the deferred-emission case).
  RunCase({"neg-kills-inside", "SEQ(a, b, NEG(c))", 10,
           {{"a", 10}, {"c", 14}, {"b", 15}},
           {}});
  RunCase({"neg-at-min-begin", "SEQ(a, b, NEG(c))", 10,
           {{"c", 10}, {"a", 10}, {"b", 15}},
           {}});
  RunCase({"neg-at-window-end", "SEQ(a, b, NEG(c))", 10,
           {{"a", 10}, {"b", 15}, {"c", 20}},
           {}});
  RunCase({"neg-just-past-window", "SEQ(a, b, NEG(c))", 10,
           {{"a", 10}, {"b", 15}, {"c", 21}},
           {{{"a", 10}, {"b", 15}}}});
  // NEG before the match's window opens does not kill (stream head).
  RunCase({"neg-before-window", "SEQ(a, b, NEG(c))", 10,
           {{"c", 9}, {"a", 10}, {"b", 15}},
           {{{"a", 10}, {"b", 15}}}});
  // The negated interval is anchored at min_begin, not at completion: a
  // negated event between completion and window end still kills.
  RunCase({"neg-after-completion", "CONJ(a & b & NEG(c))", 10,
           {{"a", 10}, {"b", 12}, {"c", 19}},
           {}});
}

TEST(OracleTest, NegationOwnConstituent) {
  // A negated type that is also an operand type kills every match that
  // starts with it (its own timestamp is inside the interval).
  RunCase({"neg-self", "SEQ(a, b, NEG(a))", 10,
           {{"a", 1}, {"b", 2}},
           {}});
}

TEST(OracleTest, EmptyAndDegenerateStreams) {
  RunCase({"empty-stream", "SEQ(a, b)", 10, {}, {}});
  RunCase({"only-negated-events", "SEQ(a, b, NEG(c))", 10,
           {{"c", 1}, {"c", 5}},
           {}});
  RunCase({"disj-empty", "DISJ(a | b)", 10, {}, {}});
}

TEST(OracleTest, DisjPassThrough) {
  RunCase({"disj-each-event", "DISJ(a | b)", 10,
           {{"a", 1}, {"b", 2}, {"a", 3}},
           {{{"a", 1}}, {{"b", 2}}, {{"a", 3}}}});
  // Duplicate operand types emit once per event, not once per operand.
  RunCase({"disj-a-a", "DISJ(a | a)", 10,
           {{"a", 1}},
           {{{"a", 1}}}});
}

TEST(OracleTest, NestedSharedEvent) {
  // CONJ(a, DISJ(a | b)): the raw channel and the DISJ pass-through are
  // distinct arrivals, so one physical 'a' legitimately fills both
  // operands (plus the two-distinct-events assignments, once per ordered
  // pair via the two different channels).
  RunCase({"conj-of-disj-self-pair", "CONJ(a & DISJ(a | b))", 10,
           {{"a", 1}},
           {{{"a", 1}, {"a", 1}}}});
  RunCase({"conj-of-disj-two-events", "CONJ(a & DISJ(a | b))", 10,
           {{"a", 1}, {"a", 2}},
           {{{"a", 1}, {"a", 1}},
            {{"a", 2}, {"a", 2}},
            {{"a", 1}, {"a", 2}},
            {{"a", 2}, {"a", 1}}}});
  // Identical operator children share one producer channel, so distinct
  // arrivals are required: a single 'a' cannot fill both DISJ operands.
  RunCase({"conj-of-identical-disj", "CONJ(DISJ(a | b) & DISJ(a | b))", 10,
           {{"a", 1}},
           {}});
}

TEST(OracleTest, Predicates) {
  EventTypeRegistry registry;
  EventStream stream;
  EventTypeId a = registry.RegisterPrimitive("a");
  EventTypeId b = registry.RegisterPrimitive("b");
  stream.push_back(Event::Primitive(a, 1, Payload{50.0, 10}));
  stream.push_back(Event::Primitive(a, 2, Payload{80.0, 10}));
  stream.push_back(Event::Primitive(b, 3, Payload{10.0, 999}));

  auto pattern = ccl::ParsePattern("SEQ(a[value > 60], b)", &registry);
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  Query query{"q", *pattern, 100};
  auto oracle = OracleMatches(query, stream);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  MatchSet expect;
  expect.insert(
      Event::Composite(0, {{a, 2, 0}, {b, 3, 1}}, 3).Fingerprint());
  EXPECT_EQ(*oracle, expect);
  EXPECT_EQ(*oracle, EngineSet(query, stream, &registry));

  // Differently-predicated operands of one type share the raw channel, so
  // an event satisfying both predicates still fills only one operand.
  auto both = ccl::ParsePattern("CONJ(a[value > 10] & a[aux <= 100])",
                                &registry);
  ASSERT_TRUE(both.ok()) << both.status();
  Query query2{"q2", *both, 100};
  auto oracle2 = OracleMatches(query2, stream);
  ASSERT_TRUE(oracle2.ok()) << oracle2.status();
  // a@1 and a@2 each satisfy both predicates: two ordered assignments.
  MatchSet expect2;
  std::string pair =
      Event::Composite(0, {{a, 1, 0}, {a, 2, 1}}, 2).Fingerprint();
  expect2.insert(pair);
  expect2.insert(pair);
  EXPECT_EQ(*oracle2, expect2);
  EXPECT_EQ(*oracle2, EngineSet(query2, stream, &registry));

  // Negated predicate: only matching payloads kill.
  auto neg = ccl::ParsePattern("SEQ(a, b, NEG(a[value > 60]))", &registry);
  ASSERT_TRUE(neg.ok()) << neg.status();
  Query query3{"q3", *neg, 100};
  auto oracle3 = OracleMatches(query3, stream);
  ASSERT_TRUE(oracle3.ok()) << oracle3.status();
  // a@2 (value 80) kills everything in [1, 101] and [2, 102].
  EXPECT_TRUE(oracle3->empty());
  EXPECT_EQ(*oracle3, EngineSet(query3, stream, &registry));
}

TEST(OracleTest, RejectsSameCasesAsDivision) {
  EventTypeRegistry registry;
  EventTypeId a = registry.RegisterPrimitive("a");
  EventStream stream;

  // Bare leaf.
  Query leaf{"q", PatternExpr::Leaf(a), 10};
  EXPECT_FALSE(OracleMatches(leaf, stream).ok());

  // Non-positive window.
  Query zero{"q", PatternExpr::Operator(PatternOp::kSeq,
                                        {PatternExpr::Leaf(a),
                                         PatternExpr::Leaf(a)}),
             0};
  EXPECT_FALSE(OracleMatches(zero, stream).ok());

  // Inner negation.
  PatternExpr inner = PatternExpr::Operator(
      PatternOp::kSeq, {PatternExpr::Leaf(a), PatternExpr::Leaf(a)},
      {PatternExpr::Leaf(a)});
  Query nested{"q", PatternExpr::Operator(PatternOp::kConj,
                                          {inner, PatternExpr::Leaf(a)}),
               10};
  EXPECT_FALSE(OracleMatches(nested, stream).ok());
}

TEST(OracleTest, BudgetExhaustionIsOutOfRange) {
  EventTypeRegistry registry;
  std::vector<std::pair<std::string, Timestamp>> events;
  for (int i = 0; i < 64; ++i) events.emplace_back("a", i);
  EventStream stream = MakeStream(&registry, events);
  auto pattern = ccl::ParsePattern("CONJ(a & a & a & a)", &registry);
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  Query query{"q", *pattern, 1000};
  verify::OracleOptions options;
  options.max_steps = 1000;
  auto result = OracleMatches(query, stream, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace motto
