#include "engine/matcher.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/plan_util.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::Fingerprints;
using testing::MakeStream;
using testing::MatchSet;
using testing::ReferenceMatches;

constexpr Timestamp kFar = 1'000'000'000'000;

/// Drives a stand-alone matcher over a raw stream the way the executor
/// would: watermark, then event; final watermark flush at the end.
std::vector<Event> RunMatcher(PatternMatcher* matcher,
                              const EventStream& stream) {
  std::vector<Event> out;
  for (const Event& e : stream) {
    matcher->OnWatermark(e.begin(), &out);
    matcher->OnEvent(kRawChannel, e, &out);
  }
  matcher->OnWatermark(kFar, &out);
  return out;
}

class MatcherTest : public ::testing::Test {
 protected:
  FlatPattern Pattern(PatternOp op, std::vector<std::string> operand_names,
                      std::vector<std::string> negated_names = {}) {
    FlatPattern flat;
    flat.op = op;
    for (const std::string& n : operand_names) {
      flat.operands.push_back(registry_.RegisterPrimitive(n));
    }
    for (const std::string& n : negated_names) {
      flat.negated.push_back(registry_.RegisterPrimitive(n));
    }
    return flat;
  }

  std::vector<Event> Run(const FlatPattern& flat, Duration window,
                         const EventStream& stream) {
    PatternMatcher matcher(MakeRawPatternSpec(flat, window, &registry_));
    return RunMatcher(&matcher, stream);
  }

  /// Same as Run but in selectivity-ordered (lazy) mode under the given
  /// evaluation order (empty = identity).
  std::vector<Event> RunLazy(const FlatPattern& flat, Duration window,
                             const EventStream& stream,
                             std::vector<int32_t> eval_order = {}) {
    PatternSpec spec = MakeRawPatternSpec(flat, window, &registry_);
    spec.eval_order = std::move(eval_order);
    PatternMatcher matcher(spec);
    matcher.SetEvalMode(EvalOrderMode::kSelectivity);
    return RunMatcher(&matcher, stream);
  }

  EventTypeRegistry registry_;
};

TEST_F(MatcherTest, SeqMatchesOrderedTriple) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2", "E3"});
  EventStream s = MakeStream(&registry_, {{"E1", 10}, {"E2", 20}, {"E3", 30}});
  std::vector<Event> out = Run(flat, Seconds(10), s);
  ASSERT_EQ(out.size(), 1u);
  const Event& m = out[0];
  EXPECT_EQ(m.begin(), 10);
  EXPECT_EQ(m.end(), 30);
  ASSERT_EQ(m.constituents().size(), 3u);
  EXPECT_EQ(m.constituents()[0].slot, 0);
  EXPECT_EQ(m.constituents()[1].slot, 1);
  EXPECT_EQ(m.constituents()[2].slot, 2);
  EXPECT_EQ(m.constituents()[1].ts, 20);
}

TEST_F(MatcherTest, SeqRejectsWrongOrder) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  EventStream s = MakeStream(&registry_, {{"E2", 10}, {"E1", 20}});
  EXPECT_TRUE(Run(flat, Seconds(10), s).empty());
}

TEST_F(MatcherTest, SeqEqualTimestampsDoNotChain) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  EventStream s = MakeStream(&registry_, {{"E1", 10}, {"E2", 10}});
  EXPECT_TRUE(Run(flat, Seconds(10), s).empty());
}

TEST_F(MatcherTest, SeqSkipTillAnyMatchProducesAllCombinations) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  EventStream s = MakeStream(
      &registry_, {{"E1", 1}, {"E1", 2}, {"E2", 3}, {"E2", 4}});
  EXPECT_EQ(Run(flat, Seconds(10), s).size(), 4u);
}

TEST_F(MatcherTest, SeqIgnoresInterleavedOtherTypes) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  EventStream s = MakeStream(&registry_, {{"E1", 1}, {"X", 2}, {"E2", 3}});
  EXPECT_EQ(Run(flat, Seconds(10), s).size(), 1u);
}

TEST_F(MatcherTest, WindowBoundaryIsInclusive) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  EventStream hit = MakeStream(&registry_, {{"E1", 0}, {"E2", Seconds(10)}});
  EXPECT_EQ(Run(flat, Seconds(10), hit).size(), 1u);
  EventStream miss =
      MakeStream(&registry_, {{"E1", 0}, {"E2", Seconds(10) + 1}});
  EXPECT_TRUE(Run(flat, Seconds(10), miss).empty());
}

TEST_F(MatcherTest, ConjMatchesAnyOrder) {
  FlatPattern flat = Pattern(PatternOp::kConj, {"E1", "E2"});
  EventStream s = MakeStream(&registry_, {{"E2", 10}, {"E1", 20}});
  ASSERT_EQ(Run(flat, Seconds(10), s).size(), 1u);
}

TEST_F(MatcherTest, ConjCountsCombinations) {
  FlatPattern flat = Pattern(PatternOp::kConj, {"E1", "E2"});
  EventStream s = MakeStream(&registry_,
                             {{"E1", 1}, {"E1", 2}, {"E2", 3}, {"E1", 4}});
  // Three E1s each pair with the single E2.
  EXPECT_EQ(Run(flat, Seconds(10), s).size(), 3u);
}

TEST_F(MatcherTest, ConjThreeOperands) {
  FlatPattern flat = Pattern(PatternOp::kConj, {"E1", "E2", "E3"});
  EventStream s = MakeStream(&registry_, {{"E3", 1}, {"E1", 2}, {"E2", 3}});
  ASSERT_EQ(Run(flat, Seconds(10), s).size(), 1u);
  EXPECT_EQ(Run(flat, 1, s).size(), 0u);  // 1us window too tight.
}

TEST_F(MatcherTest, DisjPassesMatchingTypesThrough) {
  FlatPattern flat = Pattern(PatternOp::kDisj, {"E1", "E2"});
  EventStream s = MakeStream(
      &registry_, {{"E1", 1}, {"X", 2}, {"E2", 3}, {"E1", 4}});
  std::vector<Event> out = Run(flat, Seconds(10), s);
  ASSERT_EQ(out.size(), 3u);
  for (const Event& e : out) EXPECT_TRUE(e.is_primitive());
}

TEST_F(MatcherTest, NegSuppressesWhenNegatedInsideWindow) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E3"}, {"E2"});
  // E2 falls inside [E1.ts, E1.ts + w] regardless of order vs E3.
  EventStream with = MakeStream(&registry_, {{"E1", 10}, {"E3", 20}, {"E2", 30}});
  EXPECT_TRUE(Run(flat, Seconds(1), with).empty());
  EventStream before = MakeStream(&registry_, {{"E2", 15}, {"E1", 20}, {"E3", 30}});
  // E2 before the match anchor does not kill it.
  EXPECT_EQ(Run(flat, Seconds(1), before).size(), 1u);
}

TEST_F(MatcherTest, NegAllowsWhenNegatedOutsideWindow) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E3"}, {"E2"});
  Duration w = Seconds(1);
  EventStream s = MakeStream(
      &registry_, {{"E1", 0}, {"E3", 100}, {"E2", w + 1}});
  std::vector<Event> out = Run(flat, w, s);
  ASSERT_EQ(out.size(), 1u);
  // NEG'd types never appear among constituents.
  for (const Constituent& c : out[0].constituents()) {
    EXPECT_NE(c.type, registry_.Find("E2"));
  }
}

TEST_F(MatcherTest, NegEmissionDeferredUntilExpiry) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E3"}, {"E2"});
  Duration w = Seconds(1);
  PatternMatcher matcher(MakeRawPatternSpec(flat, w, &registry_));
  EventStream s = MakeStream(&registry_, {{"E1", 0}, {"E3", 10}});
  std::vector<Event> out;
  for (const Event& e : s) {
    matcher.OnWatermark(e.begin(), &out);
    matcher.OnEvent(kRawChannel, e, &out);
  }
  EXPECT_TRUE(out.empty());  // Not yet expired.
  matcher.OnWatermark(w, &out);
  EXPECT_TRUE(out.empty());  // Still within [0, w].
  matcher.OnWatermark(w + 1, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(MatcherTest, NegKillsPendingMatchOnLateNegatedEvent) {
  FlatPattern flat = Pattern(PatternOp::kConj, {"E1", "E3"}, {"E2"});
  Duration w = Seconds(1);
  EventStream s = MakeStream(&registry_, {{"E3", 0}, {"E1", 10}, {"E2", 500}});
  EXPECT_TRUE(Run(flat, w, s).empty());
}

TEST_F(MatcherTest, NegBoundaryTimestampKills) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E3"}, {"E2"});
  Duration w = Seconds(1);
  EventStream edge = MakeStream(&registry_, {{"E1", 0}, {"E3", 5}, {"E2", w}});
  EXPECT_TRUE(Run(flat, w, edge).empty());
}

TEST_F(MatcherTest, CompositeOperandUsesSlotMapAndBoundaries) {
  // Downstream node: SEQ({E1,E2} composite via channel 1, then E3 raw).
  EventTypeId e1 = registry_.RegisterPrimitive("E1");
  EventTypeId e2 = registry_.RegisterPrimitive("E2");
  EventTypeId e3 = registry_.RegisterPrimitive("E3");
  EventTypeId combo = registry_.RegisterComposite("{E1,E2}");
  EventTypeId outt = registry_.RegisterComposite("{E1,E2,E3}");

  PatternSpec spec;
  spec.op = PatternOp::kSeq;
  spec.window = Seconds(10);
  spec.output_type = outt;
  spec.operands = {
      OperandBinding{{combo}, 1, {0, 1}, {}},
      OperandBinding{{e3}, kRawChannel, {2}, {}},
  };
  PatternMatcher matcher(spec);

  std::vector<Event> out;
  Event composite =
      Event::Composite(combo, {{e1, 10, 0}, {e2, 30, 1}}, 30);
  matcher.OnWatermark(30, &out);
  matcher.OnEvent(1, composite, &out);
  // E3 at 25 begins before the composite ends -> SEQ guard rejects.
  matcher.OnWatermark(31, &out);
  matcher.OnEvent(kRawChannel, Event::Primitive(e3, 31), &out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].constituents().size(), 3u);
  EXPECT_EQ(out[0].constituents()[0].slot, 0);
  EXPECT_EQ(out[0].constituents()[2].slot, 2);
  EXPECT_EQ(out[0].begin(), 10);
  EXPECT_EQ(out[0].end(), 31);

  // A second E3 arriving mid-composite must not match (E2.ts=30 > 29).
  PatternMatcher matcher2(spec);
  out.clear();
  matcher2.OnWatermark(30, &out);
  matcher2.OnEvent(1, composite, &out);
  matcher2.OnWatermark(30, &out);
  matcher2.OnEvent(kRawChannel, Event::Primitive(e3, 29), &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(MatcherTest, ExpiredPartialsAreEvicted) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  Duration w = 100;
  PatternMatcher matcher(MakeRawPatternSpec(flat, w, &registry_));
  std::vector<Event> out;
  EventTypeId e1 = registry_.Find("E1");
  for (int i = 0; i < 1000; ++i) {
    Timestamp ts = i * 1000;
    matcher.OnWatermark(ts, &out);
    matcher.OnEvent(kRawChannel, Event::Primitive(e1, ts), &out);
  }
  // All E1 partials but the most recent few are expired and swept.
  EXPECT_LT(matcher.PartialCount(), 70u);
}

TEST_F(MatcherTest, ResetClearsState) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  PatternMatcher matcher(MakeRawPatternSpec(flat, Seconds(10), &registry_));
  std::vector<Event> out;
  matcher.OnWatermark(1, &out);
  matcher.OnEvent(kRawChannel, Event::Primitive(registry_.Find("E1"), 1), &out);
  EXPECT_EQ(matcher.PartialCount(), 1u);
  matcher.Reset();
  EXPECT_EQ(matcher.PartialCount(), 0u);
  // E2 alone after reset: no dangling partial to extend.
  matcher.OnWatermark(2, &out);
  matcher.OnEvent(kRawChannel, Event::Primitive(registry_.Find("E2"), 2), &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(MatcherTest, DuplicateOperandTypesUseDistinctEvents) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E1"});
  EventStream one = MakeStream(&registry_, {{"E1", 1}});
  EXPECT_TRUE(Run(flat, Seconds(10), one).empty());
  EventStream two = MakeStream(&registry_, {{"E1", 1}, {"E1", 2}});
  EXPECT_EQ(Run(flat, Seconds(10), two).size(), 1u);
}

// ---------------------------------------------------------------------------
// Selectivity-ordered (lazy) mode: identical match semantics under any
// evaluation order, with buffering instead of eager partial fan-out.
// ---------------------------------------------------------------------------

TEST_F(MatcherTest, LazySeqAnchorLastStillReconstructsOrder) {
  // Anchor E3 arrives last; E1/E2 are buffered, then joined retroactively.
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2", "E3"});
  EventStream s = MakeStream(&registry_, {{"E1", 10}, {"E2", 20}, {"E3", 30}});
  std::vector<Event> out = RunLazy(flat, Seconds(10), s, {2, 0, 1});
  ASSERT_EQ(out.size(), 1u);
  const Event& m = out[0];
  EXPECT_EQ(m.begin(), 10);
  EXPECT_EQ(m.end(), 30);
  ASSERT_EQ(m.constituents().size(), 3u);
  // Emitted constituents are slot-ordered regardless of evaluation order.
  EXPECT_EQ(m.constituents()[0].slot, 0);
  EXPECT_EQ(m.constituents()[1].slot, 1);
  EXPECT_EQ(m.constituents()[2].slot, 2);
}

TEST_F(MatcherTest, LazySeqRejectsWrongOrderAndTiedTimestamps) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  EventStream wrong = MakeStream(&registry_, {{"E2", 10}, {"E1", 20}});
  EXPECT_TRUE(RunLazy(flat, Seconds(10), wrong, {1, 0}).empty());
  // Equal timestamps do not chain in lazy mode either (strict < guard).
  EventStream tied = MakeStream(&registry_, {{"E1", 10}, {"E2", 10}});
  EXPECT_TRUE(RunLazy(flat, Seconds(10), tied, {1, 0}).empty());
  EXPECT_TRUE(RunLazy(flat, Seconds(10), tied, {0, 1}).empty());
}

TEST_F(MatcherTest, LazyWindowBoundaryIsInclusive) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  EventStream hit = MakeStream(&registry_, {{"E1", 0}, {"E2", Seconds(10)}});
  EXPECT_EQ(RunLazy(flat, Seconds(10), hit, {1, 0}).size(), 1u);
  EventStream miss =
      MakeStream(&registry_, {{"E1", 0}, {"E2", Seconds(10) + 1}});
  EXPECT_TRUE(RunLazy(flat, Seconds(10), miss, {1, 0}).empty());
}

TEST_F(MatcherTest, LazyConjCountsCombinationsUnderEveryOrder) {
  FlatPattern flat = Pattern(PatternOp::kConj, {"E1", "E2"});
  EventStream s = MakeStream(&registry_,
                             {{"E1", 1}, {"E1", 2}, {"E2", 3}, {"E1", 4}});
  EXPECT_EQ(RunLazy(flat, Seconds(10), s, {0, 1}).size(), 3u);
  EXPECT_EQ(RunLazy(flat, Seconds(10), s, {1, 0}).size(), 3u);
}

TEST_F(MatcherTest, LazyDuplicateOperandTypesUseDistinctEvents) {
  // Both operands share type E1, so the operand buffers overlap: one
  // physical event must never fill both slots of one match.
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E1"});
  EventStream one = MakeStream(&registry_, {{"E1", 1}});
  EXPECT_TRUE(RunLazy(flat, Seconds(10), one, {1, 0}).empty());
  EventStream two = MakeStream(&registry_, {{"E1", 1}, {"E1", 2}});
  EXPECT_EQ(RunLazy(flat, Seconds(10), two, {1, 0}).size(), 1u);
  EXPECT_EQ(RunLazy(flat, Seconds(10), two, {0, 1}).size(), 1u);
}

TEST_F(MatcherTest, LazyNegEmissionDeferredUntilExpiry) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E3"}, {"E2"});
  Duration w = Seconds(1);
  PatternSpec spec = MakeRawPatternSpec(flat, w, &registry_);
  spec.eval_order = {1, 0};
  PatternMatcher matcher(spec);
  matcher.SetEvalMode(EvalOrderMode::kSelectivity);
  EventStream s = MakeStream(&registry_, {{"E1", 0}, {"E3", 10}});
  std::vector<Event> out;
  for (const Event& e : s) {
    matcher.OnWatermark(e.begin(), &out);
    matcher.OnEvent(kRawChannel, e, &out);
  }
  EXPECT_TRUE(out.empty());  // Deferred, exactly as in arrival mode.
  matcher.OnWatermark(w + 1, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(MatcherTest, LazyNegKillsPendingMatchOnLateNegatedEvent) {
  FlatPattern flat = Pattern(PatternOp::kConj, {"E1", "E3"}, {"E2"});
  Duration w = Seconds(1);
  EventStream s = MakeStream(&registry_, {{"E3", 0}, {"E1", 10}, {"E2", 500}});
  EXPECT_TRUE(RunLazy(flat, w, s, {1, 0}).empty());
  EventStream edge = MakeStream(&registry_, {{"E1", 0}, {"E3", 5}, {"E2", w}});
  EXPECT_TRUE(RunLazy(flat, w, edge, {0, 1}).empty());
}

TEST_F(MatcherTest, LazyBuffersAndPartialsAreSwept) {
  FlatPattern flat = Pattern(PatternOp::kSeq, {"E1", "E2"});
  Duration w = 100;
  PatternSpec spec = MakeRawPatternSpec(flat, w, &registry_);
  spec.eval_order = {1, 0};  // E1 is the frequent, buffered operand.
  PatternMatcher matcher(spec);
  matcher.SetEvalMode(EvalOrderMode::kSelectivity);
  std::vector<Event> out;
  EventTypeId e1 = registry_.Find("E1");
  for (int i = 0; i < 1000; ++i) {
    Timestamp ts = i * 1000;
    matcher.OnWatermark(ts, &out);
    matcher.OnEvent(kRawChannel, Event::Primitive(e1, ts), &out);
  }
  // Only the most recent few E1s can still join a future anchor; the rest
  // must have been evicted from the operand buffer by the sweep.
  EXPECT_LT(matcher.BufferedCount(), 70u);
  EXPECT_EQ(matcher.PartialCount(), 0u);  // No anchors -> no runs at all.
  matcher.Reset();
  EXPECT_EQ(matcher.BufferedCount(), 0u);
}

TEST_F(MatcherTest, LazyFallsBackForDisjAndMalformedOrder) {
  // DISJ ignores SetEvalMode(kSelectivity) and stays pass-through.
  FlatPattern disj = Pattern(PatternOp::kDisj, {"E1", "E2"});
  EventStream s = MakeStream(
      &registry_, {{"E1", 1}, {"X", 2}, {"E2", 3}, {"E1", 4}});
  EXPECT_EQ(RunLazy(disj, Seconds(10), s).size(), 3u);
  // A malformed eval_order (wrong size) falls back to identity order
  // instead of corrupting dispatch.
  FlatPattern seq = Pattern(PatternOp::kSeq, {"E1", "E2"});
  EventStream ok = MakeStream(&registry_, {{"E1", 1}, {"E2", 2}});
  EXPECT_EQ(RunLazy(seq, Seconds(10), ok, {0}).size(), 1u);
}

// ---------------------------------------------------------------------------
// Property tests: the NFA matcher agrees with brute-force reference
// semantics on randomized streams, across operators, windows and negation.
// ---------------------------------------------------------------------------

struct PropertyCase {
  PatternOp op;
  int num_operands;
  bool with_neg;
  Duration window;
};

class MatcherPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(MatcherPropertyTest, AgreesWithReference) {
  const PropertyCase& param = GetParam();
  Rng rng(static_cast<uint64_t>(param.num_operands * 1000 +
                                static_cast<int>(param.op) * 100 +
                                (param.with_neg ? 7 : 0)) +
          static_cast<uint64_t>(param.window));
  for (int round = 0; round < 25; ++round) {
    EventTypeRegistry registry;
    int alphabet = param.num_operands + 2;
    std::vector<EventTypeId> types;
    for (int i = 0; i < alphabet; ++i) {
      types.push_back(registry.RegisterPrimitive("T" + std::to_string(i)));
    }
    FlatPattern flat;
    flat.op = param.op;
    for (int i = 0; i < param.num_operands; ++i) {
      flat.operands.push_back(
          types[static_cast<size_t>(rng.Uniform(0, alphabet - 2))]);
    }
    if (param.with_neg) {
      flat.negated.push_back(types[static_cast<size_t>(alphabet - 1)]);
    }
    int n_events = static_cast<int>(rng.Uniform(5, 28));
    EventStream stream;
    Timestamp ts = 0;
    for (int i = 0; i < n_events; ++i) {
      ts += rng.Uniform(0, 40);  // Occasional equal timestamps.
      stream.push_back(Event::Primitive(
          types[static_cast<size_t>(rng.Uniform(0, alphabet - 1))], ts));
    }
    PatternMatcher matcher(MakeRawPatternSpec(flat, param.window, &registry));
    MatchSet actual = Fingerprints(RunMatcher(&matcher, stream));
    MatchSet expected = ReferenceMatches(flat, param.window, stream);
    EXPECT_EQ(actual, expected)
        << "round " << round << " op=" << PatternOpName(flat.op)
        << " pattern=" << flat.ToString(registry) << " window=" << param.window;
    // Lazy mode must agree under the identity order and a random shuffle.
    PatternSpec lazy_spec = MakeRawPatternSpec(flat, param.window, &registry);
    for (int variant = 0; variant < 2; ++variant) {
      if (variant == 1) {
        lazy_spec.eval_order.resize(flat.operands.size());
        for (size_t i = 0; i < lazy_spec.eval_order.size(); ++i) {
          lazy_spec.eval_order[i] = static_cast<int32_t>(i);
        }
        for (size_t i = lazy_spec.eval_order.size(); i > 1; --i) {
          std::swap(lazy_spec.eval_order[i - 1],
                    lazy_spec.eval_order[static_cast<size_t>(
                        rng.Uniform(0, static_cast<int64_t>(i) - 1))]);
        }
      }
      PatternMatcher lazy(lazy_spec);
      lazy.SetEvalMode(EvalOrderMode::kSelectivity);
      MatchSet lazy_actual = Fingerprints(RunMatcher(&lazy, stream));
      EXPECT_EQ(lazy_actual, expected)
          << "lazy round " << round << " variant " << variant
          << " op=" << PatternOpName(flat.op)
          << " pattern=" << flat.ToString(registry)
          << " window=" << param.window;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Operators, MatcherPropertyTest,
    ::testing::Values(
        PropertyCase{PatternOp::kSeq, 2, false, 100},
        PropertyCase{PatternOp::kSeq, 3, false, 150},
        PropertyCase{PatternOp::kSeq, 4, false, 500},
        PropertyCase{PatternOp::kSeq, 2, true, 100},
        PropertyCase{PatternOp::kSeq, 3, true, 200},
        PropertyCase{PatternOp::kConj, 2, false, 100},
        PropertyCase{PatternOp::kConj, 3, false, 150},
        PropertyCase{PatternOp::kConj, 4, false, 300},
        PropertyCase{PatternOp::kConj, 2, true, 120},
        PropertyCase{PatternOp::kDisj, 2, false, 100},
        PropertyCase{PatternOp::kDisj, 4, false, 100},
        PropertyCase{PatternOp::kSeq, 3, false, 20},   // Tight window.
        PropertyCase{PatternOp::kConj, 3, false, 20},
        PropertyCase{PatternOp::kSeq, 2, false, 100000}));  // Loose window.

}  // namespace
}  // namespace motto
