#include "ccl/pattern.h"

#include <gtest/gtest.h>

namespace motto {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  PatternTest() {
    for (const char* name : {"E1", "E2", "E3", "E4"}) {
      ids_.push_back(registry_.RegisterPrimitive(name));
    }
  }
  EventTypeRegistry registry_;
  std::vector<EventTypeId> ids_;
};

TEST_F(PatternTest, LeafBasics) {
  PatternExpr leaf = PatternExpr::Leaf(ids_[0]);
  EXPECT_TRUE(leaf.is_leaf());
  EXPECT_EQ(leaf.leaf_type(), ids_[0]);
  EXPECT_EQ(leaf.NestedLevel(), 0);
  EXPECT_EQ(leaf.ToString(registry_), "E1");
}

TEST_F(PatternTest, FlatOperator) {
  PatternExpr seq = PatternExpr::Operator(
      PatternOp::kSeq, {PatternExpr::Leaf(ids_[0]), PatternExpr::Leaf(ids_[1])});
  EXPECT_FALSE(seq.is_leaf());
  EXPECT_TRUE(seq.IsFlat());
  EXPECT_EQ(seq.NestedLevel(), 1);
  EXPECT_EQ(seq.ToString(registry_), "SEQ(E1, E2)");
}

TEST_F(PatternTest, NestedLevelCountsLayers) {
  PatternExpr inner = PatternExpr::Operator(
      PatternOp::kConj,
      {PatternExpr::Leaf(ids_[1]), PatternExpr::Leaf(ids_[2])});
  PatternExpr outer = PatternExpr::Operator(
      PatternOp::kSeq, {PatternExpr::Leaf(ids_[0]), inner});
  EXPECT_FALSE(outer.IsFlat());
  EXPECT_EQ(outer.NestedLevel(), 2);
  EXPECT_EQ(outer.ToString(registry_), "SEQ(E1, CONJ(E2 & E3))");
}

TEST_F(PatternTest, CanonicalizeSortsCommutativeOperands) {
  PatternExpr conj = PatternExpr::Operator(
      PatternOp::kConj,
      {PatternExpr::Leaf(ids_[2]), PatternExpr::Leaf(ids_[0])});
  PatternExpr canon = Canonicalize(conj);
  EXPECT_EQ(canon.children()[0].leaf_type(), ids_[0]);
  EXPECT_EQ(canon.children()[1].leaf_type(), ids_[2]);

  PatternExpr conj2 = PatternExpr::Operator(
      PatternOp::kConj,
      {PatternExpr::Leaf(ids_[0]), PatternExpr::Leaf(ids_[2])});
  EXPECT_EQ(Canonicalize(conj).CanonicalKey(),
            Canonicalize(conj2).CanonicalKey());
}

TEST_F(PatternTest, CanonicalizePreservesSeqOrder) {
  PatternExpr seq = PatternExpr::Operator(
      PatternOp::kSeq,
      {PatternExpr::Leaf(ids_[2]), PatternExpr::Leaf(ids_[0])});
  PatternExpr canon = Canonicalize(seq);
  EXPECT_EQ(canon.children()[0].leaf_type(), ids_[2]);
  EXPECT_EQ(canon.children()[1].leaf_type(), ids_[0]);
}

TEST_F(PatternTest, ValidateRejectsDisjWithNeg) {
  PatternExpr bad = PatternExpr::Operator(
      PatternOp::kDisj,
      {PatternExpr::Leaf(ids_[0]), PatternExpr::Leaf(ids_[1])},
      {PatternExpr::Leaf(ids_[2])});
  EXPECT_EQ(ValidatePattern(bad).code(), StatusCode::kInvalidArgument);
}

TEST_F(PatternTest, ValidateRejectsEmptyOperator) {
  PatternExpr bad = PatternExpr::Operator(PatternOp::kSeq, {});
  EXPECT_FALSE(ValidatePattern(bad).ok());
}

TEST_F(PatternTest, ValidateRejectsDuplicateNeg) {
  PatternExpr bad = PatternExpr::Operator(
      PatternOp::kSeq, {PatternExpr::Leaf(ids_[0])},
      {PatternExpr::Leaf(ids_[2]), PatternExpr::Leaf(ids_[2])});
  EXPECT_FALSE(ValidatePattern(bad).ok());
}

TEST_F(PatternTest, ValidateAcceptsSeqWithNeg) {
  PatternExpr good = PatternExpr::Operator(
      PatternOp::kSeq,
      {PatternExpr::Leaf(ids_[0]), PatternExpr::Leaf(ids_[1])},
      {PatternExpr::Leaf(ids_[3])});
  EXPECT_TRUE(ValidatePattern(good).ok());
  EXPECT_EQ(good.ToString(registry_), "SEQ(E1, E2, NEG(E4))");
}

TEST_F(PatternTest, FlatPatternRoundTrip) {
  FlatPattern flat;
  flat.op = PatternOp::kSeq;
  flat.operands = {ids_[0], ids_[1], ids_[2]};
  flat.negated = {ids_[3]};
  PatternExpr expr = ToExpr(flat);
  EXPECT_TRUE(expr.IsFlat());
  FlatPattern back = ToFlatPattern(expr);
  EXPECT_EQ(back, flat);
}

TEST_F(PatternTest, FlatCanonicalSortsConjOperands) {
  FlatPattern flat;
  flat.op = PatternOp::kConj;
  flat.operands = {ids_[2], ids_[0], ids_[1]};
  FlatPattern canon = flat.Canonical();
  EXPECT_EQ(canon.operands, (std::vector<EventTypeId>{ids_[0], ids_[1], ids_[2]}));
  FlatPattern flat2;
  flat2.op = PatternOp::kConj;
  flat2.operands = {ids_[1], ids_[2], ids_[0]};
  EXPECT_EQ(flat.CanonicalKey(), flat2.CanonicalKey());
}

TEST_F(PatternTest, FlatCanonicalKeyDistinguishesOps) {
  FlatPattern seq{PatternOp::kSeq, {ids_[0], ids_[1]}, {}};
  FlatPattern conj{PatternOp::kConj, {ids_[0], ids_[1]}, {}};
  EXPECT_NE(seq.CanonicalKey(), conj.CanonicalKey());
}

TEST_F(PatternTest, EqualityIsStructural) {
  PatternExpr a = PatternExpr::Operator(
      PatternOp::kSeq,
      {PatternExpr::Leaf(ids_[0]), PatternExpr::Leaf(ids_[1])});
  PatternExpr b = PatternExpr::Operator(
      PatternOp::kSeq,
      {PatternExpr::Leaf(ids_[0]), PatternExpr::Leaf(ids_[1])});
  PatternExpr c = PatternExpr::Operator(
      PatternOp::kSeq,
      {PatternExpr::Leaf(ids_[1]), PatternExpr::Leaf(ids_[0])});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace motto
