#!/usr/bin/env bash
# End-to-end smoke of the motto CLI: generates a stream and workload, then
# exercises explain/run/compare including the observability flags
# (--stats[=json], --trace, --metrics-out), validating exit codes and that
# the emitted trace/metrics/report JSON is well-formed.
set -u

MOTTO="${1:?usage: cli_smoke_test.sh <path-to-motto-binary>}"
MOTTO="$(cd "$(dirname "${MOTTO}")" && pwd)/$(basename "${MOTTO}")"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
cd "${workdir}"

fail() { echo "FAIL: $*" >&2; exit 1; }

# Bad invocations must fail with the documented usage exit code.
"${MOTTO}" >/dev/null 2>&1
[ $? -eq 2 ] || fail "no-arg invocation should exit 2"
"${MOTTO}" frobnicate >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown command should exit 2"
"${MOTTO}" run --workload=missing.ccl --stream=missing.csv >/dev/null 2>&1 \
  && fail "missing inputs should fail"

"${MOTTO}" gen-stream --events=5000 --seed=3 --out=s.csv >/dev/null \
  || fail "gen-stream"
"${MOTTO}" gen-workload --queries=8 --seed=5 --out=w.ccl >/dev/null \
  || fail "gen-workload"
"${MOTTO}" explain --workload=w.ccl --stream=s.csv > explain.out \
  || fail "explain"
grep -q "sharing graph" explain.out || fail "explain output missing plan"

# Single-threaded run with the full observability surface.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --stats \
  --trace=trace.json --metrics-out=metrics.json > run.out || fail "run"
grep -q "events/s" run.out || fail "run banner missing"
grep -q "pred%" run.out || fail "--stats table missing"

python3 - <<'EOF' || fail "trace/metrics JSON invalid"
import json
t = json.load(open("trace.json"))
events = t["traceEvents"]
assert isinstance(events, list) and events, "no trace events"
for e in events:
    assert {"name", "ph", "pid", "tid", "ts"} <= set(e), e
phases = {e["ph"] for e in events}
assert "X" in phases, phases   # node spans
assert "M" in phases, phases   # thread names
assert t["otherData"]["dropped_events"] == 0
m = json.load(open("metrics.json"))
assert m["counters"]["run.raw_events"] == 5000, m["counters"]
assert any(k.startswith("node.") for k in m["counters"]), m["counters"]
assert m["histograms"], "matcher probe histograms missing"
EOF

# --stats=json must report predicted vs measured CPU for every plan node.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --stats=json > stats.out \
  || fail "run --stats=json"
python3 - <<'EOF' || fail "--stats=json report invalid"
import json, re
lines = open("stats.out").read().splitlines()
n = int(re.search(r"plan (\d+) nodes", lines[0]).group(1))
rep = json.loads(next(l for l in lines if l.startswith("{")))
assert len(rep["nodes"]) == n, (len(rep["nodes"]), n)
for node in rep["nodes"]:
    for key in ("predicted_cpu_units", "predicted_share",
                "measured_busy_seconds", "measured_share", "label"):
        assert key in node, (key, node)
EOF

# Multi-threaded run produces a trace too (scheduler instants + batch spans).
"${MOTTO}" run --workload=w.ccl --stream=s.csv --threads=2 \
  --trace=ptrace.json > /dev/null || fail "run --threads=2"
python3 - <<'EOF' || fail "parallel trace invalid"
import json
t = json.load(open("ptrace.json"))
names = {e["name"] for e in t["traceEvents"]}
assert "pool_epoch" in names, names
assert "batch" in names, names
EOF

"${MOTTO}" compare --workload=w.ccl --stream=s.csv --runs=1 --reports \
  > compare.out || fail "compare --reports"
grep -q "x NA" compare.out || fail "compare table missing"
grep -q -- "-- MOTTO report --" compare.out || fail "mode report missing"

# Differential verification: a short fuzz sweep (oracle vs every execution
# path) and the curated repro corpus replayed one pair at a time.
"${MOTTO}" verify --seed=7 --iters=25 > verify.out || fail "verify fuzz"
grep -q " 0 failures" verify.out || fail "verify fuzz found discrepancies"
corpus="$(cd "$(dirname "$0")/.." && pwd)/examples/verify"
for ccl in "${corpus}"/*.ccl; do
  "${MOTTO}" verify --workload="${ccl}" --stream="${ccl%.ccl}.csv" \
    >/dev/null || fail "verify corpus $(basename "${ccl}")"
done

echo "PASS"
