#!/usr/bin/env bash
# End-to-end smoke of the motto CLI: generates a stream and workload, then
# exercises explain/run/compare including the observability flags
# (--stats[=json], --trace, --metrics-out) and the online-churn path
# (--churn), validating exit codes — malformed or bare flag values must be
# usage errors naming the flag — and that the emitted trace/metrics/report
# JSON is well-formed.
set -u

MOTTO="${1:?usage: cli_smoke_test.sh <path-to-motto-binary>}"
MOTTO="$(cd "$(dirname "${MOTTO}")" && pwd)/$(basename "${MOTTO}")"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
cd "${workdir}"

fail() { echo "FAIL: $*" >&2; exit 1; }

# Bad invocations must fail with the documented usage exit code.
"${MOTTO}" >/dev/null 2>&1
[ $? -eq 2 ] || fail "no-arg invocation should exit 2"
"${MOTTO}" frobnicate >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown command should exit 2"
"${MOTTO}" run --workload=missing.ccl --stream=missing.csv >/dev/null 2>&1 \
  && fail "missing inputs should fail"

"${MOTTO}" gen-stream --events=5000 --seed=3 --out=s.csv >/dev/null \
  || fail "gen-stream"
"${MOTTO}" gen-workload --queries=8 --seed=5 --out=w.ccl >/dev/null \
  || fail "gen-workload"
"${MOTTO}" explain --workload=w.ccl --stream=s.csv > explain.out \
  || fail "explain"
grep -q "sharing graph" explain.out || fail "explain output missing plan"
grep -q "rewriter:" explain.out || fail "explain optimizer trace missing"

# Plan inspector exports: annotated DOT + JSON with sharing provenance.
# --solver selects the DSMT path; anything but bnb|sa is an error.
"${MOTTO}" explain --workload=w.ccl --stream=s.csv --solver=bogus \
  >/dev/null 2>&1 && fail "bogus --solver should fail"
"${MOTTO}" explain --workload=w.ccl --stream=s.csv --solver=sa \
  > explain_sa.out || fail "explain --solver=sa"
grep -q "sa: seed" explain_sa.out || fail "SA telemetry summary missing"
"${MOTTO}" explain --workload=w.ccl --stream=s.csv --json=e.json --dot=e.dot \
  >/dev/null || fail "explain --json --dot"
python3 - <<'EOF' || fail "explain JSON/DOT invalid"
import json
d = json.load(open("e.json"))
nodes = d["nodes"]
assert nodes, "no plan nodes"
for n in nodes:
    for key in ("id", "label", "kind", "predicted_cpu_units", "inputs",
                "sharing_node", "queries", "edge", "family", "shared"):
        assert key in n, (key, n)
for n in (n for n in nodes if n["shared"]):
    # Sharing provenance on every shared node: graph origin + dependents.
    assert n["sharing_node"] >= 0, n
    assert n["sharing_key"], n
    assert len(n["queries"]) >= 2, n
assert d["sinks"], "no sinks"
assert d["optimizer"]["rewriter"]["candidates"], "no candidate trace"
assert d["optimizer"]["solver"]["selected"], d["optimizer"]["solver"]
# The DOT export mirrors the JSON plan's shape exactly.
dot = open("e.dot").read().splitlines()
assert dot[0].startswith("digraph"), dot[0]
node_lines = [l for l in dot if "[shape=" in l]
edge_lines = [l for l in dot if " -> " in l]
assert len(node_lines) == len(nodes), (len(node_lines), len(nodes))
assert len(edge_lines) == sum(len(n["inputs"]) for n in nodes)
assert any("fillcolor" in l for l in node_lines), "shared nodes not filled"
# Selectivity-order annotations (DESIGN.md §13): every node reports its
# planner-chosen eval order and predicted partial-count reduction; eligible
# pattern nodes (SEQ/CONJ, 2+ operands) carry a non-empty order, and the
# lazy chain never predicts more partials than arrival order.
for n in nodes:
    for key in ("eval_order", "order_arrival_partials", "order_lazy_partials",
                "order_reduction", "lazy_beneficial"):
        assert key in n, (key, n)
ordered = [n for n in nodes if n["eval_order"]]
assert ordered, "no node got an eval order"
for n in ordered:
    assert sorted(n["eval_order"]) == list(range(len(n["eval_order"]))), n
    assert n["order_reduction"] >= 1.0 - 1e-9, n
EOF

# Single-threaded run with the full observability surface.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --stats \
  --trace=trace.json --metrics-out=metrics.json > run.out || fail "run"
grep -q "events/s" run.out || fail "run banner missing"
grep -q "pred%" run.out || fail "--stats table missing"

python3 - <<'EOF' || fail "trace/metrics JSON invalid"
import json
t = json.load(open("trace.json"))
events = t["traceEvents"]
assert isinstance(events, list) and events, "no trace events"
for e in events:
    assert {"name", "ph", "pid", "tid", "ts"} <= set(e), e
phases = {e["ph"] for e in events}
assert "X" in phases, phases   # node spans
assert "M" in phases, phases   # thread names
assert t["otherData"]["dropped_events"] == 0
m = json.load(open("metrics.json"))
assert m["counters"]["run.raw_events"] == 5000, m["counters"]
assert any(k.startswith("node.") for k in m["counters"]), m["counters"]
assert m["histograms"], "matcher probe histograms missing"
EOF

# --stats=json must report predicted vs measured CPU for every plan node.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --stats=json > stats.out \
  || fail "run --stats=json"
python3 - <<'EOF' || fail "--stats=json report invalid"
import json, re
lines = open("stats.out").read().splitlines()
n = int(re.search(r"plan (\d+) nodes", lines[0]).group(1))
rep = json.loads(next(l for l in lines if l.startswith("{")))
assert len(rep["nodes"]) == n, (len(rep["nodes"]), n)
for node in rep["nodes"]:
    for key in ("predicted_cpu_units", "predicted_share",
                "measured_busy_seconds", "measured_share", "label"):
        assert key in node, (key, node)
EOF

# Calibration joins predicted per-node costs with measured busy time into
# per-rewrite-family mis-estimate rows.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --calibrate > cal.out \
  || fail "run --calibrate"
grep -q "calibration" cal.out || fail "calibration table missing"
grep -q "miss" cal.out || fail "miss-ratio column missing"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --calibrate=json \
  > cal_json.out || fail "run --calibrate=json"
python3 - <<'EOF' || fail "calibration JSON invalid"
import json
lines = open("cal_json.out").read().splitlines()
cal = json.loads(next(l for l in lines if l.startswith("{")))
assert cal["rows"], "no calibration rows"
total = 0.0
for row in cal["rows"]:
    for key in ("family", "nodes", "predicted_share", "measured_share",
                "miss_ratio"):
        assert key in row, (key, row)
    total += row["predicted_share"]
assert abs(total - 1.0) < 1e-6, total
EOF

# Multi-threaded run produces a trace too (scheduler instants + batch spans).
"${MOTTO}" run --workload=w.ccl --stream=s.csv --threads=2 \
  --trace=ptrace.json > /dev/null || fail "run --threads=2"
python3 - <<'EOF' || fail "parallel trace invalid"
import json
t = json.load(open("ptrace.json"))
names = {e["name"] for e in t["traceEvents"]}
assert "pool_epoch" in names, names
assert "batch" in names, names
EOF

# Executor sizing knobs reject non-positive values with the error exit code.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --shards=0 >/dev/null 2>&1
[ $? -eq 1 ] || fail "--shards=0 should exit 1"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --threads=2 --batch-size=0 \
  >/dev/null 2>&1
[ $? -eq 1 ] || fail "--batch-size=0 should exit 1"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --threads=2 --pipe-depth=0 \
  >/dev/null 2>&1
[ $? -eq 1 ] || fail "--pipe-depth=0 should exit 1"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --threads=-1 >/dev/null 2>&1
[ $? -eq 1 ] || fail "--threads=-1 should exit 1"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --threads=2 --batch-size=64 \
  --pipe-depth=2 >/dev/null || fail "run with explicit batch/pipe sizing"

# Sharded run: banner line, per-shard metrics, per-shard trace rows.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --shards=4 \
  --trace=strace.json --metrics-out=smetrics.json > shard_run.out \
  || fail "run --shards=4"
grep -q "sharded: 4 shards" shard_run.out || fail "sharded banner missing"
python3 - <<'EOF' || fail "sharded metrics/trace invalid"
import json
m = json.load(open("smetrics.json"))
gauges = m["gauges"]
assert gauges["shard.count"]["value"] == 4, gauges
assert "shard.skew" in gauges, gauges
assert gauges["shard.groups"]["value"] >= 1, gauges
counters = m["counters"]
shard_rows = [k for k in counters if k.startswith("shard.")]
assert any(k.endswith(".owned_events") for k in shard_rows), counters
assert any(k.endswith(".matches") for k in shard_rows), counters
# Each group's slices partition the stream (unsliced shards own it whole),
# so owned events total the raw stream once per replica group.
owned = sum(v for k, v in counters.items()
            if k.startswith("shard.") and k.endswith(".owned_events"))
expect = counters["run.raw_events"] * int(gauges["shard.groups"]["value"])
assert owned == expect, (owned, expect)
t = json.load(open("strace.json"))
names = {e["name"] for e in t["traceEvents"]}
assert "shard" in names, names
EOF

# Sharded and single-threaded runs agree on every query's match count.
"${MOTTO}" run --workload=w.ccl --stream=s.csv > single_run.out \
  || fail "run single for shard diff"
grep "matches" shard_run.out > shard_matches.out
grep "matches" single_run.out > single_matches.out
diff -q shard_matches.out single_matches.out >/dev/null \
  || fail "sharded match counts diverge from single-threaded"

# Selectivity-ordered lazy mode: identical per-query match counts, and an
# unknown mode name is a usage error.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --eval-order=selectivity \
  > lazy_run.out || fail "run --eval-order=selectivity"
grep "matches" lazy_run.out > lazy_matches.out
diff -q lazy_matches.out single_matches.out >/dev/null \
  || fail "lazy match counts diverge from arrival order"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --eval-order=bogus \
  >/dev/null 2>&1
[ $? -eq 1 ] || fail "--eval-order=bogus should exit 1"
# Calibration multipliers feed the order planner; malformed specs are usage
# errors (run/explain/compare all take the flag).
"${MOTTO}" run --workload=w.ccl --stream=s.csv --eval-order=selectivity \
  --calibration=DST=0.73,MST=1.03 >/dev/null \
  || fail "run --calibration"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --calibration=DST=zero \
  >/dev/null 2>&1
[ $? -eq 1 ] || fail "--calibration=DST=zero should exit 1"
"${MOTTO}" explain --workload=w.ccl --stream=s.csv \
  --calibration=unshared=1.2 >/dev/null || fail "explain --calibration"

# Malformed numeric flag values and bare value-flags are usage errors whose
# message names the offending flag (they used to be silently misparsed).
"${MOTTO}" run --workload=w.ccl --stream=s.csv --threads=2 --batch-size=abc \
  >/dev/null 2>err.txt
[ $? -eq 1 ] || fail "--batch-size=abc should exit 1"
grep -q -- "bad --batch-size='abc'" err.txt \
  || fail "--batch-size error should name the flag"
"${MOTTO}" gen-stream --events=10 --seed=12x --out=bad.csv >/dev/null 2>err.txt
[ $? -eq 1 ] || fail "--seed=12x should exit 1"
grep -q -- "bad --seed='12x'" err.txt || fail "--seed error should name the flag"
"${MOTTO}" gen-stream --events=10 --scenario=bogus --out=bad.csv \
  >/dev/null 2>err.txt
[ $? -eq 1 ] || fail "--scenario=bogus should exit 1"
grep -q "unknown scenario 'bogus'" err.txt \
  || fail "--scenario error should name the value"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --shards >/dev/null 2>err.txt
[ $? -eq 1 ] || fail "bare --shards should exit 1"
grep -q -- "--shards needs a value" err.txt \
  || fail "bare value-flag error should name the flag"

# Online churn (DESIGN.md §14): a script of timed add/remove commands
# replayed with incremental re-plans and live state migration.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --churn=missing.script \
  >/dev/null 2>err.txt
[ $? -eq 1 ] || fail "missing churn script should exit 1"
grep -q "cannot read churn script" err.txt || fail "churn script error missing"
cat > churn.script <<'EOF'
# mid-stream workload churn
800000000 add spike: SELECT * FROM stream MATCHING [10000000 us : SEQ(AMZN, GOOG, FB)]
1600000000 remove q1
EOF
"${MOTTO}" run --workload=w.ccl --stream=s.csv --churn=churn.script \
  --metrics-out=churn_metrics.json > churn.out || fail "run --churn"
grep -q "plan swaps" churn.out || fail "churn banner missing"
grep -q "re-plan add 'spike'" churn.out || fail "churn add re-plan missing"
grep -q "re-plan remove 'q1'" churn.out || fail "churn remove re-plan missing"
grep -q "migration:" churn.out || fail "churn migration counters missing"
grep -q "live \[800000000, end)" churn.out || fail "added live window missing"
grep -q "live \[start, 1600000000)" churn.out \
  || fail "removed live window missing"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --churn=churn.script \
  --eval-order=selectivity >/dev/null || fail "run --churn --eval-order"
python3 - <<'EOF' || fail "churn metrics invalid"
import json
m = json.load(open("churn_metrics.json"))
c = m["counters"]
assert c["churn.swaps"] == 2, c
assert c["churn.reoptimizations"] == 2, c
assert c["churn.nodes_kept"] >= 1, c
EOF
# --churn composes only with the single-threaded motto engine.
"${MOTTO}" run --workload=w.ccl --stream=s.csv --churn=churn.script \
  --shards=2 >/dev/null 2>&1
[ $? -eq 1 ] || fail "--churn with --shards should exit 1"
"${MOTTO}" run --workload=w.ccl --stream=s.csv --churn=churn.script \
  --mode=na >/dev/null 2>&1
[ $? -eq 1 ] || fail "--churn with --mode=na should exit 1"

"${MOTTO}" compare --workload=w.ccl --stream=s.csv --runs=1 --reports \
  > compare.out || fail "compare --reports"
grep -q "x NA" compare.out || fail "compare table missing"
grep -q -- "-- MOTTO report --" compare.out || fail "mode report missing"

# compare accepts the engine-selection knobs (sharded + pipelined sizing)
# and the lazy eval mode.
"${MOTTO}" compare --workload=w.ccl --stream=s.csv --runs=1 \
  --eval-order=selectivity >/dev/null || fail "compare --eval-order"
"${MOTTO}" compare --workload=w.ccl --stream=s.csv --runs=1 --shards=2 \
  >/dev/null || fail "compare --shards=2"
"${MOTTO}" compare --workload=w.ccl --stream=s.csv --runs=1 --threads=2 \
  --batch-size=128 --pipe-depth=2 >/dev/null || fail "compare pipelined"
"${MOTTO}" compare --workload=w.ccl --stream=s.csv --shards=0 >/dev/null 2>&1
[ $? -eq 1 ] || fail "compare --shards=0 should exit 1"

# explain --shards annotates the plan with the data-parallel partition.
"${MOTTO}" explain --workload=w.ccl --stream=s.csv --shards=4 \
  > explain_shards.out || fail "explain --shards=4"
grep -q -- "-- partition --" explain_shards.out \
  || fail "explain partition section missing"
grep -q "components" explain_shards.out || fail "partition summary missing"
"${MOTTO}" explain --workload=w.ccl --stream=s.csv --shards=4 --json=ep.json \
  >/dev/null || fail "explain --shards --json"
python3 - <<'EOF' || fail "explain partition JSON invalid"
import json
d = json.load(open("ep.json"))
p = d["partition"]
assert p["shards"] == 4, p
assert p["components"], p
assert len(p["assignments"]) == 4, p
for a in p["assignments"]:
    for key in ("id", "group", "time_slices", "slice", "components"):
        assert key in a, (key, a)
EOF
"${MOTTO}" explain --workload=w.ccl --stream=s.csv --shards=0 >/dev/null 2>&1
[ $? -eq 1 ] || fail "explain --shards=0 should exit 1"

# Live serve telemetry (DESIGN.md §16): a batch-mode serve run appends
# statusz-shaped snapshots to --stats-log, which `motto top --from-log`
# renders; flag errors must name the flag.
"${MOTTO}" wire-encode --stream=s.csv --out=s.bin >/dev/null \
  || fail "wire-encode for top"
"${MOTTO}" serve --workload=w.ccl --stream=s.csv --stats-log=top.jsonl \
  < s.bin > serve_top.out 2>&1 || fail "batch serve with --stats-log"
grep -q "serve: end of stream" serve_top.out || fail "serve end banner missing"
[ -s top.jsonl ] || fail "stats log empty after batch serve"
"${MOTTO}" top --from-log=top.jsonl --once > top.out \
  || fail "motto top --from-log"
grep -q "motto serve  seq" top.out || fail "top header missing"
grep -q "QUERY" top.out || fail "top per-query table missing"
grep -q "NODE" top.out || fail "top per-node table missing"
grep -q "ingested 5000" top.out || fail "top did not show the full stream"
"${MOTTO}" top >/dev/null 2>err.txt
[ $? -eq 1 ] || fail "top without --port/--from-log should exit 1"
grep -q "motto top needs --port" err.txt \
  || fail "top usage error should explain the sources"
"${MOTTO}" top --from-log=top.jsonl --interval=0 >/dev/null 2>&1
[ $? -eq 1 ] || fail "top --interval=0 should exit 1"
"${MOTTO}" serve --workload=w.ccl --stream=s.csv --snapshot-interval=abc \
  < s.bin >/dev/null 2>err.txt
[ $? -eq 1 ] || fail "--snapshot-interval=abc should exit 1"
grep -q -- "bad --snapshot-interval='abc'" err.txt \
  || fail "--snapshot-interval error should name the flag"
"${MOTTO}" serve --workload=w.ccl --stream=s.csv --stats-log \
  < s.bin >/dev/null 2>err.txt
[ $? -eq 1 ] || fail "bare --stats-log should exit 1"
grep -q -- "--stats-log needs a value" err.txt \
  || fail "bare --stats-log error should name the flag"
"${MOTTO}" serve --workload=w.ccl --stream=s.csv --snapshot-every=-1 \
  < s.bin >/dev/null 2>&1
[ $? -eq 1 ] || fail "--snapshot-every=-1 should exit 1"

# Differential verification: a short fuzz sweep (oracle vs every execution
# path) and the curated repro corpus replayed one pair at a time.
"${MOTTO}" verify --seed=7 --iters=25 > verify.out || fail "verify fuzz"
grep -q " 0 failures" verify.out || fail "verify fuzz found discrepancies"
corpus="$(cd "$(dirname "$0")/.." && pwd)/examples/verify"
for ccl in "${corpus}"/*.ccl; do
  "${MOTTO}" verify --workload="${ccl}" --stream="${ccl%.ccl}.csv" \
    >/dev/null || fail "verify corpus $(basename "${ccl}")"
done

echo "PASS"
