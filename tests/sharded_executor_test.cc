// ShardedExecutor correctness: byte-identical output for pure component
// partitions, multiset-identical output (the determinism contract) for
// time-sliced partitions across shard counts, boundary handling of tied
// timestamps and deferred negation, and the per-shard stats surfaced to the
// observability layer (DESIGN.md §12).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/plan_util.h"
#include "engine/sharded_executor.h"
#include "obs/report.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::Fingerprints;
using testing::MakeStream;
using testing::MatchSet;

FlatQuery MakeQuery(const std::string& name, PatternOp op,
                    std::vector<EventTypeId> operands, Duration window) {
  FlatQuery query;
  query.name = name;
  query.window = window;
  query.pattern.op = op;
  query.pattern.operands = std::move(operands);
  return query;
}

std::map<std::string, std::vector<std::string>> OrderedSinks(
    const RunResult& run) {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& [name, events] : run.sink_events) {
    std::vector<std::string>& seq = out[name];
    for (const Event& e : events) seq.push_back(e.Fingerprint());
  }
  return out;
}

std::map<std::string, MatchSet> SinkSets(const RunResult& run) {
  std::map<std::string, MatchSet> out;
  for (const auto& [name, events] : run.sink_events) {
    out[name] = Fingerprints(events);
  }
  return out;
}

TEST(ShardedExecutorTest, RejectsNonPositiveShardCount) {
  EventTypeRegistry registry;
  EventTypeId a = registry.RegisterPrimitive("A");
  EventTypeId b = registry.RegisterPrimitive("B");
  Jqp jqp = BuildDefaultJqp({MakeQuery("q", PatternOp::kSeq, {a, b},
                                       Millis(50))},
                            &registry);
  EXPECT_FALSE(ShardedExecutor::Create(jqp, 0).ok());
  EXPECT_FALSE(ShardedExecutor::Create(jqp, -3).ok());
}

TEST(ShardedExecutorTest, ComponentPartitionIsByteIdentical) {
  EventTypeRegistry registry;
  std::vector<FlatQuery> queries;
  for (int q = 0; q < 3; ++q) {
    EventTypeId a = registry.RegisterPrimitive("A" + std::to_string(q));
    EventTypeId b = registry.RegisterPrimitive("B" + std::to_string(q));
    queries.push_back(MakeQuery("q" + std::to_string(q), PatternOp::kSeq,
                                {a, b}, Millis(40)));
  }
  Jqp jqp = BuildDefaultJqp(queries, &registry);

  std::vector<std::pair<std::string, Timestamp>> raw;
  for (int i = 0; i < 90; ++i) {
    std::string type = (i % 2 == 0 ? "A" : "B") + std::to_string(i % 3);
    raw.emplace_back(type, Millis(i * 7 % 200 + i));
  }
  EventStream stream = MakeStream(&registry, std::move(raw));

  auto single = Executor::Create(jqp);
  ASSERT_TRUE(single.ok()) << single.status();
  auto expected = single->Run(stream);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ASSERT_GT(expected->TotalMatches(), 0u);

  for (int shards : {1, 2, 3}) {
    auto sharded = ShardedExecutor::Create(jqp, shards, /*num_threads=*/2);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    EXPECT_TRUE(sharded->plan().PureComponentPartition());
    auto run = sharded->Run(stream);
    ASSERT_TRUE(run.ok()) << run.status();
    // Pure component partitions preserve the single-threaded executor's
    // per-sink emission order exactly, not just the multiset.
    EXPECT_EQ(OrderedSinks(*run), OrderedSinks(*expected))
        << "shards " << shards;
    EXPECT_EQ(run->sink_counts, expected->sink_counts);
    EXPECT_EQ(run->raw_events, stream.size());
    EXPECT_EQ(run->sharded.shards, shards);
    EXPECT_EQ(static_cast<int>(run->sharded.per_shard.size()), shards);
  }
}

TEST(ShardedExecutorTest, TimeSlicedSeqMatchesSingleAcrossShardCounts) {
  EventTypeRegistry registry;
  EventTypeId a = registry.RegisterPrimitive("A");
  EventTypeId b = registry.RegisterPrimitive("B");
  EventTypeId c = registry.RegisterPrimitive("C");
  Jqp jqp = BuildDefaultJqp(
      {MakeQuery("pairs", PatternOp::kSeq, {a, b}, Millis(25)),
       MakeQuery("triples", PatternOp::kConj, {a, b, c}, Millis(25))},
      &registry);
  // Sharing raw types does not connect components (each replica reads the
  // whole raw stream), so these are two components; shard counts above 2
  // replicate them over time slices with cross-boundary windows.
  ASSERT_EQ(PartitionPlan::Build(jqp, 2).groups, 2);
  ASSERT_FALSE(PartitionPlan::Build(jqp, 8).PureComponentPartition());

  std::vector<std::pair<std::string, Timestamp>> raw;
  const char* names[] = {"A", "B", "C"};
  for (int i = 0; i < 240; ++i) {
    raw.emplace_back(names[(i * 7) % 3], Millis(1 + (i * 13) % 560));
  }
  EventStream stream = MakeStream(&registry, std::move(raw));

  auto single = Executor::Create(jqp);
  ASSERT_TRUE(single.ok()) << single.status();
  auto expected = single->Run(stream);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->TotalMatches(), 0u);
  auto expected_sets = SinkSets(*expected);

  for (int shards = 1; shards <= 8; ++shards) {
    auto sharded = ShardedExecutor::Create(jqp, shards);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    auto run = sharded->Run(stream);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(SinkSets(*run), expected_sets) << "shards " << shards;
    EXPECT_EQ(run->TotalMatches(), expected->TotalMatches());
    // Re-running the same executor must reproduce the identical byte order:
    // fixed shard count => fixed slice boundaries => fixed merge.
    auto rerun = sharded->Run(stream);
    ASSERT_TRUE(rerun.ok());
    EXPECT_EQ(OrderedSinks(*rerun), OrderedSinks(*run))
        << "rerun diverged at shards " << shards;
  }
}

TEST(ShardedExecutorTest, DeferredNegationAcrossSliceBoundaries) {
  EventTypeRegistry registry;
  EventTypeId a = registry.RegisterPrimitive("A");
  EventTypeId b = registry.RegisterPrimitive("B");
  EventTypeId k = registry.RegisterPrimitive("K");
  FlatQuery query = MakeQuery("guarded", PatternOp::kSeq, {a, b}, Millis(30));
  query.pattern.negated.push_back(k);
  Jqp jqp = BuildDefaultJqp({query}, &registry);

  // Kills arrive after the completing B, often in a later slice's owned
  // range than the match's constituents — the attribution key
  // (begin + window) must hand such matches to the shard that sees the
  // killer, and the final flush must cover keys past the last event.
  std::vector<std::pair<std::string, Timestamp>> raw;
  for (int i = 0; i < 60; ++i) {
    Timestamp base = Millis(10 * i);
    raw.emplace_back("A", base);
    raw.emplace_back("B", base + Millis(4));
    if (i % 3 == 0) raw.emplace_back("K", base + Millis(18));
  }
  EventStream stream = MakeStream(&registry, std::move(raw));

  auto single = Executor::Create(jqp);
  ASSERT_TRUE(single.ok());
  auto expected = single->Run(stream);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->TotalMatches(), 0u);
  // The scenario must really exercise kills: fewer matches than A-B pairs.
  ASSERT_LT(expected->TotalMatches(), 60u * 2);

  for (int shards = 2; shards <= 7; ++shards) {
    auto sharded = ShardedExecutor::Create(jqp, shards);
    ASSERT_TRUE(sharded.ok());
    auto run = sharded->Run(stream);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(SinkSets(*run), SinkSets(*expected)) << "shards " << shards;
  }
}

TEST(ShardedExecutorTest, TiedTimestampsNeverStraddleABoundary) {
  EventTypeRegistry registry;
  EventTypeId a = registry.RegisterPrimitive("A");
  EventTypeId b = registry.RegisterPrimitive("B");
  Jqp jqp = BuildDefaultJqp({MakeQuery("q", PatternOp::kSeq, {a, b},
                                       Millis(10))},
                            &registry);

  // Long runs of identical timestamps: naive equal-count cuts would split
  // them; the slicer must push every cut past the tie.
  std::vector<std::pair<std::string, Timestamp>> raw;
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 25; ++i) {
      raw.emplace_back(i % 2 == 0 ? "A" : "B", Millis(5 * g));
    }
  }
  EventStream stream = MakeStream(&registry, std::move(raw));

  auto single = Executor::Create(jqp);
  ASSERT_TRUE(single.ok());
  auto expected = single->Run(stream);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(expected->TotalMatches(), 0u);

  for (int shards : {2, 3, 5, 8}) {
    auto sharded = ShardedExecutor::Create(jqp, shards);
    ASSERT_TRUE(sharded.ok());
    auto run = sharded->Run(stream);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(SinkSets(*run), SinkSets(*expected)) << "shards " << shards;
    uint64_t owned = 0;
    for (const ShardRunStats& row : run->sharded.per_shard) {
      owned += row.owned_events;
    }
    EXPECT_EQ(owned, stream.size()) << "shards " << shards;
  }
}

TEST(ShardedExecutorTest, EmptyStreamAndCountsOnly) {
  EventTypeRegistry registry;
  EventTypeId a = registry.RegisterPrimitive("A");
  EventTypeId b = registry.RegisterPrimitive("B");
  Jqp jqp = BuildDefaultJqp({MakeQuery("q", PatternOp::kSeq, {a, b},
                                       Millis(10))},
                            &registry);
  auto sharded = ShardedExecutor::Create(jqp, 4);
  ASSERT_TRUE(sharded.ok());

  auto empty = sharded->Run(EventStream{});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->TotalMatches(), 0u);
  EXPECT_EQ(empty->raw_events, 0u);

  std::vector<std::pair<std::string, Timestamp>> raw;
  for (int i = 0; i < 80; ++i) {
    raw.emplace_back(i % 2 == 0 ? "A" : "B", Millis(i * 3));
  }
  EventStream stream = MakeStream(&registry, std::move(raw));
  auto full = sharded->Run(stream);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->TotalMatches(), 0u);

  ExecutorOptions counts_only;
  counts_only.count_matches_only = true;
  auto counted = sharded->Run(stream, counts_only);
  ASSERT_TRUE(counted.ok());
  EXPECT_TRUE(counted->sink_events.empty());
  EXPECT_EQ(counted->sink_counts, full->sink_counts);
}

TEST(ShardedExecutorTest, SkewedShardLoadRaisesRunReportWarning) {
  EventTypeRegistry registry;
  EventTypeId a = registry.RegisterPrimitive("A");
  EventTypeId b = registry.RegisterPrimitive("B");
  Jqp jqp = BuildDefaultJqp({MakeQuery("q", PatternOp::kSeq, {a, b},
                                       Millis(10))},
                            &registry);
  RunResult run;
  run.node_stats.assign(jqp.nodes.size(), NodeStats{});
  run.sharded.shards = 4;
  run.sharded.threads = 4;
  run.sharded.max_busy_seconds = 0.9;
  run.sharded.mean_busy_seconds = 0.3;
  run.sharded.skew = 3.0;
  obs::RunReport report = obs::BuildRunReport(jqp, StreamStats{}, run);
  bool found = false;
  for (const std::string& warning : report.warnings) {
    found |= warning.find("shard load skew") != std::string::npos;
  }
  EXPECT_TRUE(found);

  run.sharded.skew = 1.1;
  obs::RunReport balanced = obs::BuildRunReport(jqp, StreamStats{}, run);
  for (const std::string& warning : balanced.warnings) {
    EXPECT_EQ(warning.find("shard load skew"), std::string::npos) << warning;
  }
}

}  // namespace
}  // namespace motto
