#include "engine/executor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/parallel_executor.h"
#include "engine/plan_util.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::Fingerprints;
using testing::MakeStream;
using testing::MatchSet;
using testing::ReferenceMatches;

class ExecutorTest : public ::testing::Test {
 protected:
  FlatQuery Query(const std::string& name, PatternOp op,
                  std::vector<std::string> operands, Duration window,
                  std::vector<std::string> negated = {}) {
    FlatQuery q;
    q.name = name;
    q.window = window;
    q.pattern.op = op;
    for (const std::string& n : operands) {
      q.pattern.operands.push_back(registry_.RegisterPrimitive(n));
    }
    for (const std::string& n : negated) {
      q.pattern.negated.push_back(registry_.RegisterPrimitive(n));
    }
    return q;
  }

  EventTypeRegistry registry_;
};

TEST_F(ExecutorTest, DefaultJqpSingleQuery) {
  FlatQuery q = Query("q1", PatternOp::kSeq, {"E1", "E2"}, Seconds(10));
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream s = MakeStream(&registry_, {{"E1", 1}, {"E2", 2}});
  auto result = executor->Run(s);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_events.at("q1").size(), 1u);
  EXPECT_EQ(result->raw_events, 2u);
  EXPECT_EQ(result->TotalMatches(), 1u);
}

TEST_F(ExecutorTest, MultipleIndependentQueries) {
  FlatQuery q1 = Query("q1", PatternOp::kSeq, {"E1", "E2"}, Seconds(10));
  FlatQuery q2 = Query("q2", PatternOp::kConj, {"E2", "E3"}, Seconds(10));
  FlatQuery q3 = Query("q3", PatternOp::kDisj, {"E3"}, Seconds(10));
  Jqp jqp = BuildDefaultJqp({q1, q2, q3}, &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream s =
      MakeStream(&registry_, {{"E1", 1}, {"E2", 2}, {"E3", 3}, {"E3", 4}});
  auto result = executor->Run(s);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_events.at("q1").size(), 1u);
  EXPECT_EQ(result->sink_events.at("q2").size(), 2u);
  EXPECT_EQ(result->sink_events.at("q3").size(), 2u);
}

TEST_F(ExecutorTest, ChainedSubQueryEqualsDirectPattern) {
  // SEQ(E1,E2,E3) executed as SEQ(E1,E2) -> SEQ({E1,E2},E3) must produce the
  // same matches as the direct three-operand node (paper §IV-B, DST).
  FlatQuery direct = Query("direct", PatternOp::kSeq, {"E1", "E2", "E3"},
                           Seconds(10));
  Jqp jqp = BuildDefaultJqp({direct}, &registry_);

  // Sub-query SEQ(E1,E2).
  FlatPattern sub;
  sub.op = PatternOp::kSeq;
  sub.operands = {registry_.Find("E1"), registry_.Find("E2")};
  JqpNode sub_node;
  sub_node.spec = MakeRawPatternSpec(sub, Seconds(10), &registry_);
  sub_node.label = "sub";
  int32_t sub_id = jqp.AddNode(sub_node);
  EventTypeId sub_type =
      std::get<PatternSpec>(sub_node.spec).output_type;

  // Downstream SEQ({E1,E2}, E3) bound to the sub-query.
  PatternSpec down;
  down.op = PatternOp::kSeq;
  down.window = Seconds(10);
  down.operands = {OperandBinding{{sub_type}, 1, {0, 1}, {}},
                   OperandBinding{{registry_.Find("E3")}, kRawChannel, {2}, {}}};
  FlatPattern full;
  full.op = PatternOp::kSeq;
  full.operands = {registry_.Find("E1"), registry_.Find("E2"),
                   registry_.Find("E3")};
  down.output_type = RegisterOutputType(full, Seconds(10), &registry_);
  JqpNode down_node;
  down_node.spec = down;
  down_node.inputs = {sub_id};
  down_node.label = "chained";
  int32_t down_id = jqp.AddNode(down_node);
  jqp.sinks.push_back(Jqp::Sink{"chained", down_id});

  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();

  Rng rng(42);
  EventTypeRegistry scratch = registry_;
  std::vector<std::string> names = {"E1", "E2", "E3", "X"};
  std::vector<std::pair<std::string, Timestamp>> raw;
  Timestamp ts = 0;
  for (int i = 0; i < 120; ++i) {
    ts += rng.Uniform(1, Seconds(1));
    raw.emplace_back(names[static_cast<size_t>(rng.Uniform(0, 3))], ts);
  }
  EventStream s = MakeStream(&registry_, raw);
  auto result = executor->Run(s);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Fingerprints(result->sink_events.at("direct")),
            Fingerprints(result->sink_events.at("chained")));
  EXPECT_FALSE(result->sink_events.at("direct").empty());
}

TEST_F(ExecutorTest, OrderFilterRealizesSeqFromConj) {
  // OTT (Table I): SEQ(L) == Filter_sc(CONJ(L)).
  FlatQuery seq = Query("seq", PatternOp::kSeq, {"E1", "E2", "E3"},
                        Seconds(5));
  FlatQuery conj = Query("conj", PatternOp::kConj, {"E1", "E2", "E3"},
                         Seconds(5));
  Jqp jqp = BuildDefaultJqp({seq, conj}, &registry_);
  int32_t conj_node = jqp.sinks[1].node;

  OrderFilterSpec filter;
  filter.required_order = seq.pattern.operands;
  filter.relabel = true;
  filter.output_type =
      RegisterOutputType(seq.pattern, Seconds(5), &registry_);
  JqpNode filter_node;
  filter_node.spec = filter;
  filter_node.inputs = {conj_node};
  int32_t filter_id = jqp.AddNode(filter_node);
  jqp.sinks.push_back(Jqp::Sink{"seq_via_filter", filter_id});

  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();

  Rng rng(7);
  std::vector<std::string> names = {"E1", "E2", "E3"};
  std::vector<std::pair<std::string, Timestamp>> raw;
  Timestamp ts = 0;
  for (int i = 0; i < 100; ++i) {
    ts += rng.Uniform(1, Seconds(1));
    raw.emplace_back(names[static_cast<size_t>(rng.Uniform(0, 2))], ts);
  }
  EventStream s = MakeStream(&registry_, raw);
  auto result = executor->Run(s);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Fingerprints(result->sink_events.at("seq")),
            Fingerprints(result->sink_events.at("seq_via_filter")));
  EXPECT_FALSE(result->sink_events.at("seq").empty());
  EXPECT_GT(result->sink_events.at("conj").size(),
            result->sink_events.at("seq").size());
}

TEST_F(ExecutorTest, SpanFilterRestrictsWindow) {
  // Source with 10s window; consumer keeps only matches fitting 2s.
  FlatQuery wide = Query("wide", PatternOp::kSeq, {"E1", "E2"}, Seconds(10));
  FlatQuery narrow = Query("narrow", PatternOp::kSeq, {"E1", "E2"},
                           Seconds(2));
  Jqp jqp = BuildDefaultJqp({wide, narrow}, &registry_);
  SpanFilterSpec span;
  span.max_span = Seconds(2);
  JqpNode span_node;
  span_node.spec = span;
  span_node.inputs = {jqp.sinks[0].node};
  int32_t span_id = jqp.AddNode(span_node);
  jqp.sinks.push_back(Jqp::Sink{"narrow_via_filter", span_id});

  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream s = MakeStream(&registry_, {{"E1", 0},
                                          {"E2", Seconds(1)},
                                          {"E1", Seconds(4)},
                                          {"E2", Seconds(9)}});
  auto result = executor->Run(s);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Fingerprints(result->sink_events.at("narrow")),
            Fingerprints(result->sink_events.at("narrow_via_filter")));
  EXPECT_EQ(result->sink_events.at("wide").size(), 3u);
  EXPECT_EQ(result->sink_events.at("narrow").size(), 1u);
}

TEST_F(ExecutorTest, ValidateRejectsNegWithConsumers) {
  FlatQuery neg = Query("neg", PatternOp::kSeq, {"E1", "E2"}, Seconds(1),
                        {"E9"});
  Jqp jqp = BuildDefaultJqp({neg}, &registry_);
  SpanFilterSpec span;
  span.max_span = Seconds(1);
  JqpNode span_node;
  span_node.spec = span;
  span_node.inputs = {0};
  jqp.AddNode(span_node);
  EXPECT_FALSE(Executor::Create(jqp).ok());
}

TEST_F(ExecutorTest, ValidateRejectsCycle) {
  FlatQuery q = Query("q", PatternOp::kSeq, {"E1", "E2"}, Seconds(1));
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  jqp.nodes[0].inputs = {0};
  EXPECT_FALSE(Executor::Create(jqp).ok());
}

TEST_F(ExecutorTest, ValidateRejectsBadChannels) {
  FlatQuery q = Query("q", PatternOp::kSeq, {"E1", "E2"}, Seconds(1));
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  std::get<PatternSpec>(jqp.nodes[0].spec).operands[0].channel = 3;
  EXPECT_FALSE(Executor::Create(jqp).ok());
}

TEST_F(ExecutorTest, RejectsUnsortedStream) {
  FlatQuery q = Query("q", PatternOp::kSeq, {"E1", "E2"}, Seconds(1));
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok());
  EventStream bad = {Event::Primitive(registry_.Find("E1"), 10),
                     Event::Primitive(registry_.Find("E2"), 5)};
  EXPECT_FALSE(executor->Run(bad).ok());
}

TEST_F(ExecutorTest, NodeStatsCountEvents) {
  FlatQuery q = Query("q", PatternOp::kSeq, {"E1", "E2"}, Seconds(10));
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok());
  EventStream s = MakeStream(&registry_, {{"E1", 1}, {"X", 2}, {"E2", 3}});
  ExecutorOptions options;
  options.collect_node_timing = true;
  auto result = executor->Run(s, options);
  ASSERT_TRUE(result.ok());
  // Node sees E1 and E2 but not X (type routing).
  EXPECT_EQ(result->node_stats[0].events_in, 2u);
  EXPECT_EQ(result->node_stats[0].events_out, 1u);
  EXPECT_GE(result->node_stats[0].busy_seconds, 0.0);
}

TEST_F(ExecutorTest, RunTwiceIsIdempotent) {
  FlatQuery q = Query("q", PatternOp::kSeq, {"E1", "E2"}, Seconds(10));
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok());
  EventStream s = MakeStream(&registry_, {{"E1", 1}, {"E2", 2}});
  auto r1 = executor->Run(s);
  auto r2 = executor->Run(s);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(Fingerprints(r1->sink_events.at("q")),
            Fingerprints(r2->sink_events.at("q")));
}

TEST_F(ExecutorTest, AgainstReferenceOnRandomStreams) {
  Rng rng(2024);
  for (int round = 0; round < 10; ++round) {
    EventTypeRegistry registry;
    FlatQuery q1{"q1",
                 FlatPattern{PatternOp::kSeq,
                             {registry.RegisterPrimitive("A"),
                              registry.RegisterPrimitive("B"),
                              registry.RegisterPrimitive("C")},
                             {}},
                 200};
    FlatQuery q2{"q2",
                 FlatPattern{PatternOp::kConj,
                             {registry.Find("B"), registry.Find("C")},
                             {registry.RegisterPrimitive("N")}},
                 150};
    Jqp jqp = BuildDefaultJqp({q1, q2}, &registry);
    auto executor = Executor::Create(jqp);
    ASSERT_TRUE(executor.ok());
    EventStream stream;
    Timestamp ts = 0;
    std::vector<EventTypeId> types = {registry.Find("A"), registry.Find("B"),
                                      registry.Find("C"), registry.Find("N")};
    for (int i = 0; i < 30; ++i) {
      ts += rng.Uniform(1, 60);
      stream.push_back(Event::Primitive(
          types[static_cast<size_t>(rng.Uniform(0, 3))], ts));
    }
    auto result = executor->Run(stream);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Fingerprints(result->sink_events.at("q1")),
              ReferenceMatches(q1.pattern, q1.window, stream));
    EXPECT_EQ(Fingerprints(result->sink_events.at("q2")),
              ReferenceMatches(q2.pattern, q2.window, stream));
  }
}

// ---------------------------------------------------------------------------
// Parallel executor: identical match sets to the single-threaded executor.
// ---------------------------------------------------------------------------

struct ParallelCase {
  int threads;
  size_t batch;
};

class ParallelExecutorTest : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelExecutorTest, MatchesSingleThreadedOutput) {
  EventTypeRegistry registry;
  FlatQuery q1{"q1",
               FlatPattern{PatternOp::kSeq,
                           {registry.RegisterPrimitive("A"),
                            registry.RegisterPrimitive("B")},
                           {}},
               300};
  FlatQuery q2{"q2",
               FlatPattern{PatternOp::kConj,
                           {registry.Find("A"), registry.RegisterPrimitive("C"),
                            registry.RegisterPrimitive("D")},
                           {}},
               400};
  FlatQuery q3{"q3",
               FlatPattern{PatternOp::kSeq,
                           {registry.Find("A"), registry.Find("C")},
                           {registry.RegisterPrimitive("N")}},
               250};
  Jqp jqp = BuildDefaultJqp({q1, q2, q3}, &registry);

  // Add a chained consumer to exercise cross-level batching: SEQ({A,B}, D).
  EventTypeId sub_type = std::get<PatternSpec>(jqp.nodes[0].spec).output_type;
  PatternSpec down;
  down.op = PatternOp::kSeq;
  down.window = 500;
  down.operands = {OperandBinding{{sub_type}, 1, {0, 1}, {}},
                   OperandBinding{{registry.Find("D")}, kRawChannel, {2}, {}}};
  FlatPattern full{PatternOp::kSeq,
                   {registry.Find("A"), registry.Find("B"), registry.Find("D")},
                   {}};
  down.output_type = RegisterOutputType(full, 500, &registry);
  JqpNode down_node;
  down_node.spec = down;
  down_node.inputs = {jqp.sinks[0].node};
  int32_t down_id = jqp.AddNode(down_node);
  jqp.sinks.push_back(Jqp::Sink{"chained", down_id});

  Rng rng(99);
  EventStream stream;
  Timestamp ts = 0;
  std::vector<EventTypeId> types = {registry.Find("A"), registry.Find("B"),
                                    registry.Find("C"), registry.Find("D"),
                                    registry.Find("N")};
  for (int i = 0; i < 3000; ++i) {
    ts += rng.Uniform(1, 50);
    stream.push_back(Event::Primitive(
        types[static_cast<size_t>(rng.Uniform(0, 4))], ts));
  }

  auto single = Executor::Create(jqp);
  ASSERT_TRUE(single.ok());
  auto expected = single->Run(stream);
  ASSERT_TRUE(expected.ok());

  const ParallelCase& param = GetParam();
  auto parallel = ParallelExecutor::Create(jqp, param.threads, param.batch);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  auto actual = parallel->Run(stream);
  ASSERT_TRUE(actual.ok());

  for (const auto& [name, events] : expected->sink_events) {
    EXPECT_EQ(Fingerprints(events),
              Fingerprints(actual->sink_events.at(name)))
        << "sink " << name << " threads=" << param.threads
        << " batch=" << param.batch;
  }
  EXPECT_GT(expected->TotalMatches(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadAndBatchSweep, ParallelExecutorTest,
    ::testing::Values(ParallelCase{1, 1}, ParallelCase{1, 64},
                      ParallelCase{2, 16}, ParallelCase{2, 512},
                      ParallelCase{4, 128}, ParallelCase{4, 4096},
                      ParallelCase{8, 256}));

// Regression: the old batch loop's `while (pos < size || stream.empty())`
// condition only terminated for empty streams by accident; the pipelined
// executor must run exactly one (empty) batch plus the final flush and
// return for any thread/batch combination.
TEST(ParallelExecutorEdgeTest, EmptyStreamTerminates) {
  EventTypeRegistry registry;
  FlatQuery q{"q",
              FlatPattern{PatternOp::kSeq,
                          {registry.RegisterPrimitive("A"),
                           registry.RegisterPrimitive("B")},
                          {}},
              100};
  Jqp jqp = BuildDefaultJqp({q}, &registry);
  for (int threads : {1, 2, 4}) {
    for (size_t batch : {size_t{1}, size_t{512}}) {
      auto parallel = ParallelExecutor::Create(jqp, threads, batch);
      ASSERT_TRUE(parallel.ok());
      auto run = parallel->Run({});
      ASSERT_TRUE(run.ok()) << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(run->TotalMatches(), 0u);
      EXPECT_EQ(run->parallel.batches, 1u);
      EXPECT_EQ(run->parallel.node_activations, jqp.nodes.size());
    }
  }
}

// A single-event stream exercises the final-flush path: a deferred-negation
// match is only emitted by the terminal watermark advance.
TEST(ParallelExecutorEdgeTest, SingleEventStreamFlushesDeferredNegation) {
  EventTypeRegistry registry;
  FlatQuery q{"q",
              FlatPattern{PatternOp::kSeq,
                          {registry.RegisterPrimitive("A")},
                          {registry.RegisterPrimitive("N")}},
              100};
  Jqp jqp = BuildDefaultJqp({q}, &registry);
  EventStream stream = {Event::Primitive(registry.Find("A"), 10)};

  auto single = Executor::Create(jqp);
  ASSERT_TRUE(single.ok());
  auto expected = single->Run(stream);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->TotalMatches(), 1u);

  for (int threads : {1, 2, 4}) {
    for (size_t batch : {size_t{1}, size_t{4096}}) {
      auto parallel = ParallelExecutor::Create(jqp, threads, batch);
      ASSERT_TRUE(parallel.ok());
      auto run = parallel->Run(stream);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(run->TotalMatches(), 1u)
          << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(Fingerprints(run->sink_events.at("q")),
                Fingerprints(expected->sink_events.at("q")));
    }
  }
}

// The pool is created once in Create: repeated Run() calls reuse it (the
// epoch counter advances) and scheduler counters stay coherent.
TEST(ParallelExecutorEdgeTest, RunReusesPoolAcrossCalls) {
  EventTypeRegistry registry;
  FlatQuery q{"q",
              FlatPattern{PatternOp::kSeq,
                          {registry.RegisterPrimitive("A"),
                           registry.RegisterPrimitive("B")},
                          {}},
              100};
  Jqp jqp = BuildDefaultJqp({q}, &registry);
  Rng rng(5);
  EventStream stream;
  Timestamp ts = 0;
  for (int i = 0; i < 500; ++i) {
    ts += rng.Uniform(1, 40);
    stream.push_back(Event::Primitive(
        rng.Bernoulli(0.5) ? registry.Find("A") : registry.Find("B"), ts));
  }
  auto parallel = ParallelExecutor::Create(jqp, 4, 64);
  ASSERT_TRUE(parallel.ok());
  uint64_t first_epochs = 0;
  for (int round = 1; round <= 3; ++round) {
    auto run = parallel->Run(stream);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->parallel.threads, 4);
    EXPECT_EQ(run->parallel.batches, (stream.size() + 63) / 64);
    EXPECT_EQ(run->parallel.node_activations,
              jqp.nodes.size() * run->parallel.batches);
    if (round == 1) {
      first_epochs = run->parallel.pool_epochs;
      EXPECT_EQ(first_epochs, 1u);
    } else {
      EXPECT_EQ(run->parallel.pool_epochs,
                first_epochs + static_cast<uint64_t>(round) - 1);
    }
  }
}

TEST(ParallelExecutorCreateTest, RejectsBadParameters) {
  EventTypeRegistry registry;
  FlatQuery q{"q",
              FlatPattern{PatternOp::kSeq,
                          {registry.RegisterPrimitive("A"),
                           registry.RegisterPrimitive("B")},
                          {}},
              100};
  Jqp jqp = BuildDefaultJqp({q}, &registry);
  EXPECT_FALSE(ParallelExecutor::Create(jqp, 0).ok());
  EXPECT_FALSE(ParallelExecutor::Create(jqp, 2, 0).ok());
  EXPECT_FALSE(ParallelExecutor::Create(jqp, 2, 512, 0).ok());
  EXPECT_TRUE(ParallelExecutor::Create(jqp, 2).ok());
}

}  // namespace
}  // namespace motto
