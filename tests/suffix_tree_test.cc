#include "util/suffix_tree.h"

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace motto {
namespace {

SymbolSeq Seq(const std::string& letters) {
  SymbolSeq out;
  for (char c : letters) out.push_back(c - 'a');
  return out;
}

// Naive reference: all start positions of needle in haystack.
std::vector<size_t> NaiveOccurrences(const SymbolSeq& needle,
                                     const SymbolSeq& hay) {
  std::vector<size_t> out;
  if (needle.empty() || needle.size() > hay.size()) return out;
  for (size_t i = 0; i + needle.size() <= hay.size(); ++i) {
    if (std::equal(needle.begin(), needle.end(), hay.begin() + i)) {
      out.push_back(i);
    }
  }
  return out;
}

int64_t NaiveDistinctSubstrings(const SymbolSeq& s) {
  std::set<SymbolSeq> subs;
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t j = i + 1; j <= s.size(); ++j) {
      subs.insert(SymbolSeq(s.begin() + i, s.begin() + j));
    }
  }
  return static_cast<int64_t>(subs.size());
}

TEST(SuffixTreeTest, ContainsSubstringsOfBanana) {
  SuffixTree tree(Seq("banana"));
  EXPECT_TRUE(tree.Contains(Seq("banana")));
  EXPECT_TRUE(tree.Contains(Seq("ana")));
  EXPECT_TRUE(tree.Contains(Seq("nan")));
  EXPECT_TRUE(tree.Contains(Seq("b")));
  EXPECT_TRUE(tree.Contains({}));
  EXPECT_FALSE(tree.Contains(Seq("bb")));
  EXPECT_FALSE(tree.Contains(Seq("nab")));
  EXPECT_FALSE(tree.Contains(Seq("bananaa")));
}

TEST(SuffixTreeTest, CountsOccurrences) {
  SuffixTree tree(Seq("banana"));
  EXPECT_EQ(tree.CountOccurrences(Seq("ana")), 2);
  EXPECT_EQ(tree.CountOccurrences(Seq("a")), 3);
  EXPECT_EQ(tree.CountOccurrences(Seq("na")), 2);
  EXPECT_EQ(tree.CountOccurrences(Seq("banana")), 1);
  EXPECT_EQ(tree.CountOccurrences(Seq("x")), 0);
}

TEST(SuffixTreeTest, OccurrencePositions) {
  SuffixTree tree(Seq("abcabcab"));
  EXPECT_EQ(tree.Occurrences(Seq("abc")), (std::vector<size_t>{0, 3}));
  EXPECT_EQ(tree.Occurrences(Seq("ab")), (std::vector<size_t>{0, 3, 6}));
  EXPECT_TRUE(tree.Occurrences(Seq("ca")).size() == 2);
}

TEST(SuffixTreeTest, DistinctSubstringCounts) {
  EXPECT_EQ(SuffixTree(Seq("a")).CountDistinctSubstrings(), 1);
  EXPECT_EQ(SuffixTree(Seq("aa")).CountDistinctSubstrings(), 2);
  EXPECT_EQ(SuffixTree(Seq("ab")).CountDistinctSubstrings(), 3);
  EXPECT_EQ(SuffixTree(Seq("banana")).CountDistinctSubstrings(),
            NaiveDistinctSubstrings(Seq("banana")));
}

TEST(SuffixTreeTest, EmptyText) {
  SuffixTree tree((SymbolSeq{}));
  EXPECT_TRUE(tree.Contains({}));
  EXPECT_FALSE(tree.Contains(Seq("a")));
  EXPECT_EQ(tree.CountDistinctSubstrings(), 0);
}

TEST(SuffixTreeFuzzTest, MatchesNaiveOnRandomTexts) {
  Rng rng(1234);
  for (int round = 0; round < 60; ++round) {
    int n = static_cast<int>(rng.Uniform(1, 60));
    int alphabet = static_cast<int>(rng.Uniform(1, 4));
    SymbolSeq text;
    for (int i = 0; i < n; ++i) {
      text.push_back(static_cast<int32_t>(rng.Uniform(0, alphabet)));
    }
    SuffixTree tree{SymbolSeq(text)};
    EXPECT_EQ(tree.CountDistinctSubstrings(), NaiveDistinctSubstrings(text))
        << "round " << round;
    for (int probe = 0; probe < 20; ++probe) {
      int len = static_cast<int>(rng.Uniform(1, 6));
      SymbolSeq needle;
      for (int i = 0; i < len; ++i) {
        needle.push_back(static_cast<int32_t>(rng.Uniform(0, alphabet)));
      }
      EXPECT_EQ(tree.Occurrences(needle), NaiveOccurrences(needle, text))
          << "round " << round;
    }
  }
}

TEST(GeneralizedSuffixTreeTest, LongestCommonSubstring) {
  GeneralizedSuffixTree tree(Seq("xabcdy"), Seq("zabcdw"));
  EXPECT_EQ(tree.LongestCommonSubstring(), Seq("abcd"));
}

TEST(GeneralizedSuffixTreeTest, NoCommonSymbols) {
  GeneralizedSuffixTree tree(Seq("abc"), Seq("xyz"));
  EXPECT_TRUE(tree.LongestCommonSubstring().empty());
  EXPECT_TRUE(tree.MaximalCommonMatches().empty());
}

TEST(GeneralizedSuffixTreeTest, IdenticalStrings) {
  GeneralizedSuffixTree tree(Seq("abab"), Seq("abab"));
  EXPECT_EQ(tree.LongestCommonSubstring(), Seq("abab"));
}

TEST(GeneralizedSuffixTreeTest, PaperExample3Matches) {
  // q6 = E1 E2 E3 E5 E6 E7 E8, q7 = E1 E3 E6 E5 E7 E8 (paper Example 3).
  SymbolSeq a = {1, 2, 3, 5, 6, 7, 8};
  SymbolSeq b = {1, 3, 6, 5, 7, 8};
  GeneralizedSuffixTree tree(a, b);
  std::vector<CommonMatch> matches = tree.MaximalCommonMatches();
  // Every maximal match must be a genuine equal run.
  for (const CommonMatch& m : matches) {
    for (size_t k = 0; k < m.length; ++k) {
      EXPECT_EQ(a[m.pos_a + k], b[m.pos_b + k]);
    }
  }
  // The paper's S5 = "E7,E8" must be among the maximal matches.
  bool found_s5 = false;
  for (const CommonMatch& m : matches) {
    if (m.pos_a == 5 && m.pos_b == 4 && m.length == 2) found_s5 = true;
  }
  EXPECT_TRUE(found_s5);
  // E1, E3, E5, E6 appear as length-1 maximal matches.
  auto has = [&](size_t pa, size_t pb, size_t len) {
    return std::find(matches.begin(), matches.end(),
                     CommonMatch{pa, pb, len}) != matches.end();
  };
  EXPECT_TRUE(has(0, 0, 1));  // E1
  EXPECT_TRUE(has(2, 1, 1));  // E3
  EXPECT_TRUE(has(3, 3, 1));  // E5
  EXPECT_TRUE(has(4, 2, 1));  // E6
}

TEST(GeneralizedSuffixTreeFuzzTest, MaximalMatchesAgreeWithNaive) {
  Rng rng(777);
  for (int round = 0; round < 40; ++round) {
    auto random_seq = [&](int max_len) {
      int n = static_cast<int>(rng.Uniform(1, max_len));
      SymbolSeq s;
      for (int i = 0; i < n; ++i) {
        s.push_back(static_cast<int32_t>(rng.Uniform(0, 3)));
      }
      return s;
    };
    SymbolSeq a = random_seq(25), b = random_seq(25);
    GeneralizedSuffixTree tree{SymbolSeq(a), SymbolSeq(b)};

    // Naive maximal matches.
    std::vector<CommonMatch> expected;
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) {
        if (a[i] != b[j]) continue;
        if (i > 0 && j > 0 && a[i - 1] == b[j - 1]) continue;
        size_t len = 0;
        while (i + len < a.size() && j + len < b.size() &&
               a[i + len] == b[j + len]) {
          ++len;
        }
        expected.push_back(CommonMatch{i, j, len});
      }
    }
    std::sort(expected.begin(), expected.end(),
              [](const CommonMatch& x, const CommonMatch& y) {
                return x.pos_a != y.pos_a ? x.pos_a < y.pos_a
                                          : x.pos_b < y.pos_b;
              });
    EXPECT_EQ(tree.MaximalCommonMatches(), expected) << "round " << round;
  }
}

}  // namespace
}  // namespace motto
