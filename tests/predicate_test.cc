#include "ccl/predicate.h"

#include <gtest/gtest.h>

#include "ccl/parser.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "motto/optimizer.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::Fingerprints;

TEST(PredicateTest, ComparisonsMatchPayloads) {
  Payload payload{10.5, 200};
  EXPECT_TRUE((Comparison{PredicateField::kValue, PredicateCmp::kGt, 10.0}
                   .Matches(payload)));
  EXPECT_FALSE((Comparison{PredicateField::kValue, PredicateCmp::kGt, 10.5}
                    .Matches(payload)));
  EXPECT_TRUE((Comparison{PredicateField::kValue, PredicateCmp::kGe, 10.5}
                   .Matches(payload)));
  EXPECT_TRUE((Comparison{PredicateField::kAux, PredicateCmp::kLe, 200}
                   .Matches(payload)));
  EXPECT_TRUE((Comparison{PredicateField::kAux, PredicateCmp::kEq, 200}
                   .Matches(payload)));
  EXPECT_TRUE((Comparison{PredicateField::kAux, PredicateCmp::kNe, 300}
                   .Matches(payload)));
  EXPECT_FALSE((Comparison{PredicateField::kAux, PredicateCmp::kLt, 200}
                    .Matches(payload)));
}

TEST(PredicateTest, ConjunctionAndEmpty) {
  Predicate empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.Matches(Payload{0, 0}));

  Predicate p({{PredicateField::kValue, PredicateCmp::kGt, 5.0},
               {PredicateField::kAux, PredicateCmp::kLt, 10}});
  EXPECT_TRUE(p.Matches(Payload{6.0, 5}));
  EXPECT_FALSE(p.Matches(Payload{4.0, 5}));
  EXPECT_FALSE(p.Matches(Payload{6.0, 15}));
}

TEST(PredicateTest, CanonicalKeyIsOrderInsensitive) {
  Predicate a({{PredicateField::kValue, PredicateCmp::kGt, 5.0},
               {PredicateField::kAux, PredicateCmp::kLt, 10}});
  Predicate b({{PredicateField::kAux, PredicateCmp::kLt, 10},
               {PredicateField::kValue, PredicateCmp::kGt, 5.0}});
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_TRUE(a == b);
  Predicate c({{PredicateField::kValue, PredicateCmp::kGt, 6.0}});
  EXPECT_NE(a.CanonicalKey(), c.CanonicalKey());
}

TEST(PredicateParseTest, OperandPredicates) {
  EventTypeRegistry registry;
  auto p = ccl::ParsePattern("SEQ(AAPL[value > 100], IBM[aux <= 5000])",
                             &registry);
  ASSERT_TRUE(p.ok()) << p.status();
  const PatternExpr& first = p->children()[0];
  ASSERT_FALSE(first.leaf_predicate().empty());
  EXPECT_EQ(first.leaf_predicate().comparisons()[0].cmp, PredicateCmp::kGt);
  EXPECT_EQ(first.leaf_predicate().comparisons()[0].constant, 100.0);
  // Round-trip through the printer.
  auto reparsed = ccl::ParsePattern(p->ToString(registry), &registry);
  ASSERT_TRUE(reparsed.ok()) << p->ToString(registry);
  EXPECT_TRUE(*p == *reparsed);
}

TEST(PredicateParseTest, AliasesDecimalsAndNegatives) {
  EventTypeRegistry registry;
  auto p = ccl::ParsePattern(
      "SEQ(a[price >= 99.5 & volume != 3], b[value < -2.25])", &registry);
  ASSERT_TRUE(p.ok()) << p.status();
  const Predicate& pa = p->children()[0].leaf_predicate();
  ASSERT_EQ(pa.comparisons().size(), 2u);
  const Predicate& pb = p->children()[1].leaf_predicate();
  EXPECT_EQ(pb.comparisons()[0].constant, -2.25);
}

TEST(PredicateParseTest, Errors) {
  EventTypeRegistry registry;
  EXPECT_FALSE(ccl::ParsePattern("SEQ(a[bogus > 1], b)", &registry).ok());
  EXPECT_FALSE(ccl::ParsePattern("SEQ(a[value 1], b)", &registry).ok());
  EXPECT_FALSE(ccl::ParsePattern("SEQ(a[value >], b)", &registry).ok());
  EXPECT_FALSE(ccl::ParsePattern("SEQ(a[value > 1, b)", &registry).ok());
}

TEST(PredicateParseTest, NegWithPredicate) {
  EventTypeRegistry registry;
  auto p = ccl::ParsePattern("SEQ(a, b, NEG(c[value > 9]))", &registry);
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->negated().size(), 1u);
  EXPECT_FALSE(p->negated()[0].leaf_predicate().empty());
}

// ---------------------------------------------------------------------------
// End-to-end: predicated queries execute correctly and share when equal.
// ---------------------------------------------------------------------------

class PredicateExecutionTest : public ::testing::Test {
 protected:
  /// Stream of alternating a/b/c with controlled payload values.
  EventStream MakeStream() {
    EventStream stream;
    Rng rng(99);
    Timestamp ts = 0;
    const char* names[3] = {"a", "b", "c"};
    for (int i = 0; i < 3000; ++i) {
      ts += rng.Uniform(1, Millis(8));
      Payload payload;
      payload.value = static_cast<double>(rng.Uniform(0, 200));
      payload.aux = rng.Uniform(0, 100);
      stream.push_back(Event::Primitive(
          registry_.RegisterPrimitive(names[rng.Uniform(0, 2)]), ts, payload));
    }
    return stream;
  }

  Query Parse(const std::string& name, const std::string& pattern,
              Duration window = Millis(40)) {
    auto expr = ccl::ParsePattern(pattern, &registry_);
    EXPECT_TRUE(expr.ok()) << expr.status();
    return Query{name, *expr, window};
  }

  RunResult Run(const std::vector<Query>& queries, const EventStream& stream,
                OptimizerMode mode, Jqp* jqp_out = nullptr) {
    StreamStats stats = ComputeStats(stream);
    OptimizerOptions options;
    options.mode = mode;
    Optimizer optimizer(&registry_, stats, options);
    auto outcome = optimizer.Optimize(queries);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    if (jqp_out != nullptr) *jqp_out = outcome->jqp;
    auto executor = Executor::Create(std::move(outcome->jqp));
    EXPECT_TRUE(executor.ok()) << executor.status();
    auto run = executor->Run(stream);
    EXPECT_TRUE(run.ok()) << run.status();
    return *std::move(run);
  }

  EventTypeRegistry registry_;
};

TEST_F(PredicateExecutionTest, PredicateFiltersMatches) {
  EventStream stream = MakeStream();
  std::vector<Query> queries = {
      Parse("all", "SEQ(a, b)"),
      Parse("hot", "SEQ(a[value > 150], b)"),
  };
  RunResult run = Run(queries, stream, OptimizerMode::kNa);
  size_t all = run.sink_events.at("all").size();
  size_t hot = run.sink_events.at("hot").size();
  EXPECT_GT(all, 0u);
  EXPECT_GT(hot, 0u);
  EXPECT_LT(hot, all / 2);  // ~25% of values exceed 150.
  // Every "hot" match's first constituent passed the predicate: it must be
  // among the "all" matches too.
  auto all_prints = Fingerprints(run.sink_events.at("all"));
  for (const Event& e : run.sink_events.at("hot")) {
    EXPECT_TRUE(all_prints.count(e.Fingerprint()) > 0);
  }
}

TEST_F(PredicateExecutionTest, OptimizedEqualsUnoptimized) {
  EventStream stream = MakeStream();
  std::vector<Query> queries = {
      Parse("q1", "SEQ(a[value > 120], b, c)"),
      Parse("q2", "SEQ(a[value > 120], b)"),
      Parse("q3", "SEQ(a[value > 50], b)"),
      Parse("q4", "CONJ(b & c[aux < 40])", Millis(30)),
  };
  RunResult na = Run(queries, stream, OptimizerMode::kNa);
  RunResult shared = Run(queries, stream, OptimizerMode::kMotto);
  for (const Query& q : queries) {
    EXPECT_EQ(Fingerprints(na.sink_events.at(q.name)),
              Fingerprints(shared.sink_events.at(q.name)))
        << q.name;
  }
}

TEST_F(PredicateExecutionTest, EqualSelectorsShareUnequalDoNot) {
  EventStream stream = MakeStream();
  // q1/q2 share the selector a[value > 120]; q3's differs.
  std::vector<Query> queries = {
      Parse("q1", "SEQ(a[value > 120], b, c)"),
      Parse("q2", "SEQ(a[value > 120], b)"),
      Parse("q3", "SEQ(a[value > 50], b)"),
  };
  Jqp jqp;
  Run(queries, stream, OptimizerMode::kMotto, &jqp);
  // q2's node (or a sub-query) feeds q1: fewer pattern nodes than NA's 3 is
  // the observable effect of selector-aware sharing.
  Jqp na_jqp;
  Run(queries, stream, OptimizerMode::kNa, &na_jqp);
  EXPECT_LE(jqp.nodes.size(), na_jqp.nodes.size());
  bool q1_shares = false;
  for (const JqpNode& node : jqp.nodes) {
    if (!node.inputs.empty()) q1_shares = true;
  }
  EXPECT_TRUE(q1_shares) << jqp.ToString(registry_);
}

TEST_F(PredicateExecutionTest, NegationWithPredicate) {
  EventStream stream = MakeStream();
  std::vector<Query> queries = {
      Parse("guarded", "SEQ(a, b, NEG(c[value > 190]))", Millis(20)),
      Parse("plain", "SEQ(a, b)", Millis(20)),
  };
  RunResult run = Run(queries, stream, OptimizerMode::kNa);
  size_t guarded = run.sink_events.at("guarded").size();
  size_t plain = run.sink_events.at("plain").size();
  EXPECT_GT(guarded, 0u);
  EXPECT_LT(guarded, plain);  // Some matches are killed by hot c events.
  // And the optimizer keeps it correct.
  RunResult shared = Run(queries, stream, OptimizerMode::kMotto);
  EXPECT_EQ(Fingerprints(run.sink_events.at("guarded")),
            Fingerprints(shared.sink_events.at("guarded")));
}

TEST_F(PredicateExecutionTest, DisjWithPredicatesPassesOnlyMatching) {
  EventStream stream = MakeStream();
  std::vector<Query> queries = {
      Parse("picky", "DISJ(a[value > 180] | b[aux < 10])", Millis(20)),
  };
  RunResult run = Run(queries, stream, OptimizerMode::kNa);
  size_t matched = run.sink_events.at("picky").size();
  EXPECT_GT(matched, 0u);
  EXPECT_LT(matched, stream.size() / 3);  // Far fewer than all a/b events.
}

}  // namespace
}  // namespace motto
