// Churn migration-equivalence fuzzing: random workloads + streams with
// mid-stream add/remove scripts, replayed through the live churn path
// (incremental re-optimization + state handoff) in both evaluation-order
// modes and diffed per query against a from-scratch oracle — each query
// compiled alone over exactly its live window's slice, cross-checked
// single-threaded vs sharded. See src/verify/churn_differ.h.
//
// MOTTO_FUZZ_ITERS scales the per-seed case count (default 12 here; the
// nightly sanitizer sweep raises it via tools/check_build.sh).
#include <gtest/gtest.h>

#include <cstdlib>

#include "verify/churn_differ.h"

namespace motto {
namespace {

int IterationsFromEnv(int fallback) {
  const char* env = std::getenv("MOTTO_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

void ExpectClean(verify::ChurnDifferOptions options) {
  auto outcome = verify::RunChurnDiffer(options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  for (const std::string& failure : outcome->failures) {
    ADD_FAILURE() << failure;
  }
  // The sweep must actually exercise migration: if (almost) every fuzzed
  // stream was too short to schedule a script the run proves nothing.
  EXPECT_LE(outcome->skipped, outcome->iterations / 4);
}

TEST(ChurnStressTest, DefaultShapes) {
  verify::ChurnDifferOptions options;
  options.seed = 1;
  options.iterations = IterationsFromEnv(12);
  ExpectClean(options);
}

TEST(ChurnStressTest, ChurnHeavy) {
  // More commands than initial queries: the workload is mostly replaced
  // mid-stream, so nearly every epoch boundary migrates live state.
  verify::ChurnDifferOptions options;
  options.seed = 70000;
  options.iterations = IterationsFromEnv(10);
  options.fuzz.num_queries = 2;
  options.added_queries = 3;
  options.removals = 3;
  ExpectClean(options);
}

TEST(ChurnStressTest, NegationAndCollisions) {
  // Deferred (negation-sealed) matches must flush correctly at removal
  // boundaries, and timestamp collisions land events exactly on command
  // timestamps — the add/remove visibility edge.
  verify::ChurnDifferOptions options;
  options.seed = 910000;
  options.iterations = IterationsFromEnv(10);
  options.fuzz.negation_prob = 0.8;
  options.fuzz.ts_collision_prob = 0.5;
  options.fuzz.num_events = 30;
  ExpectClean(options);
}

TEST(ChurnStressTest, RemoveOnly) {
  // Prune-only path: no adds, so every re-plan keeps the incumbent recipes
  // and migration is pure state carry-over for the survivors.
  verify::ChurnDifferOptions options;
  options.seed = 3300000;
  options.iterations = IterationsFromEnv(8);
  options.fuzz.num_queries = 4;
  options.added_queries = 0;
  options.removals = 2;
  ExpectClean(options);
}

}  // namespace
}  // namespace motto
