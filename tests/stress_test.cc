// Randomized end-to-end stress: workloads mixing every feature (operators,
// nesting, windows, negation, payload predicates), checked for match-set
// equality across NA / MST / LCSE / MOTTO and across the single-threaded and
// multi-threaded executors. Seeds are fixed for reproducibility.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/parallel_executor.h"
#include "motto/optimizer.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::Fingerprints;
using testing::MatchSet;

struct StressWorld {
  EventTypeRegistry registry;
  std::vector<EventTypeId> types;
  EventStream stream;
};

std::unique_ptr<StressWorld> MakeWorld(uint64_t seed, int num_types,
                                       int num_events) {
  auto world = std::make_unique<StressWorld>();
  for (int i = 0; i < num_types; ++i) {
    world->types.push_back(
        world->registry.RegisterPrimitive("T" + std::to_string(i)));
  }
  Rng rng(seed);
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    ts += rng.Uniform(1, Millis(12));
    Payload payload;
    payload.value = static_cast<double>(rng.Uniform(0, 100));
    payload.aux = rng.Uniform(0, 1000);
    world->stream.push_back(Event::Primitive(
        world->types[static_cast<size_t>(
            rng.Uniform(0, num_types - 1))],
        ts, payload));
  }
  return world;
}

/// Random pattern expression: flat or one nested layer, sometimes with a
/// predicate or a negated operand.
PatternExpr RandomPattern(StressWorld* world, Rng* rng, bool allow_nested) {
  auto random_leaf = [&](bool allow_predicate) {
    EventTypeId type = world->types[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(world->types.size()) - 1))];
    if (allow_predicate && rng->Bernoulli(0.3)) {
      Comparison comparison;
      comparison.field = rng->Bernoulli(0.5) ? PredicateField::kValue
                                             : PredicateField::kAux;
      comparison.cmp = rng->Bernoulli(0.5) ? PredicateCmp::kGt
                                           : PredicateCmp::kLe;
      comparison.constant = static_cast<double>(rng->Uniform(10, 90)) *
                            (comparison.field == PredicateField::kAux ? 10 : 1);
      return PatternExpr::Leaf(type, Predicate({comparison}));
    }
    return PatternExpr::Leaf(type);
  };

  PatternOp op = static_cast<PatternOp>(rng->Uniform(0, 2));
  int n = static_cast<int>(rng->Uniform(2, 3));
  std::vector<PatternExpr> children;
  for (int i = 0; i < n; ++i) children.push_back(random_leaf(true));
  if (allow_nested && rng->Bernoulli(0.35)) {
    PatternOp inner_op =
        op == PatternOp::kDisj ? PatternOp::kConj : PatternOp::kDisj;
    children.push_back(PatternExpr::Operator(
        inner_op, {random_leaf(false), random_leaf(false)}));
  }
  std::vector<PatternExpr> negated;
  if (op != PatternOp::kDisj && rng->Bernoulli(0.25)) {
    negated.push_back(random_leaf(true));
  }
  return PatternExpr::Operator(op, std::move(children), std::move(negated));
}

class StressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, AllModesAndExecutorsAgree) {
  uint64_t seed = GetParam();
  auto world = MakeWorld(seed, 7, 2500);
  Rng rng(seed * 31 + 7);

  std::vector<Query> queries;
  int num_queries = static_cast<int>(rng.Uniform(4, 8));
  for (int qi = 0; qi < num_queries; ++qi) {
    Query query;
    query.name = "q" + std::to_string(qi);
    query.pattern = RandomPattern(world.get(), &rng, /*allow_nested=*/true);
    query.window = Millis(rng.Uniform(2, 8) * 10);
    queries.push_back(std::move(query));
  }

  StreamStats stats = ComputeStats(world->stream);
  std::map<std::string, MatchSet> reference;
  bool have_reference = false;

  for (OptimizerMode mode :
       {OptimizerMode::kNa, OptimizerMode::kMst, OptimizerMode::kLcse,
        OptimizerMode::kMotto}) {
    OptimizerOptions options;
    options.mode = mode;
    Optimizer optimizer(&world->registry, stats, options);
    auto outcome = optimizer.Optimize(queries);
    ASSERT_TRUE(outcome.ok()) << OptimizerModeName(mode) << ": "
                              << outcome.status();
    auto executor = Executor::Create(outcome->jqp);
    ASSERT_TRUE(executor.ok())
        << OptimizerModeName(mode) << ": " << executor.status();
    auto run = executor->Run(world->stream);
    ASSERT_TRUE(run.ok()) << run.status();

    std::map<std::string, MatchSet> fingerprints;
    for (const Query& q : queries) {
      fingerprints[q.name] = Fingerprints(run->sink_events.at(q.name));
    }
    if (!have_reference) {
      reference = std::move(fingerprints);
      have_reference = true;
    } else {
      for (const Query& q : queries) {
        EXPECT_EQ(reference[q.name], fingerprints[q.name])
            << "seed " << seed << " mode " << OptimizerModeName(mode)
            << " query " << q.name << "\n"
            << outcome->jqp.ToString(world->registry);
      }
    }

    // The multi-threaded executor must agree with the single-threaded one
    // on the same plan (spot-check MOTTO only to bound runtime).
    if (mode == OptimizerMode::kMotto) {
      auto parallel = ParallelExecutor::Create(outcome->jqp, 3, 128);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      auto parallel_run = parallel->Run(world->stream);
      ASSERT_TRUE(parallel_run.ok()) << parallel_run.status();
      for (const Query& q : queries) {
        EXPECT_EQ(Fingerprints(parallel_run->sink_events.at(q.name)),
                  reference[q.name])
            << "parallel executor diverges, seed " << seed << " " << q.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace motto
