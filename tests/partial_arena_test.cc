// Unit tests for the matcher's arena-backed partial-match storage: chunk
// refcounting/reuse, materialization order, and the matcher-level behaviours
// that depend on it (PartialCount, sweep-under-expiry, Reset replay).
#include <gtest/gtest.h>

#include "engine/matcher.h"
#include "engine/partial_arena.h"
#include "engine/plan_util.h"
#include "event/event_type.h"

namespace motto {
namespace {

Constituent C(EventTypeId type, Timestamp ts, int32_t slot) {
  return Constituent{type, ts, slot};
}

TEST(PartialArenaTest, MaterializeIsRootFirstAcrossChunks) {
  PartialArena arena;
  Constituent a = C(1, 10, 0);
  Constituent bc[] = {C(2, 20, 1), C(3, 30, 2)};
  Constituent d = C(4, 40, 3);
  PartialArena::NodeRef root = arena.Extend(PartialArena::kNullRef, &a, 1);
  PartialArena::NodeRef mid = arena.Extend(root, bc, 2);
  PartialArena::NodeRef tail = arena.Extend(mid, &d, 1);

  EXPECT_EQ(arena.HistoryLength(root), 1u);
  EXPECT_EQ(arena.HistoryLength(mid), 3u);
  EXPECT_EQ(arena.HistoryLength(tail), 4u);

  std::vector<Constituent> parts;
  arena.Materialize(tail, &parts);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], a);
  EXPECT_EQ(parts[1], bc[0]);
  EXPECT_EQ(parts[2], bc[1]);
  EXPECT_EQ(parts[3], d);

  // Materialize appends without disturbing existing content.
  arena.Materialize(root, &parts);
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[4], a);
}

TEST(PartialArenaTest, SharedPrefixSurvivesUntilLastReferenceDrops) {
  PartialArena arena;
  Constituent a = C(1, 10, 0);
  Constituent b = C(2, 20, 1);
  Constituent c = C(3, 30, 1);
  PartialArena::NodeRef root = arena.Extend(PartialArena::kNullRef, &a, 1);
  // Two extensions sharing the root (NFA nondeterminism).
  PartialArena::NodeRef left = arena.Extend(root, &b, 1);
  PartialArena::NodeRef right = arena.Extend(root, &c, 1);
  EXPECT_EQ(arena.live_chunks(), 3u);

  // The root stays live through the surviving branch after its own owner
  // and one branch release it.
  arena.Release(root);
  arena.Release(left);
  EXPECT_EQ(arena.live_chunks(), 2u);
  std::vector<Constituent> parts;
  arena.Materialize(right, &parts);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], a);
  EXPECT_EQ(parts[1], c);

  arena.Release(right);
  EXPECT_EQ(arena.live_chunks(), 0u);
}

TEST(PartialArenaTest, ReleasedChunksAreRecycledWithoutFreshAllocations) {
  PartialArena arena;
  Constituent one = C(1, 10, 0);
  Constituent pair[] = {C(2, 20, 1), C(3, 30, 2)};
  PartialArena::NodeRef r1 = arena.Extend(PartialArena::kNullRef, &one, 1);
  PartialArena::NodeRef r2 = arena.Extend(r1, pair, 2);
  arena.Release(r1);  // Drops the owner ref; r1 lives on as r2's parent.
  arena.Release(r2);  // Frees r2, then transitively r1.
  ASSERT_EQ(arena.live_chunks(), 0u);
  uint64_t allocs = arena.stats().chunk_allocs;
  EXPECT_EQ(allocs, 2u);

  // Same sizes again: served entirely from the free lists.
  PartialArena::NodeRef r3 = arena.Extend(PartialArena::kNullRef, pair, 2);
  PartialArena::NodeRef r4 = arena.Extend(r3, &one, 1);
  EXPECT_EQ(arena.stats().chunk_allocs, allocs);
  EXPECT_EQ(arena.stats().chunk_reuses, 2u);

  std::vector<Constituent> parts;
  arena.Materialize(r4, &parts);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], pair[0]);
  EXPECT_EQ(parts[1], pair[1]);
  EXPECT_EQ(parts[2], one);

  // A different size still needs a fresh chunk.
  Constituent triple[] = {C(4, 1, 0), C(5, 2, 1), C(6, 3, 2)};
  arena.Extend(PartialArena::kNullRef, triple, 3);
  EXPECT_EQ(arena.stats().chunk_allocs, allocs + 1);
}

TEST(PartialArenaTest, HighWaterMarksTrackPeakUsage) {
  PartialArena arena;
  Constituent a = C(1, 10, 0);
  std::vector<PartialArena::NodeRef> refs;
  for (int i = 0; i < 5; ++i) {
    refs.push_back(arena.Extend(PartialArena::kNullRef, &a, 1));
  }
  for (PartialArena::NodeRef ref : refs) arena.Release(ref);
  EXPECT_EQ(arena.live_chunks(), 0u);
  EXPECT_EQ(arena.stats().live_high_water, 5u);
  EXPECT_EQ(arena.stats().slab_high_water, 5u);
}

TEST(PartialArenaTest, ResetDropsEverythingAndReplaysAllocationFree) {
  PartialArena arena;
  Constituent a = C(1, 10, 0);
  PartialArena::NodeRef root = arena.Extend(PartialArena::kNullRef, &a, 1);
  arena.Extend(root, &a, 1);  // Still referenced at Reset time.
  arena.Reset();
  EXPECT_EQ(arena.live_chunks(), 0u);
  // Replay is served from recycled chunks: no fresh slab carving.
  uint64_t allocs = arena.stats().chunk_allocs;
  uint64_t reuses = arena.stats().chunk_reuses;
  PartialArena::NodeRef again = arena.Extend(PartialArena::kNullRef, &a, 1);
  std::vector<Constituent> parts;
  arena.Materialize(again, &parts);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], a);
  EXPECT_EQ(arena.stats().chunk_allocs, allocs);
  EXPECT_EQ(arena.stats().chunk_reuses, reuses + 1);
}

class MatcherArenaTest : public ::testing::Test {
 protected:
  PatternSpec SeqSpec(int operands, Duration window) {
    FlatPattern flat;
    flat.op = PatternOp::kSeq;
    for (int i = 0; i < operands; ++i) {
      flat.operands.push_back(
          registry_.RegisterPrimitive("T" + std::to_string(i)));
    }
    return MakeRawPatternSpec(flat, window, &registry_);
  }

  EventTypeRegistry registry_;
  std::vector<Event> out_;
};

TEST_F(MatcherArenaTest, PartialCountTracksLiveRunsAndMatchesArena) {
  PatternMatcher matcher(SeqSpec(3, Seconds(10)));
  EXPECT_EQ(matcher.PartialCount(), 0u);
  matcher.OnEvent(kRawChannel, Event::Primitive(0, 1000), &out_);
  EXPECT_EQ(matcher.PartialCount(), 1u);
  matcher.OnEvent(kRawChannel, Event::Primitive(1, 2000), &out_);
  // The T0 run stays (it can pair with a later T1) and the extended run
  // joins it.
  EXPECT_EQ(matcher.PartialCount(), 2u);
  EXPECT_EQ(matcher.arena().live_chunks(), matcher.PartialCount());
  matcher.OnEvent(kRawChannel, Event::Primitive(2, 3000), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].constituents().size(), 3u);
}

TEST_F(MatcherArenaTest, SweepUnderExpiryReleasesPartialsAndChunks) {
  PatternMatcher matcher(SeqSpec(2, Seconds(1)));
  for (int i = 0; i < 10; ++i) {
    matcher.OnEvent(kRawChannel,
                    Event::Primitive(0, 1000 + static_cast<Timestamp>(i)),
                    &out_);
  }
  EXPECT_EQ(matcher.PartialCount(), 10u);
  // Advance event time far past the window; the periodic sweep (every 64
  // watermark ticks) must reclaim both the partials and their arena chunks.
  for (int tick = 0; tick < 65; ++tick) {
    matcher.OnWatermark(Seconds(100) + tick, &out_);
  }
  EXPECT_EQ(matcher.PartialCount(), 0u);
  EXPECT_EQ(matcher.arena().live_chunks(), 0u);
  EXPECT_TRUE(out_.empty());
}

TEST_F(MatcherArenaTest, ExpiredRunsAreDroppedInPlaceOnExtension) {
  PatternMatcher matcher(SeqSpec(2, Seconds(1)));
  matcher.OnEvent(kRawChannel, Event::Primitive(0, 1000), &out_);
  EXPECT_EQ(matcher.PartialCount(), 1u);
  // Way-later T0 arrival scans the start bucket: the expired run dies in
  // place even though no sweep tick has fired.
  matcher.OnWatermark(Seconds(100), &out_);
  matcher.OnEvent(kRawChannel, Event::Primitive(1, Seconds(100)), &out_);
  EXPECT_EQ(matcher.PartialCount(), 0u);
  EXPECT_EQ(matcher.arena().live_chunks(), 0u);
  EXPECT_TRUE(out_.empty());
}

TEST_F(MatcherArenaTest, ResetReplayIsAllocationFreeAndIdentical) {
  PatternMatcher matcher(SeqSpec(3, Seconds(10)));
  std::vector<Event> first;
  std::vector<Event> second;
  auto run = [&](std::vector<Event>* out) {
    matcher.Reset();
    for (int i = 0; i < 6; ++i) {
      Timestamp ts = 1000 * (i + 1);
      matcher.OnWatermark(ts, out);
      matcher.OnEvent(kRawChannel,
                      Event::Primitive(static_cast<EventTypeId>(i % 3), ts),
                      out);
    }
  };
  run(&first);
  uint64_t allocs_after_warmup = matcher.arena().stats().chunk_allocs;
  run(&second);
  // Second replay is served entirely from recycled chunks.
  EXPECT_EQ(matcher.arena().stats().chunk_allocs, allocs_after_warmup);
  EXPECT_GT(matcher.arena().stats().chunk_reuses, 0u);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]);
  }
}

}  // namespace
}  // namespace motto
