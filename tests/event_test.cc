#include "event/event.h"

#include <gtest/gtest.h>

#include "event/stream.h"

namespace motto {
namespace {

TEST(EventTypeRegistryTest, PrimitiveAndCompositeSpaces) {
  EventTypeRegistry registry;
  EventTypeId e1 = registry.RegisterPrimitive("E1");
  EventTypeId e2 = registry.RegisterPrimitive("E2");
  EventTypeId combo = registry.RegisterComposite("SEQ(E1,E2)");
  EXPECT_NE(e1, e2);
  EXPECT_TRUE(registry.IsPrimitive(e1));
  EXPECT_FALSE(registry.IsPrimitive(combo));
  EXPECT_EQ(registry.RegisterPrimitive("E1"), e1);
  EXPECT_EQ(registry.RegisterComposite("SEQ(E1,E2)"), combo);
  EXPECT_EQ(registry.Find("E2"), e2);
  EXPECT_EQ(registry.Find("nope"), kInvalidEventType);
  EXPECT_EQ(registry.PrimitiveTypes(), (std::vector<EventTypeId>{e1, e2}));
}

TEST(EventTest, PrimitiveBasics) {
  Event e = Event::Primitive(3, 1000, Payload{9.5, 7});
  EXPECT_TRUE(e.is_primitive());
  EXPECT_EQ(e.type(), 3);
  EXPECT_EQ(e.begin(), 1000);
  EXPECT_EQ(e.end(), 1000);
  EXPECT_EQ(e.span(), 0);
  EXPECT_EQ(e.payload().value, 9.5);
}

TEST(EventTest, CompositeDerivesBeginFromConstituents) {
  std::vector<Constituent> parts = {{1, 500, 0}, {2, 200, 1}, {3, 900, 2}};
  Event e = Event::Composite(42, parts, 900);
  EXPECT_FALSE(e.is_primitive());
  EXPECT_EQ(e.begin(), 200);
  EXPECT_EQ(e.end(), 900);
  EXPECT_EQ(e.span(), 700);
  EXPECT_EQ(e.constituents().size(), 3u);
}

TEST(EventTest, FingerprintIgnoresSlotsAndOrder) {
  Event a = Event::Composite(42, {{1, 500, 0}, {2, 200, 1}}, 500);
  Event b = Event::Composite(43, {{2, 200, 5}, {1, 500, 9}}, 500);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(EventTest, FingerprintOfPrimitiveMatchesSingletonComposite) {
  Event p = Event::Primitive(7, 123);
  Event c = Event::Composite(99, {{7, 123, 0}}, 123);
  EXPECT_EQ(p.Fingerprint(), c.Fingerprint());
}

TEST(EventTest, FingerprintDistinguishesDifferentMatches) {
  Event a = Event::Composite(1, {{1, 500, 0}}, 500);
  Event b = Event::Composite(1, {{1, 501, 0}}, 501);
  Event c = Event::Composite(1, {{2, 500, 0}}, 500);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(StreamTest, ValidateAcceptsSortedPrimitives) {
  EventStream s = {Event::Primitive(0, 10), Event::Primitive(1, 10),
                   Event::Primitive(0, 20)};
  EXPECT_TRUE(ValidateStream(s).ok());
}

TEST(StreamTest, ValidateRejectsUnsorted) {
  EventStream s = {Event::Primitive(0, 20), Event::Primitive(1, 10)};
  EXPECT_FALSE(ValidateStream(s).ok());
}

TEST(StreamTest, ValidateRejectsComposite) {
  EventStream s = {Event::Composite(5, {{1, 10, 0}}, 10)};
  EXPECT_FALSE(ValidateStream(s).ok());
}

TEST(StreamTest, StatsComputeRates) {
  EventStream s;
  // 2 seconds of stream time: type 0 at 4 events, type 1 at 2 events.
  for (int i = 0; i < 4; ++i) {
    s.push_back(Event::Primitive(0, i * Seconds(2) / 4));
  }
  s.push_back(Event::Primitive(1, Seconds(1)));
  s.push_back(Event::Primitive(1, Seconds(2)));
  std::sort(s.begin(), s.end(), [](const Event& a, const Event& b) {
    return a.begin() < b.begin();
  });
  StreamStats stats = ComputeStats(s);
  EXPECT_EQ(stats.num_events, 6);
  EXPECT_EQ(stats.duration, Seconds(2));
  EXPECT_DOUBLE_EQ(stats.RateOf(0), 2.0);
  EXPECT_DOUBLE_EQ(stats.RateOf(1), 1.0);
  EXPECT_DOUBLE_EQ(stats.RateOf(99), 0.0);
  EXPECT_DOUBLE_EQ(stats.total_rate, 3.0);
}

TEST(StreamTest, StatsOnEmptyStream) {
  StreamStats stats = ComputeStats({});
  EXPECT_EQ(stats.num_events, 0);
  EXPECT_EQ(stats.total_rate, 0.0);
}

}  // namespace
}  // namespace motto
