// Differential verification: fuzzed workloads checked across all execution
// paths — brute-force oracle, per-query NFA matcher plans, unshared
// multi-query plan, MOTTO-optimized JQP (exact branch-and-bound and
// simulated-annealing solves), and the pipelined parallel executor. Any
// disagreement is shrunk and reported with a repro command.
//
// MOTTO_FUZZ_ITERS scales the per-seed case count (default 40 here; the
// nightly sanitizer sweep raises it via tools/check_build.sh).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "verify/differ.h"
#include "workload/io.h"

namespace motto {
namespace {

int IterationsFromEnv(int fallback) {
  const char* env = std::getenv("MOTTO_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

void ExpectClean(verify::DifferOptions options) {
  auto outcome = verify::RunDiffer(options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  for (const verify::Failure& failure : outcome->failures) {
    ADD_FAILURE() << "case seed " << failure.case_seed << ":\n"
                  << failure.report << "workload:\n" << failure.workload_text
                  << "stream:\n" << failure.stream_csv << "repro:\n"
                  << failure.repro;
  }
  // The suite must actually evaluate cases: if the oracle budget skipped
  // (almost) everything the run proves nothing.
  EXPECT_LE(outcome->skipped, outcome->iterations / 4);
}

TEST(DifferentialTest, DefaultShapes) {
  verify::DifferOptions options;
  options.seed = 1;
  options.iterations = IterationsFromEnv(40);
  ExpectClean(options);
}

TEST(DifferentialTest, DeepNesting) {
  verify::DifferOptions options;
  options.seed = 500000;
  options.iterations = IterationsFromEnv(40);
  options.fuzz.max_depth = 3;
  options.fuzz.nested_prob = 0.7;
  options.fuzz.num_events = 24;
  ExpectClean(options);
}

TEST(DifferentialTest, TinyAlphabetManyCollisions) {
  // Two types and frequent equal timestamps: maximal operand overlap, the
  // sharing rewrites fire constantly, SEQ's strict order guard is stressed.
  verify::DifferOptions options;
  options.seed = 900000;
  options.iterations = IterationsFromEnv(40);
  options.fuzz.num_event_types = 2;
  options.fuzz.ts_collision_prob = 0.45;
  options.fuzz.negation_prob = 0.5;
  ExpectClean(options);
}

TEST(DifferentialTest, SingleQueryWideWindows) {
  // One query per case isolates matcher-vs-oracle semantics (no sharing),
  // with windows usually larger than the whole stream.
  verify::DifferOptions options;
  options.seed = 1300000;
  options.iterations = IterationsFromEnv(40);
  options.fuzz.num_queries = 1;
  options.fuzz.num_events = 28;
  options.fuzz.max_gap = 3;
  ExpectClean(options);
}

/// Replays one pinned (workload, stream) pair through CheckCase.
void ExpectCaseClean(const std::string& workload_text,
                     const std::string& stream_csv) {
  EventTypeRegistry registry;
  auto queries = ParseWorkloadText(workload_text, &registry);
  ASSERT_TRUE(queries.ok()) << queries.status();
  auto stream = ParseStreamCsv(stream_csv, &registry);
  ASSERT_TRUE(stream.ok()) << stream.status();
  verify::DifferOptions options;
  auto report = verify::CheckCase(*queries, *stream, &registry, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->ToString();
}

// Pinned regressions: hand-reduced shapes where the execution paths have
// historically been most at risk of diverging. Each pins the whole
// five-path comparison, not a single expected value.
TEST(DifferentialTest, PinnedSharedEventAcrossChannels) {
  // A raw operand and a DISJ pass-through of the same type: one physical
  // event arrives twice (two channels) and fills both operands.
  ExpectCaseClean(
      "q1: SELECT * FROM s MATCHING [20 us : CONJ(E0 & DISJ(E0 | E1))]\n"
      "q2: SELECT * FROM s MATCHING [20 us : DISJ(E0 | E1)]\n",
      "type,ts_us,value,aux\n"
      "E0,1,50,10\n"
      "E0,3,60,20\n"
      "E1,3,70,30\n");
}

TEST(DifferentialTest, PinnedNegationAtWindowBoundary) {
  // Negated events exactly at min_begin and at min_begin + window (both
  // kill, inclusive interval), plus one just outside (no kill).
  ExpectCaseClean(
      "q1: SELECT * FROM s MATCHING [10 us : SEQ(E0, E1, NEG(E2))]\n",
      "type,ts_us,value,aux\n"
      "E2,5,0,0\n"
      "E0,5,0,0\n"
      "E1,7,0,0\n"
      "E0,20,0,0\n"
      "E1,24,0,0\n"
      "E2,31,0,0\n"
      "E0,40,0,0\n"
      "E1,44,0,0\n"
      "E2,51,0,0\n");
}

TEST(DifferentialTest, PinnedDuplicateTypeMultiplicity) {
  // CONJ over duplicate types shared with another query's SEQ: the shared
  // plan must preserve per-assignment multiplicity (2 matches per pair).
  ExpectCaseClean(
      "q1: SELECT * FROM s MATCHING [15 us : CONJ(E0 & E0)]\n"
      "q2: SELECT * FROM s MATCHING [15 us : SEQ(E0, E0)]\n",
      "type,ts_us,value,aux\n"
      "E0,1,10,1\n"
      "E0,4,20,2\n"
      "E0,4,30,3\n"
      "E0,9,40,4\n");
}

TEST(DifferentialTest, PinnedCompositeIntoDuplicateTypeConj) {
  // Fuzz-found (case seed 2038): sharing CONJ(E1 & E2) as a composite
  // operand of a CONJ with a *duplicate* E1 slot let one physical E1 fill
  // both the composite and the raw slot — the unshared plan keeps both E1
  // slots on one channel and requires two distinct events. The rewriter now
  // refuses the composite-operand edge unless the beneficiary's operand
  // types are all-distinct primitives.
  ExpectCaseClean(
      "q1: SELECT * FROM stream MATCHING [3 us : CONJ(E2 & DISJ(E3 | "
      "CONJ(E1[value < 30] & E1 & E2) | CONJ(E1[aux >= 243] & E1 & E3)) & "
      "E1)]\n",
      "type,ts_us,value,aux\n"
      "E1,100,0,500\n"
      "E2,100,0,0\n");
}

TEST(DifferentialTest, PinnedIdenticalNestedChildren) {
  // Identical operator children collapse onto one producer channel, so a
  // single event cannot fill both operands.
  ExpectCaseClean(
      "q1: SELECT * FROM s MATCHING [25 us : CONJ(DISJ(E0 | E1) & "
      "DISJ(E0 | E1))]\n",
      "type,ts_us,value,aux\n"
      "E0,2,1,1\n"
      "E1,6,2,2\n");
}

}  // namespace
}  // namespace motto
