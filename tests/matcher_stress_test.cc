// Randomized equivalence stress for the arena-backed matcher hot path: for
// random flat patterns (all operators, optional negation and payload
// predicates) over random streams, the brute-force reference semantics, the
// directly-driven PatternMatcher (in arrival order AND in selectivity-
// ordered lazy mode under a random evaluation order), the single-threaded
// Executor (both eval modes) and the ParallelExecutor must produce
// identical sink-fingerprint multisets.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/matcher.h"
#include "engine/parallel_executor.h"
#include "engine/plan_util.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::Fingerprints;
using testing::MatchSet;
using testing::ReferenceMatches;

constexpr Timestamp kFlushWatermark = std::numeric_limits<Timestamp>::max() / 4;

struct Scenario {
  EventTypeRegistry registry;
  FlatPattern flat;
  std::vector<Predicate> operand_predicates;
  std::vector<Predicate> negated_predicates;
  Duration window = 0;
  EventStream stream;
};

Predicate RandomPredicate(Rng* rng) {
  Comparison cmp;
  cmp.field = rng->Bernoulli(0.5) ? PredicateField::kValue
                                  : PredicateField::kAux;
  cmp.cmp = rng->Bernoulli(0.5) ? PredicateCmp::kGt : PredicateCmp::kLe;
  cmp.constant = static_cast<double>(rng->Uniform(20, 80));
  return Predicate({cmp});
}

Scenario MakeScenario(uint64_t seed, PatternOp op) {
  Scenario s;
  Rng rng(seed);
  int num_types = static_cast<int>(rng.Uniform(3, 5));
  std::vector<EventTypeId> types;
  for (int i = 0; i < num_types; ++i) {
    types.push_back(s.registry.RegisterPrimitive("T" + std::to_string(i)));
  }

  s.flat.op = op;
  int num_operands = static_cast<int>(rng.Uniform(2, op == PatternOp::kConj
                                                         ? 3
                                                         : 4));
  for (int k = 0; k < num_operands; ++k) {
    s.flat.operands.push_back(types[static_cast<size_t>(
        rng.Uniform(0, num_types - 1))]);
    s.operand_predicates.push_back(
        rng.Bernoulli(0.3) ? RandomPredicate(&rng) : Predicate{});
  }
  if (op != PatternOp::kDisj && rng.Bernoulli(0.4)) {
    // Negate a type not used by an operand, when one exists.
    for (EventTypeId t : types) {
      bool used = false;
      for (EventTypeId operand : s.flat.operands) used |= operand == t;
      if (!used) {
        s.flat.negated.push_back(t);
        s.negated_predicates.push_back(
            rng.Bernoulli(0.5) ? RandomPredicate(&rng) : Predicate{});
        break;
      }
    }
  }
  s.window = Millis(static_cast<int64_t>(rng.Uniform(20, 120)));

  int num_events = static_cast<int>(rng.Uniform(40, 90));
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    ts += rng.Uniform(1, Millis(15));
    Payload payload;
    payload.value = static_cast<double>(rng.Uniform(0, 100));
    payload.aux = rng.Uniform(0, 100);
    s.stream.push_back(Event::Primitive(
        types[static_cast<size_t>(rng.Uniform(0, num_types - 1))], ts,
        payload));
  }
  return s;
}

PatternSpec MakeSpec(Scenario* s) {
  PatternSpec spec = MakeRawPatternSpec(s->flat, s->window, &s->registry);
  for (size_t k = 0; k < s->operand_predicates.size(); ++k) {
    spec.operands[k].predicate = s->operand_predicates[k];
  }
  spec.negated_predicates = s->negated_predicates;
  return spec;
}

/// Drives a PatternMatcher directly, the way the single-threaded executor
/// would: watermark then event, plus a terminal flush for deferred-negation
/// emissions.
MatchSet DirectMatcherRun(const PatternSpec& spec, const EventStream& stream,
                          EvalOrderMode mode = EvalOrderMode::kArrival) {
  PatternMatcher matcher(spec);
  matcher.SetEvalMode(mode);
  std::vector<Event> out;
  std::vector<Event> collected;
  for (const Event& e : stream) {
    out.clear();
    matcher.OnWatermark(e.begin(), &out);
    matcher.OnEvent(kRawChannel, e, &out);
    collected.insert(collected.end(), out.begin(), out.end());
  }
  out.clear();
  matcher.OnWatermark(kFlushWatermark, &out);
  collected.insert(collected.end(), out.begin(), out.end());
  // Chunk accounting sanity: every live partial owns a distinct tail chunk,
  // and Reset returns the arena to empty.
  EXPECT_GE(matcher.arena().live_chunks(), matcher.PartialCount());
  matcher.Reset();
  EXPECT_EQ(matcher.arena().live_chunks(), 0u);
  EXPECT_EQ(matcher.BufferedCount(), 0u);
  return Fingerprints(collected);
}

/// A random permutation of the operand indexes — lazy mode must agree with
/// the reference under ANY evaluation order, not just the planner's pick.
std::vector<int32_t> RandomEvalOrder(Rng* rng, size_t n) {
  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<size_t>(rng->Uniform(
                  0, static_cast<int64_t>(i) - 1))]);
  }
  return order;
}

Jqp MakeSingleNodePlan(const PatternSpec& spec) {
  Jqp jqp;
  JqpNode node;
  node.spec = spec;
  node.label = "stress";
  int32_t id = jqp.AddNode(std::move(node));
  jqp.sinks.push_back(Jqp::Sink{"q", id});
  return jqp;
}

MatchSet ExecutorRun(const PatternSpec& spec, const EventStream& stream,
                     EvalOrderMode mode = EvalOrderMode::kArrival) {
  auto executor = Executor::Create(MakeSingleNodePlan(spec));
  EXPECT_TRUE(executor.ok()) << executor.status().ToString();
  ExecutorOptions options;
  options.eval_order = mode;
  auto run = executor->Run(stream, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return Fingerprints(run->sink_events.at("q"));
}

MatchSet ParallelRun(const PatternSpec& spec, const EventStream& stream,
                     int threads, size_t batch) {
  auto executor =
      ParallelExecutor::Create(MakeSingleNodePlan(spec), threads, batch);
  EXPECT_TRUE(executor.ok()) << executor.status().ToString();
  auto run = executor->Run(stream);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return Fingerprints(run->sink_events.at("q"));
}

class MatcherStressTest : public ::testing::TestWithParam<PatternOp> {};

TEST_P(MatcherStressTest, AllPathsAgreeWithReferenceSemantics) {
  int with_matches = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario s = MakeScenario(seed * 977, GetParam());
    PatternSpec spec = MakeSpec(&s);
    MatchSet reference =
        ReferenceMatches(s.flat, s.window, s.stream, s.operand_predicates,
                         s.negated_predicates);
    MatchSet direct = DirectMatcherRun(spec, s.stream);
    ASSERT_EQ(direct, reference)
        << "matcher vs reference, seed " << seed << ", pattern "
        << s.flat.ToString(s.registry);
    // Lazy mode under a random evaluation order: identical match multiset,
    // both on the bare matcher and through the executor option.
    Rng order_rng(seed * 31 + 5);
    PatternSpec lazy_spec = spec;
    lazy_spec.eval_order = RandomEvalOrder(&order_rng, spec.operands.size());
    std::string order_str;
    for (int32_t k : lazy_spec.eval_order) {
      order_str += std::to_string(k) + ",";
    }
    MatchSet lazy =
        DirectMatcherRun(lazy_spec, s.stream, EvalOrderMode::kSelectivity);
    ASSERT_EQ(lazy, reference)
        << "lazy matcher vs reference, seed " << seed << ", order "
        << order_str << ", pattern " << s.flat.ToString(s.registry);
    MatchSet sequential = ExecutorRun(spec, s.stream);
    ASSERT_EQ(sequential, reference)
        << "executor vs reference, seed " << seed << ", pattern "
        << s.flat.ToString(s.registry);
    MatchSet lazy_exec =
        ExecutorRun(lazy_spec, s.stream, EvalOrderMode::kSelectivity);
    ASSERT_EQ(lazy_exec, reference)
        << "lazy executor vs reference, seed " << seed << ", order "
        << order_str << ", pattern " << s.flat.ToString(s.registry);
    MatchSet parallel = ParallelRun(spec, s.stream, 3, 16);
    ASSERT_EQ(parallel, reference)
        << "parallel executor vs reference, seed " << seed << ", pattern "
        << s.flat.ToString(s.registry);
    if (!reference.empty()) ++with_matches;
  }
  // The generator must actually exercise emission, not just empty agreement.
  EXPECT_GT(with_matches, 5);
}

INSTANTIATE_TEST_SUITE_P(AllOps, MatcherStressTest,
                         ::testing::Values(PatternOp::kSeq, PatternOp::kConj,
                                           PatternOp::kDisj),
                         [](const auto& info) {
                           return std::string(PatternOpName(info.param));
                         });

}  // namespace
}  // namespace motto
