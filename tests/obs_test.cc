#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "engine/executor.h"
#include "engine/parallel_executor.h"
#include "engine/plan_util.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "test_util.h"
#include "workload/data_gen.h"

namespace motto {
namespace {

using testing::MakeStream;

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("hits");
  c->Add();
  c->Add(4);
  EXPECT_EQ(registry.GetCounter("hits")->value, 5u);
  EXPECT_EQ(registry.GetCounter("hits"), c);  // Stable address.

  obs::Gauge* g = registry.GetGauge("depth");
  g->Set(3.0);
  g->Set(7.0);
  g->Set(2.0);
  EXPECT_DOUBLE_EQ(g->value, 2.0);
  EXPECT_DOUBLE_EQ(g->max, 7.0);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  obs::Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow.
  h.Record(0.5);    // <= 1 -> bucket 0.
  h.Record(1.0);    // == bound -> bucket 0 (inclusive upper bound).
  h.Record(5.0);    // bucket 1.
  h.Record(1000.0); // overflow.
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 0u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_DOUBLE_EQ(h.Mean(), (0.5 + 1.0 + 5.0 + 1000.0) / 4.0);
}

TEST(MetricsTest, ExponentialBoundsShape) {
  std::vector<double> bounds = obs::Histogram::ExponentialBounds(1.0, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 16.0);
}

TEST(MetricsTest, MergeFromSumsCountersAndHistograms) {
  obs::MetricsRegistry total;
  total.GetCounter("n")->Add(2);
  total.GetHistogram("h", {1.0, 2.0})->Record(0.5);
  total.GetGauge("g")->Set(3.0);

  obs::MetricsRegistry shard;
  shard.GetCounter("n")->Add(5);
  shard.GetCounter("shard_only")->Add(1);
  shard.GetHistogram("h", {1.0, 2.0})->Record(1.5);
  shard.GetGauge("g")->Set(9.0);

  total.MergeFrom(shard);
  EXPECT_EQ(total.GetCounter("n")->value, 7u);
  EXPECT_EQ(total.GetCounter("shard_only")->value, 1u);
  obs::Histogram* h = total.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 1u);
  EXPECT_DOUBLE_EQ(total.GetGauge("g")->max, 9.0);
}

TEST(MetricsTest, ToJsonContainsAllSections) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(3);
  registry.GetGauge("b.level")->Set(1.5);
  registry.GetHistogram("c.lat", {1.0})->Record(0.5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
}

TEST(TraceTest, EventsRenderAsChromeTraceJson) {
  obs::TraceSink sink;
  sink.NameThread(0, "matcher");
  double t0 = sink.NowMicros();
  sink.Span("round", "node", 0, t0, 12.5, "{\"batch\":1}");
  sink.Instant("watermark", 1, sink.NowMicros());
  sink.CounterValue("ready_depth", sink.NowMicros(), 3.0);
  EXPECT_EQ(sink.event_count(), 4u);
  std::string json = sink.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"batch\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(TraceTest, CapDropsAreCountedNotSilent) {
  obs::TraceSink sink(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) sink.Instant("tick", 0, sink.NowMicros());
  EXPECT_EQ(sink.event_count(), 2u);
  EXPECT_EQ(sink.dropped_events(), 3u);
  EXPECT_NE(sink.ToJson().find("\"dropped_events\":3"), std::string::npos);
}

TEST(TraceTest, WriteJsonRoundTrips) {
  obs::TraceSink sink;
  sink.Span("work", "node", 0, sink.NowMicros(), 1.0);
  std::string path =
      ::testing::TempDir() + "/motto_trace_test.json";
  ASSERT_TRUE(sink.WriteJson(path).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {};
  ASSERT_GT(std::fread(buffer, 1, sizeof(buffer) - 1, f), 0u);
  std::fclose(f);
  EXPECT_NE(std::string(buffer).find("{\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

class ObsEngineTest : public ::testing::Test {
 protected:
  Jqp TwoQueryPlan() {
    FlatQuery q1;
    q1.name = "q1";
    q1.window = Seconds(10);
    q1.pattern.op = PatternOp::kSeq;
    q1.pattern.operands = {registry_.RegisterPrimitive("E1"),
                           registry_.RegisterPrimitive("E2")};
    FlatQuery q2 = q1;
    q2.name = "q2";
    q2.pattern.op = PatternOp::kConj;
    return BuildDefaultJqp({q1, q2}, &registry_);
  }

  EventStream BigStream() {
    std::vector<std::pair<std::string, Timestamp>> events;
    for (int i = 0; i < 400; ++i) {
      events.emplace_back(i % 2 == 0 ? "E1" : "E2", i + 1);
    }
    return MakeStream(&registry_, events);
  }

  EventTypeRegistry registry_;
};

TEST_F(ObsEngineTest, ExecutorExportsMetricsAndTrace) {
  auto executor = Executor::Create(TwoQueryPlan());
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream stream = BigStream();

  obs::MetricsRegistry metrics;
  obs::TraceSink trace;
  ExecutorOptions options;
  options.metrics = &metrics;
  options.trace = &trace;
  auto run = executor->Run(stream, options);
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_EQ(metrics.GetCounter("run.raw_events")->value, stream.size());
  EXPECT_EQ(metrics.GetCounter("run.matches")->value, run->TotalMatches());
  EXPECT_EQ(metrics.GetCounter("node.0.events_in")->value,
            run->node_stats[0].events_in);
  // Matcher probes fire at sweep cadence (every 64 watermarks); a 400-event
  // stream crosses that several times.
  EXPECT_GT(metrics.GetCounter("node.0.sweeps")->value, 0u);
  EXPECT_GT(
      metrics.GetHistogram("node.0.sweep_seconds", obs::LatencySecondsBounds())
          ->count,
      0u);
  // Tracing implies per-node spans, so busy time is filled even without
  // collect_node_timing.
  EXPECT_GT(run->node_stats[0].busy_seconds, 0.0);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"watermark\""), std::string::npos);
  EXPECT_NE(json.find("\"final_flush\""), std::string::npos);
}

TEST_F(ObsEngineTest, DisabledObservabilityLeavesNoResidue) {
  auto executor = Executor::Create(TwoQueryPlan());
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream stream = BigStream();

  obs::MetricsRegistry metrics;
  ExecutorOptions on;
  on.metrics = &metrics;
  ASSERT_TRUE(executor->Run(stream, on).ok());
  uint64_t first_sweeps = metrics.GetCounter("node.0.sweeps")->value;

  // A later run without a registry must not keep writing into the old one.
  ASSERT_TRUE(executor->Run(stream, ExecutorOptions{}).ok());
  EXPECT_EQ(metrics.GetCounter("node.0.sweeps")->value, first_sweeps);
}

TEST_F(ObsEngineTest, ParallelExecutorMergesShardsAndTraces) {
  auto executor =
      ParallelExecutor::Create(TwoQueryPlan(), /*num_threads=*/2,
                               /*batch_size=*/32);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream stream = BigStream();

  obs::MetricsRegistry metrics;
  obs::TraceSink trace;
  ExecutorOptions options;
  options.metrics = &metrics;
  options.trace = &trace;
  auto run = executor->Run(stream, options);
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_EQ(metrics.GetCounter("sched.node_activations")->value,
            run->parallel.node_activations);
  EXPECT_EQ(metrics.GetCounter("sched.batches")->value,
            run->parallel.batches);
  // Worker shard counters merged in: per-worker activations sum to the total.
  uint64_t by_worker = 0;
  for (const auto& [name, counter] : metrics.counters()) {
    if (name.rfind("worker.", 0) == 0) by_worker += counter.value;
  }
  EXPECT_EQ(by_worker, run->parallel.node_activations);
  EXPECT_GT(
      metrics.GetHistogram("sched.activation_events", obs::SizeBounds())
          ->count,
      0u);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"pool_epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_start\""), std::string::npos);
  EXPECT_NE(json.find("\"ready_depth\""), std::string::npos);
  // Match semantics are untouched by instrumentation.
  auto plain = executor->Run(stream, ExecutorOptions{});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->TotalMatches(), run->TotalMatches());
}

TEST_F(ObsEngineTest, RunReportComparesPredictedAndMeasured) {
  Jqp jqp = TwoQueryPlan();
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream stream = BigStream();
  StreamStats stats = ComputeStats(stream);

  ExecutorOptions timing;
  timing.collect_node_timing = true;
  auto run = executor->Run(stream, timing);
  ASSERT_TRUE(run.ok()) << run.status();

  obs::RunReport report = obs::BuildRunReport(jqp, stats, *run);
  ASSERT_EQ(report.nodes.size(), jqp.nodes.size());
  EXPECT_TRUE(report.warnings.empty()) << report.warnings[0];
  double predicted = 0.0, measured = 0.0;
  for (const obs::NodeReport& node : report.nodes) {
    EXPECT_FALSE(node.label.empty());
    EXPECT_GT(node.predicted_cpu_units, 0.0);
    predicted += node.predicted_share;
    measured += node.measured_share;
  }
  EXPECT_NEAR(predicted, 1.0, 1e-9);
  EXPECT_NEAR(measured, 1.0, 1e-9);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"predicted_share\""), std::string::npos);
  EXPECT_NE(json.find("\"measured_share\""), std::string::npos);
  EXPECT_NE(report.ToTable().find("pred%"), std::string::npos);
}

TEST_F(ObsEngineTest, TraceDropsSurfaceInMetricsAndReport) {
  Jqp jqp = TwoQueryPlan();
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream stream = BigStream();

  // A sink far too small for this run: the overflow must be visible as a
  // counter and a report warning, never silent truncation.
  obs::TraceSink tiny(/*max_events=*/16);
  obs::MetricsRegistry metrics;
  ExecutorOptions options;
  options.metrics = &metrics;
  options.trace = &tiny;
  auto run = executor->Run(stream, options);
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_GT(tiny.dropped_events(), 0u);
  EXPECT_EQ(run->trace_dropped_spans, tiny.dropped_events());
  EXPECT_EQ(metrics.GetCounter("trace.dropped_spans")->value,
            run->trace_dropped_spans);
  obs::RunReport report =
      obs::BuildRunReport(jqp, ComputeStats(stream), *run);
  bool warned = false;
  for (const std::string& warning : report.warnings) {
    warned = warned || warning.find("dropped") != std::string::npos;
  }
  EXPECT_TRUE(warned) << "no trace-drop warning in the run report";

  // An ample sink drops nothing and adds no warning or counter.
  obs::TraceSink ample;
  obs::MetricsRegistry clean;
  options.trace = &ample;
  options.metrics = &clean;
  auto full = executor->Run(stream, options);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->trace_dropped_spans, 0u);
  EXPECT_EQ(clean.counters().count("trace.dropped_spans"), 0u);
}

TEST_F(ObsEngineTest, RunReportFlagsMissingTiming) {
  Jqp jqp = TwoQueryPlan();
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream stream = BigStream();
  auto run = executor->Run(stream);  // No collect_node_timing.
  ASSERT_TRUE(run.ok());
  obs::RunReport report =
      obs::BuildRunReport(jqp, ComputeStats(stream), *run);
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("timing"), std::string::npos);
}

}  // namespace
}  // namespace motto
