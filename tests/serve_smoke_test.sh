#!/usr/bin/env bash
# End-to-end crash-recovery smoke test for `motto serve` (DESIGN.md §15).
#
# Pipes ~100k generated events into a long-running server over stdin,
# SIGKILLs it twice mid-stream, restarts it from its durable checkpoints
# (re-encoding the stream from each restart's reported resume offset, the
# documented client protocol), and demands that the per-query match counts
# in the released output equal an uninterrupted batch replay exactly.
#
# Usage: serve_smoke_test.sh <path-to-motto-binary>
set -euo pipefail

MOTTO=$1
TMP=$(mktemp -d "${TMPDIR:-/tmp}/motto-serve-smoke.XXXXXX")
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT
cd "$TMP"

fail() { echo "FAIL: $*" >&2; exit 1; }

EVENTS=100000
INTERVAL=1000

"$MOTTO" gen-stream --events=$EVENTS --seed=42 --out=stream.csv >/dev/null
"$MOTTO" gen-workload --queries=10 --seed=7 --out=workload.ccl >/dev/null

# Uninterrupted batch replay: the reference per-query match counts.
"$MOTTO" run --workload=workload.ccl --stream=stream.csv > batch.out
awk '/ matches$/ { print $1, $2 }' batch.out | sort > batch_counts.txt
[ -s batch_counts.txt ] || fail "no per-query counts in batch output"

# Waits until the checkpoint directory has a snapshot and stops changing —
# the server has drained everything currently in the pipe.
wait_quiesce() {
  local last="" now=""
  for _ in $(seq 1 120); do
    now=$(ls -ln ckpt 2>/dev/null; wc -c < out/conn0.matches 2>/dev/null)
    if [ -n "$last" ] && [ "$now" = "$last" ] && ls ckpt/*.mck >/dev/null 2>&1
    then
      return 0
    fi
    last="$now"
    sleep 1
  done
  fail "server never quiesced"
}

# Starts the server reading a fresh FIFO on stdin; sets SERVE_PID and opens
# the FIFO for writing as fd 9. $1 names the log file. Every incarnation
# also runs the live-telemetry surface: an ephemeral status port and a
# per-incarnation stats log (snapshot seqs restart with the process, so the
# monotonicity check below is per file). STATUS_PORT gets the bound port.
STATUS_PORT=""
start_server() {
  rm -f pipe; mkfifo pipe
  "$MOTTO" serve --workload=workload.ccl --stream=stream.csv \
    --checkpoint-dir=ckpt --checkpoint-interval=$INTERVAL --out-dir=out \
    --status-port=0 --stats-log="${1%.log}.stats.jsonl" \
    --snapshot-interval=0.5 \
    < pipe > "$1" 2>&1 &
  SERVE_PID=$!
  exec 9> pipe
  for _ in $(seq 1 300); do
    grep -q "serve: ready" "$1" 2>/dev/null && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$1" >&2; fail "server died at startup"; }
    sleep 0.1
  done
  grep -q "serve: ready" "$1" || fail "server never became ready"
  STATUS_PORT=$(sed -n 's/.*serve: status on 127.0.0.1:\([0-9]*\).*/\1/p' "$1")
  [ -n "$STATUS_PORT" ] || fail "no status port announced in $1"
}

# Scrapes one status route; prints "<http-code> <body>".
scrape() {
  curl -s -o body.txt -w '%{http_code}' "http://127.0.0.1:$STATUS_PORT$1" \
    || fail "curl $1 failed against port $STATUS_PORT"
}

# The server must look alive: /healthz 200, /metrics exposing the ingest
# counter, /statusz carrying per-query health.
check_status_alive() {
  code=$(scrape /healthz)
  [ "$code" = 200 ] || { cat body.txt >&2; fail "$1: /healthz returned $code"; }
  grep -q '"healthy":true' body.txt || fail "$1: /healthz body not healthy"
  code=$(scrape /metrics)
  [ "$code" = 200 ] || fail "$1: /metrics returned $code"
  grep -q "motto_serve_ingested_events_total" body.txt \
    || fail "$1: ingest counter missing from /metrics"
  grep -q 'motto_query_matches_total{query=' body.txt \
    || fail "$1: per-query families missing from /metrics"
  code=$(scrape /statusz)
  [ "$code" = 200 ] || fail "$1: /statusz returned $code"
  python3 -c '
import json, sys
d = json.load(open("body.txt"))
assert d["queries"], "no per-query health"
for q in d["queries"]:
    assert q["state"] in ("live", "idle", "starved"), q
' || fail "$1: /statusz JSON invalid"
}

sigkill_server() {
  kill -9 "$SERVE_PID"
  wait "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=""
  exec 9>&-
}

# Parses "serve: recovered checkpoint seq=K ingested=N ..." from a log.
resume_offset() {
  sed -n 's/.*recovered checkpoint.*ingested=\([0-9]*\).*/\1/p' "$1" | head -1
}

# --- Incarnation 1: fresh start, ~60% of the stream, SIGKILL. -------------
# The slice ends 500 events past a checkpoint boundary, so the kill loses
# real in-flight matcher state that recovery must re-derive by replay.
start_server run1.log
grep -q "serve: fresh start" run1.log || fail "run1 did not start fresh"
"$MOTTO" wire-encode --stream=stream.csv --limit=60500 --no-end \
  --out=part1.bin >/dev/null
cat part1.bin >&9
wait_quiesce
check_status_alive run1
sigkill_server

# --- Incarnation 2: recover, feed the rest (no end frame), SIGKILL. -------
start_server run2.log
grep -q "serve: recovered checkpoint" run2.log || fail "run2 did not recover"
N1=$(resume_offset run2.log)
[ -n "$N1" ] && [ "$N1" -gt 0 ] || fail "run2 reported no resume offset"
[ "$N1" -le 60500 ] || fail "run2 resume offset $N1 exceeds events fed"
# Again stop short of the stream end, off a checkpoint boundary.
"$MOTTO" wire-encode --stream=stream.csv --skip="$N1" \
  --limit=$((99700 - N1)) --no-end --out=part2.bin >/dev/null
cat part2.bin >&9
wait_quiesce
check_status_alive run2
sigkill_server

# --- Incarnation 3: recover again, replay the tail, clean end frame. ------
start_server run3.log
grep -q "serve: recovered checkpoint" run3.log || fail "run3 did not recover"
N2=$(resume_offset run3.log)
[ -n "$N2" ] && [ "$N2" -ge "$N1" ] || fail "run3 resume offset went backwards"
"$MOTTO" wire-encode --stream=stream.csv --skip="$N2" --out=part3.bin \
  >/dev/null
cat part3.bin >&9
exec 9>&-
wait "$SERVE_PID" || { cat run3.log >&2; fail "final incarnation exited non-zero"; }
SERVE_PID=""
grep -q "serve: end of stream" run3.log || fail "run3 never saw the end frame"

# --- The recovery invariant: released output == uninterrupted batch. ------
[ -f out/conn0.matches ] || fail "no released output file"
awk -F'\t' '{ count[$1]++ } END { for (s in count) print s, count[s] }' \
  out/conn0.matches | sort > serve_counts_all.txt
# Keep only the per-query sinks (the output also carries shared inner
# sinks, which the batch summary does not print).
join batch_counts.txt serve_counts_all.txt | awk '$2 != $3' > diverged.txt
if [ -s diverged.txt ]; then
  echo "--- batch vs serve (query batch serve) ---" >&2
  cat diverged.txt >&2
  fail "match counts diverge after two SIGKILL/restart cycles"
fi
missing=$(join -v 1 batch_counts.txt serve_counts_all.txt | awk '$2 != 0')
[ -z "$missing" ] && : || fail "queries missing from served output: $missing"

# --- Stats logs: well-formed JSONL, strictly monotone seq per process. ----
# run1/run2 idle through wait_quiesce, so at a 0.5 s cadence they must log
# several snapshots; run3 replays the tail and may exit within one interval,
# where only the forced shutdown snapshot is guaranteed.
for spec in run1:3 run2:3 run3:1; do
  log="${spec%:*}.stats.jsonl"
  [ -s "$log" ] || fail "$log missing or empty"
  python3 - "$log" "${spec#*:}" <<'EOF' || fail "stats log validation failed"
import json, sys
last = 0
lines = 0
for line in open(sys.argv[1]):
    d = json.loads(line)
    assert d["seq"] > last, (sys.argv[1], d["seq"], last)
    last = d["seq"]
    assert d["ingested"] >= 0 and "queries" in d and "metrics" in d
    lines += 1
assert lines >= int(sys.argv[2]), f"{sys.argv[1]}: only {lines} snapshots"
EOF
done
# The final incarnation's closing snapshot covers the whole stream.
tail -1 run3.stats.jsonl | python3 -c '
import json, sys
d = json.loads(sys.stdin.read())
assert d["ingested"] == 100000, d["ingested"]
' || fail "final stats-log line does not cover the full stream"

# --- SIGTERM graceful drain: checkpoint + exit 0, then a clean resume. ----
rm -rf ckpt out
start_server term.log
grep -q "serve: fresh start" term.log || fail "term run did not start fresh"
"$MOTTO" wire-encode --stream=stream.csv --limit=40000 --no-end \
  --out=term1.bin >/dev/null
cat term1.bin >&9
wait_quiesce
check_status_alive term
kill -TERM "$SERVE_PID"     # FIFO still open: the self-pipe must win.
code=0
wait "$SERVE_PID" || code=$?
[ "$code" = 0 ] || { cat term.log >&2; fail "SIGTERM exit code $code"; }
SERVE_PID=""
exec 9>&-
grep -q "serve: graceful shutdown: drained queue" term.log \
  || { cat term.log >&2; fail "graceful-shutdown banner missing"; }
TN=$(sed -n 's/.*graceful shutdown: drained queue at ingested=\([0-9]*\).*/\1/p' term.log)
[ "$TN" = 40000 ] || fail "graceful drain lost events (ingested=$TN)"

start_server term2.log
grep -q "serve: recovered checkpoint" term2.log \
  || fail "no recovery after graceful shutdown"
TN2=$(resume_offset term2.log)
[ "$TN2" = 40000 ] || fail "resume offset $TN2 after graceful shutdown"
"$MOTTO" wire-encode --stream=stream.csv --skip="$TN2" --out=term2.bin \
  >/dev/null
cat term2.bin >&9
exec 9>&-
wait "$SERVE_PID" || { cat term2.log >&2; fail "post-SIGTERM resume failed"; }
SERVE_PID=""
grep -q "serve: end of stream" term2.log || fail "resume never saw end frame"
awk -F'\t' '{ count[$1]++ } END { for (s in count) print s, count[s] }' \
  out/conn0.matches | sort > term_counts.txt
join batch_counts.txt term_counts.txt | awk '$2 != $3' > term_diverged.txt
[ -s term_diverged.txt ] && { cat term_diverged.txt >&2; \
  fail "match counts diverge across SIGTERM graceful drain"; } || true

echo "PASS: $EVENTS events, 2 SIGKILL/restart cycles (resumed at $N1, $N2), \
per-query counts equal batch replay; /healthz+/metrics+/statusz live across \
restarts, stats logs monotone, SIGTERM drain resumed at $TN2"
