#include "workload/io.h"

#include <gtest/gtest.h>

#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace motto {
namespace {

TEST(WorkloadIoTest, ParsesNamedAndAnonymousQueries) {
  EventTypeRegistry registry;
  std::string text =
      "# stock workload\n"
      "alerts: SELECT * FROM s MATCHING [10 sec : SEQ(AAPL, IBM)]\n"
      "\n"
      "SELECT * FROM s MATCHING [1 min : CONJ(MSFT & IBM)]  # inline comment\n";
  auto queries = ParseWorkloadText(text, &registry);
  ASSERT_TRUE(queries.ok()) << queries.status();
  ASSERT_EQ(queries->size(), 2u);
  EXPECT_EQ((*queries)[0].name, "alerts");
  EXPECT_EQ((*queries)[0].window, Seconds(10));
  EXPECT_EQ((*queries)[1].name, "q2");
  EXPECT_EQ((*queries)[1].window, Minutes(1));
  EXPECT_EQ((*queries)[1].pattern.op(), PatternOp::kConj);
}

TEST(WorkloadIoTest, ErrorsCarryLineNumbers) {
  EventTypeRegistry registry;
  auto bad = ParseWorkloadText("SELECT * FROM s MATCHING [10 sec : ]\n",
                               &registry);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseWorkloadText("", &registry).ok());
  EXPECT_FALSE(ParseWorkloadText("# only comments\n", &registry).ok());
}

TEST(WorkloadIoTest, RoundTripThroughText) {
  EventTypeRegistry registry;
  WorkloadOptions options;
  options.num_queries = 12;
  options.basic_ratio = 0.5;
  auto workload = GenerateWorkload(options, &registry);
  ASSERT_TRUE(workload.ok());
  std::string text = WorkloadToText(workload->queries, registry);
  EventTypeRegistry registry2;
  auto reparsed = ParseWorkloadText(text, &registry2);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  ASSERT_EQ(reparsed->size(), workload->queries.size());
  for (size_t i = 0; i < reparsed->size(); ++i) {
    EXPECT_EQ((*reparsed)[i].name, workload->queries[i].name);
    EXPECT_EQ((*reparsed)[i].window, workload->queries[i].window);
    EXPECT_EQ((*reparsed)[i].pattern.ToString(registry2),
              workload->queries[i].pattern.ToString(registry));
  }
}

TEST(StreamIoTest, RoundTripThroughCsv) {
  EventTypeRegistry registry;
  StreamOptions options;
  options.num_events = 500;
  EventStream stream = GenerateStream(options, &registry);
  std::string csv = StreamToCsv(stream, registry);
  EventTypeRegistry registry2;
  auto reparsed = ParseStreamCsv(csv, &registry2);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  ASSERT_EQ(reparsed->size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(registry2.NameOf((*reparsed)[i].type()),
              registry.NameOf(stream[i].type()));
    EXPECT_EQ((*reparsed)[i].begin(), stream[i].begin());
    EXPECT_EQ((*reparsed)[i].payload().aux, stream[i].payload().aux);
    EXPECT_NEAR((*reparsed)[i].payload().value, stream[i].payload().value,
                1e-4);
  }
}

TEST(StreamIoTest, ParsesMinimalCsvWithoutHeader) {
  EventTypeRegistry registry;
  auto stream = ParseStreamCsv("a,100\nb,200\na,300\n", &registry);
  ASSERT_TRUE(stream.ok()) << stream.status();
  ASSERT_EQ(stream->size(), 3u);
  EXPECT_EQ((*stream)[1].begin(), 200);
  EXPECT_EQ((*stream)[2].type(), registry.Find("a"));
}

TEST(StreamIoTest, RejectsMalformedCsv) {
  EventTypeRegistry registry;
  EXPECT_FALSE(ParseStreamCsv("justonetoken\n", &registry).ok());
  EXPECT_FALSE(ParseStreamCsv("a,notanumber\n", &registry).ok());
  // Out-of-order timestamps fail stream validation.
  EXPECT_FALSE(ParseStreamCsv("a,200\nb,100\n", &registry).ok());
}

TEST(StreamIoTest, RejectsMalformedNumbersWithContext) {
  EventTypeRegistry registry;
  // Trailing junk after a valid prefix: the classic unchecked-strtod trap
  // ("12x3" silently parsed as 12 before ParseDouble/ParseInt64).
  auto bad_ts = ParseStreamCsv("a,12x3\n", &registry);
  ASSERT_FALSE(bad_ts.ok());
  EXPECT_NE(bad_ts.status().message().find("line 1"), std::string::npos)
      << bad_ts.status();
  EXPECT_NE(bad_ts.status().message().find("12x3"), std::string::npos)
      << bad_ts.status();
  auto bad_value = ParseStreamCsv("a,100,1.5oops\n", &registry);
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("value"), std::string::npos)
      << bad_value.status();
  EXPECT_FALSE(ParseStreamCsv("a,100,1e999999\n", &registry).ok());
  auto bad_aux = ParseStreamCsv("a,100,1.5,7seven\n", &registry);
  ASSERT_FALSE(bad_aux.ok());
  EXPECT_NE(bad_aux.status().message().find("aux"), std::string::npos)
      << bad_aux.status();
  // Well-formed optional fields still parse.
  auto good = ParseStreamCsv("a,100,1.5,7\n", &registry);
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_DOUBLE_EQ((*good)[0].payload().value, 1.5);
  EXPECT_EQ((*good)[0].payload().aux, 7);
}

TEST(FileIoTest, SaveAndLoadFiles) {
  EventTypeRegistry registry;
  StreamOptions options;
  options.num_events = 200;
  EventStream stream = GenerateStream(options, &registry);
  std::string stream_path = ::testing::TempDir() + "/motto_stream.csv";
  ASSERT_TRUE(SaveStreamCsv(stream_path, stream, registry).ok());
  EventTypeRegistry registry2;
  auto loaded = LoadStreamCsv(stream_path, &registry2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), stream.size());

  WorkloadOptions wo;
  wo.num_queries = 6;
  auto workload = GenerateWorkload(wo, &registry);
  ASSERT_TRUE(workload.ok());
  std::string workload_path = ::testing::TempDir() + "/motto_workload.ccl";
  ASSERT_TRUE(
      SaveWorkloadFile(workload_path, workload->queries, registry).ok());
  auto loaded_queries = LoadWorkloadFile(workload_path, &registry2);
  ASSERT_TRUE(loaded_queries.ok());
  EXPECT_EQ(loaded_queries->size(), 6u);

  EXPECT_FALSE(LoadStreamCsv("/nonexistent/path.csv", &registry2).ok());
  EXPECT_FALSE(LoadWorkloadFile("/nonexistent/path.ccl", &registry2).ok());
}

}  // namespace
}  // namespace motto
