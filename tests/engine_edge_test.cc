// Engine edge cases: degenerate plans, operand-count limits, empty streams,
// DISJ-fed downstream operators, far-window arithmetic.
#include <limits>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/nfa.h"
#include "engine/plan_util.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::MakeStream;

class EngineEdgeTest : public ::testing::Test {
 protected:
  FlatQuery Query(const std::string& name, PatternOp op,
                  std::vector<std::string> operands, Duration window) {
    FlatQuery q;
    q.name = name;
    q.window = window;
    q.pattern.op = op;
    for (const std::string& n : operands) {
      q.pattern.operands.push_back(registry_.RegisterPrimitive(n));
    }
    return q;
  }
  EventTypeRegistry registry_;
};

TEST_F(EngineEdgeTest, EmptyStreamProducesNoMatches) {
  Jqp jqp = BuildDefaultJqp(
      {Query("q", PatternOp::kSeq, {"A", "B"}, Seconds(1))}, &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok());
  auto run = executor->Run({});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->TotalMatches(), 0u);
  EXPECT_EQ(run->raw_events, 0u);
}

TEST_F(EngineEdgeTest, SingleOperandPatterns) {
  Jqp jqp = BuildDefaultJqp(
      {Query("seq1", PatternOp::kSeq, {"A"}, Seconds(1)),
       Query("conj1", PatternOp::kConj, {"A"}, Seconds(1)),
       Query("disj1", PatternOp::kDisj, {"A"}, Seconds(1))},
      &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream s = MakeStream(&registry_, {{"A", 1}, {"B", 2}, {"A", 3}});
  auto run = executor->Run(s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->sink_events.at("seq1").size(), 2u);
  EXPECT_EQ(run->sink_events.at("conj1").size(), 2u);
  EXPECT_EQ(run->sink_events.at("disj1").size(), 2u);
}

TEST_F(EngineEdgeTest, ConjOperandCountLimit) {
  std::vector<std::string> names;
  for (int i = 0; i < kMaxConjOperands; ++i) {
    names.push_back("T" + std::to_string(i));
  }
  Jqp ok = BuildDefaultJqp({Query("ok", PatternOp::kConj, names, Seconds(1))},
                           &registry_);
  EXPECT_TRUE(ok.Validate().ok());
  names.push_back("overflow");
  Jqp bad = BuildDefaultJqp(
      {Query("bad", PatternOp::kConj, names, Seconds(1))}, &registry_);
  EXPECT_FALSE(bad.Validate().ok());
}

TEST_F(EngineEdgeTest, DisjFeedingSeqDownstream) {
  // SEQ(A, <B-or-C>) realized with a DISJ upstream and a multi-type binding.
  EventTypeId a = registry_.RegisterPrimitive("A");
  EventTypeId b = registry_.RegisterPrimitive("B");
  EventTypeId c = registry_.RegisterPrimitive("C");

  Jqp jqp;
  FlatPattern disj{PatternOp::kDisj, {b, c}, {}};
  JqpNode disj_node;
  disj_node.spec = MakeRawPatternSpec(disj, Seconds(1), &registry_);
  int32_t disj_id = jqp.AddNode(disj_node);

  PatternSpec seq;
  seq.op = PatternOp::kSeq;
  seq.window = Seconds(1);
  seq.output_type = registry_.RegisterComposite("{A,(B|C)}");
  seq.operands = {OperandBinding{{a}, kRawChannel, {0}, {}},
                  OperandBinding{{b, c}, 1, {1}, {}}};
  JqpNode seq_node;
  seq_node.spec = seq;
  seq_node.inputs = {disj_id};
  int32_t seq_id = jqp.AddNode(seq_node);
  jqp.sinks.push_back(Jqp::Sink{"q", seq_id});

  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  EventStream s = MakeStream(
      &registry_, {{"A", 10}, {"B", 20}, {"C", 30}, {"X", 40}, {"A", 50}});
  auto run = executor->Run(s);
  ASSERT_TRUE(run.ok());
  // A@10 pairs with B@20 and C@30; A@50 has no later disjunct.
  EXPECT_EQ(run->sink_events.at("q").size(), 2u);
}

TEST_F(EngineEdgeTest, HugeWindowDoesNotOverflow) {
  FlatQuery q = Query("q", PatternOp::kSeq, {"A", "B"},
                      std::numeric_limits<Timestamp>::max() / 16);
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok());
  EventStream s = MakeStream(&registry_, {{"A", 0}, {"B", Seconds(100000)}});
  auto run = executor->Run(s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->TotalMatches(), 1u);
}

TEST_F(EngineEdgeTest, EventsBeforeEpochZeroWindowHorizon) {
  // First events arrive at ts 0; eviction horizon (ts - w) is negative and
  // must not drop live partials.
  FlatQuery q = Query("q", PatternOp::kSeq, {"A", "B"}, Seconds(10));
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok());
  EventStream s = MakeStream(&registry_, {{"A", 0}, {"B", 1}});
  auto run = executor->Run(s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->TotalMatches(), 1u);
}

TEST_F(EngineEdgeTest, SinksOnSharedNodeCollectIndependently) {
  FlatQuery q = Query("q", PatternOp::kSeq, {"A", "B"}, Seconds(1));
  Jqp jqp = BuildDefaultJqp({q}, &registry_);
  jqp.sinks.push_back(Jqp::Sink{"alias", jqp.sinks[0].node});
  auto executor = Executor::Create(jqp);
  ASSERT_TRUE(executor.ok());
  EventStream s = MakeStream(&registry_, {{"A", 1}, {"B", 2}});
  auto run = executor->Run(s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->sink_events.at("q").size(), 1u);
  EXPECT_EQ(run->sink_events.at("alias").size(), 1u);
}

}  // namespace
}  // namespace motto
