#include "planner/solver.h"

#include <functional>
#include <limits>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/executor.h"
#include "motto/optimizer.h"
#include "obs/opt_trace.h"
#include "verify/fuzzer.h"
#include "verify/oracle.h"

namespace motto {
namespace {

/// Builds a synthetic sharing graph: node patterns are irrelevant for the
/// solver, only costs/edges/terminal flags matter.
SharingGraph MakeGraph(std::vector<double> scratch,
                       std::vector<bool> terminal,
                       std::vector<std::tuple<int, int, double>> edges) {
  SharingGraph graph;
  for (size_t i = 0; i < scratch.size(); ++i) {
    SharingNode node;
    node.scratch_cost = scratch[i];
    node.terminal = terminal[i];
    node.key = "n" + std::to_string(i);
    graph.nodes.push_back(node);
    graph.index.emplace(graph.nodes.back().key, static_cast<int32_t>(i));
  }
  for (const auto& [from, to, cost] : edges) {
    graph.edges.push_back(SharingEdge{from, to, RewriteRecipe{}, cost});
  }
  return graph;
}

/// Exhaustive optimum by enumerating all per-node choices.
double BruteForceOptimum(const SharingGraph& graph) {
  size_t n = graph.nodes.size();
  std::vector<std::vector<int32_t>> options(n);
  for (size_t v = 0; v < n; ++v) {
    options[v] = {kNodeNotSelected, kNodeFromGround};
    for (size_t e = 0; e < graph.edges.size(); ++e) {
      if (graph.edges[e].target == static_cast<int32_t>(v)) {
        options[v].push_back(static_cast<int32_t>(e));
      }
    }
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<int32_t> choice(n, kNodeNotSelected);
  std::function<void(size_t)> recurse = [&](size_t v) {
    if (v == n) {
      PlanDecision decision;
      decision.choice = choice;
      auto cost = ValidateDecision(graph, decision);
      if (cost.ok()) best = std::min(best, *cost);
      return;
    }
    for (int32_t opt : options[v]) {
      choice[v] = opt;
      recurse(v + 1);
    }
  };
  recurse(0);
  return best;
}

TEST(SolverTest, NaivePlanSelectsTerminalsFromGround) {
  SharingGraph graph = MakeGraph({10, 20, 5}, {true, true, false}, {});
  PlanDecision naive = NaivePlan(graph);
  EXPECT_DOUBLE_EQ(naive.cost, 30.0);
  EXPECT_EQ(naive.choice[0], kNodeFromGround);
  EXPECT_EQ(naive.choice[2], kNodeNotSelected);
  EXPECT_TRUE(ValidateDecision(graph, naive).ok());
}

TEST(SolverTest, BnbPicksDirectSharingEdge) {
  // Terminal 1 can be computed from terminal 0 for 2 instead of 20.
  SharingGraph graph =
      MakeGraph({10, 20}, {true, true}, {{0, 1, 2.0}});
  PlanDecision decision = SolveBranchAndBound(graph, 5.0);
  EXPECT_TRUE(decision.exact);
  EXPECT_DOUBLE_EQ(decision.cost, 12.0);
  EXPECT_EQ(decision.choice[1], 0);
}

TEST(SolverTest, BnbActivatesSteinerNodeWhenWorthIt) {
  // Steiner node 2 costs 5 and feeds both terminals for 1 each:
  // 5 + 1 + 1 = 7 < 10 + 10.
  SharingGraph graph = MakeGraph({10, 10, 5}, {true, true, false},
                                 {{2, 0, 1.0}, {2, 1, 1.0}});
  PlanDecision decision = SolveBranchAndBound(graph, 5.0);
  EXPECT_TRUE(decision.exact);
  EXPECT_DOUBLE_EQ(decision.cost, 7.0);
  EXPECT_EQ(decision.choice[2], kNodeFromGround);
}

TEST(SolverTest, BnbSkipsSteinerNodeWhenNotWorthIt) {
  // Activating the Steiner node costs more than it saves.
  SharingGraph graph = MakeGraph({10, 10, 50}, {true, true, false},
                                 {{2, 0, 1.0}, {2, 1, 1.0}});
  PlanDecision decision = SolveBranchAndBound(graph, 5.0);
  EXPECT_TRUE(decision.exact);
  EXPECT_DOUBLE_EQ(decision.cost, 20.0);
  EXPECT_EQ(decision.choice[2], kNodeNotSelected);
}

TEST(SolverTest, BnbHandlesChainedSteinerNodes) {
  // Chain: steiner 3 -> steiner 2 -> terminals.
  SharingGraph graph =
      MakeGraph({100, 100, 60, 10}, {true, true, false, false},
                {{2, 0, 1.0}, {2, 1, 1.0}, {3, 2, 5.0}});
  PlanDecision decision = SolveBranchAndBound(graph, 5.0);
  EXPECT_TRUE(decision.exact);
  // 10 (n3) + 5 (n2 from n3) + 1 + 1 = 17.
  EXPECT_DOUBLE_EQ(decision.cost, 17.0);
  EXPECT_TRUE(ValidateDecision(graph, decision).ok());
}

TEST(SolverTest, BnbMatchesBruteForceOnRandomGraphs) {
  Rng rng(31337);
  for (int round = 0; round < 30; ++round) {
    int n = static_cast<int>(rng.Uniform(2, 7));
    std::vector<double> scratch;
    std::vector<bool> terminal;
    for (int v = 0; v < n; ++v) {
      scratch.push_back(static_cast<double>(rng.Uniform(1, 100)));
      terminal.push_back(rng.Bernoulli(0.6));
    }
    terminal[0] = true;  // At least one terminal.
    std::vector<std::tuple<int, int, double>> edges;
    // DAG edges u < v only, mirroring the rewriter's acyclic structure.
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(0.5)) {
          edges.emplace_back(u, v, static_cast<double>(rng.Uniform(1, 60)));
        }
      }
    }
    SharingGraph graph = MakeGraph(scratch, terminal, edges);
    PlanDecision decision = SolveBranchAndBound(graph, 5.0);
    ASSERT_TRUE(decision.exact) << "round " << round;
    double expected = BruteForceOptimum(graph);
    EXPECT_NEAR(decision.cost, expected, 1e-9) << "round " << round;
    auto check = ValidateDecision(graph, decision);
    ASSERT_TRUE(check.ok()) << check.status();
    EXPECT_NEAR(*check, decision.cost, 1e-9);
  }
}

TEST(SolverTest, SimulatedAnnealingFindsFeasibleGoodPlans) {
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    int n = static_cast<int>(rng.Uniform(3, 10));
    std::vector<double> scratch;
    std::vector<bool> terminal;
    for (int v = 0; v < n; ++v) {
      scratch.push_back(static_cast<double>(rng.Uniform(1, 100)));
      terminal.push_back(rng.Bernoulli(0.7));
    }
    terminal[0] = true;
    std::vector<std::tuple<int, int, double>> edges;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(0.6)) {
          edges.emplace_back(u, v, static_cast<double>(rng.Uniform(1, 40)));
        }
      }
    }
    SharingGraph graph = MakeGraph(scratch, terminal, edges);
    PlanDecision sa = SolveSimulatedAnnealing(graph, 7, 5000);
    auto check = ValidateDecision(graph, sa);
    ASSERT_TRUE(check.ok()) << check.status();
    EXPECT_NEAR(*check, sa.cost, 1e-9);
    // Never worse than no sharing; never better than the optimum.
    EXPECT_LE(sa.cost, DefaultPlanCost(graph) + 1e-9);
    PlanDecision exact = SolveBranchAndBound(graph, 5.0);
    ASSERT_TRUE(exact.exact);
    EXPECT_GE(sa.cost, exact.cost - 1e-9);
  }
}

TEST(SolverTest, SelectPlanUsesExactWithinBudget) {
  SharingGraph graph =
      MakeGraph({10, 20}, {true, true}, {{0, 1, 2.0}});
  PlannerOptions options;
  PlanDecision decision = SelectPlan(graph, options);
  EXPECT_TRUE(decision.exact);
  EXPECT_DOUBLE_EQ(decision.cost, 12.0);
}

TEST(SolverTest, SelectPlanForceApproximate) {
  SharingGraph graph =
      MakeGraph({10, 20}, {true, true}, {{0, 1, 2.0}});
  PlannerOptions options;
  options.force_approximate = true;
  options.sa_iterations = 4000;
  PlanDecision decision = SelectPlan(graph, options);
  EXPECT_FALSE(decision.exact);
  EXPECT_LE(decision.cost, 30.0);
  EXPECT_TRUE(ValidateDecision(graph, decision).ok());
}

/// Per-user-query fingerprint multisets from one JQP run.
std::map<std::string, verify::MatchSet> PlanMatches(
    const Jqp& jqp, const std::vector<Query>& queries,
    const EventStream& stream) {
  std::map<std::string, verify::MatchSet> out;
  auto executor = Executor::Create(jqp);
  EXPECT_TRUE(executor.ok()) << executor.status();
  auto run = executor->Run(stream);
  EXPECT_TRUE(run.ok()) << run.status();
  for (const Query& query : queries) {
    verify::MatchSet& set = out[query.name];
    auto it = run->sink_events.find(query.name);
    if (it == run->sink_events.end()) continue;
    for (const Event& e : it->second) set.insert(e.Fingerprint());
  }
  return out;
}

TEST(SolverTest, SaNeverBeatsExactOnFuzzedWorkloadsAndPlansAgree) {
  // End-to-end cross-check on real (fuzzed) workloads small enough for the
  // exact solver: SA's plan cost must be >= B&B's optimum, both decisions
  // must validate against their sharing graph, and — cost aside — both
  // JQPs must produce identical per-query match multisets.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EventTypeRegistry registry;
    verify::FuzzOptions fuzz;
    fuzz.num_queries = 4;
    fuzz.num_events = 30;
    verify::QueryFuzzer fuzzer(&registry, fuzz, seed);
    verify::FuzzCase fuzz_case = fuzzer.Next();
    StreamStats stats = ComputeStats(fuzz_case.stream);

    OptimizerOptions exact_options;
    exact_options.mode = OptimizerMode::kMotto;
    exact_options.planner.exact_budget_seconds = 5.0;
    Optimizer exact_optimizer(&registry, stats, exact_options);
    auto exact = exact_optimizer.Optimize(fuzz_case.queries);
    ASSERT_TRUE(exact.ok()) << exact.status();

    OptimizerOptions sa_options = exact_options;
    sa_options.planner.force_approximate = true;
    sa_options.planner.sa_iterations = 2000;
    sa_options.planner.seed = seed;
    Optimizer sa_optimizer(&registry, stats, sa_options);
    auto sa = sa_optimizer.Optimize(fuzz_case.queries);
    ASSERT_TRUE(sa.ok()) << sa.status();

    auto exact_check = ValidateDecision(exact->sharing_graph,
                                        exact->decision);
    ASSERT_TRUE(exact_check.ok()) << exact_check.status();
    EXPECT_NEAR(*exact_check, exact->decision.cost, 1e-9);
    auto sa_check = ValidateDecision(sa->sharing_graph, sa->decision);
    ASSERT_TRUE(sa_check.ok()) << sa_check.status();
    EXPECT_NEAR(*sa_check, sa->decision.cost, 1e-9);

    if (exact->exact) {
      EXPECT_GE(sa->decision.cost, exact->decision.cost - 1e-9);
      EXPECT_LE(exact->decision.cost,
                DefaultPlanCost(exact->sharing_graph) + 1e-9);
    }

    EXPECT_EQ(PlanMatches(exact->jqp, fuzz_case.queries, fuzz_case.stream),
              PlanMatches(sa->jqp, fuzz_case.queries, fuzz_case.stream))
        << "exact and SA plans disagree on results";
  }
}

// --- Solver telemetry (DESIGN.md §11) ---

SharingGraph TelemetryGraph() {
  // Rich enough for real search: two Steiner nodes feeding four terminals.
  return MakeGraph({40, 50, 60, 35, 12, 18},
                   {true, true, true, true, false, false},
                   {{4, 0, 3.0}, {4, 1, 4.0}, {5, 2, 6.0}, {5, 3, 2.0},
                    {0, 1, 20.0}, {4, 5, 9.0}});
}

TEST(SolverTest, BnbTelemetryCountsAndIncumbents) {
  SharingGraph graph = TelemetryGraph();
  obs::OptimizerProbe probe;
  PlanDecision decision = SolveBranchAndBound(graph, 5.0, &probe);
  ASSERT_TRUE(probe.bnb.recorded);
  EXPECT_GT(probe.bnb.expansions, 0u);
  EXPECT_GT(probe.bnb.options_considered, 0u);
  EXPECT_FALSE(probe.bnb.deadline_hit);
  // The naive seed is always incumbent #0, at zero expansions.
  ASSERT_FALSE(probe.bnb.incumbents.empty());
  EXPECT_EQ(probe.bnb.incumbents.front().expansions, 0u);
  EXPECT_DOUBLE_EQ(probe.bnb.incumbents.front().cost,
                   NaivePlan(graph).cost);
  // Incumbent costs are strictly decreasing and end at the optimum.
  for (size_t i = 1; i < probe.bnb.incumbents.size(); ++i) {
    EXPECT_LT(probe.bnb.incumbents[i].cost,
              probe.bnb.incumbents[i - 1].cost);
    EXPECT_GE(probe.bnb.incumbents[i].expansions,
              probe.bnb.incumbents[i - 1].expansions);
  }
  EXPECT_DOUBLE_EQ(probe.bnb.incumbents.back().cost, decision.cost);
  // An improvement beyond the seed stamps time-to-first-incumbent.
  if (probe.bnb.incumbents.size() > 1) {
    EXPECT_GE(probe.bnb.first_incumbent_seconds, 0.0);
  }
}

TEST(SolverTest, BnbTelemetryDeterministicCounts) {
  SharingGraph graph = TelemetryGraph();
  obs::OptimizerProbe a;
  obs::OptimizerProbe b;
  PlanDecision da = SolveBranchAndBound(graph, 5.0, &a);
  PlanDecision db = SolveBranchAndBound(graph, 5.0, &b);
  EXPECT_EQ(da.choice, db.choice);
  // Search counters are wall-clock-free and must agree exactly.
  EXPECT_EQ(a.bnb.expansions, b.bnb.expansions);
  EXPECT_EQ(a.bnb.pruned_by_bound, b.bnb.pruned_by_bound);
  EXPECT_EQ(a.bnb.options_considered, b.bnb.options_considered);
  EXPECT_EQ(a.bnb.incumbents.size(), b.bnb.incumbents.size());
}

TEST(SolverTest, SaTelemetryIsByteIdenticalForSameSeed) {
  SharingGraph graph = TelemetryGraph();
  obs::OptimizerProbe a;
  obs::OptimizerProbe b;
  PlanDecision da = SolveSimulatedAnnealing(graph, 1234, 5000, &a);
  PlanDecision db = SolveSimulatedAnnealing(graph, 1234, 5000, &b);
  EXPECT_EQ(da.choice, db.choice);
  ASSERT_TRUE(a.sa.recorded);
  EXPECT_EQ(a.sa.epochs.size(), b.sa.epochs.size());
  EXPECT_EQ(a.sa.epochs, b.sa.epochs);
  // The acceptance trace serializes byte-identically (no wall clock in it).
  EXPECT_EQ(a.sa.ToJson(), b.sa.ToJson());
  // Sanity on the schedule itself.
  EXPECT_EQ(a.sa.seed, 1234u);
  EXPECT_EQ(a.sa.iterations, 5000);
  uint64_t proposed = 0;
  for (const obs::SaEpoch& epoch : a.sa.epochs) {
    proposed += epoch.proposed;
    EXPECT_LE(epoch.accepted, epoch.proposed);
    EXPECT_LE(epoch.best_cost, epoch.current_cost + 1e-9);
  }
  EXPECT_EQ(proposed, a.sa.proposed);
  EXPECT_EQ(static_cast<int>(a.sa.proposed), a.sa.iterations);
  // Temperatures follow the geometric cooling schedule downward.
  for (size_t i = 1; i < a.sa.epochs.size(); ++i) {
    EXPECT_LT(a.sa.epochs[i].temperature, a.sa.epochs[i - 1].temperature);
  }
}

TEST(SolverTest, SaDifferentSeedsDiverge) {
  SharingGraph graph = TelemetryGraph();
  obs::OptimizerProbe a;
  obs::OptimizerProbe b;
  SolveSimulatedAnnealing(graph, 1, 5000, &a);
  SolveSimulatedAnnealing(graph, 2, 5000, &b);
  // Same schedule shape, different acceptance history.
  EXPECT_EQ(a.sa.epochs.size(), b.sa.epochs.size());
  EXPECT_NE(a.sa.ToJson(), b.sa.ToJson());
}

TEST(SolverTest, ProbeDoesNotChangeSolverDecisions) {
  SharingGraph graph = TelemetryGraph();
  obs::OptimizerProbe probe;
  PlanDecision plain_bnb = SolveBranchAndBound(graph, 5.0);
  PlanDecision probed_bnb = SolveBranchAndBound(graph, 5.0, &probe);
  EXPECT_EQ(plain_bnb.choice, probed_bnb.choice);
  EXPECT_DOUBLE_EQ(plain_bnb.cost, probed_bnb.cost);
  PlanDecision plain_sa = SolveSimulatedAnnealing(graph, 77, 4000);
  PlanDecision probed_sa = SolveSimulatedAnnealing(graph, 77, 4000, &probe);
  EXPECT_EQ(plain_sa.choice, probed_sa.choice);
  EXPECT_DOUBLE_EQ(plain_sa.cost, probed_sa.cost);
}

TEST(SolverTest, SelectPlanRecordsSelectedSolver) {
  SharingGraph graph = TelemetryGraph();
  PlannerOptions options;
  obs::OptimizerProbe probe;
  options.probe = &probe;
  PlanDecision decision = SelectPlan(graph, options);
  EXPECT_TRUE(decision.exact);
  EXPECT_EQ(probe.selected_solver, "bnb");
  EXPECT_TRUE(probe.bnb.recorded);

  obs::OptimizerProbe sa_probe;
  PlannerOptions sa_options;
  sa_options.force_approximate = true;
  sa_options.sa_iterations = 2000;
  sa_options.probe = &sa_probe;
  SelectPlan(graph, sa_options);
  EXPECT_EQ(sa_probe.selected_solver, "sa");
  EXPECT_TRUE(sa_probe.sa.recorded);
  EXPECT_FALSE(sa_probe.bnb.recorded);

  obs::OptimizerProbe naive_probe;
  PlannerOptions naive_options;
  naive_options.probe = &naive_probe;
  SharingGraph edgeless = MakeGraph({10, 20}, {true, true}, {});
  SelectPlan(edgeless, naive_options);
  EXPECT_EQ(naive_probe.selected_solver, "naive");
}

TEST(SolverTest, ValidateDecisionCatchesInconsistencies) {
  SharingGraph graph =
      MakeGraph({10, 20, 5}, {true, true, false}, {{2, 1, 2.0}});
  PlanDecision decision;
  decision.choice = {kNodeFromGround, 0, kNodeNotSelected};
  // Edge 0's source (node 2) is not selected.
  EXPECT_FALSE(ValidateDecision(graph, decision).ok());
  decision.choice = {kNodeNotSelected, kNodeFromGround, kNodeNotSelected};
  // Terminal 0 unselected.
  EXPECT_FALSE(ValidateDecision(graph, decision).ok());
  decision.choice = {kNodeFromGround, kNodeFromGround};
  EXPECT_FALSE(ValidateDecision(graph, decision).ok());  // Size mismatch.
}

}  // namespace
}  // namespace motto
