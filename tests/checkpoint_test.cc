// Durable serve checkpoints (DESIGN.md §15): NodeState / Event / full
// CheckpointState serialization round trips, a mid-window serialized
// matcher-state handoff that must reproduce the uninterrupted run, torn- and
// truncated-file recovery behaviour, and checkpoint pruning.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "engine/runtime.h"
#include "event/stream.h"
#include "motto/optimizer.h"
#include "serve/checkpoint.h"
#include "test_util.h"
#include "workload/io.h"

namespace motto {
namespace {

namespace fs = std::filesystem;
using serve::ByteReader;
using serve::CheckpointState;
using serve::LoadedCheckpoint;
using serve::LoadLatestCheckpoint;
using serve::ParseCheckpoint;
using serve::PutEvent;
using serve::PutNodeState;
using serve::ReadEvent;
using serve::ReadNodeState;
using serve::SaveCheckpoint;
using serve::SerializeCheckpoint;
using testing::Fingerprints;
using testing::MakeStream;
using testing::MatchSet;

/// Workload exercising every serialized state family: eager SEQ partials,
/// CONJ, and a negation root (pending deferred matches + negated history).
constexpr char kStatefulWorkload[] =
    "q0: SELECT * FROM s MATCHING [30 us : SEQ(A, B, C)]\n"
    "q1: SELECT * FROM s MATCHING [25 us : CONJ(A & D)]\n"
    "q2: SELECT * FROM s MATCHING [20 us : SEQ(A, B, NEG(E))]\n";

EventStream StatefulStream(EventTypeRegistry* registry) {
  std::vector<std::pair<std::string, Timestamp>> events;
  const char* cycle[] = {"A", "B", "D", "A", "C", "E", "B", "A", "D", "C"};
  Timestamp ts = 0;
  for (int round = 0; round < 12; ++round) {
    for (const char* type : cycle) {
      events.emplace_back(type, ts);
      ts += (ts % 3) + 1;  // Irregular gaps, some short enough to overlap.
    }
  }
  return MakeStream(registry, std::move(events));
}

Result<Jqp> OptimizedPlan(const std::vector<Query>& queries,
                          EventTypeRegistry* registry,
                          const EventStream& stream) {
  OptimizerOptions options;
  options.mode = OptimizerMode::kMotto;
  Optimizer optimizer(registry, ComputeStats(stream), options);
  MOTTO_ASSIGN_OR_RETURN(OptimizeOutcome outcome, optimizer.Optimize(queries));
  return std::move(outcome.jqp);
}

void ExpectPartialEq(const NodePartialState& a, const NodePartialState& b,
                     const char* what) {
  EXPECT_EQ(a.state, b.state) << what;
  EXPECT_EQ(a.min_begin, b.min_begin) << what;
  EXPECT_EQ(a.max_end, b.max_end) << what;
  EXPECT_EQ(a.last_end, b.last_end) << what;
  ASSERT_EQ(a.constituents.size(), b.constituents.size()) << what;
  for (size_t i = 0; i < a.constituents.size(); ++i) {
    EXPECT_TRUE(a.constituents[i] == b.constituents[i]) << what;
  }
  EXPECT_EQ(a.op_begin, b.op_begin) << what;
  EXPECT_EQ(a.op_end, b.op_end) << what;
  EXPECT_EQ(a.op_arrival, b.op_arrival) << what;
}

void ExpectNodeStateEq(const NodeState& a, const NodeState& b) {
  EXPECT_EQ(a.stateless, b.stateless);
  EXPECT_EQ(a.eval_mode, b.eval_mode);
  EXPECT_EQ(a.watermark, b.watermark);
  EXPECT_EQ(a.sweep_tick, b.sweep_tick);
  EXPECT_EQ(a.arrival_seq, b.arrival_seq);
  ASSERT_EQ(a.partials.size(), b.partials.size());
  for (size_t i = 0; i < a.partials.size(); ++i) {
    ExpectPartialEq(a.partials[i], b.partials[i], "partial");
  }
  ASSERT_EQ(a.lazy_partials.size(), b.lazy_partials.size());
  for (size_t i = 0; i < a.lazy_partials.size(); ++i) {
    ExpectPartialEq(a.lazy_partials[i], b.lazy_partials[i], "lazy");
  }
  ASSERT_EQ(a.pending.size(), b.pending.size());
  for (size_t i = 0; i < a.pending.size(); ++i) {
    ExpectPartialEq(a.pending[i], b.pending[i], "pending");
  }
  EXPECT_EQ(a.negated_history, b.negated_history);
  ASSERT_EQ(a.buffered.size(), b.buffered.size());
  for (size_t i = 0; i < a.buffered.size(); ++i) {
    EXPECT_EQ(a.buffered[i].operand, b.buffered[i].operand);
    EXPECT_EQ(a.buffered[i].begin, b.buffered[i].begin);
    EXPECT_EQ(a.buffered[i].end, b.buffered[i].end);
    EXPECT_EQ(a.buffered[i].arrival, b.buffered[i].arrival);
    EXPECT_EQ(a.buffered[i].event.Fingerprint(),
              b.buffered[i].event.Fingerprint());
  }
}

TEST(CheckpointCodecTest, EventRoundTrips) {
  std::string buf;
  Payload payload;
  payload.value = 3.25;
  payload.aux = -9;
  PutEvent(&buf, Event::Primitive(4, 117, payload));
  std::vector<Constituent> parts = {{2, 100, 0}, {3, 110, 1}};
  PutEvent(&buf, Event::Composite(7, parts, 110, 100));

  ByteReader reader(buf);
  Event primitive = ReadEvent(&reader);
  EXPECT_EQ(primitive.type(), 4);
  EXPECT_EQ(primitive.begin(), 117);
  EXPECT_EQ(primitive.end(), 117);
  EXPECT_EQ(primitive.payload().value, 3.25);
  EXPECT_EQ(primitive.payload().aux, -9);
  Event composite = ReadEvent(&reader);
  EXPECT_EQ(composite.type(), 7);
  EXPECT_EQ(composite.begin(), 100);
  EXPECT_EQ(composite.end(), 110);
  ASSERT_EQ(composite.constituents().size(), 2u);
  EXPECT_TRUE(composite.constituents()[0] == parts[0]);
  EXPECT_TRUE(composite.constituents()[1] == parts[1]);
  EXPECT_FALSE(reader.failed());
  EXPECT_EQ(reader.remaining(), 0u);
}

void CheckNodeStateRoundTrip(EvalOrderMode mode) {
  EventTypeRegistry registry;
  auto queries = ParseWorkloadText(kStatefulWorkload, &registry);
  ASSERT_TRUE(queries.ok()) << queries.status();
  ASSERT_EQ(queries->size(), 3u);
  EventStream stream = StatefulStream(&registry);
  auto jqp = OptimizedPlan(*queries, &registry, stream);
  ASSERT_TRUE(jqp.ok()) << jqp.status();

  auto executor = Executor::Create(*jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  ExecutorOptions options;
  options.eval_order = mode;
  executor->BeginSession(options);
  // Stop mid-window so partials, buffers and pending matches are in flight.
  executor->FeedSession(stream.data(), stream.size() / 2);

  size_t stateful = 0;
  for (int32_t node = 0; node < static_cast<int32_t>(jqp->nodes.size());
       ++node) {
    NodeState original;
    executor->runtime(node)->ExportState(&original);
    if (!original.stateless) ++stateful;
    std::string buf;
    PutNodeState(&buf, original);
    ByteReader reader(buf);
    NodeState decoded = ReadNodeState(&reader);
    EXPECT_FALSE(reader.failed()) << "node " << node;
    EXPECT_EQ(reader.remaining(), 0u) << "node " << node;
    ExpectNodeStateEq(original, decoded);
  }
  EXPECT_GT(stateful, 0u) << "mid-window export carried no live state; the "
                             "round-trip test is vacuous";
}

TEST(CheckpointCodecTest, NodeStateRoundTripsArrival) {
  CheckNodeStateRoundTrip(EvalOrderMode::kArrival);
}

TEST(CheckpointCodecTest, NodeStateRoundTripsSelectivity) {
  CheckNodeStateRoundTrip(EvalOrderMode::kSelectivity);
}

/// The recovery invariant at executor level, through the full serialized
/// checkpoint: a mid-window handoff (export -> serialize -> parse -> import
/// into a fresh executor) must make segment-1 + segment-2 output equal the
/// uninterrupted run, in both evaluation-order modes.
void CheckSerializedHandoff(EvalOrderMode mode) {
  EventTypeRegistry registry;
  auto queries = ParseWorkloadText(kStatefulWorkload, &registry);
  ASSERT_TRUE(queries.ok()) << queries.status();
  EventStream stream = StatefulStream(&registry);
  auto jqp = OptimizedPlan(*queries, &registry, stream);
  ASSERT_TRUE(jqp.ok()) << jqp.status();
  ExecutorOptions options;
  options.eval_order = mode;

  auto batch = Executor::Create(*jqp);
  ASSERT_TRUE(batch.ok()) << batch.status();
  auto batch_run = batch->Run(stream, options);
  ASSERT_TRUE(batch_run.ok()) << batch_run.status();

  auto first = Executor::Create(*jqp);
  ASSERT_TRUE(first.ok()) << first.status();
  first->BeginSession(options);
  const size_t prefix = stream.size() / 2;
  first->FeedSession(stream.data(), prefix);
  // What serve releases at a checkpoint: output so far plus node snapshots.
  auto seg1 = first->DrainSessionOutput();
  CheckpointState ck;
  for (int32_t node = 0; node < static_cast<int32_t>(jqp->nodes.size());
       ++node) {
    NodeState state;
    first->runtime(node)->ExportState(&state);
    ck.nodes.emplace_back("node" + std::to_string(node), std::move(state));
  }
  // The first executor is abandoned here — the SIGKILL analogue.

  auto parsed = ParseCheckpoint(SerializeCheckpoint(ck));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto second = Executor::Create(*jqp);
  ASSERT_TRUE(second.ok()) << second.status();
  second->BeginSession(options);
  for (int32_t node = 0; node < static_cast<int32_t>(jqp->nodes.size());
       ++node) {
    ASSERT_TRUE(second->runtime(node)->ImportState(
        parsed->nodes[static_cast<size_t>(node)].second))
        << "import failed for node " << node;
  }
  second->FeedSession(stream.data() + prefix, stream.size() - prefix);
  RunResult seg2 = second->FinishSession();

  for (const auto& [sink, events] : batch_run->sink_events) {
    MatchSet expected = Fingerprints(events);
    MatchSet merged = Fingerprints(seg1[sink]);
    MatchSet tail = Fingerprints(seg2.sink_events[sink]);
    merged.insert(tail.begin(), tail.end());
    EXPECT_EQ(expected, merged) << "sink " << sink;
  }
}

TEST(CheckpointHandoffTest, SerializedMidWindowHandoffMatchesBatchArrival) {
  CheckSerializedHandoff(EvalOrderMode::kArrival);
}

TEST(CheckpointHandoffTest,
     SerializedMidWindowHandoffMatchesBatchSelectivity) {
  CheckSerializedHandoff(EvalOrderMode::kSelectivity);
}

// ---------------------------------------------------------------------------
// Durable storage: atomicity, torn-file skipping, pruning.

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("motto-checkpoint-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CheckpointState State(uint64_t seq) {
    CheckpointState state;
    state.seq = seq;
    state.ingested = seq * 100;
    state.watermark = static_cast<Timestamp>(seq * 10);
    state.released_lines = seq;
    state.registry.push_back({"A", true});
    state.sink_released.emplace_back("q0", seq);
    state.outbox.emplace_back("q0", Event::Primitive(0, 5));
    return state;
  }

  std::string PathOf(uint64_t seq) {
    return (fs::path(dir_) / serve::CheckpointFileName(seq)).string();
  }

  std::string dir_;
};

TEST_F(CheckpointStoreTest, FullStateRoundTripsThroughDisk) {
  CheckpointState state = State(3);
  state.eval_mode = EvalOrderMode::kSelectivity;
  state.connection = 2;
  ASSERT_TRUE(SaveCheckpoint(dir_, state).ok());
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->warnings.empty());
  EXPECT_EQ(loaded->state.seq, 3u);
  EXPECT_EQ(loaded->state.ingested, 300u);
  EXPECT_EQ(loaded->state.watermark, 30);
  EXPECT_EQ(loaded->state.eval_mode, EvalOrderMode::kSelectivity);
  EXPECT_EQ(loaded->state.connection, 2u);
  EXPECT_EQ(loaded->state.released_lines, 3u);
  ASSERT_EQ(loaded->state.registry.size(), 1u);
  EXPECT_EQ(loaded->state.registry[0].name, "A");
  ASSERT_EQ(loaded->state.outbox.size(), 1u);
  EXPECT_EQ(loaded->state.outbox[0].first, "q0");
}

/// Regression: a torn (truncated) newest checkpoint must be skipped with a
/// warning, falling back to the previous complete snapshot — never parsed
/// into garbage, never fatal.
TEST_F(CheckpointStoreTest, TruncatedLatestFallsBackWithWarning) {
  ASSERT_TRUE(SaveCheckpoint(dir_, State(0)).ok());
  ASSERT_TRUE(SaveCheckpoint(dir_, State(1)).ok());
  // Tear the newest file in half — a kill mid-write that beat the rename
  // protocol (or a filesystem that tore the rename itself).
  std::string bytes;
  {
    std::ifstream in(PathOf(1), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);
  {
    std::ofstream out(PathOf(1), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->state.seq, 0u);
  ASSERT_EQ(loaded->warnings.size(), 1u);
  EXPECT_NE(loaded->warnings[0].find("skipping torn checkpoint"),
            std::string::npos);
}

TEST_F(CheckpointStoreTest, AllTornReportsNotFoundWithDetails) {
  ASSERT_TRUE(SaveCheckpoint(dir_, State(0)).ok());
  {
    std::ofstream out(PathOf(0), std::ios::binary | std::ios::trunc);
    out << "MCKP";  // Right magic, hopelessly short.
  }
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("skipping torn checkpoint"),
            std::string::npos);
}

TEST_F(CheckpointStoreTest, CorruptPayloadRejectedByCrc) {
  CheckpointState state = State(5);
  std::string bytes = SerializeCheckpoint(state);
  bytes[bytes.size() / 2] ^= 0x40;  // Flip one payload bit.
  auto parsed = ParseCheckpoint(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("CRC"), std::string::npos);
}

TEST_F(CheckpointStoreTest, PrunesBeyondKeep) {
  for (uint64_t seq = 0; seq < 5; ++seq) {
    ASSERT_TRUE(SaveCheckpoint(dir_, State(seq), /*keep=*/2).ok());
  }
  EXPECT_FALSE(fs::exists(PathOf(0)));
  EXPECT_FALSE(fs::exists(PathOf(1)));
  EXPECT_FALSE(fs::exists(PathOf(2)));
  EXPECT_TRUE(fs::exists(PathOf(3)));
  EXPECT_TRUE(fs::exists(PathOf(4)));
  auto loaded = LoadLatestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->state.seq, 4u);
}

}  // namespace
}  // namespace motto
