#include "motto/optimizer.h"

#include <gtest/gtest.h>

#include "ccl/parser.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "obs/opt_trace.h"
#include "test_util.h"

namespace motto {
namespace {

using testing::Fingerprints;
using testing::MatchSet;

/// Uniform random stream over `type_names`, strictly increasing timestamps.
EventStream RandomStream(EventTypeRegistry* registry,
                         const std::vector<std::string>& type_names,
                         int num_events, Timestamp max_gap, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    ts += rng.Uniform(1, max_gap);
    const std::string& name = type_names[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(type_names.size()) - 1))];
    stream.push_back(Event::Primitive(registry->RegisterPrimitive(name), ts));
  }
  return stream;
}

/// Runs queries under `mode` and under NA and compares per-query matches.
/// Returns the shared-mode outcome for further checks.
OptimizeOutcome CheckEquivalence(std::vector<Query> queries,
                                 EventTypeRegistry* registry,
                                 const EventStream& stream,
                                 OptimizerMode mode) {
  StreamStats stats = ComputeStats(stream);

  OptimizerOptions na_options;
  na_options.mode = OptimizerMode::kNa;
  Optimizer na_optimizer(registry, stats, na_options);
  auto na = na_optimizer.Optimize(queries);
  EXPECT_TRUE(na.ok()) << na.status();

  OptimizerOptions options;
  options.mode = mode;
  Optimizer optimizer(registry, stats, options);
  auto shared = optimizer.Optimize(queries);
  EXPECT_TRUE(shared.ok()) << shared.status();

  auto na_exec = Executor::Create(na->jqp);
  auto shared_exec = Executor::Create(shared->jqp);
  EXPECT_TRUE(na_exec.ok()) << na_exec.status();
  EXPECT_TRUE(shared_exec.ok())
      << shared_exec.status() << "\n"
      << shared->sharing_graph.ToString(*registry);
  auto na_run = na_exec->Run(stream);
  auto shared_run = shared_exec->Run(stream);
  EXPECT_TRUE(na_run.ok()) << na_run.status();
  EXPECT_TRUE(shared_run.ok()) << shared_run.status();

  for (const Query& q : queries) {
    MatchSet expected = Fingerprints(na_run->sink_events.at(q.name));
    MatchSet actual = Fingerprints(shared_run->sink_events.at(q.name));
    EXPECT_EQ(expected, actual)
        << "query " << q.name << " diverges under "
        << OptimizerModeName(mode) << "\nNA matches: " << expected.size()
        << " shared matches: " << actual.size() << "\nplan:\n"
        << shared->jqp.ToString(*registry);
  }
  return *std::move(shared);
}

Query MakeQuery(EventTypeRegistry* registry, const std::string& name,
                const std::string& pattern, Duration window) {
  auto expr = ccl::ParsePattern(pattern, registry);
  EXPECT_TRUE(expr.ok()) << expr.status();
  return Query{name, *expr, window};
}

TEST(OptimizerTest, PaperSection5WorkloadAllModes) {
  // The running example of §V: q1..q5.
  for (OptimizerMode mode : {OptimizerMode::kMst, OptimizerMode::kLcse,
                             OptimizerMode::kMotto}) {
    EventTypeRegistry registry;
    std::vector<Query> queries = {
        MakeQuery(&registry, "q1", "SEQ(E1, E2, E3)", Millis(50)),
        MakeQuery(&registry, "q2", "SEQ(E1, E3)", Millis(50)),
        MakeQuery(&registry, "q3", "SEQ(E1, E2, E4)", Millis(50)),
        MakeQuery(&registry, "q4", "SEQ(E2, E4, E3)", Millis(50)),
        MakeQuery(&registry, "q5", "CONJ(E1 & E3)", Millis(50)),
    };
    EventStream stream = RandomStream(
        &registry, {"E1", "E2", "E3", "E4"}, 2000, Millis(40), 17);
    OptimizeOutcome outcome =
        CheckEquivalence(queries, &registry, stream, mode);
    if (mode == OptimizerMode::kMotto) {
      EXPECT_LT(outcome.planned_cost, outcome.default_cost);
      EXPECT_TRUE(outcome.exact);
    }
  }
}

TEST(OptimizerTest, MottoBeatsOrMatchesBaselineCosts) {
  EventTypeRegistry registry;
  std::vector<Query> queries = {
      MakeQuery(&registry, "q1", "SEQ(E1, E2, E3, E5)", Millis(40)),
      MakeQuery(&registry, "q2", "SEQ(E1, E3, E4)", Millis(40)),
      MakeQuery(&registry, "q3", "CONJ(E1 & E3)", Millis(40)),
      MakeQuery(&registry, "q4", "SEQ(E1, E3)", Millis(40)),
  };
  EventStream stream = RandomStream(
      &registry, {"E1", "E2", "E3", "E4", "E5"}, 1000, Millis(4), 5);
  StreamStats stats = ComputeStats(stream);
  double costs[3];
  OptimizerMode modes[3] = {OptimizerMode::kMst, OptimizerMode::kLcse,
                            OptimizerMode::kMotto};
  for (int i = 0; i < 3; ++i) {
    OptimizerOptions options;
    options.mode = modes[i];
    Optimizer optimizer(&registry, stats, options);
    auto outcome = optimizer.Optimize(queries);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    costs[i] = outcome->planned_cost;
    EXPECT_LE(outcome->planned_cost, outcome->default_cost + 1e-9);
  }
  EXPECT_LE(costs[2], costs[0] + 1e-9);  // MOTTO <= MST.
  EXPECT_LE(costs[2], costs[1] + 1e-9);  // MOTTO <= LCSE.
}

TEST(OptimizerTest, NestedQueriesPaperExample7) {
  EventTypeRegistry registry;
  std::vector<Query> queries = {
      MakeQuery(&registry, "q11", "SEQ(E1, DISJ(E4|E3), CONJ(E2&E3))",
                Millis(60)),
      MakeQuery(&registry, "q12", "SEQ(E1, CONJ(E2&E3))", Millis(60)),
  };
  EventStream stream = RandomStream(
      &registry, {"E1", "E2", "E3", "E4"}, 1500, Millis(6), 23);
  OptimizeOutcome outcome = CheckEquivalence(queries, &registry, stream,
                                             OptimizerMode::kMotto);
  // The shared plan computes CONJ(E2&E3) once for both queries.
  EXPECT_LT(outcome.planned_cost, outcome.default_cost);
}

TEST(OptimizerTest, DifferentWindowsBothDirections) {
  EventTypeRegistry registry;
  std::vector<Query> queries = {
      MakeQuery(&registry, "wide", "SEQ(E1, E2, E3)", Millis(80)),
      MakeQuery(&registry, "narrow", "SEQ(E1, E2, E3)", Millis(20)),
      MakeQuery(&registry, "mid", "SEQ(E1, E2)", Millis(40)),
  };
  EventStream stream = RandomStream(
      &registry, {"E1", "E2", "E3"}, 1500, Millis(7), 31);
  CheckEquivalence(queries, &registry, stream, OptimizerMode::kMotto);
}

TEST(OptimizerTest, NegationWorkloadDataCenterExample) {
  EventTypeRegistry registry;
  std::vector<Query> queries = {
      MakeQuery(&registry, "qa", "SEQ(Es, Et, Ed, NEG(Ea))", Millis(30)),
      MakeQuery(&registry, "qb", "SEQ(Es, Et, Ea)", Millis(30)),
  };
  EventStream stream = RandomStream(
      &registry, {"Es", "Et", "Ed", "Ea"}, 1500, Millis(4), 47);
  CheckEquivalence(queries, &registry, stream, OptimizerMode::kMotto);
}

TEST(OptimizerTest, OttWorkload) {
  EventTypeRegistry registry;
  std::vector<Query> queries = {
      MakeQuery(&registry, "seq", "SEQ(E1, E2, E3)", Millis(40)),
      MakeQuery(&registry, "conj", "CONJ(E1 & E2 & E3)", Millis(40)),
      MakeQuery(&registry, "disj", "DISJ(E1 | E2 | E3)", Millis(40)),
  };
  EventStream stream = RandomStream(
      &registry, {"E1", "E2", "E3"}, 1500, Millis(30), 61);
  OptimizeOutcome outcome = CheckEquivalence(queries, &registry, stream,
                                             OptimizerMode::kMotto);
  // SEQ should be answered from CONJ via Filter_sc.
  bool used_order_filter = false;
  for (const JqpNode& node : outcome.jqp.nodes) {
    if (std::holds_alternative<OrderFilterSpec>(node.spec)) {
      used_order_filter = true;
    }
  }
  EXPECT_TRUE(used_order_filter) << outcome.jqp.ToString(registry);
}

TEST(OptimizerTest, RandomWorkloadsPropertySweep) {
  Rng rng(20260704);
  const std::vector<std::string> type_names = {"A", "B", "C", "D", "E", "F"};
  for (int round = 0; round < 6; ++round) {
    EventTypeRegistry registry;
    std::vector<Query> queries;
    int num_queries = static_cast<int>(rng.Uniform(3, 7));
    for (int qi = 0; qi < num_queries; ++qi) {
      PatternOp op = static_cast<PatternOp>(rng.Uniform(0, 2));
      int len = static_cast<int>(rng.Uniform(2, 4));
      std::vector<std::string> names = type_names;
      rng.Shuffle(names);
      std::vector<PatternExpr> children;
      for (int k = 0; k < len; ++k) {
        children.push_back(PatternExpr::Leaf(
            registry.RegisterPrimitive(names[static_cast<size_t>(k)])));
      }
      Duration window = Millis(rng.Uniform(2, 6) * 10);
      queries.push_back(Query{"q" + std::to_string(qi),
                              PatternExpr::Operator(op, children), window});
    }
    EventStream stream =
        RandomStream(&registry, type_names, 1200, Millis(6),
                     1000 + static_cast<uint64_t>(round));
    for (OptimizerMode mode : {OptimizerMode::kMst, OptimizerMode::kLcse,
                               OptimizerMode::kMotto}) {
      CheckEquivalence(queries, &registry, stream, mode);
    }
  }
}

TEST(OptimizerTest, ForceApproximateStillCorrect) {
  EventTypeRegistry registry;
  std::vector<Query> queries = {
      MakeQuery(&registry, "q1", "SEQ(E1, E2, E3)", Millis(40)),
      MakeQuery(&registry, "q2", "SEQ(E1, E3)", Millis(40)),
      MakeQuery(&registry, "q3", "SEQ(E2, E3)", Millis(40)),
  };
  EventStream stream = RandomStream(
      &registry, {"E1", "E2", "E3"}, 1200, Millis(30), 71);
  StreamStats stats = ComputeStats(stream);

  OptimizerOptions options;
  options.mode = OptimizerMode::kMotto;
  options.planner.force_approximate = true;
  options.planner.sa_iterations = 5000;
  Optimizer optimizer(&registry, stats, options);
  auto outcome = optimizer.Optimize(queries);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->exact);

  OptimizerOptions na_options;
  na_options.mode = OptimizerMode::kNa;
  Optimizer na_optimizer(&registry, stats, na_options);
  auto na = na_optimizer.Optimize(queries);
  ASSERT_TRUE(na.ok());

  auto exec = Executor::Create(outcome->jqp);
  auto na_exec = Executor::Create(na->jqp);
  ASSERT_TRUE(exec.ok()) << exec.status();
  ASSERT_TRUE(na_exec.ok());
  auto run = exec->Run(stream);
  auto na_run = na_exec->Run(stream);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(na_run.ok());
  for (const Query& q : queries) {
    EXPECT_EQ(Fingerprints(na_run->sink_events.at(q.name)),
              Fingerprints(run->sink_events.at(q.name)));
  }
}

TEST(OptimizerTest, ProbeThreadedThroughOptimizeWithProvenance) {
  EventTypeRegistry registry;
  std::vector<Query> queries = {
      MakeQuery(&registry, "q1", "SEQ(E1, E2, E3)", Millis(50)),
      MakeQuery(&registry, "q2", "SEQ(E1, E3)", Millis(50)),
      MakeQuery(&registry, "q3", "SEQ(E1, E2, E4)", Millis(50)),
      MakeQuery(&registry, "q4", "SEQ(E2, E4, E3)", Millis(50)),
      MakeQuery(&registry, "q5", "CONJ(E1 & E3)", Millis(50)),
  };
  EventStream stream = RandomStream(
      &registry, {"E1", "E2", "E3", "E4"}, 2000, Millis(40), 17);
  StreamStats stats = ComputeStats(stream);

  obs::OptimizerProbe probe;
  OptimizerOptions options;
  options.mode = OptimizerMode::kMotto;
  options.probe = &probe;
  Optimizer optimizer(&registry, stats, options);
  auto outcome = optimizer.Optimize(queries);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  // One Optimize call fills rewriter trace, solver telemetry, and the
  // solver-selection verdict.
  EXPECT_TRUE(probe.rewriter.recorded);
  EXPECT_EQ(probe.rewriter.graph_edges, outcome->sharing_graph.edges.size());
  EXPECT_EQ(probe.rewriter.CountDecision(obs::EdgeDecision::kAccepted),
            outcome->sharing_graph.edges.size());
  EXPECT_FALSE(probe.selected_solver.empty());
  EXPECT_TRUE(probe.bnb.recorded);

  // Provenance covers every plan node, and terminal sharing nodes selected
  // by the plan map back to plan nodes.
  EXPECT_EQ(outcome->provenance.nodes.size(), outcome->jqp.nodes.size());
  for (const PlanNodeOrigin& origin : outcome->provenance.nodes) {
    if (origin.sharing_node >= 0) {
      EXPECT_LT(static_cast<size_t>(origin.sharing_node),
                outcome->sharing_graph.nodes.size());
    }
    if (origin.edge >= 0) {
      EXPECT_LT(static_cast<size_t>(origin.edge),
                outcome->sharing_graph.edges.size());
    }
  }
  bool any_edge_realized = false;
  for (const PlanNodeOrigin& origin : outcome->provenance.nodes) {
    if (origin.edge >= 0) any_edge_realized = true;
  }
  EXPECT_TRUE(any_edge_realized);  // §V workload shares aggressively.

  // The probe JSON round-trips through the solver selection verdict.
  std::string json = probe.ToJson();
  EXPECT_NE(json.find("\"rewriter\""), std::string::npos);
  EXPECT_NE(json.find("\"selected\":\"" + probe.selected_solver + "\""),
            std::string::npos);
}

TEST(OptimizerTest, NaModeProvenanceIsAllUnshared) {
  EventTypeRegistry registry;
  std::vector<Query> queries = {
      MakeQuery(&registry, "q1", "SEQ(E1, E2)", Millis(50)),
      MakeQuery(&registry, "q2", "SEQ(E1, E2, E3)", Millis(50)),
  };
  EventStream stream = RandomStream(
      &registry, {"E1", "E2", "E3"}, 500, Millis(10), 3);
  StreamStats stats = ComputeStats(stream);
  OptimizerOptions options;
  options.mode = OptimizerMode::kNa;
  Optimizer optimizer(&registry, stats, options);
  auto outcome = optimizer.Optimize(queries);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->provenance.nodes.size(), outcome->jqp.nodes.size());
  for (const PlanNodeOrigin& origin : outcome->provenance.nodes) {
    EXPECT_EQ(origin.sharing_node, -1);
    EXPECT_EQ(origin.edge, -1);
  }
}

TEST(OptimizerTest, RejectsInvalidQueries) {
  EventTypeRegistry registry;
  StreamStats stats;
  Optimizer optimizer(&registry, stats, OptimizerOptions{});
  Query bad{"bad", PatternExpr::Leaf(registry.RegisterPrimitive("x")),
            Seconds(1)};
  EXPECT_FALSE(optimizer.Optimize({bad}).ok());
  FlatQuery zero_window{"zw", FlatPattern{PatternOp::kSeq, {0}, {}}, 0};
  EXPECT_FALSE(optimizer.OptimizeFlat({zero_window}).ok());
}

}  // namespace
}  // namespace motto
