// Randomized equivalence stress for the pipelined multi-threaded executor:
// for random multi-level JQPs over random streams, the ParallelExecutor must
// produce sink event sequences and counts identical to the single-threaded
// Executor for every thread count (1/2/4/8), batch size (including 1 and
// larger than the stream) and pipe depth (including 1, the lock-step
// degenerate case). Order matters: the determinism contract is byte-identical
// output, not just equal multisets.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/parallel_executor.h"
#include "engine/plan_util.h"
#include "test_util.h"

namespace motto {
namespace {

struct Scenario {
  EventTypeRegistry registry;
  Jqp jqp;
  EventStream stream;
};

/// Chains a SEQ(upstream composite, fresh primitive) consumer onto `node`,
/// registering the widened composite type; returns the new node id.
int32_t ChainConsumer(Jqp* jqp, int32_t node, const FlatPattern& upstream_flat,
                      Duration window, EventTypeRegistry* registry,
                      FlatPattern* chained_flat, Rng* rng) {
  const auto& upstream_spec = std::get<PatternSpec>(
      jqp->nodes[static_cast<size_t>(node)].spec);
  EventTypeId extra = registry->RegisterPrimitive(
      "X" + std::to_string(rng->Uniform(0, 3)));
  *chained_flat = upstream_flat;
  chained_flat->op = PatternOp::kSeq;
  chained_flat->negated.clear();
  chained_flat->operands.push_back(extra);

  PatternSpec down;
  down.op = PatternOp::kSeq;
  down.window = window;
  std::vector<int32_t> slot_map;
  for (size_t s = 0; s < upstream_flat.operands.size(); ++s) {
    slot_map.push_back(static_cast<int32_t>(s));
  }
  down.operands = {
      OperandBinding{{upstream_spec.output_type}, 1, slot_map, {}},
      OperandBinding{{extra},
                     kRawChannel,
                     {static_cast<int32_t>(upstream_flat.operands.size())},
                     {}}};
  down.output_type = RegisterOutputType(*chained_flat, window, registry);
  JqpNode down_node;
  down_node.spec = down;
  down_node.inputs = {node};
  return jqp->AddNode(std::move(down_node));
}

Scenario MakeScenario(uint64_t seed) {
  Scenario s;
  Rng rng(seed);

  int num_types = static_cast<int>(rng.Uniform(4, 6));
  std::vector<EventTypeId> types;
  for (int i = 0; i < num_types; ++i) {
    types.push_back(s.registry.RegisterPrimitive("T" + std::to_string(i)));
  }

  int num_queries = static_cast<int>(rng.Uniform(2, 5));
  std::vector<FlatQuery> queries;
  for (int q = 0; q < num_queries; ++q) {
    FlatQuery query;
    query.name = "q" + std::to_string(q);
    query.window = Millis(static_cast<int64_t>(rng.Uniform(30, 150)));
    double roll = rng.Uniform(0, 99);
    query.pattern.op = roll < 60   ? PatternOp::kSeq
                       : roll < 85 ? PatternOp::kConj
                                   : PatternOp::kDisj;
    // Query 0 gets chained consumers below: DISJ passes events through with
    // no composite output type, so keep it a real composite producer.
    if (q == 0 && query.pattern.op == PatternOp::kDisj) {
      query.pattern.op = PatternOp::kSeq;
    }
    int num_operands = static_cast<int>(rng.Uniform(2, 3));
    for (int k = 0; k < num_operands; ++k) {
      query.pattern.operands.push_back(
          types[static_cast<size_t>(rng.Uniform(0, num_types - 1))]);
    }
    // Negation forces deferred emission through the final flush; only legal
    // on terminal nodes, so chained queries (q == 0) stay negation-free.
    if (q != 0 && query.pattern.op != PatternOp::kDisj &&
        rng.Bernoulli(0.3)) {
      query.pattern.negated.push_back(
          types[static_cast<size_t>(rng.Uniform(0, num_types - 1))]);
    }
    queries.push_back(query);
  }
  s.jqp = BuildDefaultJqp(queries, &s.registry);

  // Chain one or two extra dataflow levels onto query 0 so the pipeline has
  // cross-level edges, not just independent sources.
  FlatPattern level2;
  int32_t chained = ChainConsumer(&s.jqp, s.jqp.sinks[0].node,
                                  queries[0].pattern, queries[0].window * 2,
                                  &s.registry, &level2, &rng);
  s.jqp.sinks.push_back(Jqp::Sink{"chained2", chained});
  if (rng.Bernoulli(0.5)) {
    FlatPattern level3;
    int32_t deep = ChainConsumer(&s.jqp, chained, level2,
                                 queries[0].window * 3, &s.registry, &level3,
                                 &rng);
    s.jqp.sinks.push_back(Jqp::Sink{"chained3", deep});
  }

  int num_events = static_cast<int>(rng.Uniform(120, 400));
  Timestamp ts = 0;
  // Draw from primitives including the chained X types.
  std::vector<EventTypeId> all_types = types;
  for (int i = 0; i < 4; ++i) {
    EventTypeId x = s.registry.Find("X" + std::to_string(i));
    if (x != kInvalidEventType) all_types.push_back(x);
  }
  for (int i = 0; i < num_events; ++i) {
    ts += rng.Uniform(1, Millis(12));
    s.stream.push_back(Event::Primitive(
        all_types[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(all_types.size()) - 1))],
        ts));
  }
  return s;
}

/// Ordered per-sink fingerprint sequences: equality means identical events
/// in identical emission order.
std::map<std::string, std::vector<std::string>> OrderedSinks(
    const RunResult& run) {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& [name, events] : run.sink_events) {
    std::vector<std::string>& seq = out[name];
    for (const Event& e : events) seq.push_back(e.Fingerprint());
  }
  return out;
}

/// Empty when equal; otherwise pinpoints the first divergence per sink
/// (gtest's container printer truncates at 32 elements, which hides diffs
/// deep in long match lists).
std::string DiffSinks(
    const std::map<std::string, std::vector<std::string>>& got,
    const std::map<std::string, std::vector<std::string>>& want) {
  std::string diff;
  for (const auto& [name, want_seq] : want) {
    auto it = got.find(name);
    const std::vector<std::string> empty;
    const std::vector<std::string>& got_seq =
        it == got.end() ? empty : it->second;
    size_t n = std::max(got_seq.size(), want_seq.size());
    for (size_t i = 0; i < n; ++i) {
      const char* g = i < got_seq.size() ? got_seq[i].c_str() : "<end>";
      const char* w = i < want_seq.size() ? want_seq[i].c_str() : "<end>";
      if (std::string(g) != w) {
        diff += "sink " + name + " [" + std::to_string(i) + "/" +
                std::to_string(want_seq.size()) + "]: got " + g + " want " +
                w + "\n";
        for (size_t j = i; j < std::min(i + 6, n); ++j) {
          diff += "    [" + std::to_string(j) + "] got " +
                  (j < got_seq.size() ? got_seq[j] : "<end>") + " want " +
                  (j < want_seq.size() ? want_seq[j] : "<end>") + "\n";
        }
        break;
      }
    }
  }
  for (const auto& [name, got_seq] : got) {
    if (!want.count(name)) {
      diff += "unexpected sink " + name + " (" +
              std::to_string(got_seq.size()) + " events)\n";
    }
  }
  return diff;
}

TEST(ParallelStressTest, MatchesSingleThreadedAcrossThreadsBatchesDepths) {
  uint64_t with_matches = 0;
  for (uint64_t seed = 1; seed <= 18; ++seed) {
    Scenario s = MakeScenario(seed * 1297);
    auto single = Executor::Create(s.jqp);
    ASSERT_TRUE(single.ok()) << single.status();
    auto expected = single->Run(s.stream);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto expected_sinks = OrderedSinks(*expected);
    with_matches += expected->TotalMatches();

    const size_t batches[] = {1, 7, 64, s.stream.size() + 1};
    const size_t depths[] = {1, 2, 4};
    int config = 0;
    for (int threads : {1, 2, 4, 8}) {
      size_t batch = batches[(seed + static_cast<uint64_t>(config)) % 4];
      size_t depth = depths[(seed + static_cast<uint64_t>(config)) % 3];
      ++config;
      auto parallel =
          ParallelExecutor::Create(s.jqp, threads, batch, depth);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      auto run = parallel->Run(s.stream);
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(DiffSinks(OrderedSinks(*run), expected_sinks), "")
          << "seed " << seed << " threads " << threads << " batch " << batch
          << " pipe_depth " << depth;
      EXPECT_EQ(run->sink_counts, expected->sink_counts)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(run->parallel.node_activations,
                s.jqp.nodes.size() * run->parallel.batches);
      // Repeat on the same executor: state must fully reset between runs.
      auto rerun = parallel->Run(s.stream);
      ASSERT_TRUE(rerun.ok());
      EXPECT_EQ(DiffSinks(OrderedSinks(*rerun), expected_sinks), "")
          << "rerun diverged, seed " << seed << " threads " << threads;
    }
  }
  // The generator must exercise real emission, not just empty agreement.
  EXPECT_GT(with_matches, 50u);
}

}  // namespace
}  // namespace motto
