// Evaluation-order planning (DESIGN.md §13): order choice against
// hand-computed effective rates, tie determinism, partial-count and cost
// predictions, calibration-multiplier feedthrough, and the plan-level
// annotation pass that installs orders into PatternSpec::eval_order.
#include "cost/order_planner.h"

#include <gtest/gtest.h>

#include "engine/graph.h"
#include "engine/plan_util.h"
#include "planner/plan_builder.h"
#include "test_util.h"

namespace motto {
namespace {

constexpr CostModel::Constants kConstants{};

std::vector<int32_t> Order(PatternOp op, std::vector<double> rates) {
  return PlanEvalOrder(op, rates, Seconds(1), kConstants).order;
}

TEST(OrderPlannerTest, PicksAscendingEffectiveRate) {
  EXPECT_EQ(Order(PatternOp::kConj, {10.0, 1.0, 5.0}),
            (std::vector<int32_t>{1, 2, 0}));
  EXPECT_EQ(Order(PatternOp::kSeq, {0.5, 8.0, 2.0, 1.0}),
            (std::vector<int32_t>{0, 3, 2, 1}));
}

TEST(OrderPlannerTest, TiesBreakByOperandIndex) {
  EXPECT_EQ(Order(PatternOp::kConj, {5.0, 5.0, 1.0}),
            (std::vector<int32_t>{2, 0, 1}));
  EXPECT_EQ(Order(PatternOp::kSeq, {3.0, 3.0, 3.0}),
            (std::vector<int32_t>{0, 1, 2}));
}

TEST(OrderPlannerTest, InapplicableOperatorsGetNoOrder) {
  OrderPlan disj = PlanEvalOrder(PatternOp::kDisj, {5.0, 1.0}, Seconds(1),
                                 kConstants);
  EXPECT_TRUE(disj.order.empty());
  EXPECT_FALSE(disj.lazy_beneficial);
  OrderPlan single =
      PlanEvalOrder(PatternOp::kConj, {5.0}, Seconds(1), kConstants);
  EXPECT_TRUE(single.order.empty());
  EXPECT_FALSE(single.lazy_beneficial);
}

TEST(OrderPlannerTest, ConjPartialCountsMatchHandComputation) {
  // N = {10, 1} over a 1s window. Eager CONJ materializes the subset
  // lattice: (1+10)(1+1) - 1 - 10*1 = 11 partials. The lazy chain anchored
  // on operand 1 holds only its N_1 = 1 singleton prefixes.
  OrderPlan plan =
      PlanEvalOrder(PatternOp::kConj, {10.0, 1.0}, Seconds(1), kConstants);
  EXPECT_EQ(plan.order, (std::vector<int32_t>{1, 0}));
  EXPECT_NEAR(plan.arrival_partials, 11.0, 1e-9);
  EXPECT_NEAR(plan.lazy_partials, 1.0, 1e-9);
  EXPECT_NEAR(plan.Reduction(), 11.0, 1e-9);
}

TEST(OrderPlannerTest, SeqPartialCountsMatchHandComputation) {
  // SEQ(A, B, C) with N = {100, 100, 1}: eager chains hold N_0 + N_0*N_1/1!
  // = 10100 partials; the lazy chain over (C, A, B) holds N_2 + N_2*N_0/1!
  // = 101.
  OrderPlan plan = PlanEvalOrder(PatternOp::kSeq, {100.0, 100.0, 1.0},
                                 Seconds(1), kConstants);
  EXPECT_EQ(plan.order, (std::vector<int32_t>{2, 0, 1}));
  EXPECT_NEAR(plan.arrival_partials, 10100.0, 1e-6);
  EXPECT_NEAR(plan.lazy_partials, 101.0, 1e-9);
  EXPECT_NEAR(plan.Reduction(), 100.0, 1e-9);
  EXPECT_TRUE(plan.lazy_beneficial);
}

TEST(OrderPlannerTest, CostsMatchHandComputation) {
  // CONJ, rates {20, 1}, 1s window, default constants (per_event = 1,
  // per_partial = 0.68):
  //   arrival = 21 + 0.68 * (20*1 + 1*20)            = 48.2
  //   lazy    = 21 + (21 - 1) + 0.68 * (20 * 1)      = 54.6
  // Mild 2-operand skew: buffering the frequent operand costs more than
  // the saved lattice work, so lazy correctly loses.
  OrderPlan plan =
      PlanEvalOrder(PatternOp::kConj, {20.0, 1.0}, Seconds(1), kConstants);
  EXPECT_NEAR(plan.arrival_cost, 48.2, 1e-9);
  EXPECT_NEAR(plan.lazy_cost, 54.6, 1e-9);
  EXPECT_FALSE(plan.lazy_beneficial);
}

TEST(OrderPlannerTest, StrongSkewMakesLazyBeneficial) {
  OrderPlan plan = PlanEvalOrder(PatternOp::kConj, {100.0, 100.0, 1.0},
                                 Seconds(1), kConstants);
  EXPECT_EQ(plan.order, (std::vector<int32_t>{2, 0, 1}));
  EXPECT_TRUE(plan.lazy_beneficial);
  EXPECT_GT(plan.Reduction(), 50.0);
  EXPECT_LT(plan.lazy_cost, plan.arrival_cost);
}

TEST(OrderPlannerTest, CalibrationMultiplierScalesOnlyPartialTerms) {
  // Same mild-skew CONJ as CostsMatchHandComputation: lazy saves 13.6m
  // units of extension work (m = multiplier) against a fixed buffering
  // overhead of 20, so the verdict flips exactly where 13.6m > 20. A
  // family the model overestimates (m < 1, like the measured DST 0.73x)
  // stays non-beneficial; an underestimated family (m = 2) flips.
  OrderPlan overestimated = PlanEvalOrder(PatternOp::kConj, {20.0, 1.0},
                                          Seconds(1), kConstants, 0.73);
  EXPECT_FALSE(overestimated.lazy_beneficial);
  EXPECT_NEAR(overestimated.arrival_cost, 21.0 + 0.73 * 27.2, 1e-9);
  EXPECT_NEAR(overestimated.lazy_cost, 41.0 + 0.73 * 13.6, 1e-9);
  OrderPlan underestimated = PlanEvalOrder(PatternOp::kConj, {20.0, 1.0},
                                           Seconds(1), kConstants, 2.0);
  EXPECT_TRUE(underestimated.lazy_beneficial);
  // The multiplier never changes the chosen order, only the verdict.
  EXPECT_EQ(overestimated.order, underestimated.order);
  // And partial-count predictions are multiplier-independent.
  EXPECT_NEAR(overestimated.Reduction(), underestimated.Reduction(), 1e-12);
}

// ---------------------------------------------------------------------------
// AnnotateEvalOrders: plan-level wiring — effective rates (stream rate x
// predicate selectivity, composite rates propagated topologically), orders
// installed into the specs, and per-node calibration multipliers applied.
// ---------------------------------------------------------------------------

class AnnotateTest : public ::testing::Test {
 protected:
  StreamStats Stats(std::vector<std::pair<EventTypeId, double>> rates) {
    StreamStats stats;
    for (auto& [type, rate] : rates) {
      stats.rate_per_second[type] = rate;
      stats.total_rate += rate;
    }
    stats.duration = Seconds(10);
    return stats;
  }

  EventTypeRegistry registry_;
};

TEST_F(AnnotateTest, UsesPredicateSelectivityAndInstallsOrders) {
  EventTypeId a = registry_.RegisterPrimitive("A");
  EventTypeId b = registry_.RegisterPrimitive("B");
  FlatPattern flat;
  flat.op = PatternOp::kSeq;
  flat.operands = {a, b};
  PatternSpec spec = MakeRawPatternSpec(flat, Seconds(1), &registry_);
  // One comparison, no payload samples: selectivity falls back to 0.5, so
  // operand 0's effective rate is 50 * 0.5 = 25 < 30 and it anchors the
  // order despite the higher raw rate.
  spec.operands[0].predicate =
      Predicate({Comparison{PredicateField::kValue, PredicateCmp::kGt, 1.0}});
  Jqp jqp;
  JqpNode node;
  node.spec = std::move(spec);
  node.label = "q";
  int32_t id = jqp.AddNode(std::move(node));
  jqp.sinks.push_back(Jqp::Sink{"q", id});

  std::vector<OrderPlan> plans =
      AnnotateEvalOrders(&jqp, Stats({{a, 50.0}, {b, 30.0}}));
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].order, (std::vector<int32_t>{0, 1}));
  const auto& annotated = std::get<PatternSpec>(jqp.nodes[0].spec);
  EXPECT_EQ(annotated.eval_order, plans[0].order);
  EXPECT_TRUE(jqp.Validate().ok());
}

TEST_F(AnnotateTest, PropagatesCompositeRatesTopologically) {
  EventTypeId a = registry_.RegisterPrimitive("A");
  EventTypeId b = registry_.RegisterPrimitive("B");
  EventTypeId c = registry_.RegisterPrimitive("C");
  EventTypeId ab = registry_.RegisterComposite("{A,B}");
  EventTypeId abc = registry_.RegisterComposite("{A,B,C}");

  Jqp jqp;
  {
    FlatPattern flat;
    flat.op = PatternOp::kSeq;
    flat.operands = {a, b};
    JqpNode node;
    node.spec = MakeRawPatternSpec(flat, Seconds(1), &registry_);
    std::get<PatternSpec>(node.spec).output_type = ab;
    node.label = "inner";
    jqp.AddNode(std::move(node));
  }
  {
    // CONJ({A,B} composite via channel 1, raw C).
    PatternSpec spec;
    spec.op = PatternOp::kConj;
    spec.window = Seconds(1);
    spec.output_type = abc;
    spec.operands = {
        OperandBinding{{ab}, 1, {0, 1}, {}},
        OperandBinding{{c}, kRawChannel, {2}, {}},
    };
    JqpNode node;
    node.spec = std::move(spec);
    node.inputs = {0};
    node.label = "outer";
    int32_t id = jqp.AddNode(std::move(node));
    jqp.sinks.push_back(Jqp::Sink{"outer", id});
  }

  // SEQ(A, B) over 1s at rates {50, 2} emits 50*2*1 = 100 composites/s —
  // far above C's 0.5/s, so the outer CONJ must anchor on C (index 1).
  std::vector<OrderPlan> plans = AnnotateEvalOrders(
      &jqp, Stats({{a, 50.0}, {b, 2.0}, {c, 0.5}}));
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].order, (std::vector<int32_t>{1, 0}));  // B rarer than A.
  EXPECT_EQ(plans[1].order, (std::vector<int32_t>{1, 0}));  // C rarer than AB.
  EXPECT_EQ(std::get<PatternSpec>(jqp.nodes[1].spec).eval_order,
            plans[1].order);
  EXPECT_TRUE(jqp.Validate().ok());
}

TEST_F(AnnotateTest, AppliesPerNodeCalibrationMultipliers) {
  EventTypeId a = registry_.RegisterPrimitive("A");
  EventTypeId b = registry_.RegisterPrimitive("B");
  FlatPattern flat;
  flat.op = PatternOp::kConj;
  flat.operands = {a, b};
  Jqp jqp;
  JqpNode node;
  node.spec = MakeRawPatternSpec(flat, Seconds(1), &registry_);
  node.label = "q";
  int32_t id = jqp.AddNode(std::move(node));
  jqp.sinks.push_back(Jqp::Sink{"q", id});
  Jqp jqp_calibrated = jqp;

  StreamStats stats = Stats({{a, 20.0}, {b, 1.0}});
  std::vector<OrderPlan> baseline = AnnotateEvalOrders(&jqp, stats);
  std::vector<OrderPlan> calibrated =
      AnnotateEvalOrders(&jqp_calibrated, stats, {2.0});
  ASSERT_EQ(baseline.size(), 1u);
  ASSERT_EQ(calibrated.size(), 1u);
  EXPECT_FALSE(baseline[0].lazy_beneficial);
  EXPECT_TRUE(calibrated[0].lazy_beneficial);
  EXPECT_EQ(baseline[0].order, calibrated[0].order);
}

}  // namespace
}  // namespace motto
