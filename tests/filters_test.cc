// Unit tests of the stateless filter runtimes (Filter_sc / span filters)
// via the NodeRuntime factory.
#include <gtest/gtest.h>

#include "engine/runtime.h"

namespace motto {
namespace {

Event Composite(EventTypeId type, std::vector<Constituent> parts) {
  Timestamp end = parts.front().ts;
  for (const Constituent& c : parts) end = std::max(end, c.ts);
  return Event::Composite(type, std::move(parts), end);
}

class OrderFilterTest : public ::testing::Test {
 protected:
  std::vector<Event> Feed(const OrderFilterSpec& spec,
                          const std::vector<Event>& events) {
    std::unique_ptr<NodeRuntime> runtime = MakeNodeRuntime(NodeSpec{spec});
    std::vector<Event> out;
    for (const Event& e : events) {
      runtime->OnWatermark(e.end(), &out);
      runtime->OnEvent(1, e, &out);
    }
    return out;
  }
};

TEST_F(OrderFilterTest, KeepsCorrectlyOrderedComposites) {
  OrderFilterSpec spec;
  spec.required_order = {1, 2, 3};
  std::vector<Event> out = Feed(
      spec, {Composite(9, {{1, 10, 0}, {2, 20, 1}, {3, 30, 2}}),
             Composite(9, {{2, 10, 0}, {1, 20, 1}, {3, 30, 2}}),   // Wrong order.
             Composite(9, {{1, 10, 0}, {2, 20, 1}}),               // Too short.
             Composite(9, {{1, 10, 0}, {2, 10, 1}, {3, 30, 2}})}); // Tie.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type(), 9);  // Pass-through keeps the input type.
}

TEST_F(OrderFilterTest, RelabelRetypesAndRenumbersSlots) {
  OrderFilterSpec spec;
  spec.required_order = {2, 1};  // By timestamp: type 2 first, then type 1.
  spec.relabel = true;
  spec.output_type = 77;
  std::vector<Event> out =
      Feed(spec, {Composite(9, {{1, 50, 0}, {2, 10, 1}})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type(), 77);
  ASSERT_EQ(out[0].constituents().size(), 2u);
  // Constituents sorted by ts; slots renumbered to order index.
  EXPECT_EQ(out[0].constituents()[0].type, 2);
  EXPECT_EQ(out[0].constituents()[0].slot, 0);
  EXPECT_EQ(out[0].constituents()[1].type, 1);
  EXPECT_EQ(out[0].constituents()[1].slot, 1);
}

TEST_F(OrderFilterTest, PrimitiveEventsCheckSingleType) {
  OrderFilterSpec spec;
  spec.required_order = {5};
  std::unique_ptr<NodeRuntime> runtime = MakeNodeRuntime(NodeSpec{spec});
  std::vector<Event> out;
  runtime->OnEvent(1, Event::Primitive(5, 100), &out);
  runtime->OnEvent(1, Event::Primitive(6, 100), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(SpanFilterTest, DropsWideComposites) {
  SpanFilterSpec spec;
  spec.max_span = 100;
  std::unique_ptr<NodeRuntime> runtime = MakeNodeRuntime(NodeSpec{spec});
  std::vector<Event> out;
  runtime->OnEvent(1, Composite(9, {{1, 0, 0}, {2, 100, 1}}), &out);   // == max.
  runtime->OnEvent(1, Composite(9, {{1, 0, 0}, {2, 101, 1}}), &out);   // Too wide.
  runtime->OnEvent(1, Event::Primitive(3, 500), &out);                 // Span 0.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].span(), 100);
  EXPECT_TRUE(out[1].is_primitive());
}

TEST(SpanFilterTest, RetypePreservesConstituents) {
  SpanFilterSpec spec;
  spec.max_span = 100;
  spec.retype = 55;
  std::unique_ptr<NodeRuntime> runtime = MakeNodeRuntime(NodeSpec{spec});
  std::vector<Event> out;
  runtime->OnEvent(1, Composite(9, {{1, 0, 0}, {2, 40, 1}}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type(), 55);
  EXPECT_EQ(out[0].constituents().size(), 2u);
  EXPECT_EQ(out[0].begin(), 0);
  EXPECT_EQ(out[0].end(), 40);
}

TEST(FilterResetTest, FiltersAreStateless) {
  OrderFilterSpec spec;
  spec.required_order = {1, 2};
  std::unique_ptr<NodeRuntime> runtime = MakeNodeRuntime(NodeSpec{spec});
  std::vector<Event> out;
  runtime->Reset();
  runtime->OnEvent(1, Composite(9, {{1, 10, 0}, {2, 20, 1}}), &out);
  runtime->Reset();
  runtime->OnEvent(1, Composite(9, {{1, 30, 0}, {2, 40, 1}}), &out);
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace motto
