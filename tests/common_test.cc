#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/interner.h"
#include "common/parse.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"

namespace motto {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return InternalError("boom"); };
  auto wrapper = [&]() -> Status {
    MOTTO_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto makes = []() -> Result<int> { return 7; };
  auto fails = []() -> Result<int> { return OutOfRangeError("x"); };
  auto user = [&](bool ok) -> Result<int> {
    MOTTO_ASSIGN_OR_RETURN(int v, ok ? makes() : fails());
    return v + 1;
  };
  EXPECT_EQ(*user(true), 8);
  EXPECT_EQ(user(false).status().code(), StatusCode::kOutOfRange);
}

TEST(InternerTest, AssignsDenseIdsInOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("a"), 0);
  EXPECT_EQ(interner.Intern("b"), 1);
  EXPECT_EQ(interner.Intern("a"), 0);
  EXPECT_EQ(interner.size(), 2);
  EXPECT_EQ(interner.NameOf(1), "b");
  EXPECT_EQ(interner.Find("b"), 1);
  EXPECT_EQ(interner.Find("zzz"), -1);
}

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Millis(3), 3000);
  EXPECT_EQ(Seconds(2), 2'000'000);
  EXPECT_EQ(Minutes(1), 60'000'000);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(99);
  int n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(n, 1.0)];
  EXPECT_GT(counts[0], counts[n - 1] * 2);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(RngTest, ZipfZeroExponentIsRoughlyUniform) {
  Rng rng(5);
  int n = 4;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.Zipf(n, 0.0)];
  for (int c : counts) {
    EXPECT_GT(c, 8000);
    EXPECT_LT(c, 12000);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ParseTest, ParseDoubleAcceptsPlainNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  42.25  "), 42.25);  // Trimmed.
}

TEST(ParseTest, ParseDoubleRejectsMalformedInput) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("   ").ok());
  EXPECT_FALSE(ParseDouble("12x3").ok());   // Trailing junk, the strtod trap.
  EXPECT_FALSE(ParseDouble("1.5 2").ok());  // Embedded space.
  EXPECT_FALSE(ParseDouble("nanabc").ok());
  auto bad = ParseDouble("abc");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("abc"), std::string::npos);
}

TEST(ParseTest, ParseDoubleRejectsOverflowAndNonFinite) {
  EXPECT_FALSE(ParseDouble("1e999999").ok());
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("nan").ok());
}

TEST(ParseTest, ParseInt64AcceptsAndRejects) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("-77"), -77);
  EXPECT_EQ(*ParseInt64("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());  // Not an integer.
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());   // Overflow.
  EXPECT_FALSE(ParseInt64("123456789012345678901234567890").ok());
}

TEST(RngTest, ExponentialHasRoughlyRequestedMean) {
  Rng rng(11);
  double sum = 0;
  int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  double mean = sum / n;
  EXPECT_GT(mean, 3.8);
  EXPECT_LT(mean, 4.2);
}

}  // namespace
}  // namespace motto
