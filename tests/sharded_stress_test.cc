// Randomized equivalence stress for the sharded data-parallel executor: for
// random multi-level JQPs over random streams, ShardedExecutor must produce
// per-sink match multisets identical to the single-threaded Executor for
// every shard count (1-8) and thread count, byte-identical order when the
// partition is a pure component split, and byte-identical output across
// repeated runs at a fixed shard count (the determinism contract of
// DESIGN.md §12). Negated terminal queries exercise deferred attribution
// keys across slice boundaries; chained consumers exercise multi-node
// components. Half the shard configs run in selectivity-ordered lazy mode
// (planner-annotated eval orders; DESIGN.md §13), so lazy buffering is
// exercised against slice warm-up and replica round-robin too.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/plan_util.h"
#include "engine/sharded_executor.h"
#include "planner/plan_builder.h"
#include "test_util.h"

namespace motto {
namespace {

struct Scenario {
  EventTypeRegistry registry;
  Jqp jqp;
  EventStream stream;
};

/// Chains a SEQ(upstream composite, fresh primitive) consumer onto `node`,
/// so at least one component spans multiple dataflow levels.
int32_t ChainConsumer(Jqp* jqp, int32_t node, const FlatPattern& upstream_flat,
                      Duration window, EventTypeRegistry* registry,
                      Rng* rng) {
  const auto& upstream_spec =
      std::get<PatternSpec>(jqp->nodes[static_cast<size_t>(node)].spec);
  EventTypeId extra =
      registry->RegisterPrimitive("X" + std::to_string(rng->Uniform(0, 3)));
  FlatPattern chained_flat = upstream_flat;
  chained_flat.op = PatternOp::kSeq;
  chained_flat.negated.clear();
  chained_flat.operands.push_back(extra);

  PatternSpec down;
  down.op = PatternOp::kSeq;
  down.window = window;
  std::vector<int32_t> slot_map;
  for (size_t s = 0; s < upstream_flat.operands.size(); ++s) {
    slot_map.push_back(static_cast<int32_t>(s));
  }
  down.operands = {
      OperandBinding{{upstream_spec.output_type}, 1, slot_map, {}},
      OperandBinding{{extra},
                     kRawChannel,
                     {static_cast<int32_t>(upstream_flat.operands.size())},
                     {}}};
  down.output_type = RegisterOutputType(chained_flat, window, registry);
  JqpNode down_node;
  down_node.spec = down;
  down_node.inputs = {node};
  return jqp->AddNode(std::move(down_node));
}

Scenario MakeScenario(uint64_t seed) {
  Scenario s;
  Rng rng(seed);

  int num_types = static_cast<int>(rng.Uniform(4, 7));
  std::vector<EventTypeId> types;
  for (int i = 0; i < num_types; ++i) {
    types.push_back(s.registry.RegisterPrimitive("T" + std::to_string(i)));
  }

  int num_queries = static_cast<int>(rng.Uniform(2, 6));
  std::vector<FlatQuery> queries;
  for (int q = 0; q < num_queries; ++q) {
    FlatQuery query;
    query.name = "q" + std::to_string(q);
    query.window = Millis(static_cast<int64_t>(rng.Uniform(30, 150)));
    double roll = rng.Uniform(0, 99);
    query.pattern.op = roll < 60   ? PatternOp::kSeq
                       : roll < 85 ? PatternOp::kConj
                                   : PatternOp::kDisj;
    if (q == 0 && query.pattern.op == PatternOp::kDisj) {
      query.pattern.op = PatternOp::kSeq;
    }
    int num_operands = static_cast<int>(rng.Uniform(2, 3));
    for (int k = 0; k < num_operands; ++k) {
      query.pattern.operands.push_back(
          types[static_cast<size_t>(rng.Uniform(0, num_types - 1))]);
    }
    // Deferred-negation sinks are the hardest sharding case: their
    // attribution key (begin + window) routinely lands in a later slice
    // than their constituents. Seed plenty of them.
    if (q != 0 && query.pattern.op != PatternOp::kDisj &&
        rng.Bernoulli(0.4)) {
      query.pattern.negated.push_back(
          types[static_cast<size_t>(rng.Uniform(0, num_types - 1))]);
    }
    queries.push_back(query);
  }
  s.jqp = BuildDefaultJqp(queries, &s.registry);

  int32_t chained = ChainConsumer(&s.jqp, s.jqp.sinks[0].node,
                                  queries[0].pattern, queries[0].window * 2,
                                  &s.registry, &rng);
  s.jqp.sinks.push_back(Jqp::Sink{"chained", chained});

  int num_events = static_cast<int>(rng.Uniform(100, 350));
  std::vector<EventTypeId> all_types = types;
  for (int i = 0; i < 4; ++i) {
    EventTypeId x = s.registry.Find("X" + std::to_string(i));
    if (x != kInvalidEventType) all_types.push_back(x);
  }
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    // Frequent zero steps produce tied timestamps, stressing the slicer's
    // never-split-a-tie rule at every boundary.
    ts += rng.Bernoulli(0.2) ? 0 : rng.Uniform(1, Millis(12));
    s.stream.push_back(Event::Primitive(
        all_types[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(all_types.size()) - 1))],
        ts));
  }
  // Install planner-chosen eval orders so lazy-mode configs anchor each
  // node on its rarest operand, the way an optimized run would.
  AnnotateEvalOrders(&s.jqp, ComputeStats(s.stream));
  return s;
}

std::map<std::string, std::vector<std::string>> OrderedSinks(
    const RunResult& run) {
  std::map<std::string, std::vector<std::string>> out;
  for (const auto& [name, events] : run.sink_events) {
    std::vector<std::string>& seq = out[name];
    for (const Event& e : events) seq.push_back(e.Fingerprint());
  }
  return out;
}

std::map<std::string, testing::MatchSet> SinkSets(const RunResult& run) {
  std::map<std::string, testing::MatchSet> out;
  for (const auto& [name, events] : run.sink_events) {
    out[name] = testing::Fingerprints(events);
  }
  return out;
}

TEST(ShardedStressTest, MatchesSingleThreadedAcrossShardAndThreadCounts) {
  uint64_t with_matches = 0;
  uint64_t sliced_configs = 0;
  for (uint64_t seed = 1; seed <= 14; ++seed) {
    Scenario s = MakeScenario(seed * 7919);
    auto single = Executor::Create(s.jqp);
    ASSERT_TRUE(single.ok()) << single.status();
    auto expected = single->Run(s.stream);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto expected_sets = SinkSets(*expected);
    auto expected_order = OrderedSinks(*expected);
    with_matches += expected->TotalMatches();

    // Lazy single-threaded run: same match multisets as eager.
    ExecutorOptions lazy_options;
    lazy_options.eval_order = EvalOrderMode::kSelectivity;
    auto lazy_single = single->Run(s.stream, lazy_options);
    ASSERT_TRUE(lazy_single.ok()) << lazy_single.status();
    EXPECT_EQ(SinkSets(*lazy_single), expected_sets)
        << "lazy single-threaded diverged, seed " << seed;

    const int threads[] = {1, 2, 4, 8};
    int config = 0;
    for (int shards : {1, 2, 3, 5, 8}) {
      int thread_count =
          threads[(seed + static_cast<uint64_t>(config)) % 4];
      // Alternate eval modes across configs so lazy buffering also meets
      // time-sliced replicas and warm-up replays.
      ExecutorOptions run_options;
      run_options.eval_order = (seed + static_cast<uint64_t>(config)) % 2 == 0
                                   ? EvalOrderMode::kSelectivity
                                   : EvalOrderMode::kArrival;
      ++config;
      auto sharded = ShardedExecutor::Create(s.jqp, shards, thread_count);
      ASSERT_TRUE(sharded.ok()) << sharded.status();
      auto run = sharded->Run(s.stream, run_options);
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(SinkSets(*run), expected_sets)
          << "seed " << seed << " shards " << shards << " threads "
          << thread_count << " lazy "
          << (run_options.eval_order == EvalOrderMode::kSelectivity);
      EXPECT_EQ(run->sink_counts, expected->sink_counts)
          << "seed " << seed << " shards " << shards;
      if (run_options.eval_order == EvalOrderMode::kArrival &&
          sharded->plan().PureComponentPartition()) {
        EXPECT_EQ(OrderedSinks(*run), expected_order)
            << "component partition lost order, seed " << seed << " shards "
            << shards;
      }
      if (!sharded->plan().PureComponentPartition()) ++sliced_configs;
      // Same executor, same stream, same shard count and eval mode:
      // byte-identical.
      auto rerun = sharded->Run(s.stream, run_options);
      ASSERT_TRUE(rerun.ok());
      EXPECT_EQ(OrderedSinks(*rerun), OrderedSinks(*run))
          << "rerun diverged, seed " << seed << " shards " << shards;
    }
  }
  // The sweep must exercise real matches and real time slicing, not just
  // trivially-empty agreement.
  EXPECT_GT(with_matches, 50u);
  EXPECT_GT(sliced_configs, 10u);
}

}  // namespace
}  // namespace motto
