// Live serve telemetry (DESIGN.md §16): per-node transitive query
// attribution, the ServeTelemetry engine-thread coordinator (per-query
// health, outbox lag, stats-log JSONL), golden-file checks of the /statusz
// JSON and Prometheus expositions, and the StatusServer HTTP responder —
// including a concurrent-scrape run that the tsan slice exercises.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "event/stream.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "serve/server.h"
#include "serve/status.h"
#include "serve/wire.h"
#include "test_util.h"
#include "workload/io.h"

namespace motto {
namespace {

namespace fs = std::filesystem;
using serve::Frame;
using serve::FrameType;
using serve::NodeHealth;
using serve::NodeQuerySets;
using serve::QueryHealth;
using serve::ServeCore;
using serve::ServeOptions;
using serve::ServeStatus;
using serve::ServeTelemetry;
using serve::StatusServer;
using serve::TelemetryOptions;

// q0 is a shared prefix of q1 (the paper's MQO case — the optimizer reuses
// the SEQ(A, B) node for both), and q2 waits on a type the stream never
// sends, so it stays starved — the three per-query states in one workload.
constexpr char kWorkload[] =
    "q0: SELECT * FROM s MATCHING [30 us : SEQ(A, B)]\n"
    "q1: SELECT * FROM s MATCHING [30 us : SEQ(A, B, C)]\n"
    "q2: SELECT * FROM s MATCHING [20 us : SEQ(A, Z)]\n";

/// A ServeCore in ephemeral mode (no checkpoint dir, discarded output) with
/// its metrics registry, plus frame-level feeding helpers.
struct CoreBundle {
  EventTypeRegistry registry;
  std::vector<Query> queries;
  obs::MetricsRegistry metrics;
  std::unique_ptr<ServeCore> core;

  void FeedRegistrations() {
    for (EventTypeId id : registry.PrimitiveTypes()) {
      Frame frame;
      frame.type = FrameType::kRegisterType;
      frame.wire_type = static_cast<uint32_t>(id);
      frame.is_primitive = true;
      frame.name = registry.NameOf(id);
      ASSERT_TRUE(core->OnFrame(frame).ok());
    }
  }

  void FeedEvent(const char* type, Timestamp ts) {
    Frame frame;
    frame.type = FrameType::kEvent;
    frame.wire_type = static_cast<uint32_t>(registry.Find(type));
    frame.ts = ts;
    ASSERT_TRUE(core->OnFrame(frame).ok());
  }

  void FeedWatermark(Timestamp ts) {
    Frame frame;
    frame.type = FrameType::kWatermark;
    frame.ts = ts;
    ASSERT_TRUE(core->OnFrame(frame).ok());
  }

  /// Next event timestamp; bursts advance it so repeated bursts stay ahead
  /// of the watermark (events behind it would be dropped as late).
  Timestamp next_ts = 0;
};

void MakeCore(CoreBundle* bundle) {
  auto queries = ParseWorkloadText(kWorkload, &bundle->registry);
  ASSERT_TRUE(queries.ok()) << queries.status();
  bundle->queries = std::move(*queries);
  // Rates tuned so the rewriter accepts the q0->q1 prefix sharing: A/B are
  // common, C is rare, which makes reusing SEQ(A, B) clearly profitable.
  std::vector<std::pair<std::string, Timestamp>> sample;
  Timestamp sample_ts = 0;
  for (int i = 0; i < 600; ++i) {
    sample_ts += 6 + (i % 10);
    sample.emplace_back("A", sample_ts);
    sample.emplace_back("B", sample_ts + 2);
    if (i % 10 == 0) sample.emplace_back("C", sample_ts + 4);
  }
  StreamStats stats =
      ComputeStats(testing::MakeStream(&bundle->registry, sample));
  ServeOptions options;
  options.checkpoint_interval = 0;  // Only explicit Checkpoint() calls.
  options.metrics = &bundle->metrics;
  auto core = ServeCore::Create(bundle->queries, bundle->registry, stats,
                                std::move(options));
  ASSERT_TRUE(core.ok()) << core.status();
  bundle->core = std::move(*core);
}

/// A/B/C triples: plenty of q0/q1 matches, none for q2. Each triple emits 3
/// events; the burst ends with a watermark just past the widest window
/// (30 us) so every match is sealed before the next telemetry tick.
void FeedBurst(CoreBundle* bundle, int triples) {
  Timestamp ts = bundle->next_ts;
  for (int i = 0; i < triples; ++i) {
    bundle->FeedEvent("A", ts);
    bundle->FeedEvent("B", ts + 2);
    bundle->FeedEvent("C", ts + 4);
    ts += 9;
  }
  bundle->FeedWatermark(ts + 100);
  bundle->next_ts = ts + 101;
}

TEST(NodeQuerySetsTest, EverySinkOwnsItsNodeAndSharedNodesListAllOwners) {
  CoreBundle bundle;
  ASSERT_NO_FATAL_FAILURE(MakeCore(&bundle));
  const Jqp& jqp = bundle.core->jqp();
  std::vector<std::vector<size_t>> sets = NodeQuerySets(jqp);
  ASSERT_EQ(sets.size(), jqp.nodes.size());

  for (size_t q = 0; q < jqp.sinks.size(); ++q) {
    ASSERT_GE(jqp.sinks[q].node, 0);
    const std::vector<size_t>& owners =
        sets[static_cast<size_t>(jqp.sinks[q].node)];
    EXPECT_NE(std::find(owners.begin(), owners.end(), q), owners.end())
        << "sink " << q << " missing from its own node's owner set";
  }
  size_t shared_nodes = 0;
  for (const std::vector<size_t>& owners : sets) {
    // Owner lists are sorted and duplicate-free (DFS visits per query once).
    EXPECT_TRUE(std::is_sorted(owners.begin(), owners.end()));
    EXPECT_EQ(std::set<size_t>(owners.begin(), owners.end()).size(),
              owners.size());
    for (size_t q : owners) EXPECT_LT(q, jqp.sinks.size());
    if (owners.size() >= 2) ++shared_nodes;
  }
  // q0/q1/q2 all read the A input: the plan must share at least one node.
  EXPECT_GE(shared_nodes, 1u);
}

class ServeTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("motto-status-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ServeTelemetryTest, PerQueryHealthStatesAndOutboxLag) {
  CoreBundle bundle;
  ASSERT_NO_FATAL_FAILURE(MakeCore(&bundle));
  TelemetryOptions options;
  options.snapshot_interval_seconds = 0;  // Explicit force ticks only.
  ServeTelemetry telemetry(bundle.core.get(), options);

  bundle.FeedRegistrations();
  FeedBurst(&bundle, 40);
  telemetry.Tick(true);

  std::shared_ptr<const ServeStatus> status = telemetry.Latest();
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->ingested, 120u);
  ASSERT_EQ(status->queries.size(), 3u);
  const QueryHealth& q0 = status->queries[0];
  const QueryHealth& q1 = status->queries[1];
  const QueryHealth& q2 = status->queries[2];
  EXPECT_EQ(q0.name, "q0");
  EXPECT_GT(q0.matches, 0u);
  EXPECT_EQ(q0.state, "live");
  EXPECT_GT(q1.matches, 0u);
  EXPECT_EQ(q1.state, "live");
  EXPECT_EQ(q2.matches, 0u);
  EXPECT_EQ(q2.state, "starved");
  // Nothing checkpointed yet: every match is output-commit lag.
  EXPECT_EQ(q0.outbox_lag, q0.matches);
  EXPECT_GT(q0.last_emit_ts, 0);
  EXPECT_EQ(q2.last_emit_ts, std::numeric_limits<Timestamp>::min());

  // CPU attribution: shares are a partition of the whole plan's cost.
  double share_sum = 0.0;
  for (const QueryHealth& q : status->queries) {
    EXPECT_GE(q.cpu_share, 0.0);
    share_sum += q.cpu_share;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  ASSERT_EQ(status->nodes.size(), bundle.core->jqp().nodes.size());
  double node_sum = 0.0;
  for (const NodeHealth& n : status->nodes) {
    EXPECT_FALSE(n.label.empty());
    EXPECT_FALSE(n.queries.empty());
    node_sum += n.cost_share;
  }
  EXPECT_NEAR(node_sum, 1.0, 1e-9);

  // Checkpoint releases the outbox; lag returns to zero and the queries go
  // idle (matched before, nothing new this interval).
  ASSERT_TRUE(bundle.core->Checkpoint().ok());
  telemetry.Tick(true);
  status = telemetry.Latest();
  EXPECT_EQ(status->queries[0].outbox_lag, 0u);
  EXPECT_EQ(status->queries[0].released, status->queries[0].matches);
  EXPECT_EQ(status->queries[0].state, "idle");
  EXPECT_EQ(status->queries[2].state, "starved");
}

TEST_F(ServeTelemetryTest, StatsLogIsWellFormedJsonlWithMonotonicSeq) {
  CoreBundle bundle;
  ASSERT_NO_FATAL_FAILURE(MakeCore(&bundle));
  TelemetryOptions options;
  options.snapshot_interval_seconds = 0;
  options.stats_log_path = dir_ + "/stats.jsonl";
  ServeTelemetry telemetry(bundle.core.get(), options);
  ASSERT_TRUE(telemetry.status().ok()) << telemetry.status();

  bundle.FeedRegistrations();
  for (int round = 0; round < 4; ++round) {
    FeedBurst(&bundle, 5);
    telemetry.Tick(true);
  }

  std::ifstream log(options.stats_log_path);
  ASSERT_TRUE(log.good());
  std::string line;
  uint64_t last_seq = 0;
  uint64_t last_ingested = 0;
  size_t lines = 0;
  while (std::getline(log, line)) {
    ++lines;
    auto doc = JsonValue::Parse(line);
    ASSERT_TRUE(doc.ok()) << doc.status() << " line: " << line;
    uint64_t seq = static_cast<uint64_t>((*doc)["seq"].AsInt64());
    EXPECT_GT(seq, last_seq) << "stats log seq must be strictly monotone";
    last_seq = seq;
    uint64_t ingested = static_cast<uint64_t>((*doc)["ingested"].AsInt64());
    EXPECT_GE(ingested, last_ingested);
    last_ingested = ingested;
    EXPECT_TRUE((*doc)["queries"].is_array());
    EXPECT_EQ((*doc)["queries"].size(), 3u);
    EXPECT_TRUE((*doc)["metrics"]["counters"].is_object());
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_EQ(last_ingested, 60u);
  EXPECT_EQ(telemetry.snapshots_taken(), 4u);
}

TEST_F(ServeTelemetryTest, EventCountTriggerFiresWithoutTimer) {
  CoreBundle bundle;
  ASSERT_NO_FATAL_FAILURE(MakeCore(&bundle));
  TelemetryOptions options;
  options.snapshot_interval_seconds = 0;
  options.snapshot_every_events = 10;
  ServeTelemetry telemetry(bundle.core.get(), options);

  bundle.FeedRegistrations();
  telemetry.Tick(false);  // 0 new events: not due.
  EXPECT_EQ(telemetry.snapshots_taken(), 0u);
  EXPECT_EQ(telemetry.Latest(), nullptr);

  FeedBurst(&bundle, 3);  // 9 events: still below the trigger.
  telemetry.Tick(false);
  EXPECT_EQ(telemetry.snapshots_taken(), 0u);

  FeedBurst(&bundle, 3);  // 18 total: due now.
  telemetry.Tick(false);
  EXPECT_EQ(telemetry.snapshots_taken(), 1u);
  ASSERT_NE(telemetry.Latest(), nullptr);
  EXPECT_EQ(telemetry.Latest()->ingested, 18u);
}

// --- Golden expositions -----------------------------------------------------

/// A fully deterministic ServeStatus: every field pinned so the rendered
/// /statusz JSON and Prometheus text are byte-stable.
std::shared_ptr<ServeStatus> GoldenStatus() {
  auto snapshot = std::make_shared<obs::MetricsSnapshot>();
  snapshot->seq = 7;
  snapshot->wall_unix_seconds = 1700000000.125;
  snapshot->uptime_seconds = 12.5;
  snapshot->interval_seconds = 1.0;
  snapshot->counters["serve.ingested_events"].Add(13506);
  snapshot->counters["run.matches"].Add(311);
  snapshot->counters["node.0.events_in"].Add(9000);
  snapshot->counters["node.12.events_in"].Add(450);
  snapshot->deltas["serve.ingested_events"] = 1000;
  snapshot->rates["serve.ingested_events"] = 1000.0;
  snapshot->gauges["queue.depth"].Set(96.0);
  snapshot->gauges["queue.depth"].Set(3.0);  // value 3, high-water 96.
  obs::Histogram latency({0.001, 0.01, 0.1});
  latency.Record(0.002);
  latency.Record(0.0005);
  latency.Record(0.05);
  latency.Record(0.5);
  snapshot->histograms.emplace("serve.ingest_to_emit_seconds", latency);

  auto status = std::make_shared<ServeStatus>();
  status->snapshot = snapshot;
  status->ingested = 13506;
  status->watermark = 987654;
  status->checkpoints = 3;
  status->checkpoint_age_seconds = 1.25;
  status->watermark_idle_seconds = 0.5;
  status->connection = 1;
  status->recovered = true;
  status->recovery_imports_failed = 0;
  status->queue_depth = 3;
  status->queue_capacity = 4096;
  status->queue_max_depth = 96;
  status->queue_shed = 0;
  status->events_per_sec = 1000.0;
  status->matches_per_sec = 23.5;

  QueryHealth q0;
  q0.name = "q0";
  q0.state = "live";
  q0.matches = 2807;
  q0.released = 2800;
  q0.outbox_lag = 7;
  q0.last_emit_ts = 987000;
  q0.cpu_share = 0.625;
  QueryHealth q1;
  q1.name = "q1";
  q1.state = "starved";
  q1.cpu_share = 0.375;
  status->queries = {q0, q1};

  NodeHealth n0;
  n0.id = 0;
  n0.label = "SEQ(A, B)";
  n0.events_in = 9000;
  n0.events_out = 120;
  n0.cost_share = 0.75;
  n0.queries = {"q0"};
  NodeHealth n1;
  n1.id = 1;
  n1.label = "A";
  n1.events_in = 4500;
  n1.events_out = 4500;
  n1.cost_share = 0.25;
  n1.queries = {"q0", "q1"};
  status->nodes = {n0, n1};
  return status;
}

/// Byte-exact comparison against tests/golden/<name>; regenerate with
/// MOTTO_REGEN_GOLDENS=1 after an intentional format change.
void CompareGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(MOTTO_GOLDEN_DIR) + "/" + name;
  if (std::getenv("MOTTO_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with MOTTO_REGEN_GOLDENS=1)";
  std::string expected((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(actual, expected)
      << "golden mismatch for " << name
      << "; if the format change is intentional, rerun with "
         "MOTTO_REGEN_GOLDENS=1 and review the diff";
}

TEST(StatusGoldenTest, PrometheusExposition) {
  std::string text = GoldenStatus()->ToPrometheus();
  CompareGolden("status_metrics.prom", text);
  // Structural spot checks, independent of the golden bytes: node metrics
  // fold into one labeled family, counters carry the _total suffix.
  EXPECT_NE(text.find("motto_node_events_in_total{node=\"0\"} 9000"),
            std::string::npos);
  EXPECT_NE(text.find("motto_node_events_in_total{node=\"12\"} 450"),
            std::string::npos);
  EXPECT_NE(text.find("motto_serve_ingested_events_total 13506"),
            std::string::npos);
  EXPECT_NE(text.find("motto_query_matches_total{query=\"q0\"} 2807"),
            std::string::npos);
  EXPECT_NE(
      text.find("motto_serve_ingest_to_emit_seconds_bucket{le=\"+Inf\"} 4"),
      std::string::npos);
  EXPECT_NE(text.find("motto_up 1"), std::string::npos);
}

TEST(StatusGoldenTest, StatuszJson) {
  std::string json = GoldenStatus()->ToStatuszJson();
  CompareGolden("statusz.json", json);
  auto doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)["seq"].AsInt64(), 7);
  EXPECT_DOUBLE_EQ((*doc)["wall_unix_seconds"].AsDouble(), 1700000000.125);
  EXPECT_EQ((*doc)["ingested"].AsInt64(), 13506);
  EXPECT_TRUE((*doc)["healthy"].AsBool());
  EXPECT_EQ((*doc)["queries"].size(), 2u);
  EXPECT_EQ((*doc)["queries"].array()[1]["state"].AsString(), "starved");
  // q1 never emitted: its timestamp is null, not a sentinel number.
  EXPECT_TRUE((*doc)["queries"].array()[1]["last_emit_ts"].is_null());
  EXPECT_EQ((*doc)["nodes"].array()[1]["queries"].size(), 2u);
  EXPECT_EQ(
      (*doc)["metrics"]["counters"]["serve.ingested_events"].AsInt64(),
      13506);
}

TEST(StatusHealthTest, StallAndSaturationTurnUnhealthyWithReasons) {
  std::shared_ptr<ServeStatus> status = GoldenStatus();
  std::string reason;
  EXPECT_TRUE(status->Healthy(&reason));
  EXPECT_TRUE(reason.empty());

  status->watermark_stalled = true;
  status->watermark_idle_seconds = 9.5;
  EXPECT_FALSE(status->Healthy(&reason));
  EXPECT_NE(reason.find("stalled"), std::string::npos);

  status->watermark_stalled = false;
  status->queue_saturated = true;
  status->queue_depth = status->queue_capacity;
  EXPECT_FALSE(status->Healthy(&reason));
  EXPECT_NE(reason.find("saturated"), std::string::npos);
  EXPECT_NE(std::string(GoldenStatus()->ToStatuszJson())
                .find("\"healthy\":true"),
            std::string::npos);
  EXPECT_NE(status->ToStatuszJson().find("\"healthy\":false"),
            std::string::npos);
}

// --- StatusServer (HTTP) ----------------------------------------------------

/// Minimal HTTP/1.0 GET; returns the status code, body via out-param.
int HttpGet(int port, const std::string& path, std::string* body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return -1;
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t sp = response.find(' ');
  if (sp == std::string::npos) return -1;
  int code = std::atoi(response.c_str() + sp + 1);
  if (body != nullptr) {
    size_t end = response.find("\r\n\r\n");
    *body = end == std::string::npos ? "" : response.substr(end + 4);
  }
  return code;
}

TEST(StatusServerTest, RoutesAndStatusCodes) {
  std::mutex mu;
  std::shared_ptr<const ServeStatus> published;
  auto source = [&]() {
    std::lock_guard<std::mutex> lock(mu);
    return published;
  };
  auto server = StatusServer::Start(0, source);
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();
  ASSERT_GT(port, 0);

  // Nothing published yet: every route is 503.
  std::string body;
  EXPECT_EQ(HttpGet(port, "/metrics", &body), 503);
  EXPECT_EQ(HttpGet(port, "/healthz", &body), 503);

  {
    std::lock_guard<std::mutex> lock(mu);
    published = GoldenStatus();
  }
  EXPECT_EQ(HttpGet(port, "/metrics", &body), 200);
  EXPECT_NE(body.find("motto_up 1"), std::string::npos);
  EXPECT_EQ(HttpGet(port, "/statusz", &body), 200);
  auto doc = JsonValue::Parse(
      body.substr(0, body.find_last_not_of('\n') + 1));
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)["ingested"].AsInt64(), 13506);
  EXPECT_EQ(HttpGet(port, "/healthz", &body), 200);
  EXPECT_NE(body.find("\"healthy\":true"), std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_EQ(HttpGet(port, "/healthz?verbose=1", &body), 200);
  EXPECT_EQ(HttpGet(port, "/nope", &body), 404);

  // An unhealthy status flips /healthz to 503 with the reason in the body.
  {
    std::lock_guard<std::mutex> lock(mu);
    auto sick = GoldenStatus();
    sick->queue_saturated = true;
    published = std::move(sick);
  }
  EXPECT_EQ(HttpGet(port, "/healthz", &body), 503);
  EXPECT_NE(body.find("saturated"), std::string::npos);

  (*server)->Stop();
  (*server)->Stop();  // Idempotent.
}

// The tsan slice's serve-telemetry case: one engine thread feeding frames
// and ticking telemetry, two scraper threads hammering the HTTP endpoint.
// The only shared state is the published shared_ptr swap.
TEST(StatusServerTest, ConcurrentScrapeDuringIngest) {
  CoreBundle bundle;
  ASSERT_NO_FATAL_FAILURE(MakeCore(&bundle));
  TelemetryOptions options;
  options.snapshot_interval_seconds = 0;
  ServeTelemetry telemetry(bundle.core.get(), options);
  auto server =
      StatusServer::Start(0, [&telemetry] { return telemetry.Latest(); });
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();

  bundle.FeedRegistrations();
  std::vector<std::thread> scrapers;
  std::vector<int> ok_scrapes(2, 0);
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([port, t, &ok_scrapes] {
      const char* path = t == 0 ? "/metrics" : "/statusz";
      for (int i = 0; i < 40; ++i) {
        std::string body;
        int code = HttpGet(port, path, &body);
        if (code == 200 && !body.empty()) ++ok_scrapes[t];
      }
    });
  }
  for (int round = 0; round < 30; ++round) {
    FeedBurst(&bundle, 10);
    telemetry.Tick(true);
  }
  for (std::thread& scraper : scrapers) scraper.join();
  (*server)->Stop();

  // Scrapes before the first Tick see 503; after it they must succeed.
  EXPECT_GT(ok_scrapes[0] + ok_scrapes[1], 0);
  std::shared_ptr<const ServeStatus> last = telemetry.Latest();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->ingested, 900u);
  EXPECT_GT(last->queries[0].matches, 0u);
}

}  // namespace
}  // namespace motto
