// PartitionPlan structure tests: connected components over JQP input edges,
// LPT packing when components outnumber shards, time-slice replication when
// shards outnumber components, and the horizon / weight bookkeeping the
// sharded executor's correctness rests on (DESIGN.md §12).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/partition.h"
#include "engine/plan_util.h"

namespace motto {
namespace {

FlatQuery MakeQuery(const std::string& name, PatternOp op,
                    std::vector<EventTypeId> operands, Duration window) {
  FlatQuery query;
  query.name = name;
  query.window = window;
  query.pattern.op = op;
  query.pattern.operands = std::move(operands);
  return query;
}

/// Four independent two-operand SEQ queries over disjoint types.
Jqp MakeIndependentJqp(EventTypeRegistry* registry, int queries = 4) {
  std::vector<FlatQuery> workload;
  for (int q = 0; q < queries; ++q) {
    EventTypeId a =
        registry->RegisterPrimitive("A" + std::to_string(q));
    EventTypeId b =
        registry->RegisterPrimitive("B" + std::to_string(q));
    workload.push_back(MakeQuery("q" + std::to_string(q), PatternOp::kSeq,
                                 {a, b}, Millis(10 * (q + 1))));
  }
  return BuildDefaultJqp(workload, registry);
}

TEST(PartitionTest, IndependentQueriesBecomeSeparateComponents) {
  EventTypeRegistry registry;
  Jqp jqp = MakeIndependentJqp(&registry);
  PartitionPlan plan = PartitionPlan::Build(jqp, 4);

  ASSERT_EQ(plan.components.size(), 4u);
  ASSERT_EQ(plan.shards.size(), 4u);
  EXPECT_EQ(plan.groups, 4);
  EXPECT_TRUE(plan.PureComponentPartition());
  for (const PartitionComponent& comp : plan.components) {
    EXPECT_EQ(comp.nodes.size(), 1u);
    EXPECT_EQ(comp.sinks.size(), 1u);
  }
  // Horizon is the component's max pattern window.
  EXPECT_EQ(plan.components[0].horizon, Millis(10));
  EXPECT_EQ(plan.components[3].horizon, Millis(40));
  // Every component lands on exactly one shard.
  std::vector<int> seen(plan.components.size(), 0);
  for (const ShardSpec& shard : plan.shards) {
    EXPECT_EQ(shard.time_slices, 1);
    for (int32_t c : shard.components) ++seen[static_cast<size_t>(c)];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(PartitionTest, InputEdgesMergeComponents) {
  EventTypeRegistry registry;
  std::vector<FlatQuery> workload;
  EventTypeId a = registry.RegisterPrimitive("A");
  EventTypeId b = registry.RegisterPrimitive("B");
  EventTypeId c = registry.RegisterPrimitive("C");
  workload.push_back(MakeQuery("q0", PatternOp::kSeq, {a, b}, Millis(50)));
  workload.push_back(MakeQuery("q1", PatternOp::kSeq, {b, c}, Millis(20)));
  Jqp jqp = BuildDefaultJqp(workload, &registry);

  // Chain a consumer of q0's composite: its node joins q0's component even
  // though q0 and q1 read overlapping raw types (type overlap alone does
  // not connect components — replicas each see the whole raw stream).
  const auto& up = std::get<PatternSpec>(jqp.nodes[0].spec);
  PatternSpec down;
  down.op = PatternOp::kSeq;
  down.window = Millis(80);
  down.operands = {OperandBinding{{up.output_type}, 1, {0, 1}, {}},
                   OperandBinding{{c}, kRawChannel, {2}, {}}};
  down.output_type = registry.RegisterComposite("chained");
  JqpNode down_node;
  down_node.spec = down;
  down_node.inputs = {0};
  int32_t chained = jqp.AddNode(std::move(down_node));
  jqp.sinks.push_back(Jqp::Sink{"chained", chained});

  PartitionPlan plan = PartitionPlan::Build(jqp, 2);
  ASSERT_EQ(plan.components.size(), 2u);
  EXPECT_EQ(plan.components[0].nodes,
            (std::vector<int32_t>{0, chained}));
  EXPECT_EQ(plan.components[0].sinks.size(), 2u);
  // Chained node's wider window dominates the component horizon; windows do
  // not accumulate along the chain (the matcher's guard covers the full
  // constituent history).
  EXPECT_EQ(plan.components[0].horizon, Millis(80));
  EXPECT_EQ(plan.components[1].horizon, Millis(20));
}

TEST(PartitionTest, LptPackingBalancesWeights) {
  EventTypeRegistry registry;
  Jqp jqp = MakeIndependentJqp(&registry, 5);
  // Bias component 0 to outweigh the rest combined: it must sit alone.
  std::vector<double> weights(jqp.nodes.size(), 1.0);
  weights[0] = 100.0;
  PartitionPlan plan = PartitionPlan::Build(jqp, 2, &weights);

  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_TRUE(plan.PureComponentPartition());
  const ShardSpec* heavy = nullptr;
  const ShardSpec* light = nullptr;
  for (const ShardSpec& shard : plan.shards) {
    bool has_zero = false;
    for (int32_t c : shard.components) has_zero |= c == 0;
    (has_zero ? heavy : light) = &shard;
  }
  ASSERT_NE(heavy, nullptr);
  ASSERT_NE(light, nullptr);
  EXPECT_EQ(heavy->components.size(), 1u);
  EXPECT_EQ(light->components.size(), 4u);
}

TEST(PartitionTest, SingleComponentSplitsIntoTimeSlices) {
  EventTypeRegistry registry;
  Jqp jqp = MakeIndependentJqp(&registry, 1);
  PartitionPlan plan = PartitionPlan::Build(jqp, 4);

  EXPECT_EQ(plan.groups, 1);
  ASSERT_EQ(plan.shards.size(), 4u);
  EXPECT_FALSE(plan.PureComponentPartition());
  for (int k = 0; k < 4; ++k) {
    const ShardSpec& shard = plan.shards[static_cast<size_t>(k)];
    EXPECT_EQ(shard.group, 0);
    EXPECT_EQ(shard.time_slices, 4);
    EXPECT_EQ(shard.slice_index, k);
    EXPECT_EQ(shard.horizon, Millis(10));
  }
}

TEST(PartitionTest, ExtraSlicesGoToHeaviestGroups) {
  EventTypeRegistry registry;
  Jqp jqp = MakeIndependentJqp(&registry, 2);
  std::vector<double> weights(jqp.nodes.size(), 1.0);
  weights[0] = 30.0;  // Component 0 is ~30x heavier.
  PartitionPlan plan = PartitionPlan::Build(jqp, 6, &weights);

  EXPECT_EQ(plan.groups, 2);
  ASSERT_EQ(plan.shards.size(), 6u);
  int slices_heavy = 0;
  int slices_light = 0;
  for (const ShardSpec& shard : plan.shards) {
    (shard.group == 0 ? slices_heavy : slices_light) += 1;
  }
  EXPECT_EQ(slices_heavy, 5);
  EXPECT_EQ(slices_light, 1);
}

TEST(PartitionTest, BuildIsDeterministicAndJsonWellFormed) {
  EventTypeRegistry registry;
  Jqp jqp = MakeIndependentJqp(&registry, 3);
  PartitionPlan a = PartitionPlan::Build(jqp, 8);
  PartitionPlan b = PartitionPlan::Build(jqp, 8);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.shards.size(), 8u);
  EXPECT_NE(a.ToJson().find("\"assignments\""), std::string::npos);
  EXPECT_NE(a.ToString(jqp).find("partition: 3 components"),
            std::string::npos);
}

TEST(PartitionTest, EmptyPlanHasNoShards) {
  Jqp jqp;
  PartitionPlan plan = PartitionPlan::Build(jqp, 4);
  EXPECT_TRUE(plan.components.empty());
  EXPECT_TRUE(plan.shards.empty());
}

}  // namespace
}  // namespace motto
