// Online query churn (DESIGN.md §14): churn-script parsing, the
// WorkloadSession incremental re-optimizer (regional pinned re-solve,
// prune-only removal, physical-key stability), matcher state
// export/import round-trips across executor sessions (eager partials,
// lazy buffers, negation history, pending deferred matches), and the
// end-to-end RunChurn visibility guarantees on a hand-built case.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "engine/runtime.h"
#include "event/stream.h"
#include "motto/churn.h"
#include "motto/optimizer.h"
#include "test_util.h"
#include "workload/io.h"

namespace motto {
namespace {

using testing::Fingerprints;
using testing::MakeStream;
using testing::MatchSet;

// ---------------------------------------------------------------------------
// Script parsing.

TEST(ChurnScriptTest, ParsesAddsRemovesAndComments) {
  EventTypeRegistry registry;
  auto script = ParseChurnScript(
      "# workload churn\n"
      "\n"
      "100 add spike: SELECT * FROM s MATCHING [10 us : SEQ(A, B)]\n"
      "100 add dip: SELECT * FROM s MATCHING [5 us : CONJ(A & C)]\n"
      "250 remove spike  # retired\n",
      &registry);
  ASSERT_TRUE(script.ok()) << script.status();
  ASSERT_EQ(script->commands.size(), 3u);
  EXPECT_EQ(script->commands[0].ts, 100);
  EXPECT_TRUE(script->commands[0].add);
  EXPECT_EQ(script->commands[0].name, "spike");
  EXPECT_EQ(script->commands[0].query.name, "spike");
  EXPECT_EQ(script->commands[0].query.window, 10);
  EXPECT_TRUE(script->commands[1].add);
  EXPECT_EQ(script->commands[1].name, "dip");
  EXPECT_FALSE(script->commands[2].add);
  EXPECT_EQ(script->commands[2].ts, 250);
  EXPECT_EQ(script->commands[2].name, "spike");
}

TEST(ChurnScriptTest, RejectsMalformedLines) {
  EventTypeRegistry registry;
  struct Bad {
    const char* text;
    const char* expect;
  };
  const Bad cases[] = {
      {"abc add q: SELECT * FROM s MATCHING [1 us : SEQ(A, B)]",
       "bad timestamp"},
      {"100 add q SEQ(A, B)", "add needs '<name>: <query>'"},
      {"100 add : SELECT * FROM s MATCHING [1 us : SEQ(A, B)]",
       "add needs a query name"},
      {"100 remove", "remove needs a query name"},
      {"100 drop q", "unknown command 'drop'"},
      {"100 add q: not ccl at all", ""},
  };
  for (const Bad& bad : cases) {
    auto script = ParseChurnScript(bad.text, &registry);
    ASSERT_FALSE(script.ok()) << bad.text;
    EXPECT_NE(script.status().ToString().find("churn script line 1"),
              std::string::npos)
        << script.status();
    EXPECT_NE(script.status().ToString().find(bad.expect), std::string::npos)
        << script.status();
  }
}

TEST(ChurnScriptTest, RejectsDecreasingTimestamps) {
  EventTypeRegistry registry;
  auto script = ParseChurnScript(
      "200 add q: SELECT * FROM s MATCHING [1 us : SEQ(A, B)]\n"
      "100 remove q\n",
      &registry);
  ASSERT_FALSE(script.ok());
  EXPECT_NE(script.status().ToString().find("nondecreasing"),
            std::string::npos)
      << script.status();
}

TEST(ChurnScriptTest, LoadRejectsMissingFile) {
  EventTypeRegistry registry;
  auto script = LoadChurnScript("/nonexistent/churn.script", &registry);
  ASSERT_FALSE(script.ok());
  EXPECT_NE(script.status().ToString().find("cannot read churn script"),
            std::string::npos);
}

TEST(ChurnScriptTest, UserQueryOfStripsDivisionSuffix) {
  EXPECT_EQ(UserQueryOf("spike"), "spike");
  EXPECT_EQ(UserQueryOf("spike#in0"), "spike");
  EXPECT_EQ(UserQueryOf("spike#in0#in1"), "spike");
}

// ---------------------------------------------------------------------------
// WorkloadSession: incremental re-optimization.

std::vector<Query> ParseWorkload(const std::string& text,
                                 EventTypeRegistry* registry) {
  auto queries = ParseWorkloadText(text, registry);
  EXPECT_TRUE(queries.ok()) << queries.status();
  return queries.ok() ? *queries : std::vector<Query>{};
}

/// A stream with a few events of every type the tests mention, so the cost
/// model sees nonzero rates for each.
EventStream SessionStream(EventTypeRegistry* registry,
                          const std::vector<std::string>& types) {
  std::vector<std::pair<std::string, Timestamp>> events;
  Timestamp ts = 1;
  for (int round = 0; round < 4; ++round) {
    for (const std::string& type : types) {
      events.emplace_back(type, ts);
      ts += 3;
    }
  }
  return MakeStream(registry, std::move(events));
}

OptimizerOptions MottoOptions() {
  OptimizerOptions options;
  options.mode = OptimizerMode::kMotto;
  return options;
}

TEST(WorkloadSessionTest, RequiresMottoMode) {
  EventTypeRegistry registry;
  auto queries = ParseWorkload(
      "q0: SELECT * FROM s MATCHING [10 us : SEQ(A, B)]\n", &registry);
  EventStream stream = SessionStream(&registry, {"A", "B"});
  OptimizerOptions na;
  na.mode = OptimizerMode::kNa;
  WorkloadSession session(&registry, ComputeStats(stream), na);
  Status status = session.Initialize(queries);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("mode=motto"), std::string::npos);
}

TEST(WorkloadSessionTest, AddExtendsGraphAndRemovePrunes) {
  EventTypeRegistry registry;
  auto queries = ParseWorkload(
      "q0: SELECT * FROM s MATCHING [20 us : SEQ(A, B, C)]\n"
      "q1: SELECT * FROM s MATCHING [20 us : SEQ(A, B, D)]\n",
      &registry);
  EventStream stream = SessionStream(&registry, {"A", "B", "C", "D"});
  WorkloadSession session(&registry, ComputeStats(stream), MottoOptions());
  ASSERT_TRUE(session.Initialize(queries).ok());
  const size_t nodes_before = session.graph().nodes.size();
  std::vector<std::string> keys_before = session.PhysicalKeys();

  // Errors: double-add, unknown remove.
  auto dup = session.AddQuery(queries[0]);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().ToString().find("already live"), std::string::npos);
  auto missing = session.RemoveQuery("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("unknown query"),
            std::string::npos);

  // Add a sharing-friendly sibling: graph extends in place, decision stays
  // valid, and every pre-existing physical identity survives the rebuild.
  auto added = ParseWorkload(
      "q2: SELECT * FROM s MATCHING [20 us : SEQ(A, B, C, D)]\n", &registry);
  ASSERT_EQ(added.size(), 1u);
  auto stats = session.AddQuery(added[0]);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->added);
  EXPECT_EQ(stats->query, "q2");
  EXPECT_GT(stats->graph_nodes, nodes_before);
  EXPECT_GT(stats->region_nodes, 0u);
  EXPECT_EQ(stats->pinned_nodes + stats->free_nodes, stats->region_nodes);
  EXPECT_GT(stats->free_nodes, 0u);
  EXPECT_GT(stats->plan_cost, 0.0);
  EXPECT_TRUE(session.HasQuery("q2"));
  std::vector<std::string> keys_after = session.PhysicalKeys();
  std::set<std::string> after_set(keys_after.begin(), keys_after.end());
  for (const std::string& key : keys_before) {
    EXPECT_TRUE(after_set.count(key))
        << "surviving node lost its physical identity: " << key;
  }
  bool q2_sink = false;
  for (const Jqp::Sink& sink : session.jqp().sinks) {
    if (UserQueryOf(sink.query_name) == "q2") q2_sink = true;
  }
  EXPECT_TRUE(q2_sink);

  // Removal prunes without re-solving; the removed sink disappears and the
  // remaining physical keys are a subset of what ran before.
  auto removed = session.RemoveQuery("q2");
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_FALSE(removed->added);
  EXPECT_EQ(removed->region_nodes, 0u);
  EXPECT_EQ(removed->free_nodes, 0u);
  EXPECT_FALSE(session.HasQuery("q2"));
  for (const Jqp::Sink& sink : session.jqp().sinks) {
    EXPECT_NE(UserQueryOf(sink.query_name), "q2");
  }
  std::set<std::string> final_set;
  for (const std::string& key : session.PhysicalKeys()) {
    final_set.insert(key);
    EXPECT_TRUE(after_set.count(key))
        << "removal introduced a fresh node: " << key;
  }
  EXPECT_EQ(session.QueryNames(),
            (std::vector<std::string>{"q0", "q1"}));
}

TEST(WorkloadSessionTest, AddResolvesOnlyTheTouchedRegion) {
  // 20 queries over disjoint type families: the sharing graph splits into
  // 20 unconnected components. Adding a query that shares family 0's types
  // must re-solve only that component, not the whole graph — this is the
  // incrementality the online path exists for.
  EventTypeRegistry registry;
  std::string text;
  std::vector<std::string> types;
  for (int family = 0; family < 20; ++family) {
    std::string a = "F" + std::to_string(family) + "A";
    std::string b = "F" + std::to_string(family) + "B";
    std::string c = "F" + std::to_string(family) + "C";
    text += "q" + std::to_string(family) +
            ": SELECT * FROM s MATCHING [30 us : SEQ(" + a + ", " + b + ", " +
            c + ")]\n";
    types.push_back(a);
    types.push_back(b);
    types.push_back(c);
  }
  auto queries = ParseWorkload(text, &registry);
  ASSERT_EQ(queries.size(), 20u);
  EventStream stream = SessionStream(&registry, types);
  WorkloadSession session(&registry, ComputeStats(stream), MottoOptions());
  ASSERT_TRUE(session.Initialize(queries).ok());

  auto added = ParseWorkload(
      "hot: SELECT * FROM s MATCHING [30 us : SEQ(F0A, F0B)]\n", &registry);
  auto stats = session.AddQuery(added[0]);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->region_nodes, 0u);
  EXPECT_LT(stats->region_nodes, stats->graph_nodes)
      << "regional re-solve touched the whole graph";
  // The untouched 19 families dominate the graph, so the region must stay
  // well under half of it.
  EXPECT_LT(stats->region_nodes * 2, stats->graph_nodes);
}

// ---------------------------------------------------------------------------
// Matcher state export/import across executor sessions.

/// Feeds `stream` split at the first event with begin() >= boundary through
/// two executors with a full state handoff in between, and returns the
/// merged per-sink fingerprints. Expects every import to succeed.
std::map<std::string, MatchSet> SplitRun(const Jqp& jqp,
                                         const EventStream& stream,
                                         Timestamp boundary,
                                         const ExecutorOptions& options) {
  auto split = std::partition_point(
      stream.begin(), stream.end(),
      [boundary](const Event& e) { return e.begin() < boundary; });
  const size_t prefix = static_cast<size_t>(split - stream.begin());

  auto first = Executor::Create(jqp);
  EXPECT_TRUE(first.ok()) << first.status();
  first->BeginSession(options);
  first->FeedSession(stream.data(), prefix);
  first->FlushSessionAt(boundary);
  RunResult seg1 = first->SuspendSession();

  auto second = Executor::Create(jqp);
  EXPECT_TRUE(second.ok()) << second.status();
  second->BeginSession(options);
  size_t stateful = 0;
  for (int32_t node = 0; node < static_cast<int32_t>(jqp.nodes.size());
       ++node) {
    NodeState state;
    first->runtime(node)->ExportState(&state);
    if (!state.stateless) ++stateful;
    EXPECT_TRUE(second->runtime(node)->ImportState(state))
        << "import failed for node " << node;
  }
  EXPECT_GT(stateful, 0u) << "boundary carried no live state; the round-trip "
                             "test is vacuous";
  second->FeedSession(stream.data() + prefix, stream.size() - prefix);
  RunResult seg2 = second->FinishSession();

  std::map<std::string, MatchSet> merged;
  for (const RunResult* seg : {&seg1, &seg2}) {
    for (const auto& [sink, events] : seg->sink_events) {
      MatchSet set = Fingerprints(events);
      merged[sink].insert(set.begin(), set.end());
    }
  }
  return merged;
}

/// Workload exercising every state family: eager SEQ partials, CONJ, a
/// negation root (pending deferred matches + negated-event history).
constexpr char kStatefulWorkload[] =
    "q0: SELECT * FROM s MATCHING [30 us : SEQ(A, B, C)]\n"
    "q1: SELECT * FROM s MATCHING [25 us : CONJ(A & D)]\n"
    "q2: SELECT * FROM s MATCHING [20 us : SEQ(A, B, NEG(E))]\n";

EventStream StatefulStream(EventTypeRegistry* registry) {
  std::vector<std::pair<std::string, Timestamp>> events;
  const char* cycle[] = {"A", "B", "D", "A", "C", "E", "B", "A", "D", "C"};
  Timestamp ts = 0;
  for (int round = 0; round < 12; ++round) {
    for (const char* type : cycle) {
      events.emplace_back(type, ts);
      ts += (ts % 3) + 1;  // Irregular gaps, some short enough to overlap.
    }
  }
  return MakeStream(registry, std::move(events));
}

void CheckSplitRunEquivalence(EvalOrderMode mode) {
  EventTypeRegistry registry;
  auto queries = ParseWorkload(kStatefulWorkload, &registry);
  EventStream stream = StatefulStream(&registry);
  Optimizer optimizer(&registry, ComputeStats(stream), MottoOptions());
  auto outcome = optimizer.Optimize(queries);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  ExecutorOptions options;
  options.eval_order = mode;
  auto reference_exec = Executor::Create(outcome->jqp);
  ASSERT_TRUE(reference_exec.ok()) << reference_exec.status();
  auto reference = reference_exec->Run(stream, options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Split at several boundaries, including mid-window ones where partials,
  // buffers and pending matches straddle the handoff.
  const Timestamp last = stream.back().begin();
  for (Timestamp boundary :
       {last / 4, last / 2, last / 2 + 1, (3 * last) / 4}) {
    std::map<std::string, MatchSet> merged =
        SplitRun(outcome->jqp, stream, boundary, options);
    for (const auto& [sink, events] : reference->sink_events) {
      MatchSet expect = Fingerprints(events);
      EXPECT_EQ(merged[sink], expect)
          << "sink " << sink << " diverged at boundary " << boundary;
    }
  }
}

TEST(StateMigrationTest, SplitRunEqualsUninterruptedArrival) {
  CheckSplitRunEquivalence(EvalOrderMode::kArrival);
}

TEST(StateMigrationTest, SplitRunEqualsUninterruptedLazy) {
  // Selectivity order runs the lazy chain: buffered operand events and lazy
  // runs (with per-operand bound intervals) must survive the handoff too.
  CheckSplitRunEquivalence(EvalOrderMode::kSelectivity);
}

TEST(StateMigrationTest, ImportRejectsEvalModeMismatch) {
  EventTypeRegistry registry;
  auto queries = ParseWorkload(kStatefulWorkload, &registry);
  EventStream stream = StatefulStream(&registry);
  Optimizer optimizer(&registry, ComputeStats(stream), MottoOptions());
  auto outcome = optimizer.Optimize(queries);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  ExecutorOptions arrival;
  arrival.eval_order = EvalOrderMode::kArrival;
  auto first = Executor::Create(outcome->jqp);
  ASSERT_TRUE(first.ok()) << first.status();
  first->BeginSession(arrival);
  first->FeedSession(stream.data(), stream.size() / 2);
  first->SuspendSession();

  ExecutorOptions lazy;
  lazy.eval_order = EvalOrderMode::kSelectivity;
  auto second = Executor::Create(outcome->jqp);
  ASSERT_TRUE(second.ok()) << second.status();
  second->BeginSession(lazy);
  bool any_rejected = false;
  for (int32_t node = 0;
       node < static_cast<int32_t>(outcome->jqp.nodes.size()); ++node) {
    NodeState state;
    first->runtime(node)->ExportState(&state);
    if (state.stateless) continue;
    // A snapshot only fits the evaluation strategy that produced it.
    if (!second->runtime(node)->ImportState(state)) any_rejected = true;
  }
  EXPECT_TRUE(any_rejected);
  second->FinishSession();
}

TEST(StateMigrationTest, ImportRejectsMalformedState) {
  EventTypeRegistry registry;
  auto queries = ParseWorkload(
      "q0: SELECT * FROM s MATCHING [30 us : SEQ(A, B, C)]\n", &registry);
  EventStream stream = SessionStream(&registry, {"A", "B", "C"});
  Optimizer optimizer(&registry, ComputeStats(stream), MottoOptions());
  auto outcome = optimizer.Optimize(queries);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  auto exec = Executor::Create(outcome->jqp);
  ASSERT_TRUE(exec.ok()) << exec.status();
  exec->BeginSession();
  for (int32_t node = 0;
       node < static_cast<int32_t>(outcome->jqp.nodes.size()); ++node) {
    NodeState bogus;
    bogus.stateless = false;
    bogus.partials.push_back(NodePartialState{});
    bogus.partials.back().state = 9999;  // Out of range for any matcher.
    NodeState probe;
    exec->runtime(node)->ExportState(&probe);
    if (probe.stateless) continue;  // Filters ignore snapshots entirely.
    EXPECT_FALSE(exec->runtime(node)->ImportState(bogus))
        << "node " << node << " accepted a corrupt snapshot";
  }
  exec->FinishSession();
}

// ---------------------------------------------------------------------------
// RunChurn end-to-end visibility guarantees on a deterministic case.

TEST(RunChurnTest, AddAndRemoveVisibilityWindows) {
  EventTypeRegistry registry;
  // One (A, B) pair every 10 us: A@t, B@t+2 for t = 10..200, so SEQ(A, B)
  // with a 5 us window matches exactly once per pair, sealed at B's arrival.
  std::vector<std::pair<std::string, Timestamp>> raw;
  for (Timestamp t = 10; t <= 200; t += 10) {
    raw.emplace_back("A", t);
    raw.emplace_back("B", t + 2);
  }
  EventStream stream = MakeStream(&registry, std::move(raw));
  auto initial = ParseWorkload(
      "q0: SELECT * FROM s MATCHING [5 us : SEQ(A, B)]\n", &registry);
  auto script = ParseChurnScript(
      "100 add q1: SELECT * FROM s MATCHING [5 us : SEQ(A, B)]\n"
      "150 remove q0\n",
      &registry);
  ASSERT_TRUE(script.ok()) << script.status();

  auto outcome =
      RunChurn(initial, *script, stream, &registry, MottoOptions());
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  // Live windows: q0 = [always, 150), q1 = [100, never).
  ASSERT_EQ(outcome->windows.size(), 2u);
  EXPECT_EQ(outcome->windows.at("q0"),
            (std::pair<Timestamp, Timestamp>{kAlwaysLive, 150}));
  EXPECT_EQ(outcome->windows.at("q1"),
            (std::pair<Timestamp, Timestamp>{100, kNeverRemoved}));

  // q0 sees pairs t = 10..140 (its last event before removal is B@142);
  // q1, added at 100, sees exactly the pairs built wholly from events at or
  // after 100: t = 100..200.
  const auto& sinks = outcome->result.sink_events;
  ASSERT_TRUE(sinks.count("q0"));
  ASSERT_TRUE(sinks.count("q1"));
  EXPECT_EQ(sinks.at("q0").size(), 14u);
  EXPECT_EQ(sinks.at("q1").size(), 11u);
  for (const Event& e : sinks.at("q1")) {
    EXPECT_GE(e.begin(), 100) << "added query saw a pre-add constituent";
  }
  for (const Event& e : sinks.at("q0")) {
    EXPECT_LT(e.begin(), 150) << "removed query emitted past its removal";
  }

  // Telemetry: one re-plan per command, two hot swaps, state carried over.
  ASSERT_EQ(outcome->reoptimizations.size(), 2u);
  EXPECT_TRUE(outcome->reoptimizations[0].added);
  EXPECT_GT(outcome->reoptimizations[0].region_nodes, 0u);
  EXPECT_FALSE(outcome->reoptimizations[1].added);
  EXPECT_EQ(outcome->reoptimizations[1].region_nodes, 0u);
  EXPECT_EQ(outcome->migration.swaps, 2u);
  EXPECT_GT(outcome->migration.nodes_kept, 0u);
  EXPECT_EQ(outcome->migration.imports_failed, 0u);
  EXPECT_EQ(outcome->result.raw_events, stream.size());
}

TEST(RunChurnTest, RejectsUnknownRemoveAndNonMottoMode) {
  EventTypeRegistry registry;
  auto initial = ParseWorkload(
      "q0: SELECT * FROM s MATCHING [5 us : SEQ(A, B)]\n", &registry);
  EventStream stream = SessionStream(&registry, {"A", "B"});
  auto script = ParseChurnScript("50 remove ghost\n", &registry);
  ASSERT_TRUE(script.ok()) << script.status();
  auto outcome =
      RunChurn(initial, *script, stream, &registry, MottoOptions());
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().ToString().find("unknown query"),
            std::string::npos);

  OptimizerOptions na;
  na.mode = OptimizerMode::kNa;
  auto bad_mode =
      RunChurn(initial, ChurnScript{}, stream, &registry, na);
  ASSERT_FALSE(bad_mode.ok());
  EXPECT_NE(bad_mode.status().ToString().find("mode=motto"),
            std::string::npos);
}

}  // namespace
}  // namespace motto
