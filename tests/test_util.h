#ifndef MOTTO_TESTS_TEST_UTIL_H_
#define MOTTO_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ccl/pattern.h"
#include "event/event.h"
#include "event/stream.h"

namespace motto::testing {

/// Builds a sorted primitive stream from (type name, timestamp) pairs,
/// registering names as primitive types.
inline EventStream MakeStream(
    EventTypeRegistry* registry,
    std::vector<std::pair<std::string, Timestamp>> events) {
  EventStream stream;
  stream.reserve(events.size());
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     return a.second < b.second;
                   });
  for (const auto& [name, ts] : events) {
    stream.push_back(Event::Primitive(registry->RegisterPrimitive(name), ts));
  }
  return stream;
}

/// Multiset of match identities, the canonical comparison unit for
/// plan-equivalence tests.
using MatchSet = std::multiset<std::string>;

inline MatchSet Fingerprints(const std::vector<Event>& events) {
  MatchSet out;
  for (const Event& e : events) out.insert(e.Fingerprint());
  return out;
}

/// Brute-force reference semantics for one flat pattern over a stream:
/// enumerates operand assignments (distinct events, one per operand
/// position), applying the SEQ order guard, the window span guard,
/// per-operand payload predicates and window-scoped negation (with optional
/// per-negation predicates). DISJ emits each event accepted by an operand.
/// Either predicate vector may be empty (no restrictions) or parallel its
/// operand list. Exponential; use only on small streams.
inline MatchSet ReferenceMatches(
    const FlatPattern& flat, Duration window, const EventStream& stream,
    const std::vector<Predicate>& operand_predicates,
    const std::vector<Predicate>& negated_predicates) {
  MatchSet out;
  auto operand_accepts = [&](size_t pos, const Event& e) {
    if (e.type() != flat.operands[pos]) return false;
    if (pos >= operand_predicates.size()) return true;
    const Predicate& predicate = operand_predicates[pos];
    return predicate.empty() || predicate.Matches(e.payload());
  };
  if (flat.op == PatternOp::kDisj) {
    for (const Event& e : stream) {
      for (size_t pos = 0; pos < flat.operands.size(); ++pos) {
        if (operand_accepts(pos, e)) {
          out.insert(e.Fingerprint());
          break;
        }
      }
    }
    return out;
  }
  size_t n = flat.operands.size();
  std::vector<size_t> chosen;
  std::vector<bool> used(stream.size(), false);

  auto survives_negation = [&](Timestamp min_ts) {
    for (const Event& e : stream) {
      for (size_t neg = 0; neg < flat.negated.size(); ++neg) {
        if (e.type() != flat.negated[neg]) continue;
        if (neg < negated_predicates.size() &&
            !negated_predicates[neg].empty() &&
            !negated_predicates[neg].Matches(e.payload())) {
          continue;
        }
        if (e.begin() >= min_ts && e.begin() <= min_ts + window) return false;
      }
    }
    return true;
  };

  std::function<void(size_t)> recurse = [&](size_t pos) {
    if (pos == n) {
      Timestamp lo = stream[chosen[0]].begin(), hi = lo;
      for (size_t idx : chosen) {
        lo = std::min(lo, stream[idx].begin());
        hi = std::max(hi, stream[idx].begin());
      }
      if (hi - lo > window) return;
      if (!survives_negation(lo)) return;
      std::vector<Constituent> parts;
      for (size_t k = 0; k < n; ++k) {
        parts.push_back(Constituent{stream[chosen[k]].type(),
                                    stream[chosen[k]].begin(),
                                    static_cast<int32_t>(k)});
      }
      out.insert(Event::Composite(0, parts, hi).Fingerprint());
      return;
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      if (used[i] || !operand_accepts(pos, stream[i])) continue;
      if (flat.op == PatternOp::kSeq && pos > 0 &&
          stream[chosen.back()].begin() >= stream[i].begin()) {
        continue;
      }
      // Prune on span incrementally.
      Timestamp lo = stream[i].begin(), hi = lo;
      for (size_t idx : chosen) {
        lo = std::min(lo, stream[idx].begin());
        hi = std::max(hi, stream[idx].begin());
      }
      if (hi - lo > window) continue;
      used[i] = true;
      chosen.push_back(i);
      recurse(pos + 1);
      chosen.pop_back();
      used[i] = false;
    }
  };
  if (n > 0 && !stream.empty()) recurse(0);
  return out;
}

inline MatchSet ReferenceMatches(const FlatPattern& flat, Duration window,
                                 const EventStream& stream) {
  return ReferenceMatches(flat, window, stream, {}, {});
}

}  // namespace motto::testing

#endif  // MOTTO_TESTS_TEST_UTIL_H_
