// MetricsSnapshotter (DESIGN.md §16): immutable versioned snapshots of a
// single-writer MetricsRegistry — monotonic sequence numbers, delta/rate
// annotation against the previous snapshot, bounded ring history, and the
// time-driven TickDue cadence check.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace motto {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::MetricsSnapshotter;

TEST(SnapshotTest, FirstCollectCapturesEverythingWithZeroRates) {
  MetricsRegistry registry;
  registry.GetCounter("serve.ingested_events")->Add(42);
  registry.GetGauge("queue.depth")->Set(7.0);
  registry.GetHistogram("lat", {0.001, 0.01, 0.1})->Record(0.005);

  MetricsSnapshotter snapshotter(&registry);
  EXPECT_EQ(snapshotter.Latest(), nullptr);
  EXPECT_EQ(snapshotter.snapshots_taken(), 0u);

  auto snapshot = snapshotter.Collect();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->seq, 1u);
  EXPECT_GT(snapshot->wall_unix_seconds, 0.0);
  EXPECT_GE(snapshot->uptime_seconds, 0.0);
  // First snapshot has no predecessor: interval and rates are zero, deltas
  // equal the raw values (everything is "new since the beginning").
  EXPECT_EQ(snapshot->interval_seconds, 0.0);
  EXPECT_EQ(snapshot->CounterValue("serve.ingested_events"), 42u);
  EXPECT_EQ(snapshot->deltas.at("serve.ingested_events"), 42u);
  EXPECT_EQ(snapshot->Rate("serve.ingested_events"), 0.0);
  EXPECT_EQ(snapshot->gauges.at("queue.depth").value, 7.0);
  EXPECT_EQ(snapshot->histograms.at("lat").count, 1u);
  EXPECT_EQ(snapshotter.Latest(), snapshot);
  EXPECT_EQ(snapshotter.snapshots_taken(), 1u);
}

TEST(SnapshotTest, DeltasAndRatesTrackTheIncrementOnly) {
  MetricsRegistry registry;
  obs::Counter* events = registry.GetCounter("events");
  events->Add(100);

  MetricsSnapshotter snapshotter(&registry);
  snapshotter.Collect();
  events->Add(50);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto second = snapshotter.Collect();

  EXPECT_EQ(second->seq, 2u);
  EXPECT_GT(second->interval_seconds, 0.0);
  EXPECT_EQ(second->CounterValue("events"), 150u);
  EXPECT_EQ(second->deltas.at("events"), 50u);
  EXPECT_NEAR(second->Rate("events"),
              50.0 / second->interval_seconds, 1e-6);
}

TEST(SnapshotTest, CounterAppearingMidStreamGetsFullValueAsDelta) {
  MetricsRegistry registry;
  MetricsSnapshotter snapshotter(&registry);
  snapshotter.Collect();
  registry.GetCounter("late.arrival")->Add(9);
  auto snapshot = snapshotter.Collect();
  EXPECT_EQ(snapshot->deltas.at("late.arrival"), 9u);
}

TEST(SnapshotTest, SnapshotsAreImmutableAfterPublication) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  counter->Add(1);
  MetricsSnapshotter snapshotter(&registry);
  auto first = snapshotter.Collect();
  counter->Add(1000);
  snapshotter.Collect();
  // The earlier snapshot still reports the value at its collection time.
  EXPECT_EQ(first->CounterValue("c"), 1u);
}

TEST(SnapshotTest, RingHistoryKeepsNewestAndBoundsSize) {
  MetricsRegistry registry;
  MetricsSnapshotter snapshotter(&registry, /*history=*/3);
  for (int i = 0; i < 5; ++i) snapshotter.Collect();
  std::vector<std::shared_ptr<const MetricsSnapshot>> history =
      snapshotter.History();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history.front()->seq, 3u);  // Oldest surviving.
  EXPECT_EQ(history.back()->seq, 5u);
  EXPECT_EQ(snapshotter.Latest()->seq, 5u);
  EXPECT_EQ(snapshotter.snapshots_taken(), 5u);
}

TEST(SnapshotTest, SequenceIsStrictlyMonotonic) {
  MetricsRegistry registry;
  MetricsSnapshotter snapshotter(&registry, /*history=*/2);
  uint64_t last = 0;
  for (int i = 0; i < 10; ++i) {
    auto snapshot = snapshotter.Collect();
    EXPECT_GT(snapshot->seq, last);
    last = snapshot->seq;
  }
}

TEST(SnapshotTest, TickDueBeforeFirstCollectAndAfterInterval) {
  MetricsRegistry registry;
  MetricsSnapshotter snapshotter(&registry);
  // Never collected: always due, whatever the interval.
  EXPECT_TRUE(snapshotter.TickDue(3600.0));
  snapshotter.Collect();
  EXPECT_FALSE(snapshotter.TickDue(3600.0));
  // A zero interval is always due once collection has happened.
  EXPECT_TRUE(snapshotter.TickDue(0.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(snapshotter.TickDue(0.01));
}

TEST(SnapshotTest, ToJsonCarriesAllSectionsAndPreciseWallClock) {
  MetricsRegistry registry;
  registry.GetCounter("run.matches")->Add(3);
  registry.GetGauge("queue.depth")->Set(2.0);
  registry.GetHistogram("lat", {0.001, 0.01})->Record(0.002);
  MetricsSnapshotter snapshotter(&registry);
  std::string json = snapshotter.Collect()->ToJson();

  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"run.matches\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rates\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // Unix timestamps must keep sub-second precision — a %.6g rendering would
  // collapse them to scientific notation with ~1000 s granularity.
  size_t pos = json.find("\"wall_unix_seconds\":");
  ASSERT_NE(pos, std::string::npos);
  std::string stamp = json.substr(pos + 20, 18);
  EXPECT_EQ(stamp.find('e'), std::string::npos) << stamp;
  EXPECT_NE(stamp.find('.'), std::string::npos) << stamp;
}

TEST(SnapshotTest, MissingNamesReadAsZero) {
  MetricsRegistry registry;
  MetricsSnapshotter snapshotter(&registry);
  auto snapshot = snapshotter.Collect();
  EXPECT_EQ(snapshot->CounterValue("no.such.counter"), 0u);
  EXPECT_EQ(snapshot->Rate("no.such.counter"), 0.0);
}

}  // namespace
}  // namespace motto
