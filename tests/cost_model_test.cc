#include "cost/cost_model.h"

#include <gtest/gtest.h>

namespace motto {
namespace {

StreamStats MakeStats(std::vector<std::pair<EventTypeId, double>> rates) {
  StreamStats stats;
  for (const auto& [type, rate] : rates) {
    stats.rate_per_second[type] = rate;
    stats.total_rate += rate;
  }
  stats.duration = Seconds(100);
  return stats;
}

TEST(CostModelTest, RatesComeFromStatsWithOverrides) {
  CostModel model(MakeStats({{0, 5.0}, {1, 2.0}}));
  EXPECT_DOUBLE_EQ(model.RateOf(0), 5.0);
  EXPECT_DOUBLE_EQ(model.RateOf(1), 2.0);
  EXPECT_DOUBLE_EQ(model.RateOf(7), 0.0);
  model.SetRate(7, 3.5);
  EXPECT_DOUBLE_EQ(model.RateOf(7), 3.5);
  model.SetRate(0, 1.0);
  EXPECT_DOUBLE_EQ(model.RateOf(0), 1.0);
}

TEST(CostModelTest, SeqOutputRateMatchesClosedForm) {
  CostModel model(MakeStats({{0, 1.0}, {1, 1.0}}));
  FlatPattern seq{PatternOp::kSeq, {0, 1}, {}};
  OperatorEstimate est = model.EstimatePattern(seq, Seconds(1));
  // prod(r) * w^(n-1) / (n-1)! = 1*1*1/1 = 1 match/s.
  EXPECT_NEAR(est.output_rate, 1.0, 1e-9);
}

TEST(CostModelTest, ConjOutputRateMatchesClosedForm) {
  CostModel model(MakeStats({{0, 1.0}, {1, 1.0}}));
  FlatPattern conj{PatternOp::kConj, {0, 1}, {}};
  OperatorEstimate est = model.EstimatePattern(conj, Seconds(1));
  // n * prod(r) * w^(n-1) = 2 matches/s (either order).
  EXPECT_NEAR(est.output_rate, 2.0, 1e-9);
}

TEST(CostModelTest, DisjOutputIsSumOfRates) {
  CostModel model(MakeStats({{0, 3.0}, {1, 4.0}}));
  FlatPattern disj{PatternOp::kDisj, {0, 1}, {}};
  OperatorEstimate est = model.EstimatePattern(disj, Seconds(10));
  EXPECT_DOUBLE_EQ(est.output_rate, 7.0);
}

TEST(CostModelTest, CostGrowsWithWindow) {
  CostModel model(MakeStats({{0, 10.0}, {1, 10.0}, {2, 10.0}}));
  FlatPattern seq{PatternOp::kSeq, {0, 1, 2}, {}};
  OperatorEstimate small = model.EstimatePattern(seq, Seconds(1));
  OperatorEstimate large = model.EstimatePattern(seq, Seconds(10));
  EXPECT_GT(large.cpu_per_second, small.cpu_per_second);
  EXPECT_GT(large.output_rate, small.output_rate);
}

TEST(CostModelTest, CostGrowsWithOperandCount) {
  CostModel model(MakeStats({{0, 10.0}, {1, 10.0}, {2, 10.0}, {3, 10.0}}));
  FlatPattern two{PatternOp::kSeq, {0, 1}, {}};
  FlatPattern four{PatternOp::kSeq, {0, 1, 2, 3}, {}};
  EXPECT_GT(model.EstimatePattern(four, Seconds(5)).cpu_per_second,
            model.EstimatePattern(two, Seconds(5)).cpu_per_second);
}

TEST(CostModelTest, ConjCostsMoreThanSeqSameOperands) {
  CostModel model(MakeStats({{0, 10.0}, {1, 10.0}, {2, 10.0}}));
  FlatPattern seq{PatternOp::kSeq, {0, 1, 2}, {}};
  FlatPattern conj{PatternOp::kConj, {0, 1, 2}, {}};
  EXPECT_GT(model.EstimatePattern(conj, Seconds(5)).output_rate,
            model.EstimatePattern(seq, Seconds(5)).output_rate);
  EXPECT_GT(model.EstimatePattern(conj, Seconds(5)).cpu_per_second,
            model.EstimatePattern(seq, Seconds(5)).cpu_per_second);
}

TEST(CostModelTest, NegationReducesOutput) {
  CostModel model(MakeStats({{0, 5.0}, {1, 5.0}, {9, 2.0}}));
  FlatPattern plain{PatternOp::kSeq, {0, 1}, {}};
  FlatPattern negated{PatternOp::kSeq, {0, 1}, {9}};
  EXPECT_LT(model.EstimatePattern(negated, Seconds(1)).output_rate,
            model.EstimatePattern(plain, Seconds(1)).output_rate);
}

TEST(CostModelTest, FilterCheaperThanOperator) {
  CostModel model(MakeStats({{0, 50.0}, {1, 50.0}}));
  FlatPattern seq{PatternOp::kSeq, {0, 1}, {}};
  OperatorEstimate op = model.EstimatePattern(seq, Seconds(1));
  OperatorEstimate filter = model.EstimateFilter(op.output_rate, 0.5);
  EXPECT_LT(filter.cpu_per_second, op.cpu_per_second);
  EXPECT_DOUBLE_EQ(filter.output_rate, op.output_rate * 0.5);
}

TEST(CostModelTest, OrderFilterSelectivityIsFactorial) {
  EXPECT_DOUBLE_EQ(CostModel::OrderFilterSelectivity(1), 1.0);
  EXPECT_DOUBLE_EQ(CostModel::OrderFilterSelectivity(2), 0.5);
  EXPECT_DOUBLE_EQ(CostModel::OrderFilterSelectivity(3), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(CostModel::OrderFilterSelectivity(4), 1.0 / 24.0);
}

TEST(CostModelTest, SharedSubQueryPlanCheaperThanScratch) {
  // The MST example (paper §VI): computing SEQ(E1,E2,E3) from SEQ(E1,E3)
  // via CONJ(composite & E2) + order filter must beat recomputation in the
  // selective regime CEP targets (sub-events-per-window around one).
  CostModel model(MakeStats({{0, 0.3}, {1, 0.3}, {2, 0.3}}));
  FlatPattern q1{PatternOp::kSeq, {0, 1, 2}, {}};
  FlatPattern q2{PatternOp::kSeq, {0, 2}, {}};
  Duration w = Seconds(1);
  OperatorEstimate scratch = model.EstimatePattern(q1, w);
  OperatorEstimate source = model.EstimatePattern(q2, w);
  std::vector<double> rates = {source.output_rate, model.RateOf(1)};
  double intermediate = model.OutputRate(PatternOp::kConj, rates, {}, w);
  double shared = model.ProcessingCpu(PatternOp::kConj, rates, w) +
                  model.EmitCpu(intermediate, 2) +
                  model.EstimateFilter(intermediate, 0.0).cpu_per_second +
                  model.EmitCpu(scratch.output_rate, 3);
  EXPECT_LT(shared, scratch.cpu_per_second);
}

TEST(CostModelTest, PrefixCompositeSharingCheaperThanScratch) {
  // SEQ(E1,E2,E3) from prefix sub-query SEQ(E1,E2): beneficiary pays only
  // the composite-with-E3 pairing plus (identical) emission work.
  CostModel model(MakeStats({{0, 1.0}, {1, 1.0}, {2, 1.0}}));
  FlatPattern full{PatternOp::kSeq, {0, 1, 2}, {}};
  FlatPattern prefix{PatternOp::kSeq, {0, 1}, {}};
  Duration w = Seconds(1);
  OperatorEstimate scratch = model.EstimatePattern(full, w);
  OperatorEstimate source = model.EstimatePattern(prefix, w);
  double shared =
      model.ProcessingCpu(PatternOp::kSeq, {source.output_rate, 1.0}, w) +
      model.EmitCpu(scratch.output_rate, 3);
  EXPECT_LT(shared, scratch.cpu_per_second);
}

TEST(CostModelTest, ZeroRateOperandsYieldZeroOutput) {
  CostModel model(MakeStats({{0, 5.0}}));
  FlatPattern seq{PatternOp::kSeq, {0, 99}, {}};
  OperatorEstimate est = model.EstimatePattern(seq, Seconds(1));
  EXPECT_DOUBLE_EQ(est.output_rate, 0.0);
}

}  // namespace
}  // namespace motto
