#include "engine/nfa.h"

#include <gtest/gtest.h>

namespace motto {
namespace {

TEST(NfaTest, SeqIsLinearChain) {
  Nfa nfa = BuildNfa(PatternOp::kSeq, 3);
  EXPECT_EQ(nfa.num_states, 4);
  EXPECT_EQ(nfa.start, 0);
  ASSERT_EQ(nfa.accepting.size(), 4u);
  EXPECT_FALSE(nfa.accepting[0]);
  EXPECT_FALSE(nfa.accepting[2]);
  EXPECT_TRUE(nfa.accepting[3]);
  ASSERT_EQ(nfa.transitions.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const NfaTransition& t = nfa.transitions[static_cast<size_t>(i)];
    EXPECT_EQ(t.from, i);
    EXPECT_EQ(t.to, i + 1);
    EXPECT_EQ(t.operand, i);
    EXPECT_TRUE(t.requires_order);
  }
}

TEST(NfaTest, SeqSingleOperand) {
  Nfa nfa = BuildNfa(PatternOp::kSeq, 1);
  EXPECT_EQ(nfa.num_states, 2);
  EXPECT_TRUE(nfa.accepting[1]);
  EXPECT_EQ(nfa.transitions.size(), 1u);
}

TEST(NfaTest, ConjIsSubsetLattice) {
  Nfa nfa = BuildNfa(PatternOp::kConj, 3);
  EXPECT_EQ(nfa.num_states, 8);
  EXPECT_TRUE(nfa.accepting[7]);
  for (int s = 0; s < 7; ++s) EXPECT_FALSE(nfa.accepting[static_cast<size_t>(s)]);
  // n * 2^(n-1) transitions.
  EXPECT_EQ(nfa.transitions.size(), 12u);
  for (const NfaTransition& t : nfa.transitions) {
    EXPECT_FALSE(t.requires_order);
    EXPECT_EQ(t.to, t.from | (1 << t.operand));
    EXPECT_EQ(t.from & (1 << t.operand), 0);
  }
}

TEST(NfaTest, DisjAcceptsOnAnyOperand) {
  Nfa nfa = BuildNfa(PatternOp::kDisj, 4);
  EXPECT_EQ(nfa.num_states, 2);
  EXPECT_TRUE(nfa.accepting[1]);
  EXPECT_EQ(nfa.transitions.size(), 4u);
  for (const NfaTransition& t : nfa.transitions) {
    EXPECT_EQ(t.from, 0);
    EXPECT_EQ(t.to, 1);
  }
}

TEST(NfaTest, TransitionsIndexedByOperand) {
  Nfa nfa = BuildNfa(PatternOp::kConj, 2);
  ASSERT_EQ(nfa.transitions_by_operand.size(), 2u);
  for (int k = 0; k < 2; ++k) {
    for (int32_t idx : nfa.transitions_by_operand[static_cast<size_t>(k)]) {
      EXPECT_EQ(nfa.transitions[static_cast<size_t>(idx)].operand, k);
    }
    EXPECT_EQ(nfa.transitions_by_operand[static_cast<size_t>(k)].size(), 2u);
  }
}

}  // namespace
}  // namespace motto
