#include "workload/query_gen.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "util/sequence.h"
#include "workload/data_gen.h"

namespace motto {
namespace {

TEST(DataGenTest, StreamIsSortedPrimitiveAndSized) {
  EventTypeRegistry registry;
  StreamOptions options;
  options.num_events = 20000;
  EventStream stream = GenerateStream(options, &registry);
  EXPECT_EQ(stream.size(), 20000u);
  EXPECT_TRUE(ValidateStream(stream).ok());
  // Strictly increasing timestamps.
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LT(stream[i - 1].begin(), stream[i].begin());
  }
}

TEST(DataGenTest, StockScenarioUsesThirteenTypes) {
  EventTypeRegistry registry;
  StreamOptions options;
  options.scenario = Scenario::kStockMarket;
  options.num_events = 50000;
  EventStream stream = GenerateStream(options, &registry);
  std::unordered_set<EventTypeId> seen;
  for (const Event& e : stream) seen.insert(e.type());
  EXPECT_EQ(ScenarioTypeNames(Scenario::kStockMarket).size(), 13u);
  EXPECT_EQ(seen.size(), 13u);
}

TEST(DataGenTest, DataCenterScenarioUsesThirtySixTypes) {
  EventTypeRegistry registry;
  StreamOptions options;
  options.scenario = Scenario::kDataCenter;
  options.num_events = 200000;
  EventStream stream = GenerateStream(options, &registry);
  std::unordered_set<EventTypeId> seen;
  for (const Event& e : stream) seen.insert(e.type());
  EXPECT_EQ(ScenarioTypeNames(Scenario::kDataCenter).size(), 36u);
  EXPECT_GE(seen.size(), 34u);  // Rarest types may miss in a finite sample.
}

TEST(DataGenTest, ZipfSkewMakesHotTypesHotter) {
  EventTypeRegistry registry;
  StreamOptions options;
  options.num_events = 100000;
  EventStream stream = GenerateStream(options, &registry);
  std::unordered_map<EventTypeId, int> counts;
  for (const Event& e : stream) ++counts[e.type()];
  int hottest = 0, coldest = 1 << 30;
  for (const auto& [t, c] : counts) {
    hottest = std::max(hottest, c);
    coldest = std::min(coldest, c);
  }
  EXPECT_GT(hottest, coldest * 2);
}

TEST(DataGenTest, SelectiveRegimeCalibration) {
  // Per-type window population N = rate * 10s should be O(1), the regime
  // the paper's pattern queries target.
  EventTypeRegistry registry;
  StreamOptions options;
  options.num_events = 100000;
  EventStream stream = GenerateStream(options, &registry);
  StreamStats stats = ComputeStats(stream);
  for (const auto& [type, rate] : stats.rate_per_second) {
    double population = rate * 10.0;
    EXPECT_LT(population, 8.0) << registry.NameOf(type);
  }
  EXPECT_GT(stats.total_rate * 10.0, 5.0);
}

TEST(DataGenTest, DeterministicPerSeed) {
  EventTypeRegistry r1, r2;
  StreamOptions options;
  options.num_events = 5000;
  EventStream a = GenerateStream(options, &r1);
  EventStream b = GenerateStream(options, &r2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  options.seed = 43;
  EventStream c = GenerateStream(options, &r1);
  bool differs = false;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (!(a[i] == c[i])) differs = true;
  }
  EXPECT_TRUE(differs);
}

class QueryGenTest : public ::testing::Test {
 protected:
  GeneratedWorkload Generate(WorkloadOptions options) {
    auto workload = GenerateWorkload(options, &registry_);
    EXPECT_TRUE(workload.ok()) << workload.status();
    return *std::move(workload);
  }
  EventTypeRegistry registry_;
};

TEST_F(QueryGenTest, ProducesRequestedCountWithoutDuplicates) {
  WorkloadOptions options;
  options.num_queries = 60;
  options.basic_ratio = 0.5;
  GeneratedWorkload workload = Generate(options);
  EXPECT_EQ(workload.queries.size(), 60u);
  EXPECT_EQ(workload.sharing_type.size(), 60u);
  std::set<std::string> keys;
  for (const Query& q : workload.queries) {
    keys.insert(Canonicalize(q.pattern).CanonicalKey() + "@" +
                std::to_string(q.window));
    EXPECT_TRUE(ValidatePattern(q.pattern).ok());
    EXPECT_GT(q.window, 0);
  }
  EXPECT_EQ(keys.size(), 60u);
}

TEST_F(QueryGenTest, BasicRatioControlsGroups) {
  WorkloadOptions options;
  options.num_queries = 40;
  options.basic_ratio = 1.0;
  GeneratedWorkload all_basic = Generate(options);
  for (int type : all_basic.sharing_type) {
    EXPECT_GE(type, 1);
    EXPECT_LE(type, 4);
  }
  options.seed = 11;
  options.basic_ratio = 0.0;
  GeneratedWorkload all_complex = Generate(options);
  for (int type : all_complex.sharing_type) {
    EXPECT_GE(type, 5);
    EXPECT_LE(type, 7);
  }
}

TEST_F(QueryGenTest, PairsExhibitTheirSharingType) {
  WorkloadOptions options;
  options.num_queries = 80;
  options.basic_ratio = 0.5;
  options.seed = 3;
  GeneratedWorkload workload = Generate(options);
  for (size_t i = 0; i + 1 < workload.queries.size(); i += 2) {
    if (workload.sharing_type[i] != workload.sharing_type[i + 1]) continue;
    const Query& a = workload.queries[i];
    const Query& b = workload.queries[i + 1];
    int type = workload.sharing_type[i];
    if (type >= 1 && type <= 3) {
      // a's operand list is a subsequence of b's.
      SymbolSeq sa = ToFlatPattern(a.pattern).OperandSeq();
      SymbolSeq sb = ToFlatPattern(b.pattern).OperandSeq();
      EXPECT_TRUE(IsSubsequence(sa, sb)) << "pair " << i << " type " << type;
      if (type == 1) {
        EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
      }
      if (type == 2) {
        EXPECT_TRUE(std::equal(sa.rbegin(), sa.rend(), sb.rbegin()));
      }
      if (type == 3) EXPECT_FALSE(IsSubstring(sa, sb));
      EXPECT_EQ(a.window, b.window);
    } else if (type == 5) {
      EXPECT_NE(a.window, b.window);
    } else if (type == 6) {
      EXPECT_NE(a.pattern.op(), b.pattern.op());
    } else if (type == 7) {
      EXPECT_GE(a.pattern.NestedLevel(), 2);
      EXPECT_GE(b.pattern.NestedLevel(), 2);
    }
  }
}

TEST_F(QueryGenTest, NestedLevelRespected) {
  for (int level : {2, 4, 8}) {
    EventTypeRegistry registry;
    WorkloadOptions options;
    options.num_queries = 12;
    options.basic_ratio = 0.0;
    options.nested_level = level;
    options.seed = static_cast<uint64_t>(level);
    auto workload = GenerateWorkload(options, &registry);
    ASSERT_TRUE(workload.ok());
    bool saw_nested = false;
    for (size_t i = 0; i < workload->queries.size(); ++i) {
      if (workload->sharing_type[i] == 7) {
        saw_nested = true;
        EXPECT_EQ(workload->queries[i].pattern.NestedLevel(), level);
      }
    }
    EXPECT_TRUE(saw_nested);
  }
}

TEST_F(QueryGenTest, ScenarioControlsOperandLengths) {
  WorkloadOptions options;
  options.num_queries = 40;
  options.scenario = Scenario::kStockMarket;
  GeneratedWorkload stock = Generate(options);
  size_t stock_max = 0;
  for (const Query& q : stock.queries) {
    stock_max = std::max(stock_max, q.pattern.children().size());
  }
  EventTypeRegistry registry2;
  options.scenario = Scenario::kDataCenter;
  auto dc = GenerateWorkload(options, &registry2);
  ASSERT_TRUE(dc.ok());
  size_t dc_max = 0;
  for (const Query& q : dc->queries) {
    dc_max = std::max(dc_max, q.pattern.children().size());
  }
  EXPECT_GT(stock_max, dc_max);  // §VII-A: stock lists are longer.
}

TEST_F(QueryGenTest, RejectsBadOptions) {
  WorkloadOptions options;
  options.num_queries = 0;
  EXPECT_FALSE(GenerateWorkload(options, &registry_).ok());
  options.num_queries = 10;
  options.basic_ratio = 1.5;
  EXPECT_FALSE(GenerateWorkload(options, &registry_).ok());
  options.basic_ratio = 0.5;
  options.base_window = 0;
  EXPECT_FALSE(GenerateWorkload(options, &registry_).ok());
}

TEST_F(QueryGenTest, DeterministicPerSeed) {
  WorkloadOptions options;
  options.num_queries = 20;
  GeneratedWorkload a = Generate(options);
  EventTypeRegistry registry2;
  auto b = GenerateWorkload(options, &registry2);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.queries.size(), b->queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(Canonicalize(a.queries[i].pattern).CanonicalKey(),
              Canonicalize(b->queries[i].pattern).CanonicalKey());
  }
}

}  // namespace
}  // namespace motto
