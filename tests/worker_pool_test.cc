// WorkerPool: persistent parked threads, epoch dispatch, caller overlap.
#include "engine/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

namespace motto {
namespace {

TEST(WorkerPoolTest, RunsJobOncePerWorkerPerEpoch) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::atomic<int> calls{0};
  std::mutex mu;
  std::set<int> ids;
  auto job = [&](int id) {
    calls.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(id);
  };
  for (int epoch = 1; epoch <= 5; ++epoch) {
    calls.store(0);
    pool.Run(job);
    EXPECT_EQ(calls.load(), 4) << "epoch " << epoch;
    EXPECT_EQ(pool.epochs(), static_cast<uint64_t>(epoch));
  }
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3}));
}

TEST(WorkerPoolTest, CallerOverlapsBetweenBeginAndWait) {
  WorkerPool pool(2);
  std::atomic<int> sum{0};
  auto job = [&](int id) { sum.fetch_add(id + 1); };
  pool.Begin(job);
  job(pool.num_workers());  // Caller participates as the extra worker.
  pool.Wait();
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

TEST(WorkerPoolTest, ZeroWorkersIsInert) {
  WorkerPool pool(0);
  bool called = false;
  pool.Run([&](int) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(pool.epochs(), 0u);
}

TEST(WorkerPoolTest, ManyEpochsReuseThreads) {
  // A pool must survive rapid epoch cycling without respawning; 500 epochs
  // with a trivial job finish quickly only if dispatch is park/wake, not
  // thread creation.
  WorkerPool pool(3);
  std::atomic<uint64_t> total{0};
  auto job = [&](int) { total.fetch_add(1); };
  for (int i = 0; i < 500; ++i) pool.Run(job);
  EXPECT_EQ(total.load(), 1500u);
  EXPECT_EQ(pool.epochs(), 500u);
}

}  // namespace
}  // namespace motto
