#include "motto/nested.h"

#include <gtest/gtest.h>

#include "ccl/parser.h"

namespace motto {
namespace {

class NestedTest : public ::testing::Test {
 protected:
  Query Parse(const std::string& pattern, const std::string& name,
              Duration window = Seconds(10)) {
    auto expr = ccl::ParsePattern(pattern, &registry_);
    EXPECT_TRUE(expr.ok()) << expr.status();
    return Query{name, *expr, window};
  }

  EventTypeRegistry registry_;
  CompositeCatalog catalog_;
};

TEST_F(NestedTest, FlatQueryProducesSingleEntry) {
  Query q = Parse("SEQ(E1, E2, E3)", "q");
  auto chain = DivideNested(q, &registry_, &catalog_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->size(), 1u);
  EXPECT_EQ((*chain)[0].name, "q");
  EXPECT_EQ((*chain)[0].pattern.op, PatternOp::kSeq);
  EXPECT_EQ((*chain)[0].pattern.operands.size(), 3u);
}

TEST_F(NestedTest, PaperExample7DividesQ11) {
  // q11 = SEQ(E1, DISJ(E4|E3), CONJ(E2&E3)) -> two inner queries + outer.
  Query q11 = Parse("SEQ(E1, DISJ(E4|E3), CONJ(E2&E3))", "q11");
  auto chain = DivideNested(q11, &registry_, &catalog_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->size(), 3u);
  EXPECT_EQ((*chain)[0].pattern.op, PatternOp::kDisj);
  EXPECT_EQ((*chain)[1].pattern.op, PatternOp::kConj);
  EXPECT_EQ((*chain)[2].pattern.op, PatternOp::kSeq);
  EXPECT_EQ((*chain)[2].name, "q11");
  // The outer query's 2nd and 3rd operands are the inner composite types.
  const FlatQuery& outer = (*chain)[2];
  ASSERT_EQ(outer.pattern.operands.size(), 3u);
  EXPECT_TRUE(registry_.IsPrimitive(outer.pattern.operands[0]));
  EXPECT_FALSE(registry_.IsPrimitive(outer.pattern.operands[1]));
  EXPECT_FALSE(registry_.IsPrimitive(outer.pattern.operands[2]));
  // Catalog knows both inner composites.
  EXPECT_NE(catalog_.Find(outer.pattern.operands[1]), nullptr);
  EXPECT_NE(catalog_.Find(outer.pattern.operands[2]), nullptr);
}

TEST_F(NestedTest, SharedInnerPatternGetsSameCompositeType) {
  // q11 and q12 share CONJ(E2&E3); division must assign one type id.
  Query q11 = Parse("SEQ(E1, DISJ(E4|E3), CONJ(E2&E3))", "q11");
  Query q12 = Parse("SEQ(E1, CONJ(E2&E3))", "q12");
  auto c11 = DivideNested(q11, &registry_, &catalog_);
  auto c12 = DivideNested(q12, &registry_, &catalog_);
  ASSERT_TRUE(c11.ok());
  ASSERT_TRUE(c12.ok());
  EventTypeId conj_in_q11 = (*c11)[2].pattern.operands[2];
  EventTypeId conj_in_q12 = (*c12)[1].pattern.operands[1];
  EXPECT_EQ(conj_in_q11, conj_in_q12);
}

TEST_F(NestedTest, DeepNestingDividesLevelByLevel) {
  Query q = Parse("SEQ(a, CONJ(b & SEQ(c, DISJ(d | e))))", "deep");
  EXPECT_EQ(q.pattern.NestedLevel(), 4);
  auto chain = DivideNested(q, &registry_, &catalog_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_EQ(chain->size(), 4u);
  EXPECT_EQ(chain->back().name, "deep");
  // Every non-final entry's composite type is referenced downstream.
  for (size_t i = 0; i + 1 < chain->size(); ++i) {
    EventTypeId type =
        catalog_.Register((*chain)[i].pattern, (*chain)[i].window, &registry_);
    bool referenced = false;
    for (size_t j = i + 1; j < chain->size(); ++j) {
      for (EventTypeId operand : (*chain)[j].pattern.operands) {
        if (operand == type) referenced = true;
      }
    }
    EXPECT_TRUE(referenced) << "chain entry " << i << " unreferenced";
  }
}

TEST_F(NestedTest, OuterNegAllowedInnerNegRejected) {
  Query outer_neg = Parse("SEQ(E1, E2, NEG(E9))", "ok");
  EXPECT_TRUE(DivideNested(outer_neg, &registry_, &catalog_).ok());
  Query inner_neg = Parse("SEQ(E1, CONJ(E2 & E3, NEG(E9)))", "bad");
  EXPECT_FALSE(DivideNested(inner_neg, &registry_, &catalog_).ok());
}

TEST_F(NestedTest, RejectsBareLeafAndBadWindow) {
  Query leaf{"leaf", PatternExpr::Leaf(registry_.RegisterPrimitive("E1")),
             Seconds(1)};
  EXPECT_FALSE(DivideNested(leaf, &registry_, &catalog_).ok());
  Query q = Parse("SEQ(E1, E2)", "zero", 0);
  EXPECT_FALSE(DivideNested(q, &registry_, &catalog_).ok());
}

TEST_F(NestedTest, DivideWorkloadConcatenatesChains) {
  std::vector<Query> queries = {Parse("SEQ(E1, CONJ(E2&E3))", "a"),
                                Parse("SEQ(E2, E4)", "b")};
  auto flat = DivideWorkload(queries, &registry_, &catalog_);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->size(), 3u);
  EXPECT_EQ((*flat)[1].name, "a");
  EXPECT_EQ((*flat)[2].name, "b");
}

TEST(CatalogTest, ArityAndAcceptedTypes) {
  EventTypeRegistry registry;
  CompositeCatalog catalog;
  EventTypeId a = registry.RegisterPrimitive("a");
  EventTypeId b = registry.RegisterPrimitive("b");
  EventTypeId c = registry.RegisterPrimitive("c");

  FlatPattern conj{PatternOp::kConj, {a, b}, {}};
  EventTypeId conj_type = catalog.Register(conj, Seconds(1), &registry);
  EXPECT_EQ(catalog.ArityOf(conj_type, registry), 2);
  EXPECT_EQ(catalog.AcceptedTypes(conj_type, registry),
            (std::vector<EventTypeId>{conj_type}));

  FlatPattern disj{PatternOp::kDisj, {a, c}, {}};
  EventTypeId disj_type = catalog.Register(disj, Seconds(1), &registry);
  EXPECT_EQ(catalog.ArityOf(disj_type, registry), 1);
  std::vector<EventTypeId> accepted = catalog.AcceptedTypes(disj_type, registry);
  EXPECT_EQ(accepted, (std::vector<EventTypeId>{a, c}));

  // Nested: SEQ over the two composites.
  FlatPattern outer{PatternOp::kSeq, {conj_type, disj_type}, {}};
  EventTypeId outer_type = catalog.Register(outer, Seconds(1), &registry);
  EXPECT_EQ(catalog.ArityOf(outer_type, registry), 3);  // 2 + max(1,1).
  EXPECT_EQ(catalog.AcceptedTypes(outer_type, registry),
            (std::vector<EventTypeId>{outer_type}));

  // DISJ windows are normalized: same pattern at different windows is one
  // composite type.
  EXPECT_EQ(catalog.Register(disj, Seconds(99), &registry), disj_type);
  EXPECT_EQ(catalog.ArityOf(a, registry), 1);
}

}  // namespace
}  // namespace motto
