#include "ccl/parser.h"

#include <gtest/gtest.h>

#include "ccl/lexer.h"

namespace motto {
namespace {

using ccl::ParseDuration;
using ccl::ParsePattern;
using ccl::ParseQuery;

TEST(LexerTest, TokenizesAllKinds) {
  auto tokens = ccl::Tokenize("SELECT * FROM s MATCHING [10 sec: a, !b & c|d]");
  ASSERT_TRUE(tokens.ok());
  // SELECT * FROM s MATCHING [ 10 sec : a , ! b & c | d ] EOF
  EXPECT_EQ(tokens->size(), 19u);
  EXPECT_EQ(tokens->back().kind, ccl::TokenKind::kEof);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(ccl::Tokenize("a + b").ok());
  EXPECT_FALSE(ccl::Tokenize("a$").ok());
}

TEST(LexerTest, RejectsNumberOverflowInsteadOfWrapping) {
  // Pre-ParseInt64 the digit loop accumulated value*10+digit and overflowed
  // (signed UB) on literals past int64 range; now it is a parse error that
  // points at the offending offset.
  auto tokens = ccl::Tokenize("123456789012345678901234567890 sec");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("offset"), std::string::npos)
      << tokens.status();
  // Max int64 still tokenizes.
  EXPECT_TRUE(ccl::Tokenize("9223372036854775807 sec").ok());
  // Decimal literals take the double path: large but finite values lex fine.
  EXPECT_TRUE(ccl::Tokenize("1234567890123456789012345.5 sec").ok());
}

TEST(DurationTest, ParsesUnits) {
  EXPECT_EQ(*ParseDuration("10 seconds"), Seconds(10));
  EXPECT_EQ(*ParseDuration("10 s"), Seconds(10));
  EXPECT_EQ(*ParseDuration("5 min"), Minutes(5));
  EXPECT_EQ(*ParseDuration("250 ms"), Millis(250));
  EXPECT_EQ(*ParseDuration("7 us"), 7);
  EXPECT_FALSE(ParseDuration("10 fortnights").ok());
  EXPECT_FALSE(ParseDuration("ten seconds").ok());
}

TEST(ParsePatternTest, FunctionalSeq) {
  EventTypeRegistry registry;
  auto p = ParsePattern("SEQ(E1, E2, E3)", &registry);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->op(), PatternOp::kSeq);
  EXPECT_EQ(p->children().size(), 3u);
  EXPECT_EQ(p->ToString(registry), "SEQ(E1, E2, E3)");
}

TEST(ParsePatternTest, FunctionalConjAndDisj) {
  EventTypeRegistry registry;
  auto conj = ParsePattern("CONJ(E1 & E2)", &registry);
  ASSERT_TRUE(conj.ok());
  EXPECT_EQ(conj->op(), PatternOp::kConj);
  auto disj = ParsePattern("DISJ(E1 | E2)", &registry);
  ASSERT_TRUE(disj.ok());
  EXPECT_EQ(disj->op(), PatternOp::kDisj);
}

TEST(ParsePatternTest, InfixPrecedence) {
  EventTypeRegistry registry;
  // ',' binds tighter than '&', which binds tighter than '|'.
  auto p = ParsePattern("E1, E2 & E3 | E4", &registry);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->op(), PatternOp::kDisj);
  ASSERT_EQ(p->children().size(), 2u);
  const PatternExpr& conj = p->children()[0];
  EXPECT_EQ(conj.op(), PatternOp::kConj);
  EXPECT_EQ(conj.children()[0].op(), PatternOp::kSeq);
}

TEST(ParsePatternTest, NestedFunctional) {
  EventTypeRegistry registry;
  auto p = ParsePattern("SEQ(E1, DISJ(E4|E3), CONJ(E2&E3))", &registry);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->NestedLevel(), 2);
  EXPECT_EQ(p->children().size(), 3u);
  EXPECT_EQ(p->children()[1].op(), PatternOp::kDisj);
  EXPECT_EQ(p->children()[2].op(), PatternOp::kConj);
}

TEST(ParsePatternTest, NegationForms) {
  EventTypeRegistry registry;
  auto p = ParsePattern("SEQ(E1, E3, NEG(E2))", &registry);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->children().size(), 2u);
  ASSERT_EQ(p->negated().size(), 1u);
  EXPECT_EQ(registry.NameOf(p->negated()[0].leaf_type()), "E2");

  auto bang = ParsePattern("E1, E3, !E2", &registry);
  ASSERT_TRUE(bang.ok());
  EXPECT_TRUE(bang->negated()[0] == p->negated()[0]);
}

TEST(ParsePatternTest, NegationErrors) {
  EventTypeRegistry registry;
  EXPECT_FALSE(ParsePattern("!E1", &registry).ok());
  EXPECT_FALSE(ParsePattern("DISJ(E1 | NEG(E2))", &registry).ok());
  EXPECT_FALSE(ParsePattern("SEQ(E1, !!E2)", &registry).ok());
  EXPECT_FALSE(ParsePattern("SEQ(E1, NEG(SEQ(E2, E3)))", &registry).ok());
  EXPECT_FALSE(ParsePattern("SEQ(NEG(E1))", &registry).ok());
}

TEST(ParsePatternTest, SeparatorMixingRequiresParens) {
  EventTypeRegistry registry;
  EXPECT_FALSE(ParsePattern("SEQ(E1 & E2, E3)", &registry).ok());
  auto ok = ParsePattern("SEQ((E1 & E2), E3)", &registry);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->children()[0].op(), PatternOp::kConj);
}

TEST(ParsePatternTest, SingleOperandCollapses) {
  EventTypeRegistry registry;
  auto p = ParsePattern("(E1)", &registry);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->is_leaf());
}

TEST(ParsePatternTest, UnknownTypePolicy) {
  EventTypeRegistry registry;
  registry.RegisterPrimitive("known");
  ccl::ParseOptions strict;
  strict.register_unknown_types = false;
  EXPECT_FALSE(ParsePattern("SEQ(known, novel)", &registry, strict).ok());
  EXPECT_TRUE(ParsePattern("SEQ(known, known)", &registry, strict).ok());
  // Default policy registers new types.
  auto p = ParsePattern("SEQ(known, novel)", &registry);
  ASSERT_TRUE(p.ok());
  EXPECT_NE(registry.Find("novel"), kInvalidEventType);
}

TEST(ParseQueryTest, FullQuery) {
  EventTypeRegistry registry;
  auto q = ParseQuery(
      "SELECT * FROM market MATCHING [10 min : SEQ(sell_MSFT, buy_AAPL, "
      "buy_IBM, RSI_low_IBM)]",
      &registry, "Q1");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->name, "Q1");
  EXPECT_EQ(q->window, Minutes(10));
  EXPECT_EQ(q->pattern.children().size(), 4u);
}

TEST(ParseQueryTest, Errors) {
  EventTypeRegistry registry;
  EXPECT_FALSE(ParseQuery("MATCHING [1 s : E1, E2]", &registry).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT * FROM s MATCHING [1 s : E1, E2] junk", &registry)
          .ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM s MATCHING 1 s : E1", &registry).ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM s MATCHING [s : E1]", &registry).ok());
}

TEST(ParseQueryTest, CompositeTypeNameRejectedAsOperand) {
  EventTypeRegistry registry;
  registry.RegisterComposite("combo");
  EXPECT_FALSE(ParsePattern("SEQ(combo, x)", &registry).ok());
}

TEST(ParsePatternTest, RoundTripThroughPrinter) {
  EventTypeRegistry registry;
  auto p = ParsePattern("SEQ(a, CONJ(b & c), NEG(d))", &registry);
  ASSERT_TRUE(p.ok());
  std::string printed = p->ToString(registry);
  auto reparsed = ParsePattern(printed, &registry);
  ASSERT_TRUE(reparsed.ok()) << printed << " -> " << reparsed.status();
  EXPECT_TRUE(*p == *reparsed);
}

}  // namespace
}  // namespace motto
