// Crash-recovery differential suite for `motto serve` (DESIGN.md §15):
// pinned deterministic kill cases covering every damage kind, then the
// fuzzed (workload, stream, kill-plan) sweep behind `motto verify
// --recovery`. Iteration count scales with MOTTO_RECOVERY_FUZZ_ITERS,
// mirroring MOTTO_FUZZ_ITERS for the plan differ.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "event/stream.h"
#include "test_util.h"
#include "verify/recovery_differ.h"
#include "workload/io.h"

namespace motto {
namespace {

namespace fs = std::filesystem;
using testing::MakeStream;
using verify::CheckRecoveryCase;
using verify::RecoveryCaseSpec;
using verify::RecoveryDifferOptions;
using verify::RecoveryKill;
using verify::RunRecoveryDiffer;

int FuzzIters(int fallback) {
  const char* env = std::getenv("MOTTO_RECOVERY_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

constexpr char kWorkload[] =
    "q0: SELECT * FROM s MATCHING [30 us : SEQ(A, B, C)]\n"
    "q1: SELECT * FROM s MATCHING [25 us : CONJ(A & D)]\n"
    "q2: SELECT * FROM s MATCHING [20 us : SEQ(A, B, NEG(E))]\n";

EventStream PinnedStream(EventTypeRegistry* registry) {
  std::vector<std::pair<std::string, Timestamp>> events;
  const char* cycle[] = {"A", "B", "D", "A", "C", "E", "B", "A", "D", "C"};
  Timestamp ts = 0;
  for (int round = 0; round < 10; ++round) {
    for (const char* type : cycle) {
      events.emplace_back(type, ts);
      ts += (ts % 4) + 1;
    }
  }
  return MakeStream(registry, std::move(events));
}

class ServeRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("motto-serve-recovery-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// One pinned case: fixed workload/stream, caller-chosen kill plan.
  void CheckPinned(std::vector<RecoveryKill> kills, EvalOrderMode order,
                   uint64_t interval) {
    EventTypeRegistry registry;
    auto queries = ParseWorkloadText(kWorkload, &registry);
    ASSERT_TRUE(queries.ok()) << queries.status();
    ASSERT_EQ(queries->size(), 3u);
    EventStream stream = PinnedStream(&registry);
    RecoveryCaseSpec spec;
    spec.kills = std::move(kills);
    spec.eval_order = order;
    spec.checkpoint_interval = interval;
    spec.frame_seed = 0xFEEDBEEF;
    spec.case_dir = dir_;
    auto report = CheckRecoveryCase(*queries, stream, &registry, spec);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->ok()) << report->ToString();
  }

  std::string dir_;
};

TEST_F(ServeRecoveryTest, PlainKillMidStream) {
  CheckPinned({{.after_events = 37, .kind = RecoveryKill::Kind::kPlain}},
              EvalOrderMode::kArrival, /*interval=*/8);
}

TEST_F(ServeRecoveryTest, PlainKillBeforeFirstCheckpoint) {
  // Killed before any snapshot exists: recovery starts from scratch and
  // must still converge on the batch multiset.
  CheckPinned({{.after_events = 3, .kind = RecoveryKill::Kind::kPlain}},
              EvalOrderMode::kArrival, /*interval=*/50);
}

TEST_F(ServeRecoveryTest, TornCheckpointFallsBackToPreviousSnapshot) {
  CheckPinned(
      {{.after_events = 41, .kind = RecoveryKill::Kind::kTornCheckpoint}},
      EvalOrderMode::kArrival, /*interval=*/7);
}

TEST_F(ServeRecoveryTest, TornOutputTailIsRepaired) {
  CheckPinned({{.after_events = 53, .kind = RecoveryKill::Kind::kTornOutput}},
              EvalOrderMode::kSelectivity, /*interval=*/9);
}

TEST_F(ServeRecoveryTest, MidCheckpointFaultReleasesOutboxOnRecovery) {
  // Durable snapshot, dead before the outbox release: the recovered run
  // must re-emit exactly the unreleased matches, no more, no less.
  CheckPinned(
      {{.after_events = 29, .kind = RecoveryKill::Kind::kMidCheckpoint}},
      EvalOrderMode::kArrival, /*interval=*/6);
}

TEST_F(ServeRecoveryTest, DoubleKillWithMixedDamage) {
  // Second kill lands during the catch-up replay of the first recovery.
  CheckPinned(
      {{.after_events = 23, .kind = RecoveryKill::Kind::kTornCheckpoint},
       {.after_events = 61, .kind = RecoveryKill::Kind::kMidCheckpoint}},
      EvalOrderMode::kSelectivity, /*interval=*/5);
}

TEST(ServeRecoveryFuzzTest, FuzzedKillPlansNeverDiverge) {
  RecoveryDifferOptions options;
  options.seed = 1;
  options.iterations = FuzzIters(12);
  options.fuzz.num_events = 120;
  auto outcome = RunRecoveryDiffer(options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->kills, 0u);
  std::string detail;
  for (const auto& failure : outcome->failures) {
    detail += "case seed " + std::to_string(failure.case_seed) + " (" +
              failure.detail + "):\n" + failure.report + "\n";
  }
  EXPECT_TRUE(outcome->ok()) << detail;
}

TEST(ServeRecoveryFuzzTest, SecondSeedBand) {
  RecoveryDifferOptions options;
  options.seed = 1000;
  options.iterations = FuzzIters(8);
  options.fuzz.num_events = 100;
  options.fuzz.num_event_types = 4;
  auto outcome = RunRecoveryDiffer(options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  std::string detail;
  for (const auto& failure : outcome->failures) {
    detail += "case seed " + std::to_string(failure.case_seed) + " (" +
              failure.detail + "):\n" + failure.report + "\n";
  }
  EXPECT_TRUE(outcome->ok()) << detail;
}

}  // namespace
}  // namespace motto
