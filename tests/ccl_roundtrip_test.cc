// Parse -> print -> parse round-trip fuzzing for the CCL front end: every
// generated query must print to text that re-parses to the identical tree
// (and identical window), both through the pattern printer and through the
// whole workload-file format. 10k queries by default; MOTTO_FUZZ_ITERS
// scales the count for nightly runs. Failures dump the offending text.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "ccl/parser.h"
#include "ccl/pattern.h"
#include "verify/fuzzer.h"
#include "workload/io.h"

namespace motto {
namespace {

int IterationsFromEnv(int fallback) {
  const char* env = std::getenv("MOTTO_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

TEST(CclRoundtripTest, PatternPrintParse) {
  int iters = IterationsFromEnv(10000);
  EventTypeRegistry registry;
  verify::FuzzOptions options;
  options.num_event_types = 5;
  options.max_depth = 3;
  options.nested_prob = 0.5;
  options.predicate_prob = 0.35;
  // The printer/parser pair must round-trip inner negation even though the
  // engine rejects it — the front end is more general than the engine.
  options.allow_inner_negation = true;
  verify::QueryFuzzer fuzzer(&registry, options, /*seed=*/20260807);

  for (int i = 0; i < iters; ++i) {
    PatternExpr pattern = fuzzer.NextPattern();
    std::string text = pattern.ToString(registry);
    auto reparsed = ccl::ParsePattern(text, &registry);
    ASSERT_TRUE(reparsed.ok())
        << "iteration " << i << ": '" << text << "': " << reparsed.status();
    EXPECT_TRUE(*reparsed == pattern)
        << "iteration " << i << " round-trip changed the tree:\n  printed: "
        << text << "\n  reparsed: " << reparsed->ToString(registry);
  }
}

TEST(CclRoundtripTest, WorkloadFilePrintParse) {
  int iters = IterationsFromEnv(10000) / 10;  // 3 queries per workload
  EventTypeRegistry registry;
  verify::FuzzOptions options;
  options.num_queries = 3;
  options.max_depth = 2;
  options.allow_inner_negation = true;
  verify::QueryFuzzer fuzzer(&registry, options, /*seed=*/97);

  for (int i = 0; i < iters; ++i) {
    std::vector<Query> queries;
    for (int q = 0; q < options.num_queries; ++q) {
      queries.push_back(fuzzer.NextQuery("case" + std::to_string(q)));
    }
    std::string text = WorkloadToText(queries, registry);
    auto reparsed = ParseWorkloadText(text, &registry);
    ASSERT_TRUE(reparsed.ok())
        << "iteration " << i << ":\n" << text << "\n" << reparsed.status();
    ASSERT_EQ(reparsed->size(), queries.size()) << text;
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ((*reparsed)[q].name, queries[q].name) << text;
      EXPECT_EQ((*reparsed)[q].window, queries[q].window) << text;
      EXPECT_TRUE((*reparsed)[q].pattern == queries[q].pattern)
          << "iteration " << i << " query " << queries[q].name
          << " round-trip changed the tree:\n" << text;
    }
  }
}

/// The canonicalizer must be idempotent and round-trip through text too —
/// repro dumps print canonicalized queries, so canonical forms that do not
/// survive printing would break every dumped case.
TEST(CclRoundtripTest, CanonicalFormsRoundTrip) {
  int iters = IterationsFromEnv(10000) / 5;
  EventTypeRegistry registry;
  verify::FuzzOptions options;
  options.max_depth = 2;
  options.allow_inner_negation = true;
  verify::QueryFuzzer fuzzer(&registry, options, /*seed=*/4242);

  for (int i = 0; i < iters; ++i) {
    PatternExpr canonical = Canonicalize(fuzzer.NextPattern());
    EXPECT_TRUE(Canonicalize(canonical) == canonical) << "not idempotent";
    std::string text = canonical.ToString(registry);
    auto reparsed = ccl::ParsePattern(text, &registry);
    ASSERT_TRUE(reparsed.ok())
        << "iteration " << i << ": '" << text << "': " << reparsed.status();
    EXPECT_TRUE(*reparsed == canonical)
        << "iteration " << i << ": '" << text << "'";
  }
}

}  // namespace
}  // namespace motto
