#include "workload/harness.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/plan_util.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace motto {
namespace {

/// Small end-to-end integration: a Table IV workload over a generated
/// stream, all four approaches, match sets verified identical.
TEST(HarnessTest, AllModesAgreeOnMixedWorkload) {
  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = 15000;
  stream_options.seed = 5;
  EventStream stream = GenerateStream(stream_options, &registry);

  WorkloadOptions workload_options;
  workload_options.num_queries = 16;
  workload_options.basic_ratio = 0.5;  // Both groups represented.
  workload_options.seed = 9;
  auto workload = GenerateWorkload(workload_options, &registry);
  ASSERT_TRUE(workload.ok()) << workload.status();

  ComparisonOptions options;
  options.verify_matches = true;
  auto runs = CompareModes(workload->queries, stream, &registry, options);
  ASSERT_TRUE(runs.ok()) << runs.status();
  ASSERT_EQ(runs->size(), 4u);
  EXPECT_EQ((*runs)[0].mode, OptimizerMode::kNa);
  uint64_t na_matches = (*runs)[0].total_matches;
  for (const ModeRun& run : *runs) {
    EXPECT_EQ(run.total_matches, na_matches)
        << OptimizerModeName(run.mode);
    EXPECT_GT(run.throughput_eps, 0.0);
    EXPECT_GT(run.jqp_nodes, 0u);
  }
  EXPECT_DOUBLE_EQ((*runs)[0].normalized, 1.0);
}

TEST(HarnessTest, MottoPlanIsSmallerOnShareableWorkload) {
  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = 8000;
  EventStream stream = GenerateStream(stream_options, &registry);

  WorkloadOptions workload_options;
  workload_options.num_queries = 24;
  workload_options.basic_ratio = 1.0;
  auto workload = GenerateWorkload(workload_options, &registry);
  ASSERT_TRUE(workload.ok());

  ComparisonOptions options;
  options.modes = {OptimizerMode::kNa, OptimizerMode::kMotto};
  options.verify_matches = true;
  auto runs = CompareModes(workload->queries, stream, &registry, options);
  ASSERT_TRUE(runs.ok()) << runs.status();
  const ModeRun& na = (*runs)[0];
  const ModeRun& motto = (*runs)[1];
  EXPECT_LT(motto.planned_cost, na.planned_cost);
  EXPECT_GT(motto.optimize_seconds, 0.0);
}

TEST(HarnessTest, NaAlwaysPrependedForNormalization) {
  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = 3000;
  EventStream stream = GenerateStream(stream_options, &registry);
  WorkloadOptions workload_options;
  workload_options.num_queries = 6;
  auto workload = GenerateWorkload(workload_options, &registry);
  ASSERT_TRUE(workload.ok());
  ComparisonOptions options;
  options.modes = {OptimizerMode::kMotto};  // NA omitted on purpose.
  auto runs = CompareModes(workload->queries, stream, &registry, options);
  ASSERT_TRUE(runs.ok()) << runs.status();
  ASSERT_EQ(runs->size(), 2u);
  EXPECT_EQ((*runs)[0].mode, OptimizerMode::kNa);
}

TEST(HarnessTest, ZeroThroughputBaselineIsFlaggedNotDividedBy) {
  // An empty stream replays in ~0 wall time, so the NA baseline throughput
  // is zero. Normalization must not divide by it: every mode reports a
  // forced 1.0 plus an explicit RunReport warning.
  EventTypeRegistry registry;
  WorkloadOptions workload_options;
  workload_options.num_queries = 4;
  auto workload = GenerateWorkload(workload_options, &registry);
  ASSERT_TRUE(workload.ok());
  ComparisonOptions options;
  auto runs = CompareModes(workload->queries, EventStream{}, &registry,
                           options);
  ASSERT_TRUE(runs.ok()) << runs.status();
  for (const ModeRun& run : *runs) {
    EXPECT_DOUBLE_EQ(run.normalized, 1.0) << OptimizerModeName(run.mode);
    EXPECT_EQ(run.total_matches, 0u);
    ASSERT_FALSE(run.report.warnings.empty()) << OptimizerModeName(run.mode);
    EXPECT_NE(run.report.warnings[0].find("zero"), std::string::npos);
  }
}

TEST(HarnessTest, CollectReportsAttachesPerNodeBreakdown) {
  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = 4000;
  EventStream stream = GenerateStream(stream_options, &registry);
  WorkloadOptions workload_options;
  workload_options.num_queries = 6;
  auto workload = GenerateWorkload(workload_options, &registry);
  ASSERT_TRUE(workload.ok());
  ComparisonOptions options;
  options.collect_reports = true;
  auto runs = CompareModes(workload->queries, stream, &registry, options);
  ASSERT_TRUE(runs.ok()) << runs.status();
  for (const ModeRun& run : *runs) {
    ASSERT_EQ(run.report.nodes.size(), run.jqp_nodes)
        << OptimizerModeName(run.mode);
    double predicted = 0.0;
    for (const obs::NodeReport& node : run.report.nodes) {
      predicted += node.predicted_share;
    }
    EXPECT_NEAR(predicted, 1.0, 1e-9) << OptimizerModeName(run.mode);
    EXPECT_GT(run.report.elapsed_seconds, 0.0);
  }
}

TEST(HarnessTest, CoreScalingModelIsMonotoneAndBounded) {
  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = 8000;
  EventStream stream = GenerateStream(stream_options, &registry);
  WorkloadOptions workload_options;
  workload_options.num_queries = 12;
  auto workload = GenerateWorkload(workload_options, &registry);
  ASSERT_TRUE(workload.ok());

  StreamStats stats = ComputeStats(stream);
  OptimizerOptions optimizer_options;
  optimizer_options.mode = OptimizerMode::kMotto;
  Optimizer optimizer(&registry, stats, optimizer_options);
  auto outcome = optimizer.Optimize(workload->queries);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  // The model is fed measured per-node busy times; one scheduler preemption
  // during the timed replay (common when ctest runs suites concurrently on
  // a small container) can inflate a single node enough to flatten the LPT
  // speedup. The structural properties must hold on every attempt; the
  // "scales visibly" magnitude check gets a few attempts to see a replay
  // that wasn't preempted.
  double best_final_speedup = 0.0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto points = MeasureCoreScaling(outcome->jqp, stream, 6,
                                     /*run_wallclock=*/false);
    ASSERT_TRUE(points.ok()) << points.status();
    ASSERT_EQ(points->size(), 6u);
    double prev = 0.0;
    for (const ScalingPoint& point : *points) {
      EXPECT_GE(point.modeled_speedup, prev - 1e-9);  // Monotone.
      EXPECT_LE(point.modeled_speedup,
                static_cast<double>(point.threads) + 1e-9);  // Bounded by k.
      prev = point.modeled_speedup;
    }
    EXPECT_NEAR((*points)[0].modeled_speedup, 1.0, 1e-9);
    best_final_speedup =
        std::max(best_final_speedup, points->back().modeled_speedup);
    if (best_final_speedup > 1.5) break;
  }
  // A JQP with many independent nodes should scale visibly in the model.
  EXPECT_GT(best_final_speedup, 1.5);
}

TEST(HarnessTest, CoreScalingRejectsBadArgs) {
  EventTypeRegistry registry;
  FlatQuery q{"q",
              FlatPattern{PatternOp::kSeq,
                          {registry.RegisterPrimitive("A"),
                           registry.RegisterPrimitive("B")},
                          {}},
              Seconds(1)};
  Jqp jqp = BuildDefaultJqp({q}, &registry);
  EXPECT_FALSE(MeasureCoreScaling(jqp, {}, 0, false).ok());
}

}  // namespace
}  // namespace motto
