#include "obs/explain.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ccl/parser.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "motto/optimizer.h"
#include "obs/opt_trace.h"

namespace motto {
namespace {

Query MakeQuery(EventTypeRegistry* registry, const std::string& name,
                const std::string& pattern, Duration window) {
  auto expr = ccl::ParsePattern(pattern, registry);
  EXPECT_TRUE(expr.ok()) << expr.status();
  return Query{name, *expr, window};
}

EventStream RandomStream(EventTypeRegistry* registry,
                         const std::vector<std::string>& type_names,
                         int num_events, Timestamp max_gap, uint64_t seed) {
  Rng rng(seed);
  EventStream stream;
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    ts += rng.Uniform(1, max_gap);
    const std::string& name = type_names[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(type_names.size()) - 1))];
    stream.push_back(Event::Primitive(registry->RegisterPrimitive(name), ts));
  }
  return stream;
}

class ExplainTest : public ::testing::Test {
 protected:
  /// Paper §V workload: q2 shares into q1, q3/q4 share SEQ(E2,E4), q5 is
  /// q2's CONJ sibling — every rewrite family has skin in the game.
  OptimizeOutcome Optimize() {
    queries_ = {
        MakeQuery(&registry_, "q1", "SEQ(E1, E2, E3)", Millis(50)),
        MakeQuery(&registry_, "q2", "SEQ(E1, E3)", Millis(50)),
        MakeQuery(&registry_, "q3", "SEQ(E1, E2, E4)", Millis(50)),
        MakeQuery(&registry_, "q4", "SEQ(E2, E4, E3)", Millis(50)),
        MakeQuery(&registry_, "q5", "CONJ(E1 & E3)", Millis(50)),
    };
    stream_ = RandomStream(&registry_, {"E1", "E2", "E3", "E4"}, 3000,
                           Millis(40), 17);
    stats_ = ComputeStats(stream_);
    OptimizerOptions options;
    options.mode = OptimizerMode::kMotto;
    options.probe = &probe_;
    Optimizer optimizer(&registry_, stats_, options);
    auto outcome = optimizer.Optimize(queries_);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return *std::move(outcome);
  }

  EventTypeRegistry registry_;
  std::vector<Query> queries_;
  EventStream stream_;
  StreamStats stats_;
  obs::OptimizerProbe probe_;
};

TEST_F(ExplainTest, EveryPlanNodeAnnotatedAndSinksResolve) {
  OptimizeOutcome outcome = Optimize();
  obs::PlanExplain explain =
      obs::BuildPlanExplain(outcome, stats_, "MOTTO");
  ASSERT_EQ(explain.nodes.size(), outcome.jqp.nodes.size());
  EXPECT_EQ(explain.sinks.size(), queries_.size());
  EXPECT_DOUBLE_EQ(explain.planned_cost, outcome.planned_cost);
  for (const obs::PlanNodeInfo& n : explain.nodes) {
    EXPECT_FALSE(n.label.empty());
    EXPECT_FALSE(n.kind.empty());
    EXPECT_GT(n.predicted_cpu_units, 0.0) << n.label;
    // Every node in this plan feeds at least one query.
    EXPECT_FALSE(n.queries.empty()) << n.label;
  }
  for (const obs::PlanExplain::Sink& sink : explain.sinks) {
    ASSERT_GE(sink.node, 0);
    ASSERT_LT(static_cast<size_t>(sink.node), explain.nodes.size());
    // The sink's query is among the node's transitive dependents.
    const obs::PlanNodeInfo& node =
        explain.nodes[static_cast<size_t>(sink.node)];
    EXPECT_NE(std::find(node.queries.begin(), node.queries.end(), sink.query),
              node.queries.end());
  }
}

TEST_F(ExplainTest, SharedNodesCarrySharingProvenance) {
  OptimizeOutcome outcome = Optimize();
  obs::PlanExplain explain =
      obs::BuildPlanExplain(outcome, stats_, "MOTTO");
  size_t shared_nodes = 0;
  for (const obs::PlanNodeInfo& n : explain.nodes) {
    if (!n.shared) continue;
    ++shared_nodes;
    // The inspector's contract: every shared node names its sharing-graph
    // origin and the queries it serves.
    EXPECT_GE(n.sharing_node, 0) << n.label;
    EXPECT_FALSE(n.sharing_key.empty()) << n.label;
    EXPECT_GE(n.queries.size(), 2u) << n.label;
    EXPECT_FALSE(n.role.empty()) << n.label;
  }
  EXPECT_GT(shared_nodes, 0u);  // §V workload always shares.
  // Edge-realized nodes carry the rewrite family and its cost.
  size_t edge_realized = 0;
  for (const obs::PlanNodeInfo& n : explain.nodes) {
    if (n.edge < 0) continue;
    ++edge_realized;
    EXPECT_FALSE(n.family.empty()) << n.label;
    EXPECT_FALSE(n.recipe.empty()) << n.label;
    EXPECT_FALSE(n.source_key.empty()) << n.label;
    EXPECT_GT(n.edge_cost, 0.0) << n.label;
  }
  EXPECT_GT(edge_realized, 0u);
}

TEST_F(ExplainTest, DotOutputMatchesPlanShape) {
  OptimizeOutcome outcome = Optimize();
  obs::PlanExplain explain =
      obs::BuildPlanExplain(outcome, stats_, "MOTTO");
  std::string dot = explain.ToDot();
  EXPECT_EQ(dot.rfind("digraph jqp {", 0), 0u);
  size_t node_lines = 0;
  size_t edge_lines = 0;
  for (size_t pos = 0; (pos = dot.find('\n', pos)) != std::string::npos;
       ++pos) {
    size_t line_start = dot.rfind('\n', pos - 1);
    std::string line = dot.substr(line_start + 1, pos - line_start - 1);
    if (line.find(" -> ") != std::string::npos) {
      ++edge_lines;
    } else if (line.find("[shape=") != std::string::npos) {
      ++node_lines;
    }
  }
  size_t plan_edges = 0;
  for (const obs::PlanNodeInfo& n : explain.nodes) {
    plan_edges += n.inputs.size();
  }
  EXPECT_EQ(node_lines, explain.nodes.size());
  EXPECT_EQ(edge_lines, plan_edges);
  // Shared nodes are visually distinguished.
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  // Double-escaped line breaks would render literal backslashes.
  EXPECT_EQ(dot.find("\\\\n"), std::string::npos);
}

TEST_F(ExplainTest, JsonEmbedsProbeTelemetry) {
  OptimizeOutcome outcome = Optimize();
  obs::PlanExplain explain =
      obs::BuildPlanExplain(outcome, stats_, "MOTTO");
  std::string json = explain.ToJson(&probe_);
  EXPECT_NE(json.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(json.find("\"sinks\":["), std::string::npos);
  EXPECT_NE(json.find("\"optimizer\":"), std::string::npos);
  EXPECT_NE(json.find("\"candidates\":["), std::string::npos);
  EXPECT_NE(json.find("\"selected\":"), std::string::npos);
  // Without a probe the optimizer key is absent.
  std::string bare = explain.ToJson();
  EXPECT_EQ(bare.find("\"optimizer\":"), std::string::npos);
}

TEST_F(ExplainTest, CalibrationRowsGroupByFamilyAndSharesSum) {
  OptimizeOutcome outcome = Optimize();
  obs::PlanExplain explain =
      obs::BuildPlanExplain(outcome, stats_, "MOTTO");
  auto executor = Executor::Create(outcome.jqp);
  ASSERT_TRUE(executor.ok()) << executor.status();
  ExecutorOptions timing;
  timing.collect_node_timing = true;
  auto run = executor->Run(stream_, timing);
  ASSERT_TRUE(run.ok()) << run.status();
  obs::RunReport report = obs::BuildRunReport(outcome.jqp, stats_, *run);

  obs::CalibrationReport calibration = obs::BuildCalibration(explain, report);
  ASSERT_FALSE(calibration.rows.empty());
  const std::set<std::string> known = {"scratch", "MST", "DST",
                                       "OTT",     "WIN", "unshared"};
  double predicted_share = 0.0;
  size_t nodes = 0;
  for (const obs::CalibrationRow& row : calibration.rows) {
    EXPECT_TRUE(known.count(row.family) > 0) << row.family;
    EXPECT_GT(row.nodes, 0u);
    nodes += row.nodes;
    predicted_share += row.predicted_share;
  }
  EXPECT_EQ(nodes, explain.nodes.size());
  EXPECT_NEAR(predicted_share, 1.0, 1e-9);
  EXPECT_NE(calibration.ToTable().find("miss"), std::string::npos);
  EXPECT_NE(calibration.ToJson().find("\"miss_ratio\""), std::string::npos);
}

TEST_F(ExplainTest, CalibrationRejectsMismatchedReport) {
  OptimizeOutcome outcome = Optimize();
  obs::PlanExplain explain =
      obs::BuildPlanExplain(outcome, stats_, "MOTTO");
  obs::RunReport wrong;  // Empty: node count cannot match the plan.
  obs::CalibrationReport calibration = obs::BuildCalibration(explain, wrong);
  EXPECT_TRUE(calibration.rows.empty());
  ASSERT_FALSE(calibration.warnings.empty());
}

}  // namespace
}  // namespace motto
