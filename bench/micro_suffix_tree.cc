// Micro-benchmarks of the generalized suffix tree used by DST (§IV-B).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "util/suffix_tree.h"

namespace motto {
namespace {

SymbolSeq RandomSeq(size_t n, int alphabet, uint64_t seed) {
  Rng rng(seed);
  SymbolSeq out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int32_t>(rng.Uniform(0, alphabet - 1)));
  }
  return out;
}

void BM_SuffixTreeBuild(benchmark::State& state) {
  SymbolSeq text = RandomSeq(static_cast<size_t>(state.range(0)), 16, 3);
  for (auto _ : state) {
    SuffixTree tree{SymbolSeq(text)};
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixTreeBuild)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_SuffixTreeOccurrences(benchmark::State& state) {
  SymbolSeq text = RandomSeq(8192, 8, 5);
  SuffixTree tree{SymbolSeq(text)};
  SymbolSeq needle(text.begin() + 100, text.begin() + 104);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Occurrences(needle));
  }
}
BENCHMARK(BM_SuffixTreeOccurrences);

void BM_MaximalCommonMatches(benchmark::State& state) {
  // Operand-list sized inputs: the rewriter calls this per query pair.
  size_t n = static_cast<size_t>(state.range(0));
  SymbolSeq a = RandomSeq(n, 8, 7);
  SymbolSeq b = RandomSeq(n, 8, 9);
  for (auto _ : state) {
    GeneralizedSuffixTree tree{SymbolSeq(a), SymbolSeq(b)};
    benchmark::DoNotOptimize(tree.MaximalCommonMatches());
  }
}
BENCHMARK(BM_MaximalCommonMatches)->Arg(4)->Arg(8)->Arg(32)->Arg(128);

void BM_LongestCommonSubstring(benchmark::State& state) {
  SymbolSeq a = RandomSeq(64, 6, 11);
  SymbolSeq b = RandomSeq(64, 6, 13);
  for (auto _ : state) {
    GeneralizedSuffixTree tree{SymbolSeq(a), SymbolSeq(b)};
    benchmark::DoNotOptimize(tree.LongestCommonSubstring());
  }
}
BENCHMARK(BM_LongestCommonSubstring);

}  // namespace
}  // namespace motto

BENCHMARK_MAIN();
