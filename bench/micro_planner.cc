// Micro-benchmarks of the optimizer: rewriter (sharing discovery) and the
// two DSMT solvers (§V).
#include <memory>

#include <benchmark/benchmark.h>

#include "common/check.h"
#include "motto/nested.h"
#include "motto/rewriter.h"
#include "planner/solver.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace motto {
namespace {

struct PreparedWorkload {
  EventTypeRegistry registry;
  CompositeCatalog catalog;
  std::vector<FlatQuery> flat;
  StreamStats stats;
};

std::unique_ptr<PreparedWorkload> Prepare(int num_queries, double ratio) {
  auto prepared = std::make_unique<PreparedWorkload>();
  WorkloadOptions options;
  options.num_queries = num_queries;
  options.basic_ratio = ratio;
  auto workload = GenerateWorkload(options, &prepared->registry);
  MOTTO_CHECK(workload.ok());
  auto flat = DivideWorkload(workload->queries, &prepared->registry,
                             &prepared->catalog);
  MOTTO_CHECK(flat.ok());
  prepared->flat = *std::move(flat);
  for (EventTypeId t : prepared->registry.PrimitiveTypes()) {
    prepared->stats.rate_per_second[t] = 0.1;
    prepared->stats.total_rate += 0.1;
  }
  prepared->stats.duration = Seconds(1000);
  return prepared;
}

void BM_Rewriter(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  for (auto _ : state) {
    CompositeCatalog catalog = prepared->catalog;
    CostModel cost(prepared->stats);
    SharingGraph graph =
        BuildSharingGraph(prepared->flat, RewriterOptions::Motto(),
                          &prepared->registry, &catalog, &cost);
    benchmark::DoNotOptimize(graph.edges.size());
  }
}
BENCHMARK(BM_Rewriter)->Arg(20)->Arg(60)->Arg(100)->Unit(benchmark::kMillisecond);

SharingGraph BuildGraphFor(PreparedWorkload* prepared) {
  CostModel cost(prepared->stats);
  return BuildSharingGraph(prepared->flat, RewriterOptions::Motto(),
                           &prepared->registry, &prepared->catalog, &cost);
}

void BM_BranchAndBound(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  SharingGraph graph = BuildGraphFor(prepared.get());
  for (auto _ : state) {
    PlanDecision decision = SolveBranchAndBound(graph, 5.0);
    benchmark::DoNotOptimize(decision.cost);
  }
  state.counters["nodes"] = static_cast<double>(graph.nodes.size());
  state.counters["edges"] = static_cast<double>(graph.edges.size());
}
BENCHMARK(BM_BranchAndBound)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedAnnealing(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  SharingGraph graph = BuildGraphFor(prepared.get());
  for (auto _ : state) {
    PlanDecision decision = SolveSimulatedAnnealing(graph, 17, 20000);
    benchmark::DoNotOptimize(decision.cost);
  }
}
BENCHMARK(BM_SimulatedAnnealing)
    ->Arg(20)
    ->Arg(60)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace motto

BENCHMARK_MAIN();
