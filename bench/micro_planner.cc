// Micro-benchmarks of the optimizer: rewriter (sharing discovery) and the
// two DSMT solvers (§V).
#include <memory>

#include <benchmark/benchmark.h>

#include "common/check.h"
#include "motto/nested.h"
#include "motto/rewriter.h"
#include "obs/opt_trace.h"
#include "planner/solver.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace motto {
namespace {

struct PreparedWorkload {
  EventTypeRegistry registry;
  CompositeCatalog catalog;
  std::vector<FlatQuery> flat;
  StreamStats stats;
};

std::unique_ptr<PreparedWorkload> Prepare(int num_queries, double ratio) {
  auto prepared = std::make_unique<PreparedWorkload>();
  WorkloadOptions options;
  options.num_queries = num_queries;
  options.basic_ratio = ratio;
  auto workload = GenerateWorkload(options, &prepared->registry);
  MOTTO_CHECK(workload.ok());
  auto flat = DivideWorkload(workload->queries, &prepared->registry,
                             &prepared->catalog);
  MOTTO_CHECK(flat.ok());
  prepared->flat = *std::move(flat);
  for (EventTypeId t : prepared->registry.PrimitiveTypes()) {
    prepared->stats.rate_per_second[t] = 0.1;
    prepared->stats.total_rate += 0.1;
  }
  prepared->stats.duration = Seconds(1000);
  return prepared;
}

void BM_Rewriter(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  for (auto _ : state) {
    CompositeCatalog catalog = prepared->catalog;
    CostModel cost(prepared->stats);
    SharingGraph graph =
        BuildSharingGraph(prepared->flat, RewriterOptions::Motto(),
                          &prepared->registry, &catalog, &cost);
    benchmark::DoNotOptimize(graph.edges.size());
  }
  // Candidate-trace counters from one probed rebuild, outside the timing
  // loop: the timed iterations above stay the probe-disabled baseline.
  obs::OptimizerProbe probe;
  RewriterOptions probed = RewriterOptions::Motto();
  probed.probe = &probe;
  CompositeCatalog catalog = prepared->catalog;
  CostModel cost(prepared->stats);
  BuildSharingGraph(prepared->flat, probed, &prepared->registry, &catalog,
                    &cost);
  state.counters["candidates"] =
      static_cast<double>(probe.rewriter.candidates.size());
  state.counters["pairs"] =
      static_cast<double>(probe.rewriter.pairs_considered);
}
BENCHMARK(BM_Rewriter)->Arg(20)->Arg(60)->Arg(100)->Unit(benchmark::kMillisecond);

// Probe-attached twin of BM_Rewriter: its delta against BM_Rewriter is the
// full cost of candidate recording (the null-probe parity claim is checked
// by comparing the two in tools/run_bench.py output).
void BM_RewriterProbed(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  for (auto _ : state) {
    CompositeCatalog catalog = prepared->catalog;
    CostModel cost(prepared->stats);
    obs::OptimizerProbe probe;
    RewriterOptions options = RewriterOptions::Motto();
    options.probe = &probe;
    SharingGraph graph = BuildSharingGraph(
        prepared->flat, options, &prepared->registry, &catalog, &cost);
    benchmark::DoNotOptimize(probe.rewriter.candidates.size());
    benchmark::DoNotOptimize(graph.edges.size());
  }
}
BENCHMARK(BM_RewriterProbed)
    ->Arg(20)
    ->Arg(60)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

SharingGraph BuildGraphFor(PreparedWorkload* prepared) {
  CostModel cost(prepared->stats);
  return BuildSharingGraph(prepared->flat, RewriterOptions::Motto(),
                           &prepared->registry, &prepared->catalog, &cost);
}

void BM_BranchAndBound(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  SharingGraph graph = BuildGraphFor(prepared.get());
  for (auto _ : state) {
    PlanDecision decision = SolveBranchAndBound(graph, 5.0);
    benchmark::DoNotOptimize(decision.cost);
  }
  state.counters["nodes"] = static_cast<double>(graph.nodes.size());
  state.counters["edges"] = static_cast<double>(graph.edges.size());
  // Search-shape counters from one probed solve outside the timing loop
  // (deterministic: same graph => same counts as the timed solves).
  obs::OptimizerProbe probe;
  SolveBranchAndBound(graph, 5.0, &probe);
  state.counters["expansions"] = static_cast<double>(probe.bnb.expansions);
  state.counters["pruned"] = static_cast<double>(probe.bnb.pruned_by_bound);
  state.counters["incumbents"] =
      static_cast<double>(probe.bnb.incumbents.size());
}
BENCHMARK(BM_BranchAndBound)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_BranchAndBoundProbed(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  SharingGraph graph = BuildGraphFor(prepared.get());
  for (auto _ : state) {
    obs::OptimizerProbe probe;
    PlanDecision decision = SolveBranchAndBound(graph, 5.0, &probe);
    benchmark::DoNotOptimize(decision.cost);
    benchmark::DoNotOptimize(probe.bnb.expansions);
  }
}
BENCHMARK(BM_BranchAndBoundProbed)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedAnnealing(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  SharingGraph graph = BuildGraphFor(prepared.get());
  for (auto _ : state) {
    PlanDecision decision = SolveSimulatedAnnealing(graph, 17, 20000);
    benchmark::DoNotOptimize(decision.cost);
  }
  obs::OptimizerProbe probe;
  SolveSimulatedAnnealing(graph, 17, 20000, &probe);
  state.counters["sa_epochs"] = static_cast<double>(probe.sa.epochs.size());
  state.counters["sa_accepted"] = static_cast<double>(probe.sa.accepted);
}
BENCHMARK(BM_SimulatedAnnealing)
    ->Arg(20)
    ->Arg(60)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedAnnealingProbed(benchmark::State& state) {
  auto prepared = Prepare(static_cast<int>(state.range(0)), 0.5);
  SharingGraph graph = BuildGraphFor(prepared.get());
  for (auto _ : state) {
    obs::OptimizerProbe probe;
    PlanDecision decision = SolveSimulatedAnnealing(graph, 17, 20000, &probe);
    benchmark::DoNotOptimize(decision.cost);
    benchmark::DoNotOptimize(probe.sa.accepted);
  }
}
BENCHMARK(BM_SimulatedAnnealingProbed)
    ->Arg(20)
    ->Arg(60)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace motto

BENCHMARK_MAIN();
