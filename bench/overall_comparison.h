#ifndef MOTTO_BENCH_OVERALL_COMPARISON_H_
#define MOTTO_BENCH_OVERALL_COMPARISON_H_

#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "workload/data_gen.h"
#include "workload/harness.h"
#include "workload/query_gen.h"

namespace motto::bench {

/// Shared driver for Fig 13a/13b: normalized throughput of NA/MST/LCSE/MOTTO
/// while the basic workload ratio r sweeps 0%..100% (paper §VII-B).
inline int RunOverallComparison(Scenario scenario, const Flags& flags) {
  int64_t num_events =
      flags.GetInt("events", scenario == Scenario::kStockMarket ? 60000 : 80000);
  if (flags.GetBool("full", false)) {
    num_events = scenario == Scenario::kStockMarket ? 2'000'000 : 4'000'000;
  }
  int num_queries = static_cast<int>(flags.GetInt("queries", 100));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.scenario = scenario;
  stream_options.num_events = num_events;
  stream_options.seed = seed;
  EventStream stream = GenerateStream(stream_options, &registry);

  std::printf(
      "  r%%  | NA eps    | MST xNA | LCSE xNA | MOTTO xNA | matches | "
      "MOTTO nodes\n");
  std::printf(
      "-------+-----------+---------+----------+-----------+---------+------"
      "------\n");
  for (int r : {100, 75, 50, 25, 0}) {
    WorkloadOptions workload_options;
    workload_options.scenario = scenario;
    workload_options.num_queries = num_queries;
    workload_options.basic_ratio = static_cast<double>(r) / 100.0;
    workload_options.seed = seed + static_cast<uint64_t>(r);
    auto workload = GenerateWorkload(workload_options, &registry);
    MOTTO_CHECK(workload.ok()) << workload.status();

    ComparisonOptions options;
    options.warmup = true;
    options.measure_runs = static_cast<int>(flags.GetInt("runs", 3));
    options.planner.exact_budget_seconds =
        flags.GetDouble("exact_budget", 3.0);
    auto runs = CompareModes(workload->queries, stream, &registry, options);
    MOTTO_CHECK(runs.ok()) << runs.status();
    const ModeRun& na = (*runs)[0];
    const ModeRun& mst = (*runs)[1];
    const ModeRun& lcse = (*runs)[2];
    const ModeRun& motto = (*runs)[3];
    std::printf("  %3d  | %9.0f | %7.2f | %8.2f | %9.2f | %7llu | %6zu\n", r,
                na.throughput_eps, mst.normalized, lcse.normalized,
                motto.normalized,
                static_cast<unsigned long long>(na.total_matches),
                motto.jqp_nodes);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape (Fig 13%s): MOTTO >= LCSE >= MST >= NA at every r; the\n"
      "advantage of MOTTO grows as r decreases (complex sharing types that\n"
      "MST/LCSE cannot exploit), and overall gains are larger in the stock\n"
      "scenario (longer operand lists => more sharing opportunities).\n",
      scenario == Scenario::kStockMarket ? "a" : "b");
  return 0;
}

}  // namespace motto::bench

#endif  // MOTTO_BENCH_OVERALL_COMPARISON_H_
