#ifndef MOTTO_BENCH_BENCH_UTIL_H_
#define MOTTO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace motto::bench {

/// Minimal --key=value flag parser shared by the figure benches.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  int64_t GetInt(std::string_view name, int64_t fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return std::strtoll(value.c_str(), nullptr, 10);
  }

  double GetDouble(std::string_view name, double fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return std::strtod(value.c_str(), nullptr);
  }

  bool GetBool(std::string_view name, bool fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return value != "0" && value != "false";
  }

 private:
  bool Lookup(std::string_view name, std::string* value) const {
    std::string prefix = "--" + std::string(name) + "=";
    for (const std::string& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) {
        *value = arg.substr(prefix.size());
        return true;
      }
      if (arg == "--" + std::string(name)) {
        *value = "true";
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> args_;
};

inline void PrintBanner(const std::string& title,
                        const std::string& description) {
  std::printf("== %s ==\n%s\n\n", title.c_str(), description.c_str());
}

}  // namespace motto::bench

#endif  // MOTTO_BENCH_BENCH_UTIL_H_
