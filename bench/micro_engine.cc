// Component micro-benchmarks of the NFA pattern engine (google-benchmark):
// per-operator matcher throughput, filter throughput, executor dispatch.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>

#include <unistd.h>

#include <algorithm>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/matcher.h"
#include "engine/parallel_executor.h"
#include "engine/plan_util.h"
#include "engine/sharded_executor.h"
#include "event/stream.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "serve/server.h"
#include "serve/status.h"
#include "serve/wire.h"
#include "workload/io.h"

namespace motto {
namespace {

EventStream MakeStream(int num_events, int num_types, double per_type_window_pop,
                       Duration window, uint64_t seed) {
  // Calibrate interarrival so each type has ~per_type_window_pop events per
  // window.
  Rng rng(seed);
  double total_rate = per_type_window_pop * num_types /
                      (static_cast<double>(window) / kMicrosPerSecond);
  double mean_gap = kMicrosPerSecond / total_rate;
  EventStream stream;
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    ts += static_cast<Timestamp>(rng.Exponential(mean_gap)) + 1;
    stream.push_back(Event::Primitive(
        static_cast<EventTypeId>(rng.Uniform(0, num_types - 1)), ts));
  }
  return stream;
}

PatternSpec MakeSpec(PatternOp op, int num_operands, Duration window,
                     EventTypeRegistry* registry) {
  FlatPattern flat;
  flat.op = op;
  for (int i = 0; i < num_operands; ++i) {
    flat.operands.push_back(
        registry->RegisterPrimitive("T" + std::to_string(i)));
  }
  return MakeRawPatternSpec(flat, window, registry);
}

void RunMatcherBench(benchmark::State& state, PatternOp op,
                     obs::MetricsRegistry* metrics = nullptr) {
  int num_operands = static_cast<int>(state.range(0));
  Duration window = Seconds(state.range(1));
  EventTypeRegistry registry;
  PatternSpec spec = MakeSpec(op, num_operands, window, &registry);
  EventStream stream = MakeStream(20000, num_operands + 2, 1.0, window, 7);
  PatternMatcher matcher(spec);
  matcher.AttachProbe(metrics, "node.0");
  std::vector<Event> out;
  uint64_t matches = 0;
  for (auto _ : state) {
    matcher.Reset();
    for (const Event& e : stream) {
      out.clear();
      matcher.OnWatermark(e.begin(), &out);
      matcher.OnEvent(kRawChannel, e, &out);
      matches += out.size();
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["matches"] = static_cast<double>(matches);
}

void BM_SeqMatcher(benchmark::State& state) {
  RunMatcherBench(state, PatternOp::kSeq);
}
// Same loop with matcher probes attached to a live registry: quantifies the
// *enabled* instrumentation cost. BM_SeqMatcher above (probes detached) is
// the disabled-path guard — run_bench.py --compare holds it against the
// committed BENCH_engine.json baseline, which predates the probes.
void BM_SeqMatcherMetricsOn(benchmark::State& state) {
  obs::MetricsRegistry metrics;
  RunMatcherBench(state, PatternOp::kSeq, &metrics);
}
void BM_ConjMatcher(benchmark::State& state) {
  RunMatcherBench(state, PatternOp::kConj);
}
void BM_DisjMatcher(benchmark::State& state) {
  RunMatcherBench(state, PatternOp::kDisj);
}

BENCHMARK(BM_SeqMatcher)
    ->Args({2, 10})
    ->Args({4, 10})
    ->Args({6, 10})
    ->Args({4, 30});
BENCHMARK(BM_SeqMatcherMetricsOn)->Args({4, 10});
BENCHMARK(BM_ConjMatcher)->Args({2, 10})->Args({4, 10})->Args({4, 30});
BENCHMARK(BM_DisjMatcher)->Args({4, 10});

// Skewed-rate stream: types 0..num_types-2 each carry ~frequent_window_pop
// events per window; the last type (the rare anchor) arrives rare_ratio
// times less often. This is the regime selectivity-ordered evaluation is
// built for: eager chains materialize partials from the frequent prefix,
// lazy chains anchor on the rare type and keep almost none (DESIGN.md §13).
EventStream MakeSkewedStream(int num_events, int num_types, int rare_ratio,
                             double frequent_window_pop, Duration window,
                             uint64_t seed) {
  Rng rng(seed);
  double window_seconds = static_cast<double>(window) / kMicrosPerSecond;
  double frequent_rate = frequent_window_pop / window_seconds;
  double total_rate =
      frequent_rate * (num_types - 1) + frequent_rate / rare_ratio;
  double mean_gap = kMicrosPerSecond / total_rate;
  double rare_share = (frequent_rate / rare_ratio) / total_rate;
  EventStream stream;
  Timestamp ts = 0;
  for (int i = 0; i < num_events; ++i) {
    ts += static_cast<Timestamp>(rng.Exponential(mean_gap)) + 1;
    EventTypeId type =
        rng.Bernoulli(rare_share)
            ? static_cast<EventTypeId>(num_types - 1)
            : static_cast<EventTypeId>(rng.Uniform(0, num_types - 2));
    stream.push_back(Event::Primitive(type, ts));
  }
  return stream;
}

// Skewed matcher workloads: the last operand is the rare anchor at
// 1:rare_ratio. The *Lazy twins run the identical spec in selectivity order
// (rarest first, the order the planner picks for these rates); their
// `matches` counter must equal the arrival twin's — same semantics, fewer
// live partials.
void RunSkewedMatcherBench(benchmark::State& state, PatternOp op,
                           EvalOrderMode mode) {
  int num_operands = static_cast<int>(state.range(0));
  int rare_ratio = static_cast<int>(state.range(1));
  Duration window = Seconds(10);
  EventTypeRegistry registry;
  PatternSpec spec = MakeSpec(op, num_operands, window, &registry);
  spec.eval_order.push_back(num_operands - 1);
  for (int i = 0; i + 1 < num_operands; ++i) spec.eval_order.push_back(i);
  EventStream stream =
      MakeSkewedStream(20000, num_operands, rare_ratio, 4.0, window, 17);
  PatternMatcher matcher(spec);
  matcher.SetEvalMode(mode);
  std::vector<Event> out;
  uint64_t matches = 0;
  for (auto _ : state) {
    matcher.Reset();
    matches = 0;
    for (const Event& e : stream) {
      out.clear();
      matcher.OnWatermark(e.begin(), &out);
      matcher.OnEvent(kRawChannel, e, &out);
      matches += out.size();
    }
  }
  benchmark::DoNotOptimize(matches);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["matches"] = static_cast<double>(matches);
}

void BM_SeqMatcherSkewed(benchmark::State& state) {
  RunSkewedMatcherBench(state, PatternOp::kSeq, EvalOrderMode::kArrival);
}
void BM_SeqMatcherSkewedLazy(benchmark::State& state) {
  RunSkewedMatcherBench(state, PatternOp::kSeq, EvalOrderMode::kSelectivity);
}
void BM_ConjMatcherSkewed(benchmark::State& state) {
  RunSkewedMatcherBench(state, PatternOp::kConj, EvalOrderMode::kArrival);
}
void BM_ConjMatcherSkewedLazy(benchmark::State& state) {
  RunSkewedMatcherBench(state, PatternOp::kConj, EvalOrderMode::kSelectivity);
}

BENCHMARK(BM_SeqMatcherSkewed)
    ->ArgNames({"operands", "ratio"})
    ->Args({4, 100})
    ->Args({4, 1000});
BENCHMARK(BM_SeqMatcherSkewedLazy)
    ->ArgNames({"operands", "ratio"})
    ->Args({4, 100})
    ->Args({4, 1000});
BENCHMARK(BM_ConjMatcherSkewed)
    ->ArgNames({"operands", "ratio"})
    ->Args({4, 100})
    ->Args({4, 1000});
BENCHMARK(BM_ConjMatcherSkewedLazy)
    ->ArgNames({"operands", "ratio"})
    ->Args({4, 100})
    ->Args({4, 1000});

void BM_NegatedSeqMatcher(benchmark::State& state) {
  EventTypeRegistry registry;
  FlatPattern flat;
  flat.op = PatternOp::kSeq;
  flat.operands = {registry.RegisterPrimitive("T0"),
                   registry.RegisterPrimitive("T1")};
  flat.negated = {registry.RegisterPrimitive("T2")};
  PatternSpec spec = MakeRawPatternSpec(flat, Seconds(10), &registry);
  EventStream stream = MakeStream(20000, 3, 1.0, Seconds(10), 11);
  PatternMatcher matcher(spec);
  std::vector<Event> out;
  for (auto _ : state) {
    matcher.Reset();
    for (const Event& e : stream) {
      out.clear();
      matcher.OnWatermark(e.begin(), &out);
      matcher.OnEvent(kRawChannel, e, &out);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_NegatedSeqMatcher);

void BM_ExecutorDispatch(benchmark::State& state) {
  // Many independent queries: measures the per-event routing overhead the
  // shared plans amortize.
  int num_queries = static_cast<int>(state.range(0));
  EventTypeRegistry registry;
  std::vector<FlatQuery> queries;
  for (int q = 0; q < num_queries; ++q) {
    FlatQuery query;
    query.name = "q" + std::to_string(q);
    query.window = Seconds(10);
    query.pattern.op = PatternOp::kSeq;
    query.pattern.operands = {
        registry.RegisterPrimitive("T" + std::to_string(q % 8)),
        registry.RegisterPrimitive("T" + std::to_string((q + 1) % 8))};
    queries.push_back(query);
  }
  Jqp jqp = BuildDefaultJqp(queries, &registry);
  auto executor = Executor::Create(jqp);
  EventStream stream = MakeStream(20000, 8, 1.0, Seconds(10), 13);
  for (auto _ : state) {
    auto run = executor->Run(stream);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_ExecutorDispatch)->Arg(10)->Arg(50)->Arg(100);

// The shared executor-scaling workload: 48 two-step SEQ queries over 8
// types plus a chained consumer on every fourth query, so the plan has a
// second dataflow level and many independent components.
Jqp MakeChainedWorkloadJqp(EventTypeRegistry* registry) {
  int num_queries = 48;
  std::vector<FlatQuery> queries;
  for (int q = 0; q < num_queries; ++q) {
    FlatQuery query;
    query.name = "q" + std::to_string(q);
    query.window = Seconds(10);
    query.pattern.op = PatternOp::kSeq;
    query.pattern.operands = {
        registry->RegisterPrimitive("T" + std::to_string(q % 8)),
        registry->RegisterPrimitive("T" + std::to_string((q + 1) % 8))};
    queries.push_back(query);
  }
  Jqp jqp = BuildDefaultJqp(queries, registry);
  // Chain a consumer onto every fourth query so the plan has a second
  // dataflow level: SEQ(q_i's composite, one more primitive).
  size_t base_nodes = jqp.nodes.size();
  for (size_t q = 0; q < base_nodes; q += 4) {
    EventTypeId sub_type =
        std::get<PatternSpec>(jqp.nodes[q].spec).output_type;
    FlatPattern full{PatternOp::kSeq,
                     {queries[q].pattern.operands[0],
                      queries[q].pattern.operands[1],
                      registry->Find("T" + std::to_string((q + 5) % 8))},
                     {}};
    PatternSpec down;
    down.op = PatternOp::kSeq;
    down.window = Seconds(10);
    down.operands = {
        OperandBinding{{sub_type}, 1, {0, 1}, {}},
        OperandBinding{{full.operands[2]}, kRawChannel, {2}, {}}};
    down.output_type = RegisterOutputType(full, Seconds(10), registry);
    JqpNode down_node;
    down_node.spec = down;
    down_node.inputs = {static_cast<int32_t>(q)};
    int32_t down_id = jqp.AddNode(std::move(down_node));
    jqp.sinks.push_back(Jqp::Sink{"chained" + std::to_string(q), down_id});
  }
  return jqp;
}

// Multi-threaded executor over a many-query plan with a chained second
// layer, sweeping threads x batch size. The `matches` counter doubles as a
// semantic fingerprint: it must equal the single-threaded executor's count
// for the same workload regardless of threads/batching.
void BM_ParallelExecutor(benchmark::State& state) {
  int num_threads = static_cast<int>(state.range(0));
  size_t batch = static_cast<size_t>(state.range(1));
  EventTypeRegistry registry;
  Jqp jqp = MakeChainedWorkloadJqp(&registry);
  EventStream stream = MakeStream(20000, 8, 1.0, Seconds(10), 13);
  auto executor = ParallelExecutor::Create(jqp, num_threads, batch);
  ExecutorOptions options;
  options.count_matches_only = true;
  uint64_t matches = 0;
  for (auto _ : state) {
    auto run = executor->Run(stream, options);
    matches = run->TotalMatches();
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_ParallelExecutor)
    ->ArgNames({"threads", "batch"})
    ->Args({1, 512})
    ->Args({2, 64})
    ->Args({2, 512})
    ->Args({4, 64})
    ->Args({4, 512})
    ->Args({4, 2048})
    ->Args({8, 512})
    ->UseRealTime();

// Sharded data-parallel executor over the same workload, sweeping
// threads x shards. Wall throughput saturates at the host's core count
// (this container has one vCPU; see DESIGN.md §4), so the scaling claim
// rides on `modeled_speedup` — the LPT bound sum(shard busy)/max(shard
// busy) from the measured per-shard busy times, i.e. the speedup the same
// partition delivers when every shard has its own core. `matches` is the
// semantic fingerprint again: identical to BM_ParallelExecutor's.
void BM_ShardedExecutor(benchmark::State& state) {
  int num_threads = static_cast<int>(state.range(0));
  int num_shards = static_cast<int>(state.range(1));
  EventTypeRegistry registry;
  Jqp jqp = MakeChainedWorkloadJqp(&registry);
  EventStream stream = MakeStream(20000, 8, 1.0, Seconds(10), 13);
  auto executor = ShardedExecutor::Create(jqp, num_shards, num_threads);
  ExecutorOptions options;
  options.count_matches_only = true;
  uint64_t matches = 0;
  double total_busy = 0.0;
  double max_busy = 0.0;
  for (auto _ : state) {
    auto run = executor->Run(stream, options);
    matches = run->TotalMatches();
    total_busy = 0.0;
    max_busy = 0.0;
    for (const ShardRunStats& shard : run->sharded.per_shard) {
      total_busy += shard.busy_seconds;
      max_busy = std::max(max_busy, shard.busy_seconds);
    }
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["modeled_speedup"] =
      max_busy > 0 ? total_busy / max_busy : 1.0;
}
// The threads:1 rows sweep shard count with sequential (uncontended) shard
// replays, so their busy times — and the modeled speedup built from them —
// are clean; the threads>1 rows exercise the worker-pool dispatch path.
BENCHMARK(BM_ShardedExecutor)
    ->ArgNames({"threads", "shards"})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Args({2, 2})
    ->Args({4, 4})
    ->Args({8, 8})
    ->UseRealTime();

// --- `motto serve` ingest path (DESIGN.md §15) ---------------------------
// Sustained OnFrame throughput through the full server core (wire frame ->
// admission -> executor session -> checkpoint-batched release), plus the
// p99 per-frame service latency a client observes — the tail includes the
// checkpoint stalls on the emit path. Rows: ephemeral (no snapshots),
// periodic release without durability, and durable snapshots on disk.
// `telemetry` adds the §16 live-telemetry surface at its hot-path worst
// case: a registry on the core plus a ServeTelemetry ticked after *every*
// frame (serve's drain loop ticks per batch, so per frame is an upper
// bound), publishing a full ServeStatus every 5000 events.
void RunServeIngest(benchmark::State& state, bool telemetry) {
  const uint64_t interval = static_cast<uint64_t>(state.range(0));
  const bool durable = state.range(1) != 0;
  constexpr char kWorkload[] =
      "q0: SELECT * FROM s MATCHING [10 s : SEQ(T0, T1)]\n"
      "q1: SELECT * FROM s MATCHING [10 s : SEQ(T1, T2, T3)]\n"
      "q2: SELECT * FROM s MATCHING [10 s : CONJ(T0 & T4)]\n"
      "q3: SELECT * FROM s MATCHING [10 s : SEQ(T2, T5)]\n";
  EventTypeRegistry registry;
  auto queries = ParseWorkloadText(kWorkload, &registry);
  EventStream stream = MakeStream(50000, 6, 1.0, Seconds(10), 21);
  StreamStats stats = ComputeStats(stream);

  // Pre-decode the wire bytes once; the loop measures frame application,
  // not encoding.
  std::vector<serve::Frame> frames;
  {
    serve::EncodeStreamOptions encode;
    encode.with_end = false;
    std::string bytes = serve::EncodeStream(stream, registry, encode);
    serve::FrameDecoder decoder;
    decoder.Append(bytes.data(), bytes.size());
    serve::Frame frame;
    while (decoder.Next(&frame) == serve::FrameDecoder::Outcome::kFrame) {
      frames.push_back(frame);
    }
  }

  const std::string ckpt_dir =
      durable ? (std::filesystem::temp_directory_path() /
                 ("motto-bench-serve-" + std::to_string(::getpid())))
                    .string()
              : std::string();
  serve::ServeOptions options;
  options.checkpoint_dir = ckpt_dir;
  options.checkpoint_interval = interval;
  options.out_dir.clear();  // Count-and-discard release mode.
  obs::MetricsRegistry metrics;
  if (telemetry) options.metrics = &metrics;

  obs::Histogram latency(obs::Histogram::ExponentialBounds(1e-7, 2.0, 24));
  uint64_t matches = 0;
  uint64_t snapshots = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (!ckpt_dir.empty()) std::filesystem::remove_all(ckpt_dir);
    auto core = serve::ServeCore::Create(*queries, registry, stats, options);
    if (!core.ok()) {
      state.SkipWithError(core.status().message().c_str());
      break;
    }
    std::unique_ptr<serve::ServeTelemetry> live;
    if (telemetry) {
      serve::TelemetryOptions telemetry_options;
      telemetry_options.snapshot_interval_seconds = 0;  // Count-driven only.
      telemetry_options.snapshot_every_events = 5000;
      live = std::make_unique<serve::ServeTelemetry>(core->get(),
                                                     telemetry_options);
    }
    state.ResumeTiming();
    for (const serve::Frame& frame : frames) {
      auto start = std::chrono::steady_clock::now();
      auto applied = (*core)->OnFrame(frame);
      latency.Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
      if (!applied.ok()) {
        state.SkipWithError(applied.status().message().c_str());
        break;
      }
      if (live != nullptr) live->Tick();
    }
    auto finished = (*core)->Finish();
    if (!finished.ok()) {
      state.SkipWithError(finished.status().message().c_str());
      break;
    }
    matches = 0;
    for (const auto& [sink, count] : (*core)->sink_released()) {
      (void)sink;
      matches += count;
    }
    if (live != nullptr) snapshots = live->snapshots_taken();
  }
  if (!ckpt_dir.empty()) std::filesystem::remove_all(ckpt_dir);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["p99_ingest_to_emit_us"] = latency.Quantile(0.99) * 1e6;
  if (interval > 0) {
    state.counters["checkpoints"] = static_cast<double>(
        (stream.size() + interval - 1) / interval);
  }
  if (telemetry) state.counters["snapshots"] = static_cast<double>(snapshots);
}
void BM_ServeIngest(benchmark::State& state) {
  RunServeIngest(state, /*telemetry=*/false);
}
BENCHMARK(BM_ServeIngest)
    ->ArgNames({"interval", "durable"})
    ->Args({0, 0})
    ->Args({5000, 0})
    ->Args({5000, 1})
    ->UseRealTime();
// The telemetry acceptance row: same shape as the non-durable checkpointed
// BM_ServeIngest row, so `items_per_second` is directly comparable — the
// live-telemetry surface must cost within a few percent of it.
void BM_ServeIngestTelemetry(benchmark::State& state) {
  RunServeIngest(state, /*telemetry=*/true);
}
BENCHMARK(BM_ServeIngestTelemetry)
    ->ArgNames({"interval", "durable"})
    ->Args({5000, 0})
    ->UseRealTime();

// --- Metrics snapshot collection (DESIGN.md §16) -------------------------
// One MetricsSnapshotter::Collect() over a registry populated like a real
// serve run: serve counters plus per-node counter/gauge/histogram families.
// This is the per-tick telemetry cost the engine thread pays.
void BM_MetricsSnapshot(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  obs::MetricsRegistry registry;
  registry.GetCounter("serve.frames")->Add(100000);
  registry.GetCounter("serve.ingested_events")->Add(100000);
  registry.GetCounter("serve.released_matches")->Add(4000);
  registry.GetCounter("serve.checkpoints")->Add(20);
  registry.GetGauge("serve.queue_depth")->Set(17);
  registry.GetHistogram("serve.ingest_to_emit_seconds",
                        obs::LatencySecondsBounds())
      ->Record(0.002);
  for (int i = 0; i < nodes; ++i) {
    std::string prefix = "node." + std::to_string(i);
    registry.GetCounter(prefix + ".events_in")->Add(5000 + i);
    registry.GetCounter(prefix + ".events_out")->Add(300 + i);
    registry.GetGauge(prefix + ".busy_seconds")->Set(0.01 * i);
    obs::Histogram* hist = registry.GetHistogram(prefix + ".live_partials",
                                                 obs::SizeBounds());
    for (int j = 0; j < 16; ++j) hist->Record(j);
  }
  obs::MetricsSnapshotter snapshotter(&registry);
  uint64_t instruments = 0;
  for (auto _ : state) {
    auto snapshot = snapshotter.Collect();
    benchmark::DoNotOptimize(snapshot);
    instruments = snapshot->counters.size() + snapshot->gauges.size() +
                  snapshot->histograms.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(instruments));
  state.counters["instruments"] = static_cast<double>(instruments);
}
BENCHMARK(BM_MetricsSnapshot)->ArgNames({"nodes"})->Arg(8)->Arg(64);

}  // namespace
}  // namespace motto

BENCHMARK_MAIN();
