// Reproduces Fig 13a: overall comparison on the stock market monitoring
// scenario — normalized throughput of NA/MST/LCSE/MOTTO vs basic workload
// ratio r.
//
// Flags: --events=N (stream length; --full = paper-scale 2M),
//        --queries=N (default 100), --seed=S, --exact_budget=SECONDS.
#include "overall_comparison.h"

int main(int argc, char** argv) {
  motto::bench::Flags flags(argc, argv);
  motto::bench::PrintBanner(
      "Fig 13a — stock market monitoring, overall comparison",
      "Normalized throughput vs basic workload ratio r (100 queries).");
  return motto::bench::RunOverallComparison(motto::Scenario::kStockMarket,
                                            flags);
}
