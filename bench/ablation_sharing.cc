// Ablation study (not in the paper, motivated by §IV): contribution of each
// sharing technique. Runs the mixed workload with individual techniques
// disabled and reports plan cost and measured throughput.
//
// Flags: --events=N, --queries=N, --ratio=R (basic ratio %), --seed=S.
#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "engine/executor.h"
#include "motto/rewriter.h"
#include "planner/plan_builder.h"
#include "planner/solver.h"
#include "motto/nested.h"
#include "workload/data_gen.h"
#include "workload/query_gen.h"

namespace motto::bench {
namespace {

struct Variant {
  const char* name;
  RewriterOptions options;
};

int Run(const Flags& flags) {
  int64_t num_events = flags.GetInt("events", 40000);
  int num_queries = static_cast<int>(flags.GetInt("queries", 60));
  double ratio = flags.GetDouble("ratio", 50.0) / 100.0;
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = num_events;
  stream_options.seed = seed;
  EventStream stream = GenerateStream(stream_options, &registry);
  StreamStats stats = ComputeStats(stream);

  WorkloadOptions workload_options;
  workload_options.num_queries = num_queries;
  workload_options.basic_ratio = ratio;
  workload_options.seed = seed;
  auto workload = GenerateWorkload(workload_options, &registry);
  MOTTO_CHECK(workload.ok()) << workload.status();

  std::vector<Variant> variants;
  variants.push_back({"none (NA)", RewriterOptions::None()});
  variants.push_back({"full MOTTO", RewriterOptions::Motto()});
  {
    RewriterOptions no_dst = RewriterOptions::Motto();
    no_dst.enable_dst = false;
    variants.push_back({"- DST", no_dst});
  }
  {
    RewriterOptions no_ott = RewriterOptions::Motto();
    no_ott.enable_ott = false;
    variants.push_back({"- OTT", no_ott});
  }
  {
    RewriterOptions no_mst = RewriterOptions::Motto();
    no_mst.enable_mst = false;
    variants.push_back({"- MST merges", no_mst});
  }
  {
    RewriterOptions no_windows = RewriterOptions::Motto();
    no_windows.enable_windows = false;
    variants.push_back({"- window handling", no_windows});
  }

  std::printf(" variant            | plan cost | nodes | edges | eps\n");
  std::printf("--------------------+-----------+-------+-------+---------\n");
  double na_cost = 0.0;
  for (const Variant& variant : variants) {
    CompositeCatalog catalog;
    auto flat = DivideWorkload(workload->queries, &registry, &catalog);
    MOTTO_CHECK(flat.ok()) << flat.status();
    CostModel cost_model(stats);
    SharingGraph graph = BuildSharingGraph(*flat, variant.options, &registry,
                                           &catalog, &cost_model);
    PlannerOptions planner;
    planner.exact_budget_seconds = 3.0;
    PlanDecision decision = SelectPlan(graph, planner);
    auto jqp = BuildJqp(graph, decision, catalog, &registry);
    MOTTO_CHECK(jqp.ok()) << jqp.status();
    auto executor = Executor::Create(std::move(*jqp));
    MOTTO_CHECK(executor.ok()) << executor.status();
    auto run = executor->Run(stream);
    MOTTO_CHECK(run.ok()) << run.status();
    if (na_cost == 0.0) na_cost = decision.cost;
    std::printf(" %-18s | %9.0f | %5zu | %5zu | %8.0f\n", variant.name,
                decision.cost, graph.nodes.size(), graph.edges.size(),
                run->ThroughputEps());
    std::fflush(stdout);
  }
  std::printf(
      "\nEach disabled technique removes sharing edges, so plan cost rises\n"
      "toward the NA level; DST typically contributes the most on mixed\n"
      "workloads, OTT and window handling matter for the complex group.\n");
  return 0;
}

}  // namespace
}  // namespace motto::bench

int main(int argc, char** argv) {
  motto::bench::Flags flags(argc, argv);
  motto::bench::PrintBanner("Ablation — sharing technique contributions",
                            "MOTTO with individual techniques disabled.");
  return motto::bench::Run(flags);
}
