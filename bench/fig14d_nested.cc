// Reproduces Fig 14d: sharing benefits for nested pattern queries as the
// nested level grows from 2 to 8 (common sub-query in the innermost layer).
//
// Flags: --events=N, --queries=N, --seed=S.
#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "workload/data_gen.h"
#include "workload/harness.h"
#include "workload/query_gen.h"

namespace motto::bench {
namespace {

int Run(const Flags& flags) {
  int64_t num_events = flags.GetInt("events", 50000);
  int num_queries = static_cast<int>(flags.GetInt("queries", 40));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = num_events;
  stream_options.seed = seed;
  EventStream stream = GenerateStream(stream_options, &registry);

  std::printf(" level | NA eps    | MOTTO xNA | flat sub-queries | matches\n");
  std::printf("-------+-----------+-----------+------------------+--------\n");
  for (int level = 2; level <= 8; level += 2) {
    WorkloadOptions workload_options;
    workload_options.num_queries = num_queries;
    workload_options.only_type = 7;  // Paper: r=0%, nested study.
    workload_options.nested_level = level;
    workload_options.seed = seed + static_cast<uint64_t>(level);
    auto workload = GenerateWorkload(workload_options, &registry);
    MOTTO_CHECK(workload.ok()) << workload.status();

    ComparisonOptions options;
    options.modes = {OptimizerMode::kNa, OptimizerMode::kMotto};
    options.warmup = true;
    options.measure_runs = static_cast<int>(flags.GetInt("runs", 3));
    auto runs = CompareModes(workload->queries, stream, &registry, options);
    MOTTO_CHECK(runs.ok()) << runs.status();
    std::printf("   %d   | %9.0f | %9.2f | %16zu | %llu\n", level,
                (*runs)[0].throughput_eps, (*runs)[1].normalized,
                (*runs)[1].jqp_nodes,
                static_cast<unsigned long long>((*runs)[0].total_matches));
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape (Fig 14d): MOTTO still reduces execution cost at every\n"
      "nested level, but the relative gain shrinks as nesting deepens (the\n"
      "shared innermost sub-query is a smaller fraction of total work).\n");
  return 0;
}

}  // namespace
}  // namespace motto::bench

int main(int argc, char** argv) {
  motto::bench::Flags flags(argc, argv);
  motto::bench::PrintBanner("Fig 14d — varying the nested level",
                            "Sharing among nested pattern queries.");
  return motto::bench::Run(flags);
}
