// Reproduces Fig 14c: sharing effectiveness while the source:beneficiary
// window ratio s_w : b_w varies from 4:1 to 1:4 (paper §VII-C).
//
// Workload: type-5 pairs (prefix sharing across window constraints).
//
// Flags: --events=N, --queries=N, --seed=S.
#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "workload/data_gen.h"
#include "workload/harness.h"
#include "workload/query_gen.h"

namespace motto::bench {
namespace {

int Run(const Flags& flags) {
  int64_t num_events = flags.GetInt("events", 50000);
  int num_queries = static_cast<int>(flags.GetInt("queries", 60));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = num_events;
  stream_options.seed = seed;
  EventStream stream = GenerateStream(stream_options, &registry);

  struct Ratio {
    const char* label;
    double value;
  };
  const Ratio ratios[] = {
      {"4:1", 4.0}, {"2:1", 2.0}, {"1:1", 1.0}, {"1:2", 0.5}, {"1:4", 0.25}};

  std::printf(" sw:bw | NA eps    | MOTTO xNA | matches\n");
  std::printf("-------+-----------+-----------+--------\n");
  for (const Ratio& ratio : ratios) {
    WorkloadOptions workload_options;
    workload_options.num_queries = num_queries;
    workload_options.base_window = Seconds(5);
    workload_options.only_type = 5;
    workload_options.window_ratio = ratio.value;
    workload_options.seed = seed;
    auto workload = GenerateWorkload(workload_options, &registry);
    MOTTO_CHECK(workload.ok()) << workload.status();

    ComparisonOptions options;
    options.modes = {OptimizerMode::kNa, OptimizerMode::kMotto};
    options.warmup = true;
    options.measure_runs = static_cast<int>(flags.GetInt("runs", 3));
    auto runs = CompareModes(workload->queries, stream, &registry, options);
    MOTTO_CHECK(runs.ok()) << runs.status();
    std::printf("  %s  | %9.0f | %9.2f | %llu\n", ratio.label,
                (*runs)[0].throughput_eps, (*runs)[1].normalized,
                static_cast<unsigned long long>((*runs)[0].total_matches));
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape (Fig 14c): MOTTO improves throughput at every ratio;\n"
      "the gain peaks at 1:1 (no window handling overhead), shrinks\n"
      "slightly for s_w > b_w (extra span filtering), and is smallest for\n"
      "s_w < b_w (the source window must be extended, raising source cost).\n");
  return 0;
}

}  // namespace
}  // namespace motto::bench

int main(int argc, char** argv) {
  motto::bench::Flags flags(argc, argv);
  motto::bench::PrintBanner("Fig 14c — varying the window constraints",
                            "Sharing across source/beneficiary window ratios.");
  return motto::bench::Run(flags);
}
