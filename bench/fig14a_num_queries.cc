// Reproduces Fig 14a: throughput improvement and optimization overhead as
// the number of queries grows, exact (branch & bound) vs approximate
// (simulated annealing) planning.
//
// Flags: --events=N, --seed=S, --exact_budget=SECONDS (default 10),
//        --max_queries=N (default 140), --sa_iterations=N.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "engine/executor.h"
#include "workload/data_gen.h"
#include "workload/harness.h"
#include "workload/query_gen.h"

namespace motto::bench {
namespace {

int Run(const Flags& flags) {
  int64_t num_events = flags.GetInt("events", 40000);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int max_queries = static_cast<int>(flags.GetInt("max_queries", 140));
  double exact_budget = flags.GetDouble("exact_budget", 10.0);
  int sa_iterations = static_cast<int>(flags.GetInt("sa_iterations", 20000));

  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = num_events;
  stream_options.seed = seed;
  EventStream stream = GenerateStream(stream_options, &registry);
  StreamStats stats = ComputeStats(stream);

  std::printf(
      " #q  | NA eps    | exact xNA | exact opt s | exact? | SA xNA | "
      "SA opt s\n");
  std::printf(
      "-----+-----------+-----------+-------------+--------+--------+------"
      "---\n");
  for (int n = 20; n <= max_queries; n += 20) {
    WorkloadOptions workload_options;
    workload_options.num_queries = n;
    workload_options.basic_ratio = 1.0;  // Paper: r=100% for this study.
    workload_options.seed = seed;  // Same seed: workloads grow by extension.
    auto workload = GenerateWorkload(workload_options, &registry);
    MOTTO_CHECK(workload.ok()) << workload.status();

    auto measure = [&](bool force_approximate, double* eps, double* opt_s,
                       bool* exact) {
      OptimizerOptions options;
      options.mode = OptimizerMode::kMotto;
      options.planner.exact_budget_seconds = exact_budget;
      options.planner.force_approximate = force_approximate;
      options.planner.sa_iterations = sa_iterations;
      Optimizer optimizer(&registry, stats, options);
      auto outcome = optimizer.Optimize(workload->queries);
      MOTTO_CHECK(outcome.ok()) << outcome.status();
      *opt_s = outcome->rewrite_seconds + outcome->plan_seconds;
      *exact = outcome->exact;
      auto executor = Executor::Create(std::move(outcome->jqp));
      MOTTO_CHECK(executor.ok()) << executor.status();
      ExecutorOptions measure;
      measure.count_matches_only = true;
      executor->Run(stream, measure).status();  // Warmup.
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        auto run = executor->Run(stream, measure);
        MOTTO_CHECK(run.ok()) << run.status();
        best = std::max(best, run->ThroughputEps());
      }
      *eps = best;
    };

    OptimizerOptions na_options;
    na_options.mode = OptimizerMode::kNa;
    Optimizer na_optimizer(&registry, stats, na_options);
    auto na_outcome = na_optimizer.Optimize(workload->queries);
    MOTTO_CHECK(na_outcome.ok()) << na_outcome.status();
    auto na_executor = Executor::Create(std::move(na_outcome->jqp));
    MOTTO_CHECK(na_executor.ok());
    ExecutorOptions na_measure;
    na_measure.count_matches_only = true;
    na_executor->Run(stream, na_measure).status();  // Warmup.
    double na_eps = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto na_run = na_executor->Run(stream, na_measure);
      MOTTO_CHECK(na_run.ok());
      na_eps = std::max(na_eps, na_run->ThroughputEps());
    }

    double exact_eps = 0, exact_opt = 0, sa_eps = 0, sa_opt = 0;
    bool exact_flag = false, sa_flag = false;
    measure(false, &exact_eps, &exact_opt, &exact_flag);
    measure(true, &sa_eps, &sa_opt, &sa_flag);

    std::printf(" %3d | %9.0f | %9.2f | %11.3f | %6s | %6.2f | %8.3f\n", n,
                na_eps, exact_eps / na_eps, exact_opt,
                exact_flag ? "yes" : "no", sa_eps / na_eps, sa_opt);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape (Fig 14a): improvement grows with #queries for both\n"
      "planners; exact >= approximate in plan quality; approximate planning\n"
      "time stays roughly constant while exact time climbs steeply (the\n"
      "policy switches to SA when the exact budget is exhausted).\n");
  return 0;
}

}  // namespace
}  // namespace motto::bench

int main(int argc, char** argv) {
  motto::bench::Flags flags(argc, argv);
  motto::bench::PrintBanner(
      "Fig 14a — varying the number of queries",
      "Throughput improvement and optimization overhead, exact vs SA.");
  return motto::bench::Run(flags);
}
