// Reproduces Fig 14b: throughput while varying the number of CPU cores
// from 1 to 6 over the MOTTO-optimized plan.
//
// The paper ran on a VM with up to 6 physical cores. This container has one
// vCPU, so wall-clock runs cannot exhibit real speedup; the bench therefore
// (a) measures true per-node busy times single-threaded and models the
// k-worker makespan under LPT partitioning (DESIGN.md §4), and (b) can also
// run the real multi-threaded executor for wall-clock numbers
// (--wallclock=1), which are meaningful on multi-core hosts.
//
// Flags: --events=N, --queries=N, --seed=S, --max_cores=N, --wallclock=0/1.
#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "workload/data_gen.h"
#include "workload/harness.h"
#include "workload/query_gen.h"

namespace motto::bench {
namespace {

int Run(const Flags& flags) {
  int64_t num_events = flags.GetInt("events", 40000);
  int num_queries = static_cast<int>(flags.GetInt("queries", 100));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int max_cores = static_cast<int>(flags.GetInt("max_cores", 6));
  bool wallclock = flags.GetBool("wallclock", false);

  EventTypeRegistry registry;
  StreamOptions stream_options;
  stream_options.num_events = num_events;
  stream_options.seed = seed;
  EventStream stream = GenerateStream(stream_options, &registry);
  StreamStats stats = ComputeStats(stream);

  WorkloadOptions workload_options;
  workload_options.num_queries = num_queries;
  workload_options.basic_ratio = 1.0;
  workload_options.seed = seed;
  auto workload = GenerateWorkload(workload_options, &registry);
  MOTTO_CHECK(workload.ok()) << workload.status();

  OptimizerOptions options;
  options.mode = OptimizerMode::kMotto;
  Optimizer optimizer(&registry, stats, options);
  auto outcome = optimizer.Optimize(workload->queries);
  MOTTO_CHECK(outcome.ok()) << outcome.status();
  std::printf("MOTTO plan: %zu operator nodes (sharing keeps enough\n"
              "independent sub-queries for parallelism, §VII-C).\n\n",
              outcome->jqp.nodes.size());

  auto points =
      MeasureCoreScaling(outcome->jqp, stream, max_cores, wallclock);
  MOTTO_CHECK(points.ok()) << points.status();

  std::printf(" cores | modeled speedup | modeled eps ");
  if (wallclock) std::printf("| wallclock eps");
  std::printf("\n-------+-----------------+-------------");
  if (wallclock) std::printf("+--------------");
  std::printf("\n");
  for (const ScalingPoint& point : *points) {
    std::printf("   %d   | %15.2f | %11.0f ", point.threads,
                point.modeled_speedup, point.modeled_throughput_eps);
    if (wallclock) std::printf("| %12.0f", point.wallclock_throughput_eps);
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape (Fig 14b): near-linear throughput scaling from 1 to 6\n"
      "cores; sharing does not reduce parallelism because the jumbo plan\n"
      "retains many independent operator nodes.\n");
  return 0;
}

}  // namespace
}  // namespace motto::bench

int main(int argc, char** argv) {
  motto::bench::Flags flags(argc, argv);
  motto::bench::PrintBanner("Fig 14b — varying the number of CPU cores",
                            "Scaling of the MOTTO plan across workers.");
  return motto::bench::Run(flags);
}
