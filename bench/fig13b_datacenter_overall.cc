// Reproduces Fig 13b: overall comparison on the data center monitoring
// scenario — normalized throughput of NA/MST/LCSE/MOTTO vs basic workload
// ratio r.
//
// Flags: --events=N (stream length; --full = paper-scale 4M),
//        --queries=N (default 100), --seed=S, --exact_budget=SECONDS.
#include "overall_comparison.h"

int main(int argc, char** argv) {
  motto::bench::Flags flags(argc, argv);
  motto::bench::PrintBanner(
      "Fig 13b — data center monitoring, overall comparison",
      "Normalized throughput vs basic workload ratio r (100 queries).");
  return motto::bench::RunOverallComparison(motto::Scenario::kDataCenter,
                                            flags);
}
