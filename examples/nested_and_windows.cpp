// Nested pattern queries and different window constraints — the paper's
// §IV-D extensions. Shows how q11/q12 (Example 7) are divided into flat
// sub-queries, how the shared inner CONJ(E2&E3) is computed once, and how a
// narrower-window twin is answered through a span filter.
//
//   ./build/examples/nested_and_windows
#include <cstdio>

#include "ccl/parser.h"
#include "common/check.h"
#include "engine/executor.h"
#include "motto/catalog.h"
#include "motto/nested.h"
#include "motto/optimizer.h"
#include "workload/data_gen.h"

int main() {
  using namespace motto;
  EventTypeRegistry registry;

  // Paper Example 7 (+ a different-window variant of q12).
  auto q11 = ccl::ParseQuery(
      "SELECT * FROM s MATCHING [20 sec : SEQ(TSLA, DISJ(NVDA|SAP), "
      "CONJ(NFLX & SAP))]",
      &registry, "q11");
  auto q12 = ccl::ParseQuery(
      "SELECT * FROM s MATCHING [20 sec : SEQ(TSLA, CONJ(NFLX & SAP))]",
      &registry, "q12");
  auto q12_narrow = ccl::ParseQuery(
      "SELECT * FROM s MATCHING [5 sec : SEQ(TSLA, CONJ(NFLX & SAP))]",
      &registry, "q12_narrow");
  MOTTO_CHECK(q11.ok()) << q11.status();
  MOTTO_CHECK(q12.ok()) << q12.status();
  MOTTO_CHECK(q12_narrow.ok()) << q12_narrow.status();

  // Show the nested division (paper Table II).
  {
    CompositeCatalog catalog;
    auto chain = DivideNested(*q11, &registry, &catalog);
    MOTTO_CHECK(chain.ok());
    std::printf("q11 divides into %zu flat sub-queries:\n", chain->size());
    for (const FlatQuery& flat : *chain) {
      std::printf("  %-10s %s\n", flat.name.c_str(),
                  flat.pattern.ToString(registry).c_str());
    }
  }

  StreamOptions stream_options;
  stream_options.num_events = 150000;
  EventStream stream = GenerateStream(stream_options, &registry);
  StreamStats stats = ComputeStats(stream);

  Optimizer optimizer(&registry, stats, OptimizerOptions{});
  auto outcome = optimizer.Optimize({*q11, *q12, *q12_narrow});
  MOTTO_CHECK(outcome.ok()) << outcome.status();

  std::printf("\nsharing graph:\n%s",
              outcome->sharing_graph.ToString(registry).c_str());
  std::printf("\nshared plan (note the single CONJ(NFLX & SAP) node and the "
              "span filter for q12_narrow):\n%s\n",
              outcome->jqp.ToString(registry).c_str());

  auto executor = Executor::Create(outcome->jqp);
  MOTTO_CHECK(executor.ok()) << executor.status();
  auto run = executor->Run(stream);
  MOTTO_CHECK(run.ok()) << run.status();
  for (const char* name : {"q11", "q12", "q12_narrow"}) {
    std::printf("%-11s %zu matches\n", name, run->sink_events.at(name).size());
  }
  std::printf("modeled cost %.1f vs %.1f unshared\n", outcome->planned_cost,
              outcome->default_cost);
  return 0;
}
