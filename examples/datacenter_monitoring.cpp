// Data center monitoring — the paper's §VII-A scenario with negation:
//   q_a = SEQ(start_tx, end_tx, delivery_ok, NEG(ack))   "packet lost?"
//   q_b = SEQ(start_tx, end_tx)                           transmission probe
// q_b is exactly the SEQ(start_tx, end_tx) prefix of q_a, so MOTTO computes
// it once and feeds q_a from its output; q_a additionally requires that no
// acknowledgment arrives within the window.
//
//   ./build/examples/datacenter_monitoring
#include <cstdio>

#include "ccl/parser.h"
#include "common/check.h"
#include "engine/executor.h"
#include "motto/optimizer.h"
#include "workload/data_gen.h"

int main() {
  using namespace motto;
  EventTypeRegistry registry;

  auto qa = ccl::ParseQuery(
      "SELECT * FROM dc MATCHING [5 sec : "
      "SEQ(net_start_tx, net_end_tx, net_delivery_ok, NEG(net_ack))]",
      &registry, "qa_lost_packet");
  auto qb = ccl::ParseQuery(
      "SELECT * FROM dc MATCHING [5 sec : "
      "SEQ(net_start_tx, net_end_tx)]",
      &registry, "qb_round_trip");
  MOTTO_CHECK(qa.ok()) << qa.status();
  MOTTO_CHECK(qb.ok()) << qb.status();

  StreamOptions stream_options;
  stream_options.scenario = Scenario::kDataCenter;
  stream_options.num_events = 300000;
  EventStream stream = GenerateStream(stream_options, &registry);
  StreamStats stats = ComputeStats(stream);

  Optimizer optimizer(&registry, stats, OptimizerOptions{});
  auto outcome = optimizer.Optimize({*qa, *qb});
  MOTTO_CHECK(outcome.ok()) << outcome.status();
  std::printf("shared plan:\n%s\n", outcome->jqp.ToString(registry).c_str());

  auto executor = Executor::Create(outcome->jqp);
  MOTTO_CHECK(executor.ok()) << executor.status();
  auto run = executor->Run(stream);
  MOTTO_CHECK(run.ok()) << run.status();

  std::printf("%llu events at %.0f events/s\n",
              static_cast<unsigned long long>(run->raw_events),
              run->ThroughputEps());
  std::printf("suspected lost packets (qa): %zu\n",
              run->sink_events.at("qa_lost_packet").size());

  // qb's matches feed a post-aggregation: average transmission span, the
  // paper's example of a pattern query with downstream analytics.
  const auto& probes = run->sink_events.at("qb_round_trip");
  double total_span_ms = 0;
  for (const Event& e : probes) {
    total_span_ms += static_cast<double>(e.span()) / kMicrosPerMilli;
  }
  std::printf("round-trip probes (qb): %zu, avg span %.1f ms\n",
              probes.size(),
              probes.empty() ? 0.0 : total_span_ms / probes.size());
  return 0;
}
