// Plan explainer: parse CCL queries from the command line (or use a default
// workload), print the sharing graph, the chosen DSMT decision, and the
// resulting jumbo query plan — MOTTO's equivalent of EXPLAIN.
//
//   ./build/examples/explain_plan \
//     "SELECT * FROM s MATCHING [10 sec : SEQ(AAPL, MSFT, IBM)]" \
//     "SELECT * FROM s MATCHING [10 sec : SEQ(AAPL, IBM)]" \
//     "SELECT * FROM s MATCHING [10 sec : CONJ(AAPL & IBM)]"
#include <cstdio>
#include <string>
#include <vector>

#include "ccl/parser.h"
#include "common/check.h"
#include "motto/optimizer.h"
#include "planner/solver.h"
#include "workload/data_gen.h"

int main(int argc, char** argv) {
  using namespace motto;
  EventTypeRegistry registry;

  std::vector<std::string> texts;
  for (int i = 1; i < argc; ++i) texts.emplace_back(argv[i]);
  if (texts.empty()) {
    texts = {
        "SELECT * FROM s MATCHING [10 sec : SEQ(AAPL, MSFT, IBM)]",
        "SELECT * FROM s MATCHING [10 sec : SEQ(AAPL, IBM)]",
        "SELECT * FROM s MATCHING [10 sec : SEQ(AAPL, MSFT, NVDA)]",
        "SELECT * FROM s MATCHING [10 sec : SEQ(MSFT, NVDA, IBM)]",
        "SELECT * FROM s MATCHING [10 sec : CONJ(AAPL & IBM)]",
    };
  }
  std::vector<Query> queries;
  for (size_t i = 0; i < texts.size(); ++i) {
    auto query = ccl::ParseQuery(texts[i], &registry,
                                 "q" + std::to_string(i + 1));
    if (!query.ok()) {
      std::fprintf(stderr, "parse error in query %zu: %s\n", i + 1,
                   query.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*std::move(query));
    std::printf("q%zu: %s\n", i + 1, texts[i].c_str());
  }

  // Statistics from a sample stream (a production deployment would use live
  // stream statistics).
  StreamOptions stream_options;
  stream_options.num_events = 30000;
  EventStream stream = GenerateStream(stream_options, &registry);
  StreamStats stats = ComputeStats(stream);

  Optimizer optimizer(&registry, stats, OptimizerOptions{});
  auto outcome = optimizer.Optimize(queries);
  MOTTO_CHECK(outcome.ok()) << outcome.status();

  std::printf("\n-- sharing graph (T=terminal, S=interesting sub-query) --\n%s",
              outcome->sharing_graph.ToString(registry).c_str());

  std::printf("\n-- DSMT decision (%s, %.3fs rewrite + %.3fs planning) --\n",
              outcome->exact ? "exact branch & bound" : "simulated annealing",
              outcome->rewrite_seconds, outcome->plan_seconds);
  for (size_t v = 0; v < outcome->decision.choice.size(); ++v) {
    int32_t choice = outcome->decision.choice[v];
    const SharingNode& node = outcome->sharing_graph.nodes[v];
    if (choice == kNodeNotSelected) continue;
    if (choice == kNodeFromGround) {
      std::printf("  %-40s <- raw stream (cost %.2f)\n", node.key.c_str(),
                  node.scratch_cost);
    } else {
      const SharingEdge& edge =
          outcome->sharing_graph.edges[static_cast<size_t>(choice)];
      std::printf("  %-40s <- %s via %s (cost %.2f)\n", node.key.c_str(),
                  outcome->sharing_graph.nodes[static_cast<size_t>(edge.source)]
                      .key.c_str(),
                  std::string(RecipeKindName(edge.recipe.kind)).c_str(),
                  edge.cost);
    }
  }
  std::printf("plan cost %.2f vs %.2f unshared (%.0f%% saved)\n",
              outcome->planned_cost, outcome->default_cost,
              100.0 * (1.0 - outcome->planned_cost / outcome->default_cost));

  std::printf("\n-- executable jumbo query plan --\n%s",
              outcome->jqp.ToString(registry).c_str());
  return 0;
}
