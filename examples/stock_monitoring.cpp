// Stock market monitoring — the paper's Figure 1 scenario. Three analysts
// register overlapping pattern queries over trade events; MOTTO shares the
// common sub-patterns (all three watch buy_IBM-style events).
//
//   ./build/examples/stock_monitoring
#include <cstdio>

#include "ccl/parser.h"
#include "common/check.h"
#include "engine/executor.h"
#include "motto/optimizer.h"
#include "workload/data_gen.h"
#include "workload/harness.h"

int main() {
  using namespace motto;
  EventTypeRegistry registry;

  // The intro's queries, adapted to trade-event types: within one minute of
  // stream time, sequences of significant orders across symbols.
  // "Significant" orders are modelled with payload predicates, as in the
  // paper's <buy_order, stockId> derived events.
  std::vector<std::pair<const char*, const char*>> ccl = {
      {"Q1", "SELECT * FROM market MATCHING [1 min : "
             "SEQ(MSFT, AAPL[volume > 50000], IBM[volume > 50000], NVDA)]"},
      {"Q2", "SELECT * FROM market MATCHING [1 min : "
             "SEQ(AAPL[volume > 50000], IBM[volume > 50000], NVDA)]"},
      {"Q3", "SELECT * FROM market MATCHING [1 min : "
             "SEQ(GOOG, AAPL[volume > 50000], IBM[volume > 50000])]"},
      // A risk desk watches the same names without caring about order.
      {"Q4", "SELECT * FROM market MATCHING [1 min : CONJ(AAPL & IBM)]"},
  };
  std::vector<Query> queries;
  for (const auto& [name, text] : ccl) {
    auto query = ccl::ParseQuery(text, &registry, name);
    MOTTO_CHECK(query.ok()) << query.status();
    queries.push_back(*std::move(query));
    std::printf("%s: %s\n", name, text);
  }

  StreamOptions stream_options;
  stream_options.scenario = Scenario::kStockMarket;
  stream_options.num_events = 100000;
  EventStream stream = GenerateStream(stream_options, &registry);
  std::printf("\nreplaying %zu trade events (%s scenario)\n\n", stream.size(),
              std::string(ScenarioName(stream_options.scenario)).c_str());

  ComparisonOptions options;
  options.modes = {OptimizerMode::kNa, OptimizerMode::kMotto};
  options.verify_matches = true;  // Cross-check identical match sets.
  options.warmup = true;
  options.measure_runs = 2;
  auto runs = CompareModes(queries, stream, &registry, options);
  MOTTO_CHECK(runs.ok()) << runs.status();
  for (const ModeRun& run : *runs) {
    std::printf("%-6s: %8.0f events/s (x%.2f), %llu matches, %zu plan nodes\n",
                std::string(OptimizerModeName(run.mode)).c_str(),
                run.throughput_eps, run.normalized,
                static_cast<unsigned long long>(run.total_matches),
                run.jqp_nodes);
  }

  // Show what the optimizer actually built.
  StreamStats stats = ComputeStats(stream);
  OptimizerOptions optimizer_options;
  Optimizer optimizer(&registry, stats, optimizer_options);
  auto outcome = optimizer.Optimize(queries);
  MOTTO_CHECK(outcome.ok());
  std::printf("\nshared jumbo query plan:\n%s",
              outcome->jqp.ToString(registry).c_str());
  return 0;
}
