// Quickstart: register two overlapping pattern queries, let MOTTO build a
// shared plan, and run it over a small generated stream.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "ccl/parser.h"
#include "common/check.h"
#include "engine/executor.h"
#include "motto/optimizer.h"
#include "workload/data_gen.h"

int main() {
  using namespace motto;

  // 1. An event type registry and two CCL pattern queries. q_small's result
  //    (every E-followed-by-G within 5 seconds) can be reused by q_big.
  EventTypeRegistry registry;
  auto q_small = ccl::ParseQuery(
      "SELECT * FROM trades MATCHING [5 sec : SEQ(AAPL, GOOG)]", &registry,
      "q_small");
  auto q_big = ccl::ParseQuery(
      "SELECT * FROM trades MATCHING [5 sec : SEQ(AAPL, GOOG, MSFT)]",
      &registry, "q_big");
  MOTTO_CHECK(q_small.ok()) << q_small.status();
  MOTTO_CHECK(q_big.ok()) << q_big.status();

  // 2. A synthetic trade stream (13 stock symbols, Zipf-skewed rates).
  StreamOptions stream_options;
  stream_options.num_events = 50000;
  EventStream stream = GenerateStream(stream_options, &registry);
  StreamStats stats = ComputeStats(stream);

  // 3. Optimize: MOTTO discovers that q_small is a prefix of q_big and
  //    builds one shared jumbo query plan.
  Optimizer optimizer(&registry, stats, OptimizerOptions{});
  auto outcome = optimizer.Optimize({*q_small, *q_big});
  MOTTO_CHECK(outcome.ok()) << outcome.status();
  std::printf("Jumbo query plan (%zu nodes, modeled cost %.1f vs %.1f "
              "unshared):\n%s\n",
              outcome->jqp.nodes.size(), outcome->planned_cost,
              outcome->default_cost,
              outcome->jqp.ToString(registry).c_str());

  // 4. Execute and inspect matches.
  auto executor = Executor::Create(outcome->jqp);
  MOTTO_CHECK(executor.ok()) << executor.status();
  auto run = executor->Run(stream);
  MOTTO_CHECK(run.ok()) << run.status();
  std::printf("Replayed %llu events at %.0f events/s\n",
              static_cast<unsigned long long>(run->raw_events),
              run->ThroughputEps());
  for (const auto& [query, events] : run->sink_events) {
    std::printf("  %-8s %zu matches\n", query.c_str(), events.size());
  }
  // Show one match with its constituents.
  const auto& big_matches = run->sink_events.at("q_big");
  if (!big_matches.empty()) {
    const Event& match = big_matches.front();
    std::printf("first q_big match (span %lldus):\n",
                static_cast<long long>(match.span()));
    for (const Constituent& c : match.constituents()) {
      std::printf("  slot %d: %s @ %lldus\n", c.slot,
                  registry.NameOf(c.type).c_str(),
                  static_cast<long long>(c.ts));
    }
  }
  return 0;
}
