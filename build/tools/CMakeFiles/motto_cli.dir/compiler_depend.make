# Empty compiler generated dependencies file for motto_cli.
# This may be replaced when dependencies are built.
