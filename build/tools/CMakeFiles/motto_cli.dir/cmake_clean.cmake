file(REMOVE_RECURSE
  "CMakeFiles/motto_cli.dir/motto_cli.cc.o"
  "CMakeFiles/motto_cli.dir/motto_cli.cc.o.d"
  "motto"
  "motto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
