# Empty dependencies file for motto_engine.
# This may be replaced when dependencies are built.
