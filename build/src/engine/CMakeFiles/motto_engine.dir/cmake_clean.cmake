file(REMOVE_RECURSE
  "CMakeFiles/motto_engine.dir/executor.cc.o"
  "CMakeFiles/motto_engine.dir/executor.cc.o.d"
  "CMakeFiles/motto_engine.dir/filters.cc.o"
  "CMakeFiles/motto_engine.dir/filters.cc.o.d"
  "CMakeFiles/motto_engine.dir/graph.cc.o"
  "CMakeFiles/motto_engine.dir/graph.cc.o.d"
  "CMakeFiles/motto_engine.dir/matcher.cc.o"
  "CMakeFiles/motto_engine.dir/matcher.cc.o.d"
  "CMakeFiles/motto_engine.dir/nfa.cc.o"
  "CMakeFiles/motto_engine.dir/nfa.cc.o.d"
  "CMakeFiles/motto_engine.dir/parallel_executor.cc.o"
  "CMakeFiles/motto_engine.dir/parallel_executor.cc.o.d"
  "CMakeFiles/motto_engine.dir/plan_util.cc.o"
  "CMakeFiles/motto_engine.dir/plan_util.cc.o.d"
  "libmotto_engine.a"
  "libmotto_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
