
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/motto_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/motto_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/filters.cc" "src/engine/CMakeFiles/motto_engine.dir/filters.cc.o" "gcc" "src/engine/CMakeFiles/motto_engine.dir/filters.cc.o.d"
  "/root/repo/src/engine/graph.cc" "src/engine/CMakeFiles/motto_engine.dir/graph.cc.o" "gcc" "src/engine/CMakeFiles/motto_engine.dir/graph.cc.o.d"
  "/root/repo/src/engine/matcher.cc" "src/engine/CMakeFiles/motto_engine.dir/matcher.cc.o" "gcc" "src/engine/CMakeFiles/motto_engine.dir/matcher.cc.o.d"
  "/root/repo/src/engine/nfa.cc" "src/engine/CMakeFiles/motto_engine.dir/nfa.cc.o" "gcc" "src/engine/CMakeFiles/motto_engine.dir/nfa.cc.o.d"
  "/root/repo/src/engine/parallel_executor.cc" "src/engine/CMakeFiles/motto_engine.dir/parallel_executor.cc.o" "gcc" "src/engine/CMakeFiles/motto_engine.dir/parallel_executor.cc.o.d"
  "/root/repo/src/engine/plan_util.cc" "src/engine/CMakeFiles/motto_engine.dir/plan_util.cc.o" "gcc" "src/engine/CMakeFiles/motto_engine.dir/plan_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/motto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/motto_event.dir/DependInfo.cmake"
  "/root/repo/build/src/ccl/CMakeFiles/motto_ccl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/motto_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
