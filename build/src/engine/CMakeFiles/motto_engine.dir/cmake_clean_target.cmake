file(REMOVE_RECURSE
  "libmotto_engine.a"
)
