
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/sequence.cc" "src/util/CMakeFiles/motto_util.dir/sequence.cc.o" "gcc" "src/util/CMakeFiles/motto_util.dir/sequence.cc.o.d"
  "/root/repo/src/util/suffix_tree.cc" "src/util/CMakeFiles/motto_util.dir/suffix_tree.cc.o" "gcc" "src/util/CMakeFiles/motto_util.dir/suffix_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/motto_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
