# Empty compiler generated dependencies file for motto_util.
# This may be replaced when dependencies are built.
