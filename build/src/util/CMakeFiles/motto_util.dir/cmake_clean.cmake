file(REMOVE_RECURSE
  "CMakeFiles/motto_util.dir/sequence.cc.o"
  "CMakeFiles/motto_util.dir/sequence.cc.o.d"
  "CMakeFiles/motto_util.dir/suffix_tree.cc.o"
  "CMakeFiles/motto_util.dir/suffix_tree.cc.o.d"
  "libmotto_util.a"
  "libmotto_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
