file(REMOVE_RECURSE
  "libmotto_util.a"
)
