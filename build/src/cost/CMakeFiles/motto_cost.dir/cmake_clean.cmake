file(REMOVE_RECURSE
  "CMakeFiles/motto_cost.dir/cost_model.cc.o"
  "CMakeFiles/motto_cost.dir/cost_model.cc.o.d"
  "libmotto_cost.a"
  "libmotto_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
