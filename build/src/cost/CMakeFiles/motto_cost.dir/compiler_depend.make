# Empty compiler generated dependencies file for motto_cost.
# This may be replaced when dependencies are built.
