
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/cost_model.cc" "src/cost/CMakeFiles/motto_cost.dir/cost_model.cc.o" "gcc" "src/cost/CMakeFiles/motto_cost.dir/cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/motto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/motto_event.dir/DependInfo.cmake"
  "/root/repo/build/src/ccl/CMakeFiles/motto_ccl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/motto_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
