file(REMOVE_RECURSE
  "libmotto_cost.a"
)
