file(REMOVE_RECURSE
  "libmotto_ccl.a"
)
