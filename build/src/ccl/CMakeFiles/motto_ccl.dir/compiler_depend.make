# Empty compiler generated dependencies file for motto_ccl.
# This may be replaced when dependencies are built.
