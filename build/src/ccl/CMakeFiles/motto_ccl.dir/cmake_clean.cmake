file(REMOVE_RECURSE
  "CMakeFiles/motto_ccl.dir/lexer.cc.o"
  "CMakeFiles/motto_ccl.dir/lexer.cc.o.d"
  "CMakeFiles/motto_ccl.dir/parser.cc.o"
  "CMakeFiles/motto_ccl.dir/parser.cc.o.d"
  "CMakeFiles/motto_ccl.dir/pattern.cc.o"
  "CMakeFiles/motto_ccl.dir/pattern.cc.o.d"
  "CMakeFiles/motto_ccl.dir/predicate.cc.o"
  "CMakeFiles/motto_ccl.dir/predicate.cc.o.d"
  "libmotto_ccl.a"
  "libmotto_ccl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_ccl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
