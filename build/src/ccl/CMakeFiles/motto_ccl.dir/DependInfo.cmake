
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccl/lexer.cc" "src/ccl/CMakeFiles/motto_ccl.dir/lexer.cc.o" "gcc" "src/ccl/CMakeFiles/motto_ccl.dir/lexer.cc.o.d"
  "/root/repo/src/ccl/parser.cc" "src/ccl/CMakeFiles/motto_ccl.dir/parser.cc.o" "gcc" "src/ccl/CMakeFiles/motto_ccl.dir/parser.cc.o.d"
  "/root/repo/src/ccl/pattern.cc" "src/ccl/CMakeFiles/motto_ccl.dir/pattern.cc.o" "gcc" "src/ccl/CMakeFiles/motto_ccl.dir/pattern.cc.o.d"
  "/root/repo/src/ccl/predicate.cc" "src/ccl/CMakeFiles/motto_ccl.dir/predicate.cc.o" "gcc" "src/ccl/CMakeFiles/motto_ccl.dir/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/motto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/motto_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/motto_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
