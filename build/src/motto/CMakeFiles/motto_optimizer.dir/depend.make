# Empty dependencies file for motto_optimizer.
# This may be replaced when dependencies are built.
