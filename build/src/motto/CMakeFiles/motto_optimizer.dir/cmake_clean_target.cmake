file(REMOVE_RECURSE
  "libmotto_optimizer.a"
)
