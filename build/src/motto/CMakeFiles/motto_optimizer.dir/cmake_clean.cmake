file(REMOVE_RECURSE
  "CMakeFiles/motto_optimizer.dir/__/planner/plan_builder.cc.o"
  "CMakeFiles/motto_optimizer.dir/__/planner/plan_builder.cc.o.d"
  "CMakeFiles/motto_optimizer.dir/__/planner/solver.cc.o"
  "CMakeFiles/motto_optimizer.dir/__/planner/solver.cc.o.d"
  "CMakeFiles/motto_optimizer.dir/catalog.cc.o"
  "CMakeFiles/motto_optimizer.dir/catalog.cc.o.d"
  "CMakeFiles/motto_optimizer.dir/nested.cc.o"
  "CMakeFiles/motto_optimizer.dir/nested.cc.o.d"
  "CMakeFiles/motto_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/motto_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/motto_optimizer.dir/rewriter.cc.o"
  "CMakeFiles/motto_optimizer.dir/rewriter.cc.o.d"
  "CMakeFiles/motto_optimizer.dir/sharing_graph.cc.o"
  "CMakeFiles/motto_optimizer.dir/sharing_graph.cc.o.d"
  "libmotto_optimizer.a"
  "libmotto_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
