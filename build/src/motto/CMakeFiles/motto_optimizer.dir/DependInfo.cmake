
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/plan_builder.cc" "src/motto/CMakeFiles/motto_optimizer.dir/__/planner/plan_builder.cc.o" "gcc" "src/motto/CMakeFiles/motto_optimizer.dir/__/planner/plan_builder.cc.o.d"
  "/root/repo/src/planner/solver.cc" "src/motto/CMakeFiles/motto_optimizer.dir/__/planner/solver.cc.o" "gcc" "src/motto/CMakeFiles/motto_optimizer.dir/__/planner/solver.cc.o.d"
  "/root/repo/src/motto/catalog.cc" "src/motto/CMakeFiles/motto_optimizer.dir/catalog.cc.o" "gcc" "src/motto/CMakeFiles/motto_optimizer.dir/catalog.cc.o.d"
  "/root/repo/src/motto/nested.cc" "src/motto/CMakeFiles/motto_optimizer.dir/nested.cc.o" "gcc" "src/motto/CMakeFiles/motto_optimizer.dir/nested.cc.o.d"
  "/root/repo/src/motto/optimizer.cc" "src/motto/CMakeFiles/motto_optimizer.dir/optimizer.cc.o" "gcc" "src/motto/CMakeFiles/motto_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/motto/rewriter.cc" "src/motto/CMakeFiles/motto_optimizer.dir/rewriter.cc.o" "gcc" "src/motto/CMakeFiles/motto_optimizer.dir/rewriter.cc.o.d"
  "/root/repo/src/motto/sharing_graph.cc" "src/motto/CMakeFiles/motto_optimizer.dir/sharing_graph.cc.o" "gcc" "src/motto/CMakeFiles/motto_optimizer.dir/sharing_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/motto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/motto_event.dir/DependInfo.cmake"
  "/root/repo/build/src/ccl/CMakeFiles/motto_ccl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/motto_util.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/motto_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/motto_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
