# Empty compiler generated dependencies file for motto_workload.
# This may be replaced when dependencies are built.
