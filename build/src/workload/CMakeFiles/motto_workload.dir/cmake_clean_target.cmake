file(REMOVE_RECURSE
  "libmotto_workload.a"
)
