
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/data_gen.cc" "src/workload/CMakeFiles/motto_workload.dir/data_gen.cc.o" "gcc" "src/workload/CMakeFiles/motto_workload.dir/data_gen.cc.o.d"
  "/root/repo/src/workload/harness.cc" "src/workload/CMakeFiles/motto_workload.dir/harness.cc.o" "gcc" "src/workload/CMakeFiles/motto_workload.dir/harness.cc.o.d"
  "/root/repo/src/workload/io.cc" "src/workload/CMakeFiles/motto_workload.dir/io.cc.o" "gcc" "src/workload/CMakeFiles/motto_workload.dir/io.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/workload/CMakeFiles/motto_workload.dir/query_gen.cc.o" "gcc" "src/workload/CMakeFiles/motto_workload.dir/query_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/motto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/motto_event.dir/DependInfo.cmake"
  "/root/repo/build/src/ccl/CMakeFiles/motto_ccl.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/motto_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/motto_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/motto/CMakeFiles/motto_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/motto_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
