file(REMOVE_RECURSE
  "CMakeFiles/motto_workload.dir/data_gen.cc.o"
  "CMakeFiles/motto_workload.dir/data_gen.cc.o.d"
  "CMakeFiles/motto_workload.dir/harness.cc.o"
  "CMakeFiles/motto_workload.dir/harness.cc.o.d"
  "CMakeFiles/motto_workload.dir/io.cc.o"
  "CMakeFiles/motto_workload.dir/io.cc.o.d"
  "CMakeFiles/motto_workload.dir/query_gen.cc.o"
  "CMakeFiles/motto_workload.dir/query_gen.cc.o.d"
  "libmotto_workload.a"
  "libmotto_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
