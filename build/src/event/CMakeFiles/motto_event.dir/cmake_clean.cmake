file(REMOVE_RECURSE
  "CMakeFiles/motto_event.dir/event.cc.o"
  "CMakeFiles/motto_event.dir/event.cc.o.d"
  "CMakeFiles/motto_event.dir/event_type.cc.o"
  "CMakeFiles/motto_event.dir/event_type.cc.o.d"
  "CMakeFiles/motto_event.dir/stream.cc.o"
  "CMakeFiles/motto_event.dir/stream.cc.o.d"
  "libmotto_event.a"
  "libmotto_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
