# Empty compiler generated dependencies file for motto_event.
# This may be replaced when dependencies are built.
