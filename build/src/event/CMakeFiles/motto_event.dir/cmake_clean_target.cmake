file(REMOVE_RECURSE
  "libmotto_event.a"
)
