
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/event.cc" "src/event/CMakeFiles/motto_event.dir/event.cc.o" "gcc" "src/event/CMakeFiles/motto_event.dir/event.cc.o.d"
  "/root/repo/src/event/event_type.cc" "src/event/CMakeFiles/motto_event.dir/event_type.cc.o" "gcc" "src/event/CMakeFiles/motto_event.dir/event_type.cc.o.d"
  "/root/repo/src/event/stream.cc" "src/event/CMakeFiles/motto_event.dir/stream.cc.o" "gcc" "src/event/CMakeFiles/motto_event.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/motto_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
