file(REMOVE_RECURSE
  "CMakeFiles/motto_common.dir/check.cc.o"
  "CMakeFiles/motto_common.dir/check.cc.o.d"
  "CMakeFiles/motto_common.dir/interner.cc.o"
  "CMakeFiles/motto_common.dir/interner.cc.o.d"
  "CMakeFiles/motto_common.dir/rng.cc.o"
  "CMakeFiles/motto_common.dir/rng.cc.o.d"
  "CMakeFiles/motto_common.dir/status.cc.o"
  "CMakeFiles/motto_common.dir/status.cc.o.d"
  "libmotto_common.a"
  "libmotto_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motto_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
