# Empty dependencies file for motto_common.
# This may be replaced when dependencies are built.
