file(REMOVE_RECURSE
  "libmotto_common.a"
)
