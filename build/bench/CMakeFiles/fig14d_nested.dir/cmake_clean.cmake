file(REMOVE_RECURSE
  "CMakeFiles/fig14d_nested.dir/fig14d_nested.cc.o"
  "CMakeFiles/fig14d_nested.dir/fig14d_nested.cc.o.d"
  "fig14d_nested"
  "fig14d_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14d_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
