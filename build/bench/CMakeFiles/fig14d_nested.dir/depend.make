# Empty dependencies file for fig14d_nested.
# This may be replaced when dependencies are built.
