# Empty dependencies file for fig14a_num_queries.
# This may be replaced when dependencies are built.
