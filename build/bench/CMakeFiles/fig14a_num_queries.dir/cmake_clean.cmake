file(REMOVE_RECURSE
  "CMakeFiles/fig14a_num_queries.dir/fig14a_num_queries.cc.o"
  "CMakeFiles/fig14a_num_queries.dir/fig14a_num_queries.cc.o.d"
  "fig14a_num_queries"
  "fig14a_num_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14a_num_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
