file(REMOVE_RECURSE
  "CMakeFiles/fig13a_stock_overall.dir/fig13a_stock_overall.cc.o"
  "CMakeFiles/fig13a_stock_overall.dir/fig13a_stock_overall.cc.o.d"
  "fig13a_stock_overall"
  "fig13a_stock_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_stock_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
