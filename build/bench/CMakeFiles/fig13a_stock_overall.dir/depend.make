# Empty dependencies file for fig13a_stock_overall.
# This may be replaced when dependencies are built.
