file(REMOVE_RECURSE
  "CMakeFiles/ablation_sharing.dir/ablation_sharing.cc.o"
  "CMakeFiles/ablation_sharing.dir/ablation_sharing.cc.o.d"
  "ablation_sharing"
  "ablation_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
