# Empty compiler generated dependencies file for fig13b_datacenter_overall.
# This may be replaced when dependencies are built.
