file(REMOVE_RECURSE
  "CMakeFiles/fig13b_datacenter_overall.dir/fig13b_datacenter_overall.cc.o"
  "CMakeFiles/fig13b_datacenter_overall.dir/fig13b_datacenter_overall.cc.o.d"
  "fig13b_datacenter_overall"
  "fig13b_datacenter_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_datacenter_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
