# Empty compiler generated dependencies file for micro_planner.
# This may be replaced when dependencies are built.
