file(REMOVE_RECURSE
  "CMakeFiles/micro_planner.dir/micro_planner.cc.o"
  "CMakeFiles/micro_planner.dir/micro_planner.cc.o.d"
  "micro_planner"
  "micro_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
