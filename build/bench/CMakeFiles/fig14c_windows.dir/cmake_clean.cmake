file(REMOVE_RECURSE
  "CMakeFiles/fig14c_windows.dir/fig14c_windows.cc.o"
  "CMakeFiles/fig14c_windows.dir/fig14c_windows.cc.o.d"
  "fig14c_windows"
  "fig14c_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14c_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
