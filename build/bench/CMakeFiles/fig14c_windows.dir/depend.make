# Empty dependencies file for fig14c_windows.
# This may be replaced when dependencies are built.
