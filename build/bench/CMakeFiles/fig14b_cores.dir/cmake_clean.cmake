file(REMOVE_RECURSE
  "CMakeFiles/fig14b_cores.dir/fig14b_cores.cc.o"
  "CMakeFiles/fig14b_cores.dir/fig14b_cores.cc.o.d"
  "fig14b_cores"
  "fig14b_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14b_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
