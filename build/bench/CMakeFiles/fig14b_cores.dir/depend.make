# Empty dependencies file for fig14b_cores.
# This may be replaced when dependencies are built.
