# Empty compiler generated dependencies file for micro_suffix_tree.
# This may be replaced when dependencies are built.
