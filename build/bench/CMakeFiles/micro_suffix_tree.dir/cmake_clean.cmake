file(REMOVE_RECURSE
  "CMakeFiles/micro_suffix_tree.dir/micro_suffix_tree.cc.o"
  "CMakeFiles/micro_suffix_tree.dir/micro_suffix_tree.cc.o.d"
  "micro_suffix_tree"
  "micro_suffix_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_suffix_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
