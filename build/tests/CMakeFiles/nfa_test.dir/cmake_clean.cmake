file(REMOVE_RECURSE
  "CMakeFiles/nfa_test.dir/nfa_test.cc.o"
  "CMakeFiles/nfa_test.dir/nfa_test.cc.o.d"
  "nfa_test"
  "nfa_test.pdb"
  "nfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
