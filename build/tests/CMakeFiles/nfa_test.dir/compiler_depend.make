# Empty compiler generated dependencies file for nfa_test.
# This may be replaced when dependencies are built.
