file(REMOVE_RECURSE
  "CMakeFiles/rewriter_test.dir/rewriter_test.cc.o"
  "CMakeFiles/rewriter_test.dir/rewriter_test.cc.o.d"
  "rewriter_test"
  "rewriter_test.pdb"
  "rewriter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
