# Empty compiler generated dependencies file for rewriter_test.
# This may be replaced when dependencies are built.
