# Empty dependencies file for engine_edge_test.
# This may be replaced when dependencies are built.
