file(REMOVE_RECURSE
  "CMakeFiles/engine_edge_test.dir/engine_edge_test.cc.o"
  "CMakeFiles/engine_edge_test.dir/engine_edge_test.cc.o.d"
  "engine_edge_test"
  "engine_edge_test.pdb"
  "engine_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
