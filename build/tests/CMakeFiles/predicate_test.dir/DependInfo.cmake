
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/predicate_test.cc" "tests/CMakeFiles/predicate_test.dir/predicate_test.cc.o" "gcc" "tests/CMakeFiles/predicate_test.dir/predicate_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/motto_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/motto/CMakeFiles/motto_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/motto_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/motto_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/ccl/CMakeFiles/motto_ccl.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/motto_event.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/motto_util.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/motto_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
