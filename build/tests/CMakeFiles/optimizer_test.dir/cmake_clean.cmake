file(REMOVE_RECURSE
  "CMakeFiles/optimizer_test.dir/optimizer_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer_test.cc.o.d"
  "optimizer_test"
  "optimizer_test.pdb"
  "optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
