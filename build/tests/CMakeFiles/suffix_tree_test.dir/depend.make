# Empty dependencies file for suffix_tree_test.
# This may be replaced when dependencies are built.
