file(REMOVE_RECURSE
  "CMakeFiles/suffix_tree_test.dir/suffix_tree_test.cc.o"
  "CMakeFiles/suffix_tree_test.dir/suffix_tree_test.cc.o.d"
  "suffix_tree_test"
  "suffix_tree_test.pdb"
  "suffix_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suffix_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
