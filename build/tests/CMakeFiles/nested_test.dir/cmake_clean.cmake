file(REMOVE_RECURSE
  "CMakeFiles/nested_test.dir/nested_test.cc.o"
  "CMakeFiles/nested_test.dir/nested_test.cc.o.d"
  "nested_test"
  "nested_test.pdb"
  "nested_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
