# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sequence_test[1]_include.cmake")
include("/root/repo/build/tests/suffix_tree_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/nfa_test[1]_include.cmake")
include("/root/repo/build/tests/matcher_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/nested_test[1]_include.cmake")
include("/root/repo/build/tests/rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/filters_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
