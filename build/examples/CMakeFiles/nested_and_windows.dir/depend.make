# Empty dependencies file for nested_and_windows.
# This may be replaced when dependencies are built.
