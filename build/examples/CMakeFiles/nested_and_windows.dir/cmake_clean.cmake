file(REMOVE_RECURSE
  "CMakeFiles/nested_and_windows.dir/nested_and_windows.cpp.o"
  "CMakeFiles/nested_and_windows.dir/nested_and_windows.cpp.o.d"
  "nested_and_windows"
  "nested_and_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_and_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
