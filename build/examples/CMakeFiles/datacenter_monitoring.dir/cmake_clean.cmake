file(REMOVE_RECURSE
  "CMakeFiles/datacenter_monitoring.dir/datacenter_monitoring.cpp.o"
  "CMakeFiles/datacenter_monitoring.dir/datacenter_monitoring.cpp.o.d"
  "datacenter_monitoring"
  "datacenter_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
