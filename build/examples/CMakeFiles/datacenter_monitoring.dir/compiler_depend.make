# Empty compiler generated dependencies file for datacenter_monitoring.
# This may be replaced when dependencies are built.
