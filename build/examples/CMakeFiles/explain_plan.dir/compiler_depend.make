# Empty compiler generated dependencies file for explain_plan.
# This may be replaced when dependencies are built.
