file(REMOVE_RECURSE
  "CMakeFiles/explain_plan.dir/explain_plan.cpp.o"
  "CMakeFiles/explain_plan.dir/explain_plan.cpp.o.d"
  "explain_plan"
  "explain_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
