file(REMOVE_RECURSE
  "CMakeFiles/stock_monitoring.dir/stock_monitoring.cpp.o"
  "CMakeFiles/stock_monitoring.dir/stock_monitoring.cpp.o.d"
  "stock_monitoring"
  "stock_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
