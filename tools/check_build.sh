#!/usr/bin/env bash
# Builds and tests the three supported configurations so they cannot bit-rot
# independently:
#   build        Release, full ctest suite
#   build-asan   AddressSanitizer, full ctest suite
#   build-tsan   ThreadSanitizer, executor / parallel / worker-pool tests
#                (the threaded code paths; the full suite under tsan's 5-15x
#                slowdown adds runtime without adding thread coverage)
#
# Usage: tools/check_build.sh [--jobs N]
# Exits non-zero on the first configuration that fails to build or test.
#
# MOTTO_FUZZ_ITERS scales the differential-verification suites (ctest label
# `verify`: oracle vs matcher vs shared/parallel/SA plans, plus the CCL
# round-trip fuzz). It is exported through to the test binaries, so e.g.
#   MOTTO_FUZZ_ITERS=2000 tools/check_build.sh
# turns the default quick pass into a nightly-depth sweep in all three
# configurations. Unset, the suites use their built-in defaults
# (40 differential cases per seed, 10k round-trip queries).
#
# Other useful ctest labels (all part of the full suite this script runs):
#   ctest -L explain   optimizer-observability suite alone (plan inspector,
#                      probe traces, calibration; DESIGN.md §11)
#   ctest -L verify    differential verification alone (DESIGN.md §10)
#   ctest -L shard     sharded data-parallel runtime alone (partition plans,
#                      replica equivalence, randomized sharded-vs-single
#                      stress; DESIGN.md §12)
#   ctest -L order     selectivity-ordered evaluation alone (order planner
#                      math + plan annotation; DESIGN.md §13). The lazy
#                      *matcher* is covered by matcher_test/MatcherStress/
#                      ShardedStress/DifferentialTest, so it runs under both
#                      sanitizer slices below too.
#   ctest -L churn     online query churn alone (incremental re-optimization,
#                      state-migration round-trips, and the fuzzed
#                      migration-equivalence differ; DESIGN.md §14)
#   ctest -L serve     `motto serve` alone (wire-format codec, durable
#                      checkpoints, crash-recovery differ, SIGKILL smoke;
#                      DESIGN.md §15). MOTTO_RECOVERY_FUZZ_ITERS scales the
#                      recovery differ's fuzzed kill-plan cases the same way
#                      MOTTO_FUZZ_ITERS scales the plan differ.
set -euo pipefail

cd "$(dirname "$0")/.."

# Build trees must never be committed: this script creates three of them, and
# a tracked binary under build*/ silently bloats every clone. Fails before
# building so the offending paths are the first thing printed.
if tracked="$(git ls-files | grep -E '^build')"; then
  echo "error: build artifacts are tracked in git:" >&2
  echo "${tracked}" >&2
  echo "fix: git rm -r --cached <paths above>" >&2
  exit 1
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
if [[ "${1:-}" == "--jobs" ]]; then
  JOBS="$2"
fi

# Telemetry contract first: docs/METRICS.md must match the registered metric
# names before anything builds (the same lint runs in ctest as
# check_metrics, but failing here is faster).
python3 tools/check_metrics.py

# ObsEngineTest covers the instrumented executors (metrics shards + trace
# sink under the worker pool), so it belongs in the threaded tsan slice.
# DifferentialTest drives every fuzzed case through ParallelExecutor with
# tiny batches, which is the densest cross-thread traffic in the suite.
# ShardedExecutor/ShardedStress run JQP replicas concurrently on the worker
# pool (one mutable Executor per shard, merge on the caller thread) — the
# data-parallel counterpart of the pipelined traffic above.
# ChurnStress cross-checks every fuzzed oracle through the sharded executor,
# so its migration cases also exercise the worker pool.
# IngestQueue (wire_format_test) is the serve front-end's producer/consumer
# handoff — blocking, shedding and Close are all cross-thread; the
# ServeRecovery differ runs the sharded executor per fuzzed case too.
# StatusServer scrapes /metrics and /statusz from responder threads while an
# engine thread ingests and publishes snapshots — the live-telemetry
# reader/writer handoff (DESIGN.md §16).
TSAN_FILTER='WorkerPool|ParallelExecutor|ParallelStress|ExecutorTest|MatcherStress|ObsEngineTest|TraceTest|DifferentialTest|ShardedExecutor|ShardedStress|ChurnStress|WireFormat|IngestQueue|ServeRecovery|StatusServer'

run_config() {
  local dir="$1" sanitize="$2" test_filter="$3"
  echo "=== ${dir} (MOTTO_SANITIZE='${sanitize}') ==="
  # Sanitized configs keep optimization (RelWithDebInfo) so the instrumented
  # suites stay fast enough to run routinely; empty build type falls back to
  # the top-level Release default.
  cmake -B "${dir}" -S . -DMOTTO_SANITIZE="${sanitize}" \
    -DCMAKE_BUILD_TYPE=${sanitize:+RelWithDebInfo} >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  if [[ -n "${test_filter}" ]]; then
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" -R "${test_filter}")
  else
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
  fi
}

run_config build "" ""
run_config build-asan address ""
run_config build-tsan thread "${TSAN_FILTER}"

echo "All configurations passed."
