#!/usr/bin/env python3
"""Runs the engine/planner micro-benchmarks and records BENCH_engine.json.

The JSON file tracks the perf trajectory across PRs: each entry maps a
google-benchmark name to items/second (and the matcher benches' match
counters, which double as a cheap semantic fingerprint). Run after a Release
build:

    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
    python3 tools/run_bench.py                 # writes BENCH_engine.json
    python3 tools/run_bench.py --compare BENCH_engine.json   # diff vs saved

With --engine-metrics FILE it additionally replays a canonical generated
workload through `motto run --metrics-out` and archives the engine's
metrics-registry JSON (counters/gauges/histograms; see DESIGN.md §9) next to
the throughput numbers, so a perf investigation can line both up.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile

DEFAULT_TARGETS = ["micro_engine", "micro_planner"]


def run_benchmark(binary, min_time, filter_regex):
    cmd = [
        binary,
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    if filter_regex:
        cmd.append(f"--benchmark_filter={filter_regex}")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        # google-benchmark exits 0 with a plain-text complaint on stdout when
        # --benchmark_filter matches nothing; treat that as an empty report.
        print(f"warning: {binary}: {proc.stdout.strip()}", file=sys.stderr)
        return {}


def collect(build_dir, targets, min_time, filter_regex):
    benchmarks = {}
    context = None
    for target in targets:
        binary = os.path.join(build_dir, "bench", target)
        if not os.path.exists(binary):
            print(f"warning: {binary} not built, skipping", file=sys.stderr)
            continue
        report = run_benchmark(binary, min_time, filter_regex)
        context = context or report.get("context", {})
        for bench in report.get("benchmarks", []):
            entry = {"items_per_second": bench.get("items_per_second")}
            if "matches" in bench:
                entry["matches"] = bench["matches"]
            # Solver/rewriter telemetry counters (micro_planner): search
            # shape and candidate volume, a semantic fingerprint for the
            # optimizer benches like `matches` is for the matcher ones.
            # `modeled_speedup` is the sharded executor's LPT scaling bound
            # (sum/max of per-shard busy time) — the scaling record on
            # single-vCPU hosts where wall throughput cannot move.
            # `p99_ingest_to_emit_us` is BM_ServeIngest's tail latency from
            # frame arrival to match release (serve path, DESIGN.md §15).
            # `snapshots`/`instruments` are the §16 telemetry benches:
            # ServeStatus publications per ingest pass and registry size per
            # Collect() respectively.
            for key in ("expansions", "pruned", "incumbents", "sa_epochs",
                        "sa_accepted", "candidates", "pairs",
                        "nodes", "edges", "modeled_speedup",
                        "p99_ingest_to_emit_us", "checkpoints",
                        "snapshots", "instruments"):
                if key in bench:
                    entry[key] = bench[key]
            benchmarks[f"{target}/{bench['name']}"] = entry
    return benchmarks, context or {}


def compare(benchmarks, baseline_path, regress_threshold):
    """Prints per-benchmark speedups vs the baseline file and returns the
    benchmarks that regressed by more than `regress_threshold` (a fraction,
    e.g. 0.10 = slower than 90% of the baseline). Benchmarks present on only
    one side (added since the baseline, or removed/filtered out of this run)
    are reported instead of crashing the diff."""
    with open(baseline_path) as f:
        baseline = json.load(f).get("benchmarks", {})
    names = sorted(set(benchmarks) | set(baseline))
    width = max((len(n) for n in names), default=0)
    regressions = []
    for name in names:
        entry = benchmarks.get(name)
        if entry is None:
            print(f"{name:{width}s} (removed: only in {baseline_path})")
            continue
        now = entry.get("items_per_second")
        old = baseline.get(name, {}).get("items_per_second")
        if now is None:
            continue
        if old:
            ratio = now / old
            flag = ""
            if ratio < 1.0 - regress_threshold:
                regressions.append((name, ratio))
                flag = "   REGRESSION"
            print(f"{name:{width}s} {now / 1e6:9.2f}M items/s   "
                  f"x{ratio:.2f}{flag}")
        else:
            print(f"{name:{width}s} {now / 1e6:9.2f}M items/s   (new)")
    return regressions


def archive_engine_metrics(build_dir, out_path):
    """Replays a deterministic generated workload through the CLI with the
    metrics registry enabled and writes the emitted metrics JSON to
    `out_path`. Returns True on success."""
    motto = os.path.join(build_dir, "tools", "motto")
    if not os.path.exists(motto):
        print(f"error: {motto} not built", file=sys.stderr)
        return False
    with tempfile.TemporaryDirectory() as tmp:
        stream = os.path.join(tmp, "stream.csv")
        workload = os.path.join(tmp, "workload.ccl")
        for cmd in (
            [motto, "gen-stream", "--events=100000", "--seed=42",
             f"--out={stream}"],
            [motto, "gen-workload", "--queries=50", "--seed=7",
             f"--out={workload}"],
            [motto, "run", f"--workload={workload}", f"--stream={stream}",
             "--stats", f"--metrics-out={out_path}"],
        ):
            subprocess.run(cmd, capture_output=True, check=True)
    with open(out_path) as f:
        metrics = json.load(f)  # Fail loudly on malformed output.
    print(f"wrote {out_path} ({len(metrics.get('counters', {}))} counters)")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--min-time", default="0.5")
    parser.add_argument("--filter", default="", help="benchmark name regex")
    parser.add_argument("--targets", nargs="*", default=DEFAULT_TARGETS)
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="print speedups vs a previously saved BENCH_engine.json "
        "instead of overwriting it; exits non-zero on regressions beyond "
        "--regress-threshold",
    )
    parser.add_argument(
        "--regress-threshold",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="with --compare, fail when a benchmark drops below "
        "(1 - FRACTION) of its baseline items/second (default 0.10)",
    )
    parser.add_argument(
        "--engine-metrics",
        metavar="FILE",
        help="also archive the engine's metrics-registry JSON from a "
        "canonical `motto run --metrics-out` replay",
    )
    args = parser.parse_args()

    if args.engine_metrics:
        if not archive_engine_metrics(args.build_dir, args.engine_metrics):
            return 1

    benchmarks, context = collect(
        args.build_dir, args.targets, args.min_time, args.filter
    )
    if not benchmarks:
        print("error: no benchmarks ran; build the bench targets first",
              file=sys.stderr)
        return 1

    if args.compare:
        regressions = compare(benchmarks, args.compare,
                              args.regress_threshold)
        if regressions:
            print(
                f"error: {len(regressions)} benchmark(s) regressed more "
                f"than {args.regress_threshold:.0%}:",
                file=sys.stderr,
            )
            for name, ratio in regressions:
                print(f"  {name}  x{ratio:.2f}", file=sys.stderr)
            return 1
        return 0

    payload = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "build_type": context.get("library_build_type"),
        },
        "benchmarks": benchmarks,
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out} ({len(benchmarks)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
