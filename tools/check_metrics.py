#!/usr/bin/env python3
"""Lints docs/METRICS.md against the metric names the code registers.

Two-way check:
  1. every instrument registered in src/ or tools/ must have a row in
     docs/METRICS.md (no undocumented telemetry);
  2. every documented row must still exist in code (no stale docs).

Names are registered either as full string literals
(`GetCounter("run.matches")`, `Count(metrics, "serve.frames")`) or as a
dynamic family prefix plus a literal suffix
(`"node." + std::to_string(i)` ... `GetCounter(prefix + ".events_in")`).
Docs rows spell dynamic families with an `<i>` placeholder
(`node.<i>.events_in`); the linter requires both the family prefix and the
suffix to appear in code.

Usage: check_metrics.py [repo-root]   (defaults to the parent of tools/)
Exit 0 clean, 1 with a report of every mismatch.
"""
import pathlib
import re
import sys


def collect_code_names(src_dirs):
    """Returns (full_names, families, suffixes) registered anywhere in code."""
    register = re.compile(
        r'(?:GetCounter|GetGauge|GetHistogram)\(\s*"([a-z0-9_.]+)"')
    count_helper = re.compile(r'\bCount\([^,()]+,\s*"([a-z0-9_.]+)"')
    # `GetCounter(prefix + ".events_in")`, possibly with a bounds argument.
    dynamic_suffix = re.compile(
        r'(?:GetCounter|GetGauge|GetHistogram)\(\s*[A-Za-z_][^";]*?'
        r'"(\.[a-z0-9_.]+)"')
    # `prefix = "node." + std::to_string(...)` and the inline
    # `"worker." + std::to_string(id) + ".activations"` form.
    family = re.compile(r'"([a-z0-9_]+\.)"\s*\+\s*std::to_string')
    # AttachProbe(registry, "node." + ...) hands a family prefix to a helper
    # that registers its own suffixes.
    probe = re.compile(r'AttachProbe\([^,]+,\s*"([a-z0-9_]+\.)"')
    inline_tail = re.compile(r'std::to_string\([^)]*\)\s*\+\s*"(\.[a-z0-9_.]+)"')

    full, families, suffixes = set(), set(), set()
    for src_dir in src_dirs:
        for path in sorted(src_dir.rglob("*.cc")) + sorted(src_dir.rglob("*.h")):
            text = path.read_text(encoding="utf-8")
            full.update(register.findall(text))
            full.update(count_helper.findall(text))
            suffixes.update(dynamic_suffix.findall(text))
            suffixes.update(inline_tail.findall(text))
            families.update(family.findall(text))
            families.update(probe.findall(text))
    # A literal that is itself a family prefix ("worker.") is not a metric.
    full = {name for name in full if not name.endswith(".")}
    return full, families, suffixes


def collect_documented(metrics_md):
    """Returns the metric names from every docs table row, in order."""
    row = re.compile(r"^\|\s*`([a-z0-9_.<>]+)`\s*\|")
    names = []
    for line in metrics_md.read_text(encoding="utf-8").splitlines():
        match = row.match(line)
        if match:
            names.append(match.group(1))
    return names


def main():
    root = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else pathlib.Path(__file__).parent.parent)
    metrics_md = root / "docs" / "METRICS.md"
    if not metrics_md.exists():
        print(f"check_metrics: {metrics_md} missing", file=sys.stderr)
        return 1
    full, families, suffixes = collect_code_names(
        [root / "src", root / "tools"])
    documented = collect_documented(metrics_md)
    if not documented:
        print("check_metrics: no metric rows found in docs/METRICS.md",
              file=sys.stderr)
        return 1

    errors = []
    doc_full = set()
    doc_families, doc_suffixes = set(), set()
    for name in documented:
        if "<" in name:
            head, _, tail = re.split(r"(<[a-z]+>)", name, maxsplit=1)
            doc_families.add(head)
            doc_suffixes.add(tail)
            if head not in families:
                errors.append(
                    f"stale docs: family `{head}<i>` never built in code "
                    f"(documented as `{name}`)")
            if tail not in suffixes:
                errors.append(
                    f"stale docs: suffix `{tail}` never registered in code "
                    f"(documented as `{name}`)")
        else:
            doc_full.add(name)
            if name not in full:
                errors.append(f"stale docs: `{name}` not registered anywhere")

    for name in sorted(full - doc_full):
        errors.append(f"undocumented metric: `{name}` (add to docs/METRICS.md)")
    for prefix in sorted(families - doc_families):
        errors.append(
            f"undocumented family: `{prefix}<i>.*` (add rows to docs/METRICS.md)")
    for suffix in sorted(suffixes - doc_suffixes):
        errors.append(
            f"undocumented dynamic suffix: `<family>{suffix}` "
            f"(add a row to docs/METRICS.md)")

    if errors:
        print(f"check_metrics: {len(errors)} problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"check_metrics: OK — {len(doc_full)} static names, "
          f"{len(doc_suffixes)} dynamic suffixes across "
          f"{len(doc_families)} families all match code.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
