// motto — command-line front end for the MOTTO CEP multi-query optimizer.
//
//   motto gen-stream  --scenario=stock|dc --events=N --seed=S --out=FILE.csv
//   motto gen-workload --scenario=stock|dc --queries=N --ratio=R --seed=S
//                      --out=FILE.ccl
//   motto explain     --workload=FILE.ccl [--stream=FILE.csv] [--mode=...]
//                     [--solver=bnb|sa] [--shards=N]
//                     [--calibration=FAMILY=MULT,...]
//                     [--json[=FILE]] [--dot[=FILE]]
//   motto run         --workload=FILE.ccl --stream=FILE.csv
//                     [--mode=na|mst|lcse|motto] [--shards=N] [--threads=N]
//                     [--batch-size=B] [--pipe-depth=D]
//                     [--eval-order=arrival|selectivity]
//                     [--calibration=FAMILY=MULT,...]
//                     [--stats[=json]] [--calibrate[=json]]
//                     [--trace=FILE.json] [--metrics-out=FILE.json]
//                     [--churn=FILE.script]   (live add/remove + plan swap;
//                      script lines: "<ts_us> add <name>: <CCL query>" or
//                      "<ts_us> remove <name>")
//   motto compare     --workload=FILE.ccl --stream=FILE.csv [--runs=N]
//                     [--shards=N] [--threads=N] [--batch-size=B]
//                     [--pipe-depth=D] [--reports]
//                     [--eval-order=arrival|selectivity]
//                     [--calibration=FAMILY=MULT,...]
//   motto verify      --seed=S --iters=N [--queries=Q] [--events=E]
//                     [--threads=T] [--shards=N] [--dump=DIR]  (fuzz mode)
//   motto verify      --workload=FILE.ccl --stream=FILE.csv  (repro mode)
//   motto verify      --recovery --seed=S --iters=N [--queries=Q]
//                     [--events=E] [--shards=N] [--threads=T]
//                     [--work-dir=DIR]   (crash-recovery differential fuzz;
//                      MOTTO_RECOVERY_FUZZ_ITERS overrides the default depth)
//   motto serve       --workload=FILE.ccl [--stdin | --listen=PORT]
//                     [--checkpoint-dir=DIR] [--checkpoint-interval=N]
//                     [--out-dir=DIR] [--eval-order=arrival|selectivity]
//                     [--ingest-queue=N] [--admission=block|shed]
//                     [--stream=FILE.csv | --scenario=...]  (cost stats)
//                     [--metrics-out=FILE.json]
//                     [--status-port=P] [--stats-log=FILE.jsonl]
//                     [--snapshot-interval=SECONDS] [--snapshot-every=N]
//                      (telemetry: /metrics /statusz /healthz on the status
//                       port; SIGTERM/SIGINT drain + checkpoint + exit 0)
//   motto top         --port=P [--interval=SECONDS] [--iterations=N]
//                     [--once] [--no-clear] | --from-log=FILE.jsonl
//   motto wire-encode --stream=FILE.csv --out=FILE.bin [--skip=N]
//                     [--limit=N] [--no-end] [--checkpoint-every=N]
//
// Queries: one CCL statement per line, optional "name:" prefix, '#' comments:
//   lost: SELECT * FROM dc MATCHING [30 sec : SEQ(a, b, NEG(c))]
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "common/parse.h"
#include "engine/executor.h"
#include "engine/parallel_executor.h"
#include "engine/partition.h"
#include "engine/sharded_executor.h"
#include "motto/churn.h"
#include "motto/optimizer.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/opt_trace.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "planner/solver.h"
#include "serve/server.h"
#include "serve/status.h"
#include "serve/wire.h"
#include "verify/differ.h"
#include "verify/recovery_differ.h"
#include "workload/data_gen.h"
#include "workload/harness.h"
#include "workload/io.h"
#include "workload/query_gen.h"

namespace motto::cli {
namespace {

/// --key=value parser (same convention as the benches).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) args_.emplace_back(argv[i]);
  }
  std::string Get(const std::string& name, const std::string& fallback) const {
    std::string prefix = "--" + name + "=";
    for (const std::string& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    }
    return fallback;
  }
  /// True when the flag appears at all, bare (`--stats`) or with a value
  /// (`--stats=json`).
  bool Has(const std::string& name) const {
    std::string bare = "--" + name;
    std::string prefix = bare + "=";
    for (const std::string& arg : args_) {
      if (arg == bare || arg.rfind(prefix, 0) == 0) return true;
    }
    return false;
  }
  /// True when the flag appears with no "=value" part.
  bool HasBare(const std::string& name) const {
    std::string bare = "--" + name;
    for (const std::string& arg : args_) {
      if (arg == bare) return true;
    }
    return false;
  }
  /// Accessor for flags that require a value: a bare `--name` is a usage
  /// error instead of a silent fallback.
  Result<std::string> GetValue(const std::string& name,
                               const std::string& fallback) const {
    if (HasBare(name)) {
      return InvalidArgumentError("--" + name + " needs a value (use --" +
                                  name + "=...)");
    }
    return Get(name, fallback);
  }
  /// Checked numeric accessors: a malformed or bare value is an error naming
  /// the flag, never a silently-wrong number (strtoll with a null endptr
  /// turns "--seed=12x" into 12 and "--batch-size=abc" into 0).
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const {
    MOTTO_ASSIGN_OR_RETURN(std::string v, GetValue(name, ""));
    if (v.empty()) return fallback;
    Result<int64_t> parsed = ParseInt64(v);
    if (!parsed.ok()) {
      return InvalidArgumentError("bad --" + name + "='" + v +
                                  "': " + parsed.status().message());
    }
    return *parsed;
  }
  Result<double> GetDouble(const std::string& name, double fallback) const {
    MOTTO_ASSIGN_OR_RETURN(std::string v, GetValue(name, ""));
    if (v.empty()) return fallback;
    Result<double> parsed = ParseDouble(v);
    if (!parsed.ok()) {
      return InvalidArgumentError("bad --" + name + "='" + v +
                                  "': " + parsed.status().message());
    }
    return *parsed;
  }

 private:
  std::vector<std::string> args_;
};

Result<Scenario> ScenarioFrom(const std::string& name) {
  if (name == "stock" || name == "stock-market" || name.empty()) {
    return Scenario::kStockMarket;
  }
  if (name == "dc" || name == "datacenter") return Scenario::kDataCenter;
  return InvalidArgumentError("unknown scenario '" + name + "' (stock|dc)");
}

Result<OptimizerMode> ModeFrom(const std::string& name) {
  if (name == "na") return OptimizerMode::kNa;
  if (name == "mst") return OptimizerMode::kMst;
  if (name == "lcse") return OptimizerMode::kLcse;
  if (name == "motto" || name.empty()) return OptimizerMode::kMotto;
  return InvalidArgumentError("unknown mode '" + name +
                              "' (na|mst|lcse|motto)");
}

Result<EvalOrderMode> EvalOrderFrom(const std::string& name) {
  if (name == "arrival" || name.empty()) return EvalOrderMode::kArrival;
  if (name == "selectivity" || name == "lazy") {
    return EvalOrderMode::kSelectivity;
  }
  return InvalidArgumentError("unknown eval order '" + name +
                              "' (arrival|selectivity)");
}

/// Parses `--calibration=FAMILY=MULT,...` (e.g. "DST=0.73,MST=1.03"):
/// per-family measured/predicted miss ratios from a prior `motto run
/// --calibrate`, fed to evaluation-order planning.
Result<std::vector<std::pair<std::string, double>>> CalibrationFrom(
    const std::string& spec) {
  std::vector<std::pair<std::string, double>> calibration;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return InvalidArgumentError("bad calibration entry '" + entry +
                                  "' (want FAMILY=MULTIPLIER)");
    }
    char* end = nullptr;
    std::string value = entry.substr(eq + 1);
    double multiplier = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || multiplier <= 0.0) {
      return InvalidArgumentError("bad calibration multiplier in '" + entry +
                                  "' (want a positive number)");
    }
    calibration.emplace_back(entry.substr(0, eq), multiplier);
    pos = comma + 1;
  }
  return calibration;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Reads an integer flag that must be >= 1 (executor sizing knobs); a bare
/// or non-positive value is a usage error rather than a silent fallback.
Result<int64_t> GetPositive(const Args& args, const std::string& name,
                            int64_t fallback) {
  MOTTO_ASSIGN_OR_RETURN(int64_t value, args.GetInt(name, fallback));
  if (value < 1) {
    return InvalidArgumentError("--" + name + " must be a positive integer");
  }
  return value;
}

int GenStream(const Args& args) {
  EventTypeRegistry registry;
  StreamOptions options;
  auto scenario = ScenarioFrom(args.Get("scenario", "stock"));
  if (!scenario.ok()) return Fail(scenario.status());
  options.scenario = *scenario;
  auto events = args.GetInt("events", 100000);
  if (!events.ok()) return Fail(events.status());
  options.num_events = *events;
  auto seed = args.GetInt("seed", 42);
  if (!seed.ok()) return Fail(seed.status());
  options.seed = static_cast<uint64_t>(*seed);
  EventStream stream = GenerateStream(options, &registry);
  std::string out = args.Get("out", "stream.csv");
  Status status = SaveStreamCsv(out, stream, registry);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu events (%s scenario) to %s\n", stream.size(),
              std::string(ScenarioName(options.scenario)).c_str(),
              out.c_str());
  return 0;
}

int GenWorkload(const Args& args) {
  EventTypeRegistry registry;
  WorkloadOptions options;
  auto scenario = ScenarioFrom(args.Get("scenario", "stock"));
  if (!scenario.ok()) return Fail(scenario.status());
  options.scenario = *scenario;
  auto queries = args.GetInt("queries", 100);
  if (!queries.ok()) return Fail(queries.status());
  options.num_queries = static_cast<int>(*queries);
  auto ratio = args.GetDouble("ratio", 100.0);
  if (!ratio.ok()) return Fail(ratio.status());
  options.basic_ratio = *ratio / 100.0;
  auto seed = args.GetInt("seed", 7);
  if (!seed.ok()) return Fail(seed.status());
  options.seed = static_cast<uint64_t>(*seed);
  auto nested = args.GetInt("nested_level", 2);
  if (!nested.ok()) return Fail(nested.status());
  options.nested_level = static_cast<int>(*nested);
  auto workload = GenerateWorkload(options, &registry);
  if (!workload.ok()) return Fail(workload.status());
  std::string out = args.Get("out", "workload.ccl");
  Status status = SaveWorkloadFile(out, workload->queries, registry);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu queries to %s\n", workload->queries.size(),
              out.c_str());
  return 0;
}

Result<StreamStats> StatsFor(const Args& args, EventTypeRegistry* registry,
                             EventStream* stream_out) {
  MOTTO_ASSIGN_OR_RETURN(std::string stream_path, args.GetValue("stream", ""));
  if (stream_path.empty()) {
    // No stream given: synthesize one for statistics only.
    StreamOptions options;
    MOTTO_ASSIGN_OR_RETURN(options.scenario,
                           ScenarioFrom(args.Get("scenario", "stock")));
    options.num_events = 30000;
    EventStream stream = GenerateStream(options, registry);
    StreamStats stats = ComputeStats(stream);
    if (stream_out != nullptr) *stream_out = std::move(stream);
    return stats;
  }
  MOTTO_ASSIGN_OR_RETURN(EventStream stream,
                         LoadStreamCsv(stream_path, registry));
  StreamStats stats = ComputeStats(stream);
  if (stream_out != nullptr) *stream_out = std::move(stream);
  return stats;
}

/// Writes `doc` to `path`, or to stdout when `path` is empty (the bare
/// `--json` / `--dot` form).
int EmitDocument(const std::string& path, const std::string& doc,
                 const char* what) {
  if (path.empty()) {
    std::printf("%s", doc.c_str());
    return 0;
  }
  std::ofstream out(path);
  if (!out) return Fail(InternalError("cannot open " + path));
  out << doc;
  if (!out.flush()) return Fail(InternalError("write failed for " + path));
  std::printf("wrote %s to %s\n", what, path.c_str());
  return 0;
}

int Explain(const Args& args) {
  EventTypeRegistry registry;
  auto queries = LoadWorkloadFile(args.Get("workload", "workload.ccl"),
                                  &registry);
  if (!queries.ok()) return Fail(queries.status());
  auto stats = StatsFor(args, &registry, nullptr);
  if (!stats.ok()) return Fail(stats.status());
  auto mode = ModeFrom(args.Get("mode", "motto"));
  if (!mode.ok()) return Fail(mode.status());

  OptimizerOptions options;
  options.mode = *mode;
  auto calibration = CalibrationFrom(args.Get("calibration", ""));
  if (!calibration.ok()) return Fail(calibration.status());
  options.calibration = *calibration;
  std::string solver = args.Get("solver", "bnb");
  if (solver == "sa") {
    options.planner.force_approximate = true;
  } else if (solver != "bnb") {
    return Fail(InvalidArgumentError("unknown solver '" + solver +
                                     "' (bnb|sa)"));
  }
  obs::OptimizerProbe probe;
  options.probe = &probe;
  Optimizer optimizer(&registry, *stats, options);
  auto outcome = optimizer.Optimize(*queries);
  if (!outcome.ok()) return Fail(outcome.status());

  obs::PlanExplain explain =
      obs::BuildPlanExplain(*outcome, *stats, OptimizerModeName(*mode));
  // --shards=N annotates the explain output with the data-parallel
  // partition the sharded executor would run this plan under.
  std::string partition_json;
  std::string partition_text;
  if (args.Has("shards")) {
    auto shards = GetPositive(args, "shards", 4);
    if (!shards.ok()) return Fail(shards.status());
    PartitionPlan plan =
        PartitionPlan::Build(outcome->jqp, static_cast<int>(*shards));
    partition_json = plan.ToJson();
    partition_text = plan.ToString(outcome->jqp);
  }
  bool structured = false;
  if (args.Has("json")) {
    structured = true;
    int rc = EmitDocument(args.Get("json", ""),
                          explain.ToJson(&probe, partition_json) + "\n",
                          "explain json");
    if (rc != 0) return rc;
  }
  if (args.Has("dot")) {
    structured = true;
    int rc = EmitDocument(args.Get("dot", ""), explain.ToDot(), "explain dot");
    if (rc != 0) return rc;
  }
  if (structured) return 0;

  std::printf("-- sharing graph --\n%s",
              outcome->sharing_graph.ToString(registry).c_str());
  std::printf("\n-- optimizer --\n%s", probe.Summary().c_str());
  std::printf("\n-- plan (%s, cost %.2f vs %.2f unshared) --\n%s",
              outcome->exact ? "exact" : "approximate",
              outcome->planned_cost, outcome->default_cost,
              outcome->jqp.ToString(registry).c_str());
  if (!partition_text.empty()) {
    std::printf("\n-- partition --\n%s", partition_text.c_str());
  }
  return 0;
}

/// `motto run --churn=FILE.script`: replays the stream while applying the
/// scripted add/remove commands — each one triggers an incremental re-plan
/// (only the affected sharing-graph region is re-solved) and a live plan
/// swap that migrates surviving matcher state (DESIGN.md §14).
int ChurnWorkload(const Args& args) {
  EventTypeRegistry registry;
  auto workload_path = args.GetValue("workload", "workload.ccl");
  if (!workload_path.ok()) return Fail(workload_path.status());
  auto queries = LoadWorkloadFile(*workload_path, &registry);
  if (!queries.ok()) return Fail(queries.status());
  EventStream stream;
  auto stats = StatsFor(args, &registry, &stream);
  if (!stats.ok()) return Fail(stats.status());
  auto mode_name = args.GetValue("mode", "motto");
  if (!mode_name.ok()) return Fail(mode_name.status());
  auto mode = ModeFrom(*mode_name);
  if (!mode.ok()) return Fail(mode.status());
  if (*mode != OptimizerMode::kMotto) {
    return Fail(InvalidArgumentError("--churn requires --mode=motto"));
  }
  auto shards = GetPositive(args, "shards", 1);
  if (!shards.ok()) return Fail(shards.status());
  auto threads = GetPositive(args, "threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  if (*shards > 1 || *threads > 1) {
    return Fail(InvalidArgumentError(
        "--churn migrates state between single-threaded executor sessions; "
        "drop --shards/--threads"));
  }
  auto churn_path = args.GetValue("churn", "");
  if (!churn_path.ok()) return Fail(churn_path.status());
  auto script = LoadChurnScript(*churn_path, &registry);
  if (!script.ok()) return Fail(script.status());
  auto eval_order = EvalOrderFrom(args.Get("eval-order", "arrival"));
  if (!eval_order.ok()) return Fail(eval_order.status());

  OptimizerOptions options;
  options.mode = *mode;
  auto calibration = CalibrationFrom(args.Get("calibration", ""));
  if (!calibration.ok()) return Fail(calibration.status());
  options.calibration = *calibration;

  obs::MetricsRegistry metrics;
  std::string metrics_path = args.Get("metrics-out", "");
  ChurnRunOptions run_options;
  run_options.executor.eval_order = *eval_order;
  if (!metrics_path.empty()) run_options.executor.metrics = &metrics;

  auto outcome =
      RunChurn(*queries, *script, stream, &registry, options, run_options);
  if (!outcome.ok()) return Fail(outcome.status());

  const RunResult& run = outcome->result;
  std::printf("%llu events in %.3fs (%.0f events/s), %zu commands, "
              "%zu plan swaps\n",
              static_cast<unsigned long long>(run.raw_events),
              run.elapsed_seconds, run.ThroughputEps(),
              script->commands.size(), outcome->migration.swaps);
  for (const ReoptimizeStats& r : outcome->reoptimizations) {
    if (r.added) {
      std::printf("  re-plan add '%s': re-solved %zu of %zu graph nodes "
                  "(%zu pinned, %zu re-decided), %s, %.3fs\n",
                  r.query.c_str(), r.region_nodes, r.graph_nodes,
                  r.pinned_nodes, r.free_nodes,
                  r.exact ? "exact" : "approximate", r.solve_seconds);
    } else {
      std::printf("  re-plan remove '%s': pruned (no re-solve), "
                  "plan cost %.2f\n",
                  r.query.c_str(), r.plan_cost);
    }
  }
  const MigrationStats& m = outcome->migration;
  std::printf("  migration: %zu nodes kept, %zu fresh, %zu dropped, "
              "%zu failed imports; %zu partials + %zu pending + %zu buffered "
              "transferred\n",
              m.nodes_kept, m.nodes_new, m.nodes_dropped, m.imports_failed,
              m.partials_transferred, m.pending_transferred,
              m.buffered_transferred);
  for (const auto& [name, window] : outcome->windows) {
    auto it = run.sink_counts.find(name);
    std::string live = "[";
    live += window.first == kAlwaysLive ? "start"
                                        : std::to_string(window.first);
    live += ", ";
    live += window.second == kNeverRemoved ? "end"
                                           : std::to_string(window.second);
    live += ")";
    std::printf("  %-16s %llu matches, live %s\n", name.c_str(),
                static_cast<unsigned long long>(
                    it == run.sink_counts.end() ? 0 : it->second),
                live.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) return Fail(InternalError("cannot open " + metrics_path));
    out << metrics.ToJson() << "\n";
    if (!out.flush()) {
      return Fail(InternalError("write failed for " + metrics_path));
    }
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  return 0;
}

int RunWorkload(const Args& args) {
  if (args.Has("churn")) return ChurnWorkload(args);
  EventTypeRegistry registry;
  auto queries = LoadWorkloadFile(args.Get("workload", "workload.ccl"),
                                  &registry);
  if (!queries.ok()) return Fail(queries.status());
  EventStream stream;
  auto stats = StatsFor(args, &registry, &stream);
  if (!stats.ok()) return Fail(stats.status());
  auto mode = ModeFrom(args.Get("mode", "motto"));
  if (!mode.ok()) return Fail(mode.status());

  OptimizerOptions options;
  options.mode = *mode;
  auto calibration = CalibrationFrom(args.Get("calibration", ""));
  if (!calibration.ok()) return Fail(calibration.status());
  options.calibration = *calibration;
  Optimizer optimizer(&registry, *stats, options);
  auto outcome = optimizer.Optimize(*queries);
  if (!outcome.ok()) return Fail(outcome.status());

  auto eval_order = EvalOrderFrom(args.Get("eval-order", "arrival"));
  if (!eval_order.ok()) return Fail(eval_order.status());
  auto threads_arg = GetPositive(args, "threads", 1);
  if (!threads_arg.ok()) return Fail(threads_arg.status());
  int threads = static_cast<int>(*threads_arg);
  auto batch_arg = GetPositive(args, "batch-size", 512);
  if (!batch_arg.ok()) return Fail(batch_arg.status());
  auto depth_arg = GetPositive(args, "pipe-depth", 4);
  if (!depth_arg.ok()) return Fail(depth_arg.status());
  auto shards_arg = GetPositive(args, "shards", 1);
  if (!shards_arg.ok()) return Fail(shards_arg.status());
  int shards = static_cast<int>(*shards_arg);
  bool want_stats = args.Has("stats");
  bool want_calibrate = args.Has("calibrate");
  std::string stats_format = args.Get("stats", "");
  std::string calibrate_format = args.Get("calibrate", "");
  std::string trace_path = args.Get("trace", "");
  std::string metrics_path = args.Get("metrics-out", "");

  obs::MetricsRegistry metrics;
  obs::TraceSink trace_sink;
  ExecutorOptions exec_options;
  exec_options.eval_order = *eval_order;
  // Calibration joins predicted costs against measured per-node timing.
  exec_options.collect_node_timing = want_stats || want_calibrate;
  if (want_stats || !metrics_path.empty()) exec_options.metrics = &metrics;
  if (!trace_path.empty()) exec_options.trace = &trace_sink;

  RunResult run;
  if (shards > 1) {
    auto executor = ShardedExecutor::Create(outcome->jqp, shards, threads);
    if (!executor.ok()) return Fail(executor.status());
    auto result = executor->Run(stream, exec_options);
    if (!result.ok()) return Fail(result.status());
    run = *std::move(result);
  } else if (threads > 1) {
    auto executor = ParallelExecutor::Create(
        outcome->jqp, threads, static_cast<size_t>(*batch_arg),
        static_cast<size_t>(*depth_arg));
    if (!executor.ok()) return Fail(executor.status());
    auto result = executor->Run(stream, exec_options);
    if (!result.ok()) return Fail(result.status());
    run = *std::move(result);
  } else {
    auto executor = Executor::Create(outcome->jqp);
    if (!executor.ok()) return Fail(executor.status());
    auto result = executor->Run(stream, exec_options);
    if (!result.ok()) return Fail(result.status());
    run = *std::move(result);
  }
  std::printf("%llu events in %.3fs (%.0f events/s), plan %zu nodes (%s)\n",
              static_cast<unsigned long long>(run.raw_events),
              run.elapsed_seconds, run.ThroughputEps(),
              outcome->jqp.nodes.size(),
              std::string(OptimizerModeName(*mode)).c_str());
  if (run.sharded.shards > 0) {
    std::printf("  sharded: %d shards over %d threads, %d groups, "
                "skew %.2fx (max %.3fs vs mean %.3fs busy)\n",
                run.sharded.shards, run.sharded.threads, run.sharded.groups,
                run.sharded.skew, run.sharded.max_busy_seconds,
                run.sharded.mean_busy_seconds);
  }
  for (const Query& query : *queries) {
    auto it = run.sink_counts.find(query.name);
    std::printf("  %-16s %llu matches\n", query.name.c_str(),
                static_cast<unsigned long long>(
                    it == run.sink_counts.end() ? 0 : it->second));
  }
  if (want_stats) {
    obs::RunReport report = obs::BuildRunReport(outcome->jqp, *stats, run);
    if (stats_format == "json") {
      std::printf("%s\n", report.ToJson().c_str());
    } else {
      std::printf("%s", report.ToTable().c_str());
    }
  }
  if (want_calibrate) {
    obs::RunReport report = obs::BuildRunReport(outcome->jqp, *stats, run);
    obs::PlanExplain explain =
        obs::BuildPlanExplain(*outcome, *stats, OptimizerModeName(*mode));
    obs::CalibrationReport calibration = obs::BuildCalibration(explain, report);
    if (calibrate_format == "json") {
      std::printf("%s\n", calibration.ToJson().c_str());
    } else {
      std::printf("-- calibration (predicted vs measured by rewrite family) "
                  "--\n%s",
                  calibration.ToTable().c_str());
    }
  }
  if (!trace_path.empty()) {
    Status status = trace_sink.WriteJson(trace_path);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %zu trace events to %s\n", trace_sink.event_count(),
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      return Fail(InternalError("cannot open " + metrics_path));
    }
    out << metrics.ToJson() << "\n";
    if (!out.flush()) {
      return Fail(InternalError("write failed for " + metrics_path));
    }
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  return 0;
}

int Compare(const Args& args) {
  EventTypeRegistry registry;
  auto queries = LoadWorkloadFile(args.Get("workload", "workload.ccl"),
                                  &registry);
  if (!queries.ok()) return Fail(queries.status());
  EventStream stream;
  auto stats = StatsFor(args, &registry, &stream);
  if (!stats.ok()) return Fail(stats.status());

  ComparisonOptions options;
  options.warmup = true;
  auto runs_arg = args.GetInt("runs", 3);
  if (!runs_arg.ok()) return Fail(runs_arg.status());
  options.measure_runs = static_cast<int>(*runs_arg);
  options.collect_reports = args.Has("reports");
  auto shards = GetPositive(args, "shards", 1);
  if (!shards.ok()) return Fail(shards.status());
  options.shards = static_cast<int>(*shards);
  auto threads = GetPositive(args, "threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  options.threads = static_cast<int>(*threads);
  auto batch = GetPositive(args, "batch-size", 512);
  if (!batch.ok()) return Fail(batch.status());
  options.batch_size = static_cast<size_t>(*batch);
  auto depth = GetPositive(args, "pipe-depth", 4);
  if (!depth.ok()) return Fail(depth.status());
  options.pipe_depth = static_cast<size_t>(*depth);
  auto eval_order = EvalOrderFrom(args.Get("eval-order", "arrival"));
  if (!eval_order.ok()) return Fail(eval_order.status());
  options.eval_order = *eval_order;
  auto calibration = CalibrationFrom(args.Get("calibration", ""));
  if (!calibration.ok()) return Fail(calibration.status());
  options.calibration = *calibration;
  auto runs = CompareModes(*queries, stream, &registry, options);
  if (!runs.ok()) return Fail(runs.status());
  std::printf(" mode  | events/s  | x NA  | opt s  | plan nodes | matches\n");
  for (const ModeRun& run : *runs) {
    std::printf(" %-5s | %9.0f | %5.2f | %6.3f | %10zu | %llu\n",
                std::string(OptimizerModeName(run.mode)).c_str(),
                run.throughput_eps, run.normalized, run.optimize_seconds,
                run.jqp_nodes,
                static_cast<unsigned long long>(run.total_matches));
    for (const std::string& warning : run.report.warnings) {
      std::printf("   warning: %s\n", warning.c_str());
    }
  }
  if (options.collect_reports) {
    for (const ModeRun& run : *runs) {
      std::printf("\n-- %s report --\n%s",
                  std::string(OptimizerModeName(run.mode)).c_str(),
                  run.report.ToTable().c_str());
    }
  }
  return 0;
}

/// `motto wire-encode`: renders a CSV stream as the binary wire format
/// `motto serve` ingests (DESIGN.md §15). `--skip=N` is the resume path: a
/// client re-sending after a crash skips the events the server's recovered
/// checkpoint already ingested.
int WireEncode(const Args& args) {
  EventTypeRegistry registry;
  auto stream_path = args.GetValue("stream", "stream.csv");
  if (!stream_path.ok()) return Fail(stream_path.status());
  auto stream = LoadStreamCsv(*stream_path, &registry);
  if (!stream.ok()) return Fail(stream.status());
  serve::EncodeStreamOptions options;
  auto skip = args.GetInt("skip", 0);
  if (!skip.ok()) return Fail(skip.status());
  options.skip_events = static_cast<uint64_t>(*skip);
  auto limit = args.GetInt("limit", 0);
  if (!limit.ok()) return Fail(limit.status());
  options.limit_events = static_cast<uint64_t>(*limit);
  auto every = args.GetInt("checkpoint-every", 0);
  if (!every.ok()) return Fail(every.status());
  options.checkpoint_every = static_cast<uint64_t>(*every);
  options.with_end = !args.Has("no-end");
  std::string bytes = serve::EncodeStream(*stream, registry, options);
  std::string out = args.Get("out", "stream.bin");
  std::ofstream file(out, std::ios::binary | std::ios::trunc);
  if (!file) return Fail(InternalError("cannot open " + out));
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file.flush()) return Fail(InternalError("write failed for " + out));
  uint64_t remaining =
      static_cast<uint64_t>(stream->size()) -
      std::min(options.skip_events, static_cast<uint64_t>(stream->size()));
  if (options.limit_events > 0) {
    remaining = std::min(remaining, options.limit_events);
  }
  std::printf("wrote %zu bytes (%llu events, %llu skipped) to %s\n",
              bytes.size(), static_cast<unsigned long long>(remaining),
              static_cast<unsigned long long>(options.skip_events),
              out.c_str());
  return 0;
}

/// Self-pipe for graceful shutdown (DESIGN.md §16): the handler writes one
/// byte; the ingest loop's reader thread polls the read end alongside the
/// transport, so SIGTERM/SIGINT drain the queue, checkpoint, and exit 0.
int g_shutdown_pipe[2] = {-1, -1};

void OnShutdownSignal(int /*signum*/) {
  const char byte = 1;
  // write(2) is async-signal-safe; a full pipe just means a byte is already
  // pending, which is all the poller needs.
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

Result<int> InstallShutdownPipe() {
  if (g_shutdown_pipe[0] < 0 && ::pipe(g_shutdown_pipe) != 0) {
    return InternalError(std::string("pipe: ") + std::strerror(errno));
  }
  struct sigaction action {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking reads/polls must wake with EINTR and re-check.
  if (::sigaction(SIGTERM, &action, nullptr) != 0 ||
      ::sigaction(SIGINT, &action, nullptr) != 0) {
    return InternalError(std::string("sigaction: ") + std::strerror(errno));
  }
  return g_shutdown_pipe[0];
}

/// `motto serve` (DESIGN.md §15): the long-running ingest server. Frames
/// arrive on stdin (default) or one-at-a-time TCP clients; matches release
/// to per-connection files under the checkpoint output-commit discipline,
/// so SIGKILL + restart + re-send from the printed resume offset emits
/// exactly what a never-killed run would.
int Serve(const Args& args) {
  EventTypeRegistry registry;
  auto queries = LoadWorkloadFile(args.Get("workload", "workload.ccl"),
                                  &registry);
  if (!queries.ok()) return Fail(queries.status());
  auto stats = StatsFor(args, &registry, nullptr);
  if (!stats.ok()) return Fail(stats.status());

  serve::ServeOptions options;
  auto ckpt_dir = args.GetValue("checkpoint-dir", "");
  if (!ckpt_dir.ok()) return Fail(ckpt_dir.status());
  options.checkpoint_dir = *ckpt_dir;
  auto interval = args.GetInt("checkpoint-interval", 10000);
  if (!interval.ok()) return Fail(interval.status());
  if (*interval < 0) {
    return Fail(InvalidArgumentError("--checkpoint-interval must be >= 0"));
  }
  options.checkpoint_interval = static_cast<uint64_t>(*interval);
  auto out_dir = args.GetValue("out-dir", "serve_out");
  if (!out_dir.ok()) return Fail(out_dir.status());
  options.out_dir = *out_dir;
  auto eval_order = EvalOrderFrom(args.Get("eval-order", "arrival"));
  if (!eval_order.ok()) return Fail(eval_order.status());
  options.eval_order = *eval_order;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;

  auto core = serve::ServeCore::Create(*queries, registry, *stats,
                                       std::move(options));
  if (!core.ok()) return Fail(core.status());
  for (const std::string& warning : (*core)->recovery().warnings) {
    std::fprintf(stderr, "serve: warning: %s\n", warning.c_str());
  }
  if ((*core)->recovery().recovered) {
    const serve::RecoveryInfo& r = (*core)->recovery();
    std::printf("serve: recovered checkpoint seq=%llu ingested=%llu "
                "watermark=%lld (nodes kept=%zu fresh=%zu failed=%zu)\n",
                static_cast<unsigned long long>(r.checkpoint_seq),
                static_cast<unsigned long long>(r.ingested),
                static_cast<long long>(r.watermark), r.nodes_kept,
                r.nodes_fresh, r.imports_failed);
  } else {
    std::printf("serve: fresh start\n");
  }

  serve::IngestOptions ingest;
  auto queue = GetPositive(args, "ingest-queue", 4096);
  if (!queue.ok()) return Fail(queue.status());
  ingest.queue_capacity = static_cast<size_t>(*queue);
  std::string admission = args.Get("admission", "block");
  if (admission == "shed") {
    ingest.shed = true;
  } else if (admission != "block") {
    return Fail(InvalidArgumentError("unknown --admission '" + admission +
                                     "' (block|shed)"));
  }
  auto shutdown_fd = InstallShutdownPipe();
  if (!shutdown_fd.ok()) return Fail(shutdown_fd.status());
  ingest.shutdown_fd = *shutdown_fd;

  // Telemetry (DESIGN.md §16): periodic snapshots whenever a status port or
  // stats log asks for them; the tick runs on the engine thread.
  serve::TelemetryOptions telemetry_options;
  auto snapshot_interval = args.GetDouble("snapshot-interval", 1.0);
  if (!snapshot_interval.ok()) return Fail(snapshot_interval.status());
  telemetry_options.snapshot_interval_seconds = *snapshot_interval;
  auto snapshot_every = args.GetInt("snapshot-every", 0);
  if (!snapshot_every.ok()) return Fail(snapshot_every.status());
  if (*snapshot_every < 0) {
    return Fail(InvalidArgumentError("--snapshot-every must be >= 0"));
  }
  telemetry_options.snapshot_every_events =
      static_cast<uint64_t>(*snapshot_every);
  auto stats_log = args.GetValue("stats-log", "");
  if (!stats_log.ok()) return Fail(stats_log.status());
  telemetry_options.stats_log_path = *stats_log;
  const bool want_telemetry =
      args.Has("status-port") || !telemetry_options.stats_log_path.empty() ||
      telemetry_options.snapshot_every_events > 0;

  std::optional<serve::ServeTelemetry> telemetry;
  std::unique_ptr<serve::StatusServer> status_server;
  if (want_telemetry) {
    telemetry.emplace(core->get(), telemetry_options);
    if (!telemetry->status().ok()) return Fail(telemetry->status());
    telemetry->Tick(/*force=*/true);  // Publish before the first request.
    if (args.Has("status-port")) {
      auto status_port = args.GetInt("status-port", 0);
      if (!status_port.ok()) return Fail(status_port.status());
      auto server = serve::StatusServer::Start(
          static_cast<int>(*status_port),
          [t = &*telemetry] { return t->Latest(); });
      if (!server.ok()) return Fail(server.status());
      status_server = std::move(*server);
      std::printf("serve: status on 127.0.0.1:%d\n", status_server->port());
      std::fflush(stdout);
    }
    ingest.tick = [t = &*telemetry] { t->Tick(); };
    ingest.tick_period_seconds =
        telemetry_options.snapshot_interval_seconds > 0
            ? telemetry_options.snapshot_interval_seconds
            : 1.0;
  }

  Result<serve::IngestLoopResult> loop = serve::IngestLoopResult{};
  if (args.Has("listen")) {
    auto port = args.GetInt("listen", 0);
    if (!port.ok()) return Fail(port.status());
    int actual_port = 0;
    auto listen_fd = serve::ListenTcp(static_cast<int>(*port), &actual_port);
    if (!listen_fd.ok()) return Fail(listen_fd.status());
    std::printf("serve: listening on 127.0.0.1:%d\n", actual_port);
    std::fflush(stdout);
    loop = serve::ServeTcpLoop(core->get(), *listen_fd, ingest,
                               +[](uint32_t connection) {
                                 std::printf("serve: connection %u\n",
                                             connection);
                                 std::fflush(stdout);
                               });
    ::close(*listen_fd);
  } else {
    std::printf("serve: ready\n");
    std::fflush(stdout);
    loop = serve::RunIngestLoop(core->get(), STDIN_FILENO, ingest);
  }
  if (!loop.ok()) return Fail(loop.status());

  int exit_code = 0;
  if (loop->end_seen) {
    auto result = (*core)->Finish();
    if (!result.ok()) return Fail(result.status());
    std::printf("serve: end of stream: %llu events, %llu checkpoints\n",
                static_cast<unsigned long long>((*core)->ingested()),
                static_cast<unsigned long long>((*core)->checkpoints_taken()));
    for (const auto& [sink, count] : (*core)->sink_released()) {
      std::printf("  %s: %llu matches\n", sink.c_str(),
                  static_cast<unsigned long long>(count));
    }
  } else if (loop->shutdown_seen) {
    // SIGTERM/SIGINT: the queue is already drained into the engine; persist
    // a resumable checkpoint (no final window flush — a restart must emit
    // exactly what an uninterrupted run would) and leave cleanly.
    Status status = (*core)->Checkpoint();
    if (!status.ok()) return Fail(status);
    std::printf("serve: graceful shutdown: drained queue at ingested=%llu, "
                "checkpoint saved (resume with wire-encode --skip=%llu)\n",
                static_cast<unsigned long long>((*core)->ingested()),
                static_cast<unsigned long long>((*core)->ingested()));
  } else {
    // EOF (or decode error) without a kEnd frame — the SIGKILL-adjacent
    // path: persist a final snapshot and suspend; a restart resumes here.
    Status status = (*core)->Checkpoint();
    if (!status.ok()) return Fail(status);
    std::printf("serve: suspended at ingested=%llu (resume with "
                "wire-encode --skip=%llu)\n",
                static_cast<unsigned long long>((*core)->ingested()),
                static_cast<unsigned long long>((*core)->ingested()));
    if (!loop->error.empty()) {
      std::fprintf(stderr, "serve: stream error: %s\n", loop->error.c_str());
      exit_code = 1;
    }
  }
  if (loop->shed > 0) {
    std::printf("serve: shed %llu events (queue depth peaked at %zu)\n",
                static_cast<unsigned long long>(loop->shed),
                loop->max_queue_depth);
  }
  if (telemetry.has_value()) {
    // Final snapshot after the final checkpoint, so the last stats-log line
    // and the last scrape carry the closing counters.
    telemetry->Tick(/*force=*/true);
    if (status_server != nullptr) status_server->Stop();
    if (!telemetry->status().ok()) {
      const std::string message(telemetry->status().message());
      std::fprintf(stderr, "serve: warning: %s\n", message.c_str());
    }
  }
  std::string metrics_path = args.Get("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) return Fail(InternalError("cannot open " + metrics_path));
    out << metrics.ToJson() << "\n";
    if (!out.flush()) {
      return Fail(InternalError("write failed for " + metrics_path));
    }
  }
  return exit_code;
}

/// One-shot HTTP/1.0 GET against the local status endpoint.
Result<std::string> HttpGetLocal(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = InternalError("connect 127.0.0.1:" + std::to_string(port) +
                                  ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t written = 0;
  while (written < request.size()) {
    ssize_t n = ::write(fd, request.data() + written,
                        request.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = InternalError(std::string("write: ") +
                                    std::strerror(errno));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = response.find("\r\n\r\n");
  size_t code_at = response.find(' ');
  if (header_end == std::string::npos || code_at == std::string::npos) {
    return InternalError("malformed HTTP response from status port");
  }
  std::string code = response.substr(code_at + 1, 3);
  std::string body = response.substr(header_end + 4);
  if (code != "200") {
    return InternalError("status endpoint returned HTTP " + code + ": " +
                         body);
  }
  return body;
}

/// Last non-empty line of a stats-log JSONL file (the freshest snapshot).
Result<std::string> LastStatsLogLine(const std::string& path) {
  std::ifstream in(path);
  if (!in) return InternalError("cannot open " + path);
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  if (last.empty()) {
    return InternalError("no snapshot lines in " + path + " yet");
  }
  return last;
}

void RenderTop(const JsonValue& s) {
  std::string reason(s["health_reason"].AsString());
  std::printf("motto serve  seq %lld  up %.1fs  conn %lld  healthy %s%s%s\n",
              static_cast<long long>(s["seq"].AsInt64(0)),
              s["uptime_seconds"].AsDouble(0),
              static_cast<long long>(s["connection"].AsInt64(0)),
              s["healthy"].AsBool(false) ? "yes" : "NO",
              reason.empty() ? "" : " — ", reason.c_str());
  std::printf("ingested %lld (%.0f ev/s)  watermark %lld (idle %.1fs)  "
              "matches/s %.1f\n",
              static_cast<long long>(s["ingested"].AsInt64(0)),
              s["events_per_sec"].AsDouble(0),
              static_cast<long long>(s["watermark"].AsInt64(-1)),
              s["watermark_idle_seconds"].AsDouble(0),
              s["matches_per_sec"].AsDouble(0));
  const JsonValue& queue = s["queue"];
  std::printf("checkpoints %lld (age %.1fs)  queue %lld/%lld (peak %lld, "
              "shed %lld)\n",
              static_cast<long long>(s["checkpoints"].AsInt64(0)),
              s["checkpoint_age_seconds"].AsDouble(0),
              static_cast<long long>(queue["depth"].AsInt64(0)),
              static_cast<long long>(queue["capacity"].AsInt64(0)),
              static_cast<long long>(queue["max_depth"].AsInt64(0)),
              static_cast<long long>(queue["shed"].AsInt64(0)));
  std::printf("\n %-16s %-8s %10s %10s %6s %6s %12s\n", "QUERY", "STATE",
              "MATCHES", "RELEASED", "LAG", "CPU%", "LAST_EMIT");
  for (const JsonValue& q : s["queries"].array()) {
    char emit_buf[24];
    if (q["last_emit_ts"].AsInt64(std::numeric_limits<int64_t>::min()) ==
        std::numeric_limits<int64_t>::min()) {
      std::snprintf(emit_buf, sizeof(emit_buf), "-");
    } else {
      std::snprintf(emit_buf, sizeof(emit_buf), "%lld",
                    static_cast<long long>(q["last_emit_ts"].AsInt64(0)));
    }
    std::printf(" %-16s %-8s %10lld %10lld %6lld %6.1f %12s\n",
                q["name"].AsString().c_str(), q["state"].AsString().c_str(),
                static_cast<long long>(q["matches"].AsInt64(0)),
                static_cast<long long>(q["released"].AsInt64(0)),
                static_cast<long long>(q["outbox_lag"].AsInt64(0)),
                q["cpu_share"].AsDouble(0) * 100.0, emit_buf);
  }
  std::printf("\n %-5s %6s %10s %10s  %-24s %s\n", "NODE", "COST%", "IN",
              "OUT", "QUERIES", "LABEL");
  for (const JsonValue& n : s["nodes"].array()) {
    std::string owners;
    for (const JsonValue& q : n["queries"].array()) {
      if (!owners.empty()) owners += ",";
      owners += q.AsString();
    }
    if (owners.size() > 24) {
      owners.resize(21);
      owners += "...";
    }
    std::printf(" %-5lld %6.1f %10lld %10lld  %-24s %s\n",
                static_cast<long long>(n["id"].AsInt64(0)),
                n["cost_share"].AsDouble(0) * 100.0,
                static_cast<long long>(n["events_in"].AsInt64(0)),
                static_cast<long long>(n["events_out"].AsInt64(0)),
                owners.c_str(), n["label"].AsString().c_str());
  }
}

/// `motto top`: a refreshing terminal view of a running server's health,
/// polled from /statusz (--port) or tailed from a stats log (--from-log).
int Top(const Args& args) {
  auto from_log = args.GetValue("from-log", "");
  if (!from_log.ok()) return Fail(from_log.status());
  auto port_arg = args.GetInt("port", 0);
  if (!port_arg.ok()) return Fail(port_arg.status());
  int port = static_cast<int>(*port_arg);
  if (from_log->empty() && port <= 0) {
    return Fail(InvalidArgumentError(
        "motto top needs --port=P (a serve --status-port) or "
        "--from-log=FILE.jsonl"));
  }
  auto interval = args.GetDouble("interval", 2.0);
  if (!interval.ok()) return Fail(interval.status());
  if (*interval <= 0) {
    return Fail(InvalidArgumentError("--interval must be > 0"));
  }
  auto iterations = args.GetInt("iterations", 0);
  if (!iterations.ok()) return Fail(iterations.status());
  int64_t remaining = *iterations;
  if (args.Has("once")) remaining = 1;
  const bool clear = !args.Has("no-clear") && remaining != 1;
  for (int64_t shown = 0;; ++shown) {
    Result<std::string> body = from_log->empty()
                                   ? HttpGetLocal(port, "/statusz")
                                   : LastStatsLogLine(*from_log);
    if (!body.ok()) return Fail(body.status());
    auto parsed = JsonValue::Parse(*body);
    if (!parsed.ok()) return Fail(parsed.status());
    if (clear) std::printf("\x1b[H\x1b[2J");
    RenderTop(*parsed);
    std::fflush(stdout);
    if (remaining > 0 && shown + 1 >= remaining) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(*interval));
  }
  return 0;
}

/// The crash-recovery differential loop behind `motto verify --recovery`
/// (DESIGN.md §15): fuzzed (workload, stream, kill-plan) triples, each
/// demanding a killed-and-recovered server emit exactly the uninterrupted
/// multiset.
int VerifyRecovery(const Args& args) {
  verify::RecoveryDifferOptions options;
  auto seed = args.GetInt("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  options.seed = static_cast<uint64_t>(*seed);
  options.iterations = 40;
  if (const char* env = std::getenv("MOTTO_RECOVERY_FUZZ_ITERS")) {
    options.iterations = std::atoi(env);
  }
  auto iters = args.GetInt("iters", options.iterations);
  if (!iters.ok()) return Fail(iters.status());
  options.iterations = static_cast<int>(*iters);
  auto fuzz_queries = args.GetInt("queries", options.fuzz.num_queries);
  if (!fuzz_queries.ok()) return Fail(fuzz_queries.status());
  options.fuzz.num_queries = static_cast<int>(*fuzz_queries);
  auto fuzz_events = args.GetInt("events", options.fuzz.num_events);
  if (!fuzz_events.ok()) return Fail(fuzz_events.status());
  options.fuzz.num_events = static_cast<int>(*fuzz_events);
  auto shards = GetPositive(args, "shards", options.shards);
  if (!shards.ok()) return Fail(shards.status());
  options.shards = static_cast<int>(*shards);
  auto threads = GetPositive(args, "threads", options.threads);
  if (!threads.ok()) return Fail(threads.status());
  options.threads = static_cast<int>(*threads);
  options.work_dir = args.Get("work-dir", "");

  auto outcome = verify::RunRecoveryDiffer(options);
  if (!outcome.ok()) return Fail(outcome.status());
  std::printf(
      "verify --recovery: %d cases (seed %llu..%llu, %d skipped), %llu kills "
      "(torn-ckpt=%llu torn-out=%llu mid-ckpt=%llu), %zu failures\n",
      outcome->iterations, static_cast<unsigned long long>(options.seed),
      static_cast<unsigned long long>(
          options.seed + static_cast<uint64_t>(options.iterations) - 1),
      outcome->skipped, static_cast<unsigned long long>(outcome->kills),
      static_cast<unsigned long long>(outcome->torn_checkpoints),
      static_cast<unsigned long long>(outcome->torn_outputs),
      static_cast<unsigned long long>(outcome->mid_checkpoint_faults),
      outcome->failures.size());
  for (const verify::RecoveryFailure& failure : outcome->failures) {
    std::printf("\n-- failing case (seed %llu) --\n%s\n%s",
                static_cast<unsigned long long>(failure.case_seed),
                failure.detail.c_str(), failure.report.c_str());
    std::printf("repro: motto verify --recovery --seed=%llu --iters=1\n",
                static_cast<unsigned long long>(failure.case_seed));
  }
  return outcome->ok() ? 0 : 1;
}

/// Differential verification (DESIGN.md §10). Fuzz mode checks N seeded
/// cases across every execution path; repro mode replays one dumped case.
int Verify(const Args& args) {
  if (args.Has("recovery")) return VerifyRecovery(args);
  verify::DifferOptions options;
  auto seed = args.GetInt("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  options.seed = static_cast<uint64_t>(*seed);
  auto iters = args.GetInt("iters", 100);
  if (!iters.ok()) return Fail(iters.status());
  options.iterations = static_cast<int>(*iters);
  auto threads = args.GetInt("threads", 3);
  if (!threads.ok()) return Fail(threads.status());
  options.threads = static_cast<int>(*threads);
  auto shards = GetPositive(args, "shards", 5);
  if (!shards.ok()) return Fail(shards.status());
  options.shards = static_cast<int>(*shards);
  auto fuzz_queries = args.GetInt("queries", 3);
  if (!fuzz_queries.ok()) return Fail(fuzz_queries.status());
  options.fuzz.num_queries = static_cast<int>(*fuzz_queries);
  auto fuzz_events = args.GetInt("events", 36);
  if (!fuzz_events.ok()) return Fail(fuzz_events.status());
  options.fuzz.num_events = static_cast<int>(*fuzz_events);
  options.dump_dir = args.Get("dump", "");

  std::string workload_path = args.Get("workload", "");
  if (!workload_path.empty()) {
    // Repro mode: re-check one concrete (workload, stream) pair.
    EventTypeRegistry registry;
    auto queries = LoadWorkloadFile(workload_path, &registry);
    if (!queries.ok()) return Fail(queries.status());
    auto stream = LoadStreamCsv(args.Get("stream", "stream.csv"), &registry);
    if (!stream.ok()) return Fail(stream.status());
    auto report = verify::CheckCase(*queries, *stream, &registry, options);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s", report->ToString().c_str());
    return report->ok() ? 0 : 1;
  }

  auto outcome = verify::RunDiffer(options);
  if (!outcome.ok()) return Fail(outcome.status());
  std::printf("verify: %d cases (seed %llu..%llu), %d skipped, %zu failures\n",
              outcome->iterations,
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(
                  options.seed +
                  static_cast<uint64_t>(options.iterations) - 1),
              outcome->skipped, outcome->failures.size());
  for (const verify::Failure& failure : outcome->failures) {
    std::printf("\n-- failing case (seed %llu) --\n%s-- workload --\n%s"
                "-- repro --\n%s",
                static_cast<unsigned long long>(failure.case_seed),
                failure.report.c_str(), failure.workload_text.c_str(),
                failure.repro.c_str());
  }
  return outcome->ok() ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: motto "
                 "<gen-stream|gen-workload|explain|run|compare|verify|"
                 "serve|top|wire-encode> [--key=value ...]\n");
    return 2;
  }
  Args args(argc, argv);
  std::string command = argv[1];
  if (command == "gen-stream") return GenStream(args);
  if (command == "gen-workload") return GenWorkload(args);
  if (command == "explain") return Explain(args);
  if (command == "run") return RunWorkload(args);
  if (command == "compare") return Compare(args);
  if (command == "verify") return Verify(args);
  if (command == "serve") return Serve(args);
  if (command == "top") return Top(args);
  if (command == "wire-encode") return WireEncode(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}

}  // namespace
}  // namespace motto::cli

int main(int argc, char** argv) { return motto::cli::Main(argc, argv); }
