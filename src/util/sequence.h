#ifndef MOTTO_UTIL_SEQUENCE_H_
#define MOTTO_UTIL_SEQUENCE_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace motto {

/// Sequence of interned symbols (event type ids / operand keys) used by the
/// sharing-opportunity search.
using SymbolSeq = std::vector<int32_t>;

/// True iff `needle` appears in `haystack` as a contiguous run.
/// The empty sequence is a substring of everything.
bool IsSubstring(const SymbolSeq& needle, const SymbolSeq& haystack);

/// Position of the first occurrence of `needle` in `haystack`, or -1.
/// The empty needle matches at position 0.
int64_t FindSubstring(const SymbolSeq& needle, const SymbolSeq& haystack);

/// True iff `needle` can be obtained from `haystack` by deleting elements
/// (order preserved). The empty sequence is a subsequence of everything.
bool IsSubsequence(const SymbolSeq& needle, const SymbolSeq& haystack);

/// If `needle` is a subsequence of `haystack`, returns one witness: the
/// haystack positions used for each needle element (greedy leftmost).
/// Returns empty vector when not a subsequence and needle is non-empty.
std::vector<size_t> SubsequencePositions(const SymbolSeq& needle,
                                         const SymbolSeq& haystack);

/// True iff `a` is a sub-multiset of `b` (element counts of `a` do not
/// exceed those of `b`). Used for commutative operators (CONJ/DISJ).
bool IsSubMultiset(const SymbolSeq& a, const SymbolSeq& b);

/// Multiset difference b - a; requires IsSubMultiset(a, b). Preserves the
/// relative order of the surviving elements of b.
SymbolSeq MultisetDifference(const SymbolSeq& a, const SymbolSeq& b);

}  // namespace motto

#endif  // MOTTO_UTIL_SEQUENCE_H_
