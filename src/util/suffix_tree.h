#ifndef MOTTO_UTIL_SUFFIX_TREE_H_
#define MOTTO_UTIL_SUFFIX_TREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/sequence.h"

namespace motto {

/// Suffix tree over a sequence of int32 symbols, built online with Ukkonen's
/// algorithm in O(n) expected time (hash-map child edges).
///
/// This is the data structure behind the paper's DST sharing search (§IV-B):
/// all common substrings of two operand lists are found by building a
/// generalized suffix tree of both lists and reading off the nodes whose
/// subtree contains suffixes of both. See GeneralizedSuffixTree below.
///
/// Symbols must be >= 0; negative symbols are reserved for internal
/// terminators.
class SuffixTree {
 public:
  /// Builds the tree for `text` followed by a unique terminator.
  explicit SuffixTree(SymbolSeq text);

  SuffixTree(const SuffixTree&) = delete;
  SuffixTree& operator=(const SuffixTree&) = delete;
  SuffixTree(SuffixTree&&) = default;
  SuffixTree& operator=(SuffixTree&&) = default;

  /// True iff `pattern` occurs in the text.
  bool Contains(const SymbolSeq& pattern) const;

  /// Number of occurrences of `pattern` in the text.
  int64_t CountOccurrences(const SymbolSeq& pattern) const;

  /// All start positions of `pattern` in the text, sorted ascending.
  std::vector<size_t> Occurrences(const SymbolSeq& pattern) const;

  /// Number of distinct non-empty substrings of the text (a classic suffix
  /// tree identity: sum of edge lengths over non-terminator symbols is not
  /// used; this counts distinct substrings of the original text exactly).
  int64_t CountDistinctSubstrings() const;

  size_t text_size() const { return original_size_; }
  size_t node_count() const { return nodes_.size(); }

 protected:
  struct Node {
    /// Edge label: text[start, end) on the edge entering this node.
    int32_t start = 0;
    int32_t end = 0;
    int32_t link = 0;    // Suffix link (root for leaves / unset).
    int32_t parent = -1; // Filled by FinishAnnotations.
    int32_t depth = 0;   // Path-label length from root, incl. terminators.
    int32_t suffix = -1; // Suffix start index for leaves, -1 for internal.
    std::unordered_map<int32_t, int32_t> next;
  };

  /// Constructor body shared with GeneralizedSuffixTree: builds over
  /// `text` (already including any terminators).
  struct RawTag {};
  SuffixTree(RawTag, SymbolSeq text_with_terminators, size_t original_size);

  /// Walks from the root along `pattern`; returns the node id whose subtree
  /// holds every occurrence (the locus), or -1 if not present.
  /// `matched_into_edge` receives how many symbols of the locus node's edge
  /// were consumed (0 when the walk ends exactly at a node boundary).
  int32_t WalkDown(const SymbolSeq& pattern) const;

  /// Number of leaves under `node`.
  int64_t LeafCount(int32_t node) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  const SymbolSeq& text() const { return text_; }

  /// Leaf node id for the suffix starting at text index i.
  int32_t LeafOfSuffix(size_t i) const { return leaf_of_suffix_[i]; }

 private:
  void Build();
  void Extend(int32_t pos);
  int32_t NewNode(int32_t start, int32_t end);
  int32_t EdgeLength(int32_t node, int32_t pos) const;
  void FinishAnnotations();

  SymbolSeq text_;
  size_t original_size_ = 0;
  std::vector<Node> nodes_;
  std::vector<int32_t> leaf_of_suffix_;

  // Ukkonen build state.
  int32_t active_node_ = 0;
  int32_t active_edge_ = 0;
  int32_t active_length_ = 0;
  int32_t remainder_ = 0;
  int32_t leaf_end_ = -1;
};

/// A maximal common substring match between sequences A and B: the run
/// A[pos_a, pos_a+length) equals B[pos_b, pos_b+length) and cannot be
/// extended left or right.
struct CommonMatch {
  size_t pos_a = 0;
  size_t pos_b = 0;
  size_t length = 0;

  friend bool operator==(const CommonMatch& x, const CommonMatch& y) {
    return x.pos_a == y.pos_a && x.pos_b == y.pos_b && x.length == y.length;
  }
};

/// Generalized suffix tree over two sequences (A and B with distinct
/// terminators), supporting the common-substring queries DST needs.
class GeneralizedSuffixTree : public SuffixTree {
 public:
  GeneralizedSuffixTree(SymbolSeq a, SymbolSeq b);

  /// One longest common substring of A and B (empty when they share no
  /// symbol). Ties broken arbitrarily.
  SymbolSeq LongestCommonSubstring() const;

  /// All maximal common substring matches, sorted by (pos_a, pos_b).
  /// This is the paper's "find all common substrings" step: every common
  /// substring of A and B is a sub-run of some returned match.
  std::vector<CommonMatch> MaximalCommonMatches() const;

 private:
  /// Length of the longest common prefix of A[i..] and B[j..], via the LCA
  /// of the two corresponding suffix leaves.
  size_t LongestCommonExtension(size_t i, size_t j) const;

  size_t len_a_ = 0;
  size_t len_b_ = 0;
};

}  // namespace motto

#endif  // MOTTO_UTIL_SUFFIX_TREE_H_
