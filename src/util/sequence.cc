#include "util/sequence.h"

#include <algorithm>
#include <unordered_map>

namespace motto {

int64_t FindSubstring(const SymbolSeq& needle, const SymbolSeq& haystack) {
  if (needle.empty()) return 0;
  if (needle.size() > haystack.size()) return -1;
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end());
  if (it == haystack.end()) return -1;
  return it - haystack.begin();
}

bool IsSubstring(const SymbolSeq& needle, const SymbolSeq& haystack) {
  return FindSubstring(needle, haystack) >= 0;
}

bool IsSubsequence(const SymbolSeq& needle, const SymbolSeq& haystack) {
  size_t i = 0;
  for (size_t j = 0; i < needle.size() && j < haystack.size(); ++j) {
    if (needle[i] == haystack[j]) ++i;
  }
  return i == needle.size();
}

std::vector<size_t> SubsequencePositions(const SymbolSeq& needle,
                                         const SymbolSeq& haystack) {
  std::vector<size_t> positions;
  positions.reserve(needle.size());
  size_t i = 0;
  for (size_t j = 0; i < needle.size() && j < haystack.size(); ++j) {
    if (needle[i] == haystack[j]) {
      positions.push_back(j);
      ++i;
    }
  }
  if (i != needle.size()) return {};
  return positions;
}

bool IsSubMultiset(const SymbolSeq& a, const SymbolSeq& b) {
  std::unordered_map<int32_t, int> counts;
  for (int32_t s : b) ++counts[s];
  for (int32_t s : a) {
    if (--counts[s] < 0) return false;
  }
  return true;
}

SymbolSeq MultisetDifference(const SymbolSeq& a, const SymbolSeq& b) {
  std::unordered_map<int32_t, int> remove;
  for (int32_t s : a) ++remove[s];
  SymbolSeq out;
  out.reserve(b.size() - a.size());
  for (int32_t s : b) {
    auto it = remove.find(s);
    if (it != remove.end() && it->second > 0) {
      --it->second;
    } else {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace motto
