#include "util/suffix_tree.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/check.h"

namespace motto {

namespace {

constexpr int32_t kOpenEnd = std::numeric_limits<int32_t>::max();

SymbolSeq ConcatWithTerminators(const SymbolSeq& a, const SymbolSeq& b) {
  SymbolSeq text;
  text.reserve(a.size() + b.size() + 2);
  text.insert(text.end(), a.begin(), a.end());
  text.push_back(-1);
  text.insert(text.end(), b.begin(), b.end());
  text.push_back(-2);
  return text;
}

}  // namespace

SuffixTree::SuffixTree(SymbolSeq text) {
  original_size_ = text.size();
  text_ = std::move(text);
  for (int32_t sym : text_) MOTTO_CHECK_GE(sym, 0) << "symbols must be >= 0";
  text_.push_back(-1);
  Build();
}

SuffixTree::SuffixTree(RawTag, SymbolSeq text_with_terminators,
                       size_t original_size) {
  original_size_ = original_size;
  text_ = std::move(text_with_terminators);
  Build();
}

int32_t SuffixTree::NewNode(int32_t start, int32_t end) {
  Node node;
  node.start = start;
  node.end = end;
  node.link = 0;
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size()) - 1;
}

int32_t SuffixTree::EdgeLength(int32_t node, int32_t pos) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  int32_t end = n.end == kOpenEnd ? pos + 1 : n.end;
  return end - n.start;
}

void SuffixTree::Build() {
  nodes_.clear();
  NewNode(-1, -1);  // Root is node 0; its edge fields are unused.
  active_node_ = 0;
  active_edge_ = 0;
  active_length_ = 0;
  remainder_ = 0;
  leaf_end_ = -1;
  for (int32_t i = 0; i < static_cast<int32_t>(text_.size()); ++i) Extend(i);
  FinishAnnotations();
}

void SuffixTree::Extend(int32_t pos) {
  leaf_end_ = pos;
  ++remainder_;
  int32_t last_new = -1;
  while (remainder_ > 0) {
    if (active_length_ == 0) active_edge_ = pos;
    int32_t sym = text_[static_cast<size_t>(active_edge_)];
    auto it = nodes_[static_cast<size_t>(active_node_)].next.find(sym);
    if (it == nodes_[static_cast<size_t>(active_node_)].next.end()) {
      int32_t leaf = NewNode(pos, kOpenEnd);
      nodes_[static_cast<size_t>(active_node_)].next[sym] = leaf;
      if (last_new != -1) {
        nodes_[static_cast<size_t>(last_new)].link = active_node_;
        last_new = -1;
      }
    } else {
      int32_t nxt = it->second;
      int32_t elen = EdgeLength(nxt, pos);
      if (active_length_ >= elen) {
        // Walk down (canonicalize the active point) and retry.
        active_edge_ += elen;
        active_length_ -= elen;
        active_node_ = nxt;
        continue;
      }
      size_t probe =
          static_cast<size_t>(nodes_[static_cast<size_t>(nxt)].start +
                              active_length_);
      if (text_[probe] == text_[static_cast<size_t>(pos)]) {
        // Current symbol already on the edge: rule 3, stop this phase.
        if (last_new != -1 && active_node_ != 0) {
          nodes_[static_cast<size_t>(last_new)].link = active_node_;
          last_new = -1;
        }
        ++active_length_;
        break;
      }
      // Split the edge and add a new leaf (rule 2).
      int32_t old_start = nodes_[static_cast<size_t>(nxt)].start;
      int32_t split = NewNode(old_start, old_start + active_length_);
      nodes_[static_cast<size_t>(active_node_)].next[sym] = split;
      int32_t leaf = NewNode(pos, kOpenEnd);
      nodes_[static_cast<size_t>(split)].next[text_[static_cast<size_t>(pos)]] =
          leaf;
      nodes_[static_cast<size_t>(nxt)].start += active_length_;
      nodes_[static_cast<size_t>(split)]
          .next[text_[static_cast<size_t>(
              nodes_[static_cast<size_t>(nxt)].start)]] = nxt;
      if (last_new != -1) nodes_[static_cast<size_t>(last_new)].link = split;
      last_new = split;
    }
    --remainder_;
    if (active_node_ == 0 && active_length_ > 0) {
      --active_length_;
      active_edge_ = pos - remainder_ + 1;
    } else if (active_node_ != 0) {
      active_node_ = nodes_[static_cast<size_t>(active_node_)].link;
    }
  }
}

void SuffixTree::FinishAnnotations() {
  int32_t n = static_cast<int32_t>(text_.size());
  for (Node& node : nodes_) {
    if (node.end == kOpenEnd) node.end = n;
  }
  leaf_of_suffix_.assign(text_.size(), -1);
  nodes_[0].depth = 0;
  nodes_[0].parent = -1;
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    Node& node = nodes_[static_cast<size_t>(v)];
    if (v != 0 && node.next.empty()) {
      node.suffix = n - node.depth;
      MOTTO_CHECK(node.suffix >= 0 && node.suffix < n);
      leaf_of_suffix_[static_cast<size_t>(node.suffix)] = v;
      continue;
    }
    for (const auto& [sym, child] : node.next) {
      Node& c = nodes_[static_cast<size_t>(child)];
      c.parent = v;
      c.depth = node.depth + (c.end - c.start);
      stack.push_back(child);
    }
  }
  for (size_t i = 0; i < text_.size(); ++i) {
    MOTTO_CHECK(leaf_of_suffix_[i] != -1) << "suffix " << i << " has no leaf";
  }
}

int32_t SuffixTree::WalkDown(const SymbolSeq& pattern) const {
  int32_t v = 0;
  size_t i = 0;
  while (i < pattern.size()) {
    auto it = nodes_[static_cast<size_t>(v)].next.find(pattern[i]);
    if (it == nodes_[static_cast<size_t>(v)].next.end()) return -1;
    int32_t c = it->second;
    const Node& child = nodes_[static_cast<size_t>(c)];
    int32_t len = child.end - child.start;
    for (int32_t k = 0; k < len && i < pattern.size(); ++k, ++i) {
      if (text_[static_cast<size_t>(child.start + k)] != pattern[i]) return -1;
    }
    v = c;
  }
  return v;
}

int64_t SuffixTree::LeafCount(int32_t node) const {
  int64_t count = 0;
  std::vector<int32_t> stack = {node};
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(v)];
    if (n.next.empty()) {
      ++count;
      continue;
    }
    for (const auto& [sym, child] : n.next) stack.push_back(child);
  }
  return count;
}

bool SuffixTree::Contains(const SymbolSeq& pattern) const {
  return WalkDown(pattern) != -1;
}

int64_t SuffixTree::CountOccurrences(const SymbolSeq& pattern) const {
  MOTTO_CHECK(!pattern.empty()) << "occurrence queries need a pattern";
  int32_t locus = WalkDown(pattern);
  if (locus == -1) return 0;
  return LeafCount(locus);
}

std::vector<size_t> SuffixTree::Occurrences(const SymbolSeq& pattern) const {
  MOTTO_CHECK(!pattern.empty()) << "occurrence queries need a pattern";
  std::vector<size_t> out;
  int32_t locus = WalkDown(pattern);
  if (locus == -1) return out;
  std::vector<int32_t> stack = {locus};
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(v)];
    if (n.next.empty()) {
      out.push_back(static_cast<size_t>(n.suffix));
      continue;
    }
    for (const auto& [sym, child] : n.next) stack.push_back(child);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int64_t SuffixTree::CountDistinctSubstrings() const {
  // DFS counting, per edge reachable through a terminator-free path, the
  // number of leading non-terminator symbols on the edge label. Each such
  // prefix is one distinct substring of the original text.
  int64_t total = 0;
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    int32_t v = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(v)];
    for (const auto& [sym, child] : n.next) {
      if (sym < 0) continue;  // Edge starts with a terminator.
      const Node& c = nodes_[static_cast<size_t>(child)];
      bool clean = true;
      for (int32_t k = c.start; k < c.end; ++k) {
        if (text_[static_cast<size_t>(k)] < 0) {
          clean = false;
          break;
        }
        ++total;
      }
      if (clean) stack.push_back(child);
    }
  }
  return total;
}

GeneralizedSuffixTree::GeneralizedSuffixTree(SymbolSeq a, SymbolSeq b)
    : SuffixTree(RawTag{}, ConcatWithTerminators(a, b),
                 a.size() + 1 + b.size()),
      len_a_(a.size()),
      len_b_(b.size()) {
  for (int32_t sym : a) MOTTO_CHECK_GE(sym, 0) << "symbols must be >= 0";
  for (int32_t sym : b) MOTTO_CHECK_GE(sym, 0) << "symbols must be >= 0";
}

size_t GeneralizedSuffixTree::LongestCommonExtension(size_t i, size_t j) const {
  int32_t la = LeafOfSuffix(i);
  int32_t lb = LeafOfSuffix(len_a_ + 1 + j);
  // LCA by ancestor-set walk; these trees are tiny (operand lists).
  std::unordered_set<int32_t> ancestors;
  for (int32_t v = la; v != -1; v = nodes()[static_cast<size_t>(v)].parent) {
    ancestors.insert(v);
  }
  int32_t v = lb;
  while (v != -1 && ancestors.find(v) == ancestors.end()) {
    v = nodes()[static_cast<size_t>(v)].parent;
  }
  MOTTO_CHECK(v != -1) << "leaves share no ancestor";
  // The string depth of the LCA is the length of the longest common prefix
  // of the two suffixes; terminators differ, so it never includes them.
  return static_cast<size_t>(nodes()[static_cast<size_t>(v)].depth);
}

std::vector<CommonMatch> GeneralizedSuffixTree::MaximalCommonMatches() const {
  std::vector<CommonMatch> out;
  const SymbolSeq& t = text();
  for (size_t i = 0; i < len_a_; ++i) {
    for (size_t j = 0; j < len_b_; ++j) {
      if (t[i] != t[len_a_ + 1 + j]) continue;
      bool left_maximal = i == 0 || j == 0 || t[i - 1] != t[len_a_ + j];
      if (!left_maximal) continue;
      size_t len = LongestCommonExtension(i, j);
      MOTTO_CHECK_GE(len, 1u);
      out.push_back(CommonMatch{i, j, len});
    }
  }
  std::sort(out.begin(), out.end(), [](const CommonMatch& x, const CommonMatch& y) {
    return x.pos_a != y.pos_a ? x.pos_a < y.pos_a : x.pos_b < y.pos_b;
  });
  return out;
}

SymbolSeq GeneralizedSuffixTree::LongestCommonSubstring() const {
  SymbolSeq best;
  for (const CommonMatch& m : MaximalCommonMatches()) {
    if (m.length > best.size()) {
      best.assign(text().begin() + static_cast<int64_t>(m.pos_a),
                  text().begin() + static_cast<int64_t>(m.pos_a + m.length));
    }
  }
  return best;
}

}  // namespace motto
