#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace motto::obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

}  // namespace

TraceSink::TraceSink(size_t max_events)
    : epoch_(Clock::now()), max_events_(max_events) {
  events_.reserve(std::min<size_t>(max_events, 4096));
}

void TraceSink::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceSink::Span(std::string_view name, std::string_view category,
                     int64_t tid, double ts_micros, double dur_micros,
                     std::string args_json) {
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'X';
  event.tid = tid;
  event.ts = ts_micros;
  event.dur = dur_micros;
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

void TraceSink::Instant(std::string_view name, int64_t tid, double ts_micros,
                        std::string args_json) {
  TraceEvent event;
  event.name = std::string(name);
  event.phase = 'i';
  event.tid = tid;
  event.ts = ts_micros;
  event.args_json = std::move(args_json);
  Append(std::move(event));
}

void TraceSink::CounterValue(std::string_view name, double ts_micros,
                             double value) {
  TraceEvent event;
  event.name = std::string(name);
  event.phase = 'C';
  event.ts = ts_micros;
  event.args_json = "{\"value\":" + Num(value) + "}";
  Append(std::move(event));
}

void TraceSink::NameThread(int64_t tid, std::string_view name) {
  TraceEvent event;
  event.name = "thread_name";
  event.phase = 'M';
  event.tid = tid;
  event.args_json = "{\"name\":\"" + JsonEscape(name) + "\"}";
  Append(std::move(event));
}

size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceSink::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceSink::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(event.name) + "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    out += ",\"ts\":" + Num(event.ts);
    if (event.phase == 'X') out += ",\"dur\":" + Num(event.dur);
    if (event.phase == 'i') out += ",\"s\":\"t\"";
    if (!event.category.empty()) {
      out += ",\"cat\":\"" + JsonEscape(event.category) + "\"";
    }
    if (!event.args_json.empty()) out += ",\"args\":" + event.args_json;
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" +
         std::to_string(dropped_) + "}}";
  return out;
}

Status TraceSink::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return InternalError("cannot write trace to " + path);
  out << ToJson();
  return out ? Status::Ok() : InternalError("short write to " + path);
}

}  // namespace motto::obs
