#ifndef MOTTO_OBS_REPORT_H_
#define MOTTO_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/graph.h"
#include "event/stream.h"

namespace motto::obs {

/// Per-node comparison of what the cost model predicted against what a
/// measured run observed. `predicted_share` vs `measured_share` is the
/// actionable pair: the model's units are abstract, so only relative
/// magnitudes are comparable, and a node whose measured share is far from
/// its predicted share is a cost-model mis-estimate the planner acted on.
struct NodeReport {
  int32_t node = -1;
  std::string label;
  /// Cost-model CPU estimate, abstract units per second of stream time.
  double predicted_cpu_units = 0.0;
  /// predicted_cpu_units / sum over all nodes.
  double predicted_share = 0.0;
  /// Wall time measured inside the node (ExecutorOptions::collect_node_timing).
  double measured_busy_seconds = 0.0;
  /// measured_busy_seconds / sum over all nodes.
  double measured_share = 0.0;
  /// Cost-model emission-rate estimate, events per second of stream time.
  double predicted_output_rate = 0.0;
  /// events_out / stream duration.
  double measured_output_rate = 0.0;
  uint64_t events_in = 0;
  uint64_t events_out = 0;
};

/// Structured outcome of one measured run: per-node predicted-vs-measured
/// CPU plus run-level totals and any warnings raised while measuring (e.g.
/// a zero-throughput baseline). Attached to harness ModeRuns and printed by
/// `motto run --stats[=json]`.
struct RunReport {
  std::vector<NodeReport> nodes;
  double elapsed_seconds = 0.0;
  double total_busy_seconds = 0.0;
  uint64_t raw_events = 0;
  uint64_t total_matches = 0;
  std::vector<std::string> warnings;

  std::string ToJson() const;
  /// Fixed-width table for terminal output.
  std::string ToTable() const;
};

/// Builds the report for one (plan, stream, run) triple. `stats` must
/// describe the stream the run replayed (it anchors the cost model);
/// `run` should come from a collect_node_timing execution or the measured
/// shares will be flagged as missing.
RunReport BuildRunReport(const Jqp& jqp, const StreamStats& stats,
                         const RunResult& run);

/// Cost-model estimate for one executable node of an arbitrary JQP.
struct NodePrediction {
  double cpu_units = 0.0;
  double output_rate = 0.0;
};

/// Predicts every node of `jqp` in topological order so upstream output
/// rates feed downstream operand rates — the same arithmetic the planner
/// uses for candidate plans, applied to the plan that actually ran. Returns
/// one entry per node (all-zero, plus a message appended to `warnings`,
/// when the plan has no topological order). Shared by BuildRunReport and
/// the explain plan inspector.
std::vector<NodePrediction> PredictJqpCosts(const Jqp& jqp,
                                            const StreamStats& stats,
                                            std::vector<std::string>* warnings);

}  // namespace motto::obs

#endif  // MOTTO_OBS_REPORT_H_
