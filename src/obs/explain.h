#ifndef MOTTO_OBS_EXPLAIN_H_
#define MOTTO_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "event/stream.h"
#include "motto/optimizer.h"
#include "obs/opt_trace.h"
#include "obs/report.h"

namespace motto::obs {

/// One executable node of a final jumbo query plan, annotated with the cost
/// model's prediction and its sharing provenance — which rewrite created it
/// and which user queries depend on its output (DESIGN.md §11).
struct PlanNodeInfo {
  int32_t id = -1;
  std::string label;
  /// Executable kind: "pattern" | "order-filter" | "span-filter".
  std::string kind;
  /// Pattern operator (SEQ/CONJ/DISJ) for pattern nodes, "" otherwise.
  std::string op;
  int64_t window = 0;
  double predicted_cpu_units = 0.0;
  double predicted_output_rate = 0.0;
  std::vector<int32_t> inputs;

  /// Sharing node whose output this node computes (or helps compute);
  /// -1 for nodes appended outside the shared plan (NA baseline, opaque
  /// nested chains).
  int32_t sharing_node = -1;
  std::string sharing_key;
  /// Role in the rewrite's materialization (plan_builder.h):
  /// "pattern" | "merge" | "order-filter" | "span-filter".
  std::string role;
  bool terminal = false;
  /// User queries that transitively depend on this node's output.
  std::vector<std::string> queries;
  /// Sharing edge that prescribed this node (-1: realized from ground).
  int32_t edge = -1;
  /// Rewrite family / recipe of that edge ("" for ground realizations).
  std::string family;
  std::string recipe;
  /// The edge's source sharing-node key.
  std::string source_key;
  double edge_cost = 0.0;
  /// More than one user query depends on this node's output.
  bool shared = false;

  /// Planned selectivity evaluation order (position -> operand index;
  /// empty for filters, DISJ and single-operand nodes) and the order
  /// planner's predictions: expected live partials under arrival vs lazy
  /// evaluation, their ratio, and whether the model expects lazy mode to
  /// pay off on this node (DESIGN.md §13).
  std::vector<int32_t> eval_order;
  double order_arrival_partials = 0.0;
  double order_lazy_partials = 0.0;
  double order_reduction = 0.0;
  bool lazy_beneficial = false;
};

/// Inspector view of one optimization outcome: the final plan with per-node
/// predictions and provenance, exportable as JSON or annotated DOT.
struct PlanExplain {
  std::vector<PlanNodeInfo> nodes;
  struct Sink {
    std::string query;
    int32_t node = -1;
  };
  std::vector<Sink> sinks;
  double planned_cost = 0.0;
  double default_cost = 0.0;
  bool exact = false;
  std::string mode;
  std::vector<std::string> warnings;

  /// Full inspector document; a non-null probe embeds its rewriter/solver
  /// telemetry under an "optimizer" key, and a non-empty `partition_json`
  /// (a PartitionPlan::ToJson document) lands under a "partition" key.
  std::string ToJson(const OptimizerProbe* probe = nullptr,
                     const std::string& partition_json = "") const;
  /// Graphviz digraph: one `nN [...]` line per plan node (shared nodes
  /// filled, labels carry predicted cost + provenance) and one `a -> b`
  /// line per dataflow input.
  std::string ToDot() const;
};

/// Annotates `outcome`'s plan. `stats` must describe the target stream (it
/// anchors the per-node predictions); `mode` names the optimizer mode for
/// the header.
PlanExplain BuildPlanExplain(const motto::OptimizeOutcome& outcome,
                             const StreamStats& stats, std::string_view mode);

/// Predicted-vs-measured cost aggregated per rewrite family: the rows of the
/// calibration loop. `miss_ratio` is measured_share / predicted_share — the
/// factor by which the cost model under- (>1) or over- (<1) weighted the
/// family relative to the whole plan.
struct CalibrationRow {
  std::string family;  // "scratch", "MST", "DST", "OTT", "WIN", "unshared".
  size_t nodes = 0;
  double predicted_cpu_units = 0.0;
  double predicted_share = 0.0;
  double measured_busy_seconds = 0.0;
  double measured_share = 0.0;
  double miss_ratio = 0.0;
};

struct CalibrationReport {
  std::vector<CalibrationRow> rows;
  std::vector<std::string> warnings;

  std::string ToTable() const;
  std::string ToJson() const;
};

/// Joins the inspector's predicted per-node costs with a measured RunReport
/// (same plan, collect_node_timing run) into per-family mis-estimate rows.
CalibrationReport BuildCalibration(const PlanExplain& explain,
                                   const RunReport& report);

}  // namespace motto::obs

#endif  // MOTTO_OBS_EXPLAIN_H_
