#include "obs/explain.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <variant>

#include "ccl/pattern.h"
#include "motto/sharing_graph.h"
#include "obs/json_util.h"
#include "planner/plan_builder.h"

namespace motto::obs {

namespace {

/// Graphviz double-quoted string escaping.
std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string_view KindOf(const NodeSpec& spec) {
  if (std::holds_alternative<PatternSpec>(spec)) return "pattern";
  if (std::holds_alternative<OrderFilterSpec>(spec)) return "order-filter";
  return "span-filter";
}

}  // namespace

PlanExplain BuildPlanExplain(const motto::OptimizeOutcome& outcome,
                             const StreamStats& stats, std::string_view mode) {
  PlanExplain explain;
  explain.mode = std::string(mode);
  explain.planned_cost = outcome.planned_cost;
  explain.default_cost = outcome.default_cost;
  explain.exact = outcome.exact;

  const Jqp& jqp = outcome.jqp;
  std::vector<NodePrediction> predictions =
      PredictJqpCosts(jqp, stats, &explain.warnings);

  // Which user queries transitively depend on each node: walk upstream from
  // every sink. A node serving two queries is a shared node.
  std::vector<std::set<std::string>> dependents(jqp.nodes.size());
  for (const Jqp::Sink& sink : jqp.sinks) {
    explain.sinks.push_back(PlanExplain::Sink{sink.query_name, sink.node});
    std::vector<int32_t> stack = {sink.node};
    while (!stack.empty()) {
      int32_t v = stack.back();
      stack.pop_back();
      if (v < 0 || static_cast<size_t>(v) >= jqp.nodes.size()) continue;
      if (!dependents[static_cast<size_t>(v)].insert(sink.query_name).second) {
        continue;  // Already visited for this query.
      }
      for (int32_t input : jqp.nodes[static_cast<size_t>(v)].inputs) {
        stack.push_back(input);
      }
    }
  }

  const SharingGraph& graph = outcome.sharing_graph;
  explain.nodes.reserve(jqp.nodes.size());
  for (size_t i = 0; i < jqp.nodes.size(); ++i) {
    const JqpNode& node = jqp.nodes[i];
    PlanNodeInfo info;
    info.id = static_cast<int32_t>(i);
    info.label = node.label.empty() ? "node" + std::to_string(i) : node.label;
    info.kind = std::string(KindOf(node.spec));
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      info.op = std::string(PatternOpName(pattern->op));
      info.window = pattern->window;
    } else if (const auto* span = std::get_if<SpanFilterSpec>(&node.spec)) {
      info.window = span->max_span;
    }
    if (i < predictions.size()) {
      info.predicted_cpu_units = predictions[i].cpu_units;
      info.predicted_output_rate = predictions[i].output_rate;
    }
    info.inputs = node.inputs;
    info.queries.assign(dependents[i].begin(), dependents[i].end());
    info.shared = info.queries.size() >= 2;

    if (i < outcome.provenance.nodes.size()) {
      const PlanNodeOrigin& origin = outcome.provenance.nodes[i];
      info.sharing_node = origin.sharing_node;
      info.role = std::string(PlanNodeRoleName(origin.role));
      if (origin.sharing_node >= 0 &&
          static_cast<size_t>(origin.sharing_node) < graph.nodes.size()) {
        const SharingNode& sharing =
            graph.nodes[static_cast<size_t>(origin.sharing_node)];
        info.sharing_key = sharing.key;
        info.terminal = sharing.terminal;
      }
      info.edge = origin.edge;
      if (origin.edge >= 0 &&
          static_cast<size_t>(origin.edge) < graph.edges.size()) {
        const SharingEdge& edge = graph.edges[static_cast<size_t>(origin.edge)];
        info.family = std::string(RewriteFamilyName(ClassifyEdge(graph, edge)));
        info.recipe = std::string(RecipeKindName(edge.recipe.kind));
        if (edge.source >= 0 &&
            static_cast<size_t>(edge.source) < graph.nodes.size()) {
          info.source_key = graph.nodes[static_cast<size_t>(edge.source)].key;
        }
        info.edge_cost = edge.cost;
      }
    }
    if (i < outcome.eval_orders.size()) {
      const OrderPlan& order_plan = outcome.eval_orders[i];
      info.eval_order = order_plan.order;
      info.order_arrival_partials = order_plan.arrival_partials;
      info.order_lazy_partials = order_plan.lazy_partials;
      info.order_reduction = order_plan.Reduction();
      info.lazy_beneficial = order_plan.lazy_beneficial;
    }
    explain.nodes.push_back(std::move(info));
  }
  return explain;
}

std::string PlanExplain::ToJson(const OptimizerProbe* probe,
                                const std::string& partition_json) const {
  std::string out = "{";
  out += "\"mode\":\"" + JsonEscape(mode) + "\"";
  out += ",\"planned_cost\":" + JsonNum(planned_cost);
  out += ",\"default_cost\":" + JsonNum(default_cost);
  out += ",\"exact\":";
  out += exact ? "true" : "false";
  out += ",\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNodeInfo& n = nodes[i];
    if (i) out += ",";
    out += "{\"id\":" + std::to_string(n.id);
    out += ",\"label\":\"" + JsonEscape(n.label) + "\"";
    out += ",\"kind\":\"" + JsonEscape(n.kind) + "\"";
    out += ",\"op\":\"" + JsonEscape(n.op) + "\"";
    out += ",\"window\":" + std::to_string(n.window);
    out += ",\"predicted_cpu_units\":" + JsonNum(n.predicted_cpu_units);
    out += ",\"predicted_output_rate\":" + JsonNum(n.predicted_output_rate);
    out += ",\"inputs\":[";
    for (size_t k = 0; k < n.inputs.size(); ++k) {
      if (k) out += ",";
      out += std::to_string(n.inputs[k]);
    }
    out += "],\"sharing_node\":" + std::to_string(n.sharing_node);
    out += ",\"sharing_key\":\"" + JsonEscape(n.sharing_key) + "\"";
    out += ",\"role\":\"" + JsonEscape(n.role) + "\"";
    out += ",\"terminal\":";
    out += n.terminal ? "true" : "false";
    out += ",\"queries\":[";
    for (size_t k = 0; k < n.queries.size(); ++k) {
      if (k) out += ",";
      out += "\"" + JsonEscape(n.queries[k]) + "\"";
    }
    out += "],\"edge\":" + std::to_string(n.edge);
    out += ",\"family\":\"" + JsonEscape(n.family) + "\"";
    out += ",\"recipe\":\"" + JsonEscape(n.recipe) + "\"";
    out += ",\"source_key\":\"" + JsonEscape(n.source_key) + "\"";
    out += ",\"edge_cost\":" + JsonNum(n.edge_cost);
    out += ",\"shared\":";
    out += n.shared ? "true" : "false";
    out += ",\"eval_order\":[";
    for (size_t k = 0; k < n.eval_order.size(); ++k) {
      if (k) out += ",";
      out += std::to_string(n.eval_order[k]);
    }
    out += "],\"order_arrival_partials\":" + JsonNum(n.order_arrival_partials);
    out += ",\"order_lazy_partials\":" + JsonNum(n.order_lazy_partials);
    out += ",\"order_reduction\":" + JsonNum(n.order_reduction);
    out += ",\"lazy_beneficial\":";
    out += n.lazy_beneficial ? "true" : "false";
    out += "}";
  }
  out += "],\"sinks\":[";
  for (size_t i = 0; i < sinks.size(); ++i) {
    if (i) out += ",";
    out += "{\"query\":\"" + JsonEscape(sinks[i].query) + "\"";
    out += ",\"node\":" + std::to_string(sinks[i].node) + "}";
  }
  out += "],\"warnings\":[";
  for (size_t i = 0; i < warnings.size(); ++i) {
    if (i) out += ",";
    out += "\"" + JsonEscape(warnings[i]) + "\"";
  }
  out += "]";
  if (probe != nullptr) out += ",\"optimizer\":" + probe->ToJson();
  if (!partition_json.empty()) out += ",\"partition\":" + partition_json;
  out += "}";
  return out;
}

std::string PlanExplain::ToDot() const {
  std::string out = "digraph jqp {\n  rankdir=LR;\n";
  char buffer[64];
  for (const PlanNodeInfo& n : nodes) {
    // Escape each text piece, then join with literal \n line breaks (which
    // must survive un-escaped for Graphviz to render them).
    std::string label = DotEscape(n.label);
    if (!n.family.empty()) {
      label += "\\n" + DotEscape(n.family + "/" + n.recipe);
    }
    std::snprintf(buffer, sizeof(buffer), "\\ncpu=%.3g",
                  n.predicted_cpu_units);
    label += buffer;
    if (!n.eval_order.empty()) {
      label += "\\norder=";
      for (size_t k = 0; k < n.eval_order.size(); ++k) {
        if (k) label += ",";
        label += std::to_string(n.eval_order[k]);
      }
      std::snprintf(buffer, sizeof(buffer), " (%.3gx)", n.order_reduction);
      label += buffer;
    }
    if (n.shared) {
      label += "\\nshared by";
      for (const std::string& q : n.queries) label += " " + DotEscape(q);
    }
    std::string shape = n.kind == "pattern" ? "box" : "ellipse";
    out += "  n" + std::to_string(n.id) + " [shape=" + shape;
    if (n.shared) out += ",style=filled,fillcolor=\"#cfe8ff\"";
    out += ",label=\"" + label + "\"];\n";
  }
  for (const PlanNodeInfo& n : nodes) {
    for (int32_t input : n.inputs) {
      out += "  n" + std::to_string(input) + " -> n" + std::to_string(n.id) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

CalibrationReport BuildCalibration(const PlanExplain& explain,
                                   const RunReport& report) {
  CalibrationReport calibration;
  calibration.warnings = report.warnings;
  if (explain.nodes.size() != report.nodes.size()) {
    calibration.warnings.push_back(
        "calibration skipped: plan has " + std::to_string(explain.nodes.size()) +
        " nodes but the run report has " + std::to_string(report.nodes.size()));
    return calibration;
  }

  struct Accumulator {
    size_t nodes = 0;
    double predicted = 0.0;
    double measured = 0.0;
  };
  std::map<std::string, Accumulator> groups;
  double predicted_total = 0.0;
  double measured_total = 0.0;
  for (size_t i = 0; i < explain.nodes.size(); ++i) {
    const PlanNodeInfo& n = explain.nodes[i];
    std::string family = n.sharing_node < 0 ? "unshared"
                         : n.edge < 0       ? "scratch"
                                            : n.family;
    Accumulator& acc = groups[family];
    ++acc.nodes;
    acc.predicted += n.predicted_cpu_units;
    acc.measured += report.nodes[i].measured_busy_seconds;
    predicted_total += n.predicted_cpu_units;
    measured_total += report.nodes[i].measured_busy_seconds;
  }

  // Stable presentation order: from-scratch work first, then the rewrite
  // families, then anything executed outside the shared plan.
  const char* order[] = {"scratch", "MST", "DST", "OTT", "WIN", "unshared"};
  for (const char* family : order) {
    auto it = groups.find(family);
    if (it == groups.end()) continue;
    CalibrationRow row;
    row.family = family;
    row.nodes = it->second.nodes;
    row.predicted_cpu_units = it->second.predicted;
    row.predicted_share =
        predicted_total > 0 ? it->second.predicted / predicted_total : 0.0;
    row.measured_busy_seconds = it->second.measured;
    row.measured_share =
        measured_total > 0 ? it->second.measured / measured_total : 0.0;
    row.miss_ratio = row.predicted_share > 0
                         ? row.measured_share / row.predicted_share
                         : 0.0;
    calibration.rows.push_back(std::move(row));
    groups.erase(it);
  }
  for (auto& [family, acc] : groups) {  // Defensive: unknown family labels.
    CalibrationRow row;
    row.family = family;
    row.nodes = acc.nodes;
    row.predicted_cpu_units = acc.predicted;
    row.predicted_share =
        predicted_total > 0 ? acc.predicted / predicted_total : 0.0;
    row.measured_busy_seconds = acc.measured;
    row.measured_share =
        measured_total > 0 ? acc.measured / measured_total : 0.0;
    row.miss_ratio = row.predicted_share > 0
                         ? row.measured_share / row.predicted_share
                         : 0.0;
    calibration.rows.push_back(std::move(row));
  }
  if (measured_total == 0.0 && !explain.nodes.empty()) {
    calibration.warnings.push_back(
        "no per-node timing; measured shares are zero (run with "
        "collect_node_timing)");
  }
  return calibration;
}

std::string CalibrationReport::ToTable() const {
  std::string out =
      " family   | nodes | pred units | pred%  | busy s   | meas%  | miss\n";
  char line[160];
  for (const CalibrationRow& row : rows) {
    std::snprintf(line, sizeof(line),
                  " %-8s | %5zu | %10.4g | %5.1f%% | %8.4f | %5.1f%% | %.2fx\n",
                  row.family.c_str(), row.nodes, row.predicted_cpu_units,
                  row.predicted_share * 100.0, row.measured_busy_seconds,
                  row.measured_share * 100.0, row.miss_ratio);
    out += line;
  }
  for (const std::string& warning : warnings) {
    out += " warning: " + warning + "\n";
  }
  return out;
}

std::string CalibrationReport::ToJson() const {
  std::string out = "{\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const CalibrationRow& row = rows[i];
    if (i) out += ",";
    out += "{\"family\":\"" + JsonEscape(row.family) + "\"";
    out += ",\"nodes\":" + std::to_string(row.nodes);
    out += ",\"predicted_cpu_units\":" + JsonNum(row.predicted_cpu_units);
    out += ",\"predicted_share\":" + JsonNum(row.predicted_share);
    out += ",\"measured_busy_seconds\":" + JsonNum(row.measured_busy_seconds);
    out += ",\"measured_share\":" + JsonNum(row.measured_share);
    out += ",\"miss_ratio\":" + JsonNum(row.miss_ratio) + "}";
  }
  out += "],\"warnings\":[";
  for (size_t i = 0; i < warnings.size(); ++i) {
    if (i) out += ",";
    out += "\"" + JsonEscape(warnings[i]) + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace motto::obs
