#ifndef MOTTO_OBS_TRACE_H_
#define MOTTO_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace motto::obs {

/// Collects Chrome trace-event JSON (the `chrome://tracing` / Perfetto /
/// https://ui.perfetto.dev "JSON Array Format"): complete events ("X") for
/// spans, instant events ("i"), counter tracks ("C") and thread-name
/// metadata ("M"). The executors map each JQP node to its own tid, so every
/// node gets one timeline row and spans on a row never overlap.
///
/// Recording is thread-safe (one mutex around an append); timestamps come
/// from the sink's own steady clock so spans recorded by different workers
/// share a timebase. Callers capture `NowMicros()` around the work and hand
/// both values in, keeping the lock outside the measured region.
///
/// The event buffer is capped (default ~1M events); past the cap events are
/// counted but dropped, and the count is surfaced in the emitted JSON's
/// `otherData.dropped_events` so truncation is never silent.
class TraceSink {
 public:
  explicit TraceSink(size_t max_events = 1u << 20);

  /// Microseconds since sink construction.
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  /// Complete event: a [ts, ts+dur] span on row `tid`. `args_json` is either
  /// empty or a JSON object literal ("{\"k\":1}") appended verbatim.
  void Span(std::string_view name, std::string_view category, int64_t tid,
            double ts_micros, double dur_micros, std::string args_json = "");

  /// Instant event (scope "t": thread-local tick mark).
  void Instant(std::string_view name, int64_t tid, double ts_micros,
               std::string args_json = "");

  /// Counter sample; renders as a stacked track named `name`.
  void CounterValue(std::string_view name, double ts_micros, double value);

  /// Names the timeline row `tid` (thread_name metadata event).
  void NameThread(int64_t tid, std::string_view name);

  size_t event_count() const;
  uint64_t dropped_events() const;

  /// Renders the whole trace: {"traceEvents":[...],"otherData":{...}}.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct TraceEvent {
    std::string name;
    std::string category;
    char phase;  // 'X', 'i', 'C', 'M'
    int64_t tid = 0;
    double ts = 0.0;
    double dur = 0.0;
    std::string args_json;
  };

  void Append(TraceEvent event);

  Clock::time_point epoch_;
  size_t max_events_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

}  // namespace motto::obs

#endif  // MOTTO_OBS_TRACE_H_
