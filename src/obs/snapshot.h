#ifndef MOTTO_OBS_SNAPSHOT_H_
#define MOTTO_OBS_SNAPSHOT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace motto::obs {

/// Live telemetry for long-running processes (DESIGN.md §16). The
/// MetricsRegistry is single-writer by the engine's ownership discipline, so
/// it can never be read from another thread while the engine is running.
/// MetricsSnapshotter bridges that gap: the *owning* thread periodically
/// collects the registry into an immutable, versioned MetricsSnapshot and
/// publishes it behind a pointer swap; any number of reader threads
/// (status endpoint, `motto top`, tests) then consume the published
/// snapshots without ever touching the live instruments.
///
/// Lock budget: Collect copies the registry outside any lock (the caller is
/// the only writer), then takes one short mutex to swap the published
/// shared_ptr and append to the ring; readers take the same mutex only long
/// enough to copy a shared_ptr. The engine hot path itself is untouched —
/// snapshot cost is paid once per interval, not per event.

/// One immutable observation of a registry, stamped and delta-annotated.
struct MetricsSnapshot {
  /// Monotonic sequence number, starting at 1. Strictly increasing across a
  /// snapshotter's lifetime; a gap-free JSONL stats log is therefore
  /// checkable by sequence alone.
  uint64_t seq = 0;
  /// Wall-clock time of collection (unix seconds, fractional).
  double wall_unix_seconds = 0.0;
  /// Seconds since the snapshotter was created (steady clock).
  double uptime_seconds = 0.0;
  /// Seconds since the previous snapshot (0 for the first).
  double interval_seconds = 0.0;

  /// Full copy of every instrument at collection time.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;

  /// Per-counter delta since the previous snapshot and its rate per second
  /// over `interval_seconds` (both 0 for the first snapshot or when the
  /// counter is new). Keys mirror `counters`.
  std::map<std::string, uint64_t, std::less<>> deltas;
  std::map<std::string, double, std::less<>> rates;

  uint64_t CounterValue(std::string_view name) const;
  double Rate(std::string_view name) const;

  /// One JSON object:
  /// {"seq":..,"wall_unix_seconds":..,"uptime_seconds":..,
  ///  "interval_seconds":..,"counters":{..},"rates":{..},"gauges":{..},
  ///  "histograms":{name:{count,sum,min,max,mean,p50,p95,p99}}}.
  /// Histograms render their quantile estimates, not raw buckets — the raw
  /// bucket layout stays a /metrics (Prometheus) concern.
  std::string ToJson() const;
};

/// Periodic collector: owns the snapshot ring and the published pointer.
/// Collect must only be called from the thread that owns (writes) the source
/// registry; Latest/History/TickDue are safe from any thread.
class MetricsSnapshotter {
 public:
  /// `source` must outlive the snapshotter. `history` bounds the ring
  /// (oldest snapshots fall off; min 1).
  explicit MetricsSnapshotter(const MetricsRegistry* source,
                              size_t history = 64);

  /// Collects now (owner thread only). Returns the published snapshot.
  std::shared_ptr<const MetricsSnapshot> Collect();

  /// True when at least `interval_seconds` elapsed since the last Collect
  /// (or since construction, for the first). A 0 interval is always due.
  bool TickDue(double interval_seconds) const;

  /// Most recent snapshot (null before the first Collect).
  std::shared_ptr<const MetricsSnapshot> Latest() const;

  /// Ring contents, oldest first.
  std::vector<std::shared_ptr<const MetricsSnapshot>> History() const;

  uint64_t snapshots_taken() const;

 private:
  using Clock = std::chrono::steady_clock;

  const MetricsRegistry* source_;
  const size_t history_;
  const Clock::time_point epoch_;

  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const MetricsSnapshot>> ring_;
  std::shared_ptr<const MetricsSnapshot> latest_;
  uint64_t next_seq_ = 1;
  Clock::time_point last_collect_;
  bool collected_once_ = false;
};

}  // namespace motto::obs

#endif  // MOTTO_OBS_SNAPSHOT_H_
