#ifndef MOTTO_OBS_JSON_UTIL_H_
#define MOTTO_OBS_JSON_UTIL_H_

#include <cstdio>
#include <string>

namespace motto::obs {

/// Minimal JSON string escaping shared by the obs emitters (reports, traces,
/// optimizer probes, plan inspector). Covers the characters our labels and
/// keys can actually contain; everything below 0x20 is \u-escaped.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest-ish double rendering that stays valid JSON (no inf/nan).
inline std::string JsonNum(double v) {
  if (v != v) return "0";  // NaN guard; JSON has no NaN literal.
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

}  // namespace motto::obs

#endif  // MOTTO_OBS_JSON_UTIL_H_
