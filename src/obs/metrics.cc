#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace motto::obs {

namespace {

/// Shortest round-trippable double rendering; JSON has no Inf/NaN, but no
/// instrument produces them (Record ignores non-finite input upstream and
/// counters are integers).
std::string JsonNumber(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds(std::move(bucket_bounds)), counts(bounds.size() + 1, 0) {
  MOTTO_CHECK(std::is_sorted(bounds.begin(), bounds.end()))
      << "histogram bounds must ascend";
}

void Histogram::Record(double v) {
  // Bucket i holds (bounds[i-1], bounds[i]]: lower_bound finds the first
  // bound >= v, so a sample equal to a bound lands in that bound's bucket
  // and anything past the last bound lands in the overflow slot.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  counts[bucket] += 1;
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

double Histogram::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the requested quantile (1-based), then the bucket holding it.
  double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    double lo = i == 0 ? min : bounds[i - 1];
    double hi = i < bounds.size() ? bounds[i] : max;
    double next = static_cast<double>(seen + counts[i]);
    if (next >= target) {
      double within =
          (target - static_cast<double>(seen)) / static_cast<double>(counts[i]);
      double v = lo + (hi - lo) * within;
      return std::min(std::max(v, min), max);
    }
    seen += counts[i];
  }
  return max;
}

std::vector<double> Histogram::ExponentialBounds(double first, double factor,
                                                 int count) {
  std::vector<double> bounds;
  double bound = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LatencySecondsBounds() {
  // 1us, 2us, 4us, ... ~8.4s: 24 buckets covers a sweep that takes anywhere
  // from "free" to "the run stalled".
  return Histogram::ExponentialBounds(1e-6, 2.0, 24);
}

std::vector<double> SizeBounds() {
  // 1, 4, 16, ... ~1M: 11 buckets for queue depths / partial populations.
  return Histogram::ExponentialBounds(1.0, 4.0, 11);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
             .first;
  } else {
    MOTTO_CHECK(it->second.bounds == bounds)
        << "histogram '" << std::string(name)
        << "' re-registered with different bounds";
  }
  return &it->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& shard) {
  for (const auto& [name, counter] : shard.counters_) {
    GetCounter(name)->value += counter.value;
  }
  for (const auto& [name, gauge] : shard.gauges_) {
    if (!gauge.seen) continue;
    Gauge* mine = GetGauge(name);
    if (!mine->seen) {
      *mine = gauge;
    } else {
      mine->value = gauge.value;  // Arbitrary "last shard wins".
      mine->max = std::max(mine->max, gauge.max);
    }
  }
  for (const auto& [name, histogram] : shard.histograms_) {
    Histogram* mine = GetHistogram(name, histogram.bounds);
    MOTTO_CHECK(mine->counts.size() == histogram.counts.size());
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      mine->counts[i] += histogram.counts[i];
    }
    if (histogram.count > 0) {
      mine->min = mine->count > 0 ? std::min(mine->min, histogram.min)
                                  : histogram.min;
      mine->max = mine->count > 0 ? std::max(mine->max, histogram.max)
                                  : histogram.max;
      mine->count += histogram.count;
      mine->sum += histogram.sum;
    }
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name) + ":" + std::to_string(counter.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name) + ":{\"value\":" + JsonNumber(gauge.value) +
           ",\"max\":" + JsonNumber(gauge.max) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += JsonString(name) + ":{\"count\":" +
           std::to_string(histogram.count) +
           ",\"sum\":" + JsonNumber(histogram.sum) +
           ",\"min\":" + JsonNumber(histogram.min) +
           ",\"max\":" + JsonNumber(histogram.max) + ",\"bounds\":[";
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += JsonNumber(histogram.bounds[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(histogram.counts[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace motto::obs
