#ifndef MOTTO_OBS_METRICS_H_
#define MOTTO_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace motto::obs {

/// Lightweight run-scoped metrics (DESIGN.md §9). Everything here is a plain
/// struct mutated through a raw pointer: no atomics, no locks, no
/// allocation after instrument creation. That is safe because the engine's
/// threading discipline already guarantees single-writer access — the
/// single-threaded executor owns everything, and in the parallel executor
/// each node's instruments are only touched by the one worker that owns the
/// node's current activation, while cross-worker instruments live in
/// per-worker shard registries merged at run end (MergeFrom).
///
/// Disabled means a null MetricsRegistry* in ExecutorOptions: the hot path
/// pays one pointer test per instrumentation site and nothing else.

/// Monotonic event count.
struct Counter {
  uint64_t value = 0;
  void Add(uint64_t n = 1) { value += n; }
};

/// Last-written level plus its high-water mark.
struct Gauge {
  double value = 0.0;
  double max = 0.0;
  bool seen = false;
  void Set(double v) {
    value = v;
    max = seen ? (v > max ? v : max) : v;
    seen = true;
  }
};

/// Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are fixed at creation so
/// Record never allocates and shards with identical bounds merge bucketwise.
struct Histogram {
  std::vector<double> bounds;   ///< Ascending upper bounds.
  std::vector<uint64_t> counts; ///< bounds.size() + 1 entries (overflow last).
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  explicit Histogram(std::vector<double> bucket_bounds);

  void Record(double v);
  double Mean() const { return count > 0 ? sum / count : 0.0; }

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// owning bucket, clamped to the recorded min/max. Samples in the overflow
  /// bucket interpolate between the last bound and the recorded max. 0 when
  /// nothing was recorded.
  double Quantile(double q) const;

  /// `count` geometric buckets: first, first*factor, ... Suits latencies
  /// (seconds) and sizes (counts) alike.
  static std::vector<double> ExponentialBounds(double first, double factor,
                                               int count);
};

/// Name -> instrument map with stable instrument addresses (std::map nodes
/// never move), so callers hoist the pointer once and write through it on
/// the hot path. Get* returns the existing instrument when the name is
/// already registered; histogram bounds must then match.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  /// Sums/merges every instrument of `shard` into this registry, creating
  /// missing ones. Gauges keep the max of the high-water marks and the
  /// shard's last value (shards race on "last" by construction; the
  /// high-water mark is the meaningful aggregate).
  void MergeFrom(const MetricsRegistry& shard);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Canonical bucket layouts shared by the engine's instruments, so shard
/// merges never face mismatched bounds.
std::vector<double> LatencySecondsBounds();  ///< 1us .. ~8s, x2 steps.
std::vector<double> SizeBounds();            ///< 1 .. ~1M, x4 steps.

}  // namespace motto::obs

#endif  // MOTTO_OBS_METRICS_H_
