#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <variant>

#include "common/time.h"
#include "cost/cost_model.h"
#include "obs/json_util.h"

namespace motto::obs {

std::vector<NodePrediction> PredictJqpCosts(
    const Jqp& jqp, const StreamStats& stats,
    std::vector<std::string>* warnings) {
  std::vector<NodePrediction> predictions(jqp.nodes.size());
  auto topo = jqp.TopoOrder();
  if (!topo.ok()) {
    if (warnings != nullptr) {
      warnings->push_back("cost prediction skipped: " +
                          topo.status().ToString());
    }
    return predictions;
  }
  CostModel model(stats);
  std::vector<double> output_rate(jqp.nodes.size(), 0.0);
  for (int32_t idx : *topo) {
    size_t ui = static_cast<size_t>(idx);
    const JqpNode& node = jqp.nodes[ui];
    NodePrediction& entry = predictions[ui];
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      std::vector<double> rates;
      for (const OperandBinding& binding : pattern->operands) {
        double rate = 0.0;
        if (binding.channel == kRawChannel) {
          for (EventTypeId type : binding.types) rate += model.RateOf(type);
        } else {
          size_t input = static_cast<size_t>(
              node.inputs[static_cast<size_t>(binding.channel) - 1]);
          rate = output_rate[input];
        }
        if (!binding.predicate.empty() && !binding.types.empty()) {
          rate *= model.PredicateSelectivity(binding.types.front(),
                                             binding.predicate);
        }
        rates.push_back(rate);
      }
      OperatorEstimate estimate = model.EstimateOperator(
          pattern->op, rates, pattern->negated, pattern->window);
      entry.cpu_units = estimate.cpu_per_second;
      entry.output_rate = estimate.output_rate;
      output_rate[ui] = estimate.output_rate;
    } else if (const auto* order = std::get_if<OrderFilterSpec>(&node.spec)) {
      double input = output_rate[static_cast<size_t>(node.inputs.at(0))];
      double selectivity =
          CostModel::OrderFilterSelectivity(order->required_order.size());
      OperatorEstimate estimate = model.EstimateFilter(input, selectivity);
      entry.cpu_units = estimate.cpu_per_second;
      entry.output_rate = estimate.output_rate;
      output_rate[ui] = estimate.output_rate;
    } else if (std::get_if<SpanFilterSpec>(&node.spec) != nullptr) {
      // Span pass fraction depends on the producer's span distribution,
      // which the model does not track; 1.0 is the documented upper bound.
      double input = output_rate[static_cast<size_t>(node.inputs.at(0))];
      OperatorEstimate estimate = model.EstimateFilter(input, 1.0);
      entry.cpu_units = estimate.cpu_per_second;
      entry.output_rate = estimate.output_rate;
      output_rate[ui] = estimate.output_rate;
    }
  }
  return predictions;
}

RunReport BuildRunReport(const Jqp& jqp, const StreamStats& stats,
                         const RunResult& run) {
  RunReport report;
  report.elapsed_seconds = run.elapsed_seconds;
  report.raw_events = run.raw_events;
  report.total_matches = run.TotalMatches();
  report.nodes.resize(jqp.nodes.size());
  double stream_seconds =
      static_cast<double>(stats.duration) / kMicrosPerSecond;
  for (size_t i = 0; i < jqp.nodes.size(); ++i) {
    NodeReport& entry = report.nodes[i];
    entry.node = static_cast<int32_t>(i);
    entry.label = jqp.nodes[i].label.empty()
                      ? "node" + std::to_string(i)
                      : jqp.nodes[i].label;
    if (i < run.node_stats.size()) {
      const NodeStats& node_stats = run.node_stats[i];
      entry.measured_busy_seconds = node_stats.busy_seconds;
      entry.events_in = node_stats.events_in;
      entry.events_out = node_stats.events_out;
      entry.measured_output_rate =
          stream_seconds > 0
              ? static_cast<double>(node_stats.events_out) / stream_seconds
              : 0.0;
      report.total_busy_seconds += node_stats.busy_seconds;
    }
  }
  std::vector<NodePrediction> predictions =
      PredictJqpCosts(jqp, stats, &report.warnings);
  for (size_t i = 0; i < predictions.size(); ++i) {
    report.nodes[i].predicted_cpu_units = predictions[i].cpu_units;
    report.nodes[i].predicted_output_rate = predictions[i].output_rate;
  }
  double predicted_total = 0.0;
  for (const NodeReport& entry : report.nodes) {
    predicted_total += entry.predicted_cpu_units;
  }
  for (NodeReport& entry : report.nodes) {
    entry.predicted_share = predicted_total > 0
                                ? entry.predicted_cpu_units / predicted_total
                                : 0.0;
    entry.measured_share =
        report.total_busy_seconds > 0
            ? entry.measured_busy_seconds / report.total_busy_seconds
            : 0.0;
  }
  if (report.total_busy_seconds == 0.0 && !report.nodes.empty()) {
    report.warnings.push_back(
        "no per-node timing in this run; measured shares are zero (run with "
        "collect_node_timing)");
  }
  // A sharded run whose slowest shard dwarfs the mean leaves cores idle:
  // the partition (or the stream's time distribution) is skewed.
  constexpr double kShardSkewThreshold = 1.5;
  const ShardedRunStats& sharded = run.sharded;
  if (sharded.shards > 1 && sharded.skew > kShardSkewThreshold) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "shard load skew %.2fx (max %.3fs vs mean %.3fs over %d "
                  "shards); rebalance with different --shards or weights",
                  sharded.skew, sharded.max_busy_seconds,
                  sharded.mean_busy_seconds, sharded.shards);
    report.warnings.push_back(buf);
  }
  if (run.trace_dropped_spans > 0) {
    report.warnings.push_back(
        "trace sink dropped " + std::to_string(run.trace_dropped_spans) +
        " spans at its event cap; the trace file undercounts busy time "
        "(raise the TraceSink cap or trace a shorter run)");
  }
  return report;
}

std::string RunReport::ToJson() const {
  std::string out = "{\"elapsed_seconds\":" + JsonNum(elapsed_seconds) +
                    ",\"total_busy_seconds\":" + JsonNum(total_busy_seconds) +
                    ",\"raw_events\":" + std::to_string(raw_events) +
                    ",\"total_matches\":" + std::to_string(total_matches) +
                    ",\"warnings\":[";
  for (size_t i = 0; i < warnings.size(); ++i) {
    if (i > 0) out += ',';
    out += "\"" + JsonEscape(warnings[i]) + "\"";
  }
  out += "],\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeReport& n = nodes[i];
    if (i > 0) out += ',';
    out += "{\"node\":" + std::to_string(n.node) + ",\"label\":\"" +
           JsonEscape(n.label) +
           "\",\"predicted_cpu_units\":" + JsonNum(n.predicted_cpu_units) +
           ",\"predicted_share\":" + JsonNum(n.predicted_share) +
           ",\"measured_busy_seconds\":" + JsonNum(n.measured_busy_seconds) +
           ",\"measured_share\":" + JsonNum(n.measured_share) +
           ",\"predicted_output_rate\":" + JsonNum(n.predicted_output_rate) +
           ",\"measured_output_rate\":" + JsonNum(n.measured_output_rate) +
           ",\"events_in\":" + std::to_string(n.events_in) +
           ",\"events_out\":" + std::to_string(n.events_out) + "}";
  }
  out += "]}";
  return out;
}

std::string RunReport::ToTable() const {
  std::string out =
      " node | pred%  | meas%  | busy s   | in       | out      | label\n";
  char line[256];
  for (const NodeReport& n : nodes) {
    std::snprintf(line, sizeof(line),
                  " %4d | %5.1f%% | %5.1f%% | %8.4f | %8llu | %8llu | %s\n",
                  n.node, n.predicted_share * 100.0, n.measured_share * 100.0,
                  n.measured_busy_seconds,
                  static_cast<unsigned long long>(n.events_in),
                  static_cast<unsigned long long>(n.events_out),
                  n.label.c_str());
    out += line;
  }
  for (const std::string& warning : warnings) {
    out += " warning: " + warning + "\n";
  }
  return out;
}

}  // namespace motto::obs
