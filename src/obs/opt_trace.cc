#include "obs/opt_trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/json_util.h"

namespace motto::obs {

std::string_view EdgeDecisionName(EdgeDecision decision) {
  switch (decision) {
    case EdgeDecision::kAccepted:
      return "accepted";
    case EdgeDecision::kRejectedUnprofitable:
      return "unprofitable";
    case EdgeDecision::kRejectedDuplicateTypes:
      return "duplicate-operand-types";
    case EdgeDecision::kRejectedNegatedTarget:
      return "negated-target";
    case EdgeDecision::kRejectedOccurrenceCap:
      return "occurrence-cap";
  }
  return "?";
}

size_t RewriterTelemetry::CountDecision(EdgeDecision decision) const {
  return std::count_if(
      candidates.begin(), candidates.end(),
      [decision](const EdgeCandidate& c) { return c.decision == decision; });
}

size_t RewriterTelemetry::CountFamily(std::string_view family) const {
  return std::count_if(
      candidates.begin(), candidates.end(),
      [family](const EdgeCandidate& c) { return c.family == family; });
}

std::string RewriterTelemetry::ToJson() const {
  std::string out = "{";
  out += "\"pairs_considered\":" + std::to_string(pairs_considered);
  out += ",\"negated_source_skips\":" + std::to_string(negated_source_skips);
  out += ",\"window_mismatch_skips\":" + std::to_string(window_mismatch_skips);
  out += ",\"graph_nodes\":" + std::to_string(graph_nodes);
  out += ",\"graph_edges\":" + std::to_string(graph_edges);
  out += ",\"candidates\":[";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const EdgeCandidate& c = candidates[i];
    if (i) out += ",";
    out += "{\"source\":" + std::to_string(c.source);
    out += ",\"target\":" + std::to_string(c.target);
    out += ",\"source_key\":\"" + JsonEscape(c.source_key) + "\"";
    out += ",\"target_key\":\"" + JsonEscape(c.target_key) + "\"";
    out += ",\"family\":\"" + JsonEscape(c.family) + "\"";
    out += ",\"recipe\":\"" + JsonEscape(c.recipe) + "\"";
    out += ",\"decision\":\"";
    out += EdgeDecisionName(c.decision);
    out += "\"";
    out += ",\"cost\":" + JsonNum(c.cost);
    out += ",\"scratch_cost\":" + JsonNum(c.scratch_cost) + "}";
  }
  out += "]}";
  return out;
}

std::string BnbTelemetry::ToJson() const {
  std::string out = "{";
  out += "\"expansions\":" + std::to_string(expansions);
  out += ",\"pruned_by_bound\":" + std::to_string(pruned_by_bound);
  out += ",\"options_considered\":" + std::to_string(options_considered);
  out += ",\"deadline_hit\":";
  out += deadline_hit ? "true" : "false";
  out += ",\"first_incumbent_seconds\":" + JsonNum(first_incumbent_seconds);
  out += ",\"solve_seconds\":" + JsonNum(solve_seconds);
  out += ",\"incumbents\":[";
  for (size_t i = 0; i < incumbents.size(); ++i) {
    if (i) out += ",";
    out += "{\"cost\":" + JsonNum(incumbents[i].cost);
    out += ",\"expansions\":" + std::to_string(incumbents[i].expansions);
    out += ",\"seconds\":" + JsonNum(incumbents[i].seconds) + "}";
  }
  out += "]}";
  return out;
}

std::string SaTelemetry::ToJson() const {
  std::string out = "{";
  out += "\"seed\":" + std::to_string(seed);
  out += ",\"iterations\":" + std::to_string(iterations);
  out += ",\"epoch_size\":" + std::to_string(epoch_size);
  out += ",\"t0\":" + JsonNum(t0);
  out += ",\"t_end\":" + JsonNum(t_end);
  out += ",\"cooling\":" + JsonNum(cooling);
  out += ",\"proposed\":" + std::to_string(proposed);
  out += ",\"accepted\":" + std::to_string(accepted);
  out += ",\"epochs\":[";
  for (size_t i = 0; i < epochs.size(); ++i) {
    const SaEpoch& e = epochs[i];
    if (i) out += ",";
    out += "{\"temperature\":" + JsonNum(e.temperature);
    out += ",\"proposed\":" + std::to_string(e.proposed);
    out += ",\"accepted\":" + std::to_string(e.accepted);
    out += ",\"improved_best\":" + std::to_string(e.improved_best);
    out += ",\"current_cost\":" + JsonNum(e.current_cost);
    out += ",\"best_cost\":" + JsonNum(e.best_cost) + "}";
  }
  out += "]}";
  return out;
}

std::string OptimizerProbe::ToJson() const {
  std::string out = "{";
  out += "\"rewriter\":" + rewriter.ToJson();
  out += ",\"solver\":{\"selected\":\"" + JsonEscape(selected_solver) + "\"";
  if (bnb.recorded) out += ",\"bnb\":" + bnb.ToJson();
  if (sa.recorded) out += ",\"sa\":" + sa.ToJson();
  out += "}}";
  return out;
}

std::string OptimizerProbe::Summary() const {
  std::string out;
  char line[256];
  if (rewriter.recorded) {
    std::snprintf(line, sizeof(line),
                  "rewriter: %zu nodes, %zu edges "
                  "(%llu pairs, %llu neg-skip, %llu win-skip)\n",
                  rewriter.graph_nodes, rewriter.graph_edges,
                  static_cast<unsigned long long>(rewriter.pairs_considered),
                  static_cast<unsigned long long>(
                      rewriter.negated_source_skips),
                  static_cast<unsigned long long>(
                      rewriter.window_mismatch_skips));
    out += line;
    // family x decision counts, one row per family that produced candidates.
    std::map<std::string, std::map<EdgeDecision, size_t>> table;
    for (const EdgeCandidate& c : rewriter.candidates) {
      ++table[c.family][c.decision];
    }
    for (const auto& [family, decisions] : table) {
      std::string row = "  " + family + ":";
      for (const auto& [decision, count] : decisions) {
        row += " " + std::to_string(count) + " ";
        row += EdgeDecisionName(decision);
        row += ",";
      }
      row.back() = '\n';
      out += row;
    }
  }
  if (bnb.recorded) {
    std::snprintf(
        line, sizeof(line),
        "bnb: %llu expanded, %llu pruned, %zu incumbents%s (%.3fs%s)\n",
        static_cast<unsigned long long>(bnb.expansions),
        static_cast<unsigned long long>(bnb.pruned_by_bound),
        bnb.incumbents.size(), bnb.deadline_hit ? " [deadline]" : "",
        bnb.solve_seconds,
        bnb.first_incumbent_seconds >= 0 ? ", improved" : "");
    out += line;
  }
  if (sa.recorded) {
    double ratio = sa.proposed
                       ? static_cast<double>(sa.accepted) /
                             static_cast<double>(sa.proposed)
                       : 0.0;
    std::snprintf(line, sizeof(line),
                  "sa: seed %llu, %d iters in %zu epochs, "
                  "%.0f%% accepted, t0=%.4g\n",
                  static_cast<unsigned long long>(sa.seed), sa.iterations,
                  sa.epochs.size(), 100.0 * ratio, sa.t0);
    out += line;
  }
  if (!selected_solver.empty()) {
    out += "selected: " + selected_solver + "\n";
  }
  return out;
}

}  // namespace motto::obs
