#include "obs/snapshot.h"

#include <algorithm>
#include <utility>

#include "obs/json_util.h"

namespace motto::obs {

namespace {

/// Wall-clock stamps need millisecond precision; JsonNum's %.6g would
/// round a unix timestamp to ~1000-second granularity.
std::string WallSeconds(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

}  // namespace

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value;
}

double MetricsSnapshot::Rate(std::string_view name) const {
  auto it = rates.find(name);
  return it == rates.end() ? 0.0 : it->second;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"seq\":" + std::to_string(seq) +
                    ",\"wall_unix_seconds\":" + WallSeconds(wall_unix_seconds) +
                    ",\"uptime_seconds\":" + JsonNum(uptime_seconds) +
                    ",\"interval_seconds\":" + JsonNum(interval_seconds) +
                    ",\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(counter.value);
  }
  out += "},\"rates\":{";
  first = true;
  for (const auto& [name, rate] : rates) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonNum(rate);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"value\":" + JsonNum(gauge.value) +
           ",\"max\":" + JsonNum(gauge.max) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":{\"count\":" + std::to_string(histogram.count) +
           ",\"sum\":" + JsonNum(histogram.sum) +
           ",\"min\":" + JsonNum(histogram.min) +
           ",\"max\":" + JsonNum(histogram.max) +
           ",\"mean\":" + JsonNum(histogram.Mean()) +
           ",\"p50\":" + JsonNum(histogram.Quantile(0.50)) +
           ",\"p95\":" + JsonNum(histogram.Quantile(0.95)) +
           ",\"p99\":" + JsonNum(histogram.Quantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

MetricsSnapshotter::MetricsSnapshotter(const MetricsRegistry* source,
                                       size_t history)
    : source_(source),
      history_(history == 0 ? 1 : history),
      epoch_(Clock::now()),
      last_collect_(epoch_) {}

std::shared_ptr<const MetricsSnapshot> MetricsSnapshotter::Collect() {
  Clock::time_point now = Clock::now();
  auto snapshot = std::make_shared<MetricsSnapshot>();
  snapshot->wall_unix_seconds =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  snapshot->uptime_seconds =
      std::chrono::duration<double>(now - epoch_).count();
  // The caller is the registry's single writer, so reading it here without a
  // lock is exactly as safe as the engine's own instrument writes.
  snapshot->counters = source_->counters();
  snapshot->gauges = source_->gauges();
  snapshot->histograms = source_->histograms();

  std::shared_ptr<const MetricsSnapshot> prev = Latest();
  if (prev != nullptr) {
    snapshot->interval_seconds =
        snapshot->uptime_seconds - prev->uptime_seconds;
  }
  const double dt = snapshot->interval_seconds;
  for (const auto& [name, counter] : snapshot->counters) {
    uint64_t before = prev == nullptr ? 0 : prev->CounterValue(name);
    // A counter can only shrink if the registry was swapped out from under
    // the snapshotter; clamp instead of underflowing.
    uint64_t delta = counter.value >= before ? counter.value - before : 0;
    snapshot->deltas.emplace(name, delta);
    snapshot->rates.emplace(
        name, dt > 0.0 ? static_cast<double>(delta) / dt : 0.0);
  }

  std::lock_guard<std::mutex> lock(mu_);
  snapshot->seq = next_seq_++;
  latest_ = snapshot;
  ring_.push_back(snapshot);
  while (ring_.size() > history_) ring_.pop_front();
  last_collect_ = now;
  collected_once_ = true;
  return snapshot;
}

bool MetricsSnapshotter::TickDue(double interval_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!collected_once_) return true;
  double elapsed =
      std::chrono::duration<double>(Clock::now() - last_collect_).count();
  return elapsed >= interval_seconds;
}

std::shared_ptr<const MetricsSnapshot> MetricsSnapshotter::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

std::vector<std::shared_ptr<const MetricsSnapshot>>
MetricsSnapshotter::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t MetricsSnapshotter::snapshots_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

}  // namespace motto::obs
