#ifndef MOTTO_OBS_OPT_TRACE_H_
#define MOTTO_OBS_OPT_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace motto::obs {

/// Optimizer observability (DESIGN.md §11). An OptimizerProbe is attached
/// through RewriterOptions / PlannerOptions / OptimizerOptions and filled by
/// the rewriter, the two DSMT solvers, and the plan builder. Everything is
/// null-gated: a null probe costs the optimizer one pointer test per
/// instrumentation site, so benchmarks with the probe disabled stay at
/// pre-instrumentation parity.
///
/// This header is deliberately self-contained (no motto/planner includes):
/// callers hand in family/recipe names as strings, which keeps the obs
/// instrument layer free of dependencies on the optimizer it observes.

/// Outcome of one candidate sharing edge the rewriter identified. Candidates
/// are recorded at the point where a structural rewrite relation was found —
/// coarse per-pair early-outs (negated source, incompatible windows) are
/// aggregated into RewriterTelemetry counters instead, so the candidate list
/// stays proportional to real sharing opportunities, not to |nodes|^2.
enum class EdgeDecision : uint8_t {
  kAccepted = 0,
  /// Modeled cost not clearly below the beneficiary's scratch cost
  /// (RewriterOptions::prune_unprofitable margin).
  kRejectedUnprofitable,
  /// The beneficiary has duplicate (or non-primitive) operand types, so the
  /// composite-operand / merge / order-filter rewrite could let one physical
  /// event fill two slots — the AllPrimitiveDistinct soundness guard.
  kRejectedDuplicateTypes,
  /// The beneficiary carries NEG, which the rewrite cannot re-apply.
  kRejectedNegatedTarget,
  /// A further occurrence of the source inside the target beyond
  /// RewriterOptions::max_occurrence_edges.
  kRejectedOccurrenceCap,
};

std::string_view EdgeDecisionName(EdgeDecision decision);

struct EdgeCandidate {
  int32_t source = -1;  // Sharing-graph node ids.
  int32_t target = -1;
  std::string source_key;
  std::string target_key;
  std::string family;  // "MST" | "DST" | "OTT" | "WIN" (sharing_graph.h).
  std::string recipe;  // RecipeKindName of the attempted rewrite.
  EdgeDecision decision = EdgeDecision::kAccepted;
  /// Modeled cost of computing the target via this rewrite; 0 when the
  /// candidate was rejected structurally before costing.
  double cost = 0.0;
  /// The target's from-scratch cost (cost delta = scratch_cost - cost).
  double scratch_cost = 0.0;
};

struct RewriterTelemetry {
  std::vector<EdgeCandidate> candidates;
  /// Ordered (source, target) pairs TryEdges examined.
  uint64_t pairs_considered = 0;
  /// Pairs skipped because the source carries NEG (not shareable).
  uint64_t negated_source_skips = 0;
  /// Pairs skipped because the source window cannot cover the target's.
  uint64_t window_mismatch_skips = 0;
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  bool recorded = false;

  size_t CountDecision(EdgeDecision decision) const;
  size_t CountFamily(std::string_view family) const;
  std::string ToJson() const;
};

/// One improvement of the branch-and-bound incumbent. The first entry is the
/// naive (no sharing) seed at expansions=0; later entries are search-found.
struct BnbIncumbent {
  double cost = 0.0;
  uint64_t expansions = 0;  // DFS expansions when the incumbent was found.
  double seconds = 0.0;     // Wall time since solve start.
};

struct BnbTelemetry {
  uint64_t expansions = 0;
  uint64_t pruned_by_bound = 0;
  uint64_t options_considered = 0;
  bool deadline_hit = false;
  /// Wall seconds to the first search-found incumbent (-1: none found, the
  /// naive seed was never improved).
  double first_incumbent_seconds = -1.0;
  double solve_seconds = 0.0;
  std::vector<BnbIncumbent> incumbents;
  bool recorded = false;

  std::string ToJson() const;
};

/// One epoch of the simulated-annealing schedule (iterations are bucketed
/// into ~kSaEpochTarget epochs). Deterministic given (graph, seed): no wall
/// clock — ToJson of two same-seed runs is byte-identical.
struct SaEpoch {
  double temperature = 0.0;  // At epoch start.
  uint32_t proposed = 0;
  uint32_t accepted = 0;       // Moves taken (downhill or Metropolis).
  uint32_t improved_best = 0;  // Moves that improved the best-so-far.
  double current_cost = 0.0;   // At epoch end.
  double best_cost = 0.0;

  friend bool operator==(const SaEpoch&, const SaEpoch&) = default;
};

inline constexpr int kSaEpochTarget = 50;

struct SaTelemetry {
  uint64_t seed = 0;
  int iterations = 0;
  int epoch_size = 0;
  double t0 = 0.0;
  double t_end = 0.0;
  double cooling = 1.0;
  uint64_t proposed = 0;
  uint64_t accepted = 0;
  std::vector<SaEpoch> epochs;
  bool recorded = false;

  std::string ToJson() const;
};

/// Everything one optimization run tells us about itself. Plain struct, like
/// RunReport: attach a fresh probe per Optimize call; the rewriter fills
/// `rewriter`, SelectPlan fills `bnb`/`sa`/`selected_solver`.
struct OptimizerProbe {
  RewriterTelemetry rewriter;
  BnbTelemetry bnb;
  SaTelemetry sa;
  /// "naive" | "bnb" | "bnb-incumbent" | "sa" — which decision SelectPlan
  /// returned (solvers that merely ran still leave their telemetry).
  std::string selected_solver;

  /// {"rewriter":{...},"solver":{"selected":...,"bnb":...,"sa":...}}.
  std::string ToJson() const;
  /// Fixed-width terminal summary: candidate counts per family x decision
  /// plus one line per solver that ran.
  std::string Summary() const;
};

}  // namespace motto::obs

#endif  // MOTTO_OBS_OPT_TRACE_H_
