#include "engine/worker_pool.h"

#include "common/check.h"

namespace motto {

WorkerPool::WorkerPool(int num_workers) {
  MOTTO_CHECK(num_workers >= 0) << "negative worker count";
  threads_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MOTTO_CHECK(running_ == 0) << "WorkerPool destroyed with epoch in flight";
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Begin(std::function<void(int)> job) {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MOTTO_CHECK(running_ == 0) << "WorkerPool::Begin with epoch in flight";
    job_ = std::move(job);
    running_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  work_cv_.notify_all();
}

void WorkerPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;  // Release the epoch's closure (and anything it captured).
}

void WorkerPool::Run(std::function<void(int)> job) {
  Begin(std::move(job));
  Wait();
}

uint64_t WorkerPool::epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

void WorkerPool::WorkerMain(int id) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    // job_ is stable for the whole epoch: Begin only mutates it while
    // running_ == 0, and running_ cannot reach 0 before this call returns.
    const std::function<void(int)>* job = &job_;
    lock.unlock();
    (*job)(id);
    lock.lock();
    if (--running_ == 0) done_cv_.notify_all();
  }
}

}  // namespace motto
