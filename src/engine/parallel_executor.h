#ifndef MOTTO_ENGINE_PARALLEL_EXECUTOR_H_
#define MOTTO_ENGINE_PARALLEL_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "engine/graph.h"
#include "engine/runtime.h"
#include "engine/worker_pool.h"
#include "event/stream.h"

namespace motto {

/// Multi-threaded JQP executor (paper §VII-C, Fig 14b): a persistent worker
/// pool driving a pipelined dataflow over raw-stream batches.
///
/// The stream is split into `batch_size` batches. Each node processes
/// batches strictly in order, and every (node, batch) activation is driven
/// by exactly one worker at a time, so per-node behaviour — and hence the
/// emitted match set, including per-sink emission order — is identical to
/// the single-threaded Executor; only inter-node scheduling changes.
///
/// Unlike a level-barrier design, batches overlap across the dataflow: a
/// node's outputs are published into a bounded per-node output ring
/// (`pipe_depth` batches), and a downstream node can consume batch k while
/// its upstream is already matching batch k+1. A node is runnable when its
/// next batch is available from every upstream ring and its own ring has a
/// free slot (backpressure); runnable nodes are dispatched to the pool
/// through a shared ready queue.
///
/// The pool is created once in Create and parked between runs: Run() spawns
/// zero threads. Per-node counters accumulate into per-worker NodeStats
/// arrays merged at run end, so workers share no hot counters; scheduler
/// behaviour is surfaced through RunResult::parallel.
class ParallelExecutor {
 public:
  /// `num_threads` is the total worker count including the caller's thread
  /// (so num_threads - 1 pool threads are spawned here). `pipe_depth` is the
  /// per-node output-ring capacity in batches; 1 degenerates to lock-step
  /// levels, larger values buy pipeline slack at proportional buffering.
  static Result<ParallelExecutor> Create(Jqp jqp, int num_threads,
                                         size_t batch_size = 512,
                                         size_t pipe_depth = 4);

  ParallelExecutor(ParallelExecutor&&);
  ParallelExecutor& operator=(ParallelExecutor&&);
  ~ParallelExecutor();

  Result<RunResult> Run(const EventStream& stream,
                        const ExecutorOptions& options = ExecutorOptions{});

  const Jqp& jqp() const { return jqp_; }
  int num_threads() const { return num_threads_; }
  size_t batch_size() const { return batch_size_; }
  size_t pipe_depth() const { return pipe_depth_; }

 private:
  struct Pipeline;  // Scheduler + per-node pipeline state (defined in .cc).

  ParallelExecutor(Jqp jqp, int num_threads, size_t batch_size,
                   size_t pipe_depth);

  /// True when `idx` can run its next batch: not already queued/running,
  /// every upstream has produced that batch, and (for nodes with consumers)
  /// its output ring has a free slot. Caller holds the scheduler lock.
  bool NodeReady(const Pipeline& p, int32_t idx) const;

  /// True when `idx` is held back from the ready queue *solely* by a full
  /// output ring (its inputs are available and batches remain). Only called
  /// on instrumented runs to attribute stalls; caller holds the scheduler
  /// lock.
  bool BackpressureOnly(const Pipeline& p, int32_t idx) const;

  /// Runs node `idx` over `batch` (merge inputs, drive the runtime, append
  /// sink output, publish to the output ring). Lock-free data plane: only
  /// one worker owns a node's activation at a time.
  void ProcessActivation(Pipeline& p, const EventStream& stream,
                         const ExecutorOptions& options, RunResult* result,
                         int32_t idx, int64_t batch, int worker_id);

  /// Scheduler loop each worker runs for the duration of one Run() epoch.
  void WorkerLoop(Pipeline& p, const EventStream& stream,
                  const ExecutorOptions& options, RunResult* result,
                  int worker_id);

  Jqp jqp_;
  int num_threads_ = 1;
  size_t batch_size_ = 512;
  size_t pipe_depth_ = 4;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;
  /// consumers_[i] lists nodes reading node i's output (plan-static).
  std::vector<std::vector<int32_t>> consumers_;
  /// node_sinks_[i] lists indices into jqp_.sinks answered by node i.
  std::vector<std::vector<size_t>> node_sinks_;
  /// movable_sink_[i] is true when node i's output feeds exactly one sink
  /// and no downstream node, so matches move into the result collection.
  std::vector<bool> movable_sink_;
  /// Raw event types each node must see (operands + negations), as a dense
  /// per-node bitmap indexed by type id; empty bitmap = reads no raw events.
  std::vector<std::vector<bool>> raw_types_;
  /// Persistent pool of num_threads - 1 parked workers; null for 1 thread.
  std::unique_ptr<WorkerPool> pool_;
  /// Scheduler state + per-node rings and scratch, reused across Run calls.
  std::unique_ptr<Pipeline> pipeline_;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_PARALLEL_EXECUTOR_H_
