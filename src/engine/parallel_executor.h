#ifndef MOTTO_ENGINE_PARALLEL_EXECUTOR_H_
#define MOTTO_ENGINE_PARALLEL_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "engine/graph.h"
#include "engine/runtime.h"
#include "event/stream.h"

namespace motto {

/// Multi-threaded JQP executor (paper §VII-C, Fig 14b).
///
/// The stream is processed in batches; within a batch, nodes of the same
/// dataflow level run in parallel across a worker pool, with a barrier
/// between levels. Each node still consumes its inputs (raw events merged
/// with upstream outputs) in timestamp order, so per-node behaviour — and
/// hence the emitted match set — is identical to the single-threaded
/// executor; only inter-node scheduling changes.
class ParallelExecutor {
 public:
  static Result<ParallelExecutor> Create(Jqp jqp, int num_threads,
                                         size_t batch_size = 512);

  ParallelExecutor(ParallelExecutor&&) = default;
  ParallelExecutor& operator=(ParallelExecutor&&) = default;

  Result<RunResult> Run(const EventStream& stream,
                        const ExecutorOptions& options = ExecutorOptions{});

  const Jqp& jqp() const { return jqp_; }
  int num_threads() const { return num_threads_; }

 private:
  ParallelExecutor(Jqp jqp, int num_threads, size_t batch_size);

  Jqp jqp_;
  int num_threads_ = 1;
  size_t batch_size_ = 512;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;
  /// Nodes grouped by dataflow level (level = longest path from a source).
  std::vector<std::vector<int32_t>> levels_;
  /// Raw event types each node must see (operands + negations), as a dense
  /// per-node bitmap indexed by type id; empty bitmap = reads no raw events.
  std::vector<std::vector<bool>> raw_types_;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_PARALLEL_EXECUTOR_H_
