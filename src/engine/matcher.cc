#include "engine/matcher.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/check.h"

namespace motto {

PatternMatcher::PatternMatcher(const PatternSpec& spec)
    : spec_(spec),
      nfa_(BuildNfa(spec.op, static_cast<int32_t>(spec.operands.size()))) {
  // Flatten operand dispatch into a dense (channel, type) table.
  std::map<std::pair<Channel, EventTypeId>, std::vector<int32_t>> by_key;
  for (size_t k = 0; k < spec_.operands.size(); ++k) {
    const OperandBinding& binding = spec_.operands[k];
    channel_limit_ = std::max(channel_limit_, binding.channel + 1);
    for (EventTypeId type : binding.types) {
      type_limit_ = std::max(type_limit_, static_cast<int32_t>(type) + 1);
      by_key[{binding.channel, type}].push_back(static_cast<int32_t>(k));
    }
  }
  dispatch_.assign(
      static_cast<size_t>(channel_limit_) * static_cast<size_t>(type_limit_),
      DispatchEntry{});
  for (const auto& [key, operand_indexes] : by_key) {
    if (operand_indexes.size() > 1) buffers_overlap_ = true;
    DispatchEntry& entry =
        dispatch_[static_cast<size_t>(key.first) *
                      static_cast<size_t>(type_limit_) +
                  static_cast<size_t>(key.second)];
    entry.offset = static_cast<uint32_t>(operand_index_pool_.size());
    entry.count = static_cast<uint32_t>(operand_indexes.size());
    operand_index_pool_.insert(operand_index_pool_.end(),
                               operand_indexes.begin(),
                               operand_indexes.end());
  }
  for (size_t i = 0; i < spec_.negated.size(); ++i) {
    EventTypeId t = spec_.negated[i];
    if (static_cast<size_t>(t) >= negated_lookup_.size()) {
      negated_lookup_.resize(static_cast<size_t>(t) + 1, false);
    }
    negated_lookup_[static_cast<size_t>(t)] = true;
    NegatedEntry entry;
    entry.type = t;
    if (i < spec_.negated_predicates.size()) {
      entry.predicate = spec_.negated_predicates[i];
    }
    negated_entries_.push_back(std::move(entry));
  }
  partials_by_state_.assign(static_cast<size_t>(nfa_.num_states), {});

  // Lazy-mode (selectivity-ordered) structures; cheap to set up even when
  // the matcher only ever runs eagerly.
  const int32_t n = static_cast<int32_t>(spec_.operands.size());
  lazy_eligible_ =
      spec_.op != PatternOp::kDisj && n >= 2 && n <= kMaxLazyOperands;
  eval_order_ = spec_.eval_order;
  // Tolerate unannotated or malformed orders by falling back to operand
  // index order — raw specs built by tests/benches skip the planner, and a
  // lazy run must still be well-defined for them (Jqp::Validate rejects
  // malformed orders on real plans).
  bool valid_order = static_cast<int32_t>(eval_order_.size()) == n;
  if (valid_order) {
    std::vector<bool> seen(static_cast<size_t>(n), false);
    for (int32_t k : eval_order_) {
      if (k < 0 || k >= n || seen[static_cast<size_t>(k)]) {
        valid_order = false;
        break;
      }
      seen[static_cast<size_t>(k)] = true;
    }
  }
  if (!valid_order) {
    eval_order_.resize(static_cast<size_t>(n));
    for (int32_t k = 0; k < n; ++k) eval_order_[static_cast<size_t>(k)] = k;
  }
  lazy_pos_.assign(static_cast<size_t>(n), 0);
  for (int32_t i = 0; i < n; ++i) {
    lazy_pos_[static_cast<size_t>(eval_order_[static_cast<size_t>(i)])] = i;
  }
  // Nearest already-matched SEQ neighbors per evaluation position: the
  // matched set at position i is always the prefix eval_order_[0..i-1], so
  // the neighbors are plan-static.
  left_op_.assign(static_cast<size_t>(n), -1);
  right_op_.assign(static_cast<size_t>(n), -1);
  for (int32_t i = 0; i < n; ++i) {
    int32_t k = eval_order_[static_cast<size_t>(i)];
    for (int32_t j = 0; j < i; ++j) {
      int32_t m = eval_order_[static_cast<size_t>(j)];
      if (m < k && (left_op_[static_cast<size_t>(i)] < 0 ||
                    m > left_op_[static_cast<size_t>(i)])) {
        left_op_[static_cast<size_t>(i)] = m;
      }
      if (m > k && (right_op_[static_cast<size_t>(i)] < 0 ||
                    m < right_op_[static_cast<size_t>(i)])) {
        right_op_[static_cast<size_t>(i)] = m;
      }
    }
  }
  buffers_.assign(static_cast<size_t>(n), {});
  lazy_by_state_.assign(static_cast<size_t>(n), {});
}

void PatternMatcher::SetEvalMode(EvalOrderMode mode) {
  eval_mode_ = mode;
  lazy_active_ = lazy_eligible_ && mode == EvalOrderMode::kSelectivity;
}

void PatternMatcher::Reset() {
  for (auto& bucket : partials_by_state_) bucket.clear();
  for (auto& bucket : lazy_by_state_) bucket.clear();
  for (auto& buffer : buffers_) buffer.clear();
  pending_.clear();
  negated_history_.clear();
  arena_.Reset();
  watermark_ = 0;
  sweep_tick_ = 0;
  arrival_seq_ = 0;
}

void PatternMatcher::CollectStats(NodeStats* stats) const {
  const PartialArena::Stats& arena = arena_.stats();
  stats->arena_chunk_allocs += arena.chunk_allocs;
  stats->arena_chunk_reuses += arena.chunk_reuses;
  stats->arena_live_high_water =
      std::max(stats->arena_live_high_water, arena.live_high_water);
  stats->arena_slab_high_water =
      std::max(stats->arena_slab_high_water, arena.slab_high_water);
}

void PatternMatcher::AttachProbe(obs::MetricsRegistry* registry,
                                 const std::string& prefix) {
  if (registry == nullptr) {
    sweep_seconds_hist_ = nullptr;
    live_partials_hist_ = nullptr;
    negation_depth_hist_ = nullptr;
    sweep_counter_ = nullptr;
    return;
  }
  sweep_seconds_hist_ =
      registry->GetHistogram(prefix + ".sweep_seconds",
                             obs::LatencySecondsBounds());
  live_partials_hist_ =
      registry->GetHistogram(prefix + ".live_partials", obs::SizeBounds());
  negation_depth_hist_ =
      registry->GetHistogram(prefix + ".negation_depth", obs::SizeBounds());
  sweep_counter_ = registry->GetCounter(prefix + ".sweeps");
}

size_t PatternMatcher::PartialCount() const {
  size_t total = 0;
  for (const auto& bucket : partials_by_state_) total += bucket.size();
  for (const auto& bucket : lazy_by_state_) total += bucket.size();
  return total;
}

size_t PatternMatcher::BufferedCount() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer.size();
  return total;
}

void PatternMatcher::ExportState(NodeState* out) {
  *out = NodeState{};
  out->stateless = false;
  out->eval_mode = eval_mode_;
  out->watermark = watermark_;
  out->sweep_tick = sweep_tick_;
  out->arrival_seq = arrival_seq_;
  const size_t n = spec_.operands.size();
  for (size_t s = 0; s < partials_by_state_.size(); ++s) {
    for (const Partial& p : partials_by_state_[s]) {
      NodePartialState ps;
      ps.state = static_cast<int32_t>(s);
      ps.min_begin = p.min_begin;
      ps.max_end = p.max_end;
      ps.last_end = p.last_end;
      arena_.Materialize(p.tail, &ps.constituents);
      out->partials.push_back(std::move(ps));
    }
  }
  for (size_t s = 0; s < lazy_by_state_.size(); ++s) {
    for (const LazyPartial& p : lazy_by_state_[s]) {
      NodePartialState ps;
      ps.state = static_cast<int32_t>(s);
      ps.min_begin = p.min_begin;
      ps.max_end = p.max_end;
      arena_.Materialize(p.tail, &ps.constituents);
      ps.op_begin.assign(p.op_begin, p.op_begin + n);
      ps.op_end.assign(p.op_end, p.op_end + n);
      ps.op_arrival.assign(p.op_arrival, p.op_arrival + n);
      out->lazy_partials.push_back(std::move(ps));
    }
  }
  for (const PendingMatch& p : pending_) {
    NodePartialState ps;
    ps.min_begin = p.min_begin;
    ps.max_end = p.max_end;
    arena_.Materialize(p.tail, &ps.constituents);
    out->pending.push_back(std::move(ps));
  }
  out->negated_history.assign(negated_history_.begin(),
                              negated_history_.end());
  for (size_t k = 0; k < buffers_.size(); ++k) {
    for (const BufferedEvent& b : buffers_[k]) {
      NodeBufferedEvent nb;
      nb.operand = static_cast<int32_t>(k);
      nb.begin = b.begin;
      nb.end = b.end;
      nb.arrival = b.arrival;
      nb.event = b.event;
      out->buffered.push_back(std::move(nb));
    }
  }
}

bool PatternMatcher::ImportState(const NodeState& in) {
  Reset();
  if (in.stateless) return true;
  // A snapshot only fits a matcher running the same evaluation strategy:
  // eager partials and lazy runs are not interconvertible (lazy runs need
  // the per-operand bound intervals the eager chain never records).
  if (in.eval_mode != eval_mode_) return false;
  const int32_t n = static_cast<int32_t>(spec_.operands.size());
  for (const NodePartialState& ps : in.partials) {
    if (ps.state < 0 ||
        ps.state >= static_cast<int32_t>(partials_by_state_.size()) ||
        ps.constituents.empty()) {
      Reset();
      return false;
    }
  }
  for (const NodePartialState& ps : in.lazy_partials) {
    if (ps.state < 1 ||
        ps.state >= static_cast<int32_t>(lazy_by_state_.size()) ||
        ps.constituents.empty() ||
        ps.op_begin.size() != static_cast<size_t>(n) ||
        ps.op_end.size() != static_cast<size_t>(n) ||
        ps.op_arrival.size() != static_cast<size_t>(n)) {
      Reset();
      return false;
    }
  }
  for (const NodeBufferedEvent& nb : in.buffered) {
    if (nb.operand < 0 || nb.operand >= n) {
      Reset();
      return false;
    }
  }
  if (!in.lazy_partials.empty() || !in.buffered.empty()) {
    if (!lazy_active_) {
      Reset();
      return false;
    }
  }
  watermark_ = in.watermark;
  sweep_tick_ = in.sweep_tick;
  arrival_seq_ = in.arrival_seq;
  // Each history is rebuilt as a single flat chunk: Emit re-sorts
  // constituents by (slot, ts, type) at materialization, so losing the
  // original chunk boundaries cannot change any emitted composite.
  for (const NodePartialState& ps : in.partials) {
    Partial p;
    p.min_begin = ps.min_begin;
    p.max_end = ps.max_end;
    p.last_end = ps.last_end;
    p.tail = arena_.Extend(PartialArena::kNullRef, ps.constituents.data(),
                           ps.constituents.size());
    partials_by_state_[static_cast<size_t>(ps.state)].push_back(p);
  }
  for (const NodePartialState& ps : in.lazy_partials) {
    LazyPartial p;
    p.min_begin = ps.min_begin;
    p.max_end = ps.max_end;
    for (int32_t k = 0; k < n; ++k) {
      p.op_begin[static_cast<size_t>(k)] = ps.op_begin[static_cast<size_t>(k)];
      p.op_end[static_cast<size_t>(k)] = ps.op_end[static_cast<size_t>(k)];
      p.op_arrival[static_cast<size_t>(k)] =
          ps.op_arrival[static_cast<size_t>(k)];
    }
    p.tail = arena_.Extend(PartialArena::kNullRef, ps.constituents.data(),
                           ps.constituents.size());
    lazy_by_state_[static_cast<size_t>(ps.state)].push_back(p);
  }
  for (const NodePartialState& ps : in.pending) {
    PendingMatch p;
    p.min_begin = ps.min_begin;
    p.max_end = ps.max_end;
    p.tail = arena_.Extend(PartialArena::kNullRef, ps.constituents.data(),
                           ps.constituents.size());
    pending_.push_back(p);
  }
  negated_history_.assign(in.negated_history.begin(),
                          in.negated_history.end());
  for (const NodeBufferedEvent& nb : in.buffered) {
    buffers_[static_cast<size_t>(nb.operand)].push_back(
        BufferedEvent{nb.begin, nb.end, nb.arrival, nb.event});
  }
  return true;
}

void PatternMatcher::RelabelInto(const Event& event,
                                 const OperandBinding& binding) {
  relabeled_scratch_.clear();
  if (event.is_primitive()) {
    relabeled_scratch_.push_back(
        Constituent{event.type(), event.begin(), binding.slot_map[0]});
    return;
  }
  for (const Constituent& c : event.constituents()) {
    MOTTO_CHECK_LT(static_cast<size_t>(c.slot), binding.slot_map.size())
        << "constituent slot outside operand slot map";
    relabeled_scratch_.push_back(Constituent{
        c.type, c.ts, binding.slot_map[static_cast<size_t>(c.slot)]});
  }
}

void PatternMatcher::Emit(Timestamp min_begin, Timestamp max_end,
                          PartialArena::NodeRef tail,
                          std::vector<Event>* out) {
  emit_scratch_.clear();
  arena_.Materialize(tail, &emit_scratch_);
  std::sort(emit_scratch_.begin(), emit_scratch_.end(),
            [](const Constituent& a, const Constituent& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.type < b.type;
            });
  out->push_back(Event::Composite(spec_.output_type, emit_scratch_, max_end,
                                  min_begin));
}

void PatternMatcher::Complete(Partial&& partial, std::vector<Event>* out) {
  if (spec_.negated.empty()) {
    Emit(partial.min_begin, partial.max_end, partial.tail, out);
    arena_.Release(partial.tail);
    return;
  }
  // A negated event anywhere in [min_begin, min_begin + window] kills the
  // match. Past events are in the history buffer (its eviction horizon,
  // watermark - window, never passes min_begin before completion); future
  // events kill pending matches as they arrive. The buffer is sorted (events
  // arrive in timestamp order), so one binary search finds the earliest
  // candidate.
  Timestamp window_end = partial.min_begin + spec_.window;
  auto it = std::lower_bound(negated_history_.begin(), negated_history_.end(),
                             partial.min_begin);
  if (it != negated_history_.end() && *it <= window_end) {
    arena_.Release(partial.tail);
    return;
  }
  pending_.push_back(
      PendingMatch{partial.min_begin, partial.max_end, partial.tail});
}

void PatternMatcher::SweepExpired() {
  Timestamp horizon = watermark_ - spec_.window;
  for (auto& bucket : partials_by_state_) {
    size_t idx = 0;
    while (idx < bucket.size()) {
      if (bucket[idx].min_begin < horizon) {
        arena_.Release(bucket[idx].tail);
        bucket[idx] = bucket.back();
        bucket.pop_back();
      } else {
        ++idx;
      }
    }
  }
  for (auto& bucket : lazy_by_state_) {
    size_t idx = 0;
    while (idx < bucket.size()) {
      if (bucket[idx].min_begin < horizon) {
        arena_.Release(bucket[idx].tail);
        bucket[idx] = bucket.back();
        bucket.pop_back();
      } else {
        ++idx;
      }
    }
  }
  // Operand buffers are in arrival (= end timestamp) order; begins of
  // composite inputs can interleave, so front eviction is best-effort — a
  // straggler behind a newer begin is dead weight until the horizon passes
  // it, never a correctness issue (every join re-checks the window).
  for (auto& buffer : buffers_) {
    while (!buffer.empty() && buffer.front().begin < horizon) {
      buffer.pop_front();
    }
  }
}

void PatternMatcher::OnWatermark(Timestamp watermark, std::vector<Event>* out) {
  watermark_ = watermark;
  Timestamp horizon = watermark - spec_.window;
  while (!negated_history_.empty() && negated_history_.front() < horizon) {
    negated_history_.pop_front();
  }
  if (!pending_.empty()) {
    size_t keep = 0;
    for (size_t idx = 0; idx < pending_.size(); ++idx) {
      PendingMatch& p = pending_[idx];
      if (p.min_begin + spec_.window < watermark) {
        Emit(p.min_begin, p.max_end, p.tail, out);
        arena_.Release(p.tail);
      } else {
        pending_[keep++] = p;
      }
    }
    pending_.resize(keep);
  }
  if ((++sweep_tick_ & 63) == 0) {
    if (sweep_seconds_hist_ != nullptr) {
      // Probed sweep: also sample the state-size signals the optimizer's
      // cost model should track (live partials, negation-buffer depth).
      auto sweep_start = std::chrono::steady_clock::now();
      SweepExpired();
      sweep_seconds_hist_->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        sweep_start)
              .count());
      live_partials_hist_->Record(static_cast<double>(PartialCount()));
      negation_depth_hist_->Record(
          static_cast<double>(negated_history_.size()));
      sweep_counter_->Add();
    } else {
      SweepExpired();
    }
  }
}

void PatternMatcher::OnEvent(Channel channel, const Event& event,
                             std::vector<Event>* out) {
  if (channel == kRawChannel &&
      static_cast<size_t>(event.type()) < negated_lookup_.size() &&
      negated_lookup_[static_cast<size_t>(event.type())]) {
    bool kills = false;
    for (const NegatedEntry& entry : negated_entries_) {
      if (entry.type == event.type() &&
          (entry.predicate.empty() ||
           entry.predicate.Matches(event.payload()))) {
        kills = true;
        break;
      }
    }
    if (kills) {
      Timestamp ts = event.begin();
      negated_history_.push_back(ts);
      size_t keep = 0;
      for (size_t idx = 0; idx < pending_.size(); ++idx) {
        PendingMatch& p = pending_[idx];
        if (ts >= p.min_begin && ts <= p.min_begin + spec_.window) {
          arena_.Release(p.tail);
        } else {
          pending_[keep++] = p;
        }
      }
      pending_.resize(keep);
    }
  }

  if (channel >= channel_limit_ ||
      static_cast<int32_t>(event.type()) >= type_limit_ || event.type() < 0) {
    return;
  }
  const DispatchEntry entry =
      dispatch_[static_cast<size_t>(channel) * static_cast<size_t>(type_limit_) +
                static_cast<size_t>(event.type())];
  if (entry.count == 0) return;

  // Operand-level payload predicates (selectors) filter before any NFA work.
  auto operand_accepts = [&](int32_t k) {
    const Predicate& predicate =
        spec_.operands[static_cast<size_t>(k)].predicate;
    if (predicate.empty()) return true;
    return event.is_primitive() && predicate.Matches(event.payload());
  };

  if (spec_.op == PatternOp::kDisj) {
    for (uint32_t i = 0; i < entry.count; ++i) {
      if (operand_accepts(operand_index_pool_[entry.offset + i])) {
        out->push_back(event);  // Pass-through; see class comment.
        return;
      }
    }
    return;
  }

  if (lazy_active_) {
    OnEventLazy(entry, event, out);
    return;
  }

  // New partials are staged so this event cannot extend a run it just
  // created (one event instance fills at most one operand per match).
  staged_scratch_.clear();
  Timestamp horizon = watermark_ - spec_.window;
  for (uint32_t i = 0; i < entry.count; ++i) {
    int32_t k = operand_index_pool_[entry.offset + i];
    if (!operand_accepts(k)) continue;
    const OperandBinding& binding = spec_.operands[static_cast<size_t>(k)];
    RelabelInto(event, binding);
    for (int32_t t_idx : nfa_.transitions_by_operand[static_cast<size_t>(k)]) {
      const NfaTransition& t = nfa_.transitions[static_cast<size_t>(t_idx)];
      if (t.from == nfa_.start) {
        Partial fresh;
        fresh.min_begin = event.begin();
        fresh.max_end = event.end();
        fresh.last_end = event.end();
        fresh.tail = arena_.Extend(PartialArena::kNullRef,
                                   relabeled_scratch_.data(),
                                   relabeled_scratch_.size());
        if (nfa_.accepting[static_cast<size_t>(t.to)]) {
          Complete(std::move(fresh), out);
        } else {
          staged_scratch_.emplace_back(t.to, fresh);
        }
        continue;
      }
      auto& bucket = partials_by_state_[static_cast<size_t>(t.from)];
      size_t idx = 0;
      while (idx < bucket.size()) {
        Partial& p = bucket[idx];
        if (p.min_begin < horizon) {
          // Expired: can never complete, drop in place.
          arena_.Release(p.tail);
          p = bucket.back();
          bucket.pop_back();
          continue;
        }
        Timestamp new_begin = std::min(p.min_begin, event.begin());
        Timestamp new_end = std::max(p.max_end, event.end());
        bool fits_window = new_end - new_begin <= spec_.window;
        bool ordered = !t.requires_order || p.last_end < event.begin();
        if (fits_window && ordered) {
          Partial extended;
          extended.min_begin = new_begin;
          extended.max_end = new_end;
          extended.last_end = event.end();
          extended.tail = arena_.Extend(p.tail, relabeled_scratch_.data(),
                                        relabeled_scratch_.size());
          if (nfa_.accepting[static_cast<size_t>(t.to)]) {
            Complete(std::move(extended), out);
          } else {
            staged_scratch_.emplace_back(t.to, extended);
          }
        }
        ++idx;
      }
    }
  }
  for (auto& [state, partial] : staged_scratch_) {
    partials_by_state_[static_cast<size_t>(state)].push_back(partial);
  }
}

bool PatternMatcher::TryExtendLazy(const LazyPartial& p, int32_t pos,
                                   Timestamp e_begin, Timestamp e_end,
                                   uint64_t arrival,
                                   LazyPartial* extended) const {
  Timestamp new_begin = std::min(p.min_begin, e_begin);
  Timestamp new_end = std::max(p.max_end, e_end);
  if (new_end - new_begin > spec_.window) return false;
  if (spec_.op == PatternOp::kSeq) {
    // Adjacency against the nearest already-matched sequence neighbors.
    // Over a full match this checks exactly every adjacent operand pair
    // (the later-bound of each pair sees the earlier-bound as its nearest
    // neighbor), matching the eager chain's complete-history order guard;
    // non-adjacent checks in between are implied by transitivity
    // (end_i < begin_{i+1} <= end_{i+1}) and only prune runs that could
    // never complete.
    int32_t left = left_op_[static_cast<size_t>(pos)];
    if (left >= 0 && p.op_end[static_cast<size_t>(left)] >= e_begin) {
      return false;
    }
    int32_t right = right_op_[static_cast<size_t>(pos)];
    if (right >= 0 && e_end >= p.op_begin[static_cast<size_t>(right)]) {
      return false;
    }
  }
  if (buffers_overlap_) {
    // One physical event may sit in several operand buffers (duplicate
    // operand types); it must still fill at most one operand per match —
    // the lazy counterpart of the eager path's staging rule.
    for (int32_t j = 0; j < pos; ++j) {
      int32_t m = eval_order_[static_cast<size_t>(j)];
      if (p.op_arrival[static_cast<size_t>(m)] == arrival) return false;
    }
  }
  int32_t k = eval_order_[static_cast<size_t>(pos)];
  *extended = p;  // Caller overwrites the copied tail with its own chunk.
  extended->min_begin = new_begin;
  extended->max_end = new_end;
  extended->op_begin[static_cast<size_t>(k)] = e_begin;
  extended->op_end[static_cast<size_t>(k)] = e_end;
  extended->op_arrival[static_cast<size_t>(k)] = arrival;
  return true;
}

void PatternMatcher::CascadeLazy(LazyPartial&& partial, int32_t state,
                                 std::vector<Event>* out) {
  const int32_t n = static_cast<int32_t>(spec_.operands.size());
  if (state == n) {
    Complete(Partial{partial.min_begin, partial.max_end, partial.max_end,
                     partial.tail},
             out);
    return;
  }
  // Join against the already-buffered events of the next operand in
  // evaluation order. Every successful join branches into a deeper run; the
  // run itself survives in its bucket for future arrivals. Recursion depth
  // is bounded by the operand count (<= kMaxLazyOperands).
  const int32_t k = eval_order_[static_cast<size_t>(state)];
  const OperandBinding& binding = spec_.operands[static_cast<size_t>(k)];
  std::deque<BufferedEvent>& buffer = buffers_[static_cast<size_t>(k)];
  for (const BufferedEvent& buffered : buffer) {
    LazyPartial extended;
    if (!TryExtendLazy(partial, state, buffered.begin, buffered.end,
                       buffered.arrival, &extended)) {
      continue;
    }
    // Relabel per join: deeper cascades share relabeled_scratch_, and the
    // arena copies the constituents out before the recursive call.
    RelabelInto(buffered.event, binding);
    extended.tail = arena_.Extend(partial.tail, relabeled_scratch_.data(),
                                  relabeled_scratch_.size());
    CascadeLazy(std::move(extended), state + 1, out);
  }
  lazy_staged_.emplace_back(state, std::move(partial));
}

void PatternMatcher::OnEventLazy(const DispatchEntry& entry,
                                 const Event& event,
                                 std::vector<Event>* out) {
  const uint64_t arrival = ++arrival_seq_;
  const Timestamp horizon = watermark_ - spec_.window;
  // New and advanced runs are staged (merged into their buckets at the end
  // of the call), and the event is appended to its operand buffers only
  // after all processing: both mirror the eager path's staging rule — one
  // physical event fills at most one operand per match, and never joins a
  // run it advanced within its own arrival.
  lazy_staged_.clear();
  bool buffer_operand[kMaxLazyOperands] = {};
  for (uint32_t i = 0; i < entry.count; ++i) {
    int32_t k = operand_index_pool_[entry.offset + i];
    const OperandBinding& binding = spec_.operands[static_cast<size_t>(k)];
    if (!binding.predicate.empty() &&
        !(event.is_primitive() && binding.predicate.Matches(event.payload()))) {
      continue;
    }
    int32_t pos = lazy_pos_[static_cast<size_t>(k)];
    if (pos == 0) {
      // Anchor: the only operand that opens a run. Never buffered — every
      // run binds its anchor at creation.
      RelabelInto(event, binding);
      LazyPartial fresh;
      fresh.min_begin = event.begin();
      fresh.max_end = event.end();
      fresh.op_begin[static_cast<size_t>(k)] = event.begin();
      fresh.op_end[static_cast<size_t>(k)] = event.end();
      fresh.op_arrival[static_cast<size_t>(k)] = arrival;
      fresh.tail = arena_.Extend(PartialArena::kNullRef,
                                 relabeled_scratch_.data(),
                                 relabeled_scratch_.size());
      CascadeLazy(std::move(fresh), 1, out);
      continue;
    }
    // Arrival-driven: advance runs already waiting at this position, with
    // in-place expiry like the eager bucket scans.
    auto& bucket = lazy_by_state_[static_cast<size_t>(pos)];
    size_t idx = 0;
    while (idx < bucket.size()) {
      LazyPartial& p = bucket[idx];
      if (p.min_begin < horizon) {
        arena_.Release(p.tail);
        p = bucket.back();
        bucket.pop_back();
        continue;
      }
      LazyPartial extended;
      if (TryExtendLazy(p, pos, event.begin(), event.end(), arrival,
                        &extended)) {
        RelabelInto(event, binding);  // Cascades clobber the scratch.
        extended.tail = arena_.Extend(p.tail, relabeled_scratch_.data(),
                                      relabeled_scratch_.size());
        CascadeLazy(std::move(extended), pos + 1, out);
      }
      ++idx;
    }
    buffer_operand[static_cast<size_t>(k)] = true;
  }
  for (int32_t k = 0; k < static_cast<int32_t>(spec_.operands.size()); ++k) {
    if (buffer_operand[static_cast<size_t>(k)]) {
      buffers_[static_cast<size_t>(k)].push_back(
          BufferedEvent{event.begin(), event.end(), arrival, event});
    }
  }
  for (auto& [state, partial] : lazy_staged_) {
    lazy_by_state_[static_cast<size_t>(state)].push_back(std::move(partial));
  }
}

}  // namespace motto
