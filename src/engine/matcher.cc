#include "engine/matcher.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/check.h"

namespace motto {

PatternMatcher::PatternMatcher(const PatternSpec& spec)
    : spec_(spec),
      nfa_(BuildNfa(spec.op, static_cast<int32_t>(spec.operands.size()))) {
  // Flatten operand dispatch into a dense (channel, type) table.
  std::map<std::pair<Channel, EventTypeId>, std::vector<int32_t>> by_key;
  for (size_t k = 0; k < spec_.operands.size(); ++k) {
    const OperandBinding& binding = spec_.operands[k];
    channel_limit_ = std::max(channel_limit_, binding.channel + 1);
    for (EventTypeId type : binding.types) {
      type_limit_ = std::max(type_limit_, static_cast<int32_t>(type) + 1);
      by_key[{binding.channel, type}].push_back(static_cast<int32_t>(k));
    }
  }
  dispatch_.assign(
      static_cast<size_t>(channel_limit_) * static_cast<size_t>(type_limit_),
      DispatchEntry{});
  for (const auto& [key, operand_indexes] : by_key) {
    DispatchEntry& entry =
        dispatch_[static_cast<size_t>(key.first) *
                      static_cast<size_t>(type_limit_) +
                  static_cast<size_t>(key.second)];
    entry.offset = static_cast<uint32_t>(operand_index_pool_.size());
    entry.count = static_cast<uint32_t>(operand_indexes.size());
    operand_index_pool_.insert(operand_index_pool_.end(),
                               operand_indexes.begin(),
                               operand_indexes.end());
  }
  for (size_t i = 0; i < spec_.negated.size(); ++i) {
    EventTypeId t = spec_.negated[i];
    if (static_cast<size_t>(t) >= negated_lookup_.size()) {
      negated_lookup_.resize(static_cast<size_t>(t) + 1, false);
    }
    negated_lookup_[static_cast<size_t>(t)] = true;
    NegatedEntry entry;
    entry.type = t;
    if (i < spec_.negated_predicates.size()) {
      entry.predicate = spec_.negated_predicates[i];
    }
    negated_entries_.push_back(std::move(entry));
  }
  partials_by_state_.assign(static_cast<size_t>(nfa_.num_states), {});
}

void PatternMatcher::Reset() {
  for (auto& bucket : partials_by_state_) bucket.clear();
  pending_.clear();
  negated_history_.clear();
  arena_.Reset();
  watermark_ = 0;
  sweep_tick_ = 0;
}

void PatternMatcher::CollectStats(NodeStats* stats) const {
  const PartialArena::Stats& arena = arena_.stats();
  stats->arena_chunk_allocs += arena.chunk_allocs;
  stats->arena_chunk_reuses += arena.chunk_reuses;
  stats->arena_live_high_water =
      std::max(stats->arena_live_high_water, arena.live_high_water);
  stats->arena_slab_high_water =
      std::max(stats->arena_slab_high_water, arena.slab_high_water);
}

void PatternMatcher::AttachProbe(obs::MetricsRegistry* registry,
                                 const std::string& prefix) {
  if (registry == nullptr) {
    sweep_seconds_hist_ = nullptr;
    live_partials_hist_ = nullptr;
    negation_depth_hist_ = nullptr;
    sweep_counter_ = nullptr;
    return;
  }
  sweep_seconds_hist_ =
      registry->GetHistogram(prefix + ".sweep_seconds",
                             obs::LatencySecondsBounds());
  live_partials_hist_ =
      registry->GetHistogram(prefix + ".live_partials", obs::SizeBounds());
  negation_depth_hist_ =
      registry->GetHistogram(prefix + ".negation_depth", obs::SizeBounds());
  sweep_counter_ = registry->GetCounter(prefix + ".sweeps");
}

size_t PatternMatcher::PartialCount() const {
  size_t total = 0;
  for (const auto& bucket : partials_by_state_) total += bucket.size();
  return total;
}

void PatternMatcher::RelabelInto(const Event& event,
                                 const OperandBinding& binding) {
  relabeled_scratch_.clear();
  if (event.is_primitive()) {
    relabeled_scratch_.push_back(
        Constituent{event.type(), event.begin(), binding.slot_map[0]});
    return;
  }
  for (const Constituent& c : event.constituents()) {
    MOTTO_CHECK_LT(static_cast<size_t>(c.slot), binding.slot_map.size())
        << "constituent slot outside operand slot map";
    relabeled_scratch_.push_back(Constituent{
        c.type, c.ts, binding.slot_map[static_cast<size_t>(c.slot)]});
  }
}

void PatternMatcher::Emit(Timestamp min_begin, Timestamp max_end,
                          PartialArena::NodeRef tail,
                          std::vector<Event>* out) {
  emit_scratch_.clear();
  arena_.Materialize(tail, &emit_scratch_);
  std::sort(emit_scratch_.begin(), emit_scratch_.end(),
            [](const Constituent& a, const Constituent& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.type < b.type;
            });
  out->push_back(Event::Composite(spec_.output_type, emit_scratch_, max_end,
                                  min_begin));
}

void PatternMatcher::Complete(Partial&& partial, std::vector<Event>* out) {
  if (spec_.negated.empty()) {
    Emit(partial.min_begin, partial.max_end, partial.tail, out);
    arena_.Release(partial.tail);
    return;
  }
  // A negated event anywhere in [min_begin, min_begin + window] kills the
  // match. Past events are in the history buffer (its eviction horizon,
  // watermark - window, never passes min_begin before completion); future
  // events kill pending matches as they arrive. The buffer is sorted (events
  // arrive in timestamp order), so one binary search finds the earliest
  // candidate.
  Timestamp window_end = partial.min_begin + spec_.window;
  auto it = std::lower_bound(negated_history_.begin(), negated_history_.end(),
                             partial.min_begin);
  if (it != negated_history_.end() && *it <= window_end) {
    arena_.Release(partial.tail);
    return;
  }
  pending_.push_back(
      PendingMatch{partial.min_begin, partial.max_end, partial.tail});
}

void PatternMatcher::SweepExpired() {
  Timestamp horizon = watermark_ - spec_.window;
  for (auto& bucket : partials_by_state_) {
    size_t idx = 0;
    while (idx < bucket.size()) {
      if (bucket[idx].min_begin < horizon) {
        arena_.Release(bucket[idx].tail);
        bucket[idx] = bucket.back();
        bucket.pop_back();
      } else {
        ++idx;
      }
    }
  }
}

void PatternMatcher::OnWatermark(Timestamp watermark, std::vector<Event>* out) {
  watermark_ = watermark;
  Timestamp horizon = watermark - spec_.window;
  while (!negated_history_.empty() && negated_history_.front() < horizon) {
    negated_history_.pop_front();
  }
  if (!pending_.empty()) {
    size_t keep = 0;
    for (size_t idx = 0; idx < pending_.size(); ++idx) {
      PendingMatch& p = pending_[idx];
      if (p.min_begin + spec_.window < watermark) {
        Emit(p.min_begin, p.max_end, p.tail, out);
        arena_.Release(p.tail);
      } else {
        pending_[keep++] = p;
      }
    }
    pending_.resize(keep);
  }
  if ((++sweep_tick_ & 63) == 0) {
    if (sweep_seconds_hist_ != nullptr) {
      // Probed sweep: also sample the state-size signals the optimizer's
      // cost model should track (live partials, negation-buffer depth).
      auto sweep_start = std::chrono::steady_clock::now();
      SweepExpired();
      sweep_seconds_hist_->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        sweep_start)
              .count());
      live_partials_hist_->Record(static_cast<double>(PartialCount()));
      negation_depth_hist_->Record(
          static_cast<double>(negated_history_.size()));
      sweep_counter_->Add();
    } else {
      SweepExpired();
    }
  }
}

void PatternMatcher::OnEvent(Channel channel, const Event& event,
                             std::vector<Event>* out) {
  if (channel == kRawChannel &&
      static_cast<size_t>(event.type()) < negated_lookup_.size() &&
      negated_lookup_[static_cast<size_t>(event.type())]) {
    bool kills = false;
    for (const NegatedEntry& entry : negated_entries_) {
      if (entry.type == event.type() &&
          (entry.predicate.empty() ||
           entry.predicate.Matches(event.payload()))) {
        kills = true;
        break;
      }
    }
    if (kills) {
      Timestamp ts = event.begin();
      negated_history_.push_back(ts);
      size_t keep = 0;
      for (size_t idx = 0; idx < pending_.size(); ++idx) {
        PendingMatch& p = pending_[idx];
        if (ts >= p.min_begin && ts <= p.min_begin + spec_.window) {
          arena_.Release(p.tail);
        } else {
          pending_[keep++] = p;
        }
      }
      pending_.resize(keep);
    }
  }

  if (channel >= channel_limit_ ||
      static_cast<int32_t>(event.type()) >= type_limit_ || event.type() < 0) {
    return;
  }
  const DispatchEntry entry =
      dispatch_[static_cast<size_t>(channel) * static_cast<size_t>(type_limit_) +
                static_cast<size_t>(event.type())];
  if (entry.count == 0) return;

  // Operand-level payload predicates (selectors) filter before any NFA work.
  auto operand_accepts = [&](int32_t k) {
    const Predicate& predicate =
        spec_.operands[static_cast<size_t>(k)].predicate;
    if (predicate.empty()) return true;
    return event.is_primitive() && predicate.Matches(event.payload());
  };

  if (spec_.op == PatternOp::kDisj) {
    for (uint32_t i = 0; i < entry.count; ++i) {
      if (operand_accepts(operand_index_pool_[entry.offset + i])) {
        out->push_back(event);  // Pass-through; see class comment.
        return;
      }
    }
    return;
  }

  // New partials are staged so this event cannot extend a run it just
  // created (one event instance fills at most one operand per match).
  staged_scratch_.clear();
  Timestamp horizon = watermark_ - spec_.window;
  for (uint32_t i = 0; i < entry.count; ++i) {
    int32_t k = operand_index_pool_[entry.offset + i];
    if (!operand_accepts(k)) continue;
    const OperandBinding& binding = spec_.operands[static_cast<size_t>(k)];
    RelabelInto(event, binding);
    for (int32_t t_idx : nfa_.transitions_by_operand[static_cast<size_t>(k)]) {
      const NfaTransition& t = nfa_.transitions[static_cast<size_t>(t_idx)];
      if (t.from == nfa_.start) {
        Partial fresh;
        fresh.min_begin = event.begin();
        fresh.max_end = event.end();
        fresh.last_end = event.end();
        fresh.tail = arena_.Extend(PartialArena::kNullRef,
                                   relabeled_scratch_.data(),
                                   relabeled_scratch_.size());
        if (nfa_.accepting[static_cast<size_t>(t.to)]) {
          Complete(std::move(fresh), out);
        } else {
          staged_scratch_.emplace_back(t.to, fresh);
        }
        continue;
      }
      auto& bucket = partials_by_state_[static_cast<size_t>(t.from)];
      size_t idx = 0;
      while (idx < bucket.size()) {
        Partial& p = bucket[idx];
        if (p.min_begin < horizon) {
          // Expired: can never complete, drop in place.
          arena_.Release(p.tail);
          p = bucket.back();
          bucket.pop_back();
          continue;
        }
        Timestamp new_begin = std::min(p.min_begin, event.begin());
        Timestamp new_end = std::max(p.max_end, event.end());
        bool fits_window = new_end - new_begin <= spec_.window;
        bool ordered = !t.requires_order || p.last_end < event.begin();
        if (fits_window && ordered) {
          Partial extended;
          extended.min_begin = new_begin;
          extended.max_end = new_end;
          extended.last_end = event.end();
          extended.tail = arena_.Extend(p.tail, relabeled_scratch_.data(),
                                        relabeled_scratch_.size());
          if (nfa_.accepting[static_cast<size_t>(t.to)]) {
            Complete(std::move(extended), out);
          } else {
            staged_scratch_.emplace_back(t.to, extended);
          }
        }
        ++idx;
      }
    }
  }
  for (auto& [state, partial] : staged_scratch_) {
    partials_by_state_[static_cast<size_t>(state)].push_back(partial);
  }
}

}  // namespace motto
