#include "engine/matcher.h"

#include <algorithm>

#include "common/check.h"

namespace motto {

PatternMatcher::PatternMatcher(const PatternSpec& spec)
    : spec_(spec),
      nfa_(BuildNfa(spec.op, static_cast<int32_t>(spec.operands.size()))) {
  for (size_t k = 0; k < spec_.operands.size(); ++k) {
    const OperandBinding& binding = spec_.operands[k];
    for (EventTypeId type : binding.types) {
      operands_by_key_[OperandKey{binding.channel, type}].push_back(
          static_cast<int32_t>(k));
    }
  }
  for (size_t i = 0; i < spec_.negated.size(); ++i) {
    EventTypeId t = spec_.negated[i];
    if (static_cast<size_t>(t) >= negated_lookup_.size()) {
      negated_lookup_.resize(static_cast<size_t>(t) + 1, false);
    }
    negated_lookup_[static_cast<size_t>(t)] = true;
    NegatedEntry entry;
    entry.type = t;
    if (i < spec_.negated_predicates.size()) {
      entry.predicate = spec_.negated_predicates[i];
    }
    negated_entries_.push_back(std::move(entry));
  }
  partials_by_state_.assign(static_cast<size_t>(nfa_.num_states), {});
}

void PatternMatcher::Reset() {
  for (auto& bucket : partials_by_state_) bucket.clear();
  pending_.clear();
  negated_history_.clear();
  watermark_ = 0;
  sweep_tick_ = 0;
}

size_t PatternMatcher::PartialCount() const {
  size_t total = 0;
  for (const auto& bucket : partials_by_state_) total += bucket.size();
  return total;
}

void PatternMatcher::AppendRelabeled(const Event& event,
                                     const OperandBinding& binding,
                                     std::vector<Constituent>* parts) const {
  if (event.is_primitive()) {
    parts->push_back(Constituent{event.type(), event.begin(),
                                 binding.slot_map[0]});
    return;
  }
  for (const Constituent& c : event.constituents()) {
    MOTTO_CHECK_LT(static_cast<size_t>(c.slot), binding.slot_map.size())
        << "constituent slot outside operand slot map";
    parts->push_back(
        Constituent{c.type, c.ts, binding.slot_map[static_cast<size_t>(c.slot)]});
  }
}

void PatternMatcher::Emit(Timestamp min_begin, Timestamp max_end,
                          std::vector<Constituent> parts,
                          std::vector<Event>* out) const {
  (void)min_begin;
  std::sort(parts.begin(), parts.end(),
            [](const Constituent& a, const Constituent& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.type < b.type;
            });
  out->push_back(Event::Composite(spec_.output_type, std::move(parts), max_end));
}

void PatternMatcher::Complete(Partial&& partial, std::vector<Event>* out) {
  if (spec_.negated.empty()) {
    Emit(partial.min_begin, partial.max_end, std::move(partial.parts), out);
    return;
  }
  // A negated event anywhere in [min_begin, min_begin + window] kills the
  // match. Past events are in the history buffer (its eviction horizon,
  // watermark - window, never passes min_begin before completion); future
  // events kill pending matches as they arrive.
  Timestamp window_end = partial.min_begin + spec_.window;
  for (Timestamp ts : negated_history_) {
    if (ts >= partial.min_begin && ts <= window_end) return;
  }
  pending_.push_back(PendingMatch{partial.min_begin, partial.max_end,
                                  std::move(partial.parts)});
}

void PatternMatcher::SweepExpired() {
  Timestamp horizon = watermark_ - spec_.window;
  for (auto& bucket : partials_by_state_) {
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [horizon](const Partial& p) {
                                  return p.min_begin < horizon;
                                }),
                 bucket.end());
  }
}

void PatternMatcher::OnWatermark(Timestamp watermark, std::vector<Event>* out) {
  watermark_ = watermark;
  Timestamp horizon = watermark - spec_.window;
  while (!negated_history_.empty() && negated_history_.front() < horizon) {
    negated_history_.pop_front();
  }
  if (!pending_.empty()) {
    auto it = pending_.begin();
    while (it != pending_.end()) {
      if (it->min_begin + spec_.window < watermark) {
        Emit(it->min_begin, it->max_end, std::move(it->parts), out);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if ((++sweep_tick_ & 63) == 0) SweepExpired();
}

void PatternMatcher::OnEvent(Channel channel, const Event& event,
                             std::vector<Event>* out) {
  if (channel == kRawChannel &&
      static_cast<size_t>(event.type()) < negated_lookup_.size() &&
      negated_lookup_[static_cast<size_t>(event.type())]) {
    bool kills = false;
    for (const NegatedEntry& entry : negated_entries_) {
      if (entry.type == event.type() &&
          (entry.predicate.empty() ||
           entry.predicate.Matches(event.payload()))) {
        kills = true;
        break;
      }
    }
    if (kills) {
      Timestamp ts = event.begin();
      negated_history_.push_back(ts);
      pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                    [this, ts](const PendingMatch& p) {
                                      return ts >= p.min_begin &&
                                             ts <= p.min_begin + spec_.window;
                                    }),
                     pending_.end());
    }
  }

  auto key_it = operands_by_key_.find(OperandKey{channel, event.type()});
  if (key_it == operands_by_key_.end()) return;

  // Operand-level payload predicates (selectors) filter before any NFA work.
  auto operand_accepts = [&](int32_t k) {
    const Predicate& predicate =
        spec_.operands[static_cast<size_t>(k)].predicate;
    if (predicate.empty()) return true;
    return event.is_primitive() && predicate.Matches(event.payload());
  };

  if (spec_.op == PatternOp::kDisj) {
    for (int32_t k : key_it->second) {
      if (operand_accepts(k)) {
        out->push_back(event);  // Pass-through; see class comment.
        return;
      }
    }
    return;
  }

  // New partials are staged so this event cannot extend a run it just
  // created (one event instance fills at most one operand per match).
  std::vector<std::pair<int32_t, Partial>> staged;
  Timestamp horizon = watermark_ - spec_.window;
  for (int32_t k : key_it->second) {
    if (!operand_accepts(k)) continue;
    const OperandBinding& binding = spec_.operands[static_cast<size_t>(k)];
    std::vector<Constituent> relabeled;
    AppendRelabeled(event, binding, &relabeled);
    for (int32_t t_idx : nfa_.transitions_by_operand[static_cast<size_t>(k)]) {
      const NfaTransition& t = nfa_.transitions[static_cast<size_t>(t_idx)];
      if (t.from == nfa_.start) {
        Partial fresh;
        fresh.min_begin = event.begin();
        fresh.max_end = event.end();
        fresh.last_end = event.end();
        fresh.parts = relabeled;
        if (nfa_.accepting[static_cast<size_t>(t.to)]) {
          Complete(std::move(fresh), out);
        } else {
          staged.emplace_back(t.to, std::move(fresh));
        }
        continue;
      }
      auto& bucket = partials_by_state_[static_cast<size_t>(t.from)];
      size_t idx = 0;
      while (idx < bucket.size()) {
        Partial& p = bucket[idx];
        if (p.min_begin < horizon) {
          // Expired: can never complete, drop in place.
          p = std::move(bucket.back());
          bucket.pop_back();
          continue;
        }
        Timestamp new_begin = std::min(p.min_begin, event.begin());
        Timestamp new_end = std::max(p.max_end, event.end());
        bool fits_window = new_end - new_begin <= spec_.window;
        bool ordered = !t.requires_order || p.last_end < event.begin();
        if (fits_window && ordered) {
          Partial extended;
          extended.min_begin = new_begin;
          extended.max_end = new_end;
          extended.last_end = event.end();
          extended.parts = p.parts;
          extended.parts.insert(extended.parts.end(), relabeled.begin(),
                                relabeled.end());
          if (nfa_.accepting[static_cast<size_t>(t.to)]) {
            Complete(std::move(extended), out);
          } else {
            staged.emplace_back(t.to, std::move(extended));
          }
        }
        ++idx;
      }
    }
  }
  for (auto& [state, partial] : staged) {
    partials_by_state_[static_cast<size_t>(state)].push_back(
        std::move(partial));
  }
}

}  // namespace motto
