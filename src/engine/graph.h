#ifndef MOTTO_ENGINE_GRAPH_H_
#define MOTTO_ENGINE_GRAPH_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ccl/pattern.h"
#include "ccl/predicate.h"
#include "common/result.h"
#include "common/time.h"
#include "event/event_type.h"

namespace motto {

/// Input channel of an operator node. Channel 0 is the raw primitive stream;
/// channel i >= 1 is the output of the node's (i-1)-th upstream input.
using Channel = int32_t;
inline constexpr Channel kRawChannel = 0;

/// Where one pattern operand takes its events from, and how the constituents
/// it contributes are relabeled into the producing node's slot space.
struct OperandBinding {
  /// Event types this operand accepts (usually one: a primitive, or the
  /// output composite type of the bound upstream node). Multiple types
  /// express an "any of" operand, e.g. a nested DISJ sub-pattern whose
  /// matches are pass-through primitives of several types.
  std::vector<EventTypeId> types;
  Channel channel = kRawChannel;
  /// slot_map[s] is the output slot for an incoming constituent with slot s.
  /// For primitive operands this has one entry (incoming slot is 0).
  std::vector<int32_t> slot_map;
  /// Payload restriction evaluated on arriving primitive events (selector
  /// operands, e.g. `AAPL[value > 100]`). Empty = unrestricted.
  Predicate predicate;
};

/// A pattern operator node: the NFA matcher for SEQ/CONJ/DISJ with window
/// constraint and (for terminal nodes) window-scoped negation.
struct PatternSpec {
  PatternOp op = PatternOp::kSeq;
  std::vector<OperandBinding> operands;
  /// NEG'd primitive types, observed on the raw channel. Only allowed on
  /// nodes without downstream consumers (emission is deferred to window
  /// expiry, paper §II).
  std::vector<EventTypeId> negated;
  /// Optional payload restrictions on the negated types; when non-empty it
  /// parallels `negated` (empty predicate = any event of that type kills).
  std::vector<Predicate> negated_predicates;
  Duration window = 0;
  /// Composite type of emitted matches (ignored for DISJ, which passes
  /// matching input events through unchanged).
  EventTypeId output_type = kInvalidEventType;
  /// Operand evaluation order for selectivity-ordered ("lazy") matching,
  /// chosen at plan time by the order planner (cost/order_planner.h):
  /// eval_order[0] is the anchor — the rarest / most selective operand,
  /// evaluated first. Must be a permutation of the operand indexes when
  /// non-empty (Jqp::Validate). Empty = no plan-time choice; a lazy run
  /// then falls back to operand index order. Ignored entirely when the run
  /// executes in arrival mode (the default) and for DISJ.
  std::vector<int32_t> eval_order;
};

/// Stateless filter enforcing a SEQ ordering over composite constituents:
/// constituents sorted by timestamp must carry exactly `required_order`
/// types with strictly increasing timestamps. Implements Filter_sc of the
/// paper's OTT (Table I) and the time filters of MST's non-substring merge.
/// Requires distinct types in `required_order`.
struct OrderFilterSpec {
  std::vector<EventTypeId> required_order;
  /// When true, passing events are re-emitted with slots renumbered to the
  /// index of each constituent's type in `required_order`, and retyped to
  /// `output_type`.
  bool relabel = false;
  EventTypeId output_type = kInvalidEventType;
};

/// Stateless filter dropping composite events whose constituent span exceeds
/// `max_span`. Implements the paper's §IV-D window mark-point filtering for
/// sliding windows (a composite is valid for a consumer iff it fits the
/// consumer's window).
struct SpanFilterSpec {
  Duration max_span = 0;
  /// When set, passing composites are re-emitted with this type (their
  /// constituents unchanged), so consumers can bind by the narrower node's
  /// canonical composite type.
  EventTypeId retype = kInvalidEventType;
};

using NodeSpec = std::variant<PatternSpec, OrderFilterSpec, SpanFilterSpec>;

struct JqpNode {
  NodeSpec spec;
  /// Upstream node ids; channel i+1 delivers inputs[i]'s output.
  std::vector<int32_t> inputs;
  /// Debug label shown by plan printers.
  std::string label;
};

/// A jumbo query plan: the shared dataflow DAG executing a whole workload
/// (paper §III). Sinks name the user queries and the node whose output
/// answers each.
struct Jqp {
  std::vector<JqpNode> nodes;
  struct Sink {
    std::string query_name;
    int32_t node = -1;
  };
  std::vector<Sink> sinks;

  int32_t AddNode(JqpNode node);

  /// Structural checks: input ids in range and acyclic, filter nodes have
  /// exactly one input, pattern operand channels valid, negation only on
  /// terminal nodes, CONJ size cap, windows positive.
  Status Validate() const;

  /// Topological order over nodes (inputs before consumers).
  Result<std::vector<int32_t>> TopoOrder() const;

  /// Display name of node `idx`: its label, or "node<idx>" plus the
  /// operator kind when the builder left the label empty. Used by trace
  /// timeline rows and run reports.
  std::string NodeLabel(int32_t idx) const;

  /// Human-readable plan dump.
  std::string ToString(const EventTypeRegistry& registry) const;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_GRAPH_H_
