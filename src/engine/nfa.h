#ifndef MOTTO_ENGINE_NFA_H_
#define MOTTO_ENGINE_NFA_H_

#include <cstdint>
#include <vector>

#include "ccl/pattern.h"

namespace motto {

/// One transition of a pattern NFA: while a partial match sits in `from`,
/// an input event filling operand `operand` moves it to `to`.
struct NfaTransition {
  int32_t from = 0;
  int32_t to = 0;
  int32_t operand = 0;
  /// SEQ transitions require the new constituent to begin strictly after the
  /// previous operand's end (complete-history ordering, paper §II).
  bool requires_order = false;
};

/// The nondeterministic automaton compiled from one flat pattern operator.
///
/// - SEQ(n operands) compiles to a linear chain of n+1 states.
/// - CONJ compiles to the subset lattice over operands (2^n states): a state
///   is the bitmask of operands already matched, so arrival order is free.
/// - DISJ compiles to a two-state automaton accepting on any operand.
///
/// Window constraints and negation are enforced by the matcher on top of the
/// automaton (they are time guards, not state transitions).
struct Nfa {
  int32_t num_states = 0;
  int32_t start = 0;
  std::vector<bool> accepting;
  std::vector<NfaTransition> transitions;
  /// transitions_by_operand[k] lists indexes into `transitions` usable when
  /// operand k is filled.
  std::vector<std::vector<int32_t>> transitions_by_operand;
};

/// Maximum operand count for CONJ (subset construction is exponential).
inline constexpr int32_t kMaxConjOperands = 12;

/// Compiles the automaton for `op` over `num_operands` operands.
/// num_operands must be >= 1 (and <= kMaxConjOperands for CONJ).
Nfa BuildNfa(PatternOp op, int32_t num_operands);

}  // namespace motto

#endif  // MOTTO_ENGINE_NFA_H_
