#ifndef MOTTO_ENGINE_WORKER_POOL_H_
#define MOTTO_ENGINE_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace motto {

/// A fixed set of persistent worker threads parked on a condition variable.
///
/// Threads are spawned once in the constructor and live until destruction;
/// dispatching an epoch never creates a thread. Each epoch publishes one job
/// and bumps a generation counter; every worker runs `job(worker_id)` exactly
/// once per epoch and parks again. The caller can overlap its own share of
/// the work between Begin and Wait:
///
///     pool.Begin(job);        // wake workers on job(0..num_workers-1)
///     job(pool.num_workers());  // caller participates as the last worker
///     pool.Wait();            // block until every worker's call returned
///
/// Run(job) is the non-participating convenience form. The job must be
/// re-entrant across worker ids; the pool guarantees the epoch's job
/// publication happens-before any worker invokes it, and all worker returns
/// happen-before Wait() returns.
class WorkerPool {
 public:
  /// Spawns `num_workers` (>= 0) parked threads.
  explicit WorkerPool(int num_workers);

  /// Joins all workers. Must not be called with an epoch in flight.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Starts an epoch: every worker will run `job(worker_id)` once. The pool
  /// keeps its own copy of the job until the next Begin, so temporaries
  /// (e.g. a lambda converted at the call site) are safe. No-op with zero
  /// workers.
  void Begin(std::function<void(int)> job);

  /// Blocks until every worker finished the current epoch's job.
  void Wait();

  /// Begin + Wait, for callers that do not participate in the work.
  void Run(std::function<void(int)> job);

  int num_workers() const { return static_cast<int>(threads_.size()); }

  /// Total epochs dispatched since construction.
  uint64_t epochs() const;

 private:
  void WorkerMain(int id);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Workers park here between epochs.
  std::condition_variable done_cv_;  // Begin/Wait callers park here.
  /// The current epoch's job, owned by the pool. Written only in Begin
  /// (provably no worker is executing then); workers read it lock-free
  /// during the epoch.
  std::function<void(int)> job_;
  uint64_t generation_ = 0;
  int running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_WORKER_POOL_H_
