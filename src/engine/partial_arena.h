#ifndef MOTTO_ENGINE_PARTIAL_ARENA_H_
#define MOTTO_ENGINE_PARTIAL_ARENA_H_

#include <cstdint>
#include <vector>

#include "event/event.h"

namespace motto {

/// Pooled storage for the constituent history of NFA partial matches.
///
/// A partial match's history is an immutable parent-linked chain of chunks:
/// extending a partial appends one chunk holding only the new constituents
/// and links it to the previous tail, so extension is O(new constituents)
/// regardless of match length, and NFA nondeterminism (many extensions of
/// one partial) shares the common prefix instead of copying it.
///
/// Chunks are refcounted: `Extend` takes one reference on the parent, each
/// live partial owns one reference on its tail, and `Release` walks the
/// parent chain freeing chunks whose count reaches zero. Freed chunks keep
/// their slab range and are recycled through exact-capacity free lists — a
/// matcher sees a tiny set of distinct chunk sizes (one per operand
/// binding), so after warm-up the steady state performs no allocations.
///
/// `Materialize` is the only copy: it writes the full history (root chunk
/// first, i.e. arrival order) into a caller buffer, used exactly once per
/// emitted match.
///
/// Not thread-safe; each matcher owns one arena.
class PartialArena {
 public:
  /// Index of a chunk; the tail of a partial match's history chain.
  using NodeRef = int32_t;
  static constexpr NodeRef kNullRef = -1;

  /// Cumulative allocation behaviour, surfaced through NodeStats so the
  /// zero-allocation claim is observable per run.
  struct Stats {
    uint64_t chunk_allocs = 0;      ///< Chunks carved from fresh slab space.
    uint64_t chunk_reuses = 0;      ///< Chunks recycled from a free list.
    uint64_t live_high_water = 0;   ///< Max simultaneously-live chunks.
    uint64_t slab_high_water = 0;   ///< Max constituent slab cells in use.
  };

  /// Creates a chunk of `count` constituents copied from `parts`, linked
  /// under `parent` (kNullRef for a fresh match). The new chunk starts with
  /// one reference (the caller's); one reference is taken on `parent`.
  /// `parts` must not alias this arena's storage and `count` must be > 0.
  NodeRef Extend(NodeRef parent, const Constituent* parts, size_t count);

  void AddRef(NodeRef ref);

  /// Drops one reference from `ref`, recycling it — and transitively any
  /// exclusively-held ancestors — when the count reaches zero.
  void Release(NodeRef ref);

  /// Appends the full history of `ref` to `out`, root chunk first (the
  /// order constituents were appended by successive Extend calls).
  void Materialize(NodeRef ref, std::vector<Constituent>* out) const;

  /// Total constituents in the history chain ending at `ref`.
  size_t HistoryLength(NodeRef ref) const {
    return ref == kNullRef ? 0 : nodes_[static_cast<size_t>(ref)].total;
  }

  /// Currently-live (referenced) chunks.
  size_t live_chunks() const { return live_chunks_; }

  const Stats& stats() const { return stats_; }

  /// Drops every chunk (regardless of refcounts) but keeps slab capacity,
  /// so a matcher Reset replays allocation-free. Stats stay cumulative
  /// except the live count.
  void Reset();

 private:
  struct Node {
    NodeRef parent = kNullRef;
    int32_t refcount = 0;
    uint32_t first = 0;     ///< Offset of this chunk's range in slab_.
    uint32_t count = 0;     ///< Live constituents in the range.
    uint32_t capacity = 0;  ///< Range size; free-list bucket key.
    uint32_t total = 0;     ///< count + parent chain total (memoized).
  };

  std::vector<Node> nodes_;
  std::vector<Constituent> slab_;
  /// free_by_capacity_[c] lists freed chunks whose slab range holds exactly
  /// c constituents; reuse is exact-fit so ranges never fragment.
  std::vector<std::vector<NodeRef>> free_by_capacity_;
  size_t live_chunks_ = 0;
  Stats stats_;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_PARTIAL_ARENA_H_
