#ifndef MOTTO_ENGINE_PLAN_UTIL_H_
#define MOTTO_ENGINE_PLAN_UTIL_H_

#include <string>

#include "ccl/pattern.h"
#include "engine/graph.h"

namespace motto {

/// Canonical registry descriptor for the composite events a (pattern,
/// window) query emits, e.g. "{SEQ(E1, E2)}@10000000us". Plans that share a
/// sub-query agree on the descriptor and therefore on the type id.
std::string CompositeDescriptor(const FlatPattern& pattern, Duration window,
                                const EventTypeRegistry& registry);

/// Registers (or finds) the composite output type for (pattern, window).
EventTypeId RegisterOutputType(const FlatPattern& pattern, Duration window,
                               EventTypeRegistry* registry);

/// Builds the spec of a stand-alone pattern node: every operand reads the
/// raw stream, slots are operand positions. This is the paper's default
/// (unshared) execution of one flat query.
PatternSpec MakeRawPatternSpec(const FlatPattern& pattern, Duration window,
                               EventTypeRegistry* registry);

/// Appends an independent node evaluating `query` plus a sink named after
/// the query. Returns the node id.
int32_t AppendIndependentQuery(Jqp* jqp, const FlatQuery& query,
                               EventTypeRegistry* registry);

/// Builds the default jumbo query plan (paper Fig. 2): every query directly
/// connected to the source, no sharing.
Jqp BuildDefaultJqp(const std::vector<FlatQuery>& queries,
                    EventTypeRegistry* registry);

}  // namespace motto

#endif  // MOTTO_ENGINE_PLAN_UTIL_H_
