#include "engine/partial_arena.h"

#include <algorithm>

#include "common/check.h"

namespace motto {

PartialArena::NodeRef PartialArena::Extend(NodeRef parent,
                                           const Constituent* parts,
                                           size_t count) {
  MOTTO_DCHECK(count > 0) << "empty chunk";
  NodeRef ref;
  if (count < free_by_capacity_.size() && !free_by_capacity_[count].empty()) {
    ref = free_by_capacity_[count].back();
    free_by_capacity_[count].pop_back();
    Node& node = nodes_[static_cast<size_t>(ref)];
    node.count = static_cast<uint32_t>(count);
    std::copy(parts, parts + count,
              slab_.begin() + static_cast<ptrdiff_t>(node.first));
    ++stats_.chunk_reuses;
  } else {
    ref = static_cast<NodeRef>(nodes_.size());
    Node node;
    node.first = static_cast<uint32_t>(slab_.size());
    node.count = node.capacity = static_cast<uint32_t>(count);
    slab_.insert(slab_.end(), parts, parts + count);
    nodes_.push_back(node);
    ++stats_.chunk_allocs;
    stats_.slab_high_water =
        std::max<uint64_t>(stats_.slab_high_water, slab_.size());
  }
  Node& node = nodes_[static_cast<size_t>(ref)];
  node.parent = parent;
  node.refcount = 1;
  node.total = static_cast<uint32_t>(count) + (parent == kNullRef
                   ? 0u
                   : nodes_[static_cast<size_t>(parent)].total);
  if (parent != kNullRef) ++nodes_[static_cast<size_t>(parent)].refcount;
  ++live_chunks_;
  stats_.live_high_water =
      std::max<uint64_t>(stats_.live_high_water, live_chunks_);
  return ref;
}

void PartialArena::AddRef(NodeRef ref) {
  if (ref == kNullRef) return;
  ++nodes_[static_cast<size_t>(ref)].refcount;
}

void PartialArena::Release(NodeRef ref) {
  while (ref != kNullRef) {
    Node& node = nodes_[static_cast<size_t>(ref)];
    MOTTO_DCHECK(node.refcount > 0) << "release of freed chunk";
    if (--node.refcount > 0) return;
    if (node.capacity >= free_by_capacity_.size()) {
      free_by_capacity_.resize(static_cast<size_t>(node.capacity) + 1);
    }
    free_by_capacity_[node.capacity].push_back(ref);
    --live_chunks_;
    ref = node.parent;
  }
}

void PartialArena::Materialize(NodeRef ref,
                               std::vector<Constituent>* out) const {
  if (ref == kNullRef) return;
  size_t write_end =
      out->size() + nodes_[static_cast<size_t>(ref)].total;
  out->resize(write_end);
  while (ref != kNullRef) {
    const Node& node = nodes_[static_cast<size_t>(ref)];
    write_end -= node.count;
    std::copy(slab_.begin() + static_cast<ptrdiff_t>(node.first),
              slab_.begin() + static_cast<ptrdiff_t>(node.first + node.count),
              out->begin() + static_cast<ptrdiff_t>(write_end));
    ref = node.parent;
  }
}

void PartialArena::Reset() {
  // Recycle every still-referenced chunk (refcount 0 means it already sits
  // in a free list); slab ranges stay bound to their chunks, so a replay of
  // the same workload is served without fresh slab carving.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    if (node.refcount == 0) continue;
    node.refcount = 0;
    if (node.capacity >= free_by_capacity_.size()) {
      free_by_capacity_.resize(static_cast<size_t>(node.capacity) + 1);
    }
    free_by_capacity_[node.capacity].push_back(static_cast<NodeRef>(i));
  }
  live_chunks_ = 0;
}

}  // namespace motto
