#ifndef MOTTO_ENGINE_MATCHER_H_
#define MOTTO_ENGINE_MATCHER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "engine/nfa.h"
#include "engine/partial_arena.h"
#include "engine/runtime.h"
#include "obs/metrics.h"

namespace motto {

/// Operand cap for selectivity-ordered (lazy) matching: a lazy partial
/// carries fixed per-operand timestamp/arrival arrays so extension stays
/// allocation-free. Wider patterns silently fall back to arrival order
/// (CONJ is capped harder by kMaxConjOperands anyway).
inline constexpr int32_t kMaxLazyOperands = 16;

/// NFA-based pattern matcher for one SEQ/CONJ/DISJ operator with a window
/// constraint and optional window-scoped negation.
///
/// Partial matches are NFA runs bucketed by state. An arriving event that
/// fills operand k advances every run sitting at a state with a k-transition,
/// subject to the window guard (span <= window) and, for SEQ, the
/// complete-history order guard (previous operand end < new operand begin).
/// Runs reaching an accepting state emit a composite event; with negation the
/// emission is deferred until the window expires without a negated event
/// (paper §II: NEG evaluates at window expiration, any arrival order).
///
/// DISJ is pass-through: each event matching an operand is re-emitted
/// unchanged; downstream consumers see the type-filtered stream (see
/// DESIGN.md §3 on how this realizes the paper's DISJ and Filter_cd).
///
/// Hot-path memory discipline (DESIGN.md §8): constituent history lives in a
/// PartialArena as parent-linked refcounted chunks, so extending a run copies
/// only the new constituents and materializes the full history exactly once,
/// in Emit. Operand dispatch is a dense (channel, type) table instead of a
/// hash probe, and all per-event working sets (relabeled constituents, staged
/// runs, emission buffer) are member scratch reused across calls.
///
/// Selectivity-ordered ("lazy") mode (DESIGN.md §13): SetEvalMode(
/// kSelectivity) switches SEQ/CONJ to evaluate operands in the plan-chosen
/// order (PatternSpec::eval_order, rarest first). Partial matches then live
/// on a single chain over that order instead of the NFA's state space —
/// notably replacing CONJ's 2^n subset lattice — and a frequent event costs
/// one buffer append instead of a partial fan-out: non-anchor events are
/// parked in per-operand timestamp buffers and joined only when a partial
/// reaches their position. Emission, negation, window and SEQ-order
/// semantics are identical to arrival mode (the emitted composite sorts its
/// constituents by slot either way), so the two modes are differentially
/// interchangeable.
class PatternMatcher : public NodeRuntime {
 public:
  explicit PatternMatcher(const PatternSpec& spec);

  void OnWatermark(Timestamp watermark, std::vector<Event>* out) override;
  void OnEvent(Channel channel, const Event& event,
               std::vector<Event>* out) override;
  void Reset() override;
  void CollectStats(NodeStats* stats) const override;
  /// Registers the matcher's instruments (expiry-sweep duration histogram,
  /// live-partial and negation-buffer depth histograms, sweep counter)
  /// under `prefix`; nullptr detaches. Off by default: the hot path then
  /// pays a single pointer test at sweep cadence (every 64 watermarks) and
  /// nothing per event.
  void AttachProbe(obs::MetricsRegistry* registry,
                   const std::string& prefix) override;
  /// Switches between arrival-order (eager) and selectivity-ordered (lazy)
  /// evaluation. Must be called while the matcher holds no state (fresh, or
  /// right after Reset); the executors do so at the start of every run.
  /// kSelectivity is honored for SEQ/CONJ with 2..kMaxLazyOperands
  /// operands; DISJ and wider patterns keep the arrival path.
  void SetEvalMode(EvalOrderMode mode) override;
  /// Lifts every live partial, pending match, negation timestamp and lazy
  /// buffer out of the arena into `out` (DESIGN.md §14). The matcher keeps
  /// running; exporting is read-only apart from scratch reuse.
  void ExportState(NodeState* out) override;
  /// Resets, then rebuilds the state captured by ExportState on a matcher
  /// with the same operator shape. Fails (leaving the matcher empty) when
  /// the snapshot does not fit this spec — wrong operand count, NFA state
  /// out of range, or a different evaluation mode.
  bool ImportState(const NodeState& in) override;

  /// Live partial matches (diagnostics/tests), both modes.
  size_t PartialCount() const;
  /// Events parked in lazy-mode operand buffers (diagnostics/tests).
  size_t BufferedCount() const;

  /// Backing arena (diagnostics/tests).
  const PartialArena& arena() const { return arena_; }

 private:
  struct Partial {
    Timestamp min_begin = 0;
    Timestamp max_end = 0;
    Timestamp last_end = 0;  // End of the most recent constituent (SEQ guard).
    /// Tail chunk of the constituent history; the partial owns one arena
    /// reference on it.
    PartialArena::NodeRef tail = PartialArena::kNullRef;
  };

  struct PendingMatch {
    Timestamp min_begin = 0;
    Timestamp max_end = 0;
    PartialArena::NodeRef tail = PartialArena::kNullRef;
  };

  /// One lazy-mode run. A run in lazy bucket i has matched exactly the
  /// operands eval_order_[0..i-1]. Unlike the eager Partial, it keeps the
  /// bound (begin, end) per operand: the SEQ adjacency guards consult
  /// arbitrary already-matched sequence neighbors, not just the most recent
  /// constituent. op_arrival records which physical arrival filled each
  /// operand, blocking one event from filling two operands of one match
  /// when operand buffers overlap (duplicate types). Arrays are indexed by
  /// operand index; only matched entries are meaningful.
  struct LazyPartial {
    Timestamp min_begin = 0;
    Timestamp max_end = 0;
    PartialArena::NodeRef tail = PartialArena::kNullRef;
    Timestamp op_begin[kMaxLazyOperands] = {};
    Timestamp op_end[kMaxLazyOperands] = {};
    uint64_t op_arrival[kMaxLazyOperands] = {};
  };

  /// A frequent event parked in a lazy-mode operand buffer, awaiting a
  /// partial that reaches its evaluation position. Kept in arrival (= end
  /// timestamp) order; evicted once begin falls behind the window horizon.
  struct BufferedEvent {
    Timestamp begin = 0;
    Timestamp end = 0;
    uint64_t arrival = 0;
    Event event;
  };

  /// Relabels `event`'s constituents through the operand's slot map into
  /// `relabeled_scratch_` (cleared first).
  void RelabelInto(const Event& event, const OperandBinding& binding);

  /// Consumes `partial` (and its arena reference): emits immediately, defers
  /// to `pending_` (negation), or drops it (negated-history hit).
  void Complete(Partial&& partial, std::vector<Event>* out);
  /// Materializes `tail` into the emission scratch and appends the composite
  /// event; does not release the reference.
  void Emit(Timestamp min_begin, Timestamp max_end, PartialArena::NodeRef tail,
            std::vector<Event>* out);
  void SweepExpired();

  PatternSpec spec_;
  Nfa nfa_;

  /// Dense operand dispatch: dispatch_[channel * type_limit_ + type] names a
  /// slice of operand_index_pool_ listing the operand positions an event of
  /// that (channel, type) can fill. Out-of-range (channel, type) pairs —
  /// the common case on a busy raw stream — reject on two comparisons.
  struct DispatchEntry {
    uint32_t offset = 0;
    uint32_t count = 0;
  };
  std::vector<DispatchEntry> dispatch_;
  std::vector<int32_t> operand_index_pool_;
  int32_t channel_limit_ = 0;
  int32_t type_limit_ = 0;

  /// Lazy-mode event processing (dispatch entry already resolved).
  void OnEventLazy(const DispatchEntry& entry, const Event& event,
                   std::vector<Event>* out);
  /// Guards for binding an event with the given interval to the operand at
  /// lazy position `pos` of `p` (window, SEQ adjacency, arrival reuse);
  /// fills `*extended` — except its tail, which the caller must set — on
  /// success.
  bool TryExtendLazy(const LazyPartial& p, int32_t pos, Timestamp e_begin,
                     Timestamp e_end, uint64_t arrival,
                     LazyPartial* extended) const;
  /// Takes ownership of `partial` (a run whose matched prefix has length
  /// `state`): completes it, or joins it against the buffered events of the
  /// next operands in evaluation order (each join branches) and stages it.
  void CascadeLazy(LazyPartial&& partial, int32_t state,
                   std::vector<Event>* out);

  /// NEG'd (type, predicate) pairs; the bitmap gives a fast type-level
  /// reject before predicates run.
  struct NegatedEntry {
    EventTypeId type;
    Predicate predicate;
  };
  std::vector<NegatedEntry> negated_entries_;
  std::vector<bool> negated_lookup_;  // Indexed by type id (grown on demand).

  PartialArena arena_;
  std::vector<std::vector<Partial>> partials_by_state_;
  std::vector<PendingMatch> pending_;               // NEG-deferred matches.
  std::deque<Timestamp> negated_history_;           // Sorted negated-event ts.
  Timestamp watermark_ = 0;
  uint64_t sweep_tick_ = 0;

  /// Lazy-mode state (all empty in arrival mode). eval_order_ is the
  /// validated per-spec order (lazy position -> operand index; identity
  /// when the plan left PatternSpec::eval_order empty), lazy_pos_ its
  /// inverse. left_op_/right_op_ are the per-position nearest already-
  /// matched SEQ neighbors (operand index, -1 = none), static because the
  /// matched set at position i is always the prefix eval_order_[0..i-1].
  EvalOrderMode eval_mode_ = EvalOrderMode::kArrival;
  bool lazy_eligible_ = false;
  bool lazy_active_ = false;
  bool buffers_overlap_ = false;  // Two operands share a (channel, type).
  std::vector<int32_t> eval_order_;
  std::vector<int32_t> lazy_pos_;
  std::vector<int32_t> left_op_;
  std::vector<int32_t> right_op_;
  std::vector<std::deque<BufferedEvent>> buffers_;  // Per operand index.
  /// lazy_by_state_[i] holds runs with matched prefix length i (1..n-1;
  /// index 0 unused — the empty prefix is not materialized).
  std::vector<std::vector<LazyPartial>> lazy_by_state_;
  uint64_t arrival_seq_ = 0;

  /// Optional per-run instruments (AttachProbe); all-null when metrics are
  /// off. Sampled at sweep cadence so the per-event path stays untouched.
  obs::Histogram* sweep_seconds_hist_ = nullptr;
  obs::Histogram* live_partials_hist_ = nullptr;
  obs::Histogram* negation_depth_hist_ = nullptr;
  obs::Counter* sweep_counter_ = nullptr;

  // Per-call scratch, reused across OnEvent/Emit invocations.
  std::vector<Constituent> relabeled_scratch_;
  std::vector<std::pair<int32_t, Partial>> staged_scratch_;
  std::vector<Constituent> emit_scratch_;
  std::vector<std::pair<int32_t, LazyPartial>> lazy_staged_;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_MATCHER_H_
