#ifndef MOTTO_ENGINE_MATCHER_H_
#define MOTTO_ENGINE_MATCHER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "engine/nfa.h"
#include "engine/runtime.h"

namespace motto {

/// NFA-based pattern matcher for one SEQ/CONJ/DISJ operator with a window
/// constraint and optional window-scoped negation.
///
/// Partial matches are NFA runs bucketed by state. An arriving event that
/// fills operand k advances every run sitting at a state with a k-transition,
/// subject to the window guard (span <= window) and, for SEQ, the
/// complete-history order guard (previous operand end < new operand begin).
/// Runs reaching an accepting state emit a composite event; with negation the
/// emission is deferred until the window expires without a negated event
/// (paper §II: NEG evaluates at window expiration, any arrival order).
///
/// DISJ is pass-through: each event matching an operand is re-emitted
/// unchanged; downstream consumers see the type-filtered stream (see
/// DESIGN.md §3 on how this realizes the paper's DISJ and Filter_cd).
class PatternMatcher : public NodeRuntime {
 public:
  explicit PatternMatcher(const PatternSpec& spec);

  void OnWatermark(Timestamp watermark, std::vector<Event>* out) override;
  void OnEvent(Channel channel, const Event& event,
               std::vector<Event>* out) override;
  void Reset() override;

  /// Live partial matches (diagnostics/tests).
  size_t PartialCount() const;

 private:
  struct Partial {
    Timestamp min_begin = 0;
    Timestamp max_end = 0;
    Timestamp last_end = 0;  // End of the most recent constituent (SEQ guard).
    std::vector<Constituent> parts;
  };

  struct PendingMatch {
    Timestamp min_begin = 0;
    Timestamp max_end = 0;
    std::vector<Constituent> parts;
  };

  /// Relabels `event`'s constituents through the operand's slot map and
  /// appends them to `parts`.
  void AppendRelabeled(const Event& event, const OperandBinding& binding,
                       std::vector<Constituent>* parts) const;

  void Complete(Partial&& partial, std::vector<Event>* out);
  void Emit(Timestamp min_begin, Timestamp max_end,
            std::vector<Constituent> parts, std::vector<Event>* out) const;
  void SweepExpired();

  PatternSpec spec_;
  Nfa nfa_;
  /// For each operand index, matching is dispatched via (channel, type).
  struct OperandKey {
    Channel channel;
    EventTypeId type;
    friend bool operator==(const OperandKey& a, const OperandKey& b) {
      return a.channel == b.channel && a.type == b.type;
    }
  };
  struct OperandKeyHash {
    size_t operator()(const OperandKey& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.channel) << 32) ^
                                  static_cast<uint32_t>(k.type));
    }
  };
  std::unordered_map<OperandKey, std::vector<int32_t>, OperandKeyHash>
      operands_by_key_;
  /// NEG'd (type, predicate) pairs; the bitmap gives a fast type-level
  /// reject before predicates run.
  struct NegatedEntry {
    EventTypeId type;
    Predicate predicate;
  };
  std::vector<NegatedEntry> negated_entries_;
  std::vector<bool> negated_lookup_;  // Indexed by type id (grown on demand).

  std::vector<std::vector<Partial>> partials_by_state_;
  std::vector<PendingMatch> pending_;               // NEG-deferred matches.
  std::deque<Timestamp> negated_history_;           // Recent negated-event ts.
  Timestamp watermark_ = 0;
  uint64_t sweep_tick_ = 0;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_MATCHER_H_
