#ifndef MOTTO_ENGINE_MATCHER_H_
#define MOTTO_ENGINE_MATCHER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "engine/nfa.h"
#include "engine/partial_arena.h"
#include "engine/runtime.h"
#include "obs/metrics.h"

namespace motto {

/// NFA-based pattern matcher for one SEQ/CONJ/DISJ operator with a window
/// constraint and optional window-scoped negation.
///
/// Partial matches are NFA runs bucketed by state. An arriving event that
/// fills operand k advances every run sitting at a state with a k-transition,
/// subject to the window guard (span <= window) and, for SEQ, the
/// complete-history order guard (previous operand end < new operand begin).
/// Runs reaching an accepting state emit a composite event; with negation the
/// emission is deferred until the window expires without a negated event
/// (paper §II: NEG evaluates at window expiration, any arrival order).
///
/// DISJ is pass-through: each event matching an operand is re-emitted
/// unchanged; downstream consumers see the type-filtered stream (see
/// DESIGN.md §3 on how this realizes the paper's DISJ and Filter_cd).
///
/// Hot-path memory discipline (DESIGN.md §8): constituent history lives in a
/// PartialArena as parent-linked refcounted chunks, so extending a run copies
/// only the new constituents and materializes the full history exactly once,
/// in Emit. Operand dispatch is a dense (channel, type) table instead of a
/// hash probe, and all per-event working sets (relabeled constituents, staged
/// runs, emission buffer) are member scratch reused across calls.
class PatternMatcher : public NodeRuntime {
 public:
  explicit PatternMatcher(const PatternSpec& spec);

  void OnWatermark(Timestamp watermark, std::vector<Event>* out) override;
  void OnEvent(Channel channel, const Event& event,
               std::vector<Event>* out) override;
  void Reset() override;
  void CollectStats(NodeStats* stats) const override;
  /// Registers the matcher's instruments (expiry-sweep duration histogram,
  /// live-partial and negation-buffer depth histograms, sweep counter)
  /// under `prefix`; nullptr detaches. Off by default: the hot path then
  /// pays a single pointer test at sweep cadence (every 64 watermarks) and
  /// nothing per event.
  void AttachProbe(obs::MetricsRegistry* registry,
                   const std::string& prefix) override;

  /// Live partial matches (diagnostics/tests).
  size_t PartialCount() const;

  /// Backing arena (diagnostics/tests).
  const PartialArena& arena() const { return arena_; }

 private:
  struct Partial {
    Timestamp min_begin = 0;
    Timestamp max_end = 0;
    Timestamp last_end = 0;  // End of the most recent constituent (SEQ guard).
    /// Tail chunk of the constituent history; the partial owns one arena
    /// reference on it.
    PartialArena::NodeRef tail = PartialArena::kNullRef;
  };

  struct PendingMatch {
    Timestamp min_begin = 0;
    Timestamp max_end = 0;
    PartialArena::NodeRef tail = PartialArena::kNullRef;
  };

  /// Relabels `event`'s constituents through the operand's slot map into
  /// `relabeled_scratch_` (cleared first).
  void RelabelInto(const Event& event, const OperandBinding& binding);

  /// Consumes `partial` (and its arena reference): emits immediately, defers
  /// to `pending_` (negation), or drops it (negated-history hit).
  void Complete(Partial&& partial, std::vector<Event>* out);
  /// Materializes `tail` into the emission scratch and appends the composite
  /// event; does not release the reference.
  void Emit(Timestamp min_begin, Timestamp max_end, PartialArena::NodeRef tail,
            std::vector<Event>* out);
  void SweepExpired();

  PatternSpec spec_;
  Nfa nfa_;

  /// Dense operand dispatch: dispatch_[channel * type_limit_ + type] names a
  /// slice of operand_index_pool_ listing the operand positions an event of
  /// that (channel, type) can fill. Out-of-range (channel, type) pairs —
  /// the common case on a busy raw stream — reject on two comparisons.
  struct DispatchEntry {
    uint32_t offset = 0;
    uint32_t count = 0;
  };
  std::vector<DispatchEntry> dispatch_;
  std::vector<int32_t> operand_index_pool_;
  int32_t channel_limit_ = 0;
  int32_t type_limit_ = 0;

  /// NEG'd (type, predicate) pairs; the bitmap gives a fast type-level
  /// reject before predicates run.
  struct NegatedEntry {
    EventTypeId type;
    Predicate predicate;
  };
  std::vector<NegatedEntry> negated_entries_;
  std::vector<bool> negated_lookup_;  // Indexed by type id (grown on demand).

  PartialArena arena_;
  std::vector<std::vector<Partial>> partials_by_state_;
  std::vector<PendingMatch> pending_;               // NEG-deferred matches.
  std::deque<Timestamp> negated_history_;           // Sorted negated-event ts.
  Timestamp watermark_ = 0;
  uint64_t sweep_tick_ = 0;

  /// Optional per-run instruments (AttachProbe); all-null when metrics are
  /// off. Sampled at sweep cadence so the per-event path stays untouched.
  obs::Histogram* sweep_seconds_hist_ = nullptr;
  obs::Histogram* live_partials_hist_ = nullptr;
  obs::Histogram* negation_depth_hist_ = nullptr;
  obs::Counter* sweep_counter_ = nullptr;

  // Per-call scratch, reused across OnEvent/Emit invocations.
  std::vector<Constituent> relabeled_scratch_;
  std::vector<std::pair<int32_t, Partial>> staged_scratch_;
  std::vector<Constituent> emit_scratch_;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_MATCHER_H_
