#include "engine/graph.h"

#include <unordered_set>

#include "engine/nfa.h"

namespace motto {

int32_t Jqp::AddNode(JqpNode node) {
  nodes.push_back(std::move(node));
  return static_cast<int32_t>(nodes.size()) - 1;
}

Status Jqp::Validate() const {
  int32_t n = static_cast<int32_t>(nodes.size());
  std::vector<bool> has_consumer(static_cast<size_t>(n), false);
  for (int32_t i = 0; i < n; ++i) {
    const JqpNode& node = nodes[static_cast<size_t>(i)];
    for (int32_t input : node.inputs) {
      if (input < 0 || input >= n) {
        return InvalidArgumentError("node " + std::to_string(i) +
                                    " has out-of-range input");
      }
      if (input == i) {
        return InvalidArgumentError("node " + std::to_string(i) +
                                    " feeds itself");
      }
      has_consumer[static_cast<size_t>(input)] = true;
    }
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      if (pattern->operands.empty()) {
        return InvalidArgumentError("pattern node without operands");
      }
      if (pattern->window <= 0) {
        return InvalidArgumentError("pattern node with non-positive window");
      }
      if (pattern->op == PatternOp::kConj &&
          static_cast<int32_t>(pattern->operands.size()) > kMaxConjOperands) {
        return InvalidArgumentError("CONJ with too many operands");
      }
      if (pattern->op == PatternOp::kDisj && !pattern->negated.empty()) {
        return InvalidArgumentError("NEG must be used with SEQ or CONJ");
      }
      if (!pattern->negated_predicates.empty() &&
          pattern->negated_predicates.size() != pattern->negated.size()) {
        return InvalidArgumentError(
            "negated_predicates must parallel negated");
      }
      for (const OperandBinding& binding : pattern->operands) {
        if (binding.types.empty()) {
          return InvalidArgumentError("operand without accepted types");
        }
        for (EventTypeId t : binding.types) {
          if (t == kInvalidEventType) {
            return InvalidArgumentError("operand with invalid type");
          }
        }
        if (binding.channel < 0 ||
            binding.channel > static_cast<Channel>(node.inputs.size())) {
          return InvalidArgumentError("operand channel out of range");
        }
        if (binding.slot_map.empty()) {
          return InvalidArgumentError("operand without slot map");
        }
      }
      if (pattern->op != PatternOp::kDisj &&
          pattern->output_type == kInvalidEventType) {
        return InvalidArgumentError("pattern node without output type");
      }
      if (!pattern->eval_order.empty()) {
        if (pattern->eval_order.size() != pattern->operands.size()) {
          return InvalidArgumentError(
              "eval_order must cover every operand or be empty");
        }
        std::vector<bool> seen_operand(pattern->operands.size(), false);
        for (int32_t k : pattern->eval_order) {
          if (k < 0 ||
              k >= static_cast<int32_t>(pattern->operands.size()) ||
              seen_operand[static_cast<size_t>(k)]) {
            return InvalidArgumentError(
                "eval_order is not a permutation of the operand indexes");
          }
          seen_operand[static_cast<size_t>(k)] = true;
        }
      }
    } else if (const auto* order = std::get_if<OrderFilterSpec>(&node.spec)) {
      if (node.inputs.size() != 1) {
        return InvalidArgumentError("order filter needs exactly one input");
      }
      std::unordered_set<EventTypeId> seen;
      for (EventTypeId t : order->required_order) {
        if (!seen.insert(t).second) {
          return InvalidArgumentError(
              "order filter requires distinct event types");
        }
      }
      if (order->required_order.empty()) {
        return InvalidArgumentError("order filter without required order");
      }
      if (order->relabel && order->output_type == kInvalidEventType) {
        return InvalidArgumentError("relabeling order filter needs a type");
      }
    } else if (const auto* span = std::get_if<SpanFilterSpec>(&node.spec)) {
      if (node.inputs.size() != 1) {
        return InvalidArgumentError("span filter needs exactly one input");
      }
      if (span->max_span < 0) {
        return InvalidArgumentError("span filter with negative span");
      }
    }
  }
  // Negation is only allowed on terminal nodes: deferred emission would
  // otherwise deliver events behind the consumer's watermark.
  for (int32_t i = 0; i < n; ++i) {
    const auto* pattern = std::get_if<PatternSpec>(&nodes[static_cast<size_t>(i)].spec);
    if (pattern != nullptr && !pattern->negated.empty() &&
        has_consumer[static_cast<size_t>(i)]) {
      return InvalidArgumentError("node " + std::to_string(i) +
                                  " with NEG has downstream consumers");
    }
  }
  return TopoOrder().ok() ? Status::Ok()
                          : InvalidArgumentError("plan has a cycle");
}

Result<std::vector<int32_t>> Jqp::TopoOrder() const {
  int32_t n = static_cast<int32_t>(nodes.size());
  std::vector<int32_t> in_degree(static_cast<size_t>(n), 0);
  std::vector<std::vector<int32_t>> consumers(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t input : nodes[static_cast<size_t>(i)].inputs) {
      if (input < 0 || input >= n) {
        return InvalidArgumentError("input out of range");
      }
      ++in_degree[static_cast<size_t>(i)];
      consumers[static_cast<size_t>(input)].push_back(i);
    }
  }
  std::vector<int32_t> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<int32_t> ready;
  for (int32_t i = 0; i < n; ++i) {
    if (in_degree[static_cast<size_t>(i)] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    int32_t v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (int32_t c : consumers[static_cast<size_t>(v)]) {
      if (--in_degree[static_cast<size_t>(c)] == 0) ready.push_back(c);
    }
  }
  if (static_cast<int32_t>(order.size()) != n) {
    return InvalidArgumentError("plan has a cycle");
  }
  return order;
}

std::string Jqp::NodeLabel(int32_t idx) const {
  size_t ui = static_cast<size_t>(idx);
  if (ui >= nodes.size()) return "node" + std::to_string(idx);
  const JqpNode& node = nodes[ui];
  if (!node.label.empty()) return node.label;
  std::string kind;
  if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
    kind = std::string(PatternOpName(pattern->op));
  } else if (std::get_if<OrderFilterSpec>(&node.spec) != nullptr) {
    kind = "order-filter";
  } else {
    kind = "span-filter";
  }
  return "node" + std::to_string(idx) + ":" + kind;
}

std::string Jqp::ToString(const EventTypeRegistry& registry) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const JqpNode& node = nodes[i];
    out += "node " + std::to_string(i);
    if (!node.label.empty()) out += " [" + node.label + "]";
    out += ": ";
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      out += std::string(PatternOpName(pattern->op)) + "(";
      for (size_t k = 0; k < pattern->operands.size(); ++k) {
        if (k > 0) out += ", ";
        const OperandBinding& b = pattern->operands[k];
        for (size_t t = 0; t < b.types.size(); ++t) {
          if (t > 0) out += "/";
          out += registry.NameOf(b.types[t]);
        }
        if (!b.predicate.empty()) out += "[" + b.predicate.ToString() + "]";
        if (b.channel != kRawChannel) {
          out += "<-#" +
                 std::to_string(node.inputs[static_cast<size_t>(b.channel - 1)]);
        }
      }
      for (size_t k = 0; k < pattern->negated.size(); ++k) {
        out += ", NEG(" + registry.NameOf(pattern->negated[k]);
        if (k < pattern->negated_predicates.size() &&
            !pattern->negated_predicates[k].empty()) {
          out += "[" + pattern->negated_predicates[k].ToString() + "]";
        }
        out += ")";
      }
      out += ") window=" + std::to_string(pattern->window) + "us";
      if (!pattern->eval_order.empty()) {
        out += " eval-order=";
        for (size_t k = 0; k < pattern->eval_order.size(); ++k) {
          if (k > 0) out += ",";
          out += std::to_string(pattern->eval_order[k]);
        }
      }
    } else if (const auto* order = std::get_if<OrderFilterSpec>(&node.spec)) {
      out += "OrderFilter(";
      for (size_t k = 0; k < order->required_order.size(); ++k) {
        if (k > 0) out += " < ";
        out += registry.NameOf(order->required_order[k]);
      }
      out += ") <-#" + std::to_string(node.inputs[0]);
    } else if (const auto* span = std::get_if<SpanFilterSpec>(&node.spec)) {
      out += "SpanFilter(" + std::to_string(span->max_span) + "us) <-#" +
             std::to_string(node.inputs[0]);
    }
    out += "\n";
  }
  for (const Sink& sink : sinks) {
    out += "sink " + sink.query_name + " <- node " + std::to_string(sink.node) +
           "\n";
  }
  return out;
}

}  // namespace motto
