#include "engine/sharded_executor.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace motto {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr Timestamp kTsMin = std::numeric_limits<Timestamp>::min();
constexpr Timestamp kTsMax = std::numeric_limits<Timestamp>::max();

/// A sink's emission is deferred behind its negation window only for
/// non-DISJ pattern nodes with negated types: DISJ forwards operands
/// immediately and filters are stateless, so everything else emits at the
/// watermark that completes the match.
Duration SinkDeferredWindow(const JqpNode& node) {
  const auto* pattern = std::get_if<PatternSpec>(&node.spec);
  if (pattern == nullptr || pattern->negated.empty() ||
      pattern->op == PatternOp::kDisj) {
    return -1;
  }
  return pattern->window;
}

void MergeNodeStats(const NodeStats& from, NodeStats* into) {
  into->events_in += from.events_in;
  into->events_out += from.events_out;
  into->busy_seconds += from.busy_seconds;
  into->arena_chunk_allocs += from.arena_chunk_allocs;
  into->arena_chunk_reuses += from.arena_chunk_reuses;
  into->arena_live_high_water =
      std::max(into->arena_live_high_water, from.arena_live_high_water);
  into->arena_slab_high_water =
      std::max(into->arena_slab_high_water, from.arena_slab_high_water);
}

}  // namespace

ShardedExecutor::ShardedExecutor(Jqp jqp, PartitionPlan plan, int num_threads)
    : jqp_(std::move(jqp)), plan_(std::move(plan)), num_threads_(num_threads) {}

Result<ShardedExecutor> ShardedExecutor::Create(
    Jqp jqp, int num_shards, int num_threads,
    const std::vector<double>* node_weights) {
  if (num_shards < 1) {
    return InvalidArgumentError("num_shards must be >= 1, got " +
                                std::to_string(num_shards));
  }
  MOTTO_RETURN_IF_ERROR(jqp.Validate());
  PartitionPlan plan = PartitionPlan::Build(jqp, num_shards, node_weights);
  int threads = num_threads <= 0 ? static_cast<int>(plan.shards.size())
                                 : num_threads;
  threads = std::max(1, std::min(threads,
                                 std::max(1, static_cast<int>(
                                                 plan.shards.size()))));
  ShardedExecutor sharded(std::move(jqp), std::move(plan), threads);

  for (const ShardSpec& spec : sharded.plan_.shards) {
    // The shard's sub-plan: the union of its components' nodes, re-indexed.
    // Node ids stay ascending, so relative order (and with it the replica's
    // round structure) matches the full plan's.
    std::vector<int32_t> global_nodes;
    for (int32_t c : spec.components) {
      const PartitionComponent& comp =
          sharded.plan_.components[static_cast<size_t>(c)];
      global_nodes.insert(global_nodes.end(), comp.nodes.begin(),
                          comp.nodes.end());
    }
    std::sort(global_nodes.begin(), global_nodes.end());
    std::vector<int32_t> local_of(sharded.jqp_.nodes.size(), -1);
    Jqp sub;
    for (size_t li = 0; li < global_nodes.size(); ++li) {
      int32_t gi = global_nodes[li];
      local_of[static_cast<size_t>(gi)] = static_cast<int32_t>(li);
      JqpNode node = sharded.jqp_.nodes[static_cast<size_t>(gi)];
      for (int32_t& input : node.inputs) {
        input = local_of[static_cast<size_t>(input)];
      }
      sub.nodes.push_back(std::move(node));
    }
    std::vector<Duration> sink_deferred;
    for (int32_t c : spec.components) {
      const PartitionComponent& comp =
          sharded.plan_.components[static_cast<size_t>(c)];
      for (int32_t s : comp.sinks) {
        const Jqp::Sink& sink = sharded.jqp_.sinks[static_cast<size_t>(s)];
        sub.sinks.push_back(Jqp::Sink{
            sink.query_name, local_of[static_cast<size_t>(sink.node)]});
        sink_deferred.push_back(SinkDeferredWindow(
            sharded.jqp_.nodes[static_cast<size_t>(sink.node)]));
      }
    }
    MOTTO_ASSIGN_OR_RETURN(Executor replica, Executor::Create(std::move(sub)));
    Shard shard{std::move(replica)};
    shard.sink_deferred = std::move(sink_deferred);
    shard.group = spec.group;
    shard.time_slices = spec.time_slices;
    shard.slice_index = spec.slice_index;
    shard.horizon = spec.horizon;
    shard.global_nodes = std::move(global_nodes);
    sharded.shards_.push_back(std::move(shard));
  }

  if (threads > 1) {
    sharded.pool_ = std::make_unique<WorkerPool>(threads - 1);
  }
  return sharded;
}

void ShardedExecutor::RunShard(Shard* shard, const ExecutorOptions& options) {
  if (shard->count == 0 && shard->slice_index + 1 < shard->time_slices) {
    // Empty non-final slice: owns an empty timestamp interval, nothing to
    // do. (An empty *final* slice still replays its warm-up context: the
    // final flush may owe it deferred-negation matches keyed past the last
    // owned event.)
    shard->result = RunResult{};
    shard->busy_seconds = 0.0;
    return;
  }
  obs::TraceSink* trace = options.trace;
  double span_start = trace != nullptr ? trace->NowMicros() : 0.0;
  Clock::time_point start = Clock::now();
  ExecutorOptions inner;
  inner.collect_node_timing = options.collect_node_timing;
  inner.count_matches_only = options.count_matches_only;
  inner.eval_order = options.eval_order;
  // Metrics and trace stay off inside the replica: its node ids are local
  // to the sub-plan and would collide across shards. The merged result is
  // exported once, with global ids, by Run().
  inner.sink_ranges = shard->use_ranges ? &shard->ranges : nullptr;
  shard->result = shard->executor.RunSpan(shard->data, shard->count, inner);
  shard->busy_seconds = SecondsSince(start);
  if (trace != nullptr) {
    double span_end = trace->NowMicros();
    trace->Span("shard", "shard",
                static_cast<int64_t>(shard - shards_.data()), span_start,
                span_end - span_start);
  }
}

Result<RunResult> ShardedExecutor::Run(const EventStream& stream,
                                       const ExecutorOptions& options) {
  MOTTO_RETURN_IF_ERROR(ValidateStream(stream));
  Clock::time_point run_start = Clock::now();
  size_t stream_size = stream.size();

  // Slice the time axis per replicated group: cuts at equal event counts,
  // nudged forward so tied timestamps never straddle a boundary (ownership
  // intervals are in timestamp space; a split tie would leave a negated
  // event outside the slice that needs it for a kill).
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    shard.use_ranges = shard.time_slices > 1;
    if (!shard.use_ranges) {
      shard.data = stream.data();
      shard.count = stream_size;
      shard.owned_events = stream_size;
      shard.context_events = 0;
      continue;
    }
    size_t n = static_cast<size_t>(shard.time_slices);
    size_t k = static_cast<size_t>(shard.slice_index);
    auto cut = [&](size_t j) -> size_t {
      if (j == 0) return 0;
      if (j >= n) return stream_size;
      size_t c = stream_size * j / n;
      while (c > 0 && c < stream_size &&
             stream[c].begin() == stream[c - 1].begin()) {
        ++c;
      }
      return c;
    };
    size_t lo_owned = cut(k);
    size_t hi = cut(k + 1);
    if (hi < lo_owned) hi = lo_owned;  // Ties swallowed the whole slice.
    Timestamp prev_last = lo_owned > 0 ? stream[lo_owned - 1].begin() : kTsMin;
    bool final_slice = k + 1 == n;
    Timestamp own_last =
        final_slice ? kTsMax
                    : (hi > lo_owned ? stream[hi - 1].begin() : prev_last);
    size_t lo = lo_owned;
    if (lo_owned > 0) {
      Timestamp ctx_from = prev_last;
      if (ctx_from > kTsMin + shard.horizon) {
        ctx_from -= shard.horizon;
      } else {
        ctx_from = kTsMin;
      }
      lo = static_cast<size_t>(
          std::lower_bound(stream.begin(),
                           stream.begin() + static_cast<ptrdiff_t>(lo_owned),
                           ctx_from,
                           [](const Event& e, Timestamp t) {
                             return e.begin() < t;
                           }) -
          stream.begin());
    }
    shard.data = stream.data() + lo;
    shard.count = hi - lo;
    shard.owned_events = hi - lo_owned;
    shard.context_events = lo_owned - lo;
    shard.ranges.assign(shard.sink_deferred.size(), SinkEmitRange{});
    for (size_t i = 0; i < shard.ranges.size(); ++i) {
      shard.ranges[i].min_exclusive = prev_last;
      shard.ranges[i].max_inclusive = own_last;
      shard.ranges[i].deferred_window = shard.sink_deferred[i];
    }
    if (own_last <= prev_last && !final_slice) shard.count = 0;
  }

  obs::TraceSink* trace = options.trace;
  if (trace != nullptr) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      const Shard& shard = shards_[s];
      std::string name = "shard";
      name += std::to_string(s);
      name += " g";
      name += std::to_string(shard.group);
      if (shard.time_slices > 1) {
        name += " ";
        name += std::to_string(shard.slice_index + 1);
        name += "/";
        name += std::to_string(shard.time_slices);
      }
      trace->NameThread(static_cast<int64_t>(s), name);
    }
  }

  int threads = std::min(num_threads_, static_cast<int>(shards_.size()));
  if (pool_ != nullptr && threads > 1) {
    auto job = [&](int worker) {
      for (size_t s = static_cast<size_t>(worker); s < shards_.size();
           s += static_cast<size_t>(threads)) {
        RunShard(&shards_[s], options);
      }
    };
    pool_->Begin(job);
    job(pool_->num_workers());
    pool_->Wait();
  } else {
    for (Shard& shard : shards_) RunShard(&shard, options);
  }

  // Deterministic merge: shards in plan order (slices of a group are
  // contiguous and in stream order; groups own disjoint sinks), sink events
  // concatenated, node stats re-mapped to global ids.
  RunResult merged;
  merged.raw_events = stream_size;
  merged.node_stats.assign(jqp_.nodes.size(), NodeStats{});
  for (const Jqp::Sink& sink : jqp_.sinks) {
    if (!options.count_matches_only) {
      merged.sink_events.emplace(sink.query_name, std::vector<Event>{});
    }
    merged.sink_counts.emplace(sink.query_name, 0);
  }
  ShardedRunStats& sharded = merged.sharded;
  sharded.shards = static_cast<int>(shards_.size());
  sharded.threads = threads;
  sharded.groups = plan_.groups;
  double busy_total = 0.0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    RunResult& part = shard.result;
    for (size_t li = 0; li < shard.global_nodes.size(); ++li) {
      if (li >= part.node_stats.size()) break;
      MergeNodeStats(part.node_stats[li],
                     &merged.node_stats[static_cast<size_t>(
                         shard.global_nodes[li])]);
    }
    for (auto& [name, count] : part.sink_counts) {
      merged.sink_counts[name] += count;
    }
    if (!options.count_matches_only) {
      for (auto& [name, events] : part.sink_events) {
        auto& collected = merged.sink_events[name];
        collected.insert(collected.end(),
                         std::make_move_iterator(events.begin()),
                         std::make_move_iterator(events.end()));
      }
    }
    ShardRunStats row;
    row.shard = static_cast<int>(s);
    row.group = shard.group;
    row.time_slices = shard.time_slices;
    row.slice_index = shard.slice_index;
    row.owned_events = shard.owned_events;
    row.context_events = shard.context_events;
    row.matches = part.TotalMatches();
    row.busy_seconds = shard.busy_seconds;
    busy_total += shard.busy_seconds;
    sharded.max_busy_seconds =
        std::max(sharded.max_busy_seconds, shard.busy_seconds);
    sharded.per_shard.push_back(row);
    part = RunResult{};  // Release per-shard buffers promptly.
  }
  if (!shards_.empty()) {
    sharded.mean_busy_seconds = busy_total / static_cast<double>(
                                                 shards_.size());
  }
  if (sharded.mean_busy_seconds > 0.0) {
    sharded.skew = sharded.max_busy_seconds / sharded.mean_busy_seconds;
  }
  merged.elapsed_seconds = SecondsSince(run_start);
  if (options.trace != nullptr) {
    // Shards share one sink, so overwrite (never add) to avoid
    // double-counting drops already folded into per-shard results.
    merged.trace_dropped_spans = options.trace->dropped_events();
  }
  ExportRunMetrics(merged, options.metrics);
  return merged;
}

}  // namespace motto
