#include "engine/nfa.h"

#include "common/check.h"

namespace motto {

namespace {

void IndexTransitions(Nfa* nfa, int32_t num_operands) {
  nfa->transitions_by_operand.assign(static_cast<size_t>(num_operands), {});
  for (size_t i = 0; i < nfa->transitions.size(); ++i) {
    const NfaTransition& t = nfa->transitions[i];
    nfa->transitions_by_operand[static_cast<size_t>(t.operand)].push_back(
        static_cast<int32_t>(i));
  }
}

Nfa BuildSeq(int32_t n) {
  Nfa nfa;
  nfa.num_states = n + 1;
  nfa.start = 0;
  nfa.accepting.assign(static_cast<size_t>(n + 1), false);
  nfa.accepting[static_cast<size_t>(n)] = true;
  for (int32_t i = 0; i < n; ++i) {
    nfa.transitions.push_back(NfaTransition{i, i + 1, i, true});
  }
  IndexTransitions(&nfa, n);
  return nfa;
}

Nfa BuildConj(int32_t n) {
  MOTTO_CHECK_LE(n, kMaxConjOperands)
      << "CONJ subset construction capped at " << kMaxConjOperands
      << " operands";
  Nfa nfa;
  int32_t full = (1 << n) - 1;
  nfa.num_states = full + 1;
  nfa.start = 0;
  nfa.accepting.assign(static_cast<size_t>(full + 1), false);
  nfa.accepting[static_cast<size_t>(full)] = true;
  for (int32_t mask = 0; mask <= full; ++mask) {
    for (int32_t k = 0; k < n; ++k) {
      if (mask & (1 << k)) continue;
      nfa.transitions.push_back(NfaTransition{mask, mask | (1 << k), k, false});
    }
  }
  IndexTransitions(&nfa, n);
  return nfa;
}

Nfa BuildDisj(int32_t n) {
  Nfa nfa;
  nfa.num_states = 2;
  nfa.start = 0;
  nfa.accepting = {false, true};
  for (int32_t k = 0; k < n; ++k) {
    nfa.transitions.push_back(NfaTransition{0, 1, k, false});
  }
  IndexTransitions(&nfa, n);
  return nfa;
}

}  // namespace

Nfa BuildNfa(PatternOp op, int32_t num_operands) {
  MOTTO_CHECK_GE(num_operands, 1);
  switch (op) {
    case PatternOp::kSeq:
      return BuildSeq(num_operands);
    case PatternOp::kConj:
      return BuildConj(num_operands);
    case PatternOp::kDisj:
      return BuildDisj(num_operands);
  }
  MOTTO_CHECK(false) << "unreachable";
  return Nfa{};
}

}  // namespace motto
