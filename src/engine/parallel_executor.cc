#include "engine/parallel_executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace motto {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Timestamp kFinalWatermark =
    std::numeric_limits<Timestamp>::max() / 4;

/// Round index of the final-flush pseudo-round (sorts after every real
/// round). Real rounds are stream positions, exactly as in the
/// single-threaded executor's per-event loop.
constexpr int64_t kFinalRound = std::numeric_limits<int64_t>::max();

/// One input item for a node within a batch: the event plus the *round*
/// (stream position of the driving raw event) in which the single-threaded
/// executor would have delivered it. Grouping by round — not by timestamp —
/// matters twice over: streams may carry tied timestamps (each raw event
/// still gets its own round), and node runtimes see exactly one
/// OnWatermark call per active round, which stateful runtimes observe
/// (e.g. the matcher's periodic expiry sweep counts watermark calls).
/// channel_rank orders items within a round the same way the
/// single-threaded executor does (raw first, then upstream channels).
struct BatchItem {
  int64_t round;
  int32_t channel_rank;
  Channel channel;
  const Event* event;
};

}  // namespace

/// All mutable per-run state of the pipelined scheduler. Fields split into
/// two planes:
///   * scheduler plane — guarded by `mu` (ready queue, per-node batch
///     cursors, slot refcount decrements, counters);
///   * data plane — touched only by the single worker owning a node's
///     current activation (rings' contents, scratch, per-worker stats).
/// The completion lock acquisition orders every data-plane write before any
/// other worker can observe the node's advanced batch cursor.
struct ParallelExecutor::Pipeline {
  struct NodeState {
    // Scheduler plane.
    int64_t next_batch = 0;  ///< Next batch this node will process.
    int64_t released = 0;    ///< Output batches fully consumed downstream.
    bool queued = false;     ///< In the ready queue or currently running.
    int last_worker = -1;
    // Data plane.
    /// Output ring: slot b % pipe_depth holds the node's emissions for
    /// batch b while any consumer still needs them.
    std::vector<std::vector<Event>> ring;
    /// Round boundaries per ring slot: (round, end offset) pairs so
    /// consumers can attribute each emitted event to the round that
    /// produced it. Events [prev end, end) belong to `round`.
    std::vector<std::vector<std::pair<int64_t, size_t>>> ring_rounds;
    /// Per slot: consumer reads outstanding before the slot frees.
    std::vector<int> slot_refs;
    std::vector<Event> out;        ///< Activation output scratch.
    std::vector<std::pair<int64_t, size_t>> out_rounds;  ///< Scratch.
    std::vector<BatchItem> items;  ///< Input-merge scratch.
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int32_t> ready;
  std::vector<NodeState> nodes;
  /// worker_stats[worker][node]: per-worker accumulation merged at run end,
  /// so activations never contend on shared counters.
  std::vector<std::vector<NodeStats>> worker_stats;
  int64_t num_batches = 0;
  int64_t remaining = 0;  ///< Node activations left in this run.
  int in_flight = 0;      ///< Activations currently executing.
  int waiting = 0;        ///< Workers parked on `cv` right now; completion
                          ///< paths skip the notify syscall when zero.
  uint64_t parks = 0;
  uint64_t handoffs = 0;
  uint64_t activations = 0;
  uint64_t max_ready_depth = 0;
  uint64_t max_pipe_depth = 0;
  uint64_t backpressure_stalls = 0;
  /// Highest batch any worker has started; gates one batch-start trace
  /// instant per batch (scheduler plane, guarded by mu).
  int64_t max_started_batch = -1;
  /// Per-worker metric shards (only allocated when the run's options carry
  /// a registry); merged into the caller's registry at run end so workers
  /// never contend on shared instruments.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> worker_shards;
};

ParallelExecutor::ParallelExecutor(Jqp jqp, int num_threads, size_t batch_size,
                                   size_t pipe_depth)
    : jqp_(std::move(jqp)),
      num_threads_(num_threads),
      batch_size_(batch_size),
      pipe_depth_(pipe_depth) {}

ParallelExecutor::ParallelExecutor(ParallelExecutor&&) = default;
ParallelExecutor& ParallelExecutor::operator=(ParallelExecutor&&) = default;
ParallelExecutor::~ParallelExecutor() = default;

Result<ParallelExecutor> ParallelExecutor::Create(Jqp jqp, int num_threads,
                                                  size_t batch_size,
                                                  size_t pipe_depth) {
  if (num_threads < 1) {
    return InvalidArgumentError("num_threads must be >= 1");
  }
  if (batch_size < 1) {
    return InvalidArgumentError("batch_size must be >= 1");
  }
  if (pipe_depth < 1) {
    return InvalidArgumentError("pipe_depth must be >= 1");
  }
  MOTTO_RETURN_IF_ERROR(jqp.Validate());
  ParallelExecutor executor(std::move(jqp), num_threads, batch_size,
                            pipe_depth);
  size_t n = executor.jqp_.nodes.size();
  executor.raw_types_.assign(n, {});
  executor.consumers_.assign(n, {});
  executor.node_sinks_.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    const JqpNode& node = executor.jqp_.nodes[i];
    executor.runtimes_.push_back(MakeNodeRuntime(node.spec));
    for (int32_t input : node.inputs) {
      executor.consumers_[static_cast<size_t>(input)].push_back(
          static_cast<int32_t>(i));
    }
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      auto mark = [&](EventTypeId t) {
        std::vector<bool>& types = executor.raw_types_[i];
        if (static_cast<size_t>(t) >= types.size()) {
          types.resize(static_cast<size_t>(t) + 1, false);
        }
        types[static_cast<size_t>(t)] = true;
      };
      for (const OperandBinding& binding : pattern->operands) {
        if (binding.channel == kRawChannel) {
          for (EventTypeId t : binding.types) mark(t);
        }
      }
      for (EventTypeId t : pattern->negated) mark(t);
    }
  }
  std::vector<int> sink_refs(n, 0);
  for (size_t s = 0; s < executor.jqp_.sinks.size(); ++s) {
    size_t node = static_cast<size_t>(executor.jqp_.sinks[s].node);
    executor.node_sinks_[node].push_back(s);
    ++sink_refs[node];
  }
  executor.movable_sink_.assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    executor.movable_sink_[i] =
        sink_refs[i] == 1 && executor.consumers_[i].empty();
  }
  if (num_threads > 1) {
    executor.pool_ = std::make_unique<WorkerPool>(num_threads - 1);
  }
  executor.pipeline_ = std::make_unique<Pipeline>();
  return executor;
}

bool ParallelExecutor::NodeReady(const Pipeline& p, int32_t idx) const {
  size_t ui = static_cast<size_t>(idx);
  const Pipeline::NodeState& s = p.nodes[ui];
  if (s.queued || s.next_batch >= p.num_batches) return false;
  // Backpressure: a producer may run at most pipe_depth batches ahead of
  // its slowest consumer (terminal nodes buffer nothing).
  if (!consumers_[ui].empty() &&
      s.next_batch - s.released >= static_cast<int64_t>(pipe_depth_)) {
    return false;
  }
  for (int32_t input : jqp_.nodes[ui].inputs) {
    if (p.nodes[static_cast<size_t>(input)].next_batch <= s.next_batch) {
      return false;
    }
  }
  return true;
}

bool ParallelExecutor::BackpressureOnly(const Pipeline& p, int32_t idx) const {
  size_t ui = static_cast<size_t>(idx);
  const Pipeline::NodeState& s = p.nodes[ui];
  if (s.queued || s.next_batch >= p.num_batches) return false;
  if (consumers_[ui].empty() ||
      s.next_batch - s.released < static_cast<int64_t>(pipe_depth_)) {
    return false;
  }
  for (int32_t input : jqp_.nodes[ui].inputs) {
    if (p.nodes[static_cast<size_t>(input)].next_batch <= s.next_batch) {
      return false;
    }
  }
  return true;
}

void ParallelExecutor::ProcessActivation(Pipeline& p,
                                         const EventStream& stream,
                                         const ExecutorOptions& options,
                                         RunResult* result, int32_t idx,
                                         int64_t batch, int worker_id) {
  size_t ui = static_cast<size_t>(idx);
  Pipeline::NodeState& s = p.nodes[ui];
  NodeRuntime& runtime = *runtimes_[ui];
  const JqpNode& node = jqp_.nodes[ui];
  NodeStats& stats = p.worker_stats[static_cast<size_t>(worker_id)][ui];
  bool final_flush = batch == p.num_batches - 1;
  size_t lo = std::min(stream.size(),
                       static_cast<size_t>(batch) * batch_size_);
  size_t hi = std::min(stream.size(), lo + batch_size_);

  std::vector<Event>& out = s.out;
  out.clear();
  std::vector<std::pair<int64_t, size_t>>& out_rounds = s.out_rounds;
  out_rounds.clear();
  bool track_rounds = !consumers_[ui].empty();
  // When tracing, the span's begin/end double as the busy-time clock reads
  // so the traced and untraced timing paths cost the same.
  obs::TraceSink* trace = options.trace;
  double span_start = 0.0;
  Clock::time_point node_start;
  if (trace != nullptr) {
    span_start = trace->NowMicros();
  } else if (options.collect_node_timing) {
    node_start = Clock::now();
  }

  std::vector<BatchItem>& items = s.items;
  items.clear();
  int sources = 0;  // Distinct contributing channels; one channel's items
                    // are already in round order, so merging is only needed
                    // when two or more interleave.
  const std::vector<bool>& raw_set = raw_types_[ui];
  if (!raw_set.empty()) {
    for (const Event* e = stream.data() + lo; e != stream.data() + hi; ++e) {
      size_t type = static_cast<size_t>(e->type());
      if (type < raw_set.size() && raw_set[type]) {
        items.push_back(BatchItem{e - stream.data(), 0, kRawChannel, e});
      }
    }
    if (!items.empty()) ++sources;
  }
  for (size_t c = 0; c < node.inputs.size(); ++c) {
    const Pipeline::NodeState& upstream =
        p.nodes[static_cast<size_t>(node.inputs[c])];
    size_t slot = static_cast<size_t>(batch) % pipe_depth_;
    const std::vector<Event>& produced = upstream.ring[slot];
    size_t begin = 0;
    for (const auto& [round, end] : upstream.ring_rounds[slot]) {
      for (size_t i = begin; i < end; ++i) {
        items.push_back(BatchItem{round, static_cast<int32_t>(c) + 1,
                                  static_cast<Channel>(c + 1), &produced[i]});
      }
      begin = end;
    }
    if (begin > 0) ++sources;
  }
  if (sources > 1) {
    std::stable_sort(items.begin(), items.end(),
                     [](const BatchItem& a, const BatchItem& b) {
                       if (a.round != b.round) return a.round < b.round;
                       return a.channel_rank < b.channel_rank;
                     });
  }
  // Replay the single-threaded executor's round structure: one OnWatermark
  // per round this node is active in, then that round's events (raw first,
  // then upstream channels in input order).
  int64_t current_round = -1;
  auto close_round = [&] {
    if (track_rounds && current_round >= 0 &&
        out.size() > (out_rounds.empty() ? 0 : out_rounds.back().second)) {
      out_rounds.emplace_back(current_round, out.size());
    }
  };
  for (const BatchItem& item : items) {
    if (item.round != current_round) {
      close_round();
      current_round = item.round;
      runtime.OnWatermark(
          item.round == kFinalRound
              ? kFinalWatermark
              : stream[static_cast<size_t>(item.round)].begin(),
          &out);
    }
    runtime.OnEvent(item.channel, *item.event, &out);
  }
  stats.events_in += items.size();
  if (final_flush && current_round != kFinalRound) {
    close_round();
    current_round = kFinalRound;
    runtime.OnWatermark(kFinalWatermark, &out);
  }
  close_round();
  if (trace != nullptr) {
    double span_end = trace->NowMicros();
    trace->Span("batch", "node", static_cast<int64_t>(ui), span_start,
                span_end - span_start,
                "{\"batch\":" + std::to_string(batch) +
                    ",\"events_in\":" + std::to_string(items.size()) +
                    ",\"events_out\":" + std::to_string(out.size()) + "}");
    stats.busy_seconds += (span_end - span_start) * 1e-6;
  } else if (options.collect_node_timing) {
    stats.busy_seconds +=
        std::chrono::duration<double>(Clock::now() - node_start).count();
  }
  stats.events_out += out.size();
  if (!p.worker_shards.empty()) {
    // Each worker records into its own shard (merged at run end), so no
    // instrument is ever written from two threads.
    obs::MetricsRegistry& shard =
        *p.worker_shards[static_cast<size_t>(worker_id)];
    shard.GetHistogram("sched.activation_events", obs::SizeBounds())
        ->Record(static_cast<double>(items.size()));
    shard.GetCounter("worker." + std::to_string(worker_id) + ".activations")
        ->Add();
  }

  // Sink accumulation: this node's activations run in batch order, one
  // worker at a time, so per-sink appends need no lock and the emission
  // order matches the single-threaded executor. The sink maps were fully
  // populated before workers started (no rehash can occur).
  if (!out.empty()) {
    for (size_t sink_idx : node_sinks_[ui]) {
      const Jqp::Sink& sink = jqp_.sinks[sink_idx];
      result->sink_counts.at(sink.query_name) += out.size();
      if (!options.count_matches_only) {
        auto& collected = result->sink_events.at(sink.query_name);
        if (movable_sink_[ui]) {
          collected.insert(collected.end(),
                           std::make_move_iterator(out.begin()),
                           std::make_move_iterator(out.end()));
        } else {
          collected.insert(collected.end(), out.begin(), out.end());
        }
      }
    }
  }

  // Publish to consumers: swap into the ring slot (the displaced vector's
  // stale events die at the next activation's out.clear()).
  if (track_rounds) {
    size_t slot = static_cast<size_t>(batch) % pipe_depth_;
    std::vector<Event>& slot_events = s.ring[slot];
    slot_events.clear();
    std::swap(slot_events, out);
    s.ring_rounds[slot].clear();
    std::swap(s.ring_rounds[slot], out_rounds);
    s.slot_refs[slot] = static_cast<int>(consumers_[ui].size());
  }
}

void ParallelExecutor::WorkerLoop(Pipeline& p, const EventStream& stream,
                                  const ExecutorOptions& options,
                                  RunResult* result, int worker_id) {
  obs::TraceSink* trace = options.trace;
  // Stall attribution runs extra ready-checks per completion; only pay for
  // it when someone is looking.
  const bool observe = trace != nullptr || options.metrics != nullptr;
  const int64_t sched_tid = static_cast<int64_t>(jqp_.nodes.size());
  std::unique_lock<std::mutex> lock(p.mu);
  while (true) {
    while (p.ready.empty() && p.remaining > 0) {
      // A DAG with pipe_depth >= 1 cannot stall: some unfinished node is
      // always runnable or running (induction from the sinks, which are
      // never backpressured). Check instead of hanging if that breaks.
      MOTTO_CHECK(p.in_flight > 0)
          << "pipeline stalled with " << p.remaining << " activations left";
      ++p.parks;
      ++p.waiting;
      p.cv.wait(lock);
      --p.waiting;
    }
    if (p.remaining == 0) break;
    int32_t idx = p.ready.front();
    p.ready.pop_front();
    Pipeline::NodeState& s = p.nodes[static_cast<size_t>(idx)];
    int64_t batch = s.next_batch;
    if (s.last_worker >= 0 && s.last_worker != worker_id) ++p.handoffs;
    s.last_worker = worker_id;
    ++p.in_flight;
    if (trace != nullptr && batch > p.max_started_batch) {
      p.max_started_batch = batch;
      trace->Instant("batch_start", sched_tid, trace->NowMicros(),
                     "{\"batch\":" + std::to_string(batch) + "}");
    }
    lock.unlock();

    ProcessActivation(p, stream, options, result, idx, batch, worker_id);

    lock.lock();
    ++p.activations;
    --p.in_flight;
    s.next_batch = batch + 1;
    s.queued = false;
    if (--p.remaining == 0) {
      // Wake parked workers so they observe completion.
      if (p.waiting > 0) p.cv.notify_all();
      break;
    }
    int wakeups = 0;
    auto try_enqueue = [&](int32_t candidate) {
      if (!NodeReady(p, candidate)) {
        if (observe && BackpressureOnly(p, candidate)) {
          ++p.backpressure_stalls;
          if (trace != nullptr) {
            trace->Instant("backpressure", static_cast<int64_t>(candidate),
                           trace->NowMicros());
          }
        }
        return;
      }
      p.nodes[static_cast<size_t>(candidate)].queued = true;
      p.ready.push_back(candidate);
      p.max_ready_depth = std::max<uint64_t>(p.max_ready_depth,
                                             p.ready.size());
      ++wakeups;
    };
    size_t ui = static_cast<size_t>(idx);
    if (!consumers_[ui].empty()) {
      p.max_pipe_depth = std::max<uint64_t>(
          p.max_pipe_depth,
          static_cast<uint64_t>(s.next_batch - s.released));
      for (int32_t consumer : consumers_[ui]) try_enqueue(consumer);
    }
    // Release the input slots this activation consumed; producers blocked
    // on a full ring may become runnable again.
    for (int32_t input : jqp_.nodes[ui].inputs) {
      Pipeline::NodeState& us = p.nodes[static_cast<size_t>(input)];
      size_t slot = static_cast<size_t>(batch) % pipe_depth_;
      if (--us.slot_refs[slot] == 0) {
        us.released = batch + 1;
        try_enqueue(input);
      }
    }
    try_enqueue(idx);  // This node may immediately be ready for batch+1.
    if (trace != nullptr) {
      trace->CounterValue("ready_depth", trace->NowMicros(),
                          static_cast<double>(p.ready.size()));
    }
    // The current worker takes one item itself without parking; extra ready
    // nodes need sleeping workers — but only as many notifies as there are
    // actual waiters (each notify is a futex syscall on the hot path).
    for (int n = std::min(wakeups - 1, p.waiting); n > 0; --n) {
      p.cv.notify_one();
    }
  }
}

Result<RunResult> ParallelExecutor::Run(const EventStream& stream,
                                        const ExecutorOptions& options) {
  MOTTO_RETURN_IF_ERROR(ValidateStream(stream));
  for (auto& runtime : runtimes_) runtime->Reset();

  size_t n = jqp_.nodes.size();
  // (Re-)attach node probes every run: with a registry when metrics are on,
  // with nullptr otherwise so no runtime holds instruments of a past run's
  // registry. Probe writes happen under activation ownership (one worker
  // per node at a time), so the shared registry's instruments are
  // single-writer; the instrument map itself is only mutated here, before
  // workers start.
  for (size_t i = 0; i < n; ++i) {
    runtimes_[i]->AttachProbe(options.metrics, "node." + std::to_string(i));
    runtimes_[i]->SetEvalMode(options.eval_order);
  }
  obs::TraceSink* trace = options.trace;
  if (trace != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      trace->NameThread(static_cast<int64_t>(i),
                        jqp_.NodeLabel(static_cast<int32_t>(i)));
    }
    trace->NameThread(static_cast<int64_t>(n), "scheduler");
  }

  RunResult result;
  result.raw_events = stream.size();
  result.node_stats.assign(n, NodeStats{});
  for (const Jqp::Sink& sink : jqp_.sinks) {
    if (!options.count_matches_only) {
      result.sink_events.emplace(sink.query_name, std::vector<Event>{});
    }
    result.sink_counts.emplace(sink.query_name, 0);
  }

  // Reset the pipeline; rings and scratch keep their capacity across runs.
  Pipeline& p = *pipeline_;
  p.num_batches =
      stream.empty()
          ? 1  // One empty batch still runs the final watermark flush.
          : static_cast<int64_t>((stream.size() + batch_size_ - 1) /
                                 batch_size_);
  p.remaining = static_cast<int64_t>(n) * p.num_batches;
  p.in_flight = 0;
  p.parks = p.handoffs = p.activations = 0;
  p.max_ready_depth = p.max_pipe_depth = 0;
  p.backpressure_stalls = 0;
  p.max_started_batch = -1;
  p.worker_shards.clear();
  if (options.metrics != nullptr) {
    p.worker_shards.resize(static_cast<size_t>(num_threads_));
    for (auto& shard : p.worker_shards) {
      shard = std::make_unique<obs::MetricsRegistry>();
    }
  }
  p.ready.clear();
  p.nodes.resize(n);
  for (Pipeline::NodeState& s : p.nodes) {
    s.next_batch = 0;
    s.released = 0;
    s.queued = false;
    s.last_worker = -1;
    s.ring.resize(pipe_depth_);
    for (std::vector<Event>& slot : s.ring) slot.clear();
    s.ring_rounds.resize(pipe_depth_);
    for (auto& slot : s.ring_rounds) slot.clear();
    s.slot_refs.assign(pipe_depth_, 0);
  }
  p.worker_stats.resize(static_cast<size_t>(num_threads_));
  for (std::vector<NodeStats>& per_worker : p.worker_stats) {
    per_worker.assign(n, NodeStats{});
  }
  for (size_t i = 0; i < n; ++i) {
    int32_t idx = static_cast<int32_t>(i);
    if (NodeReady(p, idx)) {
      p.nodes[i].queued = true;
      p.ready.push_back(idx);
    }
  }
  p.max_ready_depth = p.ready.size();

  Clock::time_point run_start = Clock::now();
  if (trace != nullptr) {
    trace->Instant("pool_epoch", static_cast<int64_t>(n), trace->NowMicros(),
                   "{\"threads\":" + std::to_string(num_threads_) +
                       ",\"batches\":" + std::to_string(p.num_batches) + "}");
  }
  if (pool_ != nullptr && p.remaining > 0) {
    auto job = [&](int worker_id) {
      WorkerLoop(p, stream, options, &result, worker_id);
    };
    pool_->Begin(job);
    job(num_threads_ - 1);  // The caller works too, as the last worker id.
    pool_->Wait();
  } else if (p.remaining > 0) {
    WorkerLoop(p, stream, options, &result, 0);
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - run_start).count();

  for (const std::vector<NodeStats>& per_worker : p.worker_stats) {
    for (size_t i = 0; i < n; ++i) {
      result.node_stats[i].events_in += per_worker[i].events_in;
      result.node_stats[i].events_out += per_worker[i].events_out;
      result.node_stats[i].busy_seconds += per_worker[i].busy_seconds;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    runtimes_[i]->CollectStats(&result.node_stats[i]);
  }
  result.parallel.threads = num_threads_;
  result.parallel.batches = static_cast<uint64_t>(p.num_batches);
  result.parallel.node_activations = p.activations;
  result.parallel.worker_parks = p.parks;
  result.parallel.handoffs = p.handoffs;
  result.parallel.max_ready_depth = p.max_ready_depth;
  result.parallel.max_pipe_depth = p.max_pipe_depth;
  result.parallel.pool_epochs = pool_ != nullptr ? pool_->epochs() : 0;
  result.parallel.backpressure_stalls = p.backpressure_stalls;
  if (options.metrics != nullptr) {
    for (const auto& shard : p.worker_shards) {
      options.metrics->MergeFrom(*shard);
    }
  }
  if (options.trace != nullptr) {
    // Workers share one sink, so overwrite (never add) to avoid
    // double-counting drops already folded into per-worker results.
    result.trace_dropped_spans = options.trace->dropped_events();
  }
  ExportRunMetrics(result, options.metrics);
  return result;
}

}  // namespace motto
