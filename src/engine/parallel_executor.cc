#include "engine/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <thread>

#include "common/check.h"

namespace motto {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Timestamp kFinalWatermark =
    std::numeric_limits<Timestamp>::max() / 4;

/// One input item for a node within a batch: the event plus the watermark
/// (driver timestamp) at which the single-threaded executor would have
/// delivered it. channel_rank orders equal-timestamp items the same way the
/// single-threaded executor does (raw first, then upstream channels).
struct BatchItem {
  Timestamp driver_ts;
  int32_t channel_rank;
  Channel channel;
  const Event* event;
};

}  // namespace

ParallelExecutor::ParallelExecutor(Jqp jqp, int num_threads, size_t batch_size)
    : jqp_(std::move(jqp)),
      num_threads_(num_threads),
      batch_size_(batch_size) {}

Result<ParallelExecutor> ParallelExecutor::Create(Jqp jqp, int num_threads,
                                                  size_t batch_size) {
  if (num_threads < 1) {
    return InvalidArgumentError("num_threads must be >= 1");
  }
  if (batch_size < 1) {
    return InvalidArgumentError("batch_size must be >= 1");
  }
  MOTTO_RETURN_IF_ERROR(jqp.Validate());
  ParallelExecutor executor(std::move(jqp), num_threads, batch_size);
  size_t n = executor.jqp_.nodes.size();
  executor.raw_types_.assign(n, {});
  std::vector<int32_t> level_of(n, 0);
  MOTTO_ASSIGN_OR_RETURN(std::vector<int32_t> topo,
                         executor.jqp_.TopoOrder());
  int32_t max_level = 0;
  for (int32_t idx : topo) {
    const JqpNode& node = executor.jqp_.nodes[static_cast<size_t>(idx)];
    int32_t level = 0;
    for (int32_t input : node.inputs) {
      level = std::max(level, level_of[static_cast<size_t>(input)] + 1);
    }
    level_of[static_cast<size_t>(idx)] = level;
    max_level = std::max(max_level, level);
    executor.runtimes_.push_back(nullptr);  // Placeholder; filled below.
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      auto mark = [&](EventTypeId t) {
        std::vector<bool>& types = executor.raw_types_[static_cast<size_t>(idx)];
        if (static_cast<size_t>(t) >= types.size()) {
          types.resize(static_cast<size_t>(t) + 1, false);
        }
        types[static_cast<size_t>(t)] = true;
      };
      for (const OperandBinding& binding : pattern->operands) {
        if (binding.channel == kRawChannel) {
          for (EventTypeId t : binding.types) mark(t);
        }
      }
      for (EventTypeId t : pattern->negated) mark(t);
    }
  }
  executor.runtimes_.clear();
  for (size_t i = 0; i < n; ++i) {
    executor.runtimes_.push_back(MakeNodeRuntime(executor.jqp_.nodes[i].spec));
  }
  executor.levels_.assign(static_cast<size_t>(max_level) + 1, {});
  for (size_t i = 0; i < n; ++i) {
    executor.levels_[static_cast<size_t>(level_of[i])].push_back(
        static_cast<int32_t>(i));
  }
  return executor;
}

Result<RunResult> ParallelExecutor::Run(const EventStream& stream,
                                        const ExecutorOptions& options) {
  MOTTO_RETURN_IF_ERROR(ValidateStream(stream));
  for (auto& runtime : runtimes_) runtime->Reset();

  size_t n = jqp_.nodes.size();
  RunResult result;
  result.raw_events = stream.size();
  result.node_stats.assign(n, NodeStats{});
  for (const Jqp::Sink& sink : jqp_.sinks) {
    if (!options.count_matches_only) {
      result.sink_events.emplace(sink.query_name, std::vector<Event>{});
    }
    result.sink_counts.emplace(sink.query_name, 0);
  }

  std::vector<std::vector<Event>> buffers(n);
  // Per-node input-merge scratch: each node is processed by exactly one
  // worker per level, so the scratch needs no synchronization, and reusing
  // it across batches keeps the merge allocation-free after warm-up.
  std::vector<std::vector<BatchItem>> item_scratch(n);
  Clock::time_point run_start = Clock::now();

  // Processes one node for the raw slice [lo, hi); `final_flush` appends a
  // terminal watermark advance.
  auto process_node = [&](int32_t idx, const Event* raw_lo,
                          const Event* raw_hi, bool final_flush) {
    size_t ui = static_cast<size_t>(idx);
    NodeRuntime& runtime = *runtimes_[ui];
    const JqpNode& node = jqp_.nodes[ui];
    std::vector<Event>& out = buffers[ui];
    out.clear();
    Clock::time_point node_start;
    if (options.collect_node_timing) node_start = Clock::now();

    std::vector<BatchItem>& items = item_scratch[ui];
    items.clear();
    const std::vector<bool>& raw_set = raw_types_[ui];
    if (!raw_set.empty()) {
      for (const Event* e = raw_lo; e != raw_hi; ++e) {
        size_t type = static_cast<size_t>(e->type());
        if (type < raw_set.size() && raw_set[type]) {
          items.push_back(BatchItem{e->begin(), 0, kRawChannel, e});
        }
      }
    }
    for (size_t c = 0; c < node.inputs.size(); ++c) {
      const std::vector<Event>& upstream =
          buffers[static_cast<size_t>(node.inputs[c])];
      for (const Event& ev : upstream) {
        items.push_back(BatchItem{ev.end(), static_cast<int32_t>(c) + 1,
                                  static_cast<Channel>(c + 1), &ev});
      }
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const BatchItem& a, const BatchItem& b) {
                       if (a.driver_ts != b.driver_ts) {
                         return a.driver_ts < b.driver_ts;
                       }
                       return a.channel_rank < b.channel_rank;
                     });
    for (const BatchItem& item : items) {
      runtime.OnWatermark(item.driver_ts, &out);
      runtime.OnEvent(item.channel, *item.event, &out);
    }
    result.node_stats[ui].events_in += items.size();
    if (final_flush) runtime.OnWatermark(kFinalWatermark, &out);
    if (options.collect_node_timing) {
      result.node_stats[ui].busy_seconds +=
          std::chrono::duration<double>(Clock::now() - node_start).count();
    }
    result.node_stats[ui].events_out += out.size();
  };

  size_t pos = 0;
  while (pos < stream.size() || stream.empty()) {
    size_t hi = std::min(stream.size(), pos + batch_size_);
    const Event* raw_lo = stream.data() + pos;
    const Event* raw_hi = stream.data() + hi;
    bool last_batch = hi == stream.size();
    for (const std::vector<int32_t>& level : levels_) {
      if (num_threads_ == 1 || level.size() == 1) {
        for (int32_t idx : level) {
          process_node(idx, raw_lo, raw_hi, last_batch);
        }
        continue;
      }
      std::atomic<size_t> cursor{0};
      auto worker = [&]() {
        while (true) {
          size_t i = cursor.fetch_add(1);
          if (i >= level.size()) break;
          process_node(level[i], raw_lo, raw_hi, last_batch);
        }
      };
      int spawned = std::min<int>(num_threads_ - 1,
                                  static_cast<int>(level.size()) - 1);
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(spawned));
      for (int t = 0; t < spawned; ++t) threads.emplace_back(worker);
      worker();
      for (std::thread& t : threads) t.join();
    }
    for (const Jqp::Sink& sink : jqp_.sinks) {
      const std::vector<Event>& out = buffers[static_cast<size_t>(sink.node)];
      result.sink_counts[sink.query_name] += out.size();
      if (!options.count_matches_only) {
        auto& collected = result.sink_events[sink.query_name];
        collected.insert(collected.end(), out.begin(), out.end());
      }
    }
    pos = hi;
    if (last_batch) break;
  }

  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - run_start).count();
  for (size_t i = 0; i < n; ++i) {
    runtimes_[i]->CollectStats(&result.node_stats[i]);
  }
  return result;
}

}  // namespace motto
