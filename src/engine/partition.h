#ifndef MOTTO_ENGINE_PARTITION_H_
#define MOTTO_ENGINE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/graph.h"

namespace motto {

/// One connected component of a JQP, over node input edges. Queries in
/// different components share no state, so components are the coarse unit of
/// data-parallel sharding (DESIGN.md §12).
struct PartitionComponent {
  /// Global node ids, ascending.
  std::vector<int32_t> nodes;
  /// Indices into Jqp::sinks whose node lives in this component.
  std::vector<int32_t> sinks;
  /// Max pattern window in the component. Any match a component node emits
  /// spans at most this (the matcher's window guard covers the full
  /// constituent history), so a time slice only needs `horizon` of left
  /// context to reproduce its owned matches.
  Duration horizon = 0;
  /// Cost proxy used for packing (sum of per-node weights).
  double weight = 0.0;
};

/// One shard of a PartitionPlan: a set of whole components, or — when the
/// plan replicates a heavy group over the time axis — one time slice of a
/// replicated group.
struct ShardSpec {
  /// Indices into PartitionPlan::components, ascending.
  std::vector<int32_t> components;
  /// Replica group this shard belongs to. Shards of one group evaluate the
  /// same sub-plan over different stream slices; groups own disjoint sinks.
  int group = 0;
  /// Number of time slices the group is split into (1 = whole stream).
  int time_slices = 1;
  /// This shard's slice within the group, in stream order.
  int slice_index = 0;
  double weight = 0.0;
  Duration horizon = 0;
};

/// Data-parallel partition of a JQP into `shards.size()` independent
/// replicas. Built once per plan; slicing of a concrete stream happens at
/// run time (ShardedExecutor).
struct PartitionPlan {
  std::vector<PartitionComponent> components;
  /// Ordered by (group, slice_index); shards of one group are contiguous.
  std::vector<ShardSpec> shards;
  int groups = 0;

  /// Partitions `jqp` into at most `num_shards` shards. With at least as
  /// many components as shards, components are LPT-packed by weight into
  /// `num_shards` groups of one shard each. With fewer components, every
  /// component becomes its own group and the remaining shard budget is
  /// spent replicating the heaviest groups over time slices. `node_weights`
  /// (parallel to jqp.nodes, e.g. predicted CPU units) overrides the
  /// structural default of 1 + #operands per pattern node.
  static PartitionPlan Build(const Jqp& jqp, int num_shards,
                             const std::vector<double>* node_weights = nullptr);

  /// True when no shard slices the time axis; the sharded run is then a
  /// pure component partition and per-sink output order matches the
  /// single-threaded Executor byte for byte.
  bool PureComponentPartition() const;

  std::string ToString(const Jqp& jqp) const;
  std::string ToJson() const;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_PARTITION_H_
