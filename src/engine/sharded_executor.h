#ifndef MOTTO_ENGINE_SHARDED_EXECUTOR_H_
#define MOTTO_ENGINE_SHARDED_EXECUTOR_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "engine/graph.h"
#include "engine/partition.h"
#include "engine/worker_pool.h"
#include "event/stream.h"

namespace motto {

/// Data-parallel JQP executor: partitions the plan into independent shards
/// (PartitionPlan), runs one single-threaded Executor replica per shard on a
/// persistent WorkerPool, and merges the per-shard results deterministically
/// (DESIGN.md §12).
///
/// Shards share nothing during a run — no locks, no cross-shard watermarks —
/// which is what lets throughput scale with cores where the pipelined
/// ParallelExecutor stalls on inter-node dependencies. Guarantees:
///   - per-sink match multisets equal the single-threaded Executor's for
///     every shard count;
///   - per-sink match order is byte-identical to the single-threaded
///     Executor when the partition is a pure component split
///     (plan().PureComponentPartition()), and byte-identical across repeated
///     runs at any fixed shard count.
class ShardedExecutor {
 public:
  /// Validates the plan, partitions it into `num_shards` shards and builds
  /// one replica per shard. `num_threads` <= 0 means one thread per shard;
  /// more threads than shards are clamped. `node_weights` (parallel to
  /// jqp.nodes) optionally biases the packing, e.g. with predicted costs.
  static Result<ShardedExecutor> Create(
      Jqp jqp, int num_shards, int num_threads = 0,
      const std::vector<double>* node_weights = nullptr);

  ShardedExecutor(ShardedExecutor&&) = default;
  ShardedExecutor& operator=(ShardedExecutor&&) = default;

  /// Replays `stream` through every shard and merges. Time-sliced replicas
  /// replay their slice plus a `horizon`-deep warm-up prefix; ownership
  /// filtering at the sinks (SinkEmitRange) keeps exactly the matches whose
  /// attribution key falls in the shard's interval. RunResult::sharded
  /// carries per-shard counters; node_stats are re-mapped to global ids.
  Result<RunResult> Run(const EventStream& stream,
                        const ExecutorOptions& options = ExecutorOptions{});

  const Jqp& jqp() const { return jqp_; }
  const PartitionPlan& plan() const { return plan_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_threads() const { return num_threads_; }

 private:
  struct Shard {
    explicit Shard(Executor e) : executor(std::move(e)) {}

    Executor executor;
    int group = 0;
    int time_slices = 1;
    int slice_index = 0;
    Duration horizon = 0;
    /// Local node id -> global node id in the full plan.
    std::vector<int32_t> global_nodes;
    /// Local sink -> negation window when the sink defers emission, -1 for
    /// immediate sinks (fixes each match's attribution key; executor.h).
    std::vector<Duration> sink_deferred;

    // Per-run scratch, written single-threaded before dispatch and by this
    // shard's worker during it.
    const Event* data = nullptr;
    size_t count = 0;
    uint64_t owned_events = 0;
    uint64_t context_events = 0;
    bool use_ranges = false;
    std::vector<SinkEmitRange> ranges;
    RunResult result;
    double busy_seconds = 0.0;
  };

  ShardedExecutor(Jqp jqp, PartitionPlan plan, int num_threads);

  void RunShard(Shard* shard, const ExecutorOptions& options);

  Jqp jqp_;
  PartitionPlan plan_;
  int num_threads_ = 1;
  std::vector<Shard> shards_;
  /// threads - 1 persistent workers; the calling thread takes the last
  /// share. Null when single-threaded.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_SHARDED_EXECUTOR_H_
