#include "engine/partition.h"

#include <algorithm>
#include <numeric>

namespace motto {

namespace {

/// Structural cost proxy: pattern nodes cost 1 + one unit per operand
/// (operand fan-in drives partial-match work); filters cost 1.
double DefaultNodeWeight(const JqpNode& node) {
  if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
    return 1.0 + static_cast<double>(pattern->operands.size());
  }
  return 1.0;
}

int Find(std::vector<int>* parent, int x) {
  while ((*parent)[static_cast<size_t>(x)] != x) {
    (*parent)[static_cast<size_t>(x)] =
        (*parent)[(*parent)[static_cast<size_t>(x)]];
    x = (*parent)[static_cast<size_t>(x)];
  }
  return x;
}

void Union(std::vector<int>* parent, int a, int b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a != b) (*parent)[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
}

std::string JsonIntList(const std::vector<int32_t>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

}  // namespace

PartitionPlan PartitionPlan::Build(const Jqp& jqp, int num_shards,
                                   const std::vector<double>* node_weights) {
  PartitionPlan plan;
  int n = static_cast<int>(jqp.nodes.size());
  int shard_budget = std::max(1, num_shards);
  if (n == 0) return plan;

  std::vector<int> parent(static_cast<size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  for (int i = 0; i < n; ++i) {
    for (int32_t input : jqp.nodes[static_cast<size_t>(i)].inputs) {
      Union(&parent, i, input);
    }
  }

  // Components keyed by root, ordered by their smallest node id (the union
  // rule keeps the smallest member as root) so the layout is deterministic.
  std::vector<int32_t> component_of(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    int root = Find(&parent, i);
    if (component_of[static_cast<size_t>(root)] < 0) {
      component_of[static_cast<size_t>(root)] =
          static_cast<int32_t>(plan.components.size());
      plan.components.emplace_back();
    }
    int32_t c = component_of[static_cast<size_t>(root)];
    component_of[static_cast<size_t>(i)] = c;
    PartitionComponent& comp = plan.components[static_cast<size_t>(c)];
    const JqpNode& node = jqp.nodes[static_cast<size_t>(i)];
    comp.nodes.push_back(i);
    comp.weight += node_weights != nullptr &&
                           static_cast<size_t>(i) < node_weights->size()
                       ? std::max((*node_weights)[static_cast<size_t>(i)],
                                  1e-9)
                       : DefaultNodeWeight(node);
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      comp.horizon = std::max(comp.horizon, pattern->window);
    }
  }
  for (size_t s = 0; s < jqp.sinks.size(); ++s) {
    int32_t c = component_of[static_cast<size_t>(jqp.sinks[s].node)];
    plan.components[static_cast<size_t>(c)].sinks.push_back(
        static_cast<int32_t>(s));
  }

  int num_components = static_cast<int>(plan.components.size());
  if (num_components >= shard_budget) {
    // LPT: heaviest component first into the lightest group. Each group is
    // one shard evaluating the whole stream.
    std::vector<int32_t> order(static_cast<size_t>(num_components));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return plan.components[static_cast<size_t>(a)].weight >
             plan.components[static_cast<size_t>(b)].weight;
    });
    plan.groups = shard_budget;
    plan.shards.assign(static_cast<size_t>(shard_budget), ShardSpec{});
    for (int g = 0; g < shard_budget; ++g) plan.shards[static_cast<size_t>(g)].group = g;
    for (int32_t c : order) {
      ShardSpec* lightest = &plan.shards[0];
      for (ShardSpec& shard : plan.shards) {
        if (shard.weight < lightest->weight) lightest = &shard;
      }
      const PartitionComponent& comp = plan.components[static_cast<size_t>(c)];
      lightest->components.push_back(c);
      lightest->weight += comp.weight;
      lightest->horizon = std::max(lightest->horizon, comp.horizon);
    }
    for (ShardSpec& shard : plan.shards) {
      std::sort(shard.components.begin(), shard.components.end());
    }
    return plan;
  }

  // Fewer components than shards: every component is its own group; the
  // leftover budget replicates the heaviest groups (by per-slice weight)
  // over time slices.
  plan.groups = num_components;
  std::vector<int> slices(static_cast<size_t>(num_components), 1);
  for (int extra = shard_budget - num_components; extra > 0; --extra) {
    int best = 0;
    double best_load = -1.0;
    for (int g = 0; g < num_components; ++g) {
      double load = plan.components[static_cast<size_t>(g)].weight /
                    static_cast<double>(slices[static_cast<size_t>(g)]);
      if (load > best_load) {
        best_load = load;
        best = g;
      }
    }
    ++slices[static_cast<size_t>(best)];
  }
  for (int g = 0; g < num_components; ++g) {
    const PartitionComponent& comp = plan.components[static_cast<size_t>(g)];
    for (int k = 0; k < slices[static_cast<size_t>(g)]; ++k) {
      ShardSpec shard;
      shard.components = {g};
      shard.group = g;
      shard.time_slices = slices[static_cast<size_t>(g)];
      shard.slice_index = k;
      shard.weight = comp.weight / slices[static_cast<size_t>(g)];
      shard.horizon = comp.horizon;
      plan.shards.push_back(std::move(shard));
    }
  }
  return plan;
}

bool PartitionPlan::PureComponentPartition() const {
  for (const ShardSpec& shard : shards) {
    if (shard.time_slices > 1) return false;
  }
  return true;
}

std::string PartitionPlan::ToString(const Jqp& jqp) const {
  std::string out = "partition: " + std::to_string(components.size()) +
                    " components -> " + std::to_string(shards.size()) +
                    " shards (" + std::to_string(groups) + " groups)\n";
  for (size_t c = 0; c < components.size(); ++c) {
    const PartitionComponent& comp = components[c];
    out += "  component " + std::to_string(c) + ": " +
           std::to_string(comp.nodes.size()) + " nodes, weight " +
           std::to_string(comp.weight) + ", horizon " +
           std::to_string(comp.horizon) + "us, sinks [";
    for (size_t i = 0; i < comp.sinks.size(); ++i) {
      if (i > 0) out += ", ";
      out += jqp.sinks[static_cast<size_t>(comp.sinks[i])].query_name;
    }
    out += "]\n";
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardSpec& shard = shards[s];
    out += "  shard " + std::to_string(s) + ": group " +
           std::to_string(shard.group);
    if (shard.time_slices > 1) {
      out += " slice " + std::to_string(shard.slice_index) + "/" +
             std::to_string(shard.time_slices);
    }
    out += ", components " + JsonIntList(shard.components) + ", weight " +
           std::to_string(shard.weight) + "\n";
  }
  return out;
}

std::string PartitionPlan::ToJson() const {
  std::string out = "{\"shards\":" + std::to_string(shards.size()) +
                    ",\"groups\":" + std::to_string(groups) +
                    ",\"pure_component\":" +
                    (PureComponentPartition() ? "true" : "false") +
                    ",\"components\":[";
  for (size_t c = 0; c < components.size(); ++c) {
    if (c > 0) out += ",";
    const PartitionComponent& comp = components[c];
    out += "{\"id\":" + std::to_string(c) +
           ",\"nodes\":" + JsonIntList(comp.nodes) +
           ",\"sinks\":" + JsonIntList(comp.sinks) +
           ",\"weight\":" + std::to_string(comp.weight) +
           ",\"horizon_us\":" + std::to_string(comp.horizon) + "}";
  }
  out += "],\"assignments\":[";
  for (size_t s = 0; s < shards.size(); ++s) {
    if (s > 0) out += ",";
    const ShardSpec& shard = shards[s];
    out += "{\"id\":" + std::to_string(s) +
           ",\"group\":" + std::to_string(shard.group) +
           ",\"time_slices\":" + std::to_string(shard.time_slices) +
           ",\"slice\":" + std::to_string(shard.slice_index) +
           ",\"components\":" + JsonIntList(shard.components) +
           ",\"weight\":" + std::to_string(shard.weight) + "}";
  }
  return out + "]}";
}

}  // namespace motto
