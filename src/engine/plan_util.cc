#include "engine/plan_util.h"

namespace motto {

std::string CompositeDescriptor(const FlatPattern& pattern, Duration window,
                                const EventTypeRegistry& registry) {
  FlatPattern canon = pattern.Canonical();
  return "{" + canon.ToString(registry) + "}@" + std::to_string(window) + "us";
}

EventTypeId RegisterOutputType(const FlatPattern& pattern, Duration window,
                               EventTypeRegistry* registry) {
  return registry->RegisterComposite(
      CompositeDescriptor(pattern, window, *registry));
}

PatternSpec MakeRawPatternSpec(const FlatPattern& pattern, Duration window,
                               EventTypeRegistry* registry) {
  PatternSpec spec;
  spec.op = pattern.op;
  spec.window = window;
  spec.negated = pattern.negated;
  spec.operands.reserve(pattern.operands.size());
  for (size_t i = 0; i < pattern.operands.size(); ++i) {
    OperandBinding binding;
    binding.types = {pattern.operands[i]};
    binding.channel = kRawChannel;
    binding.slot_map = {static_cast<int32_t>(i)};
    spec.operands.push_back(std::move(binding));
  }
  spec.output_type = RegisterOutputType(pattern, window, registry);
  return spec;
}

int32_t AppendIndependentQuery(Jqp* jqp, const FlatQuery& query,
                               EventTypeRegistry* registry) {
  JqpNode node;
  node.spec = MakeRawPatternSpec(query.pattern, query.window, registry);
  node.label = query.name;
  int32_t id = jqp->AddNode(std::move(node));
  jqp->sinks.push_back(Jqp::Sink{query.name, id});
  return id;
}

Jqp BuildDefaultJqp(const std::vector<FlatQuery>& queries,
                    EventTypeRegistry* registry) {
  Jqp jqp;
  for (const FlatQuery& query : queries) {
    AppendIndependentQuery(&jqp, query, registry);
  }
  return jqp;
}

}  // namespace motto
