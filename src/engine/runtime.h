#ifndef MOTTO_ENGINE_RUNTIME_H_
#define MOTTO_ENGINE_RUNTIME_H_

#include <memory>
#include <vector>

#include "common/time.h"
#include "engine/graph.h"
#include "event/event.h"

namespace motto {

/// Runtime state of one JQP node. The executor drives each node with a
/// watermark call followed by this round's input events; the node appends
/// emissions to `out`.
///
/// Delivery invariant maintained by the executors: every delivered event has
/// end() equal to the current watermark (primitive events complete at their
/// timestamp; upstream composites complete at the raw event that closed
/// them). Deferred-negation emissions are exempt and therefore only allowed
/// on terminal nodes (enforced by Jqp::Validate).
class NodeRuntime {
 public:
  virtual ~NodeRuntime() = default;

  /// Advances event time to `watermark`; may flush deferred emissions.
  virtual void OnWatermark(Timestamp watermark, std::vector<Event>* out) = 0;

  /// Delivers one input event on `channel` (kRawChannel or 1-based upstream
  /// index). Must be called with nondecreasing event end() per node.
  virtual void OnEvent(Channel channel, const Event& event,
                       std::vector<Event>* out) = 0;

  /// Resets all state so the node can replay another stream.
  virtual void Reset() = 0;
};

/// Instantiates the runtime for `spec`.
std::unique_ptr<NodeRuntime> MakeNodeRuntime(const NodeSpec& spec);

}  // namespace motto

#endif  // MOTTO_ENGINE_RUNTIME_H_
