#ifndef MOTTO_ENGINE_RUNTIME_H_
#define MOTTO_ENGINE_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/graph.h"
#include "event/event.h"

namespace motto {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// How a pattern node consumes its operands within one run (DESIGN.md §13).
enum class EvalOrderMode {
  /// Eager: arriving events extend partial matches immediately, in arrival
  /// order. The reference semantics every other mode is differentially
  /// checked against.
  kArrival,
  /// Lazy: operands are evaluated in the plan-chosen selectivity order
  /// (PatternSpec::eval_order, rarest first); frequent non-anchor events
  /// are buffered and joined only when a rarer operand arrives. Match
  /// multisets are identical to kArrival — only the evaluation strategy
  /// (and therefore the partial-match population) changes.
  kSelectivity,
};

/// Per-node counters collected by a run. Arena fields are filled by pattern
/// matchers (zero for stateless filters): they expose the hot-path memory
/// behaviour — chunks carved from fresh slab space vs. recycled from the
/// arena free lists, and the high-water mark of live partial-match chunks —
/// so "the steady state allocates nothing" is checkable per run.
struct NodeStats {
  uint64_t events_in = 0;
  uint64_t events_out = 0;
  /// Wall time spent inside this node; only filled when
  /// ExecutorOptions::collect_node_timing is set.
  double busy_seconds = 0.0;
  /// Partial-match chunks allocated from fresh arena slab space.
  uint64_t arena_chunk_allocs = 0;
  /// Partial-match chunks recycled from the arena free lists.
  uint64_t arena_chunk_reuses = 0;
  /// Peak simultaneously-live partial-match chunks.
  uint64_t arena_live_high_water = 0;
  /// Peak constituent slab cells in use.
  uint64_t arena_slab_high_water = 0;
};

/// Runtime state of one JQP node. The executor drives each node with a
/// watermark call followed by this round's input events; the node appends
/// emissions to `out`.
///
/// Delivery invariant maintained by the executors: every delivered event has
/// end() equal to the current watermark (primitive events complete at their
/// timestamp; upstream composites complete at the raw event that closed
/// them). Deferred-negation emissions are exempt and therefore only allowed
/// on terminal nodes (enforced by Jqp::Validate).
class NodeRuntime {
 public:
  virtual ~NodeRuntime() = default;

  /// Advances event time to `watermark`; may flush deferred emissions.
  virtual void OnWatermark(Timestamp watermark, std::vector<Event>* out) = 0;

  /// Delivers one input event on `channel` (kRawChannel or 1-based upstream
  /// index). Must be called with nondecreasing event end() per node.
  virtual void OnEvent(Channel channel, const Event& event,
                       std::vector<Event>* out) = 0;

  /// Resets all state so the node can replay another stream.
  virtual void Reset() = 0;

  /// Adds this node's memory/allocation counters to `stats`; the executors
  /// call it once at the end of a run. Default: nothing to report.
  virtual void CollectStats(NodeStats* stats) const { (void)stats; }

  /// Hands the node its per-run metric instruments, named under `prefix`
  /// (e.g. "node.3"). The executors call this at the start of every run —
  /// with the run's registry when metrics are requested, with nullptr
  /// otherwise, so a runtime never keeps instruments of a dead registry.
  /// Stateless nodes ignore it; stateful ones (the matcher) hoist raw
  /// instrument pointers and pay one null test per instrumented site when
  /// metrics are off.
  virtual void AttachProbe(obs::MetricsRegistry* registry,
                           const std::string& prefix) {
    (void)registry;
    (void)prefix;
  }

  /// Selects the operand evaluation strategy for the next run. The
  /// executors call this right after Reset() at the start of every run
  /// (ExecutorOptions::eval_order), so a runtime never carries a stale mode
  /// across runs; it must not be switched while the node holds state.
  /// Stateless nodes ignore it.
  virtual void SetEvalMode(EvalOrderMode mode) { (void)mode; }
};

/// Instantiates the runtime for `spec`.
std::unique_ptr<NodeRuntime> MakeNodeRuntime(const NodeSpec& spec);

}  // namespace motto

#endif  // MOTTO_ENGINE_RUNTIME_H_
