#ifndef MOTTO_ENGINE_RUNTIME_H_
#define MOTTO_ENGINE_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/graph.h"
#include "event/event.h"

namespace motto {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// How a pattern node consumes its operands within one run (DESIGN.md §13).
enum class EvalOrderMode {
  /// Eager: arriving events extend partial matches immediately, in arrival
  /// order. The reference semantics every other mode is differentially
  /// checked against.
  kArrival,
  /// Lazy: operands are evaluated in the plan-chosen selectivity order
  /// (PatternSpec::eval_order, rarest first); frequent non-anchor events
  /// are buffered and joined only when a rarer operand arrives. Match
  /// multisets are identical to kArrival — only the evaluation strategy
  /// (and therefore the partial-match population) changes.
  kSelectivity,
};

/// Per-node counters collected by a run. Arena fields are filled by pattern
/// matchers (zero for stateless filters): they expose the hot-path memory
/// behaviour — chunks carved from fresh slab space vs. recycled from the
/// arena free lists, and the high-water mark of live partial-match chunks —
/// so "the steady state allocates nothing" is checkable per run.
struct NodeStats {
  uint64_t events_in = 0;
  uint64_t events_out = 0;
  /// Wall time spent inside this node; only filled when
  /// ExecutorOptions::collect_node_timing is set.
  double busy_seconds = 0.0;
  /// Partial-match chunks allocated from fresh arena slab space.
  uint64_t arena_chunk_allocs = 0;
  /// Partial-match chunks recycled from the arena free lists.
  uint64_t arena_chunk_reuses = 0;
  /// Peak simultaneously-live partial-match chunks.
  uint64_t arena_live_high_water = 0;
  /// Peak constituent slab cells in use.
  uint64_t arena_slab_high_water = 0;
};

/// One partial match (or deferred pending match) lifted out of a matcher,
/// with its constituent history materialized out of the arena. `state` is
/// the NFA state (eager partials) or the matched-prefix length (lazy runs);
/// the op_* arrays are only filled for lazy runs.
struct NodePartialState {
  int32_t state = 0;
  Timestamp min_begin = 0;
  Timestamp max_end = 0;
  Timestamp last_end = 0;
  std::vector<Constituent> constituents;
  std::vector<Timestamp> op_begin;
  std::vector<Timestamp> op_end;
  std::vector<uint64_t> op_arrival;
};

/// One event parked in a lazy-mode operand buffer.
struct NodeBufferedEvent {
  int32_t operand = 0;
  Timestamp begin = 0;
  Timestamp end = 0;
  uint64_t arrival = 0;
  Event event;
};

/// Complete serialized runtime state of one JQP node, used by live plan
/// migration (DESIGN.md §14): a surviving node's state is exported from the
/// old executor and imported into its successor in the new plan, so no
/// in-flight partial match is lost across a hot swap. Stateless nodes
/// (filters, DISJ pass-through with no negation) export `stateless = true`.
struct NodeState {
  bool stateless = true;
  EvalOrderMode eval_mode = EvalOrderMode::kArrival;
  Timestamp watermark = 0;
  uint64_t sweep_tick = 0;
  uint64_t arrival_seq = 0;
  std::vector<NodePartialState> partials;       // Eager NFA runs.
  std::vector<NodePartialState> lazy_partials;  // Lazy-mode runs.
  std::vector<NodePartialState> pending;        // NEG-deferred matches.
  std::vector<Timestamp> negated_history;       // Sorted negated-event ts.
  std::vector<NodeBufferedEvent> buffered;      // Lazy operand buffers.
};

/// Runtime state of one JQP node. The executor drives each node with a
/// watermark call followed by this round's input events; the node appends
/// emissions to `out`.
///
/// Delivery invariant maintained by the executors: every delivered event has
/// end() equal to the current watermark (primitive events complete at their
/// timestamp; upstream composites complete at the raw event that closed
/// them). Deferred-negation emissions are exempt and therefore only allowed
/// on terminal nodes (enforced by Jqp::Validate).
class NodeRuntime {
 public:
  virtual ~NodeRuntime() = default;

  /// Advances event time to `watermark`; may flush deferred emissions.
  virtual void OnWatermark(Timestamp watermark, std::vector<Event>* out) = 0;

  /// Delivers one input event on `channel` (kRawChannel or 1-based upstream
  /// index). Must be called with nondecreasing event end() per node.
  virtual void OnEvent(Channel channel, const Event& event,
                       std::vector<Event>* out) = 0;

  /// Resets all state so the node can replay another stream.
  virtual void Reset() = 0;

  /// Adds this node's memory/allocation counters to `stats`; the executors
  /// call it once at the end of a run. Default: nothing to report.
  virtual void CollectStats(NodeStats* stats) const { (void)stats; }

  /// Hands the node its per-run metric instruments, named under `prefix`
  /// (e.g. "node.3"). The executors call this at the start of every run —
  /// with the run's registry when metrics are requested, with nullptr
  /// otherwise, so a runtime never keeps instruments of a dead registry.
  /// Stateless nodes ignore it; stateful ones (the matcher) hoist raw
  /// instrument pointers and pay one null test per instrumented site when
  /// metrics are off.
  virtual void AttachProbe(obs::MetricsRegistry* registry,
                           const std::string& prefix) {
    (void)registry;
    (void)prefix;
  }

  /// Selects the operand evaluation strategy for the next run. The
  /// executors call this right after Reset() at the start of every run
  /// (ExecutorOptions::eval_order), so a runtime never carries a stale mode
  /// across runs; it must not be switched while the node holds state.
  /// Stateless nodes ignore it.
  virtual void SetEvalMode(EvalOrderMode mode) { (void)mode; }

  /// Serializes this node's live state into `out` for migration to a
  /// successor node in a hot-swapped plan. Default: stateless.
  virtual void ExportState(NodeState* out) { *out = NodeState{}; }

  /// Restores state previously produced by ExportState on a node with a
  /// compatible spec (same operator shape and evaluation mode). Resets
  /// first, so a failed import leaves the node empty, not half-migrated.
  /// Returns false when `in` is incompatible (the migration layer then
  /// counts the state as dropped and the node starts fresh).
  virtual bool ImportState(const NodeState& in) { return in.stateless; }
};

/// Instantiates the runtime for `spec`.
std::unique_ptr<NodeRuntime> MakeNodeRuntime(const NodeSpec& spec);

}  // namespace motto

#endif  // MOTTO_ENGINE_RUNTIME_H_
