#ifndef MOTTO_ENGINE_EXECUTOR_H_
#define MOTTO_ENGINE_EXECUTOR_H_

#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/graph.h"
#include "engine/runtime.h"
#include "event/stream.h"

namespace motto {

namespace obs {
class MetricsRegistry;
class TraceSink;
}  // namespace obs

/// Scheduler counters from the pipelined multi-threaded executor; all zero
/// for single-threaded runs. They expose how the pipeline behaved — how
/// often workers ran dry (parks), how work migrated between workers
/// (handoffs), and how deep the ready queue / per-node output rings got —
/// so "threads were actually busy" is checkable per run.
struct ParallelRunStats {
  int threads = 0;
  /// Raw-stream batches the run was split into (>= 1 even when empty).
  uint64_t batches = 0;
  /// Node activations executed (= nodes x batches).
  uint64_t node_activations = 0;
  /// Times a worker parked on the scheduler condition variable because no
  /// node was ready.
  uint64_t worker_parks = 0;
  /// Activations picked up by a different worker than the one that ran the
  /// node's previous activation.
  uint64_t handoffs = 0;
  /// High-water mark of the scheduler ready queue.
  uint64_t max_ready_depth = 0;
  /// High-water mark of any node's output-ring occupancy, in batches
  /// produced but not yet fully consumed downstream (bounded by the
  /// executor's pipe depth).
  uint64_t max_pipe_depth = 0;
  /// Worker-pool epochs dispatched by this executor so far (one per Run;
  /// a growing counter over a pool created once — no threads are spawned
  /// inside Run).
  uint64_t pool_epochs = 0;
  /// Times a node was held back from the ready queue solely because its
  /// output ring was full (only counted when metrics or tracing are on;
  /// zero otherwise).
  uint64_t backpressure_stalls = 0;
};

/// Per-shard counters from a ShardedExecutor run (DESIGN.md §12).
struct ShardRunStats {
  int shard = 0;
  int group = 0;
  int time_slices = 1;
  int slice_index = 0;
  /// Stream events whose timestamp interval this shard owns.
  uint64_t owned_events = 0;
  /// Warm-up prefix events replayed only to rebuild partial-match context
  /// (zero for whole-stream shards).
  uint64_t context_events = 0;
  uint64_t matches = 0;
  /// Wall time of this shard's replica run.
  double busy_seconds = 0.0;
};

/// Aggregate sharding counters; `shards == 0` for non-sharded runs.
struct ShardedRunStats {
  int shards = 0;
  int threads = 0;
  int groups = 0;
  double max_busy_seconds = 0.0;
  double mean_busy_seconds = 0.0;
  /// max/mean shard busy time: 1 = perfectly balanced, 0 = nothing ran.
  double skew = 0.0;
  std::vector<ShardRunStats> per_shard;
};

/// Per-sink liveness facts for the serving path (DESIGN.md §16): how many
/// matches this sink has emitted in the current session and when (event
/// time) the most recent one was sealed. The serve telemetry joins these
/// with released-line counts to compute outbox/commit lag per query.
struct SinkTelemetry {
  uint64_t matches = 0;
  /// end() timestamp of the most recent emitted match;
  /// numeric_limits<Timestamp>::min() when the sink never emitted.
  Timestamp last_emit_ts = std::numeric_limits<Timestamp>::min();
};

/// Outcome of replaying one stream through a JQP. (NodeStats lives in
/// runtime.h so node runtimes can fill their own counters.)
struct RunResult {
  /// Matches per user query (sink), in emission order. Empty when the run
  /// used ExecutorOptions::count_matches_only.
  std::unordered_map<std::string, std::vector<Event>> sink_events;
  /// Match counts per sink (always filled).
  std::unordered_map<std::string, uint64_t> sink_counts;
  uint64_t raw_events = 0;
  double elapsed_seconds = 0.0;
  std::vector<NodeStats> node_stats;
  /// Filled by ParallelExecutor runs; default-zero otherwise.
  ParallelRunStats parallel;
  /// Filled by ShardedExecutor runs; `sharded.shards == 0` otherwise.
  ShardedRunStats sharded;
  /// Spans the run's TraceSink had to drop at its cap (0 when tracing was
  /// off or nothing was dropped). Surfaced as the `trace.dropped_spans`
  /// metric and a RunReport warning so truncation is never silent.
  uint64_t trace_dropped_spans = 0;

  /// Raw input events per second of wall time.
  double ThroughputEps() const {
    return elapsed_seconds > 0 ? static_cast<double>(raw_events) /
                                     elapsed_seconds
                               : 0.0;
  }

  /// Total matches across all sinks.
  uint64_t TotalMatches() const;
};

/// Ownership filter for one sink of a time-sliced shard run: only matches
/// whose attribution key falls in (min_exclusive, max_inclusive] are
/// emitted. The key is the timestamp at which the match's fate is sealed:
/// `end()` for immediately-emitted matches, `begin() + deferred_window` for
/// negation-deferred sinks (the last instant a negated event could still
/// kill the pending match). Slicing the timeline into such intervals makes
/// each match the responsibility of exactly one shard (DESIGN.md §12).
struct SinkEmitRange {
  Timestamp min_exclusive = std::numeric_limits<Timestamp>::min();
  Timestamp max_inclusive = std::numeric_limits<Timestamp>::max();
  /// >= 0: the sink node defers emission behind its negation window and the
  /// key is begin() + deferred_window; < 0: the key is end().
  Duration deferred_window = -1;
};

struct ExecutorOptions {
  /// Record per-node busy time (adds two clock reads per node activation;
  /// use on measurement runs, not throughput runs).
  bool collect_node_timing = false;
  /// Count sink matches without retaining the match events. Throughput
  /// benches use this so result accumulation (identical across plans) does
  /// not dilute the measured differences.
  bool count_matches_only = false;
  /// Run-scoped metrics registry (DESIGN.md §9); null disables metrics
  /// entirely — the executors then skip every instrumentation site behind a
  /// pointer test and node runtimes are detached from any prior registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Chrome trace-event sink; null disables tracing. When set, each node
  /// gets its own timeline row (tid = node id) carrying one span per
  /// activation, plus instant/counter events for watermarks, pool epochs,
  /// ready-queue depth and backpressure stalls.
  obs::TraceSink* trace = nullptr;
  /// Per-sink emission ownership filters, parallel to Jqp::sinks; null (the
  /// default) keeps every match. Set by ShardedExecutor on time-sliced
  /// replicas so context warm-up and out-of-interval matches are counted
  /// out at the sink, before they reach the merged result.
  const std::vector<SinkEmitRange>* sink_ranges = nullptr;
  /// Operand evaluation strategy for pattern nodes: arrival (eager, the
  /// reference semantics) or selectivity-ordered lazy matching along each
  /// node's PatternSpec::eval_order (DESIGN.md §13). Match multisets are
  /// identical either way; only per-event work changes. Forwarded to every
  /// node runtime (and, for ShardedExecutor, every shard replica) at the
  /// start of each run.
  EvalOrderMode eval_order = EvalOrderMode::kArrival;
};

/// Dumps a finished run's NodeStats / ParallelRunStats into `registry`
/// ("node.<i>.*", "run.*", "sched.*"); no-op when `registry` is null. The
/// executors call this at the end of an instrumented run; harnesses can call
/// it again on their own registries to archive a run.
void ExportRunMetrics(const RunResult& result, obs::MetricsRegistry* registry);

/// Single-threaded JQP executor. Replays a timestamp-ordered primitive
/// stream through the plan's nodes in topological order, advancing the
/// watermark to each raw event's timestamp.
class Executor {
 public:
  /// Validates the plan and instantiates node runtimes.
  static Result<Executor> Create(Jqp jqp);

  Executor(Executor&&) = default;
  Executor& operator=(Executor&&) = default;

  /// Replays `stream` (validated) and returns per-sink matches and timings.
  /// Can be called repeatedly; node state is reset per run.
  Result<RunResult> Run(const EventStream& stream,
                        const ExecutorOptions& options = ExecutorOptions{});

  /// Replays a contiguous span of an already-validated stream (sorted, all
  /// primitive). ShardedExecutor feeds each replica its slice-plus-context
  /// window through this without copying or re-validating the events.
  /// Equivalent to BeginSession + FeedSession + FinishSession.
  RunResult RunSpan(const Event* events, size_t count,
                    const ExecutorOptions& options = ExecutorOptions{});

  // --- Streaming session API (live plan migration, DESIGN.md §14) ---

  /// Starts a streaming session: resets node runtimes, installs probes and
  /// the evaluation mode, and initializes the accumulated result. Pointers
  /// inside `options` (metrics/trace/sink_ranges) must stay valid until the
  /// session ends.
  void BeginSession(const ExecutorOptions& options = ExecutorOptions{});

  /// Feeds a contiguous, timestamp-ordered span of primitive events into
  /// the active session. May be called repeatedly; timestamps must be
  /// nondecreasing across calls.
  void FeedSession(const Event* events, size_t count);

  /// Forces a watermark-only round at `watermark` on every node, emitting
  /// every deferred match already sealed strictly before it. This is the
  /// hot-swap boundary flush: afterwards a removed query's sink has emitted
  /// exactly the matches whose fate was decided before the removal point,
  /// and everything still pending can be exported to the successor plan.
  void FlushSessionAt(Timestamp watermark);

  /// Ends the session WITHOUT the final flush and returns the result so
  /// far; node runtimes keep their live state for ExportState handoff.
  RunResult SuspendSession();

  /// Ends the session with the final flush (all windows expire), collects
  /// node stats and exports metrics — the streaming tail of RunSpan.
  RunResult FinishSession();

  /// Moves the matches accumulated since BeginSession (or the previous
  /// drain) out of the active session, keyed by sink name. Counts in the
  /// eventual session result stay cumulative; only the retained events are
  /// handed off. This is `motto serve`'s checkpoint outbox: matches leave
  /// the engine in bounded batches instead of accruing for the process
  /// lifetime, and each batch becomes durable with the snapshot that
  /// captured it (DESIGN.md §15).
  std::unordered_map<std::string, std::vector<Event>> DrainSessionOutput();

  /// Node runtime accessor for state migration (ExportState/ImportState).
  NodeRuntime* runtime(int32_t node) {
    return runtimes_[static_cast<size_t>(node)].get();
  }

  /// Live per-sink emission facts of the active session, parallel to
  /// Jqp::sinks. Counts are cumulative since BeginSession and unaffected by
  /// DrainSessionOutput. Engine-thread only (same discipline as Feed).
  const std::vector<SinkTelemetry>& session_sink_telemetry() const {
    return sink_telemetry_;
  }

  /// Copies the active session's per-node counters so far (events in/out
  /// plus each runtime's arena/partial counters) without disturbing the
  /// session. Engine-thread only; `out` is overwritten.
  void SnapshotSessionNodeStats(std::vector<NodeStats>* out) const;

  /// Cumulative per-sink match counts of the active session (survives
  /// DrainSessionOutput). Engine-thread only.
  const std::unordered_map<std::string, uint64_t>& session_sink_counts()
      const {
    return session_result_.sink_counts;
  }

  /// Per-sink add-point visibility horizons, parallel to Jqp::sinks: a sink
  /// with horizon h only collects matches with begin() >= h, so a query
  /// added mid-stream sees exactly the matches whose constituents all
  /// arrive at or after its add point (begin() is the earliest constituent
  /// timestamp). Empty (the default) disables the filter entirely. Applies
  /// to Run/RunSpan and sessions alike and persists across runs.
  void SetSinkBeginHorizons(std::vector<Timestamp> horizons);

  const Jqp& jqp() const { return jqp_; }

 private:
  explicit Executor(Jqp jqp);

  /// One executor round: watermark + this round's inputs on every activated
  /// node in topo order, then sink collection (shared by the batch and
  /// session paths; reads session_options_/session_result_/session_seq_).
  void ProcessRound(const Event* raw, Timestamp watermark, bool activate_all);

  Jqp jqp_;
  std::vector<int32_t> topo_order_;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;
  /// raw_interest_[type] lists nodes that must see raw events of that type;
  /// dense by type id so per-event routing is an indexed load, not a hash
  /// probe. Types beyond the table are of interest to no node.
  std::vector<std::vector<int32_t>> raw_interest_;
  /// Transposed interest: per node, whether it reads the raw channel at all.
  std::vector<bool> reads_raw_;
  /// consumers_[i] lists nodes reading node i's output (plan-static).
  std::vector<std::vector<int32_t>> consumers_;
  /// movable_sink_[i] is true when node i's output buffer feeds exactly one
  /// sink and no downstream node, so collected matches can be moved out of
  /// the buffer instead of copied.
  std::vector<bool> movable_sink_;

  // Per-run scratch, reused across Run() calls (Run is not re-entrant; node
  // runtimes are stateful anyway).
  std::vector<std::vector<Event>> buffers_;
  std::vector<uint64_t> raw_stamp_;
  std::vector<uint64_t> active_stamp_;

  /// Sink-level add-point filter (SetSinkBeginHorizons); empty = off.
  std::vector<Timestamp> sink_begin_horizons_;

  /// Per-sink live emission facts, parallel to Jqp::sinks; reset per
  /// session (session_sink_telemetry).
  std::vector<SinkTelemetry> sink_telemetry_;

  // Active-session state (also carries one RunSpan invocation).
  ExecutorOptions session_options_;
  RunResult session_result_;
  uint64_t session_seq_ = 0;
  bool session_active_ = false;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_EXECUTOR_H_
