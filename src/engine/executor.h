#ifndef MOTTO_ENGINE_EXECUTOR_H_
#define MOTTO_ENGINE_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/graph.h"
#include "engine/runtime.h"
#include "event/stream.h"

namespace motto {

/// Per-node counters collected by a run.
struct NodeStats {
  uint64_t events_in = 0;
  uint64_t events_out = 0;
  /// Wall time spent inside this node; only filled when
  /// ExecutorOptions::collect_node_timing is set.
  double busy_seconds = 0.0;
};

/// Outcome of replaying one stream through a JQP.
struct RunResult {
  /// Matches per user query (sink), in emission order. Empty when the run
  /// used ExecutorOptions::count_matches_only.
  std::unordered_map<std::string, std::vector<Event>> sink_events;
  /// Match counts per sink (always filled).
  std::unordered_map<std::string, uint64_t> sink_counts;
  uint64_t raw_events = 0;
  double elapsed_seconds = 0.0;
  std::vector<NodeStats> node_stats;

  /// Raw input events per second of wall time.
  double ThroughputEps() const {
    return elapsed_seconds > 0 ? static_cast<double>(raw_events) /
                                     elapsed_seconds
                               : 0.0;
  }

  /// Total matches across all sinks.
  uint64_t TotalMatches() const;
};

struct ExecutorOptions {
  /// Record per-node busy time (adds two clock reads per node activation;
  /// use on measurement runs, not throughput runs).
  bool collect_node_timing = false;
  /// Count sink matches without retaining the match events. Throughput
  /// benches use this so result accumulation (identical across plans) does
  /// not dilute the measured differences.
  bool count_matches_only = false;
};

/// Single-threaded JQP executor. Replays a timestamp-ordered primitive
/// stream through the plan's nodes in topological order, advancing the
/// watermark to each raw event's timestamp.
class Executor {
 public:
  /// Validates the plan and instantiates node runtimes.
  static Result<Executor> Create(Jqp jqp);

  Executor(Executor&&) = default;
  Executor& operator=(Executor&&) = default;

  /// Replays `stream` (validated) and returns per-sink matches and timings.
  /// Can be called repeatedly; node state is reset per run.
  Result<RunResult> Run(const EventStream& stream,
                        const ExecutorOptions& options = ExecutorOptions{});

  const Jqp& jqp() const { return jqp_; }

 private:
  explicit Executor(Jqp jqp);

  Jqp jqp_;
  std::vector<int32_t> topo_order_;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;
  /// raw_interest_[type] lists nodes that must see raw events of that type.
  std::unordered_map<EventTypeId, std::vector<int32_t>> raw_interest_;
  /// Transposed interest: per node, whether it reads the raw channel at all.
  std::vector<bool> reads_raw_;
};

}  // namespace motto

#endif  // MOTTO_ENGINE_EXECUTOR_H_
