#include <algorithm>
#include <memory>

#include "common/check.h"
#include "engine/matcher.h"
#include "engine/runtime.h"

namespace motto {

namespace {

/// Filter_sc: keeps composites whose constituents, sorted by timestamp, are
/// strictly ordered and carry exactly the required type sequence.
class OrderFilterRuntime : public NodeRuntime {
 public:
  explicit OrderFilterRuntime(const OrderFilterSpec& spec) : spec_(spec) {}

  void OnWatermark(Timestamp, std::vector<Event>*) override {}

  void OnEvent(Channel channel, const Event& event,
               std::vector<Event>* out) override {
    MOTTO_DCHECK(channel != kRawChannel);
    (void)channel;
    const std::vector<Constituent>& view = event.constituents_or(self_scratch_);
    if (view.size() != spec_.required_order.size()) return;
    parts_scratch_.assign(view.begin(), view.end());
    std::sort(parts_scratch_.begin(), parts_scratch_.end(),
              [](const Constituent& a, const Constituent& b) {
                return a.ts < b.ts;
              });
    for (size_t i = 0; i < parts_scratch_.size(); ++i) {
      if (parts_scratch_[i].type != spec_.required_order[i]) return;
      if (i > 0 && parts_scratch_[i - 1].ts >= parts_scratch_[i].ts) return;
    }
    if (!spec_.relabel) {
      out->push_back(event);
      return;
    }
    for (size_t i = 0; i < parts_scratch_.size(); ++i) {
      parts_scratch_[i].slot = static_cast<int32_t>(i);
    }
    out->push_back(Event::Composite(spec_.output_type, parts_scratch_,
                                    event.end(), event.begin()));
  }

  void Reset() override {}

 private:
  OrderFilterSpec spec_;
  // Reused across OnEvent calls; events passing the filter copy out of the
  // scratch exactly once, in Event::Composite.
  std::vector<Constituent> self_scratch_;
  std::vector<Constituent> parts_scratch_;
};

/// Window mark-point filter: keeps composites that fit the consumer window.
class SpanFilterRuntime : public NodeRuntime {
 public:
  explicit SpanFilterRuntime(const SpanFilterSpec& spec) : spec_(spec) {}

  void OnWatermark(Timestamp, std::vector<Event>*) override {}

  void OnEvent(Channel channel, const Event& event,
               std::vector<Event>* out) override {
    MOTTO_DCHECK(channel != kRawChannel);
    (void)channel;
    if (event.span() > spec_.max_span) return;
    if (spec_.retype == kInvalidEventType || event.is_primitive()) {
      out->push_back(event);
      return;
    }
    out->push_back(Event::Composite(spec_.retype, event.constituents(),
                                    event.end(), event.begin()));
  }

  void Reset() override {}

 private:
  SpanFilterSpec spec_;
};

}  // namespace

std::unique_ptr<NodeRuntime> MakeNodeRuntime(const NodeSpec& spec) {
  if (const auto* pattern = std::get_if<PatternSpec>(&spec)) {
    return std::make_unique<PatternMatcher>(*pattern);
  }
  if (const auto* order = std::get_if<OrderFilterSpec>(&spec)) {
    return std::make_unique<OrderFilterRuntime>(*order);
  }
  const auto* span = std::get_if<SpanFilterSpec>(&spec);
  MOTTO_CHECK(span != nullptr);
  return std::make_unique<SpanFilterRuntime>(*span);
}

}  // namespace motto
