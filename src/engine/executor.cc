#include "engine/executor.h"

#include <chrono>
#include <limits>
#include <unordered_set>

#include "common/check.h"

namespace motto {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr Timestamp kFinalWatermark =
    std::numeric_limits<Timestamp>::max() / 4;

}  // namespace

uint64_t RunResult::TotalMatches() const {
  uint64_t total = 0;
  for (const auto& [name, count] : sink_counts) total += count;
  return total;
}

Executor::Executor(Jqp jqp) : jqp_(std::move(jqp)) {}

Result<Executor> Executor::Create(Jqp jqp) {
  MOTTO_RETURN_IF_ERROR(jqp.Validate());
  Executor executor(std::move(jqp));
  MOTTO_ASSIGN_OR_RETURN(executor.topo_order_, executor.jqp_.TopoOrder());
  executor.reads_raw_.assign(executor.jqp_.nodes.size(), false);
  for (size_t i = 0; i < executor.jqp_.nodes.size(); ++i) {
    const JqpNode& node = executor.jqp_.nodes[i];
    executor.runtimes_.push_back(MakeNodeRuntime(node.spec));
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      std::unordered_set<EventTypeId> types;
      for (const OperandBinding& binding : pattern->operands) {
        if (binding.channel == kRawChannel) {
          types.insert(binding.types.begin(), binding.types.end());
        }
      }
      for (EventTypeId t : pattern->negated) types.insert(t);
      for (EventTypeId t : types) {
        executor.raw_interest_[t].push_back(static_cast<int32_t>(i));
        executor.reads_raw_[i] = true;
      }
    }
  }
  return executor;
}

Result<RunResult> Executor::Run(const EventStream& stream,
                                const ExecutorOptions& options) {
  MOTTO_RETURN_IF_ERROR(ValidateStream(stream));
  for (auto& runtime : runtimes_) runtime->Reset();

  size_t n = jqp_.nodes.size();
  RunResult result;
  result.raw_events = stream.size();
  result.node_stats.assign(n, NodeStats{});
  for (const Jqp::Sink& sink : jqp_.sinks) {
    if (!options.count_matches_only) {
      result.sink_events.emplace(sink.query_name, std::vector<Event>{});
    }
    result.sink_counts.emplace(sink.query_name, 0);
  }

  std::vector<std::vector<Event>> buffers(n);
  std::vector<uint64_t> raw_stamp(n, 0);
  std::vector<uint64_t> active_stamp(n, 0);
  // Consumers of each node, for activation propagation.
  std::vector<std::vector<int32_t>> consumers(n);
  for (size_t i = 0; i < n; ++i) {
    for (int32_t input : jqp_.nodes[i].inputs) {
      consumers[static_cast<size_t>(input)].push_back(static_cast<int32_t>(i));
    }
  }
  uint64_t seq = 0;

  Clock::time_point run_start = Clock::now();

  // Only nodes touched this round run: nodes routed the raw event, nodes
  // whose upstream emitted, and (on the final flush) everyone. Skipping idle
  // nodes is safe: watermark advancement only matters when a node processes
  // input or flushes deferred negation matches, and the latter is driven by
  // negated-type arrivals (routed) or the final flush.
  auto process_round = [&](const Event* raw, Timestamp watermark,
                           bool activate_all) {
    if (activate_all) {
      for (size_t i = 0; i < n; ++i) active_stamp[i] = seq;
    }
    bool any_sink_output = false;
    for (int32_t idx : topo_order_) {
      size_t ui = static_cast<size_t>(idx);
      if (active_stamp[ui] != seq) continue;
      NodeRuntime& runtime = *runtimes_[ui];
      const JqpNode& node = jqp_.nodes[ui];
      std::vector<Event>& out = buffers[ui];
      out.clear();
      Clock::time_point node_start;
      if (options.collect_node_timing) node_start = Clock::now();
      runtime.OnWatermark(watermark, &out);
      if (raw != nullptr && raw_stamp[ui] == seq) {
        runtime.OnEvent(kRawChannel, *raw, &out);
        ++result.node_stats[ui].events_in;
      }
      for (size_t c = 0; c < node.inputs.size(); ++c) {
        size_t input = static_cast<size_t>(node.inputs[c]);
        if (active_stamp[input] != seq) continue;
        const std::vector<Event>& upstream = buffers[input];
        Channel channel = static_cast<Channel>(c + 1);
        for (const Event& ev : upstream) {
          runtime.OnEvent(channel, ev, &out);
        }
        result.node_stats[ui].events_in += upstream.size();
      }
      if (options.collect_node_timing) {
        result.node_stats[ui].busy_seconds += SecondsSince(node_start);
      }
      if (!out.empty()) {
        result.node_stats[ui].events_out += out.size();
        any_sink_output = true;
        for (int32_t consumer : consumers[ui]) {
          active_stamp[static_cast<size_t>(consumer)] = seq;
        }
      }
    }
    if (!any_sink_output) return;
    for (const Jqp::Sink& sink : jqp_.sinks) {
      size_t node = static_cast<size_t>(sink.node);
      if (active_stamp[node] != seq || buffers[node].empty()) continue;
      const std::vector<Event>& out = buffers[node];
      result.sink_counts[sink.query_name] += out.size();
      if (!options.count_matches_only) {
        auto& collected = result.sink_events[sink.query_name];
        collected.insert(collected.end(), out.begin(), out.end());
      }
    }
  };

  for (const Event& raw : stream) {
    ++seq;
    auto interest = raw_interest_.find(raw.type());
    if (interest != raw_interest_.end()) {
      for (int32_t idx : interest->second) {
        raw_stamp[static_cast<size_t>(idx)] = seq;
        active_stamp[static_cast<size_t>(idx)] = seq;
      }
    }
    process_round(&raw, raw.begin(), /*activate_all=*/false);
  }
  // Final flush so window-expiry (NEG) emissions at the stream tail appear.
  ++seq;
  process_round(nullptr, kFinalWatermark, /*activate_all=*/true);

  result.elapsed_seconds = SecondsSince(run_start);
  return result;
}

}  // namespace motto
