#include "engine/executor.h"

#include <chrono>
#include <limits>
#include <string>
#include <unordered_set>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace motto {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr Timestamp kFinalWatermark =
    std::numeric_limits<Timestamp>::max() / 4;

}  // namespace

uint64_t RunResult::TotalMatches() const {
  uint64_t total = 0;
  for (const auto& [name, count] : sink_counts) total += count;
  return total;
}

void ExportRunMetrics(const RunResult& result,
                      obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (size_t i = 0; i < result.node_stats.size(); ++i) {
    const NodeStats& stats = result.node_stats[i];
    std::string prefix = "node." + std::to_string(i);
    registry->GetCounter(prefix + ".events_in")->Add(stats.events_in);
    registry->GetCounter(prefix + ".events_out")->Add(stats.events_out);
    registry->GetGauge(prefix + ".busy_seconds")->Set(stats.busy_seconds);
    if (stats.arena_chunk_allocs + stats.arena_chunk_reuses +
            stats.arena_live_high_water >
        0) {
      registry->GetCounter(prefix + ".arena_chunk_allocs")
          ->Add(stats.arena_chunk_allocs);
      registry->GetCounter(prefix + ".arena_chunk_reuses")
          ->Add(stats.arena_chunk_reuses);
      registry->GetGauge(prefix + ".arena_live_high_water")
          ->Set(static_cast<double>(stats.arena_live_high_water));
      registry->GetGauge(prefix + ".arena_slab_high_water")
          ->Set(static_cast<double>(stats.arena_slab_high_water));
    }
  }
  registry->GetCounter("run.raw_events")->Add(result.raw_events);
  registry->GetCounter("run.matches")->Add(result.TotalMatches());
  registry->GetGauge("run.elapsed_seconds")->Set(result.elapsed_seconds);
  if (result.trace_dropped_spans > 0) {
    registry->GetCounter("trace.dropped_spans")
        ->Add(result.trace_dropped_spans);
  }
  const ShardedRunStats& sharded = result.sharded;
  if (sharded.shards > 0) {
    registry->GetGauge("shard.count")
        ->Set(static_cast<double>(sharded.shards));
    registry->GetGauge("shard.threads")
        ->Set(static_cast<double>(sharded.threads));
    registry->GetGauge("shard.groups")
        ->Set(static_cast<double>(sharded.groups));
    registry->GetGauge("shard.skew")->Set(sharded.skew);
    registry->GetGauge("shard.max_busy_seconds")
        ->Set(sharded.max_busy_seconds);
    registry->GetGauge("shard.mean_busy_seconds")
        ->Set(sharded.mean_busy_seconds);
    for (const ShardRunStats& shard : sharded.per_shard) {
      std::string prefix = "shard." + std::to_string(shard.shard);
      registry->GetCounter(prefix + ".owned_events")->Add(shard.owned_events);
      registry->GetCounter(prefix + ".context_events")
          ->Add(shard.context_events);
      registry->GetCounter(prefix + ".matches")->Add(shard.matches);
      registry->GetGauge(prefix + ".busy_seconds")->Set(shard.busy_seconds);
    }
  }
  const ParallelRunStats& parallel = result.parallel;
  if (parallel.threads > 0) {
    registry->GetGauge("sched.threads")
        ->Set(static_cast<double>(parallel.threads));
    registry->GetCounter("sched.batches")->Add(parallel.batches);
    registry->GetCounter("sched.node_activations")
        ->Add(parallel.node_activations);
    registry->GetCounter("sched.worker_parks")->Add(parallel.worker_parks);
    registry->GetCounter("sched.handoffs")->Add(parallel.handoffs);
    registry->GetCounter("sched.backpressure_stalls")
        ->Add(parallel.backpressure_stalls);
    registry->GetGauge("sched.max_ready_depth")
        ->Set(static_cast<double>(parallel.max_ready_depth));
    registry->GetGauge("sched.max_pipe_depth")
        ->Set(static_cast<double>(parallel.max_pipe_depth));
    registry->GetGauge("sched.pool_epochs")
        ->Set(static_cast<double>(parallel.pool_epochs));
  }
}

Executor::Executor(Jqp jqp) : jqp_(std::move(jqp)) {}

Result<Executor> Executor::Create(Jqp jqp) {
  MOTTO_RETURN_IF_ERROR(jqp.Validate());
  Executor executor(std::move(jqp));
  MOTTO_ASSIGN_OR_RETURN(executor.topo_order_, executor.jqp_.TopoOrder());
  size_t n = executor.jqp_.nodes.size();
  executor.reads_raw_.assign(n, false);
  executor.consumers_.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    const JqpNode& node = executor.jqp_.nodes[i];
    executor.runtimes_.push_back(MakeNodeRuntime(node.spec));
    for (int32_t input : node.inputs) {
      executor.consumers_[static_cast<size_t>(input)].push_back(
          static_cast<int32_t>(i));
    }
    if (const auto* pattern = std::get_if<PatternSpec>(&node.spec)) {
      std::unordered_set<EventTypeId> types;
      for (const OperandBinding& binding : pattern->operands) {
        if (binding.channel == kRawChannel) {
          types.insert(binding.types.begin(), binding.types.end());
        }
      }
      for (EventTypeId t : pattern->negated) types.insert(t);
      for (EventTypeId t : types) {
        if (static_cast<size_t>(t) >= executor.raw_interest_.size()) {
          executor.raw_interest_.resize(static_cast<size_t>(t) + 1);
        }
        executor.raw_interest_[static_cast<size_t>(t)].push_back(
            static_cast<int32_t>(i));
        executor.reads_raw_[i] = true;
      }
    }
  }
  std::vector<int> sink_refs(n, 0);
  for (const Jqp::Sink& sink : executor.jqp_.sinks) {
    ++sink_refs[static_cast<size_t>(sink.node)];
  }
  executor.movable_sink_.assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    executor.movable_sink_[i] =
        sink_refs[i] == 1 && executor.consumers_[i].empty();
  }
  return executor;
}

Result<RunResult> Executor::Run(const EventStream& stream,
                                const ExecutorOptions& options) {
  MOTTO_RETURN_IF_ERROR(ValidateStream(stream));
  return RunSpan(stream.data(), stream.size(), options);
}

RunResult Executor::RunSpan(const Event* events, size_t count,
                            const ExecutorOptions& options) {
  BeginSession(options);
  FeedSession(events, count);
  return FinishSession();
}

void Executor::SetSinkBeginHorizons(std::vector<Timestamp> horizons) {
  MOTTO_CHECK(horizons.empty() || horizons.size() == jqp_.sinks.size())
      << "sink horizons must parallel Jqp::sinks";
  sink_begin_horizons_ = std::move(horizons);
}

void Executor::BeginSession(const ExecutorOptions& options) {
  session_options_ = options;
  session_seq_ = 0;
  session_active_ = true;

  for (auto& runtime : runtimes_) runtime->Reset();

  size_t n = jqp_.nodes.size();
  // (Re-)attach node probes every run: with a registry when metrics are on,
  // with nullptr otherwise so no runtime holds instruments of a past run's
  // registry.
  for (size_t i = 0; i < n; ++i) {
    runtimes_[i]->AttachProbe(options.metrics, "node." + std::to_string(i));
    runtimes_[i]->SetEvalMode(options.eval_order);
  }
  obs::TraceSink* trace = options.trace;
  if (trace != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      trace->NameThread(static_cast<int64_t>(i),
                        jqp_.NodeLabel(static_cast<int32_t>(i)));
    }
    trace->NameThread(static_cast<int64_t>(n), "stream");  // Watermark row.
  }

  session_result_ = RunResult{};
  session_result_.node_stats.assign(n, NodeStats{});
  sink_telemetry_.assign(jqp_.sinks.size(), SinkTelemetry{});
  for (const Jqp::Sink& sink : jqp_.sinks) {
    if (!options.count_matches_only) {
      session_result_.sink_events.emplace(sink.query_name,
                                          std::vector<Event>{});
    }
    session_result_.sink_counts.emplace(sink.query_name, 0);
  }

  // Round-local state lives in member scratch: buffers keep their capacity
  // across rounds and across Run() calls, so the steady state reuses
  // storage instead of reallocating per round.
  buffers_.resize(n);
  for (auto& buffer : buffers_) buffer.clear();
  raw_stamp_.assign(n, 0);
  active_stamp_.assign(n, 0);
}

// Only nodes touched this round run: nodes routed the raw event, nodes
// whose upstream emitted, and (on a flush) everyone. Skipping idle nodes is
// safe: watermark advancement only matters when a node processes input or
// flushes deferred negation matches, and the latter is driven by
// negated-type arrivals (routed) or an explicit flush round.
void Executor::ProcessRound(const Event* raw, Timestamp watermark,
                            bool activate_all) {
  size_t n = jqp_.nodes.size();
  const ExecutorOptions& options = session_options_;
  obs::TraceSink* trace = options.trace;
  RunResult& result = session_result_;
  const uint64_t seq = session_seq_;
  if (activate_all) {
    for (size_t i = 0; i < n; ++i) active_stamp_[i] = seq;
  }
  bool any_sink_output = false;
  for (int32_t idx : topo_order_) {
    size_t ui = static_cast<size_t>(idx);
    if (active_stamp_[ui] != seq) continue;
    NodeRuntime& runtime = *runtimes_[ui];
    const JqpNode& node = jqp_.nodes[ui];
    std::vector<Event>& out = buffers_[ui];
    out.clear();
    // When tracing, the span's begin/end double as the busy-time clock
    // reads so the traced and untraced timing paths cost the same.
    double span_start = 0.0;
    Clock::time_point node_start;
    if (trace != nullptr) {
      span_start = trace->NowMicros();
    } else if (options.collect_node_timing) {
      node_start = Clock::now();
    }
    runtime.OnWatermark(watermark, &out);
    if (raw != nullptr && raw_stamp_[ui] == seq) {
      runtime.OnEvent(kRawChannel, *raw, &out);
      ++result.node_stats[ui].events_in;
    }
    for (size_t c = 0; c < node.inputs.size(); ++c) {
      size_t input = static_cast<size_t>(node.inputs[c]);
      if (active_stamp_[input] != seq) continue;
      const std::vector<Event>& upstream = buffers_[input];
      Channel channel = static_cast<Channel>(c + 1);
      for (const Event& ev : upstream) {
        runtime.OnEvent(channel, ev, &out);
      }
      result.node_stats[ui].events_in += upstream.size();
    }
    if (trace != nullptr) {
      double span_end = trace->NowMicros();
      trace->Span("round", "node", static_cast<int64_t>(ui), span_start,
                  span_end - span_start);
      result.node_stats[ui].busy_seconds += (span_end - span_start) * 1e-6;
    } else if (options.collect_node_timing) {
      result.node_stats[ui].busy_seconds += SecondsSince(node_start);
    }
    if (!out.empty()) {
      result.node_stats[ui].events_out += out.size();
      any_sink_output = true;
      for (int32_t consumer : consumers_[ui]) {
        active_stamp_[static_cast<size_t>(consumer)] = seq;
      }
    }
  }
  if (!any_sink_output) return;
  for (size_t s = 0; s < jqp_.sinks.size(); ++s) {
    const Jqp::Sink& sink = jqp_.sinks[s];
    size_t node = static_cast<size_t>(sink.node);
    if (active_stamp_[node] != seq || buffers_[node].empty()) continue;
    std::vector<Event>& out = buffers_[node];
    const Timestamp begin_horizon =
        s < sink_begin_horizons_.size()
            ? sink_begin_horizons_[s]
            : std::numeric_limits<Timestamp>::min();
    if (options.sink_ranges != nullptr) {
      // Time-sliced shard: keep only matches whose attribution key this
      // shard owns; everything else is context warm-up another shard (or
      // no shard) is responsible for.
      const SinkEmitRange& range = (*options.sink_ranges)[s];
      uint64_t kept = 0;
      for (Event& ev : out) {
        Timestamp key = range.deferred_window >= 0
                            ? ev.begin() + range.deferred_window
                            : ev.end();
        if (key <= range.min_exclusive || key > range.max_inclusive) {
          continue;
        }
        if (ev.begin() < begin_horizon) continue;
        ++kept;
        if (ev.end() > sink_telemetry_[s].last_emit_ts) {
          sink_telemetry_[s].last_emit_ts = ev.end();
        }
        if (!options.count_matches_only) {
          auto& collected = result.sink_events[sink.query_name];
          if (movable_sink_[node]) {
            collected.push_back(std::move(ev));
          } else {
            collected.push_back(ev);
          }
        }
      }
      result.sink_counts[sink.query_name] += kept;
      sink_telemetry_[s].matches += kept;
      continue;
    }
    if (begin_horizon > std::numeric_limits<Timestamp>::min()) {
      // Add-point visibility (DESIGN.md §14): a sink born mid-stream only
      // owns matches whose earliest constituent arrived at or after its
      // birth; earlier-rooted matches belong to no plan epoch of this sink.
      uint64_t kept = 0;
      for (Event& ev : out) {
        if (ev.begin() < begin_horizon) continue;
        ++kept;
        if (ev.end() > sink_telemetry_[s].last_emit_ts) {
          sink_telemetry_[s].last_emit_ts = ev.end();
        }
        if (!options.count_matches_only) {
          auto& collected = result.sink_events[sink.query_name];
          if (movable_sink_[node]) {
            collected.push_back(std::move(ev));
          } else {
            collected.push_back(ev);
          }
        }
      }
      result.sink_counts[sink.query_name] += kept;
      sink_telemetry_[s].matches += kept;
      continue;
    }
    result.sink_counts[sink.query_name] += out.size();
    {
      SinkTelemetry& st = sink_telemetry_[s];
      st.matches += out.size();
      for (const Event& ev : out) {
        if (ev.end() > st.last_emit_ts) st.last_emit_ts = ev.end();
      }
    }
    if (!options.count_matches_only) {
      auto& collected = result.sink_events[sink.query_name];
      if (movable_sink_[node]) {
        // Terminal single-sink node: nothing else reads this buffer, so
        // matches move instead of deep-copying their constituent vectors.
        collected.insert(collected.end(),
                         std::make_move_iterator(out.begin()),
                         std::make_move_iterator(out.end()));
      } else {
        collected.insert(collected.end(), out.begin(), out.end());
      }
    }
  }
}

void Executor::FeedSession(const Event* events, size_t count) {
  MOTTO_CHECK(session_active_) << "FeedSession without BeginSession";
  obs::TraceSink* trace = session_options_.trace;
  const int64_t stream_tid = static_cast<int64_t>(jqp_.nodes.size());
  session_result_.raw_events += count;
  Clock::time_point feed_start = Clock::now();
  for (size_t pos = 0; pos < count; ++pos) {
    const Event& raw = events[pos];
    ++session_seq_;
    if (trace != nullptr && (session_seq_ & 511) == 1) {
      // Sampled watermark ticks anchor stream time to wall time on the
      // trace's "stream" row without drowning the view in instants.
      trace->Instant("watermark", stream_tid, trace->NowMicros(),
                     "{\"ts_us\":" + std::to_string(raw.begin()) + "}");
    }
    bool routed = false;
    if (static_cast<size_t>(raw.type()) < raw_interest_.size()) {
      for (int32_t idx : raw_interest_[static_cast<size_t>(raw.type())]) {
        raw_stamp_[static_cast<size_t>(idx)] = session_seq_;
        active_stamp_[static_cast<size_t>(idx)] = session_seq_;
        routed = true;
      }
    }
    // No node reads this type: the round would activate nothing (deferred
    // negation flushes are driven by negated-type arrivals, which route),
    // so skip the topo scan entirely. Sub-plan shards see mostly foreign
    // types, which makes this the sharded path's fast lane.
    if (!routed) continue;
    ProcessRound(&raw, raw.begin(), /*activate_all=*/false);
  }
  session_result_.elapsed_seconds += SecondsSince(feed_start);
}

void Executor::FlushSessionAt(Timestamp watermark) {
  MOTTO_CHECK(session_active_) << "FlushSessionAt without BeginSession";
  Clock::time_point start = Clock::now();
  ++session_seq_;
  ProcessRound(nullptr, watermark, /*activate_all=*/true);
  session_result_.elapsed_seconds += SecondsSince(start);
}

std::unordered_map<std::string, std::vector<Event>>
Executor::DrainSessionOutput() {
  MOTTO_CHECK(session_active_) << "DrainSessionOutput without BeginSession";
  std::unordered_map<std::string, std::vector<Event>> drained;
  drained.swap(session_result_.sink_events);
  // Re-seed the empty per-sink vectors so later rounds append in place and
  // FinishSession still reports every sink.
  if (!session_options_.count_matches_only) {
    for (const Jqp::Sink& sink : jqp_.sinks) {
      session_result_.sink_events.emplace(sink.query_name,
                                          std::vector<Event>{});
    }
  }
  return drained;
}

RunResult Executor::SuspendSession() {
  MOTTO_CHECK(session_active_) << "SuspendSession without BeginSession";
  session_active_ = false;
  for (size_t i = 0; i < jqp_.nodes.size(); ++i) {
    runtimes_[i]->CollectStats(&session_result_.node_stats[i]);
  }
  if (session_options_.trace != nullptr) {
    session_result_.trace_dropped_spans =
        session_options_.trace->dropped_events();
  }
  return std::move(session_result_);
}

void Executor::SnapshotSessionNodeStats(std::vector<NodeStats>* out) const {
  *out = session_result_.node_stats;
  for (size_t i = 0; i < runtimes_.size() && i < out->size(); ++i) {
    runtimes_[i]->CollectStats(&(*out)[i]);
  }
}

RunResult Executor::FinishSession() {
  MOTTO_CHECK(session_active_) << "FinishSession without BeginSession";
  obs::TraceSink* trace = session_options_.trace;
  Clock::time_point start = Clock::now();
  // Final flush so window-expiry (NEG) emissions at the stream tail appear.
  ++session_seq_;
  if (trace != nullptr) {
    trace->Instant("final_flush", static_cast<int64_t>(jqp_.nodes.size()),
                   trace->NowMicros());
  }
  ProcessRound(nullptr, kFinalWatermark, /*activate_all=*/true);
  session_result_.elapsed_seconds += SecondsSince(start);
  session_active_ = false;
  for (size_t i = 0; i < jqp_.nodes.size(); ++i) {
    runtimes_[i]->CollectStats(&session_result_.node_stats[i]);
  }
  if (trace != nullptr) {
    session_result_.trace_dropped_spans = trace->dropped_events();
  }
  ExportRunMetrics(session_result_, session_options_.metrics);
  return std::move(session_result_);
}

}  // namespace motto
