#ifndef MOTTO_CCL_LEXER_H_
#define MOTTO_CCL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace motto::ccl {

enum class TokenKind {
  kIdent,
  kInt,
  kNumber,  // Decimal literal (predicate constants).
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kAmp,
  kPipe,
  kBang,
  kColon,
  kStar,
  kLt,      // <
  kLe,      // <=
  kGt,      // >
  kGe,      // >=
  kEqEq,    // == (or =)
  kNe,      // !=
  kMinus,   // - (negative predicate constants)
  kEof,
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // Identifier spelling / number digits.
  int64_t int_value = 0;
  double number_value = 0.0;  // For kInt and kNumber.
  size_t offset = 0;    // Byte offset in the input, for error messages.
};

/// Splits CCL text into tokens. Returns InvalidArgument on characters outside
/// the CCL alphabet. The token list always ends with one kEof token.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace motto::ccl

#endif  // MOTTO_CCL_LEXER_H_
