#include "ccl/lexer.h"

#include <cctype>

#include "common/parse.h"

namespace motto::ccl {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEqEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_')) {
        ++j;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = std::string(text.substr(i, j - i));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      bool is_decimal = j + 1 < text.size() && text[j] == '.' &&
                        std::isdigit(static_cast<unsigned char>(text[j + 1]));
      if (is_decimal) {
        ++j;
        while (j < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
        tok.kind = TokenKind::kNumber;
        tok.text = std::string(text.substr(i, j - i));
        auto value = ParseDouble(tok.text);
        if (!value.ok()) {
          return InvalidArgumentError(value.status().message() +
                                      " at offset " + std::to_string(i));
        }
        tok.number_value = *value;
      } else {
        tok.kind = TokenKind::kInt;
        tok.text = std::string(text.substr(i, j - i));
        auto value = ParseInt64(tok.text);
        if (!value.ok()) {
          return InvalidArgumentError(value.status().message() +
                                      " at offset " + std::to_string(i));
        }
        tok.int_value = *value;
        tok.number_value = static_cast<double>(*value);
      }
      i = j;
    } else {
      switch (c) {
        case '(':
          tok.kind = TokenKind::kLParen;
          break;
        case ')':
          tok.kind = TokenKind::kRParen;
          break;
        case '[':
          tok.kind = TokenKind::kLBracket;
          break;
        case ']':
          tok.kind = TokenKind::kRBracket;
          break;
        case ',':
          tok.kind = TokenKind::kComma;
          break;
        case '&':
          tok.kind = TokenKind::kAmp;
          break;
        case '|':
          tok.kind = TokenKind::kPipe;
          break;
        case '!':
          if (i + 1 < text.size() && text[i + 1] == '=') {
            tok.kind = TokenKind::kNe;
            ++i;
          } else {
            tok.kind = TokenKind::kBang;
          }
          break;
        case '<':
          if (i + 1 < text.size() && text[i + 1] == '=') {
            tok.kind = TokenKind::kLe;
            ++i;
          } else {
            tok.kind = TokenKind::kLt;
          }
          break;
        case '>':
          if (i + 1 < text.size() && text[i + 1] == '=') {
            tok.kind = TokenKind::kGe;
            ++i;
          } else {
            tok.kind = TokenKind::kGt;
          }
          break;
        case '=':
          if (i + 1 < text.size() && text[i + 1] == '=') ++i;
          tok.kind = TokenKind::kEqEq;
          break;
        case '-':
          tok.kind = TokenKind::kMinus;
          break;
        case ':':
          tok.kind = TokenKind::kColon;
          break;
        case '*':
          tok.kind = TokenKind::kStar;
          break;
        default:
          return InvalidArgumentError("unexpected character '" +
                                      std::string(1, c) + "' at offset " +
                                      std::to_string(i));
      }
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.offset = text.size();
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace motto::ccl
