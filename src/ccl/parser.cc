#include "ccl/parser.h"

#include <algorithm>
#include <cctype>

#include "ccl/lexer.h"
#include "common/check.h"

namespace motto::ccl {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<Duration> UnitToMicros(std::string_view unit) {
  for (std::string_view u : {"us", "micro", "micros", "microsecond",
                             "microseconds"}) {
    if (EqualsIgnoreCase(unit, u)) return Duration{1};
  }
  for (std::string_view u : {"ms", "milli", "millis", "millisecond",
                             "milliseconds"}) {
    if (EqualsIgnoreCase(unit, u)) return kMicrosPerMilli;
  }
  for (std::string_view u : {"s", "sec", "secs", "second", "seconds"}) {
    if (EqualsIgnoreCase(unit, u)) return kMicrosPerSecond;
  }
  for (std::string_view u : {"m", "min", "mins", "minute", "minutes"}) {
    if (EqualsIgnoreCase(unit, u)) return kMicrosPerMinute;
  }
  return InvalidArgumentError("unknown time unit '" + std::string(unit) + "'");
}

/// One parsed pattern element, possibly marked with negation. Negated
/// elements must be leaves and are folded into the enclosing operator node.
struct Part {
  PatternExpr expr = PatternExpr::Leaf(kInvalidEventType);
  bool negated = false;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, EventTypeRegistry* registry,
         const ParseOptions& options)
      : tokens_(std::move(tokens)), registry_(registry), options_(options) {}

  Result<Query> ParseQueryTop(std::string name) {
    if (!IsKeyword("SELECT")) {
      return Error("expected SELECT");
    }
    Advance();
    if (Peek().kind != TokenKind::kStar) return Error("expected '*'");
    Advance();
    if (!IsKeyword("FROM")) return Error("expected FROM");
    Advance();
    if (Peek().kind != TokenKind::kIdent) return Error("expected stream name");
    std::string stream = Peek().text;
    Advance();
    if (!IsKeyword("MATCHING")) return Error("expected MATCHING");
    Advance();
    if (Peek().kind != TokenKind::kLBracket) return Error("expected '['");
    Advance();
    MOTTO_ASSIGN_OR_RETURN(Duration window, ParseWindow());
    if (Peek().kind != TokenKind::kColon) return Error("expected ':'");
    Advance();
    MOTTO_ASSIGN_OR_RETURN(PatternExpr pattern, ParsePatternClause());
    if (Peek().kind != TokenKind::kRBracket) return Error("expected ']'");
    Advance();
    if (Peek().kind != TokenKind::kEof) return Error("trailing input");
    Query query;
    query.name = std::move(name);
    query.pattern = std::move(pattern);
    query.window = window;
    return query;
  }

  Result<PatternExpr> ParsePatternTop() {
    MOTTO_ASSIGN_OR_RETURN(PatternExpr pattern, ParsePatternClause());
    if (Peek().kind != TokenKind::kEof) return Error("trailing input");
    return pattern;
  }

  Result<Duration> ParseDurationTop() {
    MOTTO_ASSIGN_OR_RETURN(Duration window, ParseWindow());
    if (Peek().kind != TokenKind::kEof) return Error("trailing input");
    return window;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool IsKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek().text, kw);
  }

  Status Error(std::string message) const {
    return InvalidArgumentError(message + " at offset " +
                                std::to_string(Peek().offset) + " (found " +
                                std::string(TokenKindName(Peek().kind)) + ")");
  }

  Result<Duration> ParseWindow() {
    if (Peek().kind != TokenKind::kInt) return Error("expected window length");
    int64_t count = Peek().int_value;
    Advance();
    if (Peek().kind != TokenKind::kIdent) return Error("expected time unit");
    MOTTO_ASSIGN_OR_RETURN(Duration unit, UnitToMicros(Peek().text));
    Advance();
    return count * unit;
  }

  Result<PatternExpr> ParsePatternClause() {
    MOTTO_ASSIGN_OR_RETURN(Part part, ParseDisj());
    if (part.negated) {
      return InvalidArgumentError("NEG must be used with SEQ or CONJ");
    }
    MOTTO_RETURN_IF_ERROR(ValidatePattern(part.expr));
    return part.expr;
  }

  /// Builds an operator node from parsed parts: negated leaves become the
  /// node's NEG list, everything else its children. Collapses single-child
  /// nodes without negation.
  Result<Part> BuildOperator(PatternOp op, std::vector<Part> parts) {
    std::vector<PatternExpr> children;
    std::vector<PatternExpr> negated;
    for (Part& p : parts) {
      if (p.negated) {
        negated.push_back(std::move(p.expr));
      } else {
        children.push_back(std::move(p.expr));
      }
    }
    if (op == PatternOp::kDisj && !negated.empty()) {
      return InvalidArgumentError("NEG must be used with SEQ or CONJ");
    }
    if (children.size() == 1 && negated.empty()) {
      return Part{std::move(children.front()), false};
    }
    if (children.empty()) {
      return InvalidArgumentError("pattern operator needs at least one "
                                  "non-negated operand");
    }
    return Part{
        PatternExpr::Operator(op, std::move(children), std::move(negated)),
        false};
  }

  // Infix precedence: '|' < '&' < ','.
  Result<Part> ParseDisj() {
    MOTTO_ASSIGN_OR_RETURN(Part first, ParseConj());
    if (Peek().kind != TokenKind::kPipe) return first;
    std::vector<Part> parts;
    parts.push_back(std::move(first));
    while (Peek().kind == TokenKind::kPipe) {
      Advance();
      MOTTO_ASSIGN_OR_RETURN(Part next, ParseConj());
      parts.push_back(std::move(next));
    }
    return BuildOperator(PatternOp::kDisj, std::move(parts));
  }

  Result<Part> ParseConj() {
    MOTTO_ASSIGN_OR_RETURN(Part first, ParseSeq());
    if (Peek().kind != TokenKind::kAmp) return first;
    std::vector<Part> parts;
    parts.push_back(std::move(first));
    while (Peek().kind == TokenKind::kAmp) {
      Advance();
      MOTTO_ASSIGN_OR_RETURN(Part next, ParseSeq());
      parts.push_back(std::move(next));
    }
    return BuildOperator(PatternOp::kConj, std::move(parts));
  }

  Result<Part> ParseSeq() {
    MOTTO_ASSIGN_OR_RETURN(Part first, ParseUnary());
    if (Peek().kind != TokenKind::kComma) return first;
    std::vector<Part> parts;
    parts.push_back(std::move(first));
    while (Peek().kind == TokenKind::kComma) {
      Advance();
      MOTTO_ASSIGN_OR_RETURN(Part next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return BuildOperator(PatternOp::kSeq, std::move(parts));
  }

  Result<Part> ParseUnary() {
    if (Peek().kind == TokenKind::kBang) {
      Advance();
      MOTTO_ASSIGN_OR_RETURN(Part inner, ParseUnary());
      return Negate(std::move(inner));
    }
    return ParsePrimary();
  }

  Result<Part> Negate(Part inner) {
    if (inner.negated) return InvalidArgumentError("double negation");
    if (!inner.expr.is_leaf()) {
      return InvalidArgumentError(
          "NEG supports only primitive event operands");
    }
    inner.negated = true;
    return inner;
  }

  Result<Part> ParsePrimary() {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      MOTTO_ASSIGN_OR_RETURN(Part inner, ParseDisj());
      if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
      Advance();
      return inner;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected event type or pattern");
    }
    const std::string word = Peek().text;
    if (EqualsIgnoreCase(word, "SEQ")) return ParseFunctional(PatternOp::kSeq);
    if (EqualsIgnoreCase(word, "CONJ")) {
      return ParseFunctional(PatternOp::kConj);
    }
    if (EqualsIgnoreCase(word, "DISJ")) {
      return ParseFunctional(PatternOp::kDisj);
    }
    if (EqualsIgnoreCase(word, "NEG")) {
      Advance();
      if (Peek().kind != TokenKind::kLParen) return Error("expected '('");
      Advance();
      MOTTO_ASSIGN_OR_RETURN(Part inner, ParseUnary());
      if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
      Advance();
      return Negate(std::move(inner));
    }
    Advance();
    MOTTO_ASSIGN_OR_RETURN(EventTypeId type, LookupType(word));
    if (Peek().kind == TokenKind::kLBracket) {
      MOTTO_ASSIGN_OR_RETURN(Predicate predicate, ParsePredicateBrackets());
      return Part{PatternExpr::Leaf(type, std::move(predicate)), false};
    }
    return Part{PatternExpr::Leaf(type), false};
  }

  /// Parses "[field cmp number (& field cmp number)*]" after an operand,
  /// e.g. "AAPL[value > 100 & aux <= 5000]". Field aliases: value/price,
  /// aux/volume/size.
  Result<Predicate> ParsePredicateBrackets() {
    Advance();  // '['
    std::vector<Comparison> comparisons;
    while (true) {
      Comparison comparison;
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected predicate field (value/price/aux/volume)");
      }
      const std::string field = Peek().text;
      if (EqualsIgnoreCase(field, "value") || EqualsIgnoreCase(field, "price")) {
        comparison.field = PredicateField::kValue;
      } else if (EqualsIgnoreCase(field, "aux") ||
                 EqualsIgnoreCase(field, "volume") ||
                 EqualsIgnoreCase(field, "size")) {
        comparison.field = PredicateField::kAux;
      } else {
        return Error("unknown predicate field '" + field + "'");
      }
      Advance();
      switch (Peek().kind) {
        case TokenKind::kLt:
          comparison.cmp = PredicateCmp::kLt;
          break;
        case TokenKind::kLe:
          comparison.cmp = PredicateCmp::kLe;
          break;
        case TokenKind::kGt:
          comparison.cmp = PredicateCmp::kGt;
          break;
        case TokenKind::kGe:
          comparison.cmp = PredicateCmp::kGe;
          break;
        case TokenKind::kEqEq:
          comparison.cmp = PredicateCmp::kEq;
          break;
        case TokenKind::kNe:
          comparison.cmp = PredicateCmp::kNe;
          break;
        default:
          return Error("expected comparison operator");
      }
      Advance();
      double sign = 1.0;
      if (Peek().kind == TokenKind::kMinus) {
        sign = -1.0;
        Advance();
      }
      if (Peek().kind != TokenKind::kInt &&
          Peek().kind != TokenKind::kNumber) {
        return Error("expected numeric constant");
      }
      comparison.constant = sign * Peek().number_value;
      Advance();
      comparisons.push_back(comparison);
      if (Peek().kind == TokenKind::kAmp || Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      if (Peek().kind == TokenKind::kRBracket) {
        Advance();
        break;
      }
      return Error("expected '&' or ']' in predicate");
    }
    return Predicate(std::move(comparisons));
  }

  /// Functional form, e.g. SEQ(a, b) / CONJ(a & b) / DISJ(a | b). Arguments
  /// are separated by the operator's canonical separator (',' also accepted
  /// for CONJ/DISJ); mixing separators requires parentheses.
  Result<Part> ParseFunctional(PatternOp op) {
    Advance();  // Operator keyword.
    if (Peek().kind != TokenKind::kLParen) return Error("expected '('");
    Advance();
    TokenKind canonical_sep = op == PatternOp::kSeq    ? TokenKind::kComma
                              : op == PatternOp::kConj ? TokenKind::kAmp
                                                       : TokenKind::kPipe;
    std::vector<Part> parts;
    while (true) {
      MOTTO_ASSIGN_OR_RETURN(Part part, ParseUnary());
      parts.push_back(std::move(part));
      if (Peek().kind == canonical_sep ||
          (Peek().kind == TokenKind::kComma && op != PatternOp::kSeq)) {
        Advance();
        continue;
      }
      if (Peek().kind == TokenKind::kRParen) {
        Advance();
        break;
      }
      return Error("expected argument separator or ')'");
    }
    return BuildOperator(op, std::move(parts));
  }

  Result<EventTypeId> LookupType(const std::string& name) {
    EventTypeId id = registry_->Find(name);
    if (id != kInvalidEventType) {
      if (!registry_->IsPrimitive(id)) {
        return InvalidArgumentError("'" + name +
                                    "' names a composite event type");
      }
      return id;
    }
    if (!options_.register_unknown_types) {
      return NotFoundError("unknown event type '" + name + "'");
    }
    return registry_->RegisterPrimitive(name);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  EventTypeRegistry* registry_;
  ParseOptions options_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, EventTypeRegistry* registry,
                         std::string name, const ParseOptions& options) {
  MOTTO_CHECK(registry != nullptr);
  MOTTO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), registry, options);
  return parser.ParseQueryTop(std::move(name));
}

Result<PatternExpr> ParsePattern(std::string_view text,
                                 EventTypeRegistry* registry,
                                 const ParseOptions& options) {
  MOTTO_CHECK(registry != nullptr);
  MOTTO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), registry, options);
  return parser.ParsePatternTop();
}

Result<Duration> ParseDuration(std::string_view text) {
  MOTTO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  EventTypeRegistry unused;
  Parser parser(std::move(tokens), &unused, ParseOptions{});
  return parser.ParseDurationTop();
}

}  // namespace motto::ccl
