#ifndef MOTTO_CCL_PREDICATE_H_
#define MOTTO_CCL_PREDICATE_H_

#include <string>
#include <vector>

#include "event/event.h"

namespace motto {

/// Payload field a predicate compares. `value` (alias `price`) is the
/// double field, `aux` (aliases `volume`, `size`) the integer field.
enum class PredicateField { kValue, kAux };

enum class PredicateCmp { kLt, kLe, kGt, kGe, kEq, kNe };

std::string_view PredicateFieldName(PredicateField field);
std::string_view PredicateCmpName(PredicateCmp cmp);

/// One comparison against a constant, e.g. `value > 100`.
struct Comparison {
  PredicateField field = PredicateField::kValue;
  PredicateCmp cmp = PredicateCmp::kGt;
  double constant = 0.0;

  bool Matches(const Payload& payload) const;
  std::string ToString() const;

  friend bool operator==(const Comparison& a, const Comparison& b) {
    return a.field == b.field && a.cmp == b.cmp && a.constant == b.constant;
  }
};

/// Conjunction of comparisons on one event's payload — the selection
/// condition of a pattern operand (`AAPL[value > 100 & aux <= 5000]`).
/// The empty predicate is always true. Comparisons are kept in canonical
/// (sorted) order so equal predicates share one representation.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Comparison> comparisons);

  bool empty() const { return comparisons_.empty(); }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }

  bool Matches(const Payload& payload) const;

  /// Stable key, e.g. "aux<=5000&value>100"; empty string when empty.
  std::string CanonicalKey() const;

  /// Human-readable form, e.g. "value > 100 & aux <= 5000" (original order
  /// is not preserved; canonical order is).
  std::string ToString() const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.comparisons_ == b.comparisons_;
  }

 private:
  std::vector<Comparison> comparisons_;
};

}  // namespace motto

#endif  // MOTTO_CCL_PREDICATE_H_
