#ifndef MOTTO_CCL_PARSER_H_
#define MOTTO_CCL_PARSER_H_

#include <string>
#include <string_view>

#include "ccl/pattern.h"
#include "common/result.h"
#include "event/event_type.h"

namespace motto::ccl {

struct ParseOptions {
  /// When true (default), identifiers not yet in the registry are registered
  /// as primitive event types; otherwise unknown identifiers are an error.
  bool register_unknown_types = true;
};

/// Parses a full CCL pattern query:
///
///   SELECT * FROM trades MATCHING [10 seconds : SEQ(E1, E2, NEG(E3))]
///
/// Patterns accept both functional form — SEQ(a, b), CONJ(a & b),
/// DISJ(a | b), NEG(x) — and infix form with precedence `,` (SEQ, tightest),
/// then `&` (CONJ), then `|` (DISJ); `!x` is NEG. Window units: us, ms,
/// s/sec/seconds, m/min/minutes.
Result<Query> ParseQuery(std::string_view text, EventTypeRegistry* registry,
                         std::string name = "",
                         const ParseOptions& options = ParseOptions{});

/// Parses just a pattern expression (no SELECT/window clause).
Result<PatternExpr> ParsePattern(std::string_view text,
                                 EventTypeRegistry* registry,
                                 const ParseOptions& options = ParseOptions{});

/// Parses a window like "10 seconds" into microseconds.
Result<Duration> ParseDuration(std::string_view text);

}  // namespace motto::ccl

#endif  // MOTTO_CCL_PARSER_H_
