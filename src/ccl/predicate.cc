#include "ccl/predicate.h"

#include <algorithm>
#include <cstdio>

namespace motto {

std::string_view PredicateFieldName(PredicateField field) {
  return field == PredicateField::kValue ? "value" : "aux";
}

std::string_view PredicateCmpName(PredicateCmp cmp) {
  switch (cmp) {
    case PredicateCmp::kLt:
      return "<";
    case PredicateCmp::kLe:
      return "<=";
    case PredicateCmp::kGt:
      return ">";
    case PredicateCmp::kGe:
      return ">=";
    case PredicateCmp::kEq:
      return "==";
    case PredicateCmp::kNe:
      return "!=";
  }
  return "?";
}

bool Comparison::Matches(const Payload& payload) const {
  double lhs = field == PredicateField::kValue
                   ? payload.value
                   : static_cast<double>(payload.aux);
  switch (cmp) {
    case PredicateCmp::kLt:
      return lhs < constant;
    case PredicateCmp::kLe:
      return lhs <= constant;
    case PredicateCmp::kGt:
      return lhs > constant;
    case PredicateCmp::kGe:
      return lhs >= constant;
    case PredicateCmp::kEq:
      return lhs == constant;
    case PredicateCmp::kNe:
      return lhs != constant;
  }
  return false;
}

std::string Comparison::ToString() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s %s %.10g",
                std::string(PredicateFieldName(field)).c_str(),
                std::string(PredicateCmpName(cmp)).c_str(), constant);
  return buffer;
}

Predicate::Predicate(std::vector<Comparison> comparisons)
    : comparisons_(std::move(comparisons)) {
  std::sort(comparisons_.begin(), comparisons_.end(),
            [](const Comparison& a, const Comparison& b) {
              if (a.field != b.field) return a.field < b.field;
              if (a.cmp != b.cmp) return a.cmp < b.cmp;
              return a.constant < b.constant;
            });
  comparisons_.erase(std::unique(comparisons_.begin(), comparisons_.end()),
                     comparisons_.end());
}

bool Predicate::Matches(const Payload& payload) const {
  for (const Comparison& comparison : comparisons_) {
    if (!comparison.Matches(payload)) return false;
  }
  return true;
}

std::string Predicate::CanonicalKey() const {
  std::string out;
  for (size_t i = 0; i < comparisons_.size(); ++i) {
    if (i > 0) out += '&';
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s%s%.10g",
                  std::string(PredicateFieldName(comparisons_[i].field)).c_str(),
                  std::string(PredicateCmpName(comparisons_[i].cmp)).c_str(),
                  comparisons_[i].constant);
    out += buffer;
  }
  return out;
}

std::string Predicate::ToString() const {
  std::string out;
  for (size_t i = 0; i < comparisons_.size(); ++i) {
    if (i > 0) out += " & ";
    out += comparisons_[i].ToString();
  }
  return out;
}

}  // namespace motto
