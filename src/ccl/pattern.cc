#include "ccl/pattern.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace motto {

std::string_view PatternOpName(PatternOp op) {
  switch (op) {
    case PatternOp::kSeq:
      return "SEQ";
    case PatternOp::kConj:
      return "CONJ";
    case PatternOp::kDisj:
      return "DISJ";
  }
  return "?";
}

bool IsCommutative(PatternOp op) { return op != PatternOp::kSeq; }

PatternExpr PatternExpr::Leaf(EventTypeId type) {
  return Leaf(type, Predicate{});
}

PatternExpr PatternExpr::Leaf(EventTypeId type, Predicate predicate) {
  PatternExpr e;
  e.kind_ = Kind::kLeaf;
  e.leaf_type_ = type;
  e.leaf_predicate_ = std::move(predicate);
  return e;
}

PatternExpr PatternExpr::Operator(PatternOp op,
                                  std::vector<PatternExpr> children,
                                  std::vector<PatternExpr> negated) {
  PatternExpr e;
  e.kind_ = Kind::kOperator;
  e.op_ = op;
  e.children_ = std::move(children);
  e.negated_ = std::move(negated);
  return e;
}

EventTypeId PatternExpr::leaf_type() const {
  MOTTO_CHECK(kind_ == Kind::kLeaf);
  return leaf_type_;
}

const Predicate& PatternExpr::leaf_predicate() const {
  MOTTO_CHECK(kind_ == Kind::kLeaf);
  return leaf_predicate_;
}

PatternOp PatternExpr::op() const {
  MOTTO_CHECK(kind_ == Kind::kOperator);
  return op_;
}

const std::vector<PatternExpr>& PatternExpr::children() const {
  MOTTO_CHECK(kind_ == Kind::kOperator);
  return children_;
}

const std::vector<PatternExpr>& PatternExpr::negated() const {
  MOTTO_CHECK(kind_ == Kind::kOperator);
  return negated_;
}

bool PatternExpr::IsFlat() const {
  if (kind_ == Kind::kLeaf) return false;
  for (const PatternExpr& c : children_) {
    if (!c.is_leaf()) return false;
  }
  return true;
}

int PatternExpr::NestedLevel() const {
  if (kind_ == Kind::kLeaf) return 0;
  int deepest = 0;
  for (const PatternExpr& c : children_) {
    deepest = std::max(deepest, c.NestedLevel());
  }
  return deepest + 1;
}

std::string PatternExpr::CanonicalKey() const {
  if (kind_ == Kind::kLeaf) {
    std::string out = std::to_string(leaf_type_);
    if (!leaf_predicate_.empty()) {
      out += '[' + leaf_predicate_.CanonicalKey() + ']';
    }
    return out;
  }
  std::string out(PatternOpName(op_));
  out += '(';
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += ',';
    out += children_[i].CanonicalKey();
  }
  for (const PatternExpr& n : negated_) {
    out += ",!";
    out += n.CanonicalKey();
  }
  out += ')';
  return out;
}

std::string PatternExpr::ToString(const EventTypeRegistry& registry) const {
  if (kind_ == Kind::kLeaf) {
    std::string out = registry.NameOf(leaf_type_);
    if (!leaf_predicate_.empty()) {
      out += '[' + leaf_predicate_.ToString() + ']';
    }
    return out;
  }
  std::string out(PatternOpName(op_));
  out += '(';
  const char* sep = op_ == PatternOp::kSeq   ? ", "
                    : op_ == PatternOp::kConj ? " & "
                                              : " | ";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += sep;
    out += children_[i].ToString(registry);
  }
  for (const PatternExpr& n : negated_) {
    out += sep;
    out += "NEG(";
    out += n.ToString(registry);
    out += ')';
  }
  out += ')';
  return out;
}

bool operator==(const PatternExpr& a, const PatternExpr& b) {
  if (a.kind_ != b.kind_) return false;
  if (a.kind_ == PatternExpr::Kind::kLeaf) {
    return a.leaf_type_ == b.leaf_type_ &&
           a.leaf_predicate_ == b.leaf_predicate_;
  }
  return a.op_ == b.op_ && a.children_ == b.children_ &&
         a.negated_ == b.negated_;
}

PatternExpr Canonicalize(const PatternExpr& expr) {
  if (expr.is_leaf()) return expr;
  std::vector<PatternExpr> children;
  children.reserve(expr.children().size());
  for (const PatternExpr& c : expr.children()) {
    children.push_back(Canonicalize(c));
  }
  if (IsCommutative(expr.op())) {
    std::sort(children.begin(), children.end(),
              [](const PatternExpr& x, const PatternExpr& y) {
                return x.CanonicalKey() < y.CanonicalKey();
              });
  }
  std::vector<PatternExpr> negated = expr.negated();
  std::sort(negated.begin(), negated.end(),
            [](const PatternExpr& x, const PatternExpr& y) {
              return x.CanonicalKey() < y.CanonicalKey();
            });
  return PatternExpr::Operator(expr.op(), std::move(children),
                               std::move(negated));
}

Status ValidatePattern(const PatternExpr& expr) {
  if (expr.is_leaf()) {
    if (expr.leaf_type() == kInvalidEventType) {
      return InvalidArgumentError("leaf with invalid event type");
    }
    return Status::Ok();
  }
  if (expr.children().empty()) {
    return InvalidArgumentError("operator node without operands");
  }
  if (expr.op() == PatternOp::kDisj && !expr.negated().empty()) {
    return InvalidArgumentError("NEG must be used with SEQ or CONJ");
  }
  std::unordered_set<std::string> neg_seen;
  for (const PatternExpr& n : expr.negated()) {
    if (!n.is_leaf()) {
      return InvalidArgumentError("NEG supports only primitive operands");
    }
    if (n.leaf_type() == kInvalidEventType) {
      return InvalidArgumentError("NEG of invalid event type");
    }
    if (!neg_seen.insert(n.CanonicalKey()).second) {
      return InvalidArgumentError("duplicate NEG operand");
    }
  }
  for (const PatternExpr& c : expr.children()) {
    MOTTO_RETURN_IF_ERROR(ValidatePattern(c));
  }
  return Status::Ok();
}

SymbolSeq FlatPattern::OperandSeq() const {
  SymbolSeq seq;
  seq.reserve(operands.size());
  for (EventTypeId t : operands) seq.push_back(t);
  return seq;
}

FlatPattern FlatPattern::Canonical() const {
  FlatPattern out = *this;
  if (IsCommutative(op)) std::sort(out.operands.begin(), out.operands.end());
  std::sort(out.negated.begin(), out.negated.end());
  return out;
}

std::string FlatPattern::CanonicalKey() const {
  FlatPattern canon = Canonical();
  return ToExpr(canon).CanonicalKey();
}

std::string FlatPattern::ToString(const EventTypeRegistry& registry) const {
  return ToExpr(*this).ToString(registry);
}

FlatPattern ToFlatPattern(const PatternExpr& expr) {
  MOTTO_CHECK(expr.IsFlat()) << "pattern is nested: " << expr.CanonicalKey();
  FlatPattern flat;
  flat.op = expr.op();
  flat.operands.reserve(expr.children().size());
  for (const PatternExpr& c : expr.children()) {
    MOTTO_CHECK(c.leaf_predicate().empty())
        << "predicated operands must be interned through nested division";
    flat.operands.push_back(c.leaf_type());
  }
  for (const PatternExpr& n : expr.negated()) {
    MOTTO_CHECK(n.leaf_predicate().empty())
        << "predicated operands must be interned through nested division";
    flat.negated.push_back(n.leaf_type());
  }
  return flat;
}

PatternExpr ToExpr(const FlatPattern& flat) {
  std::vector<PatternExpr> children;
  children.reserve(flat.operands.size());
  for (EventTypeId t : flat.operands) children.push_back(PatternExpr::Leaf(t));
  std::vector<PatternExpr> negated;
  negated.reserve(flat.negated.size());
  for (EventTypeId t : flat.negated) negated.push_back(PatternExpr::Leaf(t));
  return PatternExpr::Operator(flat.op, std::move(children),
                               std::move(negated));
}

}  // namespace motto
