#ifndef MOTTO_CCL_PATTERN_H_
#define MOTTO_CCL_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ccl/predicate.h"
#include "common/status.h"
#include "common/time.h"
#include "event/event_type.h"
#include "util/sequence.h"

namespace motto {

/// The three composite pattern operators of CCL (paper §II). Negation is not
/// an operator node: NEG'd operands are carried alongside a SEQ/CONJ node.
enum class PatternOp {
  kSeq,   // Ordered occurrence of all operands.
  kConj,  // Occurrence of all operands, any order.
  kDisj,  // Occurrence of at least one operand.
};

std::string_view PatternOpName(PatternOp op);
bool IsCommutative(PatternOp op);

/// Pattern expression tree. A leaf names one event type; an operator node
/// combines child patterns with SEQ/CONJ/DISJ and may carry NEG'd event
/// types (window-scoped negation, paper §II).
///
/// Value semantics; cheap to copy for the pattern sizes CEP uses.
class PatternExpr {
 public:
  enum class Kind { kLeaf, kOperator };

  /// Builds a leaf referring to event type `type`, optionally restricted by
  /// a payload predicate (`AAPL[value > 100]`).
  static PatternExpr Leaf(EventTypeId type);
  static PatternExpr Leaf(EventTypeId type, Predicate predicate);

  /// Builds an operator node. `negated` lists the NEG'd operands (leaves,
  /// possibly with predicates); only meaningful for SEQ/CONJ (validated by
  /// ValidatePattern).
  static PatternExpr Operator(PatternOp op, std::vector<PatternExpr> children,
                              std::vector<PatternExpr> negated = {});

  Kind kind() const { return kind_; }
  bool is_leaf() const { return kind_ == Kind::kLeaf; }

  EventTypeId leaf_type() const;
  /// Payload restriction of a leaf (empty predicate = unrestricted).
  const Predicate& leaf_predicate() const;
  PatternOp op() const;
  const std::vector<PatternExpr>& children() const;
  const std::vector<PatternExpr>& negated() const;

  /// True when every child is a leaf (no nesting).
  bool IsFlat() const;

  /// Nesting depth: a leaf is 0, a flat operator is 1 (paper Definition 2
  /// counts the innermost operator layer as level 1).
  int NestedLevel() const;

  /// Canonical id-based key, unique per semantic pattern after
  /// Canonicalize(). E.g. "SEQ(0,CONJ(1,2),!3)".
  std::string CanonicalKey() const;

  /// Human-readable rendering using registered type names.
  std::string ToString(const EventTypeRegistry& registry) const;

  friend bool operator==(const PatternExpr& a, const PatternExpr& b);

 private:
  Kind kind_ = Kind::kLeaf;
  EventTypeId leaf_type_ = kInvalidEventType;
  Predicate leaf_predicate_;
  PatternOp op_ = PatternOp::kSeq;
  std::vector<PatternExpr> children_;
  std::vector<PatternExpr> negated_;
};

/// Sorts commutative (CONJ/DISJ) operand lists recursively into canonical
/// order and sorts NEG lists, so semantically equal patterns compare equal
/// (paper §IV-B: "pre-sort non-ordered operators ... predefined order").
PatternExpr Canonicalize(const PatternExpr& expr);

/// Structural validity: operator nodes have >= 1 child, DISJ carries no NEG,
/// leaves have valid type ids, NEG lists are non-duplicated.
Status ValidatePattern(const PatternExpr& expr);

/// A non-nested pattern: one operator over event type operands (which may be
/// composite types produced by other queries). This is the unit the sharing
/// techniques and the execution engine work with.
struct FlatPattern {
  PatternOp op = PatternOp::kSeq;
  std::vector<EventTypeId> operands;
  std::vector<EventTypeId> negated;

  /// Operand list viewed as a symbol sequence for substring machinery.
  SymbolSeq OperandSeq() const;

  /// Canonical form: commutative operand lists and NEG lists sorted.
  FlatPattern Canonical() const;

  /// Canonical id-based key, e.g. "SEQ(0,5,!2)|neg".
  std::string CanonicalKey() const;

  std::string ToString(const EventTypeRegistry& registry) const;

  friend bool operator==(const FlatPattern& a, const FlatPattern& b) {
    return a.op == b.op && a.operands == b.operands && a.negated == b.negated;
  }
};

/// Converts a flat expression tree into a FlatPattern; expr must be an
/// operator node with IsFlat().
FlatPattern ToFlatPattern(const PatternExpr& expr);

/// Converts back to an expression tree.
PatternExpr ToExpr(const FlatPattern& flat);

/// A user-registered pattern query: named pattern + window constraint.
struct Query {
  std::string name;
  PatternExpr pattern;
  Duration window = 0;
};

/// A divided, non-nested query as used by the optimizer and engine.
struct FlatQuery {
  std::string name;
  FlatPattern pattern;
  Duration window = 0;
};

}  // namespace motto

#endif  // MOTTO_CCL_PATTERN_H_
