#ifndef MOTTO_EVENT_STREAM_H_
#define MOTTO_EVENT_STREAM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "event/event.h"

namespace motto {

/// A finite, timestamp-ordered batch of primitive events — the unit the
/// executor and benchmarks replay. (SAP ESP consumes unbounded streams; a
/// replayed batch exercises the identical code path.)
using EventStream = std::vector<Event>;

/// Verifies the stream is sorted by timestamp and all events are primitive.
Status ValidateStream(const EventStream& stream);

/// Per-type arrival statistics of a stream; the cost model's only input.
struct StreamStats {
  /// Events of each type per second of stream time.
  std::unordered_map<EventTypeId, double> rate_per_second;
  /// Reservoir sample of payloads per type (up to kPayloadSampleSize),
  /// used to estimate predicate selectivities.
  std::unordered_map<EventTypeId, std::vector<Payload>> payload_samples;
  static constexpr size_t kPayloadSampleSize = 64;
  /// Total events per second across all types.
  double total_rate = 0.0;
  /// Stream time covered, in microseconds.
  Duration duration = 0;
  int64_t num_events = 0;

  /// Rate of one type (0 if the type never occurs).
  double RateOf(EventTypeId type) const {
    auto it = rate_per_second.find(type);
    return it == rate_per_second.end() ? 0.0 : it->second;
  }
};

/// Computes arrival statistics over `stream` (or over a prefix sample).
StreamStats ComputeStats(const EventStream& stream);

}  // namespace motto

#endif  // MOTTO_EVENT_STREAM_H_
