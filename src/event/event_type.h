#ifndef MOTTO_EVENT_EVENT_TYPE_H_
#define MOTTO_EVENT_EVENT_TYPE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"

namespace motto {

/// Dense id of an event type. Primitive types (user-declared, e.g.
/// "buy_order_IBM") and composite types (outputs of pattern queries, e.g.
/// "{E1,E3}") share one id space so composite events can feed downstream
/// pattern operators exactly like primitive events (paper §II).
using EventTypeId = int32_t;

inline constexpr EventTypeId kInvalidEventType = -1;

/// Registry of all event types known to one workload / engine instance.
///
/// Primitive types are registered by name; composite types are registered by
/// a canonical descriptor string (produced by the pattern printer) so that
/// two queries emitting the same composite shape share one type id.
class EventTypeRegistry {
 public:
  EventTypeRegistry() = default;
  EventTypeRegistry(const EventTypeRegistry&) = default;
  EventTypeRegistry& operator=(const EventTypeRegistry&) = default;

  /// Registers (or looks up) a primitive event type.
  EventTypeId RegisterPrimitive(std::string_view name);

  /// Registers (or looks up) a composite event type by canonical descriptor.
  EventTypeId RegisterComposite(std::string_view descriptor);

  /// Returns the id for `name`, or kInvalidEventType.
  EventTypeId Find(std::string_view name) const;

  const std::string& NameOf(EventTypeId id) const;
  bool IsPrimitive(EventTypeId id) const;

  int32_t size() const { return interner_.size(); }

  /// Ids of all primitive types, in registration order.
  std::vector<EventTypeId> PrimitiveTypes() const;

 private:
  StringInterner interner_;
  std::vector<bool> is_primitive_;
};

}  // namespace motto

#endif  // MOTTO_EVENT_EVENT_TYPE_H_
