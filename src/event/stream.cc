#include "event/stream.h"

#include <random>
#include <string>

namespace motto {

Status ValidateStream(const EventStream& stream) {
  Timestamp prev = -1;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Event& e = stream[i];
    if (!e.is_primitive()) {
      return InvalidArgumentError("stream event " + std::to_string(i) +
                                  " is not primitive");
    }
    if (e.begin() < prev) {
      return InvalidArgumentError("stream not sorted at index " +
                                  std::to_string(i));
    }
    prev = e.begin();
  }
  return Status::Ok();
}

StreamStats ComputeStats(const EventStream& stream) {
  StreamStats stats;
  stats.num_events = static_cast<int64_t>(stream.size());
  if (stream.empty()) return stats;
  std::unordered_map<EventTypeId, int64_t> counts;
  // Deterministic per-stream reservoir sampling of payloads.
  std::mt19937_64 reservoir_rng(0x5eed);
  for (const Event& e : stream) {
    int64_t seen = ++counts[e.type()];
    std::vector<Payload>& sample = stats.payload_samples[e.type()];
    if (sample.size() < StreamStats::kPayloadSampleSize) {
      sample.push_back(e.payload());
    } else {
      uint64_t j = reservoir_rng() % static_cast<uint64_t>(seen);
      if (j < sample.size()) sample[static_cast<size_t>(j)] = e.payload();
    }
  }
  stats.duration = stream.back().end() - stream.front().begin();
  // A single-timestamp stream still gets a nonzero duration so rates stay
  // finite; one microsecond is the resolution floor.
  if (stats.duration <= 0) stats.duration = 1;
  double seconds = static_cast<double>(stats.duration) /
                   static_cast<double>(kMicrosPerSecond);
  for (const auto& [type, count] : counts) {
    stats.rate_per_second[type] = static_cast<double>(count) / seconds;
  }
  stats.total_rate = static_cast<double>(stream.size()) / seconds;
  return stats;
}

}  // namespace motto
