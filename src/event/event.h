#ifndef MOTTO_EVENT_EVENT_H_
#define MOTTO_EVENT_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "event/event_type.h"

namespace motto {

/// One primitive event embedded inside a composite event, tagged with the
/// operand slot it filled in the producing query. The full constituent list
/// implements the paper's complete-history temporal model (§II): downstream
/// time filters can compare any constituent's timestamp.
struct Constituent {
  EventTypeId type = kInvalidEventType;
  Timestamp ts = 0;
  /// Operand position in the query that (transitively) produced this
  /// constituent; rewrites relabel slots so sinks always see the positions of
  /// the original user query.
  int32_t slot = 0;

  friend bool operator==(const Constituent& a, const Constituent& b) {
    return a.type == b.type && a.ts == b.ts && a.slot == b.slot;
  }
};

/// Small fixed payload carried by primitive events (e.g. price/volume for
/// stock trades, bytes/latency for data-center events).
struct Payload {
  double value = 0.0;
  int64_t aux = 0;

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.value == b.value && a.aux == b.aux;
  }
};

/// An event instance flowing through the engine: either a primitive event
/// (empty constituent list, begin == end) or a composite event produced by a
/// pattern operator (constituents carry the complete history).
class Event {
 public:
  Event() = default;

  /// Builds a primitive event.
  static Event Primitive(EventTypeId type, Timestamp ts,
                         Payload payload = Payload{});

  /// Builds a composite event of `type` from the given constituents.
  /// `end_ts` is the detection (completion) time; begin is derived from the
  /// minimum constituent timestamp.
  static Event Composite(EventTypeId type, std::vector<Constituent> parts,
                         Timestamp end_ts);

  /// Same, but with the begin timestamp supplied by a caller that already
  /// tracks the minimum constituent timestamp (e.g. the matcher's partial
  /// state), skipping the derivation pass.
  static Event Composite(EventTypeId type, std::vector<Constituent> parts,
                         Timestamp end_ts, Timestamp begin_ts);

  EventTypeId type() const { return type_; }
  /// Timestamp of the earliest constituent (== ts for primitives).
  Timestamp begin() const { return begin_; }
  /// Timestamp of the latest constituent / detection time.
  Timestamp end() const { return end_; }
  /// Window span covered by this event.
  Duration span() const { return end_ - begin_; }
  bool is_primitive() const { return constituents_.empty(); }
  const Payload& payload() const { return payload_; }

  /// For a primitive event, a one-element view of itself; for a composite,
  /// its recorded constituents. `self` storage is used for the primitive
  /// case, so the returned reference is valid only while `self` lives.
  const std::vector<Constituent>& constituents_or(
      std::vector<Constituent>& self_storage) const;

  const std::vector<Constituent>& constituents() const { return constituents_; }

  /// Canonical identity of the match this event represents: the (type, ts)
  /// pairs of all constituents (or of the event itself when primitive),
  /// sorted. Slot tags are ignored so plans that reorder commutative operands
  /// still compare equal. Used by correctness tests and result dedup.
  std::string Fingerprint() const;

  friend bool operator==(const Event& a, const Event& b) {
    return a.type_ == b.type_ && a.begin_ == b.begin_ && a.end_ == b.end_ &&
           a.payload_ == b.payload_ && a.constituents_ == b.constituents_;
  }

 private:
  EventTypeId type_ = kInvalidEventType;
  Timestamp begin_ = 0;
  Timestamp end_ = 0;
  Payload payload_;
  std::vector<Constituent> constituents_;
};

}  // namespace motto

#endif  // MOTTO_EVENT_EVENT_H_
