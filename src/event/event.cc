#include "event/event.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace motto {

Event Event::Primitive(EventTypeId type, Timestamp ts, Payload payload) {
  Event e;
  e.type_ = type;
  e.begin_ = ts;
  e.end_ = ts;
  e.payload_ = payload;
  return e;
}

Event Event::Composite(EventTypeId type, std::vector<Constituent> parts,
                       Timestamp end_ts) {
  MOTTO_CHECK(!parts.empty()) << "composite event needs constituents";
  Timestamp lo = std::numeric_limits<Timestamp>::max();
  for (const Constituent& c : parts) lo = std::min(lo, c.ts);
  return Composite(type, std::move(parts), end_ts, lo);
}

Event Event::Composite(EventTypeId type, std::vector<Constituent> parts,
                       Timestamp end_ts, Timestamp begin_ts) {
  MOTTO_CHECK(!parts.empty()) << "composite event needs constituents";
  Event e;
  e.type_ = type;
  e.constituents_ = std::move(parts);
  e.begin_ = begin_ts;
  e.end_ = end_ts;
  return e;
}

const std::vector<Constituent>& Event::constituents_or(
    std::vector<Constituent>& self_storage) const {
  if (!constituents_.empty()) return constituents_;
  self_storage.assign(1, Constituent{type_, begin_, 0});
  return self_storage;
}

std::string Event::Fingerprint() const {
  std::vector<Constituent> self;
  const std::vector<Constituent>& parts = constituents_or(self);
  std::vector<std::pair<EventTypeId, Timestamp>> keys;
  keys.reserve(parts.size());
  for (const Constituent& c : parts) keys.emplace_back(c.type, c.ts);
  std::sort(keys.begin(), keys.end());
  std::string out;
  out.reserve(keys.size() * 12);
  for (const auto& [type, ts] : keys) {
    out += std::to_string(type);
    out += '@';
    out += std::to_string(ts);
    out += ';';
  }
  return out;
}

}  // namespace motto
