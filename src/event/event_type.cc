#include "event/event_type.h"

#include "common/check.h"

namespace motto {

EventTypeId EventTypeRegistry::RegisterPrimitive(std::string_view name) {
  int32_t before = interner_.size();
  EventTypeId id = interner_.Intern(name);
  if (id == before) {
    is_primitive_.push_back(true);
  } else {
    MOTTO_CHECK(is_primitive_[static_cast<size_t>(id)])
        << "type " << name << " already registered as composite";
  }
  return id;
}

EventTypeId EventTypeRegistry::RegisterComposite(std::string_view descriptor) {
  int32_t before = interner_.size();
  EventTypeId id = interner_.Intern(descriptor);
  if (id == before) {
    is_primitive_.push_back(false);
  } else {
    MOTTO_CHECK(!is_primitive_[static_cast<size_t>(id)])
        << "type " << descriptor << " already registered as primitive";
  }
  return id;
}

EventTypeId EventTypeRegistry::Find(std::string_view name) const {
  return interner_.Find(name);
}

const std::string& EventTypeRegistry::NameOf(EventTypeId id) const {
  return interner_.NameOf(id);
}

bool EventTypeRegistry::IsPrimitive(EventTypeId id) const {
  MOTTO_CHECK(id >= 0 && id < size()) << "bad event type id " << id;
  return is_primitive_[static_cast<size_t>(id)];
}

std::vector<EventTypeId> EventTypeRegistry::PrimitiveTypes() const {
  std::vector<EventTypeId> out;
  for (int32_t id = 0; id < size(); ++id) {
    if (is_primitive_[static_cast<size_t>(id)]) out.push_back(id);
  }
  return out;
}

}  // namespace motto
