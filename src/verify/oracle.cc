#include "verify/oracle.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "event/event.h"

namespace motto::verify {
namespace {

/// One consumable arrival on a logical input channel: a raw primitive event
/// or a completed sub-match of an operator child. `parts` carries the
/// (type, ts) constituents that end up in the final fingerprint.
struct Arrival {
  Timestamp begin = 0;
  Timestamp end = 0;
  std::vector<Constituent> parts;
  /// Payload access for raw arrivals (leaf predicates); null for sub-matches
  /// (the engine never applies payload predicates to composite events).
  const Event* raw = nullptr;
};

/// Everything one logical channel can deliver over the whole stream. Two
/// operands drawing from the same Source must consume *distinct* arrivals
/// of it (the engine stages each arrival so it fills at most one operand
/// per match); operands on different sources may consume arrivals that
/// represent the same physical event (e.g. a raw A and a DISJ(A,B)
/// pass-through of that same A are two distinct arrivals).
struct Source {
  std::vector<Arrival> arrivals;
};

class Oracle {
 public:
  Oracle(const EventStream& stream, Duration window,
         const OracleOptions& options)
      : stream_(stream), window_(window), budget_(options.max_steps),
        match_budget_(options.max_matches) {}

  Result<MatchSet> Run(const PatternExpr& root) {
    MOTTO_RETURN_IF_ERROR(ValidatePattern(root));
    if (root.is_leaf()) {
      return InvalidArgumentError("oracle: bare event type is not a pattern");
    }
    if (window_ <= 0) {
      return InvalidArgumentError("oracle: window must be positive");
    }
    for (const PatternExpr& child : root.children()) {
      MOTTO_RETURN_IF_ERROR(RejectInnerNegation(child));
    }
    for (const PatternExpr& neg : root.negated()) {
      if (!neg.is_leaf()) {
        return InvalidArgumentError("oracle: NEG operands must be leaves");
      }
    }

    MOTTO_ASSIGN_OR_RETURN(std::vector<Operand> operands,
                           BindOperands(root));
    MatchSet out;
    if (root.op() == PatternOp::kDisj) {
      // DISJ is pass-through: one emission per arrival accepted by at least
      // one operand of that arrival's own channel. No window or NEG
      // handling (ValidatePattern forbids NEG on DISJ; the engine ignores
      // windows on pass-through nodes).
      MOTTO_RETURN_IF_ERROR(CollectDisj(operands, [&](const Arrival& a) {
        out.insert(FingerprintOf(a.parts, a.end));
        return CountEmission();
      }));
      return out;
    }

    // Window-scoped negation kills a match when any matching negated raw
    // event has its timestamp in [min_begin, min_begin + window], both ends
    // inclusive (engine: PatternMatcher::Complete / the pending-kill scan).
    std::vector<Timestamp> kill_ts;
    for (const PatternExpr& neg : root.negated()) {
      for (const Event& e : stream_) {
        if (e.type() != neg.leaf_type()) continue;
        if (!neg.leaf_predicate().empty() &&
            !neg.leaf_predicate().Matches(e.payload())) {
          continue;
        }
        kill_ts.push_back(e.begin());
      }
    }
    std::sort(kill_ts.begin(), kill_ts.end());

    MOTTO_RETURN_IF_ERROR(Enumerate(
        root.op(), operands,
        [&](const std::vector<const Arrival*>& chosen, Timestamp begin,
            Timestamp end) {
          auto it = std::lower_bound(kill_ts.begin(), kill_ts.end(), begin);
          if (it != kill_ts.end() && *it <= begin + window_) {
            return Status::Ok();
          }
          std::vector<Constituent> parts;
          for (const Arrival* a : chosen) {
            parts.insert(parts.end(), a->parts.begin(), a->parts.end());
          }
          out.insert(FingerprintOf(parts, end));
          return CountEmission();
        }));
    return out;
  }

 private:
  /// An operator's operand: its arrival channel plus the leaf selection
  /// predicate (empty for operator children — composites are unfiltered).
  struct Operand {
    const Source* source = nullptr;
    Predicate predicate;
  };

  Status RejectInnerNegation(const PatternExpr& expr) {
    if (expr.is_leaf()) return Status::Ok();
    if (!expr.negated().empty()) {
      return InvalidArgumentError(
          "oracle: NEG is only supported on the outermost pattern layer");
    }
    for (const PatternExpr& child : expr.children()) {
      MOTTO_RETURN_IF_ERROR(RejectInnerNegation(child));
    }
    return Status::Ok();
  }

  Status Step() {
    if (steps_++ >= budget_) {
      return OutOfRangeError("oracle: enumeration budget exceeded");
    }
    return Status::Ok();
  }

  Status CountEmission() {
    if (emitted_++ >= match_budget_) {
      return OutOfRangeError("oracle: match budget exceeded");
    }
    return Status::Ok();
  }

  std::string FingerprintOf(const std::vector<Constituent>& parts,
                            Timestamp end) {
    return Event::Composite(0, parts, end).Fingerprint();
  }

  /// Canonical identity of a subtree, the analogue of the engine's catalog
  /// key: children of a node that share an identity share one producer
  /// node, hence one channel. Commutative operand lists are sorted so
  /// CONJ(a, b) and CONJ(b, a) children coincide, exactly as
  /// FlatPattern::Canonical() makes them coincide in the catalog.
  static std::string Identity(const PatternExpr& expr) {
    if (expr.is_leaf()) {
      std::string out = "t" + std::to_string(expr.leaf_type());
      if (!expr.leaf_predicate().empty()) {
        out += '[' + expr.leaf_predicate().CanonicalKey() + ']';
      }
      return out;
    }
    std::vector<std::string> keys;
    keys.reserve(expr.children().size());
    for (const PatternExpr& child : expr.children()) {
      keys.push_back(Identity(child));
    }
    if (IsCommutative(expr.op())) std::sort(keys.begin(), keys.end());
    std::string out(PatternOpName(expr.op()));
    out += '(';
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0) out += ',';
      out += keys[i];
    }
    out += ')';
    return out;
  }

  /// Channel identity of an operand. Leaves deliberately drop their
  /// predicate: every selector over type T reads the one raw-T channel, so
  /// distinctness binds across differently-predicated operands of the same
  /// type (the engine dispatches on (channel, type), never on predicate).
  static std::string SourceKeyFor(const PatternExpr& operand) {
    if (operand.is_leaf()) {
      return "raw:" + std::to_string(operand.leaf_type());
    }
    return "sub:" + Identity(operand);
  }

  Result<const Source*> EvalSource(const PatternExpr& operand) {
    std::string key = SourceKeyFor(operand);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second.get();
    auto source = std::make_unique<Source>();
    if (operand.is_leaf()) {
      for (const Event& e : stream_) {
        if (e.type() != operand.leaf_type()) continue;
        Arrival a;
        a.begin = e.begin();
        a.end = e.end();
        a.parts.push_back(Constituent{e.type(), e.begin(), 0});
        a.raw = &e;
        source->arrivals.push_back(std::move(a));
      }
    } else {
      MOTTO_ASSIGN_OR_RETURN(*source, EvalOperator(operand));
    }
    const Source* raw = source.get();
    memo_.emplace(std::move(key), std::move(source));
    return raw;
  }

  Result<std::vector<Operand>> BindOperands(const PatternExpr& expr) {
    std::vector<Operand> operands;
    operands.reserve(expr.children().size());
    for (const PatternExpr& child : expr.children()) {
      Operand op;
      MOTTO_ASSIGN_OR_RETURN(op.source, EvalSource(child));
      if (child.is_leaf()) op.predicate = child.leaf_predicate();
      operands.push_back(std::move(op));
    }
    return operands;
  }

  static bool Accepts(const Operand& op, const Arrival& a) {
    if (op.predicate.empty()) return true;
    return a.raw != nullptr && op.predicate.Matches(a.raw->payload());
  }

  /// Pass-through collection for DISJ: iterate each distinct source once,
  /// emitting an arrival once when any operand of that source accepts it
  /// (the engine returns after the first accepting operand).
  Status CollectDisj(const std::vector<Operand>& operands,
                     const std::function<Status(const Arrival&)>& yield) {
    std::vector<const Source*> seen;
    for (const Operand& op : operands) {
      if (std::find(seen.begin(), seen.end(), op.source) != seen.end()) {
        continue;
      }
      seen.push_back(op.source);
      for (const Arrival& a : op.source->arrivals) {
        MOTTO_RETURN_IF_ERROR(Step());
        for (const Operand& other : operands) {
          if (other.source == op.source && Accepts(other, a)) {
            MOTTO_RETURN_IF_ERROR(yield(a));
            break;
          }
        }
      }
    }
    return Status::Ok();
  }

  /// SEQ/CONJ: enumerate every assignment of arrivals to operand slots that
  /// is injective per source, satisfies each leaf predicate, keeps the SEQ
  /// order guard end(prev) < begin(next) between consecutive slots, and
  /// spans at most the window (max end - min begin, inclusive). One yield
  /// per assignment — multiplicity is part of the semantics.
  Status Enumerate(
      PatternOp op, const std::vector<Operand>& operands,
      const std::function<Status(const std::vector<const Arrival*>&, Timestamp,
                                 Timestamp)>& yield) {
    size_t n = operands.size();
    std::vector<const Arrival*> chosen(n, nullptr);
    std::map<const Source*, std::vector<char>> used;
    for (const Operand& o : operands) {
      used.emplace(o.source, std::vector<char>(o.source->arrivals.size(), 0));
    }
    std::function<Status(size_t, Timestamp, Timestamp, Timestamp)> recurse =
        [&](size_t pos, Timestamp min_begin, Timestamp max_end,
            Timestamp last_end) -> Status {
      if (pos == n) return yield(chosen, min_begin, max_end);
      const Operand& operand = operands[pos];
      std::vector<char>& taken = used[operand.source];
      const std::vector<Arrival>& arrivals = operand.source->arrivals;
      for (size_t j = 0; j < arrivals.size(); ++j) {
        MOTTO_RETURN_IF_ERROR(Step());
        if (taken[j]) continue;
        const Arrival& a = arrivals[j];
        if (!Accepts(operand, a)) continue;
        if (op == PatternOp::kSeq && pos > 0 && !(last_end < a.begin)) {
          continue;
        }
        Timestamp nb = pos == 0 ? a.begin : std::min(min_begin, a.begin);
        Timestamp ne = pos == 0 ? a.end : std::max(max_end, a.end);
        if (ne - nb > window_) continue;
        taken[j] = 1;
        chosen[pos] = &a;
        MOTTO_RETURN_IF_ERROR(recurse(pos + 1, nb, ne, a.end));
        taken[j] = 0;
      }
      return Status::Ok();
    };
    return recurse(0, 0, 0, 0);
  }

  /// Evaluates an inner operator node into the arrivals its parent sees.
  /// Inner nodes inherit the root window (DivideNested gives every inner
  /// sub-query the outer query's window).
  Result<Source> EvalOperator(const PatternExpr& expr) {
    MOTTO_ASSIGN_OR_RETURN(std::vector<Operand> operands,
                           BindOperands(expr));
    Source out;
    if (expr.op() == PatternOp::kDisj) {
      MOTTO_RETURN_IF_ERROR(CollectDisj(operands, [&](const Arrival& a) {
        out.arrivals.push_back(a);
        return CountEmission();
      }));
      return out;
    }
    MOTTO_RETURN_IF_ERROR(Enumerate(
        expr.op(), operands,
        [&](const std::vector<const Arrival*>& chosen, Timestamp begin,
            Timestamp end) {
          Arrival a;
          a.begin = begin;
          a.end = end;
          for (const Arrival* part : chosen) {
            a.parts.insert(a.parts.end(), part->parts.begin(),
                           part->parts.end());
          }
          out.arrivals.push_back(std::move(a));
          return CountEmission();
        }));
    return out;
  }

  const EventStream& stream_;
  Duration window_ = 0;
  uint64_t budget_ = 0;
  uint64_t match_budget_ = 0;
  uint64_t steps_ = 0;
  uint64_t emitted_ = 0;
  /// Sub-match arrivals memoized by source key: children sharing a key
  /// share one Source object, which is what makes per-source injectivity
  /// line up with the engine's shared channels.
  std::map<std::string, std::unique_ptr<Source>> memo_;
};

}  // namespace

Result<MatchSet> OracleMatches(const Query& query, const EventStream& stream,
                               const OracleOptions& options) {
  MOTTO_RETURN_IF_ERROR(ValidateStream(stream));
  Oracle oracle(stream, query.window, options);
  return oracle.Run(query.pattern);
}

}  // namespace motto::verify
