#ifndef MOTTO_VERIFY_RECOVERY_DIFFER_H_
#define MOTTO_VERIFY_RECOVERY_DIFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ccl/pattern.h"
#include "common/result.h"
#include "engine/runtime.h"
#include "event/stream.h"
#include "verify/differ.h"
#include "verify/fuzzer.h"

namespace motto::verify {

/// Crash-recovery differential harness for `motto serve` (DESIGN.md §15).
///
/// Each fuzzed case builds a (workload, stream, kill-plan) triple, renders
/// the stream as a wire-frame sequence with interleaved watermark / flush /
/// checkpoint control frames, and checks the recovery invariant: a server
/// killed at arbitrary frame boundaries (including mid-checkpoint and with
/// post-kill disk damage), restarted from the latest valid snapshot and
/// re-fed from its reported resume offset, must release exactly the match
/// multiset of a never-killed run — which itself must equal the batch
/// Executor and ShardedExecutor on the same plan. Additionally, everything
/// durable before each kill must be a sub-multiset of the final output
/// (nothing ever released gets lost or contradicted).

struct RecoveryKill {
  enum class Kind {
    /// Abandon the server at a frame boundary (SIGKILL equivalent: the
    /// core writes output only inside checkpoint releases, so dropping the
    /// object loses exactly what a kill would lose).
    kPlain,
    /// After the kill, forge a torn higher-seq snapshot file: recovery
    /// must skip it with a warning and use the previous valid one.
    kTornCheckpoint,
    /// After the kill, tear the output file's un-checkpointed tail
    /// (a kill mid-release-append); bytes covered by the latest valid
    /// snapshot's released-line horizon are never touched, matching what
    /// a real crash can tear.
    kTornOutput,
    /// Fault injection inside the server: the checkpoint becomes durable
    /// but the process dies before releasing its outbox — the kill window
    /// between the snapshot rename and the output append.
    kMidCheckpoint,
  };

  /// Kill once `ingested` reaches this many events (thresholds ascend
  /// across the plan, so later kills can land during catch-up replay).
  uint64_t after_events = 0;
  Kind kind = Kind::kPlain;
};

std::string_view RecoveryKillKindName(RecoveryKill::Kind kind);

struct RecoveryDifferOptions {
  /// Root seed; case i uses seed + i (same convention as DifferOptions).
  uint64_t seed = 1;
  int iterations = 40;
  FuzzOptions fuzz = {.num_event_types = 5, .num_events = 160, .max_gap = 15};
  /// Sharded cross-check configuration.
  int shards = 5;
  int threads = 2;
  /// Scratch root for checkpoint/output directories; empty uses the system
  /// temp directory. Case subdirectories are removed after each case.
  std::string work_dir;
};

/// Everything that parameterizes one recovery case beyond the fuzzed
/// workload/stream pair.
struct RecoveryCaseSpec {
  std::vector<RecoveryKill> kills;
  EvalOrderMode eval_order = EvalOrderMode::kArrival;
  uint64_t checkpoint_interval = 10;
  int shards = 5;
  int threads = 2;
  /// Seeds the control-frame interleaving.
  uint64_t frame_seed = 1;
  /// Scratch directory for this case (created/overwritten as needed).
  std::string case_dir;
};

/// Runs one case: batch reference, sharded cross-check, uninterrupted
/// serve run, then the killed-and-recovered run per `spec.kills`; returns
/// the per-sink multiset mismatches (empty report = invariant held).
Result<CaseReport> CheckRecoveryCase(const std::vector<Query>& queries,
                                     const EventStream& stream,
                                     EventTypeRegistry* registry,
                                     const RecoveryCaseSpec& spec);

struct RecoveryFailure {
  uint64_t case_seed = 0;
  std::string report;
  /// Kill plan, eval order and interval of the failing case.
  std::string detail;
};

struct RecoveryOutcome {
  int iterations = 0;
  /// Cases abandoned because the fuzzed workload's match volume blew past
  /// the budget (combinatorial explosion); mirrors the plan differ's
  /// oracle-budget skips.
  int skipped = 0;
  uint64_t kills = 0;
  uint64_t torn_checkpoints = 0;
  uint64_t torn_outputs = 0;
  uint64_t mid_checkpoint_faults = 0;
  std::vector<RecoveryFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// The fuzz loop behind `motto verify --recovery`: `iterations` cases from
/// the root seed, alternating eval-order modes, each with a randomized
/// checkpoint interval and a 1-2 kill plan of mixed kinds.
Result<RecoveryOutcome> RunRecoveryDiffer(const RecoveryDifferOptions& options);

}  // namespace motto::verify

#endif  // MOTTO_VERIFY_RECOVERY_DIFFER_H_
