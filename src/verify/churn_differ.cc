#include "verify/churn_differ.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <utility>

#include "common/rng.h"
#include "engine/executor.h"
#include "engine/sharded_executor.h"
#include "event/event.h"
#include "motto/optimizer.h"
#include "workload/io.h"

namespace motto::verify {
namespace {

void Diff(const std::string& path, const std::string& query,
          const MatchSet& oracle, const MatchSet& got,
          std::vector<Mismatch>* out) {
  if (oracle == got) return;
  Mismatch m;
  m.query = query;
  m.path = path;
  m.oracle_count = oracle.size();
  m.path_count = got.size();
  constexpr size_t kSampleCap = 4;
  std::set_difference(oracle.begin(), oracle.end(), got.begin(), got.end(),
                      std::back_inserter(m.missing));
  std::set_difference(got.begin(), got.end(), oracle.begin(), oracle.end(),
                      std::back_inserter(m.extra));
  if (m.missing.size() > kSampleCap) m.missing.resize(kSampleCap);
  if (m.extra.size() > kSampleCap) m.extra.resize(kSampleCap);
  out->push_back(std::move(m));
}

/// Stream slice a query compiled from scratch must see: every event whose
/// timestamp falls in the query's live window [ta, tr).
EventStream LiveSlice(const EventStream& stream, Timestamp ta, Timestamp tr) {
  auto lo = ta == kAlwaysLive
                ? stream.begin()
                : std::partition_point(
                      stream.begin(), stream.end(),
                      [ta](const Event& e) { return e.begin() < ta; });
  auto hi = tr == kNeverRemoved
                ? stream.end()
                : std::partition_point(
                      lo, stream.end(),
                      [tr](const Event& e) { return e.begin() < tr; });
  return EventStream(lo, hi);
}

/// Keeps only matches a live run could have emitted before the query's
/// removal: a negation-deferred root seals a match at begin + window, so
/// anything sealed at or after tr is dropped; immediate roots seal on
/// completion, which the slice already bounds.
MatchSet SealedMatches(const std::vector<Event>* events, bool deferred,
                       Duration window, Timestamp tr) {
  MatchSet set;
  if (events == nullptr) return set;
  for (const Event& e : *events) {
    if (tr != kNeverRemoved && deferred && e.begin() + window >= tr) continue;
    set.insert(e.Fingerprint());
  }
  return set;
}

}  // namespace

Result<CaseReport> CheckChurnCase(const std::vector<Query>& initial,
                                  const ChurnScript& script,
                                  const EventStream& stream,
                                  EventTypeRegistry* registry,
                                  const ChurnDifferOptions& options) {
  CaseReport report;
  StreamStats stats = ComputeStats(stream);

  // User queries ever live in this case, with their live windows.
  std::map<std::string, Query> queries;
  std::map<std::string, std::pair<Timestamp, Timestamp>> windows;
  for (const Query& query : initial) {
    queries[query.name] = query;
    windows[query.name] = {kAlwaysLive, kNeverRemoved};
  }
  for (const ChurnCommand& cmd : script.commands) {
    if (cmd.add) {
      queries[cmd.name] = cmd.query;
      windows[cmd.name] = {cmd.ts, kNeverRemoved};
    } else {
      auto it = windows.find(cmd.name);
      if (it == windows.end()) {
        return InvalidArgumentError("script removes unknown query '" +
                                    cmd.name + "'");
      }
      it->second.second = cmd.ts;
    }
  }

  // From-scratch oracle: each query alone (NA plan) over its live slice,
  // through the single-threaded executor, cross-checked by the sharded one.
  std::map<std::string, MatchSet> oracle;
  for (const auto& [name, query] : queries) {
    const auto [ta, tr] = windows[name];
    EventStream slice = LiveSlice(stream, ta, tr);
    OptimizerOptions na;
    na.mode = OptimizerMode::kNa;
    Optimizer optimizer(registry, stats, na);
    MOTTO_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                           optimizer.Optimize({query}));
    const bool deferred = !query.pattern.negated().empty();

    Jqp sharded_jqp = outcome.jqp;
    MOTTO_ASSIGN_OR_RETURN(Executor executor,
                           Executor::Create(std::move(outcome.jqp)));
    MOTTO_ASSIGN_OR_RETURN(RunResult run, executor.Run(slice));
    auto sink = run.sink_events.find(name);
    MatchSet set = SealedMatches(
        sink == run.sink_events.end() ? nullptr : &sink->second, deferred,
        query.window, tr);

    MOTTO_ASSIGN_OR_RETURN(
        ShardedExecutor sharded,
        ShardedExecutor::Create(std::move(sharded_jqp), options.shards,
                                options.shard_threads));
    MOTTO_ASSIGN_OR_RETURN(RunResult sharded_run, sharded.Run(slice));
    auto sharded_sink = sharded_run.sink_events.find(name);
    MatchSet sharded_set = SealedMatches(
        sharded_sink == sharded_run.sink_events.end() ? nullptr
                                                      : &sharded_sink->second,
        deferred, query.window, tr);
    Diff("oracle-sharded", name, set, sharded_set, &report.mismatches);
    oracle[name] = std::move(set);
  }

  // The live churn path, in both evaluation-order modes.
  OptimizerOptions churn_options;
  churn_options.mode = OptimizerMode::kMotto;
  churn_options.planner.seed = options.seed;
  churn_options.planner.exact_budget_seconds = options.exact_budget_seconds;
  churn_options.planner.sa_iterations = options.sa_iterations;
  for (EvalOrderMode mode :
       {EvalOrderMode::kArrival, EvalOrderMode::kSelectivity}) {
    ChurnRunOptions run_options;
    run_options.executor.eval_order = mode;
    MOTTO_ASSIGN_OR_RETURN(ChurnOutcome outcome,
                           RunChurn(initial, script, stream, registry,
                                    churn_options, run_options));
    const char* path = mode == EvalOrderMode::kArrival ? "churn-arrival"
                                                       : "churn-lazy";
    for (const auto& [name, query] : queries) {
      MatchSet got;
      auto it = outcome.result.sink_events.find(name);
      if (it != outcome.result.sink_events.end()) {
        for (const Event& e : it->second) got.insert(e.Fingerprint());
      }
      Diff(path, name, oracle[name], got, &report.mismatches);
    }
  }
  return report;
}

Result<ChurnDiffOutcome> RunChurnDiffer(const ChurnDifferOptions& options) {
  ChurnDiffOutcome outcome;
  for (int iter = 0; iter < options.iterations; ++iter) {
    const uint64_t case_seed = options.seed + static_cast<uint64_t>(iter);
    EventTypeRegistry registry;
    QueryFuzzer fuzzer(&registry, options.fuzz, case_seed);
    FuzzCase base = fuzzer.Next();
    ++outcome.iterations;
    if (base.stream.size() < 8 ||
        base.stream.back().begin() <= base.stream.front().begin()) {
      ++outcome.skipped;
      continue;
    }

    // A deterministic script spanning the stream: all adds first (fresh
    // names "c<i>"), then removals of both initial and added queries, each
    // command at its own interior boundary.
    std::vector<Query> added;
    for (int i = 0; i < options.added_queries; ++i) {
      added.push_back(fuzzer.NextQuery("c" + std::to_string(i)));
    }
    std::vector<std::string> removable;
    for (size_t i = 0; i < std::max(base.queries.size(), added.size()); ++i) {
      if (i < added.size()) removable.push_back(added[i].name);
      if (i < base.queries.size()) removable.push_back(base.queries[i].name);
    }
    Rng rng(case_seed * 0x9e3779b97f4a7c15ull + 1);
    rng.Shuffle(removable);
    const size_t removals = std::min(removable.size(),
                                     static_cast<size_t>(std::max(
                                         0, options.removals)));
    const size_t total = added.size() + removals;
    if (total == 0) {
      ++outcome.skipped;
      continue;
    }
    const Timestamp lo = base.stream.front().begin();
    const Timestamp hi = base.stream.back().begin();
    ChurnScript script;
    size_t slot = 0;
    auto boundary = [&](size_t j) {
      return lo + 1 +
             static_cast<Timestamp>((static_cast<int64_t>(hi - lo) *
                                     static_cast<int64_t>(j + 1)) /
                                    static_cast<int64_t>(total + 1));
    };
    for (const Query& query : added) {
      ChurnCommand cmd;
      cmd.ts = boundary(slot++);
      cmd.add = true;
      cmd.name = query.name;
      cmd.query = query;
      script.commands.push_back(std::move(cmd));
    }
    for (size_t r = 0; r < removals; ++r) {
      ChurnCommand cmd;
      cmd.ts = boundary(slot++);
      cmd.add = false;
      cmd.name = removable[r];
      script.commands.push_back(std::move(cmd));
    }

    MOTTO_ASSIGN_OR_RETURN(
        CaseReport report,
        CheckChurnCase(base.queries, script, base.stream, &registry, options));
    if (report.ok()) continue;

    std::string failure = "case seed " + std::to_string(case_seed) + ":\n" +
                          report.ToString() + "workload:\n" +
                          WorkloadToText(base.queries, registry) + "script:\n";
    for (const ChurnCommand& cmd : script.commands) {
      failure += std::to_string(cmd.ts);
      if (cmd.add) {
        failure += " add " +
                   WorkloadToText({cmd.query}, registry);  // "name: ...\n"
      } else {
        failure += " remove " + cmd.name + "\n";
      }
    }
    outcome.failures.push_back(std::move(failure));
  }
  return outcome;
}

}  // namespace motto::verify
