#ifndef MOTTO_VERIFY_FUZZER_H_
#define MOTTO_VERIFY_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ccl/pattern.h"
#include "common/rng.h"
#include "event/stream.h"

namespace motto::verify {

struct FuzzOptions {
  /// Queries per generated workload.
  int num_queries = 3;
  /// Primitive alphabet size (types are named "E0".."E{n-1}"). Kept small
  /// on purpose so duplicate types inside one pattern are common.
  int num_event_types = 4;
  /// Stream length. The oracle is exponential; keep this modest.
  int num_events = 36;
  /// Maximum nesting depth below the root operator (0 = flat patterns).
  int max_depth = 2;
  /// Probability that an eligible operator child is itself an operator.
  double nested_prob = 0.4;
  /// Probability a leaf carries a payload predicate.
  double predicate_prob = 0.25;
  /// Probability a SEQ/CONJ root carries a NEG operand.
  double negation_prob = 0.35;
  /// Probability one event shares the previous event's timestamp
  /// (simultaneity is a first-class edge case for SEQ's strict order).
  double ts_collision_prob = 0.2;
  /// Maximum inter-event gap in microseconds.
  Duration max_gap = 9;
  /// Permit NEG on inner operators too. The engine rejects inner negation,
  /// so this is only for front-end (parse/print) fuzzing, never for
  /// differential runs.
  bool allow_inner_negation = false;
};

/// One generated differential test case.
struct FuzzCase {
  std::vector<Query> queries;
  EventStream stream;
};

/// Seeded random workload + stream generator for the differential harness.
/// Every draw flows through one Rng, so a (seed, options) pair pins the
/// case exactly — the repro commands the differ prints rely on this.
///
/// Generated patterns are in parser normal form (operators have >= 2
/// children, or >= 1 child plus a NEG), so printing a query with
/// WorkloadToText and re-parsing it reproduces the identical tree; that is
/// both what the round-trip fuzz test asserts and what makes dumped repro
/// files faithful.
class QueryFuzzer {
 public:
  /// `registry` must outlive the fuzzer; the primitive alphabet is
  /// registered up front.
  QueryFuzzer(EventTypeRegistry* registry, FuzzOptions options,
              uint64_t seed);

  /// Fresh workload + stream.
  FuzzCase Next();

  /// One random query (window spans 1 us .. beyond the whole stream).
  Query NextQuery(const std::string& name);

  /// One random pattern in parser normal form.
  PatternExpr NextPattern();

  /// One random sorted primitive stream with timestamp collisions.
  EventStream NextStream();

 private:
  PatternExpr RandomLeaf(bool allow_predicate);
  PatternExpr RandomOperator(int depth, bool outermost);

  EventTypeRegistry* registry_;
  FuzzOptions options_;
  Rng rng_;
  std::vector<EventTypeId> types_;
};

}  // namespace motto::verify

#endif  // MOTTO_VERIFY_FUZZER_H_
