#ifndef MOTTO_VERIFY_ORACLE_H_
#define MOTTO_VERIFY_ORACLE_H_

#include <cstdint>
#include <set>
#include <string>

#include "ccl/pattern.h"
#include "common/result.h"
#include "event/stream.h"

namespace motto::verify {

/// Multiset of match fingerprints (`Event::Fingerprint()` format), the unit
/// every execution path is reduced to before comparison. A multiset — not a
/// set — because match multiplicity is part of the semantics (CONJ over
/// duplicate operand types emits one match per operand assignment).
using MatchSet = std::multiset<std::string>;

struct OracleOptions {
  /// Abort with kOutOfRange once this many enumeration steps have been
  /// taken. The oracle is exponential by design; the budget turns an
  /// accidental blow-up (huge window over a dense stream) into a skippable
  /// error instead of a hung test.
  uint64_t max_steps = 3'000'000;
  /// Abort with kOutOfRange once this many matches (final emissions plus
  /// inner sub-match arrivals) have been produced. Every execution path
  /// materializes the same match set the oracle computes, so an uncapped
  /// million-match case blows up all five engine paths too — the differ
  /// probes the oracle first and skips such cases before any engine runs.
  uint64_t max_matches = 50'000;
};

/// Brute-force reference semantics for one (possibly nested) CCL query over
/// a primitive stream, by direct enumeration of operand assignments — no
/// NFA, arena, catalog, or executor code, only the AST and the event model.
/// DESIGN.md §10 states the evaluation rules and why they coincide with the
/// engine's operational semantics.
///
/// Requirements mirror DivideNested: the pattern must be a validated
/// operator (not a bare leaf), the window positive, and NEG present only on
/// the outermost operator.
Result<MatchSet> OracleMatches(const Query& query, const EventStream& stream,
                               const OracleOptions& options = OracleOptions{});

}  // namespace motto::verify

#endif  // MOTTO_VERIFY_ORACLE_H_
